//! Float sensor columns end-to-end: ingest f64 readings under the XOR
//! codec family (Gorilla / Chimp / Elf), compare their footprints, and
//! run pruned range aggregations.
//!
//! ```sh
//! cargo run --release --example float_sensors
//! ```

use etsqp::core::float::FloatRange;
use etsqp::{AggFunc, Encoding, EngineOptions, IotDb, TimeRange};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = IotDb::new(EngineOptions::default());
    let n = 200_000usize;

    // The same 2-decimal temperature trace under each float codec.
    let readings: Vec<f64> = (0..n)
        .map(|i| ((21.0 + (i as f64 * 0.001).sin() * 4.0) * 100.0).round() / 100.0)
        .collect();
    for (name, enc) in [
        ("temp_gorilla", Encoding::GorillaFloat),
        ("temp_chimp", Encoding::Chimp),
        ("temp_elf", Encoding::Elf),
    ] {
        db.create_series_f64(name, enc)?;
        for (i, &v) in readings.iter().enumerate() {
            db.append_f64(name, 1_700_000_000_000 + i as i64 * 1000, v)?;
        }
    }
    db.flush()?;

    println!(
        "storage footprint for {n} two-decimal readings (raw = {} KB):",
        n * 8 / 1000
    );
    for name in ["temp_gorilla", "temp_chimp", "temp_elf"] {
        let pages = db.store().peek_pages(name)?;
        let bytes: usize = pages.iter().map(|p| p.encoded_len()).sum();
        println!(
            "  {name:<14} {:>8} KB  ({:.1}x)",
            bytes / 1000,
            (n * 8) as f64 / bytes as f64
        );
    }

    // Range aggregations with header pruning (float min/max map into the
    // integer header domain order-preservingly).
    let avg = db.aggregate_f64("temp_elf", None, None, AggFunc::Avg)?;
    println!("\nAVG(temp_elf) over everything: {:?}", avg);
    let recent = TimeRange {
        lo: 1_700_000_000_000 + (n as i64 / 2) * 1000,
        hi: i64::MAX,
    };
    let recent_avg = db.aggregate_f64("temp_elf", Some(recent), None, AggFunc::Avg)?;
    println!("AVG(temp_elf) over the second half: {:?}", recent_avg);
    let hot = db.aggregate_f64(
        "temp_elf",
        None,
        Some(FloatRange {
            lo: 24.5,
            hi: f64::INFINITY,
        }),
        AggFunc::Count,
    )?;
    println!("COUNT(temp > 24.5): {:?}", hot);

    // Verify all three codecs agree on every aggregate.
    for func in [AggFunc::Sum, AggFunc::Min, AggFunc::Max, AggFunc::Variance] {
        let a = db.aggregate_f64("temp_gorilla", None, None, func)?.unwrap();
        let b = db.aggregate_f64("temp_chimp", None, None, func)?.unwrap();
        let c = db.aggregate_f64("temp_elf", None, None, func)?.unwrap();
        assert!(
            (a - b).abs() < 1e-9 && (b - c).abs() < 1e-9,
            "{func:?}: {a} {b} {c}"
        );
    }
    println!("\nall float codecs agree on SUM/MIN/MAX/VARIANCE ✔");
    Ok(())
}
