//! Multi-series queries: merging and naturally joining two sensors whose
//! clocks only partially align (the Q4–Q6 shapes of Table III).
//!
//! ```sh
//! cargo run --release --example sensor_join
//! ```

use etsqp::{EngineOptions, IotDb, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = IotDb::new(EngineOptions::default());

    // Two devices: one reports every 2 s, the other every 3 s.
    db.create_series("upstream")?;
    db.create_series("downstream")?;
    let n = 300_000i64;
    for i in 0..n {
        db.append("upstream", i * 2000, 100 + (i % 41))?;
    }
    for i in 0..(n * 2 / 3) {
        db.append("downstream", i * 3000, 90 + (i % 37))?;
    }
    db.flush()?;

    // Q5: time-ordered union of both streams.
    let union = db.query("SELECT * FROM upstream UNION downstream ORDER BY TIME")?;
    println!(
        "UNION: {} rows in {:?} (first: {:?})",
        union.rows.len(),
        union.elapsed,
        union.rows.first()
    );
    // Sorted by time?
    let mut last = i64::MIN;
    for row in &union.rows {
        let Value::Int(t) = row[0] else { panic!() };
        assert!(t >= last, "union not time-ordered");
        last = t;
    }

    // Q6: natural join — tuples where both devices reported at the same
    // millisecond (every 6 s here).
    let join = db.query("SELECT * FROM upstream, downstream")?;
    println!(
        "JOIN:  {} matched tuples in {:?}",
        join.rows.len(),
        join.elapsed
    );

    // Q4: inter-column expression over the join — flow imbalance.
    let diff = db.query("SELECT upstream.A + downstream.A FROM upstream, downstream")?;
    println!("JOIN+ADD: {} rows in {:?}", diff.rows.len(), diff.elapsed);
    assert_eq!(join.rows.len(), diff.rows.len());

    // Sanity: the join count is the number of shared timestamps.
    // upstream covers multiples of 2000 below 2000·n; downstream multiples
    // of 3000 below 3000·(2n/3); shared = multiples of 6000 below both.
    let up_max = 2000 * (n - 1);
    let down_max = 3000 * (n * 2 / 3 - 1);
    let expected = (up_max.min(down_max)) / 6000 + 1;
    assert_eq!(join.rows.len() as i64, expected);
    println!("\njoin count matches closed form ({expected}) ✔");
    Ok(())
}
