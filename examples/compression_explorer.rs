//! Explore how the Table I encoder families compress the Table II
//! datasets — the space-efficiency premise of the whole paper.
//!
//! ```sh
//! cargo run --release --example compression_explorer
//! ```

use etsqp::datasets::Spec;
use etsqp::Encoding;

fn main() {
    let rows = 100_000usize;
    let codecs = [
        Encoding::Plain,
        Encoding::Ts2Diff,
        Encoding::Ts2DiffOrder2,
        Encoding::DeltaRle,
        Encoding::Sprintz,
        Encoding::Rlbe,
        Encoding::Gorilla,
        Encoding::Rle,
    ];

    println!("compression ratio (raw 8 B/value ÷ encoded), {rows} rows per column\n");
    print!("{:<22}", "column");
    for c in codecs {
        print!("{:>10}", c.name());
    }
    println!();

    for spec in Spec::ALL {
        let d = spec.generate(rows);
        // Time column plus the first two value columns of each dataset.
        let mut columns: Vec<(String, &Vec<i64>)> =
            vec![(format!("{}.time", d.label), &d.timestamps)];
        for (name, col) in d.columns.iter().take(2) {
            columns.push((format!("{}.{name}", d.label), col));
        }
        for (name, col) in columns {
            print!("{name:<22}");
            let raw = col.len() * 8;
            for codec in codecs {
                let encoded = codec.encode_i64(col);
                // Verify losslessness while we're here.
                assert_eq!(
                    &codec.decode_i64(&encoded).unwrap(),
                    col,
                    "{name} {}",
                    codec.name()
                );
                print!("{:>9.1}x", raw as f64 / encoded.len() as f64);
            }
            println!();
        }
    }

    println!("\nfloat codecs on 2-decimal sensor readings (Gorilla/Chimp/Elf):");
    let readings: Vec<f64> = (0..rows)
        .map(|i| ((20.0 + (i as f64 * 0.01).sin() * 5.0) * 100.0).round() / 100.0)
        .collect();
    let raw = readings.len() * 8;
    for (name, bytes) in [
        ("gorilla", etsqp::encoding::gorilla::encode_f64(&readings)),
        ("chimp", etsqp::encoding::chimp::encode(&readings)),
        ("elf", etsqp::encoding::elf::encode(&readings)),
    ] {
        println!("  {name:<8} {:>6.1}x", raw as f64 / bytes.len() as f64);
    }
}
