//! Down-sampling a high-rate sensor with sliding-window aggregation —
//! the workload the paper's introduction motivates — and comparing the
//! engine configurations the evaluation studies: serial, vectorized,
//! vectorized+fusion, vectorized+fusion+pruning.
//!
//! ```sh
//! cargo run --release --example down_sampling
//! ```

use std::time::Instant;

use etsqp::core::plan::PipelineConfig;
use etsqp::{EngineOptions, FuseLevel, IotDb, Plan};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rows = 2_000_000usize;
    let dataset = etsqp::datasets::Spec::Climate.generate(rows);
    println!(
        "dataset: {} ({} rows, {} attrs)",
        dataset.name,
        dataset.rows(),
        dataset.attrs()
    );

    let db = IotDb::new(EngineOptions::default());
    db.create_series("temp")?;
    db.append_all("temp", &dataset.timestamps, &dataset.columns[0].1)?;
    db.flush()?;

    // Down-sample to ~1000-point windows (the paper's default window).
    let span = dataset.timestamps.last().unwrap() - dataset.timestamps[0];
    let dt = (span / 1000).max(1);
    let plan = Plan::scan("temp").window(dataset.timestamps[0], dt, etsqp::AggFunc::Avg);

    let configs: [(&str, PipelineConfig); 4] = [
        ("serial (1 thread)", EngineOptions::serial().pipeline),
        (
            "vectorized, no fusion",
            PipelineConfig {
                fuse: FuseLevel::None,
                prune: false,
                ..PipelineConfig::default()
            },
        ),
        (
            "vectorized + fusion",
            PipelineConfig {
                prune: false,
                ..PipelineConfig::default()
            },
        ),
        ("vectorized + fusion + pruning", PipelineConfig::default()),
    ];

    let mut reference: Option<Vec<(f64, f64)>> = None;
    for (name, cfg) in configs {
        let start = Instant::now();
        let r = db.execute_with(&plan, &cfg)?;
        let elapsed = start.elapsed();
        let tuples = r.stats.tuples_total();
        println!(
            "{name:32} {:>8.1} ms   {:>7.1} M tuples/s   windows={}",
            elapsed.as_secs_f64() * 1e3,
            tuples as f64 / elapsed.as_secs_f64() / 1e6,
            r.rows.len()
        );
        // All configurations must agree on the answer.
        let got: Vec<(f64, f64)> = r
            .rows
            .iter()
            .map(|row| (row[0].as_f64(), row[1].as_f64()))
            .collect();
        match &reference {
            None => reference = Some(got),
            Some(want) => {
                assert_eq!(want.len(), got.len(), "{name}: window count mismatch");
                for ((wt, wv), (gt, gv)) in want.iter().zip(&got) {
                    assert_eq!(wt, gt, "{name}: window start mismatch");
                    assert!(
                        (wv - gv).abs() < 1e-6,
                        "{name}: value mismatch {wv} vs {gv}"
                    );
                }
            }
        }
    }
    println!("\nall configurations agree on every window ✔");
    Ok(())
}
