//! Quickstart: create an embedded ETSQP database, ingest IoT points,
//! run SQL aggregations, and inspect execution statistics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use etsqp::{EngineOptions, IotDb};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A database with the full ETSQP pipeline (vectorized decoders,
    // operator fusion, pruning) — the defaults.
    let db = IotDb::new(EngineOptions::default());
    println!("SIMD backend: {}", etsqp::simd::backend());

    // One velocity sensor reporting every second.
    db.create_series("velocity")?;
    let n = 500_000i64;
    for i in 0..n {
        let t = 1_700_000_000_000 + i * 1000; // epoch millis
        let v = 60 + ((i / 3600) % 40) + (i % 7) - 3; // km/h-ish, smooth
        db.append("velocity", t, v)?;
    }
    db.flush()?;

    // Point the paper's Example 2 query at it.
    let r = db.query(
        "SELECT AVG(velocity) FROM velocity \
         WHERE time >= 1700000180000 AND time <= 1700000300000",
    )?;
    println!(
        "\nAVG over 2 minutes: {:?}  ({:?})",
        r.rows[0][0], r.elapsed
    );
    println!(
        "  pages loaded {} / pruned {}, tuples scanned {}, pruned {}",
        r.stats.pages_loaded, r.stats.pages_pruned, r.stats.tuples_scanned, r.stats.tuples_pruned
    );

    // A down-sampling query: hourly sums (sliding windows of 3.6e6 ms).
    let r = db.query("SELECT SUM(velocity) FROM velocity SW(1700000000000, 3600000)")?;
    println!(
        "\nHourly down-sample: {} windows in {:?}",
        r.rows.len(),
        r.elapsed
    );
    for row in r.rows.iter().take(3) {
        println!("  window {:?} -> {:?}", row[0], row[1]);
    }

    // A selective value filter (Q3 shape).
    let r = db.query("SELECT SUM(velocity) FROM (SELECT * FROM velocity WHERE velocity > 90)")?;
    println!(
        "\nSUM of readings > 90: {:?} in {:?}",
        r.rows[0][0], r.elapsed
    );

    // Compression achieved by the IoT encoders.
    let io = db.store().io();
    println!(
        "\nstore: {} pages, raw {} MB vs encoded pages on read path (bytes read so far: {})",
        db.store().page_count("velocity")?,
        n * 16 / 1_000_000,
        io.bytes_read()
    );
    Ok(())
}
