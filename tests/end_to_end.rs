//! Cross-crate integration tests: datasets → storage → engine → SQL,
//! and agreement between every engine configuration and every baseline.

use etsqp::core::plan::PipelineConfig;
use etsqp::datasets::Spec;
use etsqp::{AggFunc, Encoding, EngineOptions, FuseLevel, IotDb, Plan, Predicate, Value};

/// Loads one dataset column into a fresh database.
fn load(spec: Spec, rows: usize, opts: EngineOptions) -> (IotDb, Vec<i64>, Vec<i64>) {
    let d = spec.generate(rows);
    let db = IotDb::new(opts);
    db.create_series("s").unwrap();
    db.append_all("s", &d.timestamps, &d.columns[0].1).unwrap();
    db.flush().unwrap();
    (db, d.timestamps, d.columns[0].1.clone())
}

#[test]
fn every_dataset_roundtrips_through_the_engine() {
    for spec in Spec::ALL {
        let (db, ts, vals) = load(spec, 20_000, EngineOptions::default());
        let r = db.query("SELECT SUM(s) FROM s").unwrap();
        let want: i128 = vals.iter().map(|&v| v as i128).sum();
        match r.rows[0][0] {
            Value::Int(got) => assert_eq!(got as i128, want, "{spec:?}"),
            Value::Float(got) => assert!((got - want as f64).abs() < 1.0, "{spec:?}"),
            Value::Null => panic!("{spec:?}: null sum"),
        }
        let r = db.query("SELECT COUNT(s) FROM s").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(ts.len() as i64), "{spec:?}");
    }
}

#[test]
fn engine_configs_agree_on_selective_aggregations() {
    let (db, ts, vals) = load(Spec::Gas, 30_000, EngineOptions::default());
    let mid = ts[ts.len() / 4];
    let hi = ts[3 * ts.len() / 4];
    let (vlo, vhi) = {
        let mut s = vals.clone();
        s.sort_unstable();
        (s[s.len() / 4], s[3 * s.len() / 4])
    };
    let plans = [
        Plan::scan("s").aggregate(AggFunc::Sum),
        Plan::scan("s")
            .filter(Predicate::time(mid, hi))
            .aggregate(AggFunc::Sum),
        Plan::scan("s")
            .filter(Predicate::value(vlo, vhi))
            .aggregate(AggFunc::Count),
        Plan::scan("s")
            .filter(Predicate::time(mid, hi).and(&Predicate::value(vlo, vhi)))
            .aggregate(AggFunc::Avg),
        Plan::scan("s").window(ts[0], (ts[ts.len() - 1] - ts[0]) / 37 + 1, AggFunc::Sum),
        Plan::scan("s").window(ts[0], (ts[ts.len() - 1] - ts[0]) / 11 + 1, AggFunc::Min),
    ];
    let configs = [
        PipelineConfig::default(),
        PipelineConfig {
            prune: false,
            ..Default::default()
        },
        PipelineConfig {
            fuse: FuseLevel::None,
            ..Default::default()
        },
        PipelineConfig {
            fuse: FuseLevel::Delta,
            prune: false,
            ..Default::default()
        },
        PipelineConfig {
            vectorized: false,
            threads: 1,
            prune: false,
            fuse: FuseLevel::None,
            ..Default::default()
        },
        PipelineConfig {
            threads: 1,
            ..Default::default()
        },
        PipelineConfig {
            threads: 8,
            allow_slicing: true,
            ..Default::default()
        },
    ];
    for (pi, plan) in plans.iter().enumerate() {
        let reference = db.execute_with(plan, &configs[0]).unwrap();
        for (ci, cfg) in configs.iter().enumerate().skip(1) {
            let got = db.execute_with(plan, cfg).unwrap();
            assert_eq!(reference.rows.len(), got.rows.len(), "plan {pi} cfg {ci}");
            for (a, b) in reference.rows.iter().zip(&got.rows) {
                for (x, y) in a.iter().zip(b) {
                    match (x, y) {
                        (Value::Float(p), Value::Float(q)) => {
                            assert!((p - q).abs() < 1e-6, "plan {pi} cfg {ci}: {p} vs {q}")
                        }
                        _ => assert_eq!(x, y, "plan {pi} cfg {ci}"),
                    }
                }
            }
        }
    }
}

#[test]
fn baselines_agree_with_engine() {
    let (db, ts, vals) = load(Spec::Sine, 50_000, EngineOptions::default());
    let t_lo = ts[ts.len() / 10];
    let t_hi = ts[9 * ts.len() / 10];
    let want: i128 = ts
        .iter()
        .zip(&vals)
        .filter(|(&t, _)| t >= t_lo && t <= t_hi)
        .map(|(_, &v)| v as i128)
        .sum();

    // ETSQP engine.
    let plan = Plan::scan("s")
        .filter(Predicate::time(t_lo, t_hi))
        .aggregate(AggFunc::Sum);
    let r = db.execute(&plan).unwrap();
    assert_eq!(r.rows[0][0].as_f64(), want as f64);

    // SBoost over the same pages.
    let sboost = etsqp::sboost::SboostEngine::from_store(db.store(), "s").unwrap();
    let (s, _) = sboost.sum_in_time_range(t_lo, t_hi, 4).unwrap();
    assert_eq!(s, want);

    // FastLanes over its own layout.
    let fl = etsqp::fastlanes::FlSeries::encode(&ts, &vals);
    let (s, _) = fl.sum_in_range(t_lo, t_hi, 4).unwrap();
    assert_eq!(s, want);

    // Comparator engines.
    let monet = etsqp::comparators::monet::MonetLike::load(&ts, &vals);
    assert_eq!(monet.sum_in_time_range(t_lo, t_hi).sum, want);
    let mut spark = etsqp::comparators::spark::SparkLike::load(&ts, &vals);
    spark.simulate_codegen = false;
    assert_eq!(spark.sum_in_time_range(t_lo, t_hi).sum, want);
}

#[test]
fn tsfile_persistence_roundtrip() {
    let (db, ts, _) = load(Spec::Atmosphere, 10_000, EngineOptions::default());
    let dir = std::env::temp_dir().join("etsqp_integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip.etsqp");
    etsqp::storage::tsfile::write(db.store(), &path).unwrap();

    let store2 = etsqp::storage::tsfile::read(&path).unwrap();
    let db2 = IotDb::with_store(store2, EngineOptions::default());
    let a = db.query("SELECT SUM(s) FROM s").unwrap();
    let b = db2.query("SELECT SUM(s) FROM s").unwrap();
    assert_eq!(a.rows, b.rows);
    assert_eq!(db2.store().point_count("s").unwrap(), ts.len() as u64);
    std::fs::remove_file(&path).ok();
}

#[test]
fn multi_column_dataset_queries() {
    // Register every Gas column as its own series and join two of them.
    let d = Spec::Gas.generate(5_000);
    let db = IotDb::new(EngineOptions::default());
    for i in 0..4 {
        let name = format!("r{i}");
        db.create_series(&name).unwrap();
        db.append_all(&name, &d.timestamps, &d.columns[i].1)
            .unwrap();
    }
    db.flush().unwrap();
    let r = db.query("SELECT r0.A + r1.A FROM r0, r1").unwrap();
    assert_eq!(r.rows.len(), 5_000); // same clock → full join
    let Value::Int(first) = r.rows[0][1] else {
        panic!()
    };
    assert_eq!(first, d.columns[0].1[0] + d.columns[1].1[0]);
}

#[test]
fn sql_errors_are_clean() {
    let db = IotDb::new(EngineOptions::default());
    for bad in [
        "SELECT",
        "SELECT * FROM",
        "SELECT SUM(A) FROM missing_series",
        "SELECT SUM(A) FROM s SW(0, -5)",
    ] {
        assert!(db.query(bad).is_err(), "{bad:?} should fail");
    }
}

#[test]
fn delta_rle_encoded_store_full_pipeline() {
    // Value column stored Delta-RLE → DeltaRepeat fusion path end-to-end.
    let d = Spec::Climate.generate(20_000);
    let db =
        IotDb::new(EngineOptions::default().with_encodings(Encoding::Ts2Diff, Encoding::DeltaRle));
    db.create_series("rain").unwrap();
    db.append_all("rain", &d.timestamps, &d.columns[3].1)
        .unwrap();
    db.flush().unwrap();
    let r = db.query("SELECT VARIANCE(rain) FROM rain").unwrap();
    let Value::Float(var) = r.rows[0][0] else {
        panic!("{:?}", r.rows)
    };
    // Naive variance.
    let vals = &d.columns[3].1;
    let n = vals.len() as f64;
    let mean = vals.iter().map(|&v| v as f64).sum::<f64>() / n;
    let want = vals.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / n;
    assert!((var - want).abs() / want.max(1.0) < 1e-9, "{var} vs {want}");
}
