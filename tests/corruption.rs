//! Replays the minimized corruption corpus (`tests/corpus/*.bin`)
//! against every untrusted-input surface, asserting the same tri-state
//! invariant the fuzzer (`cargo run -p xtask -- fuzz`) enforces:
//!
//! 1. no decoder panics on any byte string;
//! 2. `Ok(values)` implies `decode(encode(values)) == values`
//!    (bitwise for floats) — an accepted stream must round-trip;
//! 3. otherwise a typed `Err` — the expected outcome for a crasher.
//!
//! The corpus is committed: one deterministic hostile input per codec
//! (truncations, hostile count fields) plus fuzzer-found crashers such
//! as `chimp__zero_sig.bin` (a flag-`01` code with zero significant
//! bits used to overflow a shift by 64). File names are
//! `<target>__<description>.bin`, where `<target>` is a codec name from
//! `Encoding::name()`, `page` (a `Page::to_bytes` image), `tsfile`
//! (an on-disk file image), `partial` (a `PartialState::to_bytes`
//! wire image with its embedded t-digest), or `proto` (a network
//! wire-frame byte stream fed to `etsqp_serve::proto::FrameDecoder`).
//! Regenerate with `cargo run -p xtask -- fuzz --emit-corpus`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

use etsqp::core::partial::PartialState;
use etsqp::encoding::Encoding;
use etsqp::serve::proto::{self, FrameDecoder, FrameType, DEFAULT_MAX_FRAME_LEN};
use etsqp::storage::page::Page;
use etsqp::storage::tsfile;

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("corpus")
}

fn codec_by_name(name: &str) -> Option<Encoding> {
    const ALL: [Encoding; 12] = [
        Encoding::Plain,
        Encoding::Ts2Diff,
        Encoding::Ts2DiffOrder2,
        Encoding::Rle,
        Encoding::DeltaRle,
        Encoding::Sprintz,
        Encoding::Rlbe,
        Encoding::Gorilla,
        Encoding::StreamVByte,
        Encoding::Chimp,
        Encoding::Elf,
        Encoding::GorillaFloat,
    ];
    ALL.into_iter().find(|e| e.name() == name)
}

/// Applies the tri-state invariant; returns a violation message or None.
fn check(target: &str, bytes: &[u8]) -> Option<String> {
    let outcome = catch_unwind(AssertUnwindSafe(|| -> Result<(), String> {
        match target {
            "page" => {
                if let Ok((page, _)) = Page::from_bytes(bytes) {
                    if page.header.val_encoding.is_float() {
                        let _ = page.decode_f64();
                    } else {
                        let _ = page.decode();
                    }
                }
                Ok(())
            }
            "partial" => {
                if let Ok(state) = PartialState::from_bytes(bytes) {
                    let canon = state.to_bytes();
                    let back = PartialState::from_bytes(&canon)
                        .map_err(|e| format!("accepted partial fails re-parse: {e}"))?;
                    if back.to_bytes() != canon {
                        return Err("accepted partial breaks canonical round-trip".into());
                    }
                    let mut doubled = state.clone();
                    doubled.merge(&state);
                }
                Ok(())
            }
            "proto" => {
                // Same invariant the fuzzer's `proto` target enforces:
                // complete frames re-encode and re-parse identically,
                // typed payloads round-trip canonically, hostile bytes
                // end as a typed `ProtoError` — never a panic.
                let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME_LEN);
                dec.extend(bytes);
                while let Ok(Some(frame)) = dec.next_frame() {
                    let wire = proto::encode_frame(frame.kind, &frame.payload);
                    let mut again = FrameDecoder::new(DEFAULT_MAX_FRAME_LEN);
                    again.extend(&wire);
                    match again.next_frame() {
                        Ok(Some(back)) if back == frame => {}
                        other => {
                            return Err(format!("accepted frame breaks round-trip: {other:?}"))
                        }
                    }
                    match frame.kind {
                        FrameType::Error => {
                            if let Ok(e) = proto::decode_error(&frame.payload) {
                                let canon =
                                    proto::encode_error(e.code, e.retry_after_ms, &e.message);
                                if proto::decode_error(&canon).as_ref() != Ok(&e) {
                                    return Err("accepted error payload breaks round-trip".into());
                                }
                            }
                        }
                        FrameType::Result => {
                            if let Ok(r) = proto::decode_result(&frame.payload) {
                                let canon = r.encode();
                                let back = proto::decode_result(&canon).map_err(|x| {
                                    format!("accepted result payload fails re-decode: {x}")
                                })?;
                                if back.encode() != canon {
                                    return Err("accepted result payload breaks round-trip".into());
                                }
                            }
                        }
                        _ => {}
                    }
                }
                Ok(())
            }
            "tsfile" => {
                let dir =
                    std::env::temp_dir().join(format!("etsqp-corruption-{}", std::process::id()));
                std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
                let path = dir.join("replay.etsqp");
                std::fs::write(&path, bytes).map_err(|e| e.to_string())?;
                if let Ok(store) = tsfile::read(&path) {
                    for name in store.series_names() {
                        if let Ok(pages) = store.peek_pages(&name) {
                            for page in pages {
                                if page.header.val_encoding.is_float() {
                                    let _ = page.decode_f64();
                                } else {
                                    let _ = page.decode();
                                }
                            }
                        }
                    }
                }
                let _ = std::fs::remove_dir_all(&dir);
                Ok(())
            }
            codec => {
                let enc = codec_by_name(codec)
                    .ok_or_else(|| format!("unknown corpus target `{codec}`"))?;
                if enc.is_float() {
                    if let Ok(values) = enc.decode_f64(bytes) {
                        let back = enc
                            .decode_f64(&enc.encode_f64(&values))
                            .map_err(|e| format!("accepted stream fails re-decode: {e}"))?;
                        let same = back.len() == values.len()
                            && back
                                .iter()
                                .zip(&values)
                                .all(|(a, b)| a.to_bits() == b.to_bits());
                        if !same {
                            return Err("accepted stream breaks round-trip".into());
                        }
                    }
                } else if let Ok(values) = enc.decode_i64(bytes) {
                    let back = enc
                        .decode_i64(&enc.encode_i64(&values))
                        .map_err(|e| format!("accepted stream fails re-decode: {e}"))?;
                    if back != values {
                        return Err("accepted stream breaks round-trip".into());
                    }
                }
                Ok(())
            }
        }
    }));
    match outcome {
        Ok(Ok(())) => None,
        Ok(Err(msg)) => Some(msg),
        Err(_) => Some("decoder panicked".into()),
    }
}

#[test]
fn corpus_replays_clean() {
    let dir = corpus_dir();
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("tests/corpus/ must exist — run `cargo run -p xtask -- fuzz --emit-corpus`")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "bin"))
        .collect();
    entries.sort();
    assert!(
        entries.len() >= 20,
        "corpus unexpectedly small ({} files) — regenerate with \
         `cargo run -p xtask -- fuzz --emit-corpus`",
        entries.len()
    );

    let mut failures = Vec::new();
    for path in &entries {
        let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("");
        let target = stem.split("__").next().unwrap_or("");
        let bytes = std::fs::read(path).expect("corpus file readable");
        if let Some(msg) = check(target, &bytes) {
            failures.push(format!("{stem}: {msg}"));
        }
    }
    assert!(
        failures.is_empty(),
        "corpus violations:\n  {}",
        failures.join("\n  ")
    );
}

/// The fuzzer-found chimp crasher must stay a *typed error*: a flag-01
/// code declaring zero significant bits once drove a shift by 64.
#[test]
fn chimp_zero_sig_is_rejected() {
    let bytes = std::fs::read(corpus_dir().join("chimp__zero_sig.bin"))
        .expect("regression corpus file present");
    let result = Encoding::Chimp.decode_f64(&bytes);
    assert!(
        result.is_err(),
        "hostile chimp stream must be rejected, got {result:?}"
    );
}

/// Hostile count fields must be rejected up front (header preflight),
/// not trusted into a huge allocation.
#[test]
fn hostile_counts_are_rejected() {
    for path in std::fs::read_dir(corpus_dir())
        .unwrap()
        .filter_map(|e| e.ok())
    {
        let name = path.file_name().to_string_lossy().into_owned();
        let Some(codec_name) = name.strip_suffix("__hostile_count.bin") else {
            continue;
        };
        let Some(enc) = codec_by_name(codec_name) else {
            continue;
        };
        let bytes = std::fs::read(path.path()).unwrap();
        let rejected = if enc.is_float() {
            enc.decode_f64(&bytes).is_err()
        } else {
            enc.decode_i64(&bytes).is_err()
        };
        assert!(rejected, "{codec_name}: u32::MAX count must be rejected");
    }
}

/// A frame declaring a `u32::MAX` payload must be rejected from the
/// header alone — the decoder may never buffer toward a hostile length.
#[test]
fn proto_oversized_len_rejected() {
    let bytes = std::fs::read(corpus_dir().join("proto__oversized_len.bin"))
        .expect("proto corpus file present");
    let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME_LEN);
    dec.extend(&bytes);
    assert!(
        dec.next_frame().is_err(),
        "u32::MAX length prefix must be a typed ProtoError"
    );
}
