//! Differential correctness sweep: every engine configuration must agree
//! with the naive oracle (`etsqp::core::oracle`) on every codec, dataset
//! and query in the battery.
//!
//! On a mismatch the harness prints a single-line reproducer
//! (`DIFF spec=… codec=… cfg=… query=… rows=…`) before panicking, so a
//! failure in CI pins down the exact (codec × config × query) cell.

use etsqp::core::decode::DecodeOptions;
use etsqp::core::exec::Scheduler;
use etsqp::core::expr::{BinOp, CmpOp, PairAggFunc};
use etsqp::core::oracle;
use etsqp::core::physical::pipe;
use etsqp::core::plan::execute;
use etsqp::datasets::Spec;
use etsqp::storage::store::SeriesStore;
use etsqp::{AggFunc, Encoding, FuseLevel, PipelineConfig, Plan, Predicate, TimeRange, Value};

const ROWS: usize = 256;
const PAGE_POINTS: usize = 64;

/// Integer codecs usable for the value column.
const VAL_CODECS: [Encoding; 9] = [
    Encoding::Plain,
    Encoding::Ts2Diff,
    Encoding::Ts2DiffOrder2,
    Encoding::Rle,
    Encoding::DeltaRle,
    Encoding::Sprintz,
    Encoding::Rlbe,
    Encoding::Gorilla,
    Encoding::StreamVByte,
];

/// Timestamp codecs exercised by the dedicated ts-codec block.
const TS_CODECS: [Encoding; 6] = [
    Encoding::Plain,
    Encoding::Ts2Diff,
    Encoding::Ts2DiffOrder2,
    Encoding::DeltaRle,
    Encoding::Gorilla,
    Encoding::StreamVByte,
];

/// The full config cross: vectorized/serial × fuse × prune × threads ×
/// slicing (the ablation axes of Fig. 10/13/14).
fn all_configs() -> Vec<PipelineConfig> {
    let mut out = Vec::new();
    for vectorized in [true, false] {
        for fuse in [FuseLevel::None, FuseLevel::Delta, FuseLevel::DeltaRepeat] {
            for prune in [true, false] {
                for threads in [1usize, 4, 8] {
                    for allow_slicing in [true, false] {
                        out.push(PipelineConfig {
                            threads,
                            prune,
                            fuse,
                            vectorized,
                            decode: DecodeOptions::default(),
                            allow_slicing,
                            decode_budget_bytes: None,
                            scheduler: Scheduler::Pool,
                            partial_cache: true,
                        });
                    }
                }
            }
        }
    }
    out
}

/// A handful of corner configs used when running the complete battery.
fn canonical_configs() -> Vec<PipelineConfig> {
    let base = PipelineConfig {
        threads: 1,
        prune: false,
        fuse: FuseLevel::None,
        vectorized: false,
        decode: DecodeOptions::default(),
        allow_slicing: false,
        decode_budget_bytes: None,
        scheduler: Scheduler::Pool,
        partial_cache: true,
    };
    vec![
        base,
        PipelineConfig {
            vectorized: true,
            fuse: FuseLevel::DeltaRepeat,
            prune: true,
            threads: 4,
            allow_slicing: true,
            ..base
        },
        // The spawn-per-query baseline must agree with the pool on the
        // full battery (scheduler differential).
        PipelineConfig {
            vectorized: true,
            fuse: FuseLevel::DeltaRepeat,
            prune: true,
            threads: 4,
            allow_slicing: true,
            scheduler: Scheduler::SpawnPerQuery,
            ..base
        },
        PipelineConfig {
            vectorized: true,
            fuse: FuseLevel::Delta,
            prune: true,
            threads: 8,
            allow_slicing: true,
            ..base
        },
        PipelineConfig {
            vectorized: false,
            threads: 4,
            prune: true,
            ..base
        },
    ]
}

fn cfg_label(cfg: &PipelineConfig) -> String {
    format!(
        "vec={} fuse={:?} prune={} threads={} slice={} sched={:?}",
        cfg.vectorized, cfg.fuse, cfg.prune, cfg.threads, cfg.allow_slicing, cfg.scheduler
    )
}

/// Engine/oracle result shape: column names plus rows of values.
type Table = (Vec<String>, Vec<Vec<Value>>);

struct Fixture {
    spec: Spec,
    codec: Encoding,
    store: SeriesStore,
    /// Registered series names (first two columns of the dataset).
    a: String,
    b: String,
    queries: Vec<(String, Plan)>,
    /// Oracle results, computed lazily per query index.
    oracle: Vec<Option<Table>>,
}

/// Builds the store for one (spec, value codec, ts codec) cell and the
/// deterministic query battery derived from the data's actual ranges.
fn fixture(spec: Spec, val_codec: Encoding, ts_codec: Encoding) -> Fixture {
    let data = spec.generate(ROWS);
    let store = SeriesStore::new(PAGE_POINTS);
    let a = format!("{}_a", spec.label());
    let b = format!("{}_b", spec.label());
    for (name, col_idx) in [(&a, 0usize), (&b, 1usize)] {
        store.create_series(name, ts_codec, val_codec);
        store
            .append_all(name, &data.timestamps, &data.columns[col_idx].1)
            .unwrap();
        store.flush(name).unwrap();
    }

    let t0 = *data.timestamps.first().unwrap();
    let tn = *data.timestamps.last().unwrap();
    let span = (tn - t0).max(1);
    let col = &data.columns[0].1;
    let (vmin, vmax) = col
        .iter()
        .fold((i64::MAX, i64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    let vspan = (vmax - vmin).max(1);
    let t_mid = Predicate {
        time: Some(TimeRange {
            lo: t0 + span / 4,
            hi: tn - span / 4,
        }),
        value: None,
    };
    let v_band = Predicate {
        time: None,
        value: Some((vmin + vspan / 5, vmax - vspan / 5)),
    };
    let both = t_mid.and(&v_band);
    let w_min = t0 + span / 5;
    let w_dt = (span / 9).max(1);

    let scan_a = || Plan::scan(&a);
    let scan_b = || Plan::scan(&b);
    let queries: Vec<(String, Plan)> = vec![
        ("SUM(all)".into(), scan_a().aggregate(AggFunc::Sum)),
        (
            "AVG(time)".into(),
            scan_a().filter(t_mid).aggregate(AggFunc::Avg),
        ),
        (
            "COUNT(value)".into(),
            scan_a().filter(v_band).aggregate(AggFunc::Count),
        ),
        (
            "MIN(both)".into(),
            scan_a().filter(both).aggregate(AggFunc::Min),
        ),
        (
            "MAX(time)".into(),
            scan_a().filter(t_mid).aggregate(AggFunc::Max),
        ),
        (
            "VARIANCE(all)".into(),
            scan_a().aggregate(AggFunc::Variance),
        ),
        (
            "FIRST(value)".into(),
            scan_a().filter(v_band).aggregate(AggFunc::First),
        ),
        ("LAST(all)".into(), scan_a().aggregate(AggFunc::Last)),
        ("WSUM".into(), scan_a().window(w_min, w_dt, AggFunc::Sum)),
        (
            "WCOUNT(value)".into(),
            scan_a().filter(v_band).window(w_min, w_dt, AggFunc::Count),
        ),
        ("SCAN(both)".into(), scan_a().filter(both)),
        (
            "UNION".into(),
            Plan::Union {
                left: Box::new(scan_a().filter(t_mid)),
                right: Box::new(scan_b()),
            },
        ),
        (
            "JOIN(on>)".into(),
            Plan::Join {
                left: Box::new(scan_a()),
                right: Box::new(scan_b()),
                on: Some(CmpOp::Gt),
            },
        ),
        (
            "JOINEXPR(+)".into(),
            Plan::JoinExpr {
                left: Box::new(scan_a()),
                right: Box::new(scan_b()),
                op: BinOp::Add,
            },
        ),
        (
            "JOINAGG(dot)".into(),
            Plan::JoinAggregate {
                left: Box::new(scan_a()),
                right: Box::new(scan_b()),
                func: PairAggFunc::Dot,
            },
        ),
        (
            "JOINAGG(corr)".into(),
            Plan::JoinAggregate {
                left: Box::new(scan_a().filter(t_mid)),
                right: Box::new(scan_b()),
                func: PairAggFunc::Correlation,
            },
        ),
        // Partial-state battery (appended so earlier indices stay
        // stable for Block D): exact first/last-derived aggregates and
        // bucketed order-sensitive merges — all compare bit-exact.
        ("DELTA(all)".into(), scan_a().aggregate(AggFunc::Delta)),
        (
            "RATE(value)".into(),
            scan_a().filter(v_band).aggregate(AggFunc::Rate),
        ),
        (
            "WRATE(time)".into(),
            scan_a().filter(t_mid).window(w_min, w_dt, AggFunc::Rate),
        ),
        (
            "WDELTA".into(),
            scan_a().window(w_min, w_dt, AggFunc::Delta),
        ),
        (
            "WFIRST".into(),
            scan_a().window(w_min, w_dt, AggFunc::First),
        ),
        (
            "WLAST(time)".into(),
            scan_a().filter(t_mid).window(w_min, w_dt, AggFunc::Last),
        ),
    ];
    let n = queries.len();
    Fixture {
        spec,
        codec: val_codec,
        store,
        a,
        b,
        queries,
        oracle: vec![None; n],
    }
}

fn value_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => x == y || (x.is_nan() && y.is_nan()),
        _ => a == b,
    }
}

fn rows_eq(a: &[Vec<Value>], b: &[Vec<Value>]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(ra, rb)| ra.len() == rb.len() && ra.iter().zip(rb).all(|(x, y)| value_eq(x, y)))
}

/// Runs query `qi` of `fx` under `cfg` and compares against the cached
/// oracle answer. Returns 1 (a case) — panics with a one-line reproducer
/// on mismatch.
fn check(fx: &mut Fixture, qi: usize, cfg: &PipelineConfig) -> usize {
    let (qname, plan) = &fx.queries[qi];
    if fx.oracle[qi].is_none() {
        fx.oracle[qi] = Some(oracle::execute(plan, &fx.store).unwrap());
    }
    let (ocols, orows) = fx.oracle[qi].as_ref().unwrap();
    // Every oracle case also goes through the physical planner: the plan
    // must compile, and its EXPLAIN rendering must be deterministic (the
    // driver below executes this same compiled shape).
    let phys = pipe::compile(plan, &fx.store, cfg).unwrap_or_else(|e| {
        panic!(
            "DIFF spec={} codec={:?} cfg=[{}] query={}: physical compile error {e}",
            fx.spec.label(),
            fx.codec,
            cfg_label(cfg),
            qname,
        )
    });
    let rendered = phys.render(cfg);
    assert!(
        rendered.starts_with("physical plan ("),
        "query={qname}: malformed EXPLAIN header:\n{rendered}"
    );
    assert_eq!(
        rendered,
        pipe::explain(plan, &fx.store, cfg).unwrap(),
        "query={qname}: EXPLAIN not deterministic across compiles"
    );
    let got = execute(plan, &fx.store, cfg).unwrap_or_else(|e| {
        panic!(
            "DIFF spec={} codec={:?} cfg=[{}] query={} seed=rows{}: engine error {e}",
            fx.spec.label(),
            fx.codec,
            cfg_label(cfg),
            qname,
            ROWS
        )
    });
    if &got.columns != ocols || !rows_eq(&got.rows, orows) {
        // Single-line reproducer first, then the diffing payloads.
        eprintln!(
            "DIFF spec={} codec={:?} cfg=[{}] query={} seed=rows{}",
            fx.spec.label(),
            fx.codec,
            cfg_label(cfg),
            qname,
            ROWS
        );
        eprintln!("  series: {} / {}", fx.a, fx.b);
        eprintln!("  oracle: {:?} {:?}", ocols, preview(orows));
        eprintln!("  engine: {:?} {:?}", got.columns, preview(&got.rows));
        panic!("engine diverged from oracle (see DIFF line above)");
    }
    1
}

fn preview(rows: &[Vec<Value>]) -> &[Vec<Value>] {
    &rows[..rows.len().min(8)]
}

/// Block A: the full 72-config cross on every (spec × value codec) cell,
/// rotating deterministically through the query battery.
#[test]
fn every_config_agrees_with_oracle() {
    let configs = all_configs();
    let mut cases = 0usize;
    for spec in Spec::ALL {
        for codec in VAL_CODECS {
            let mut fx = fixture(spec, codec, Encoding::Ts2Diff);
            let nq = fx.queries.len();
            for (ci, cfg) in configs.iter().enumerate() {
                let qi = (ci + cases) % nq;
                cases += check(&mut fx, qi, cfg);
            }
        }
    }
    assert!(cases >= 200, "sweep too small: {cases} cases");
    eprintln!("differential config sweep: {cases} cases, zero mismatches");
}

/// Block B: the complete query battery under the canonical corner
/// configs, on every (spec × value codec) cell.
#[test]
fn full_battery_agrees_with_oracle() {
    let configs = canonical_configs();
    let mut cases = 0usize;
    for spec in Spec::ALL {
        for codec in VAL_CODECS {
            let mut fx = fixture(spec, codec, Encoding::Ts2Diff);
            for qi in 0..fx.queries.len() {
                for cfg in &configs {
                    cases += check(&mut fx, qi, cfg);
                }
            }
        }
    }
    assert!(cases >= 200, "battery too small: {cases} cases");
    eprintln!("differential battery: {cases} cases, zero mismatches");
}

/// Block C: timestamp-codec sweep (value codec fixed to Ts2Diff) — the
/// time column drives filters, windows and joins.
#[test]
fn timestamp_codecs_agree_with_oracle() {
    let configs = canonical_configs();
    let mut cases = 0usize;
    for spec in [Spec::Atmosphere, Spec::Timestamp, Spec::Tpch] {
        for ts_codec in TS_CODECS {
            let mut fx = fixture(spec, Encoding::Ts2Diff, ts_codec);
            for qi in 0..fx.queries.len() {
                for cfg in &configs {
                    cases += check(&mut fx, qi, cfg);
                }
            }
        }
    }
    assert!(cases >= 200, "ts sweep too small: {cases} cases");
    eprintln!("differential ts-codec sweep: {cases} cases, zero mismatches");
}

/// Block E: Stream VByte under live ingestion. The fixture flushes, then
/// appends an unsealed hot tail to both series, so every query in the
/// battery runs against a mix of sealed SVB pages and the hot-chunk
/// snapshot (the `SourceHot` pipeline source) — the planner's fused(svb)
/// partials must merge correctly with the decoded hot partial.
#[test]
fn stream_vbyte_hot_and_sealed_agree_with_oracle() {
    let configs = canonical_configs();
    let mut cases = 0usize;
    for spec in [Spec::Atmosphere, Spec::Timestamp] {
        let mut fx = fixture(spec, Encoding::StreamVByte, Encoding::StreamVByte);
        // Hot tail: strictly-increasing timestamps past the sealed range,
        // values alternating sign and magnitude (1..3-byte deltas).
        let data = spec.generate(ROWS);
        let tn = *data.timestamps.last().unwrap();
        for name in [fx.a.clone(), fx.b.clone()] {
            for i in 0..40i64 {
                let v = (i * 1003) % 757 - 378 + ((i % 3) << 16);
                fx.store.append(&name, tn + (i + 1) * 7, v).unwrap();
            }
        }
        for qi in 0..fx.queries.len() {
            for cfg in &configs {
                cases += check(&mut fx, qi, cfg);
            }
        }
    }
    assert!(cases >= 100, "hot+sealed sweep too small: {cases} cases");
    eprintln!("differential hot+sealed svb sweep: {cases} cases, zero mismatches");
}

/// Block D: fault injection. Every page mutation breaks the sealed
/// checksum (`SeriesStore::corrupt_page` deliberately does not reseal),
/// so any query whose pipeline contains the page — decoded, fast-path
/// aggregated, or pruned away — must abort with a typed error. The
/// invariant under test: corruption is *never* absorbed into a silently
/// wrong aggregate, and an untouched series keeps answering correctly.
#[test]
fn corrupted_pages_abort_never_lie() {
    use etsqp::storage::page::Page;
    use etsqp::storage::Bytes;

    type Mutation = (&'static str, fn(&mut Page));
    let mutations: [Mutation; 4] = [
        ("val_payload_bitflip", |p| {
            let mut v = p.val_bytes.to_vec();
            let mid = v.len() / 2;
            v[mid] ^= 0x20;
            p.val_bytes = Bytes::from(v);
        }),
        ("ts_payload_bitflip", |p| {
            let mut v = p.ts_bytes.to_vec();
            let mid = v.len() / 2;
            v[mid] ^= 0x01;
            p.ts_bytes = Bytes::from(v);
        }),
        // Header lies: caught because the checksum covers header bytes.
        ("count_lie", |p| {
            p.header.count = p.header.count.wrapping_add(1)
        }),
        // A min/max lie tries to steer the §V verdicts into wrongly
        // excluding the page; verify-on-prune must catch it instead.
        ("minmax_lie", |p| {
            p.header.min_value = i64::MAX - 1;
            p.header.max_value = i64::MAX;
        }),
    ];

    let configs = canonical_configs();
    let mut cases = 0usize;
    for (mname, mutate) in mutations {
        // DeltaRle values + identical clocks on both series keep the
        // fused §IV pair path eligible, so JOINAGG(dot) exercises it.
        let mut fx = fixture(Spec::Atmosphere, Encoding::DeltaRle, Encoding::Ts2Diff);
        // Clean engine baselines must exist before injection.
        for qi in [0usize, 3] {
            check(&mut fx, qi, &configs[0]);
        }
        fx.store.corrupt_page(&fx.a, 1, mutate).unwrap();
        for cfg in &configs {
            // SUM(all), MIN(both) [time+value filter under prune],
            // JOINAGG(dot) [fused pair path].
            for (qname, plan) in [&fx.queries[0], &fx.queries[3], &fx.queries[14]] {
                let got = execute(plan, &fx.store, cfg);
                assert!(
                    got.is_err(),
                    "FAULT spec=atmosphere mutation={mname} cfg=[{}] query={qname}: \
                     corrupted page produced Ok({:?})",
                    cfg_label(cfg),
                    got.as_ref().map(|r| preview(&r.rows)),
                );
                cases += 1;
            }
            // The untouched series keeps answering — corruption in `a`
            // must not poison queries that never read it.
            let healthy = Plan::scan(&fx.b).aggregate(AggFunc::Sum);
            let got = execute(&healthy, &fx.store, cfg).expect("healthy series must still answer");
            let (ocols, orows) = oracle::execute(&healthy, &fx.store).unwrap();
            assert!(
                got.columns == ocols && rows_eq(&got.rows, &orows),
                "FAULT mutation={mname} cfg=[{}]: healthy series diverged",
                cfg_label(cfg),
            );
            cases += 1;
        }
    }
    assert!(cases >= 60, "fault sweep too small: {cases} cases");
    eprintln!("differential fault injection: {cases} cases, all aborted with typed errors");
}

/// Block F: quantile sketches. The t-digest answer is approximate, so
/// this block checks the documented *rank* contract instead of equality:
/// the engine's estimate, ranked against the exact sorted qualifying
/// values of its bucket, lies within `TDigest::rank_error_bound(n)` ranks
/// of the target `q·n` — across codecs, configs (partial cache on and
/// off), whole-range and bucketed shapes, and a hot+sealed tail. Each
/// query also runs twice per config: the second run answers from the
/// partial cache and must reproduce the first bit-for-bit.
#[test]
fn quantile_sketches_stay_within_rank_bound() {
    use etsqp::core::partial::TDigest;

    let check_rank = |est: f64, bucket: &mut Vec<i64>, q: f64, label: &str| {
        bucket.sort_unstable();
        let n = bucket.len();
        assert!(n > 0, "{label}: engine answered for an empty bucket");
        let rank = bucket.partition_point(|&v| (v as f64) <= est) as f64;
        let target = q * n as f64;
        let bound = TDigest::rank_error_bound(n as u64);
        assert!(
            (rank - target).abs() <= bound,
            "{label}: est={est} rank={rank} target={target} bound={bound} n={n}"
        );
        assert!(
            est >= bucket[0] as f64 && est <= bucket[n - 1] as f64,
            "{label}: est={est} outside the exact [min, max] envelope"
        );
    };

    let mut configs = canonical_configs();
    configs.push(PipelineConfig {
        partial_cache: false,
        ..Default::default()
    });
    let mut cases = 0usize;
    for spec in [Spec::Atmosphere, Spec::Timestamp, Spec::Tpch] {
        for codec in [Encoding::Ts2Diff, Encoding::DeltaRle, Encoding::StreamVByte] {
            for hot in [false, true] {
                let data = spec.generate(ROWS);
                let store = SeriesStore::new(PAGE_POINTS);
                let name = format!("{}_q", spec.label());
                store.create_series(&name, Encoding::Ts2Diff, codec);
                store
                    .append_all(&name, &data.timestamps, &data.columns[0].1)
                    .unwrap();
                store.flush(&name).unwrap();
                let mut ts = data.timestamps.clone();
                let mut vals = data.columns[0].1.clone();
                if hot {
                    let tn = *ts.last().unwrap();
                    for i in 0..40i64 {
                        let v = (i * 907) % 511 - 200;
                        store.append(&name, tn + (i + 1) * 3, v).unwrap();
                        ts.push(tn + (i + 1) * 3);
                        vals.push(v);
                    }
                }
                let t0 = ts[0];
                let span = (*ts.last().unwrap() - t0).max(1);
                let w_dt = (span / 7).max(1);
                for (func, q) in [
                    (AggFunc::P50, 0.5),
                    (AggFunc::P95, 0.95),
                    (AggFunc::P99, 0.99),
                ] {
                    for windowed in [false, true] {
                        let plan = if windowed {
                            Plan::scan(&name).window(t0, w_dt, func)
                        } else {
                            Plan::scan(&name).aggregate(func)
                        };
                        for cfg in &configs {
                            let label = format!(
                                "spec={} codec={codec:?} hot={hot} {func:?} windowed={windowed} \
                                 cfg=[{}]",
                                spec.label(),
                                cfg_label(cfg)
                            );
                            let r = execute(&plan, &store, cfg).unwrap();
                            let again = execute(&plan, &store, cfg).unwrap();
                            assert!(
                                rows_eq(&r.rows, &again.rows),
                                "{label}: cached re-run diverged from the first answer"
                            );
                            if windowed {
                                for row in &r.rows {
                                    let (Value::Int(start), v) = (row[0], row[1]) else {
                                        panic!("{label}: malformed window row {row:?}");
                                    };
                                    let Value::Float(est) = v else {
                                        panic!("{label}: quantile cell was {v:?}");
                                    };
                                    let mut bucket: Vec<i64> = ts
                                        .iter()
                                        .zip(&vals)
                                        .filter(|(&t, _)| t >= start && t < start + w_dt)
                                        .map(|(_, &v)| v)
                                        .collect();
                                    check_rank(est, &mut bucket, q, &label);
                                    cases += 1;
                                }
                            } else {
                                let Value::Float(est) = r.rows[0][0] else {
                                    panic!("{label}: quantile cell was {:?}", r.rows[0][0]);
                                };
                                let mut bucket = vals.clone();
                                check_rank(est, &mut bucket, q, &label);
                                cases += 1;
                            }
                        }
                    }
                }
            }
        }
    }
    assert!(cases >= 200, "quantile sweep too small: {cases} cases");
    eprintln!("differential quantile sweep: {cases} cases within the rank bound");
}
