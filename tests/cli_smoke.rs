//! Drives the `etsqp-cli` binary end to end through a pipe: generate a
//! dataset, query it, persist to a TsFile, reload, and re-query.

use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicU32, Ordering};

/// A per-test scratch directory, removed on drop. The path embeds the
/// process id and a counter so concurrent `cargo test` invocations (and
/// the tests within one run) never collide on a shared fixed path.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "etsqp_cli_smoke_{tag}_{}_{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn file(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn run_cli(script: &str, args: &[&str]) -> String {
    let mut child = Command::new(env!("CARGO_BIN_EXE_etsqp-cli"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn etsqp-cli");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(script.as_bytes())
        .expect("write script");
    let out = child.wait_with_output().expect("cli exit");
    assert!(out.status.success(), "cli failed: {:?}", out);
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn generate_query_save_reload() {
    let dir = TempDir::new("save_reload");
    let file = dir.file("cli_smoke.etsqp");
    let file_str = file.to_str().unwrap();

    let script = format!(
        ".gen atm 5000\n\
         .series\n\
         SELECT COUNT(atm_temperature) FROM atm_temperature\n\
         .save {file_str}\n\
         .quit\n"
    );
    let out = run_cli(&script, &[]);
    assert!(out.contains("generated Atmosphere (5000 rows"), "{out}");
    assert!(out.contains("atm_temperature: 5000 points"), "{out}");
    assert!(out.contains("5000"), "count row missing: {out}");
    assert!(out.contains("saved"), "{out}");

    // Reload via the CLI argument and query again.
    let out = run_cli(
        "SELECT COUNT(atm_humidity) FROM atm_humidity\n.quit\n",
        &[file_str],
    );
    assert!(out.contains("loaded"), "{out}");
    assert!(out.contains("5000"), "{out}");
}

#[test]
fn errors_do_not_kill_the_shell() {
    let script = ".gen atm 1000\n\
                  SELECT FROM nonsense(\n\
                  SELECT SUM(missing) FROM missing\n\
                  .bogus\n\
                  SELECT COUNT(atm_pressure) FROM atm_pressure\n\
                  .quit\n";
    let out = run_cli(script, &[]);
    // The final valid query must still have run.
    assert!(out.contains("1000"), "{out}");
}

#[test]
fn config_switches_apply() {
    let script = ".gen sine 2000\n\
                  .config threads 1 prune off fuse none vectorized off\n\
                  SELECT SUM(sine_sine0) FROM sine_sine0\n\
                  .config prune on vectorized on fuse repeat\n\
                  SELECT SUM(sine_sine0) FROM sine_sine0\n\
                  .quit\n";
    let out = run_cli(script, &[]);
    // Both engine configurations produce the same SUM line twice.
    let sums: Vec<&str> = out
        .lines()
        .filter(|l| {
            l.starts_with("SUM(")
                || l.chars()
                    .next()
                    .is_some_and(|c| c == '-' || c.is_ascii_digit())
        })
        .collect();
    assert!(sums.len() >= 2, "{out}");
}
