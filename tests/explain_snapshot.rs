//! Snapshot tests for `EXPLAIN`: the rendered physical pipeline for the
//! 23-query battery is pinned byte for byte against
//! `tests/snapshots/explain.snap`, through both the library entry point
//! (`IotDb::query` / `IotDb::explain`) and the `etsqp-cli` binary.
//!
//! To regenerate the snapshot after an intentional planner/render change:
//!
//! ```sh
//! UPDATE_EXPLAIN_SNAPSHOTS=1 cargo test --test explain_snapshot
//! ```

use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Stdio};

use etsqp::{EngineOptions, IotDb};

/// Five 64-point pages per series; threads pinned so the header line and
/// partition counts are machine-independent.
const PAGE_POINTS: usize = 64;
const THREADS: usize = 4;
const ROWS: i64 = 300;

fn fixture() -> IotDb {
    let db = IotDb::new(
        EngineOptions::default()
            .with_threads(THREADS)
            .with_page_points(PAGE_POINTS),
    );
    let ts: Vec<i64> = (0..ROWS).map(|i| 1000 + i * 10).collect();
    let a: Vec<i64> = (0..ROWS).map(|i| (i * 7) % 120 - 40).collect();
    let b: Vec<i64> = (0..ROWS).map(|i| 30 - (i % 9)).collect();
    for (name, vals) in [("snap_a", &a), ("snap_b", &b)] {
        db.create_series(name).unwrap();
        db.append_all(name, &ts, vals).unwrap();
    }
    db.flush().unwrap();
    db
}

/// The query battery of `tests/differential.rs`, in SQL form. Ranges
/// mirror the differential fixture's quartile time band, value band, and
/// ~span/9 window width against the fixed fixture above.
fn battery() -> Vec<&'static str> {
    vec![
        "SELECT SUM(A) FROM snap_a",
        "SELECT AVG(A) FROM snap_a WHERE time >= 1750 AND time <= 3240",
        "SELECT COUNT(A) FROM snap_a WHERE A >= 10 AND A <= 60",
        "SELECT MIN(A) FROM snap_a WHERE time >= 1750 AND time <= 3240 AND A >= 10 AND A <= 60",
        "SELECT MAX(A) FROM snap_a WHERE time >= 1750 AND time <= 3240",
        "SELECT VARIANCE(A) FROM snap_a",
        "SELECT FIRST(A) FROM snap_a WHERE A >= 10 AND A <= 60",
        "SELECT LAST(A) FROM snap_a",
        "SELECT SUM(A) FROM snap_a SW(1600, 300)",
        "SELECT COUNT(A) FROM snap_a WHERE A >= 10 AND A <= 60 SW(1600, 300)",
        "SELECT * FROM snap_a WHERE time >= 1750 AND time <= 3240 AND A >= 10 AND A <= 60",
        "SELECT * FROM snap_a UNION snap_b ORDER BY TIME",
        "SELECT * FROM snap_a, snap_b WHERE snap_a.A > snap_b.A",
        "SELECT snap_a.A + snap_b.A FROM snap_a, snap_b",
        "SELECT DOT(snap_a, snap_b) FROM snap_a, snap_b",
        "SELECT CORR(snap_a, snap_b) FROM snap_a, snap_b",
        // Partial-state surface: bucketed windows, quantile sketches,
        // rate/delta, and cache-eligibility (`[cacheable]`) markings.
        // SW(1000, 640) aligns bucket boundaries with the 64-point pages
        // (dt = 10, pages start at t = 1000), so whole pages land in
        // single buckets: the planner keeps them fused and cacheable.
        // GROUP BY TIME(640) snaps the origin to the epoch instead, so
        // the same width straddles pages across buckets and falls back
        // to the decode path.
        "SELECT P95(A) FROM snap_a",
        "SELECT SUM(A) FROM snap_a SW(1000, 640)",
        "SELECT P50(A) FROM snap_a SW(1000, 640)",
        "SELECT SUM(A) FROM snap_a GROUP BY TIME(640)",
        "SELECT RATE(A) FROM snap_a WHERE time >= 1750 AND time <= 3240",
        "SELECT DELTA(A) FROM snap_a SW(1000, 640)",
        "SELECT P99(A) FROM snap_a WHERE A >= 10 AND A <= 60",
    ]
}

fn snapshot_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/snapshots/explain.snap")
}

/// Renders the whole battery into one snapshot document.
fn render_battery(db: &IotDb) -> String {
    let mut doc = String::new();
    for sql in battery() {
        doc.push_str("== ");
        doc.push_str(sql);
        doc.push('\n');
        doc.push_str(&db.explain(sql).unwrap());
        doc.push('\n');
    }
    doc
}

#[test]
fn explain_battery_matches_snapshot() {
    let db = fixture();
    let got = render_battery(&db);
    let path = snapshot_path();
    if std::env::var_os("UPDATE_EXPLAIN_SNAPSHOTS").is_some() {
        std::fs::write(&path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e} (run with UPDATE_EXPLAIN_SNAPSHOTS=1 to create)",
            path.display()
        )
    });
    assert!(
        got == want,
        "EXPLAIN snapshot drifted (UPDATE_EXPLAIN_SNAPSHOTS=1 to accept).\n--- want\n{want}\n--- got\n{got}"
    );
}

/// `IotDb::query("EXPLAIN …")` must return the same rendering in
/// `QueryResult::explain` (with no rows) as `IotDb::explain`.
#[test]
fn query_statement_carries_explain_text() {
    let db = fixture();
    for sql in battery() {
        let r = db.query(&format!("EXPLAIN {sql}")).unwrap();
        assert_eq!(r.columns, vec!["plan".to_string()], "{sql}");
        assert!(r.rows.is_empty(), "{sql}");
        assert_eq!(
            r.explain.as_deref(),
            Some(db.explain(sql).unwrap().as_str()),
            "{sql}"
        );
        // Plain execution of the same statement returns rows, not a plan.
        let plain = db.query(sql).unwrap();
        assert!(plain.explain.is_none(), "{sql}");
    }
}

/// The CLI's `EXPLAIN <sql>` verb prints exactly the library rendering
/// for every battery query (same store via a TsFile round-trip, threads
/// pinned through `.config`).
#[test]
fn cli_explain_matches_library() {
    let db = fixture();
    let dir = std::env::temp_dir().join(format!("etsqp_explain_snap_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("snap.etsqp");
    etsqp::storage::tsfile::write(db.store(), &file).unwrap();

    let mut script = format!(".config threads {THREADS}\n");
    for sql in battery() {
        script.push_str(&format!("EXPLAIN {sql}\n"));
    }
    script.push_str(".quit\n");

    let mut child = Command::new(env!("CARGO_BIN_EXE_etsqp-cli"))
        .arg(file.to_str().unwrap())
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn etsqp-cli");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(script.as_bytes())
        .unwrap();
    let out = child.wait_with_output().expect("cli exit");
    std::fs::remove_dir_all(&dir).ok();
    assert!(out.status.success(), "cli failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout).replace("etsqp> ", "");

    for sql in battery() {
        let want = db.explain(sql).unwrap();
        assert!(
            stdout.contains(&want),
            "CLI EXPLAIN missing for {sql}:\n--- want\n{want}\n--- cli stdout\n{stdout}"
        );
    }
}
