//! # etsqp-sboost — the SBoost baseline
//!
//! Reimplements the comparison system of paper §VII-A (baseline 5):
//! SBoost (Jiang & Elmore, DaMoN'18) accelerates Delta decoding and
//! filtering on columnar encodings with SIMD, but — per the paper's
//! characterization — **without unpacking-layout determination and
//! without operator fusion**:
//!
//! * bit-unpacking is vectorized, in straight order (no chain layout);
//! * Delta recovery is an in-vector prefix scan with a sequential carry
//!   (the [`etsqp_simd::scan::inclusive_scan_v32`] strategy);
//! * filters run as SIMD compares over fully *materialized* decoded
//!   vectors; aggregation follows as a separate pass;
//! * multithreading splits the data into **exactly `threads` slices**,
//!   one thread each; slices of the same page depend on the previous
//!   slice's final value to resolve the Delta prefix, so threads *wait*
//!   on their predecessor (the synchronization cost the paper's Figure 8
//!   and micro-benchmarks §VII-C attribute to SBoost).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use etsqp_encoding::ts2diff;
use etsqp_storage::page::Page;
use etsqp_storage::store::SeriesStore;

/// Synchronization statistics of one query run.
#[derive(Debug, Default)]
pub struct SyncStats {
    /// Nanoseconds threads spent blocked on a predecessor slice.
    pub sync_wait_ns: AtomicU64,
    /// Decoded values materialized (bytes).
    pub materialized_bytes: AtomicU64,
}

/// Errors from the SBoost executor.
#[derive(Debug)]
pub enum Error {
    /// Underlying codec failure.
    Encoding(etsqp_encoding::Error),
    /// Storage failure.
    Storage(etsqp_storage::Error),
    /// Unsupported page encoding for this baseline.
    Unsupported(&'static str),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Encoding(e) => write!(f, "encoding: {e}"),
            Error::Storage(e) => write!(f, "storage: {e}"),
            Error::Unsupported(what) => write!(f, "unsupported: {what}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<etsqp_encoding::Error> for Error {
    fn from(e: etsqp_encoding::Error) -> Self {
        Error::Encoding(e)
    }
}

impl From<etsqp_storage::Error> for Error {
    fn from(e: etsqp_storage::Error) -> Self {
        Error::Storage(e)
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// SBoost-style decode of a TS2DIFF order-1 page: vectorized straight
/// unpack + scan-with-carry accumulation (no layout transposition).
pub fn decode_page_values(bytes: &[u8], out: &mut Vec<i64>) -> Result<()> {
    let page = ts2diff::parse(bytes)?;
    out.clear();
    if page.count == 0 {
        return Ok(());
    }
    out.reserve(page.count);
    out.push(page.first[0]);
    if page.order != 1 {
        // SBoost targets single-Delta formats; decode serially otherwise.
        let all = ts2diff::decode(bytes)?;
        *out = all;
        return Ok(());
    }
    let n = page.num_deltas();
    let mut stored = vec![0u32; n];
    let fits32 = page.width <= 32
        && (page.count as u128)
            * (page
                .delta_lower_bound()
                .unsigned_abs()
                .max(page.delta_upper_bound().unsigned_abs()) as u128)
            < (1 << 30);
    if fits32 {
        etsqp_simd::unpack::unpack_u32(page.payload, 0, page.width, &mut stored);
        let base32 = page.min_delta as u32;
        for s in stored.iter_mut() {
            *s = s.wrapping_add(base32);
        }
        // Straight in-vector scans with sequential carry.
        let mut carry = 0u32;
        let mut rel = vec![0u32; n];
        let mut pos = 0;
        while pos + 8 <= n {
            let mut v = [0u32; 8];
            v.copy_from_slice(&stored[pos..pos + 8]);
            etsqp_simd::scan::inclusive_scan_v32(&mut v, &mut carry);
            rel[pos..pos + 8].copy_from_slice(&v);
            pos += 8;
        }
        let mut acc = carry;
        for i in pos..n {
            acc = acc.wrapping_add(stored[i]);
            rel[i] = acc;
        }
        out.resize(1 + n, 0);
        let first = page.first[0];
        etsqp_simd::scan::widen_rel_i64(first, &rel, &mut out[1..]);
    } else {
        let mut wide = vec![0u64; n];
        etsqp_simd::unpack::unpack_u64(page.payload, 0, page.width, &mut wide);
        let mut cur = page.first[0];
        for &s in &wide {
            cur = cur.wrapping_add(page.min_delta.wrapping_add(s as i64));
            out.push(cur);
        }
    }
    Ok(())
}

/// The SBoost query executor over a series of TS2DIFF pages.
pub struct SboostEngine {
    pages: Vec<Arc<Page>>,
    stats: Arc<SyncStats>,
}

impl SboostEngine {
    /// Builds the executor over a series' flushed pages.
    pub fn from_store(store: &SeriesStore, series: &str) -> Result<Self> {
        Ok(SboostEngine {
            pages: store.peek_pages(series)?,
            stats: Arc::new(SyncStats::default()),
        })
    }

    /// Synchronization statistics of the last runs.
    pub fn stats(&self) -> &SyncStats {
        &self.stats
    }

    /// Total stored tuples.
    pub fn tuple_count(&self) -> u64 {
        self.pages.iter().map(|p| p.header.count as u64).sum()
    }

    /// SUM + COUNT of values whose timestamp falls in `[t_lo, t_hi]`.
    ///
    /// Splits all pages into ~`threads` slices; each slice thread unpacks
    /// its delta range immediately but must **wait** for the predecessor
    /// slice's final value before it can materialize absolute values —
    /// the synchronization the paper contrasts against ETSQP's
    /// page-preferring scheduler.
    pub fn sum_in_time_range(&self, t_lo: i64, t_hi: i64, threads: usize) -> Result<(i128, u64)> {
        let threads = threads.max(1);
        // Header-level time skipping (both systems read headers for free;
        // without this the comparison would be unfairly quadratic for
        // windowed workloads).
        let live: Vec<usize> = (0..self.pages.len())
            .filter(|&i| {
                let h = &self.pages[i].header;
                h.first_ts <= t_hi && h.last_ts >= t_lo
            })
            .collect();
        // Build the slice list: distribute `threads` slices over pages
        // proportionally to page sizes (at least one slice per page).
        let mut slices: Vec<(usize, usize, usize)> = Vec::new(); // (page, part, parts)
        let n_pages = live.len();
        if n_pages == 0 {
            return Ok((0, 0));
        }
        let per_page = (threads / n_pages).max(1);
        for &pi in &live {
            let page = &self.pages[pi];
            let parts = per_page.min((page.header.count as usize).max(1));
            for part in 0..parts {
                slices.push((pi, part, parts));
            }
        }
        // Per-page dependency chains: channel `part → part+1`.
        let mut senders: Vec<Vec<Option<crossbeam::channel::Sender<i64>>>> = Vec::new();
        let mut receivers: Vec<Vec<Option<crossbeam::channel::Receiver<i64>>>> = Vec::new();
        for (pi, page) in self.pages.iter().enumerate() {
            let parts = slices.iter().filter(|s| s.0 == pi).count();
            let mut tx_row = vec![None; parts];
            let mut rx_row = vec![None; parts];
            for part in 0..parts.saturating_sub(1) {
                let (tx, rx) = crossbeam::channel::bounded(1);
                tx_row[part] = Some(tx);
                rx_row[part + 1] = Some(rx);
            }
            let _ = page;
            senders.push(tx_row);
            receivers.push(rx_row);
        }
        let senders = std::sync::Mutex::new(senders);
        let receivers = std::sync::Mutex::new(receivers);

        let total_sum = std::sync::Mutex::new(0i128);
        let total_count = AtomicU64::new(0);
        let error = std::sync::Mutex::new(None::<Error>);
        let next = AtomicU64::new(0);
        crossbeam::scope(|scope| {
            for _ in 0..threads.min(slices.len()) {
                let slices = &slices;
                let senders = &senders;
                let receivers = &receivers;
                let total_sum = &total_sum;
                let total_count = &total_count;
                let error = &error;
                let next = &next;
                scope.spawn(move |_| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed) as usize;
                    if i >= slices.len() {
                        break;
                    }
                    let (pi, part, parts) = slices[i];
                    let tx = senders.lock().unwrap_or_else(|e| e.into_inner())[pi][part].take();
                    let rx = receivers.lock().unwrap_or_else(|e| e.into_inner())[pi][part].take();
                    match self.run_slice(pi, part, parts, t_lo, t_hi, tx, rx) {
                        Ok((s, c)) => {
                            *total_sum.lock().unwrap_or_else(|e| e.into_inner()) += s;
                            total_count.fetch_add(c, Ordering::Relaxed);
                        }
                        Err(e) => {
                            *error.lock().unwrap_or_else(|e| e.into_inner()) = Some(e);
                        }
                    }
                });
            }
        })
        // lint:allow(no-panic-paths) -- a worker panic is a bug in the slice kernel, not an input error; resuming the unwind is the only sound option in this infallible API
        .expect("sboost worker panicked");
        if let Some(e) = error.into_inner().unwrap_or_else(|e| e.into_inner()) {
            return Err(e);
        }
        Ok((
            total_sum.into_inner().unwrap_or_else(|e| e.into_inner()),
            total_count.load(Ordering::Relaxed),
        ))
    }

    #[allow(clippy::too_many_arguments)] // slice identity + range + channel pair
    fn run_slice(
        &self,
        pi: usize,
        part: usize,
        parts: usize,
        t_lo: i64,
        t_hi: i64,
        tx: Option<crossbeam::channel::Sender<i64>>,
        rx: Option<crossbeam::channel::Receiver<i64>>,
    ) -> Result<(i128, u64)> {
        let page = &self.pages[pi];
        let parsed = ts2diff::parse(&page.val_bytes)?;
        let count = parsed.count;
        let (lo, hi) = balanced_range(count, part, parts);
        // Phase 1 (no dependency): unpack this slice's deltas and compute
        // the relative prefix.
        let mut rel = Vec::with_capacity(hi - lo);
        let mut running = 0i64;
        if lo == 0 {
            rel.push(0);
        }
        let d_lo = lo.saturating_sub(1);
        let d_hi = hi.saturating_sub(1);
        if parsed.order == 1 && d_hi > d_lo {
            let mut stored = vec![0u64; d_hi - d_lo];
            etsqp_simd::unpack::unpack_u64(
                parsed.payload,
                d_lo * parsed.width as usize,
                parsed.width,
                &mut stored,
            );
            for &s in &stored {
                running = running.wrapping_add(parsed.min_delta.wrapping_add(s as i64));
                rel.push(running);
            }
        } else if parsed.order != 1 {
            return Err(Error::Unsupported("sboost slices need order-1 delta"));
        }
        // Dependency: wait for the predecessor's absolute end value.
        let base = match rx {
            Some(rx) => {
                let wait = Instant::now();
                let v = rx
                    .recv()
                    .map_err(|_| Error::Unsupported("predecessor died"))?;
                self.stats
                    .sync_wait_ns
                    .fetch_add(wait.elapsed().as_nanos() as u64, Ordering::Relaxed);
                v
            }
            None => parsed.first[0],
        };
        if let Some(tx) = tx {
            let _ = tx.send(base.wrapping_add(running));
        }
        // Phase 2: materialize absolute values, decode timestamps for the
        // same range, SIMD-filter, aggregate.
        let vals: Vec<i64> = rel.iter().map(|&r| base.wrapping_add(r)).collect();
        self.stats
            .materialized_bytes
            .fetch_add(vals.len() as u64 * 8, Ordering::Relaxed);
        let mut ts_all = Vec::new();
        decode_page_values(&page.ts_bytes, &mut ts_all)?;
        let ts = &ts_all[lo..hi.min(ts_all.len())];
        let mut mask = etsqp_simd::filter::new_mask(ts.len().max(1));
        etsqp_simd::filter::range_mask_i64(ts, t_lo, t_hi, &mut mask);
        let (sum, count) = etsqp_simd::agg::masked_sum_i64(&vals[..ts.len()], &mask);
        Ok((sum, count))
    }
}

/// Balanced `[lo, hi)` split of `count` elements (mirror of
/// `etsqp_core::slice::slice_range`, duplicated to keep baselines
/// dependency-free of the core crate).
fn balanced_range(count: usize, part: usize, parts: usize) -> (usize, usize) {
    let base = count / parts;
    let extra = count % parts;
    let lo = part * base + part.min(extra);
    (lo, lo + base + usize::from(part < extra))
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsqp_encoding::Encoding;

    fn store_with(ts: &[i64], vals: &[i64], page_points: usize) -> SeriesStore {
        let store = SeriesStore::new(page_points);
        store.create_series("s", Encoding::Ts2Diff, Encoding::Ts2Diff);
        store.append_all("s", ts, vals).unwrap();
        store.flush("s").unwrap();
        store
    }

    #[test]
    fn decode_matches_reference() {
        let vals: Vec<i64> = (0..2000).map(|i| 77 + i * 5 - (i % 13)).collect();
        let bytes = ts2diff::encode(&vals, 1);
        let mut out = Vec::new();
        decode_page_values(&bytes, &mut out).unwrap();
        assert_eq!(out, vals);
    }

    #[test]
    fn decode_wide_values() {
        let vals = vec![i64::MIN, 0, i64::MAX, 5];
        let bytes = ts2diff::encode(&vals, 1);
        let mut out = Vec::new();
        decode_page_values(&bytes, &mut out).unwrap();
        assert_eq!(out, vals);
    }

    #[test]
    fn sum_in_range_matches_naive_across_threads() {
        let ts: Vec<i64> = (0..6000).map(|i| i * 10).collect();
        let vals: Vec<i64> = (0..6000).map(|i| (i % 71) - 35).collect();
        let store = store_with(&ts, &vals, 1024);
        let engine = SboostEngine::from_store(&store, "s").unwrap();
        let want: i128 = ts
            .iter()
            .zip(&vals)
            .filter(|(&t, _)| (5_000..=45_000).contains(&t))
            .map(|(_, &v)| v as i128)
            .sum();
        for threads in [1usize, 2, 4, 8] {
            let (sum, count) = engine.sum_in_time_range(5_000, 45_000, threads).unwrap();
            assert_eq!(sum, want, "threads {threads}");
            assert_eq!(count, 4001);
        }
    }

    #[test]
    fn slice_chain_synchronization_recorded() {
        // Few pages + many threads → slices with waits.
        let ts: Vec<i64> = (0..4096).collect();
        let vals: Vec<i64> = (0..4096).map(|i| i % 9).collect();
        let store = store_with(&ts, &vals, 4096); // one page
        let engine = SboostEngine::from_store(&store, "s").unwrap();
        let (sum, count) = engine.sum_in_time_range(i64::MIN, i64::MAX, 8).unwrap();
        let want: i128 = vals.iter().map(|&v| v as i128).sum();
        assert_eq!(sum, want);
        assert_eq!(count, 4096);
        // Slices after the first must have waited at least once (the
        // counter may be tiny but the channel recv path was exercised).
        assert!(engine.stats().materialized_bytes.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn empty_series() {
        let store = SeriesStore::new(64);
        store.create_series("s", Encoding::Ts2Diff, Encoding::Ts2Diff);
        let engine = SboostEngine::from_store(&store, "s").unwrap();
        assert_eq!(engine.sum_in_time_range(0, 100, 4).unwrap(), (0, 0));
    }
}
