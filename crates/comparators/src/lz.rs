//! A small general-purpose LZSS-style byte compressor, built from
//! scratch as the "single block compressor" the comparator engines use
//! (MonetDB-like block compression; Spark/HDFS-like coarse codec).
//!
//! Format: a stream of tokens. Control byte `c`: bits examined LSB-first;
//! bit = 1 → literal byte follows; bit = 0 → match: `u16` little-endian
//! (offset 1..=4095 in the low 12 bits, length−3 in the high 4 bits,
//! lengths 3..=18).

const WINDOW: usize = 4095;
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 18;

/// Compresses `input`. The output starts with the original length (u32
/// little-endian).
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    out.extend_from_slice(&(input.len() as u32).to_le_bytes());
    // Hash chains over 3-byte prefixes.
    let mut head = vec![usize::MAX; 1 << 13];
    let mut prev = vec![usize::MAX; input.len().max(1)];
    let hash = |b: &[u8]| -> usize {
        ((b[0] as usize) << 6 ^ (b[1] as usize) << 3 ^ b[2] as usize) & ((1 << 13) - 1)
    };
    let mut i = 0usize;
    let mut ctrl_pos = out.len();
    out.push(0);
    let mut ctrl_bits = 0u8;
    let mut ctrl_used = 0u8;
    let flush_ctrl = |out: &mut Vec<u8>, ctrl_pos: &mut usize, bits: &mut u8, used: &mut u8| {
        out[*ctrl_pos] = *bits;
        *ctrl_pos = out.len();
        out.push(0);
        *bits = 0;
        *used = 0;
    };
    while i < input.len() {
        // Find the best match in the window via the hash chain.
        let mut best_len = 0usize;
        let mut best_off = 0usize;
        if i + MIN_MATCH <= input.len() {
            let h = hash(&input[i..]);
            let mut cand = head[h];
            let mut tries = 16;
            while cand != usize::MAX && tries > 0 && i - cand <= WINDOW {
                let max = MAX_MATCH.min(input.len() - i);
                let mut l = 0;
                while l < max && input[cand + l] == input[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_off = i - cand;
                    if l == MAX_MATCH {
                        break;
                    }
                }
                cand = prev[cand];
                tries -= 1;
            }
        }
        if best_len >= MIN_MATCH {
            // Match token (control bit 0).
            let token = (best_off as u16) | (((best_len - MIN_MATCH) as u16) << 12);
            out.extend_from_slice(&token.to_le_bytes());
            // Insert hash entries for every covered position.
            let end = i + best_len;
            while i < end && i + MIN_MATCH <= input.len() {
                let h = hash(&input[i..]);
                prev[i] = head[h];
                head[h] = i;
                i += 1;
            }
            i = end;
        } else {
            ctrl_bits |= 1 << ctrl_used;
            out.push(input[i]);
            if i + MIN_MATCH <= input.len() {
                let h = hash(&input[i..]);
                prev[i] = head[h];
                head[h] = i;
            }
            i += 1;
        }
        ctrl_used += 1;
        if ctrl_used == 8 {
            flush_ctrl(&mut out, &mut ctrl_pos, &mut ctrl_bits, &mut ctrl_used);
        }
    }
    out[ctrl_pos] = ctrl_bits;
    out
}

/// Decompresses a [`compress`]-produced stream.
pub fn decompress(input: &[u8]) -> Option<Vec<u8>> {
    if input.len() < 4 {
        return None;
    }
    let out_len = u32::from_le_bytes(input[..4].try_into().ok()?) as usize;
    if out_len > (1 << 30) {
        return None;
    }
    let mut out = Vec::with_capacity(out_len);
    let mut i = 4usize;
    'outer: while out.len() < out_len {
        let ctrl = *input.get(i)?;
        i += 1;
        for bit in 0..8 {
            if out.len() >= out_len {
                break 'outer;
            }
            if ctrl & (1 << bit) != 0 {
                out.push(*input.get(i)?);
                i += 1;
            } else {
                let token = u16::from_le_bytes([*input.get(i)?, *input.get(i + 1)?]);
                i += 2;
                let off = (token & 0x0FFF) as usize;
                let len = ((token >> 12) as usize) + MIN_MATCH;
                if off == 0 || off > out.len() {
                    return None;
                }
                let start = out.len() - off;
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
        }
    }
    (out.len() == out_len).then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_text() {
        let data = b"the quick brown fox jumps over the lazy dog the quick brown fox".repeat(20);
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
        assert!(c.len() < data.len(), "compressible text must shrink");
    }

    #[test]
    fn roundtrip_empty_and_tiny() {
        for data in [&b""[..], b"a", b"ab", b"abc"] {
            let c = compress(data);
            assert_eq!(decompress(&c).unwrap(), data);
        }
    }

    #[test]
    fn roundtrip_binary_columns() {
        // Big-endian i64 columns: the realistic input for the engines.
        let vals: Vec<i64> = (0..5000).map(|i| 100_000 + i * 3).collect();
        let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_be_bytes()).collect();
        let c = compress(&bytes);
        assert_eq!(decompress(&c).unwrap(), bytes);
        assert!(c.len() < bytes.len());
    }

    #[test]
    fn roundtrip_incompressible() {
        let data: Vec<u8> = (0..4096u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn corrupt_streams_rejected() {
        let data = b"hello world hello world hello world".to_vec();
        let c = compress(&data);
        assert!(decompress(&c[..c.len() - 3]).is_none());
        assert!(decompress(&[1, 2]).is_none());
    }
}
