//! MonetDB-like columnar engine: single general-purpose block codec,
//! full decompression + materialization, column-at-a-time operators.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::lz;
use crate::AggAnswer;

/// Rows per compressed column block.
pub const BLOCK_ROWS: usize = 8192;

struct ColumnBlock {
    compressed: Vec<u8>,
    first_ts: i64,
    last_ts: i64,
    rows: usize,
}

/// A two-column (time, value) table stored as compressed blocks.
pub struct MonetLike {
    ts_blocks: Vec<ColumnBlock>,
    val_blocks: Vec<Vec<u8>>,
    bytes_read: AtomicU64,
}

fn pack_i64(vals: &[i64]) -> Vec<u8> {
    let raw: Vec<u8> = vals.iter().flat_map(|v| v.to_be_bytes()).collect();
    lz::compress(&raw)
}

fn unpack_i64(bytes: &[u8]) -> Option<Vec<i64>> {
    let raw = lz::decompress(bytes)?;
    if raw.len() % 8 != 0 {
        return None;
    }
    Some(
        raw.chunks_exact(8)
            .map(|c| i64::from_be_bytes(c.try_into().unwrap()))
            .collect(),
    )
}

impl MonetLike {
    /// Loads a series into the columnar store.
    pub fn load(ts: &[i64], vals: &[i64]) -> Self {
        assert_eq!(ts.len(), vals.len());
        let mut ts_blocks = Vec::new();
        let mut val_blocks = Vec::new();
        for (tc, vc) in ts.chunks(BLOCK_ROWS).zip(vals.chunks(BLOCK_ROWS)) {
            ts_blocks.push(ColumnBlock {
                compressed: pack_i64(tc),
                first_ts: tc[0],
                last_ts: *tc.last().unwrap(),
                rows: tc.len(),
            });
            val_blocks.push(pack_i64(vc));
        }
        MonetLike {
            ts_blocks,
            val_blocks,
            bytes_read: AtomicU64::new(0),
        }
    }

    /// Total compressed size.
    pub fn compressed_len(&self) -> usize {
        self.ts_blocks
            .iter()
            .map(|b| b.compressed.len())
            .chain(self.val_blocks.iter().map(|b| b.len()))
            .sum()
    }

    /// Total rows.
    pub fn rows(&self) -> usize {
        self.ts_blocks.iter().map(|b| b.rows).sum()
    }

    /// SUM/COUNT over `[t_lo, t_hi]`: per overlapping block, decompress
    /// **both** columns fully (MonetDB's block materialization), build a
    /// selection vector from the time column, then aggregate the value
    /// column through it — column-at-a-time.
    pub fn sum_in_time_range(&self, t_lo: i64, t_hi: i64) -> AggAnswer {
        let mut sum = 0i128;
        let mut count = 0u64;
        for (tb, vb) in self.ts_blocks.iter().zip(&self.val_blocks) {
            if tb.first_ts > t_hi || tb.last_ts < t_lo {
                continue; // zone-map skip (MonetDB imprints-style)
            }
            self.bytes_read
                .fetch_add((tb.compressed.len() + vb.len()) as u64, Ordering::Relaxed);
            let ts = unpack_i64(&tb.compressed).expect("self-written block");
            let vals = unpack_i64(vb).expect("self-written block");
            // Selection vector (positions), then aggregate pass.
            let sel: Vec<usize> = ts
                .iter()
                .enumerate()
                .filter(|(_, &t)| t >= t_lo && t <= t_hi)
                .map(|(i, _)| i)
                .collect();
            for &i in &sel {
                sum += vals[i] as i128;
            }
            count += sel.len() as u64;
        }
        AggAnswer {
            sum,
            count,
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_matches_naive() {
        let ts: Vec<i64> = (0..20_000).map(|i| i * 5).collect();
        let vals: Vec<i64> = (0..20_000).map(|i| (i % 131) - 60).collect();
        let engine = MonetLike::load(&ts, &vals);
        let ans = engine.sum_in_time_range(10_000, 60_000);
        let want: i128 = ts
            .iter()
            .zip(&vals)
            .filter(|(&t, _)| (10_000..=60_000).contains(&t))
            .map(|(_, &v)| v as i128)
            .sum();
        assert_eq!(ans.sum, want);
        assert_eq!(ans.count, 10_001);
        assert!(ans.bytes_read > 0);
    }

    #[test]
    fn zone_maps_skip_blocks() {
        let ts: Vec<i64> = (0..BLOCK_ROWS as i64 * 4).collect();
        let vals = ts.clone();
        let engine = MonetLike::load(&ts, &vals);
        let ans = engine.sum_in_time_range(0, 10);
        // Only the first block pair should be touched.
        let first_pair =
            engine.ts_blocks[0].compressed.len() as u64 + engine.val_blocks[0].len() as u64;
        assert_eq!(ans.bytes_read, first_pair);
    }

    #[test]
    fn general_codec_weaker_than_iot_codec() {
        // The Fig. 13 premise: LZ on raw columns beats nothing but loses
        // clearly to the IoT delta encoder on smooth series.
        let ts: Vec<i64> = (0..50_000).map(|i| 1_000_000 + i * 100).collect();
        let vals: Vec<i64> = (0..50_000).map(|i| 2_000 + (i % 50)).collect();
        let engine = MonetLike::load(&ts, &vals);
        let iot_ts = etsqp_encoding::Encoding::Ts2Diff.encode_i64(&ts);
        let iot_vals = etsqp_encoding::Encoding::Ts2Diff.encode_i64(&vals);
        assert!(engine.compressed_len() > (iot_ts.len() + iot_vals.len()) * 2);
    }
}
