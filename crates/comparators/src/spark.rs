//! Spark/HDFS-like engine: large row groups under a general-purpose
//! codec, row-oriented scan, and a fixed per-query code-generation
//! latency (whole-stage codegen planning).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::lz;
use crate::AggAnswer;

/// Rows per row group (HDFS-block-scale granularity, scaled down).
pub const GROUP_ROWS: usize = 65_536;

/// Simulated query planning / whole-stage-codegen latency.
pub const CODEGEN_LATENCY: Duration = Duration::from_millis(12);

struct RowGroup {
    compressed: Vec<u8>,
    first_ts: i64,
    last_ts: i64,
    rows: usize,
}

/// A (time, value) table stored as row-major compressed groups.
pub struct SparkLike {
    groups: Vec<RowGroup>,
    bytes_read: AtomicU64,
    /// When false, the per-query codegen sleep is skipped (unit tests).
    pub simulate_codegen: bool,
}

impl SparkLike {
    /// Loads a series into row groups.
    pub fn load(ts: &[i64], vals: &[i64]) -> Self {
        assert_eq!(ts.len(), vals.len());
        let mut groups = Vec::new();
        for (tc, vc) in ts.chunks(GROUP_ROWS).zip(vals.chunks(GROUP_ROWS)) {
            // Row-major: interleaved (t, v) pairs — the row-oriented shape
            // that forces full-row decompression for any column.
            let mut raw = Vec::with_capacity(tc.len() * 16);
            for (&t, &v) in tc.iter().zip(vc) {
                raw.extend_from_slice(&t.to_be_bytes());
                raw.extend_from_slice(&v.to_be_bytes());
            }
            groups.push(RowGroup {
                compressed: lz::compress(&raw),
                first_ts: tc[0],
                last_ts: *tc.last().unwrap(),
                rows: tc.len(),
            });
        }
        SparkLike {
            groups,
            bytes_read: AtomicU64::new(0),
            simulate_codegen: true,
        }
    }

    /// Total compressed size.
    pub fn compressed_len(&self) -> usize {
        self.groups.iter().map(|g| g.compressed.len()).sum()
    }

    /// Total rows.
    pub fn rows(&self) -> usize {
        self.groups.iter().map(|g| g.rows).sum()
    }

    /// SUM/COUNT over `[t_lo, t_hi]`: pay the codegen latency, then scan
    /// overlapping row groups row-by-row after full decompression.
    pub fn sum_in_time_range(&self, t_lo: i64, t_hi: i64) -> AggAnswer {
        if self.simulate_codegen {
            std::thread::sleep(CODEGEN_LATENCY);
        }
        let mut sum = 0i128;
        let mut count = 0u64;
        for g in &self.groups {
            if g.first_ts > t_hi || g.last_ts < t_lo {
                continue; // footer min/max skip (Parquet-style)
            }
            self.bytes_read
                .fetch_add(g.compressed.len() as u64, Ordering::Relaxed);
            let raw = lz::decompress(&g.compressed).expect("self-written group");
            for row in raw.chunks_exact(16) {
                let t = i64::from_be_bytes(row[..8].try_into().unwrap());
                if t >= t_lo && t <= t_hi {
                    let v = i64::from_be_bytes(row[8..].try_into().unwrap());
                    sum += v as i128;
                    count += 1;
                }
            }
        }
        AggAnswer {
            sum,
            count,
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_matches_naive() {
        let ts: Vec<i64> = (0..100_000).map(|i| i * 2).collect();
        let vals: Vec<i64> = (0..100_000).map(|i| i % 977).collect();
        let mut engine = SparkLike::load(&ts, &vals);
        engine.simulate_codegen = false;
        let ans = engine.sum_in_time_range(50_000, 150_000);
        let want: i128 = ts
            .iter()
            .zip(&vals)
            .filter(|(&t, _)| (50_000..=150_000).contains(&t))
            .map(|(_, &v)| v as i128)
            .sum();
        assert_eq!(ans.sum, want);
        assert_eq!(ans.count, 50_001);
    }

    #[test]
    fn general_codec_weaker_than_iot_codec() {
        // The Fig. 13 premise: the HDFS-style general-purpose codec
        // cannot approach the IoT delta encoder on sensor streams, so the
        // Spark-like engine pays far more I/O per tuple.
        let ts: Vec<i64> = (0..80_000).map(|i| 1_600_000_000_000 + i * 1000).collect();
        let vals: Vec<i64> = (0..80_000).map(|i| 500 + (i % 20)).collect();
        let spark = SparkLike::load(&ts, &vals);
        let iot = etsqp_encoding::Encoding::Ts2Diff.encode_i64(&ts).len()
            + etsqp_encoding::Encoding::Ts2Diff.encode_i64(&vals).len();
        assert!(
            spark.compressed_len() > iot * 3,
            "spark-like {} vs iot {}",
            spark.compressed_len(),
            iot
        );
    }

    #[test]
    fn group_skipping() {
        let n = GROUP_ROWS as i64 * 3;
        let ts: Vec<i64> = (0..n).collect();
        let vals = ts.clone();
        let mut engine = SparkLike::load(&ts, &vals);
        engine.simulate_codegen = false;
        let ans = engine.sum_in_time_range(0, 100);
        assert_eq!(ans.bytes_read, engine.groups[0].compressed.len() as u64);
    }
}
