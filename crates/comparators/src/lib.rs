//! # etsqp-comparators — simplified analytical engines for Figure 13
//!
//! The paper's deployment study (§VII-E) compares four systems: IoTDB,
//! IoTDB-SIMD (ETSQP integrated), MonetDB, and Spark/HDFS. The first two
//! come from `etsqp-core` (`EngineOptions::serial()` and
//! `EngineOptions::etsqp()`); this crate provides *behavioural stand-ins*
//! for the external two, exercising the code paths the paper blames:
//!
//! * [`monet::MonetLike`] — a block-wise decompress-then-process columnar
//!   engine: columns stored as general-purpose-compressed blocks (single
//!   encoder, no IoT deltas), fully materialized before column-at-a-time
//!   operators run. Higher I/O (weaker ratio) + materialization cost.
//! * [`spark::SparkLike`] — a coarse row-group engine with the same byte
//!   codec over large groups plus a fixed per-query code-generation
//!   latency (Spark's JIT planning), modelling the "HDFS compressor is
//!   not efficient enough to reduce I/O" bottleneck.
//!
//! These are simulations of closed external systems — see DESIGN.md §3
//! for why the substitution preserves the comparison's shape.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod lz;
pub mod monet;
pub mod spark;

/// Aggregate answer returned by the comparator engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AggAnswer {
    /// Exact sum of qualifying values.
    pub sum: i128,
    /// Number of qualifying tuples.
    pub count: u64,
    /// Encoded bytes read to answer the query.
    pub bytes_read: u64,
}
