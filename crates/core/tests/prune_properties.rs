//! Property tests for the §V suffix-pruning rules (Propositions 4–5)
//! against *real* encoded pages.
//!
//! The invariant under test: whenever [`prune_rest`] answers `StopRest`
//! at position `k`, no element after `k` matches the filter `[c1, c2]`.
//! Bounds come from the actual page (`DeltaBounds::from_*`), values from
//! the page's own decode — so the test exercises the full statistics
//! pipeline (encode → header widths → bounds → rule), not hand-picked
//! bounds.

use etsqp_core::prune::{prune_rest, DeltaBounds, PruneDecision};
use etsqp_encoding::{delta_rle, ts2diff};
use proptest::prelude::*;

/// Random (Δ, run) sequences materialized into a value vector — the
/// native shape of Delta-RLE.
fn run_length_series() -> impl Strategy<Value = Vec<i64>> {
    (
        -1_000_000i64..1_000_000,
        proptest::collection::vec((-5000i64..5000, 1usize..12), 1..40),
    )
        .prop_map(|(start, pairs)| {
            let mut v = start;
            let mut out = vec![v];
            for (delta, run) in pairs {
                for _ in 0..run {
                    v += delta;
                    out.push(v);
                }
            }
            out
        })
}

/// Filter windows drawn relative to the series' own spread so that the
/// interesting below/inside/above transitions all occur.
fn filter_for(values: &[i64], lo_off: i64, width: i64) -> (i64, i64) {
    let min = *values.iter().min().unwrap();
    let max = *values.iter().max().unwrap();
    let span = (max - min).max(1);
    let c1 = min + lo_off.rem_euclid(span);
    (c1, c1 + width.rem_euclid(span).max(1))
}

/// Simulated scan: consult `prune_rest` at every position; on StopRest,
/// every later element must fail the filter.
fn assert_sound(
    bounds: &DeltaBounds,
    values: &[i64],
    c1: i64,
    c2: i64,
) -> Result<(), TestCaseError> {
    let n = values.len();
    for (k, &v) in values.iter().enumerate() {
        if prune_rest(bounds, v, k, n, c1, c2) == PruneDecision::StopRest {
            for (j, &x) in values.iter().enumerate().skip(k + 1) {
                prop_assert!(
                    x < c1 || x > c2,
                    "StopRest at k={k} (v={v}) pruned match v[{j}]={x} within [{c1}, {c2}] \
                     bounds={bounds:?}"
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Proposition 5 soundness on real Delta-RLE pages: the bounds read
    /// from the encoded page never let `prune_rest` cut a true match.
    #[test]
    fn delta_rle_prune_never_cuts_matches(
        values in run_length_series(),
        lo_off in 0i64..2_000_000,
        width in 1i64..2_000_000,
    ) {
        let bytes = delta_rle::encode(&values);
        let page = delta_rle::parse(&bytes).unwrap();
        let decoded = delta_rle::decode(&bytes).unwrap();
        prop_assert_eq!(&decoded, &values);
        let bounds = DeltaBounds::from_delta_rle(&page);
        // The header-derived bounds must actually bound every delta.
        for w in values.windows(2) {
            let d = w[1] - w[0];
            prop_assert!(d >= bounds.d_min && d <= bounds.d_max,
                "delta {d} outside [{}, {}]", bounds.d_min, bounds.d_max);
        }
        let (c1, c2) = filter_for(&values, lo_off, width);
        assert_sound(&bounds, &values, c1, c2)?;
    }

    /// Proposition 4 soundness on real TS2DIFF pages (`R_M = 1`).
    #[test]
    fn ts2diff_prune_never_cuts_matches(
        values in run_length_series(),
        lo_off in 0i64..2_000_000,
        width in 1i64..2_000_000,
    ) {
        let bytes = ts2diff::encode(&values, 1);
        let page = ts2diff::parse(&bytes).unwrap();
        let bounds = DeltaBounds::from_ts2diff(&page);
        let (c1, c2) = filter_for(&values, lo_off, width);
        assert_sound(&bounds, &values, c1, c2)?;
    }

    /// The monotone shortcut (ordered sequences, Example 2) is likewise
    /// sound: strictly increasing series, filter passed — nothing later
    /// can fit.
    #[test]
    fn monotone_shortcut_sound_on_ordered_series(
        start in 0i64..1_000_000,
        steps in proptest::collection::vec(1i64..1000, 1..200),
        lo_off in 0i64..1_000_000,
        width in 1i64..1_000_000,
    ) {
        let mut v = start;
        let mut values = vec![v];
        for s in steps {
            v += s;
            values.push(v);
        }
        let bytes = ts2diff::encode(&values, 1);
        let page = ts2diff::parse(&bytes).unwrap();
        let bounds = DeltaBounds::from_ts2diff(&page);
        prop_assert!(bounds.d_min >= 0, "ordered series must give non-negative d_min");
        let (c1, c2) = filter_for(&values, lo_off, width);
        assert_sound(&bounds, &values, c1, c2)?;
    }
}

// ---------------------------------------------------------------------
// Prune-verdict validation: corrupted headers must never change answers
// ---------------------------------------------------------------------

mod verdict_validation {
    use super::run_length_series;
    use etsqp_core::decode::DecodeOptions;
    use etsqp_core::exec::Scheduler;
    use etsqp_core::expr::{AggFunc, Plan, Predicate};
    use etsqp_core::fused::FuseLevel;
    use etsqp_core::oracle;
    use etsqp_core::plan::{execute, PipelineConfig};
    use etsqp_encoding::Encoding;
    use etsqp_storage::page::Page;
    use etsqp_storage::store::SeriesStore;
    use proptest::prelude::*;

    fn pruning_cfg() -> PipelineConfig {
        PipelineConfig {
            threads: 1,
            prune: true,
            fuse: FuseLevel::DeltaRepeat,
            vectorized: true,
            decode: DecodeOptions::default(),
            allow_slicing: false,
            decode_budget_bytes: None,
            scheduler: Scheduler::Pool,
            partial_cache: true,
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Propositions 4–5 are *validated*, not trusted: whatever lie a
        /// corrupted header tells (min/max steering the §V verdict,
        /// count/first/last steering layout), the engine must either
        /// reject the page or answer exactly as a full decode would —
        /// never a silently wrong pruned aggregate.
        #[test]
        fn corrupted_header_never_changes_answers(
            values in run_length_series(),
            page_points in 8usize..32,
            field in 0usize..5,
            lie in 1i64..1_000_000,
        ) {
            let store = SeriesStore::new(page_points);
            store.create_series("s", Encoding::Ts2Diff, Encoding::DeltaRle);
            for (i, &v) in values.iter().enumerate() {
                store.append("s", 1000 + i as i64 * 10, v).unwrap();
            }
            store.flush("s").unwrap();

            // A filter band inside the data's spread, so §V verdicts on
            // honest pages land on both sides.
            let (c1, c2) = super::filter_for(&values, 7, 5000);
            let plan = Plan::scan("s")
                .filter(Predicate { time: None, value: Some((c1, c2)) })
                .aggregate(AggFunc::Sum);
            let honest = oracle::execute(&plan, &store).unwrap();

            let n_pages = store.page_count("s").unwrap();
            let target = values.len() % n_pages;
            store
                .corrupt_page("s", target, |p| match field {
                    0 => p.header.min_value = p.header.min_value.wrapping_sub(lie),
                    1 => p.header.max_value = p.header.max_value.wrapping_add(lie),
                    2 => p.header.count = p.header.count.wrapping_add(lie as u32),
                    3 => p.header.first_ts = p.header.first_ts.wrapping_sub(lie),
                    _ => p.header.last_ts = p.header.last_ts.wrapping_add(lie),
                })
                .unwrap();

            match execute(&plan, &store, &pruning_cfg()) {
                Err(_) => {} // rejected: the acceptable outcome
                Ok(got) => prop_assert_eq!(
                    (got.columns, got.rows),
                    honest,
                    "corrupted header changed a pruned answer (field={}, lie={})",
                    field,
                    lie
                ),
            }
        }

        /// A serialized page image with any single bit flipped must be
        /// rejected by `Page::from_bytes` — the checksum trailer covers
        /// header bytes, both payload chunks, and itself.
        #[test]
        fn flipped_image_bit_is_rejected(
            values in run_length_series(),
            flip_pos in 0usize..1_000_000,
            bit in 0u8..8,
        ) {
            let ts: Vec<i64> = (0..values.len() as i64).map(|i| 500 + i * 5).collect();
            let page = Page::encode(&ts, &values, Encoding::Ts2Diff, Encoding::DeltaRle).unwrap();
            let mut image = page.to_bytes();
            let pos = flip_pos % image.len();
            image[pos] ^= 1 << bit;
            prop_assert!(
                Page::from_bytes(&image).is_err(),
                "bit {} of byte {}/{} flipped yet the image was accepted",
                bit, pos, image.len()
            );
        }
    }
}
