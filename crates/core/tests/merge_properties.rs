//! Property tests for the binary merge layer: the planner's time
//! partitions (`merge_partitions`, surfaced through the compiled
//! [`RootNode`]) must tile the whole time axis, and partitioned execution
//! (`binary_merge_partitioned`) must agree exactly with the naive oracle
//! for every thread count — including adversarial inputs with duplicate
//! boundary timestamps across the two series and partitions that keep no
//! pages at all.

use etsqp_core::expr::{BinOp, CmpOp, Plan, TimeRange};
use etsqp_core::oracle;
use etsqp_core::physical::node::RootNode;
use etsqp_core::physical::pipe;
use etsqp_core::plan::{execute, PipelineConfig, Value};
use etsqp_encoding::Encoding;
use etsqp_storage::store::SeriesStore;
use proptest::prelude::*;

/// Small pages → many partition cut candidates per case.
const PAGE_POINTS: usize = 16;

#[derive(Debug, Clone)]
struct Pair {
    lt: Vec<i64>,
    lv: Vec<i64>,
    rt: Vec<i64>,
    rv: Vec<i64>,
}

/// Draws two series from one shared, strictly increasing timestamp pool:
/// membership masks decide which points land in which series, so the two
/// sides share many exact timestamps (merge ties, equal page-boundary
/// `first_ts` cuts) while each side stays strictly increasing. Steps mix
/// dense runs with huge jumps so some planner partitions cover no pages.
fn pair_strategy() -> impl Strategy<Value = Pair> {
    (
        proptest::collection::vec(
            (
                prop_oneof![1i64..8, 1_000_000i64..1_000_001],
                -100i64..100,
                0u8..4,
            ),
            1..400,
        ),
        -50i64..50,
    )
        .prop_map(|(steps, v0)| {
            let mut p = Pair {
                lt: Vec::new(),
                lv: Vec::new(),
                rt: Vec::new(),
                rv: Vec::new(),
            };
            let mut t = 1_000_000i64;
            let mut v = v0;
            for (dt, dv, mask) in steps {
                t += dt;
                v += dv;
                // mask: 0 → left only, 1 → right only, 2/3 → both
                // (shared timestamps are the adversarial case, so they
                // get half the probability mass).
                if mask != 1 {
                    p.lt.push(t);
                    p.lv.push(v);
                }
                if mask != 0 {
                    p.rt.push(t);
                    p.rv.push(v.wrapping_mul(3) % 1000);
                }
            }
            p
        })
}

fn store_of(p: &Pair) -> SeriesStore {
    let store = SeriesStore::new(PAGE_POINTS);
    for (name, ts, vals) in [("l", &p.lt, &p.lv), ("r", &p.rt, &p.rv)] {
        store.create_series(name, Encoding::Ts2Diff, Encoding::Ts2Diff);
        store.append_all(name, ts, vals).unwrap();
        store.flush(name).unwrap();
    }
    store
}

fn cfg_with(threads: usize, vectorized: bool) -> PipelineConfig {
    PipelineConfig {
        threads,
        vectorized,
        ..Default::default()
    }
}

fn binary_plans() -> Vec<Plan> {
    vec![
        Plan::Union {
            left: Box::new(Plan::scan("l")),
            right: Box::new(Plan::scan("r")),
        },
        Plan::Join {
            left: Box::new(Plan::scan("l")),
            right: Box::new(Plan::scan("r")),
            on: None,
        },
        Plan::Join {
            left: Box::new(Plan::scan("l")),
            right: Box::new(Plan::scan("r")),
            on: Some(CmpOp::Gt),
        },
        Plan::JoinExpr {
            left: Box::new(Plan::scan("l")),
            right: Box::new(Plan::scan("r")),
            op: BinOp::Add,
        },
    ]
}

/// The planner's partitions must tile `[i64::MIN, i64::MAX]` exactly:
/// first lo is −∞, last hi is +∞, and consecutive ranges are adjacent
/// (disjoint with no gap). Duplicate first-timestamps across the two page
/// lists must collapse into one cut, never a zero-width or inverted range.
fn assert_partition_tiling(partitions: &[TimeRange], threads: usize) {
    assert!(!partitions.is_empty());
    assert!(
        partitions.len() <= (threads * 2).max(1),
        "{} partitions for {threads} threads",
        partitions.len()
    );
    assert_eq!(partitions[0].lo, i64::MIN);
    assert_eq!(partitions.last().unwrap().hi, i64::MAX);
    for w in partitions.windows(2) {
        assert!(w[0].hi < i64::MAX && w[1].lo == w[0].hi + 1, "gap/overlap");
    }
    for r in partitions {
        assert!(r.lo <= r.hi, "inverted partition {r:?}");
    }
}

fn partitions_of(plan: &Plan, store: &SeriesStore, cfg: &PipelineConfig) -> Vec<TimeRange> {
    let phys = pipe::compile(plan, store, cfg).unwrap();
    match phys.root {
        RootNode::Union { partitions } | RootNode::Join { partitions, .. } => partitions,
        other => panic!("binary plan compiled to {other:?}"),
    }
}

fn rows_of(plan: &Plan, store: &SeriesStore, cfg: &PipelineConfig) -> Vec<Vec<Value>> {
    execute(plan, store, cfg).unwrap().rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// 1-thread, N-thread and serial execution all agree with the oracle
    /// on every binary operator, and every compiled partition set tiles
    /// the time axis.
    #[test]
    fn partitioned_binary_merge_agrees_with_oracle(pair in pair_strategy()) {
        let store = store_of(&pair);
        for plan in binary_plans() {
            let (_, want) = oracle::execute(&plan, &store).unwrap();
            for threads in [1usize, 3, 8] {
                let cfg = cfg_with(threads, true);
                assert_partition_tiling(&partitions_of(&plan, &store, &cfg), threads);
                prop_assert_eq!(&rows_of(&plan, &store, &cfg), &want);
            }
            // Byte-serial baseline through the same driver.
            prop_assert_eq!(&rows_of(&plan, &store, &cfg_with(1, false)), &want);
        }
    }
}

/// All points in one dense cluster: most of the planner's partitions keep
/// zero pages, and the stitched result must still be exact.
#[test]
fn empty_partitions_are_harmless() {
    let store = SeriesStore::new(PAGE_POINTS);
    for (name, base) in [("l", 0i64), ("r", 5i64)] {
        store.create_series(name, Encoding::Ts2Diff, Encoding::Ts2Diff);
        for i in 0..40i64 {
            store.append(name, base + i * 10, i).unwrap();
        }
        store.flush(name).unwrap();
    }
    for plan in binary_plans() {
        let (_, want) = oracle::execute(&plan, &store).unwrap();
        for threads in [1usize, 8] {
            let cfg = cfg_with(threads, true);
            assert_partition_tiling(&partitions_of(&plan, &store, &cfg), threads);
            assert_eq!(rows_of(&plan, &store, &cfg), want);
        }
    }
}

/// Identical series: every timestamp is a duplicate boundary timestamp.
/// Union must emit left-then-right for every tie; join matches every row.
#[test]
fn fully_duplicate_timestamps_merge_exactly() {
    let store = SeriesStore::new(PAGE_POINTS);
    let ts: Vec<i64> = (0..100).map(|i| i * 7).collect();
    for (name, mult) in [("l", 1i64), ("r", -2i64)] {
        store.create_series(name, Encoding::Ts2Diff, Encoding::Ts2Diff);
        let vals: Vec<i64> = (0..100).map(|i| i * mult).collect();
        store.append_all(name, &ts, &vals).unwrap();
        store.flush(name).unwrap();
    }
    for plan in binary_plans() {
        let (_, want) = oracle::execute(&plan, &store).unwrap();
        for threads in [1usize, 4] {
            assert_eq!(rows_of(&plan, &store, &cfg_with(threads, true)), want);
        }
    }
}

/// One side holds no pages at all: union degenerates to a scan of the
/// other side, joins to the empty result — at every thread count.
#[test]
fn one_empty_side_degenerates_cleanly() {
    let store = SeriesStore::new(PAGE_POINTS);
    store.create_series("l", Encoding::Ts2Diff, Encoding::Ts2Diff);
    store.create_series("r", Encoding::Ts2Diff, Encoding::Ts2Diff);
    for i in 0..50i64 {
        store.append("l", i * 3, i).unwrap();
    }
    store.flush("l").unwrap();
    for plan in binary_plans() {
        let (_, want) = oracle::execute(&plan, &store).unwrap();
        for threads in [1usize, 4] {
            let cfg = cfg_with(threads, true);
            assert_partition_tiling(&partitions_of(&plan, &store, &cfg), threads);
            assert_eq!(rows_of(&plan, &store, &cfg), want);
        }
    }
}
