//! Live-ingestion query tests: `SELECT` must see data the moment it is
//! appended — no `flush` — and queries spanning hot + sealed data must
//! match the scalar oracle bit-for-bit, including while writers are
//! appending concurrently.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use etsqp_core::expr::{AggFunc, PairAggFunc, Plan, Predicate, TimeRange};
use etsqp_core::float::{aggregate_f64, scan_f64, FloatRange};
use etsqp_core::oracle;
use etsqp_core::plan::{execute, PipelineConfig, Value};
use etsqp_encoding::Encoding;
use etsqp_storage::store::{SeriesStore, StoreOptions};

fn cfg() -> PipelineConfig {
    PipelineConfig {
        threads: 4,
        ..Default::default()
    }
}

/// A store with sealed pages *and* a hot tail on two series: 1000 points
/// seal into pages of 128, the last 72 stay buffered (1000 % 128), so
/// every query below spans both halves.
fn live_store() -> SeriesStore {
    let store = SeriesStore::new(128);
    for (name, stride) in [("a", 3i64), ("b", 5i64)] {
        store.create_series(name, Encoding::Ts2Diff, Encoding::Ts2Diff);
        for i in 0..1000i64 {
            store.append(name, i * 2, (i * stride) % 101 - 50).unwrap();
        }
        assert!(store.buffered_points(name).unwrap() > 0, "hot tail exists");
    }
    store
}

/// The query sweep: unary aggregates (incl. order-sensitive FIRST/LAST),
/// filters that hit the hot chunk, windows, scans, and every binary
/// operator. All compared cell-for-cell against the oracle.
fn sweep() -> Vec<Plan> {
    let late = Predicate {
        // Only the hot tail: sealed data ends at ts 2*927=1854... the
        // last sealed point is i=927 (ts 1854); hot covers i=928..999.
        time: Some(TimeRange { lo: 1856, hi: 1998 }),
        value: None,
    };
    let valued = Predicate {
        time: None,
        value: Some((-20, 20)),
    };
    let mut plans = Vec::new();
    for func in [
        AggFunc::Sum,
        AggFunc::Count,
        AggFunc::Avg,
        AggFunc::Min,
        AggFunc::Max,
        AggFunc::Variance,
        AggFunc::First,
        AggFunc::Last,
    ] {
        plans.push(Plan::scan("a").aggregate(func));
        plans.push(Plan::scan("a").filter(late).aggregate(func));
        plans.push(Plan::scan("a").filter(valued).aggregate(func));
    }
    plans.push(Plan::scan("a").window(0, 300, AggFunc::Sum));
    plans.push(Plan::scan("a").window(1800, 64, AggFunc::Count));
    plans.push(Plan::scan("a"));
    plans.push(Plan::scan("a").filter(late));
    plans.push(Plan::scan("a").filter(valued));
    plans.push(Plan::Union {
        left: Box::new(Plan::scan("a")),
        right: Box::new(Plan::scan("b")),
    });
    plans.push(Plan::Join {
        left: Box::new(Plan::scan("a")),
        right: Box::new(Plan::scan("b")),
        on: None,
    });
    plans.push(Plan::JoinAggregate {
        left: Box::new(Plan::scan("a")),
        right: Box::new(Plan::scan("b")),
        func: PairAggFunc::Dot,
    });
    plans
}

fn assert_tables_equal(plan: &Plan, store: &SeriesStore, cfg: &PipelineConfig) {
    let (ocols, orows) = oracle::execute(plan, store).unwrap();
    let got = execute(plan, store, cfg).unwrap();
    assert_eq!(ocols, got.columns, "{plan:?}");
    assert_eq!(orows.len(), got.rows.len(), "{plan:?}");
    for (i, (o, g)) in orows.iter().zip(&got.rows).enumerate() {
        // Bit-for-bit: Value::PartialEq compares f64 exactly, and NULLs
        // must agree too.
        assert_eq!(o, g, "{plan:?} row {i}");
    }
}

/// The acceptance-criteria differential: hot + sealed queries equal the
/// oracle bit-for-bit, across engine configurations.
#[test]
fn hot_plus_sealed_matches_oracle_bitwise() {
    let store = live_store();
    let configs = [
        cfg(),
        PipelineConfig {
            prune: false,
            ..cfg()
        },
        PipelineConfig {
            vectorized: false,
            threads: 1,
            allow_slicing: false,
            ..cfg()
        },
    ];
    for c in &configs {
        for plan in sweep() {
            assert_tables_equal(&plan, &store, c);
        }
    }
}

/// A point is visible to `SELECT` the moment `append` returns.
#[test]
fn select_sees_unflushed_point_immediately() {
    let store = SeriesStore::new(1024);
    store.create_series("s", Encoding::Ts2Diff, Encoding::Ts2Diff);
    let plan = Plan::scan("s").aggregate(AggFunc::Count);
    let r = execute(&plan, &store, &cfg()).unwrap();
    assert_eq!(r.rows, vec![vec![Value::Null]], "empty series");
    store.append("s", 1, 42).unwrap();
    let r = execute(&plan, &store, &cfg()).unwrap();
    assert_eq!(r.rows, vec![vec![Value::Int(1)]], "no flush needed");
    let rows = execute(&Plan::scan("s"), &store, &cfg()).unwrap().rows;
    assert_eq!(rows, vec![vec![Value::Int(1), Value::Int(42)]]);
}

/// Hot-chunk pruning: a value filter outside the buffered min/max skips
/// the hot fold, charging its tuples as pruned.
#[test]
fn hot_chunk_prunes_on_exact_stats() {
    let store = SeriesStore::new(1024);
    store.create_series("s", Encoding::Ts2Diff, Encoding::Ts2Diff);
    for i in 0..10i64 {
        store.append("s", i, i).unwrap(); // values 0..=9, all hot
    }
    let plan = Plan::scan("s")
        .filter(Predicate {
            time: None,
            value: Some((100, 200)),
        })
        .aggregate(AggFunc::Count);
    let r = execute(&plan, &store, &cfg()).unwrap();
    assert_eq!(r.rows, vec![vec![Value::Null]]);
    assert_eq!(r.stats.tuples_pruned, 10, "hot tuples charged as pruned");
    assert_eq!(r.stats.tuples_scanned, 0);
}

/// EXPLAIN renders the hot-scan source — and only when hot data exists.
#[test]
fn explain_shows_hot_source() {
    let store = SeriesStore::new(1024);
    store.create_series("s", Encoding::Ts2Diff, Encoding::Ts2Diff);
    for i in 0..7i64 {
        store.append("s", i, i).unwrap();
    }
    let plan = Plan::scan("s").aggregate(AggFunc::Sum);
    let text = etsqp_core::physical::pipe::compile(&plan, &store, &cfg())
        .unwrap()
        .render(&cfg());
    assert!(text.contains("hot (7 tuples): kept -> SourceHot"), "{text}");
    assert!(text.contains("PartialAgg[SUM]"), "{text}");
    store.flush("s").unwrap();
    let text = etsqp_core::physical::pipe::compile(&plan, &store, &cfg())
        .unwrap()
        .render(&cfg());
    assert!(
        !text.contains("SourceHot"),
        "flushed plans render as before"
    );
}

/// Float series: aggregates and scans see unflushed points too.
#[test]
fn float_queries_see_hot_points() {
    let store = SeriesStore::new(128);
    store.create_series_f64("f", Encoding::Ts2Diff, Encoding::Chimp);
    let mut want_sum = 0.0;
    for i in 0..300i64 {
        let v = (i as f64 * 0.37).sin() * 10.0;
        store.append_f64("f", i, v).unwrap();
        want_sum += v;
    }
    assert!(store.buffered_points("f").unwrap() > 0);
    let (agg, _) = aggregate_f64(&store, "f", None, None, &cfg()).unwrap();
    assert_eq!(agg.count, 300);
    assert!((agg.sum - want_sum).abs() < 1e-9);
    let (ts, vals) = scan_f64(&store, "f", None, &cfg()).unwrap();
    assert_eq!(ts.len(), 300);
    assert_eq!(vals.len(), 300);
    assert!(ts.windows(2).all(|w| w[0] < w[1]), "time-ordered");
    // Value-filtered: hot rows obey the range filter like sealed ones.
    let (agg, _) = aggregate_f64(
        &store,
        "f",
        None,
        Some(FloatRange { lo: 0.0, hi: 10.0 }),
        &cfg(),
    )
    .unwrap();
    let want = (0..300)
        .map(|i| (i as f64 * 0.37).sin() * 10.0)
        .filter(|v| (0.0..=10.0).contains(v))
        .count() as u64;
    assert_eq!(agg.count, want);
}

/// Concurrent append-while-query: 8 query threads hammer a series that a
/// writer is appending to. Every result must be a consistent prefix of
/// the append stream (the snapshot contract), and the final state must
/// match the oracle exactly.
#[test]
fn concurrent_append_while_query_is_prefix_consistent() {
    const TOTAL: i64 = 30_000;
    const QUERY_THREADS: usize = 8;
    let store = SeriesStore::with_options(StoreOptions {
        page_points: 256,
        shards: 16,
        seal_interval: None,
    });
    store.create_series("live", Encoding::Ts2Diff, Encoding::Ts2Diff);
    // value == 1 for every point, so for any prefix: SUM == COUNT, and
    // FIRST == LAST == 1. A torn (non-prefix) read breaks SUM == COUNT.
    let writer = {
        let store = store.clone();
        std::thread::spawn(move || {
            for i in 0..TOTAL {
                store.append("live", i, 1).unwrap();
            }
        })
    };
    let done = Arc::new(AtomicBool::new(false));
    let queriers: Vec<_> = (0..QUERY_THREADS)
        .map(|_| {
            let store = store.clone();
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let qcfg = PipelineConfig {
                    threads: 1,
                    ..Default::default()
                };
                let mut last_count = 0i64;
                let mut queries = 0u64;
                while !done.load(Ordering::Relaxed) {
                    let sum = execute(&Plan::scan("live").aggregate(AggFunc::Sum), &store, &qcfg)
                        .unwrap()
                        .rows[0][0];
                    let count =
                        execute(&Plan::scan("live").aggregate(AggFunc::Count), &store, &qcfg)
                            .unwrap()
                            .rows[0][0];
                    let c = match count {
                        Value::Int(c) => c,
                        Value::Null => 0,
                        other => panic!("count: {other:?}"),
                    };
                    // COUNT ran after SUM, so its snapshot is a superset:
                    // sum <= count, and both are valid prefix sizes.
                    match sum {
                        Value::Int(s) => {
                            assert!(s <= c, "sum {s} > later count {c}: torn snapshot");
                            assert!(s >= last_count, "prefix went backwards");
                            last_count = s;
                        }
                        Value::Null => assert!(last_count == 0),
                        other => panic!("sum: {other:?}"),
                    }
                    assert!(c <= TOTAL);
                    queries += 1;
                }
                queries
            })
        })
        .collect();
    writer.join().unwrap();
    done.store(true, Ordering::Relaxed);
    let total_queries: u64 = queriers.into_iter().map(|t| t.join().unwrap()).sum();
    assert!(total_queries > 0, "queriers made progress");

    // Quiesced: engine and oracle agree bit-for-bit on the final state,
    // which still has a hot tail (TOTAL % 256 != 0).
    assert!(store.buffered_points("live").unwrap() > 0);
    for plan in [
        Plan::scan("live").aggregate(AggFunc::Sum),
        Plan::scan("live").aggregate(AggFunc::Count),
        Plan::scan("live").aggregate(AggFunc::Last),
        Plan::scan("live").window(0, 1024, AggFunc::Count),
        Plan::scan("live"),
    ] {
        assert_tables_equal(&plan, &store, &cfg());
    }
}
