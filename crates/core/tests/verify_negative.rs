//! Negative tests for the `etsqp-verify` IR verifier: every invariant
//! class of the catalog must reject a hand-mutated plan with a typed
//! [`VerifyError`] naming that invariant. Compiled (unmutated) plans
//! must pass both [`verify`] and [`verify_deep`].

use std::sync::Arc;

use etsqp_core::expr::{AggFunc, Plan, Predicate, TimeRange};
use etsqp_core::fused::FuseLevel;
use etsqp_core::physical::node::{Parallelism, PruneVerdict, RootNode, Strategy};
use etsqp_core::physical::pipe::{compile, PhysicalPlan};
use etsqp_core::physical::verify::{verify, verify_deep, verify_explain, Invariant, VerifyResult};
use etsqp_core::plan::PipelineConfig;
use etsqp_encoding::Encoding;
use etsqp_storage::store::SeriesStore;

const PAGE_POINTS: usize = 64;
const ROWS: i64 = 256; // four sealed pages

fn store_with(series: &[&str]) -> SeriesStore {
    let store = SeriesStore::new(PAGE_POINTS);
    for s in series {
        store.create_series(s, Encoding::Ts2Diff, Encoding::Ts2Diff);
        let ts: Vec<i64> = (0..ROWS).map(|i| i * 10).collect();
        let vals: Vec<i64> = (0..ROWS).map(|i| 100 + (i % 37)).collect();
        store.append_all(s, &ts, &vals).unwrap();
        store.flush(s).unwrap();
    }
    store
}

fn cfg() -> PipelineConfig {
    PipelineConfig {
        threads: 2,
        ..Default::default()
    }
}

fn expect_invariant(res: VerifyResult, want: Invariant) {
    match res {
        Err(e) => assert_eq!(
            e.invariant, want,
            "expected invariant {want:?}, got: {e} ({:?})",
            e.invariant
        ),
        Ok(()) => panic!("mutated plan passed the verifier (expected {want:?})"),
    }
}

fn sum_plan(series: &str) -> Plan {
    Plan::scan(series).aggregate(AggFunc::Sum)
}

#[test]
fn compiled_plans_pass_verify_and_verify_deep() {
    let store = store_with(&["a", "b"]);
    let cfg = cfg();
    let plans = [
        sum_plan("a"),
        Plan::scan("a")
            .filter(Predicate::time(0, 500))
            .aggregate(AggFunc::Min),
        Plan::scan("a").filter(Predicate::value(100, 110)),
        Plan::Union {
            left: Box::new(Plan::scan("a")),
            right: Box::new(Plan::scan("b")),
        },
        Plan::JoinAggregate {
            left: Box::new(Plan::scan("a")),
            right: Box::new(Plan::scan("b")),
            func: etsqp_core::expr::PairAggFunc::Dot,
        },
    ];
    for plan in &plans {
        let phys = compile(plan, &store, &cfg).unwrap();
        verify(&phys, &cfg).unwrap();
        verify_deep(&phys, &cfg).unwrap();
        verify_explain(&phys, &cfg, &phys.render(&cfg)).unwrap();
    }
}

#[test]
fn plan_shape_rejects_misaligned_decisions() {
    let store = store_with(&["a"]);
    let cfg = cfg();
    let mut phys = compile(&sum_plan("a"), &store, &cfg).unwrap();
    phys.pipelines[0].decisions.pop();
    expect_invariant(verify(&phys, &cfg), Invariant::PlanShape);

    // A decision whose recorded tuple count disagrees with the header.
    let mut phys = compile(&sum_plan("a"), &store, &cfg).unwrap();
    phys.pipelines[0].decisions[0].tuples += 1;
    expect_invariant(verify(&phys, &cfg), Invariant::PlanShape);
}

#[test]
fn prune_soundness_rejects_underived_verdicts() {
    let store = store_with(&["a"]);
    let cfg = cfg();
    // Verdict flipped to pruned where the header says the page overlaps.
    let mut phys = compile(&sum_plan("a"), &store, &cfg).unwrap();
    phys.pipelines[0].decisions[0].verdict = PruneVerdict::PrunedTime;
    phys.pipelines[0].decisions[0].strategy = None;
    phys.pipelines[0].decisions[0].checksum_obligation = true;
    expect_invariant(verify(&phys, &cfg), Invariant::PruneSoundness);
}

#[test]
fn prune_soundness_rejects_missing_checksum_obligation() {
    let store = store_with(&["a"]);
    let cfg = cfg();
    // Time filter covering only the first page: the rest prune.
    let plan = Plan::scan("a")
        .filter(Predicate::time(0, 100))
        .aggregate(AggFunc::Sum);
    let mut phys = compile(&plan, &store, &cfg).unwrap();
    let pruned = phys.pipelines[0]
        .decisions
        .iter()
        .position(|d| !d.verdict.kept())
        .expect("fixture must prune at least one page");
    phys.pipelines[0].decisions[pruned].checksum_obligation = false;
    expect_invariant(verify(&phys, &cfg), Invariant::PruneSoundness);
}

#[test]
fn slice_bounds_rejects_wrong_job_counts() {
    let store = store_with(&["a"]);
    // 4 pages, 8 threads, trivial predicate: the planner slices.
    let cfg = PipelineConfig {
        threads: 8,
        ..Default::default()
    };
    let mut phys = compile(&sum_plan("a"), &store, &cfg).unwrap();
    let Parallelism::Sliced { pages, jobs } = phys.pipelines[0].parallelism else {
        panic!("fixture must compile to sliced parallelism");
    };
    phys.pipelines[0].parallelism = Parallelism::Sliced {
        pages,
        jobs: jobs + 1,
    };
    expect_invariant(verify(&phys, &cfg), Invariant::SliceBounds);

    // Per-page job count disagreeing with the kept-page set.
    let cfg = cfg_with_threads(2);
    let mut phys = compile(&sum_plan("a"), &store, &cfg).unwrap();
    let Parallelism::PerPage { jobs } = phys.pipelines[0].parallelism else {
        panic!("fixture must compile to per-page parallelism");
    };
    phys.pipelines[0].parallelism = Parallelism::PerPage { jobs: jobs + 1 };
    expect_invariant(verify(&phys, &cfg), Invariant::SliceBounds);
}

fn cfg_with_threads(threads: usize) -> PipelineConfig {
    PipelineConfig {
        threads,
        ..Default::default()
    }
}

#[test]
fn partition_tiling_rejects_gaps_and_overlaps() {
    let store = store_with(&["a", "b"]);
    let cfg = cfg();
    let union = Plan::Union {
        left: Box::new(Plan::scan("a")),
        right: Box::new(Plan::scan("b")),
    };
    let phys = compile(&union, &store, &cfg).unwrap();
    let RootNode::Union { partitions } = &phys.root else {
        panic!("union plan must compile to a union root");
    };
    assert!(partitions.len() > 1, "fixture needs multiple partitions");

    // Gap: shift the second partition's start forward.
    let mut broken = phys.clone();
    with_partitions(&mut broken, |ps| ps[1].lo += 1);
    expect_invariant(verify(&broken, &cfg), Invariant::PartitionTiling);

    // Incomplete: last partition stops short of +inf.
    let mut broken = phys.clone();
    with_partitions(&mut broken, |ps| {
        let last = ps.len() - 1;
        ps[last].hi -= 1;
    });
    expect_invariant(verify(&broken, &cfg), Invariant::PartitionTiling);

    // Empty tiling.
    let mut broken = phys.clone();
    with_partitions(&mut broken, |ps| ps.clear());
    expect_invariant(verify(&broken, &cfg), Invariant::PartitionTiling);
}

fn with_partitions(phys: &mut PhysicalPlan, f: impl FnOnce(&mut Vec<TimeRange>)) {
    match &mut phys.root {
        RootNode::Union { partitions } | RootNode::Join { partitions, .. } => f(partitions),
        _ => panic!("plan has no partitions"),
    }
}

#[test]
fn fusion_admissibility_rejects_uncovered_strategies() {
    let store = store_with(&["a"]);
    // Fusion disabled: every kept page must decode.
    let cfg = PipelineConfig {
        threads: 2,
        fuse: FuseLevel::None,
        allow_slicing: false,
        ..Default::default()
    };
    let mut phys = compile(&sum_plan("a"), &store, &cfg).unwrap();
    assert_eq!(
        phys.pipelines[0].decisions[0].strategy,
        Some(Strategy::Decode)
    );
    phys.pipelines[0].decisions[0].strategy = Some(Strategy::FusedTs2Diff);
    expect_invariant(verify(&phys, &cfg), Invariant::FusionAdmissibility);

    // A fused strategy whose codec does not match the value column.
    let cfg = cfg_with_threads(2);
    let mut phys = compile(&sum_plan("a"), &store, &cfg).unwrap();
    phys.pipelines[0].decisions[0].strategy = Some(Strategy::FusedDeltaRle);
    expect_invariant(verify(&phys, &cfg), Invariant::FusionAdmissibility);

    // Row-producing scans may never run fused aggregation.
    let mut phys = compile(&Plan::scan("a"), &store, &cfg).unwrap();
    phys.pipelines[0].decisions[0].strategy = Some(Strategy::FusedTs2Diff);
    expect_invariant(verify(&phys, &cfg), Invariant::FusionAdmissibility);
}

#[test]
fn fusion_admissibility_rejects_forced_pair_fusion() {
    let store = store_with(&["a"]);
    // Different page counts on the two sides: pair fusion inadmissible.
    store.create_series("c", Encoding::Ts2Diff, Encoding::DeltaRle);
    let ts: Vec<i64> = (0..ROWS / 2).map(|i| i * 10).collect();
    let vals: Vec<i64> = (0..ROWS / 2).map(|_| 7).collect();
    store.append_all("c", &ts, &vals).unwrap();
    store.flush("c").unwrap();

    let cfg = cfg();
    let plan = Plan::JoinAggregate {
        left: Box::new(Plan::scan("a")),
        right: Box::new(Plan::scan("c")),
        func: etsqp_core::expr::PairAggFunc::Dot,
    };
    let mut phys = compile(&plan, &store, &cfg).unwrap();
    let RootNode::PairAgg { fused, .. } = &mut phys.root else {
        panic!("join-aggregate must compile to a pair-agg root");
    };
    assert!(!*fused, "misaligned sides must not plan fused");
    *fused = true;
    expect_invariant(verify(&phys, &cfg), Invariant::FusionAdmissibility);
}

#[test]
fn hot_folds_last_rejects_out_of_order_hot_chunks() {
    let store = store_with(&["a"]);
    // Live tail: appended but not flushed.
    for i in 0..10i64 {
        store.append("a", ROWS * 10 + i * 10, 500 + i).unwrap();
    }
    let cfg = cfg();
    let phys = compile(&sum_plan("a"), &store, &cfg).unwrap();
    let hot = phys.pipelines[0]
        .hot
        .clone()
        .expect("fixture has a hot tail");
    verify(&phys, &cfg).unwrap();

    // Hot timestamps rewound before the sealed pages: folding the hot
    // chunk last would corrupt FIRST/LAST.
    let mut broken = phys.clone();
    let rewound: Vec<i64> = hot.ts.iter().map(|t| t - ROWS * 10).collect();
    broken.pipelines[0].hot.as_mut().unwrap().ts = Arc::new(rewound);
    expect_invariant(verify(&broken, &cfg), Invariant::HotFoldsLast);

    // Non-monotone hot timestamps.
    let mut broken = phys.clone();
    let mut shuffled: Vec<i64> = hot.ts.to_vec();
    shuffled.swap(0, 1);
    broken.pipelines[0].hot.as_mut().unwrap().ts = Arc::new(shuffled);
    expect_invariant(verify(&broken, &cfg), Invariant::HotFoldsLast);

    // A hot source grafted onto a binary operator's pipeline.
    let union = Plan::Union {
        left: Box::new(Plan::scan("a")),
        right: Box::new(Plan::scan("a")),
    };
    let mut broken = compile(&union, &store, &cfg).unwrap();
    broken.pipelines[0].hot = Some(hot);
    expect_invariant(verify(&broken, &cfg), Invariant::HotFoldsLast);
}

#[test]
fn explain_round_trip_rejects_tampered_text() {
    let store = store_with(&["a", "b"]);
    let cfg = cfg();
    let phys = compile(&sum_plan("a"), &store, &cfg).unwrap();
    let rendered = phys.render(&cfg);
    verify_explain(&phys, &cfg, &rendered).unwrap();

    // Any textual drift from the plan is a rejection.
    let tampered = rendered.replace("SUM", "MAX");
    expect_invariant(
        verify_explain(&phys, &cfg, &tampered),
        Invariant::ExplainRoundTrip,
    );

    // Text from a structurally different plan (partition lines present).
    let union = Plan::Union {
        left: Box::new(Plan::scan("a")),
        right: Box::new(Plan::scan("b")),
    };
    let other = compile(&union, &store, &cfg).unwrap();
    expect_invariant(
        verify_explain(&phys, &cfg, &other.render(&cfg)),
        Invariant::ExplainRoundTrip,
    );
}

#[test]
fn bucket_tiling_rejects_degenerate_widths() {
    let store = store_with(&["a"]);
    let cfg = cfg();
    // dt = 640 page-aligns the 64-point pages (ts step 10, t_min 0).
    let plan = Plan::scan("a").window(0, 640, AggFunc::Sum);
    let phys = compile(&plan, &store, &cfg).unwrap();
    verify(&phys, &cfg).unwrap();

    // Zero bucket width: window arithmetic would divide by zero.
    let mut broken = phys.clone();
    let RootNode::Aggregate {
        window: Some(w), ..
    } = &mut broken.root
    else {
        panic!("windowed plan must compile to a windowed aggregate root");
    };
    w.dt = 0;
    expect_invariant(verify(&broken, &cfg), Invariant::BucketTiling);
}

#[test]
fn cache_obligation_rejects_value_filtered_pages() {
    let store = store_with(&["a"]);
    let cfg = cfg();
    // A value filter means a page's whole-page partial is not its exact
    // contribution, so no decision may be marked cacheable.
    let plan = Plan::scan("a")
        .filter(Predicate::value(100, 110))
        .aggregate(AggFunc::Sum);
    let mut phys = compile(&plan, &store, &cfg).unwrap();
    assert!(
        phys.pipelines[0].decisions.iter().all(|d| !d.cacheable),
        "value-filtered pages must not plan cacheable"
    );
    let kept = phys.pipelines[0]
        .decisions
        .iter()
        .position(|d| d.verdict.kept())
        .expect("fixture keeps at least one page");
    phys.pipelines[0].decisions[kept].cacheable = true;
    expect_invariant(verify(&phys, &cfg), Invariant::CacheObligation);
}

#[test]
fn partial_merge_order_rejects_out_of_order_pages() {
    let store = store_with(&["a"]);
    let cfg = cfg();
    let mut phys = compile(&sum_plan("a"), &store, &cfg).unwrap();
    // Swap the first two pages (and their decisions, repairing the
    // per-index bookkeeping so PlanShape still holds): the sequential
    // partial merge would now fold page 1's span before page 0's.
    let p = &mut phys.pipelines[0];
    p.pages.swap(0, 1);
    p.decisions.swap(0, 1);
    let counts: Vec<u64> = p.pages.iter().map(|pg| pg.header.count as u64).collect();
    for (i, d) in p.decisions.iter_mut().enumerate() {
        d.index = i;
        d.tuples = counts[i];
    }
    expect_invariant(verify(&phys, &cfg), Invariant::PartialMergeOrder);
}

#[test]
fn driver_refuses_plans_without_checksum_obligations() {
    // End-to-end: the executor itself rejects a tampered plan whose
    // pruned page lost its obligation (defense in depth behind the
    // compile-time verifier hook).
    let store = store_with(&["a"]);
    let cfg = cfg();
    let plan = Plan::scan("a")
        .filter(Predicate::time(0, 100))
        .aggregate(AggFunc::Sum);
    let phys = compile(&plan, &store, &cfg).unwrap();
    assert!(
        phys.pipelines[0]
            .decisions
            .iter()
            .any(|d| !d.verdict.kept()),
        "fixture must prune"
    );
    // The normal path executes fine.
    let r = etsqp_core::plan::execute(&plan, &store, &cfg).unwrap();
    assert_eq!(r.rows.len(), 1);
}
