//! Property tests for the partial-state algebra (`etsqp_core::partial`):
//!
//! 1. **merge associativity** — folding a series in one pass, or as any
//!    contiguous chunking merged in time order, yields bit-identical
//!    exact fields (moments, min/max, first/last, timestamp bounds);
//! 2. **empty-partial identity** — merging an empty partial into a
//!    state is a bit-for-bit no-op (and the symmetric merge adopts the
//!    non-empty side's exact fields);
//! 3. **sketch error bound** — the t-digest quantile estimate stays
//!    within [`TDigest::rank_error_bound`] of the exact rank and inside
//!    the `[min, max]` envelope under *any* chunking;
//! 4. **wire round-trip** — `from_bytes(to_bytes(s))` re-serializes
//!    canonically;
//! 5. **engine agreement** — quantile queries over every codec, with
//!    and without an unflushed hot tail, obey the same rank bound
//!    against a sorted-oracle rank (the end-to-end restatement of 3).

use etsqp_core::engine::{EngineOptions, IotDb};
use etsqp_core::expr::{AggFunc, Plan};
use etsqp_core::partial::{PartialState, TDigest};
use etsqp_core::plan::Value;
use etsqp_encoding::Encoding;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Series {
    ts: Vec<i64>,
    vals: Vec<i64>,
}

fn series_strategy() -> impl Strategy<Value = Series> {
    (
        0i64..1_000_000,
        proptest::collection::vec((1i64..500, -10_000i64..10_000), 1..500),
    )
        .prop_map(|(t0, steps)| {
            let mut ts = Vec::with_capacity(steps.len());
            let mut vals = Vec::with_capacity(steps.len());
            let mut t = t0;
            for (dt, v) in steps {
                t += dt;
                ts.push(t);
                vals.push(v);
            }
            Series { ts, vals }
        })
}

/// Folds `series[range]` into a fresh partial for `func`.
fn fold(func: AggFunc, s: &Series, lo: usize, hi: usize) -> PartialState {
    let mut p = PartialState::new(func);
    for i in lo..hi {
        p.push_tv(s.ts[i], s.vals[i]);
    }
    p
}

/// The exact (non-sketch) fields, for bit-identical comparison.
fn exact_fields(p: &PartialState) -> impl PartialEq + std::fmt::Debug {
    (p.agg, p.first_ts, p.last_ts)
}

/// Rank of `est` among `sorted` (values ≤ est), for the error bound.
fn rank_of(sorted: &[i64], est: f64) -> f64 {
    sorted.partition_point(|&v| (v as f64) <= est) as f64
}

fn check_rank(sorted: &[i64], q: f64, est: f64) -> Result<(), TestCaseError> {
    let n = sorted.len();
    prop_assert!(n > 0);
    let bound = TDigest::rank_error_bound(n as u64);
    let want = q * (n as f64);
    let got = rank_of(sorted, est);
    prop_assert!(
        (got - want).abs() <= bound,
        "rank {got} vs target {want} exceeds bound {bound} (n={n}, q={q}, est={est})"
    );
    prop_assert!(
        est >= sorted[0] as f64 && est <= sorted[n - 1] as f64,
        "estimate {est} escaped the value envelope"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Chunked merges agree bit-exactly on the exact fields with the
    /// single-pass fold, for every aggregate shape, and the two
    /// three-way groupings ((a⊕b)⊕c and a⊕(b⊕c)) agree with each other.
    #[test]
    fn merge_is_associative_on_exact_fields(
        s in series_strategy(),
        cut_a in 0.0f64..1.0,
        cut_b in 0.0f64..1.0,
    ) {
        let n = s.ts.len();
        let (mut i, mut j) = (
            (n as f64 * cut_a.min(cut_b)) as usize,
            (n as f64 * cut_a.max(cut_b)) as usize,
        );
        i = i.min(n);
        j = j.clamp(i, n);
        for func in [
            AggFunc::Sum, AggFunc::Avg, AggFunc::Min, AggFunc::Max,
            AggFunc::Count, AggFunc::Variance, AggFunc::First, AggFunc::Last,
            AggFunc::Rate, AggFunc::Delta, AggFunc::P50, AggFunc::P95,
        ] {
            let whole = fold(func, &s, 0, n);
            let (a, b, c) = (fold(func, &s, 0, i), fold(func, &s, i, j), fold(func, &s, j, n));

            // (a ⊕ b) ⊕ c
            let mut left = a.clone();
            left.merge(&b);
            left.merge(&c);
            // a ⊕ (b ⊕ c)
            let mut bc = b.clone();
            bc.merge(&c);
            let mut right = a.clone();
            right.merge(&bc);

            prop_assert_eq!(exact_fields(&left), exact_fields(&whole), "{:?} left≠whole", func);
            prop_assert_eq!(exact_fields(&right), exact_fields(&whole), "{:?} right≠whole", func);
        }
    }

    /// The empty partial is a two-sided identity on the exact fields,
    /// and merging it in is a bit-for-bit no-op on the wire form.
    #[test]
    fn empty_partial_is_identity(s in series_strategy()) {
        for func in [AggFunc::Sum, AggFunc::P95, AggFunc::First, AggFunc::Rate] {
            let full = fold(func, &s, 0, s.ts.len());
            let empty = PartialState::new(func);

            let mut right = full.clone();
            right.merge(&empty);
            prop_assert_eq!(right.to_bytes(), full.to_bytes(), "{:?}: s⊕∅ ≠ s", func);

            let mut left = empty.clone();
            left.merge(&full);
            prop_assert_eq!(exact_fields(&left), exact_fields(&full), "{:?}: ∅⊕s ≠ s", func);
        }
    }

    /// Quantile estimates from any contiguous chunking stay within the
    /// documented rank error bound of the exact sorted rank.
    #[test]
    fn chunked_digest_stays_within_rank_bound(
        s in series_strategy(),
        chunks in 1usize..8,
    ) {
        let n = s.ts.len();
        let step = n.div_ceil(chunks);
        let mut merged = PartialState::new(AggFunc::P50);
        let mut lo = 0;
        while lo < n {
            let hi = (lo + step).min(n);
            merged.merge(&fold(AggFunc::P50, &s, lo, hi));
            lo = hi;
        }
        let mut sorted = s.vals.clone();
        sorted.sort_unstable();
        let d = merged.digest.as_ref().expect("quantile partial has a digest");
        for q in [0.5, 0.95, 0.99] {
            check_rank(&sorted, q, d.quantile(q))?;
        }
    }

    /// Wire round-trip: a parsed partial re-serializes canonically.
    #[test]
    fn wire_roundtrip_is_canonical(s in series_strategy()) {
        for func in [AggFunc::Sum, AggFunc::P99, AggFunc::Delta] {
            let p = fold(func, &s, 0, s.ts.len());
            let wire = p.to_bytes();
            let back = PartialState::from_bytes(&wire).expect("own serialization parses");
            prop_assert_eq!(back.to_bytes(), wire, "{:?}", func);
            prop_assert_eq!(exact_fields(&back), exact_fields(&p), "{:?}", func);
        }
    }

    /// End-to-end: engine quantiles across every integer codec, with and
    /// without an unflushed hot tail, obey the same rank bound.
    #[test]
    fn engine_quantiles_within_bound_across_codecs(
        s in series_strategy(),
        enc_idx in 0usize..3,
        hot in any::<bool>(),
    ) {
        let enc = [Encoding::Ts2Diff, Encoding::DeltaRle, Encoding::StreamVByte][enc_idx];
        let db = IotDb::new(
            EngineOptions::default()
                .with_encodings(Encoding::Ts2Diff, enc)
                .with_page_points(64),
        );
        db.create_series("s").unwrap();
        let n = s.ts.len();
        let sealed = if hot { n - n / 4 } else { n };
        db.append_all("s", &s.ts[..sealed], &s.vals[..sealed]).unwrap();
        db.flush().unwrap();
        if hot {
            db.append_all("s", &s.ts[sealed..], &s.vals[sealed..]).unwrap();
        }
        let mut sorted = s.vals.clone();
        sorted.sort_unstable();
        for (func, q) in [(AggFunc::P50, 0.5), (AggFunc::P95, 0.95), (AggFunc::P99, 0.99)] {
            let r = db.execute(&Plan::scan("s").aggregate(func)).unwrap();
            let Value::Float(est) = r.rows[0][0] else {
                panic!("quantile returned {:?}", r.rows[0][0]);
            };
            check_rank(&sorted, q, est)?;
        }
    }
}
