//! Tests for the §IV paired aggregates (Σ AᵢBᵢ, covariance, correlation):
//! SQL surface, fused Delta-RLE fast path, and agreement with naive math.

use etsqp_core::engine::{EngineOptions, IotDb};
use etsqp_core::expr::{PairAggFunc, Plan};
use etsqp_core::plan::{PipelineConfig, Value};
use etsqp_encoding::Encoding;

fn naive_corr(a: &[i64], b: &[i64]) -> f64 {
    let n = a.len() as f64;
    let ma = a.iter().map(|&v| v as f64).sum::<f64>() / n;
    let mb = b.iter().map(|&v| v as f64).sum::<f64>() / n;
    let cov = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| (x as f64 - ma) * (y as f64 - mb))
        .sum::<f64>()
        / n;
    let va = a.iter().map(|&x| (x as f64 - ma).powi(2)).sum::<f64>() / n;
    let vb = b.iter().map(|&y| (y as f64 - mb).powi(2)).sum::<f64>() / n;
    cov / (va * vb).sqrt()
}

fn aligned_db(val_enc: Encoding) -> (IotDb, Vec<i64>, Vec<i64>) {
    let n = 8_000usize;
    let ts: Vec<i64> = (0..n as i64).map(|i| i * 100).collect();
    // Piecewise-linear signals (Delta-RLE friendly) with strong positive
    // dependence plus an anti-correlated remainder.
    let a: Vec<i64> = (0..n as i64).map(|i| 100 + (i / 50) * 3).collect();
    let b: Vec<i64> = (0..n as i64)
        .map(|i| 40 + (i / 50) * 7 - (i % 50) / 25)
        .collect();
    let db = IotDb::new(EngineOptions::default().with_encodings(Encoding::Ts2Diff, val_enc));
    db.create_series("a").unwrap();
    db.create_series("b").unwrap();
    db.append_all("a", &ts, &a).unwrap();
    db.append_all("b", &ts, &b).unwrap();
    db.flush().unwrap();
    (db, a, b)
}

#[test]
fn corr_sql_matches_naive() {
    let (db, a, b) = aligned_db(Encoding::Ts2Diff);
    let r = db.query("SELECT CORR(a, b) FROM a, b").unwrap();
    let Value::Float(got) = r.rows[0][0] else {
        panic!("{:?}", r.rows)
    };
    let want = naive_corr(&a, &b);
    assert!((got - want).abs() < 1e-9, "{got} vs {want}");
}

#[test]
fn dot_and_cov_match_naive() {
    let (db, a, b) = aligned_db(Encoding::Ts2Diff);
    let r = db.query("SELECT DOT(a, b) FROM a, b").unwrap();
    let want_dot: i128 = a.iter().zip(&b).map(|(&x, &y)| x as i128 * y as i128).sum();
    match r.rows[0][0] {
        Value::Int(v) => assert_eq!(v as i128, want_dot),
        Value::Float(v) => assert!((v - want_dot as f64).abs() < 1.0),
        Value::Null => panic!("null dot"),
    }
    let r = db.query("SELECT COV(a, b) FROM a, b").unwrap();
    let Value::Float(got) = r.rows[0][0] else {
        panic!()
    };
    let n = a.len() as f64;
    let ma = a.iter().map(|&v| v as f64).sum::<f64>() / n;
    let mb = b.iter().map(|&v| v as f64).sum::<f64>() / n;
    let want = a
        .iter()
        .zip(&b)
        .map(|(&x, &y)| (x as f64 - ma) * (y as f64 - mb))
        .sum::<f64>()
        / n;
    assert!((got - want).abs() < 1e-6, "{got} vs {want}");
}

#[test]
fn fused_delta_rle_path_agrees_with_decode_path() {
    // Aligned Delta-RLE pages hit the fused §IV path; forcing fusion off
    // exercises the decode+merge-join fallback. Both must agree exactly.
    let (db, _, _) = aligned_db(Encoding::DeltaRle);
    let plan = Plan::JoinAggregate {
        left: Box::new(Plan::scan("a")),
        right: Box::new(Plan::scan("b")),
        func: PairAggFunc::Correlation,
    };
    let fused = db.execute(&plan).unwrap();
    let unfused_cfg = PipelineConfig {
        fuse: etsqp_core::fused::FuseLevel::None,
        ..Default::default()
    };
    let unfused = db.execute_with(&plan, &unfused_cfg).unwrap();
    let (Value::Float(x), Value::Float(y)) = (fused.rows[0][0], unfused.rows[0][0]) else {
        panic!("{:?} {:?}", fused.rows, unfused.rows)
    };
    assert!((x - y).abs() < 1e-12, "{x} vs {y}");
    // The fused run must not have decoded values (no materialization).
    assert!(fused.stats.materialized_bytes < unfused.stats.materialized_bytes);
}

#[test]
fn misaligned_clocks_fall_back_and_join_correctly() {
    let db =
        IotDb::new(EngineOptions::default().with_encodings(Encoding::Ts2Diff, Encoding::DeltaRle));
    db.create_series("a").unwrap();
    db.create_series("b").unwrap();
    for i in 0..2000i64 {
        db.append("a", i * 2, i % 100).unwrap(); // evens
        db.append("b", i * 3, (i * 2) % 100).unwrap(); // multiples of 3
    }
    db.flush().unwrap();
    let r = db.query("SELECT DOT(a, b) FROM a, b").unwrap();
    // Matches at multiples of 6: t = 6k → a index 3k, b index 2k.
    let mut want = 0i128;
    let mut k = 0i64;
    // a's clock (max t = 2*1999) is the binding bound; b reaches 3*1999.
    while 6 * k <= 2 * 1999 {
        let ai = 3 * k;
        let bi = 2 * k;
        if ai < 2000 && bi < 2000 {
            want += ((ai % 100) as i128) * (((bi * 2) % 100) as i128);
        }
        k += 1;
    }
    match r.rows[0][0] {
        Value::Int(v) => assert_eq!(v as i128, want),
        other => panic!("{other:?}"),
    }
}

#[test]
fn perfectly_correlated_series_give_one() {
    let db = IotDb::new(EngineOptions::default());
    db.create_series("x").unwrap();
    db.create_series("y").unwrap();
    for i in 0..1000i64 {
        db.append("x", i, i * 3 + 7).unwrap();
        db.append("y", i, i * 5 - 11).unwrap(); // affine of x → corr 1
    }
    db.flush().unwrap();
    let r = db.query("SELECT CORR(x, y) FROM x, y").unwrap();
    let Value::Float(c) = r.rows[0][0] else {
        panic!()
    };
    assert!((c - 1.0).abs() < 1e-9, "{c}");
}

#[test]
fn empty_join_yields_null() {
    let db = IotDb::new(EngineOptions::default());
    db.create_series("x").unwrap();
    db.create_series("y").unwrap();
    for i in 0..100i64 {
        db.append("x", i * 2, i).unwrap();
        db.append("y", i * 2 + 1, i).unwrap(); // disjoint clocks
    }
    db.flush().unwrap();
    let r = db.query("SELECT CORR(x, y) FROM x, y").unwrap();
    assert_eq!(r.rows[0][0], Value::Null);
}
