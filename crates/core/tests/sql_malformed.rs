//! Malformed-SQL regression suite: the parser must return
//! `Error::Sql` for every broken input — never panic, never loop.
//!
//! Companion to the `no-panic-paths` lint rule: the SQL front end sits
//! on the CLI's interactive path, where a panic would kill the shell.

use etsqp_core::sql::parse;
use etsqp_core::Error;

/// Every input here must produce a parse error (not a panic, not Ok).
#[test]
fn broken_inputs_error_cleanly() {
    let cases: &[&str] = &[
        "",
        ";",
        "SELECT",
        "SELECT FROM",
        "SELECT * FROM",
        "SELECT * FROM ;",
        "SELECT SUM( FROM ts",
        "SELECT SUM(A FROM ts",
        "SELECT SUM(A)) FROM ts",
        "SELECT * FROM ts SW(",
        "SELECT * FROM ts SW(1",
        "SELECT * FROM ts SW(1,",
        "SELECT * FROM ts SW(1, 2",
        "SELECT * FROM ts WHERE",
        "SELECT * FROM ts WHERE A >",
        "SELECT * FROM ts WHERE A > AND A < 3",
        "SELECT * FROM ts ORDER BY",
        "SELECT * FROM ts UNION",
        "SELECT ts1. FROM ts1",
        "SELECT .A FROM ts",
        "FROM ts SELECT *",
        "SELEC * FROM ts",
        "SELECT * FROM (SELECT * FROM ts",
        "SELECT * FROM ()",
        "(((((((",
        ")",
        "SELECT * FROM ts WHERE A > 99999999999999999999999999999",
        "SELECT * FROM ts SW(99999999999999999999999999999, 1)",
    ];
    for sql in cases {
        match parse(sql) {
            Err(Error::Sql(_)) => {}
            Err(other) => panic!("{sql:?}: expected Error::Sql, got {other:?}"),
            Ok(plan) => panic!("{sql:?}: unexpectedly parsed: {plan:?}"),
        }
    }
}

/// Multibyte and control characters must not break the lexer's slicing.
#[test]
fn non_ascii_inputs_error_cleanly() {
    let cases: &[&str] = &[
        "SELECT * FROM ts WHERE A > \u{1F4A9}",
        "SELECT \u{00E9}\u{00E9} FROM ts",
        "S\u{0415}LECT * FROM ts", // Cyrillic Е in SELECT
        "SELECT * FROM ts\u{0000}",
        "\u{FEFF}SELECT * FROM ts SW(0, 1)\u{FEFF}",
        "SELECT * FROM ts -- \u{2028}\u{2029}",
    ];
    for sql in cases {
        // Must not panic; Ok is acceptable only if the lexer treats the
        // oddity as part of an identifier and the plan is well-formed.
        let _ = parse(sql);
    }
}

/// Deep nesting exercises the recursive-descent parser's recursion
/// guard: a stack overflow here would abort the whole process.
#[test]
fn deep_nesting_does_not_overflow_the_stack() {
    let depth = 10_000;
    let mut sql = String::from("SELECT * FROM ");
    for _ in 0..depth {
        sql.push('(');
    }
    sql.push_str("SELECT * FROM ts");
    for _ in 0..depth {
        sql.push(')');
    }
    // Either a clean parse error (recursion limit) or Ok — not a crash.
    let _ = parse(&sql);
}

/// The error message names the offending token so shell users can fix
/// their query.
#[test]
fn parse_errors_are_descriptive() {
    let err = parse("SELECT * FROM ts SW(1, 2").expect_err("must fail");
    let msg = err.to_string();
    assert!(!msg.is_empty());
    let err = parse("SELEC * FROM ts").expect_err("must fail");
    assert!(!err.to_string().is_empty());
}
