//! Concurrent-query coverage for the persistent pool: one `Arc<IotDb>`
//! hammered from many OS threads must agree with serial execution, and a
//! panicking query must not poison the shared pool for its neighbours.

use std::sync::Arc;

use etsqp_core::engine::{EngineOptions, IotDb};
use etsqp_core::exec::ExecStats;
use etsqp_core::{pool, Error};

const OS_THREADS: usize = 8;

/// Builds a deterministic two-series database with enough pages that
/// parallel queries schedule real morsel batches.
fn build_db() -> IotDb {
    let opts = EngineOptions::default()
        .with_threads(8)
        .with_page_points(64);
    let db = IotDb::new(opts);
    for series in ["temp", "pressure"] {
        db.create_series(series).unwrap();
    }
    for i in 0..4096i64 {
        db.append("temp", i * 1000, 60 + (i % 25) - (i % 7))
            .unwrap();
        db.append("pressure", i * 1000, 100_000 + (i % 911) * 3)
            .unwrap();
    }
    db.flush().unwrap();
    db
}

/// The query battery: aggregates, selective windows, group-by and scans
/// whose results are cheap to compare structurally.
fn battery() -> Vec<String> {
    vec![
        "SELECT SUM(temp) FROM temp".to_string(),
        "SELECT COUNT(temp) FROM temp WHERE time >= 100000 AND time <= 3000000".to_string(),
        "SELECT AVG(temp) FROM temp WHERE temp >= 55 AND temp <= 75".to_string(),
        "SELECT MIN(temp) FROM temp WHERE time >= 500000".to_string(),
        "SELECT MAX(temp) FROM temp WHERE time >= 500000".to_string(),
        "SELECT SUM(pressure) FROM pressure WHERE time <= 2000000".to_string(),
        "SELECT COUNT(pressure) FROM pressure WHERE pressure >= 100500".to_string(),
        "SELECT AVG(pressure) FROM pressure SW(0, 400000)".to_string(),
        "SELECT SUM(temp) FROM temp SW(0, 256000)".to_string(),
    ]
}

#[test]
fn arc_iotdb_from_eight_threads_agrees_with_serial() {
    let db = Arc::new(build_db());
    let queries = battery();

    // Serial reference results, computed once up front.
    let expected: Vec<_> = queries
        .iter()
        .map(|q| db.query(q).expect("serial query"))
        .collect();

    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..OS_THREADS {
            let db = Arc::clone(&db);
            let queries = &queries;
            let expected = &expected;
            handles.push(s.spawn(move || {
                // Each OS thread replays the battery several times,
                // phase-shifted so different queries overlap in flight.
                for round in 0..6 {
                    for k in 0..queries.len() {
                        let i = (k + t + round) % queries.len();
                        let got = db.query(&queries[i]).expect("concurrent query");
                        assert_eq!(got.columns, expected[i].columns, "query {}", queries[i]);
                        assert_eq!(got.rows, expected[i].rows, "query {}", queries[i]);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    });
}

#[test]
fn panicking_query_does_not_poison_shared_pool() {
    let db = Arc::new(build_db());
    let queries = battery();
    let expected: Vec<_> = queries
        .iter()
        .map(|q| db.query(q).expect("serial query"))
        .collect();

    // Warm the pool so the spawn counter is stable before we measure.
    db.query(&queries[0]).unwrap();
    let spawned_before = pool::spawned_threads();

    std::thread::scope(|s| {
        // Half the threads run healthy queries...
        let mut handles = Vec::new();
        for t in 0..OS_THREADS / 2 {
            let db = Arc::clone(&db);
            let queries = &queries;
            let expected = &expected;
            handles.push(s.spawn(move || {
                for round in 0..8 {
                    let i = (t + round) % queries.len();
                    let got = db.query(&queries[i]).expect("healthy query");
                    assert_eq!(got.rows, expected[i].rows);
                }
            }));
        }
        // ...while the other half keep throwing panicking batches at the
        // same pool through the same scheduler entry point.
        for _ in 0..OS_THREADS / 2 {
            handles.push(s.spawn(|| {
                let stats = ExecStats::default();
                for round in 0..8 {
                    let out =
                        etsqp_core::exec::run_jobs((0..16).collect::<Vec<i32>>(), 8, &stats, |j| {
                            if j % 5 == round % 5 {
                                panic!("in-flight failure {round}");
                            }
                            j
                        });
                    assert!(matches!(out, Err(Error::Worker(_))));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    });

    // The pool survived: same worker threads, and it still answers.
    assert_eq!(
        pool::spawned_threads(),
        spawned_before,
        "panics must not kill (and force respawn of) pool workers"
    );
    for (q, exp) in queries.iter().zip(&expected) {
        let got = db.query(q).unwrap();
        assert_eq!(got.rows, exp.rows, "post-panic query {q}");
    }
}

#[test]
fn hot_path_spawns_no_threads_after_warmup() {
    let db = Arc::new(build_db());
    db.query("SELECT SUM(temp) FROM temp").unwrap();
    let after_warmup = pool::spawned_threads();
    for _ in 0..200 {
        db.query("SELECT COUNT(temp) FROM temp WHERE temp >= 60")
            .unwrap();
    }
    assert_eq!(
        pool::spawned_threads(),
        after_warmup,
        "200 short queries must reuse the persistent pool"
    );
}

#[test]
fn cancelled_query_returns_typed_error_and_pool_survives() {
    use etsqp_core::cancel::CancellationToken;

    let db = Arc::new(build_db());
    let queries = battery();
    let expected: Vec<_> = queries
        .iter()
        .map(|q| db.query(q).expect("serial query"))
        .collect();
    db.query(&queries[0]).unwrap();
    let spawned_before = pool::spawned_threads();

    // A pre-cancelled token: the query must not run a single morsel.
    let ctl = CancellationToken::new();
    ctl.cancel();
    let got = db.query_ctl("SELECT SUM(temp) FROM temp", &ctl);
    assert!(
        matches!(got, Err(Error::Cancelled)),
        "pre-cancelled query must return Error::Cancelled, got {got:?}"
    );

    // Cancel mid-flight from another thread, repeatedly: whichever
    // morsel observes the token first stops the batch; the result is
    // either Error::Cancelled or (if the query won the race) Ok equal
    // to the serial answer — never anything else.
    std::thread::scope(|s| {
        for round in 0..16 {
            let ctl = CancellationToken::new();
            let canceller = {
                let ctl = ctl.clone();
                s.spawn(move || {
                    if round % 4 != 0 {
                        std::thread::sleep(std::time::Duration::from_micros(50 * round as u64));
                    }
                    ctl.cancel();
                })
            };
            let got = db.query_ctl(&queries[0], &ctl);
            canceller.join().unwrap();
            match got {
                Err(Error::Cancelled) => {}
                Ok(r) => assert_eq!(r.rows, expected[0].rows, "raced query must stay correct"),
                Err(e) => panic!("cancelled query must not fail with {e}"),
            }
        }
    });

    // The shared pool is unharmed: no respawn, healthy queries agree.
    assert_eq!(
        pool::spawned_threads(),
        spawned_before,
        "cancellation must drain batches, not kill pool workers"
    );
    for (q, exp) in queries.iter().zip(&expected) {
        let got = db.query(q).unwrap();
        assert_eq!(got.rows, exp.rows, "post-cancel query {q}");
    }
}

#[test]
fn deadlined_query_returns_timeout_and_pool_survives() {
    let db = Arc::new(build_db());
    let queries = battery();
    let expected: Vec<_> = queries
        .iter()
        .map(|q| db.query(q).expect("serial query"))
        .collect();
    db.query(&queries[0]).unwrap();
    let spawned_before = pool::spawned_threads();

    // An already-expired deadline: checked before the first morsel.
    let got = db.query_with_timeout("SELECT SUM(temp) FROM temp", std::time::Duration::ZERO);
    assert!(
        matches!(got, Err(Error::Timeout)),
        "expired deadline must return Error::Timeout, got {got:?}"
    );

    // A generous deadline never fires.
    let got = db
        .query_with_timeout(&queries[0], std::time::Duration::from_secs(3600))
        .expect("generous deadline");
    assert_eq!(got.rows, expected[0].rows);

    assert_eq!(
        pool::spawned_threads(),
        spawned_before,
        "deadlines must drain batches, not kill pool workers"
    );
    for (q, exp) in queries.iter().zip(&expected) {
        let got = db.query(q).unwrap();
        assert_eq!(got.rows, exp.rows, "post-timeout query {q}");
    }
}
