//! Parser acceptance tests for the SQL front end (`etsqp_core::sql`),
//! kept out-of-crate so `sql.rs` stays within the module size budget —
//! everything here drives the public `parse` entry point only.

use etsqp_core::expr::{AggFunc, BinOp, CmpOp, Plan, SlidingWindow, TimeRange};
use etsqp_core::sql::parse;

#[test]
fn q1_window_sum() {
    let plan = parse("SELECT SUM(A) FROM ts SW(0, 1000);").unwrap();
    match plan {
        Plan::WindowAggregate {
            window,
            func,
            input,
        } => {
            assert_eq!(window, SlidingWindow { t_min: 0, dt: 1000 });
            assert_eq!(func, AggFunc::Sum);
            assert!(matches!(*input, Plan::Scan { .. }));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn q2_schema_annotation_ignored() {
    let plan = parse("SELECT AVG(A) FROM ts(T, A) SW(100, 50)").unwrap();
    assert!(matches!(
        plan,
        Plan::WindowAggregate {
            func: AggFunc::Avg,
            ..
        }
    ));
}

#[test]
fn q3_subquery_value_filter() {
    let plan = parse("SELECT SUM(A) FROM (SELECT * FROM ts WHERE A > 10);").unwrap();
    match plan {
        Plan::Aggregate {
            input,
            func: AggFunc::Sum,
        } => match *input {
            Plan::Filter { pred, .. } => assert_eq!(pred.value, Some((11, i64::MAX))),
            other => panic!("{other:?}"),
        },
        other => panic!("{other:?}"),
    }
}

#[test]
fn q4_join_expression() {
    let plan = parse("SELECT ts1.A+ts2.A FROM ts1, ts2;").unwrap();
    assert!(matches!(plan, Plan::JoinExpr { op: BinOp::Add, .. }));
}

#[test]
fn q5_union_order_by_time() {
    let plan = parse("SELECT * FROM ts1 UNION ts2 ORDER BY TIME;").unwrap();
    assert!(matches!(plan, Plan::Union { .. }));
}

#[test]
fn q6_natural_join() {
    let plan = parse("SELECT * FROM ts1, ts2;").unwrap();
    assert!(matches!(plan, Plan::Join { .. }));
}

#[test]
fn example2_time_range_avg() {
    let plan = parse("SELECT AVG(Velocity) FROM Velocity WHERE Time >= 180000 AND Time <= 300000")
        .unwrap();
    match plan {
        Plan::Aggregate {
            input,
            func: AggFunc::Avg,
        } => match *input {
            Plan::Filter { pred, .. } => {
                assert_eq!(
                    pred.time,
                    Some(TimeRange {
                        lo: 180_000,
                        hi: 300_000
                    })
                );
            }
            other => panic!("{other:?}"),
        },
        other => panic!("{other:?}"),
    }
}

#[test]
fn strict_bounds_normalized() {
    let plan = parse("SELECT * FROM ts WHERE A > 5 AND A < 10").unwrap();
    match plan {
        Plan::Filter { pred, .. } => assert_eq!(pred.value, Some((6, 9))),
        other => panic!("{other:?}"),
    }
}

#[test]
fn negative_literals() {
    let plan = parse("SELECT * FROM ts WHERE A >= -20 AND A <= -3").unwrap();
    match plan {
        Plan::Filter { pred, .. } => assert_eq!(pred.value, Some((-20, -3))),
        other => panic!("{other:?}"),
    }
}

#[test]
fn errors_are_reported() {
    assert!(parse("SELECT").is_err());
    assert!(parse("SELECT * FROM").is_err());
    assert!(parse("FROBNICATE x").is_err());
    assert!(parse("SELECT SUM(A) FROM ts SW(0, 0)").is_err());
    assert!(parse("SELECT * FROM ts WHERE A !! 3").is_err());
    assert!(parse("SELECT * FROM ts extra garbage").is_err());
}

#[test]
fn inter_column_predicate_attaches_to_join() {
    let plan = parse("SELECT * FROM ts1, ts2 WHERE ts1.A > ts2.A").unwrap();
    match plan {
        Plan::Join { on, .. } => assert_eq!(on, Some(CmpOp::Gt)),
        other => panic!("{other:?}"),
    }
    // Mixed with single-column conjuncts: Eq. 1 separation.
    let plan = parse("SELECT * FROM ts1, ts2 WHERE time >= 5 AND ts1.A <= ts2.A").unwrap();
    match plan {
        Plan::Join { on, left, .. } => {
            assert_eq!(on, Some(CmpOp::Le));
            assert!(
                matches!(*left, Plan::Filter { .. }),
                "time filter pushed to scans"
            );
        }
        other => panic!("{other:?}"),
    }
    // Two inter-column conjuncts are rejected.
    assert!(parse("SELECT * FROM a, b WHERE a.A > b.A AND a.A < b.A").is_err());
}

#[test]
fn first_last_keywords() {
    for (kw, func) in [("FIRST", AggFunc::First), ("LAST_VALUE", AggFunc::Last)] {
        let plan = parse(&format!("SELECT {kw}(A) FROM ts WHERE time >= 3")).unwrap();
        match plan {
            Plan::Aggregate { func: f, .. } => assert_eq!(f, func),
            other => panic!("{other:?}"),
        }
    }
}

#[test]
fn group_by_time_epoch_aligned() {
    // No time filter: bucket origin 0.
    let plan = parse("SELECT SUM(A) FROM ts GROUP BY TIME(1000)").unwrap();
    match plan {
        Plan::WindowAggregate { window, func, .. } => {
            assert_eq!(window, SlidingWindow { t_min: 0, dt: 1000 });
            assert_eq!(func, AggFunc::Sum);
        }
        other => panic!("{other:?}"),
    }
    // Lower bound 2500 snaps down to the bucket multiple 2000.
    let plan = parse("SELECT AVG(A) FROM ts WHERE time >= 2500 GROUP BY TIME(1000)").unwrap();
    match plan {
        Plan::WindowAggregate { window, .. } => {
            assert_eq!(
                window,
                SlidingWindow {
                    t_min: 2000,
                    dt: 1000
                }
            );
        }
        other => panic!("{other:?}"),
    }
    // Negative bounds snap toward negative infinity.
    let plan = parse("SELECT MAX(A) FROM ts WHERE time >= -1500 GROUP BY TIME(1000)").unwrap();
    match plan {
        Plan::WindowAggregate { window, .. } => {
            assert_eq!(
                window,
                SlidingWindow {
                    t_min: -2000,
                    dt: 1000
                }
            );
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn quantile_rate_delta_keywords() {
    for (kw, func) in [
        ("P50", AggFunc::P50),
        ("MEDIAN", AggFunc::P50),
        ("P95", AggFunc::P95),
        ("P99", AggFunc::P99),
        ("RATE", AggFunc::Rate),
        ("DELTA", AggFunc::Delta),
    ] {
        let plan = parse(&format!("SELECT {kw}(A) FROM ts")).unwrap();
        match plan {
            Plan::Aggregate { func: f, .. } => assert_eq!(f, func, "{kw}"),
            other => panic!("{other:?}"),
        }
        let plan = parse(&format!("SELECT {kw}(A) FROM ts GROUP BY TIME(500)")).unwrap();
        match plan {
            Plan::WindowAggregate { func: f, .. } => assert_eq!(f, func, "{kw}"),
            other => panic!("{other:?}"),
        }
    }
}

#[test]
fn group_by_time_rejects_malformed() {
    assert!(parse("SELECT SUM(A) FROM ts GROUP BY TIME(0)").is_err());
    assert!(parse("SELECT SUM(A) FROM ts GROUP BY TIME(-5)").is_err());
    assert!(parse("SELECT SUM(A) FROM ts GROUP BY TIME()").is_err());
    assert!(parse("SELECT SUM(A) FROM ts GROUP BY VALUE(10)").is_err());
    assert!(parse("SELECT SUM(A) FROM ts GROUP TIME(10)").is_err());
    assert!(parse("SELECT * FROM ts GROUP BY TIME(10)").is_err());
}

#[test]
fn count_star() {
    let plan = parse("SELECT COUNT(*) FROM ts WHERE time >= 0 AND time <= 10").unwrap();
    assert!(matches!(
        plan,
        Plan::Aggregate {
            func: AggFunc::Count,
            ..
        }
    ));
}
