//! Failure injection: corrupted pages, hostile SQL, and overflow inputs
//! must produce clean errors or widened results — never panics or wrong
//! answers (paper §VI-C, "Behavior on failures").

use etsqp_core::engine::{EngineOptions, IotDb};
use etsqp_core::expr::{AggFunc, Plan};
use etsqp_core::plan::Value;
use etsqp_encoding::Encoding;
use etsqp_storage::page::Page;
use etsqp_storage::store::SeriesStore;
use proptest::prelude::*;

fn db_with_corrupt_value_page() -> IotDb {
    let store = SeriesStore::new(1024);
    let ts: Vec<i64> = (0..100).collect();
    let vals: Vec<i64> = (0..100).collect();
    let good = Page::encode(&ts, &vals, Encoding::Ts2Diff, Encoding::Ts2Diff).unwrap();
    // Corrupt: truncate the value payload but keep the header claiming
    // 100 tuples.
    // The stale checksum models real corruption: nothing reseals it.
    let bad = Page {
        header: good.header,
        ts_bytes: good.ts_bytes.clone(),
        val_bytes: good.val_bytes.slice(0..good.val_bytes.len() / 2),
        checksum: good.checksum,
    };
    store.insert_pages("s", vec![bad]);
    IotDb::with_store(store, EngineOptions::default())
}

#[test]
fn corrupt_page_yields_error_not_panic() {
    let db = db_with_corrupt_value_page();
    let plan = Plan::scan("s").aggregate(AggFunc::Sum);
    assert!(db.execute(&plan).is_err());
    // Row scans hit the same corruption.
    assert!(db.query("SELECT * FROM s").is_err());
}

#[test]
fn corrupt_header_encoding_tag_detected() {
    let store = SeriesStore::new(64);
    let ts: Vec<i64> = (0..10).collect();
    let good = Page::encode(&ts, &ts, Encoding::Ts2Diff, Encoding::Ts2Diff).unwrap();
    let mut image = good.to_bytes();
    image[36] = 250; // invalid ts-encoding tag
    assert!(Page::from_bytes(&image).is_err());
    let _ = store;
}

#[test]
fn sum_overflow_widens_to_float() {
    // Values near i64::MAX: the exact i128 sum exceeds i64 → the result
    // must widen to Float (§VI-C: aggregate with a larger quantity).
    let db = IotDb::new(EngineOptions::default());
    db.create_series("s").unwrap();
    let big = i64::MAX / 2;
    for i in 0..8i64 {
        db.append("s", i, big).unwrap();
    }
    db.flush().unwrap();
    let r = db.query("SELECT SUM(s) FROM s").unwrap();
    match r.rows[0][0] {
        Value::Float(f) => {
            let want = big as f64 * 8.0;
            assert!((f - want).abs() / want < 1e-9, "{f} vs {want}");
        }
        other => panic!("expected widened float, got {other:?}"),
    }
    // AVG stays finite and exact-ish.
    let r = db.query("SELECT AVG(s) FROM s").unwrap();
    match r.rows[0][0] {
        Value::Float(f) => assert!((f - big as f64).abs() / (big as f64) < 1e-9),
        other => panic!("{other:?}"),
    }
}

#[test]
fn serial_engine_handles_overflow_identically() {
    let mk = |opts| {
        let db = IotDb::new(opts);
        db.create_series("s").unwrap();
        for i in 0..6i64 {
            db.append("s", i, i64::MIN / 3).unwrap();
        }
        db.flush().unwrap();
        db.query("SELECT SUM(s) FROM s").unwrap().rows[0][0]
    };
    let fast = mk(EngineOptions::etsqp());
    let serial = mk(EngineOptions::serial());
    match (fast, serial) {
        (Value::Float(a), Value::Float(b)) => assert_eq!(a, b),
        (a, b) => assert_eq!(a, b),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn sql_parser_never_panics(input in "\\PC{0,120}") {
        let _ = etsqp_core::sql::parse(&input);
    }

    #[test]
    fn sql_parser_handles_keyword_soup(
        words in proptest::collection::vec(
            prop_oneof![
                Just("SELECT"), Just("FROM"), Just("WHERE"), Just("AND"),
                Just("UNION"), Just("ORDER"), Just("BY"), Just("TIME"),
                Just("SW"), Just("SUM"), Just("("), Just(")"), Just(","),
                Just("*"), Just("ts"), Just("42"), Just(">="), Just("<"),
                Just("."), Just("+"), Just(";"), Just("-7"),
            ],
            0..25,
        )
    ) {
        let input = words.join(" ");
        let _ = etsqp_core::sql::parse(&input);
    }

    #[test]
    fn engine_survives_random_page_corruption(
        flips in proptest::collection::vec((0usize..4096, 0u8..8), 1..20)
    ) {
        // Flip random bits in an encoded page image; decoding through the
        // engine must either succeed (harmless flips) or error cleanly.
        let ts: Vec<i64> = (0..500).collect();
        let vals: Vec<i64> = (0..500).map(|i| i * 3 % 101).collect();
        let good = Page::encode(&ts, &vals, Encoding::Ts2Diff, Encoding::Ts2Diff).unwrap();
        let mut val_bytes = good.val_bytes.to_vec();
        for (pos, bit) in flips {
            if !val_bytes.is_empty() {
                let p = pos % val_bytes.len();
                val_bytes[p] ^= 1 << bit;
            }
        }
        let store = SeriesStore::new(1024);
        store.insert_pages("s", vec![Page {
            header: good.header,
            ts_bytes: good.ts_bytes.clone(),
            val_bytes: val_bytes.into(),
            checksum: good.checksum,
        }]);
        let db = IotDb::with_store(store, EngineOptions::default());
        let _ = db.query("SELECT SUM(s) FROM s"); // must not panic
        let _ = db.query("SELECT * FROM s");
    }
}
