//! End-to-end tests of the physical pipeline executor (formerly the
//! `plan.rs` unit-test battery, now driving the public API through the
//! Algorithm 2 compiler + driver).

use etsqp_core::expr::{AggFunc, BinOp, CmpOp, Plan, Predicate};
use etsqp_core::fused::FuseLevel;
use etsqp_core::plan::{execute, finalize, PipelineConfig, Value};
use etsqp_encoding::Encoding;
use etsqp_simd::agg::AggState;
use etsqp_storage::store::SeriesStore;

fn store_with(series: &str, ts: &[i64], vals: &[i64], page_points: usize) -> SeriesStore {
    let store = SeriesStore::new(page_points);
    store.create_series(series, Encoding::Ts2Diff, Encoding::Ts2Diff);
    store.append_all(series, ts, vals).unwrap();
    store.flush(series).unwrap();
    store
}

fn cfg() -> PipelineConfig {
    PipelineConfig {
        threads: 2,
        ..Default::default()
    }
}

#[test]
fn whole_series_sum_matches_naive() {
    let ts: Vec<i64> = (0..5000).map(|i| i * 10).collect();
    let vals: Vec<i64> = (0..5000).map(|i| 100 + (i % 37)).collect();
    let store = store_with("s", &ts, &vals, 512);
    let plan = Plan::scan("s").aggregate(AggFunc::Sum);
    let r = execute(&plan, &store, &cfg()).unwrap();
    let want: i64 = vals.iter().sum();
    assert_eq!(r.rows, vec![vec![Value::Int(want)]]);
}

#[test]
fn all_agg_functions_match_naive() {
    let ts: Vec<i64> = (0..3000).map(|i| i * 5).collect();
    let vals: Vec<i64> = (0..3000).map(|i| (i * 7) % 113 - 50).collect();
    let store = store_with("s", &ts, &vals, 700);
    for func in [
        AggFunc::Sum,
        AggFunc::Avg,
        AggFunc::Count,
        AggFunc::Min,
        AggFunc::Max,
        AggFunc::Variance,
    ] {
        let plan = Plan::scan("s").aggregate(func);
        let r = execute(&plan, &store, &cfg()).unwrap();
        let got = r.rows[0][0];
        let mut naive = AggState::new();
        vals.iter().for_each(|&v| naive.push(v));
        let want = finalize(func, &naive);
        match (got, want) {
            (Value::Float(a), Value::Float(b)) => assert!((a - b).abs() < 1e-9, "{func:?}"),
            (a, b) => assert_eq!(a, b, "{func:?}"),
        }
    }
}

#[test]
fn time_filter_matches_naive() {
    let ts: Vec<i64> = (0..4000).map(|i| 1_000_000 + i * 100).collect();
    let vals: Vec<i64> = (0..4000).map(|i| i % 500).collect();
    let store = store_with("s", &ts, &vals, 512);
    let pred = Predicate::time(1_050_000, 1_250_000);
    let plan = Plan::scan("s").filter(pred).aggregate(AggFunc::Sum);
    let r = execute(&plan, &store, &cfg()).unwrap();
    let want: i64 = ts
        .iter()
        .zip(&vals)
        .filter(|(&t, _)| (1_050_000..=1_250_000).contains(&t))
        .map(|(_, &v)| v)
        .sum();
    assert_eq!(r.rows[0][0], Value::Int(want));
    // Pruning must have skipped out-of-range pages.
    assert!(r.stats.pages_pruned > 0);
}

#[test]
fn value_filter_matches_naive() {
    let ts: Vec<i64> = (0..3000).collect();
    let vals: Vec<i64> = (0..3000).map(|i| (i * 31) % 1000).collect();
    let store = store_with("s", &ts, &vals, 512);
    let plan = Plan::scan("s")
        .filter(Predicate::value(500, i64::MAX))
        .aggregate(AggFunc::Count);
    let r = execute(&plan, &store, &cfg()).unwrap();
    let want = vals.iter().filter(|&&v| v >= 500).count() as i64;
    assert_eq!(r.rows[0][0], Value::Int(want));
}

#[test]
fn window_aggregate_matches_naive() {
    let ts: Vec<i64> = (0..2000).map(|i| i * 10).collect();
    let vals: Vec<i64> = (0..2000).map(|i| i % 91).collect();
    let store = store_with("s", &ts, &vals, 333);
    let plan = Plan::scan("s").window(0, 2500, AggFunc::Sum);
    let r = execute(&plan, &store, &cfg()).unwrap();
    // Naive windows.
    let mut naive: std::collections::BTreeMap<i64, i64> = std::collections::BTreeMap::new();
    for (&t, &v) in ts.iter().zip(&vals) {
        *naive.entry((t / 2500) * 2500).or_default() += v;
    }
    assert_eq!(r.rows.len(), naive.len());
    for row in &r.rows {
        let (Value::Int(start), Value::Int(sum)) = (row[0], row[1]) else {
            panic!("bad row {row:?}")
        };
        assert_eq!(naive[&start], sum, "window {start}");
    }
}

#[test]
fn serial_and_vectorized_agree() {
    let ts: Vec<i64> = (0..2500).map(|i| i * 7).collect();
    let vals: Vec<i64> = (0..2500).map(|i| (i % 301) - 150).collect();
    let store = store_with("s", &ts, &vals, 400);
    let plan = Plan::scan("s")
        .filter(Predicate::time(1000, 12_000).and(&Predicate::value(-100, 100)))
        .aggregate(AggFunc::Sum);
    let fast = execute(&plan, &store, &cfg()).unwrap();
    let serial_cfg = PipelineConfig {
        vectorized: false,
        threads: 1,
        prune: false,
        ..Default::default()
    };
    let slow = execute(&plan, &store, &serial_cfg).unwrap();
    assert_eq!(fast.rows, slow.rows);
}

#[test]
fn fusion_levels_agree() {
    let ts: Vec<i64> = (0..3000).map(|i| i * 3).collect();
    let vals: Vec<i64> = (0..3000).map(|i| 10 + (i % 7)).collect();
    let store = store_with("s", &ts, &vals, 500);
    let plan = Plan::scan("s").aggregate(AggFunc::Sum);
    let mut results = Vec::new();
    for fuse in [FuseLevel::None, FuseLevel::Delta, FuseLevel::DeltaRepeat] {
        let c = PipelineConfig {
            fuse,
            allow_slicing: false,
            ..cfg()
        };
        results.push(execute(&plan, &store, &c).unwrap().rows);
    }
    assert_eq!(results[0], results[1]);
    assert_eq!(results[1], results[2]);
}

#[test]
fn sliced_execution_agrees_with_paged() {
    // 2 pages, 8 threads → slices; result must match unsliced.
    let ts: Vec<i64> = (0..2000).collect();
    let vals: Vec<i64> = (0..2000).map(|i| (i % 97) - 48).collect();
    let store = store_with("s", &ts, &vals, 1000);
    let plan = Plan::scan("s").aggregate(AggFunc::Sum);
    let sliced = PipelineConfig {
        threads: 8,
        allow_slicing: true,
        ..cfg()
    };
    let paged = PipelineConfig {
        threads: 8,
        allow_slicing: false,
        ..cfg()
    };
    let a = execute(&plan, &store, &sliced).unwrap();
    let b = execute(&plan, &store, &paged).unwrap();
    assert_eq!(a.rows, b.rows);
    // Min/max/variance also survive the symbolic slice merge.
    for func in [AggFunc::Min, AggFunc::Max, AggFunc::Variance, AggFunc::Avg] {
        let plan = Plan::scan("s").aggregate(func);
        let a = execute(&plan, &store, &sliced).unwrap();
        let b = execute(&plan, &store, &paged).unwrap();
        match (a.rows[0][0], b.rows[0][0]) {
            (Value::Float(x), Value::Float(y)) => assert!((x - y).abs() < 1e-6, "{func:?}"),
            (x, y) => assert_eq!(x, y, "{func:?}"),
        }
    }
}

#[test]
fn union_and_join_match_naive() {
    let t1: Vec<i64> = (0..100).map(|i| i * 2).collect(); // evens
    let v1: Vec<i64> = (0..100).collect();
    let t2: Vec<i64> = (0..100).map(|i| i * 3).collect(); // multiples of 3
    let v2: Vec<i64> = (0..100).map(|i| 1000 + i).collect();
    let store = SeriesStore::new(64);
    store.create_series("a", Encoding::Ts2Diff, Encoding::Ts2Diff);
    store.create_series("b", Encoding::Ts2Diff, Encoding::Ts2Diff);
    store.append_all("a", &t1, &v1).unwrap();
    store.append_all("b", &t2, &v2).unwrap();
    store.flush("a").unwrap();
    store.flush("b").unwrap();

    let union = Plan::Union {
        left: Box::new(Plan::scan("a")),
        right: Box::new(Plan::scan("b")),
    };
    let r = execute(&union, &store, &cfg()).unwrap();
    assert_eq!(r.rows.len(), 200);
    // Sorted by time.
    let times: Vec<i64> = r
        .rows
        .iter()
        .map(|row| match row[0] {
            Value::Int(t) => t,
            _ => panic!(),
        })
        .collect();
    assert!(times.windows(2).all(|w| w[0] <= w[1]));

    let join = Plan::Join {
        left: Box::new(Plan::scan("a")),
        right: Box::new(Plan::scan("b")),
        on: None,
    };
    let r = execute(&join, &store, &cfg()).unwrap();
    // Equal timestamps: multiples of 6 below 198 and below 297 → 0,6,...,198.
    let want = t1.iter().filter(|t| t2.contains(t)).count();
    assert_eq!(r.rows.len(), want);

    let jexpr = Plan::JoinExpr {
        left: Box::new(Plan::scan("a")),
        right: Box::new(Plan::scan("b")),
        op: BinOp::Add,
    };
    let r = execute(&jexpr, &store, &cfg()).unwrap();
    assert_eq!(r.rows.len(), want);
    // Row 0: t=0, a=0, b=1000 → 1000.
    assert_eq!(r.rows[0], vec![Value::Int(0), Value::Int(1000)]);
}

#[test]
fn empty_result_yields_null() {
    let ts: Vec<i64> = (0..100).collect();
    let vals = ts.clone();
    let store = store_with("s", &ts, &vals, 50);
    let plan = Plan::scan("s")
        .filter(Predicate::time(10_000, 20_000))
        .aggregate(AggFunc::Sum);
    let r = execute(&plan, &store, &cfg()).unwrap();
    assert_eq!(r.rows[0][0], Value::Null);
}

#[test]
fn first_last_aggregates_match_naive() {
    let ts: Vec<i64> = (0..3000).map(|i| i * 5).collect();
    let vals: Vec<i64> = (0..3000).map(|i| (i * 37) % 1009 - 200).collect();
    let store = store_with("s", &ts, &vals, 256);
    // Whole series, sliced and unsliced.
    for threads in [1usize, 8] {
        let c = PipelineConfig { threads, ..cfg() };
        let first = execute(&Plan::scan("s").aggregate(AggFunc::First), &store, &c).unwrap();
        let last = execute(&Plan::scan("s").aggregate(AggFunc::Last), &store, &c).unwrap();
        assert_eq!(first.rows[0][0], Value::Int(vals[0]), "threads {threads}");
        assert_eq!(
            last.rows[0][0],
            Value::Int(*vals.last().unwrap()),
            "threads {threads}"
        );
    }
    // With a time filter.
    let pred = Predicate::time(ts[100], ts[2000]);
    let r = execute(
        &Plan::scan("s").filter(pred).aggregate(AggFunc::First),
        &store,
        &cfg(),
    )
    .unwrap();
    assert_eq!(r.rows[0][0], Value::Int(vals[100]));
    // With a value filter (first qualifying value).
    let pred = Predicate::value(500, i64::MAX);
    let want = *vals.iter().find(|&&v| v >= 500).unwrap();
    let r = execute(
        &Plan::scan("s").filter(pred).aggregate(AggFunc::First),
        &store,
        &cfg(),
    )
    .unwrap();
    assert_eq!(r.rows[0][0], Value::Int(want));
    // Windowed LAST: one row per window, each the window's last value.
    let r = execute(
        &Plan::scan("s").window(0, 2500, AggFunc::Last),
        &store,
        &cfg(),
    )
    .unwrap();
    for row in &r.rows {
        let (Value::Int(start), Value::Int(got)) = (row[0], row[1]) else {
            panic!()
        };
        let want = ts
            .iter()
            .zip(&vals)
            .filter(|(&t, _)| t >= start && t < start + 2500)
            .map(|(_, &v)| v)
            .next_back()
            .unwrap();
        assert_eq!(got, want, "window {start}");
    }
    // Serial engine agrees.
    let serial = PipelineConfig {
        vectorized: false,
        threads: 1,
        prune: false,
        ..cfg()
    };
    let a = execute(&Plan::scan("s").aggregate(AggFunc::Last), &store, &serial).unwrap();
    let b = execute(&Plan::scan("s").aggregate(AggFunc::Last), &store, &cfg()).unwrap();
    assert_eq!(a.rows, b.rows);
}

#[test]
fn inter_column_join_predicate_filters_rows() {
    let t: Vec<i64> = (0..500).collect();
    let a: Vec<i64> = (0..500).map(|i| i % 100).collect();
    let b: Vec<i64> = (0..500).map(|_| 50).collect();
    let store = SeriesStore::new(128);
    store.create_series("a", Encoding::Ts2Diff, Encoding::Ts2Diff);
    store.create_series("b", Encoding::Ts2Diff, Encoding::Ts2Diff);
    store.append_all("a", &t, &a).unwrap();
    store.append_all("b", &t, &b).unwrap();
    store.flush("a").unwrap();
    store.flush("b").unwrap();
    for (op, want) in [
        (CmpOp::Gt, a.iter().filter(|&&v| v > 50).count()),
        (CmpOp::Le, a.iter().filter(|&&v| v <= 50).count()),
        (CmpOp::Eq, a.iter().filter(|&&v| v == 50).count()),
    ] {
        let plan = Plan::Join {
            left: Box::new(Plan::scan("a")),
            right: Box::new(Plan::scan("b")),
            on: Some(op),
        };
        let r = execute(&plan, &store, &cfg()).unwrap();
        assert_eq!(r.rows.len(), want, "{op:?}");
    }
}

#[test]
fn partitioned_merge_agrees_with_single_thread() {
    // Figure 9 merge nodes: many partitions must produce exactly the
    // sequential result for every binary operator, including on
    // misaligned clocks with filters.
    let t1: Vec<i64> = (0..3000).map(|i| i * 2).collect();
    let v1: Vec<i64> = (0..3000).map(|i| i % 251).collect();
    let t2: Vec<i64> = (0..3000).map(|i| i * 3 + 1).collect();
    let v2: Vec<i64> = (0..3000).map(|i| 500 - i % 100).collect();
    let store = SeriesStore::new(200);
    store.create_series("a", Encoding::Ts2Diff, Encoding::Ts2Diff);
    store.create_series("b", Encoding::Ts2Diff, Encoding::Ts2Diff);
    store.append_all("a", &t1, &v1).unwrap();
    store.append_all("b", &t2, &v2).unwrap();
    store.flush("a").unwrap();
    store.flush("b").unwrap();
    let pred = Predicate::time(1000, 8000);
    for plan in [
        Plan::Union {
            left: Box::new(Plan::scan("a").filter(pred)),
            right: Box::new(Plan::scan("b")),
        },
        Plan::Join {
            left: Box::new(Plan::scan("a")),
            right: Box::new(Plan::scan("b")),
            on: None,
        },
        Plan::JoinExpr {
            left: Box::new(Plan::scan("a")),
            right: Box::new(Plan::scan("b").filter(pred)),
            op: BinOp::Mul,
        },
    ] {
        let sequential = execute(
            &plan,
            &store,
            &PipelineConfig {
                threads: 1,
                ..cfg()
            },
        )
        .unwrap();
        for threads in [2usize, 5, 16] {
            let parallel = execute(&plan, &store, &PipelineConfig { threads, ..cfg() }).unwrap();
            assert_eq!(
                parallel.rows, sequential.rows,
                "threads {threads} plan {plan:?}"
            );
        }
    }
}

#[test]
fn tight_decode_budget_still_answers_correctly() {
    // §VI-C gradual loading: a budget smaller than one page's decode
    // buffers must not deadlock (oversized grants) and a budget that
    // serializes page decodes must still produce the right rows.
    let ts: Vec<i64> = (0..5000).collect();
    let vals: Vec<i64> = (0..5000).map(|i| i % 77).collect();
    let store = store_with("s", &ts, &vals, 512);
    let plan = Plan::scan("s").filter(Predicate::value(10, 50));
    let unlimited = execute(&plan, &store, &cfg()).unwrap();
    for budget in [1u64, 512 * 16, 10_000_000] {
        let c = PipelineConfig {
            threads: 4,
            decode_budget_bytes: Some(budget),
            ..cfg()
        };
        let r = execute(&plan, &store, &c).unwrap();
        assert_eq!(r.rows, unlimited.rows, "budget {budget}");
    }
}

#[test]
fn stream_vbyte_values_use_svb_fusion() {
    let ts: Vec<i64> = (0..2048).collect();
    let vals: Vec<i64> = (0..2048)
        .map(|i| 900 + (i * 13) % 512 - (i % 7) * 40)
        .collect();
    let store = SeriesStore::new(512);
    store.create_series("s", Encoding::Ts2Diff, Encoding::StreamVByte);
    store.append_all("s", &ts, &vals).unwrap();
    store.flush("s").unwrap();
    let config = PipelineConfig {
        allow_slicing: false,
        ..cfg()
    };
    // SUM/AVG/COUNT take the fused(svb) closed form; the plan must say so.
    let plan = Plan::scan("s").aggregate(AggFunc::Sum);
    let rendered = etsqp_core::physical::pipe::compile(&plan, &store, &config)
        .unwrap()
        .render(&config);
    assert!(rendered.contains("fused(svb)"), "plan was:\n{rendered}");
    for func in [AggFunc::Sum, AggFunc::Avg, AggFunc::Count] {
        let plan = Plan::scan("s").aggregate(func);
        let r = execute(&plan, &store, &config).unwrap();
        let mut naive = AggState::new();
        vals.iter().for_each(|&v| naive.push(v));
        let want = finalize(func, &naive);
        match (r.rows[0][0], want) {
            (Value::Float(a), Value::Float(b)) => assert!((a - b).abs() < 1e-9, "{func:?}"),
            (a, b) => assert_eq!(a, b, "{func:?}"),
        }
    }
    // A partial time range re-checks at run time and falls back to decode
    // on the straddled page — results must agree with the naive oracle.
    let pred = Predicate::time(100, 1500);
    let plan = Plan::scan("s").filter(pred).aggregate(AggFunc::Sum);
    let r = execute(&plan, &store, &config).unwrap();
    let want: i64 = ts
        .iter()
        .zip(&vals)
        .filter(|(&t, _)| (100..=1500).contains(&t))
        .map(|(_, &v)| v)
        .sum();
    assert_eq!(r.rows[0][0], Value::Int(want));
}

#[test]
fn stream_vbyte_fusion_disabled_matches_decode() {
    // With fusion off the same query runs the DecodeScan path; both
    // levels must produce identical sums.
    let ts: Vec<i64> = (0..3000).collect();
    let vals: Vec<i64> = (0..3000).map(|i| (i * 31) % 997 - 400).collect();
    let store = SeriesStore::new(600);
    store.create_series("s", Encoding::Ts2Diff, Encoding::StreamVByte);
    store.append_all("s", &ts, &vals).unwrap();
    store.flush("s").unwrap();
    let plan = Plan::scan("s").aggregate(AggFunc::Sum);
    let fused = execute(&plan, &store, &cfg()).unwrap();
    let unfused = execute(
        &plan,
        &store,
        &PipelineConfig {
            fuse: FuseLevel::None,
            ..cfg()
        },
    )
    .unwrap();
    assert_eq!(fused.rows, unfused.rows);
    let want: i64 = vals.iter().sum();
    assert_eq!(fused.rows[0][0], Value::Int(want));
}

#[test]
fn delta_rle_values_use_full_fusion() {
    let ts: Vec<i64> = (0..2048).collect();
    let vals: Vec<i64> = (0..2048).map(|i| 5 + (i / 100)).collect(); // long runs
    let store = SeriesStore::new(1024);
    store.create_series("s", Encoding::Ts2Diff, Encoding::DeltaRle);
    store.append_all("s", &ts, &vals).unwrap();
    store.flush("s").unwrap();
    for func in [AggFunc::Sum, AggFunc::Min, AggFunc::Max, AggFunc::Variance] {
        let plan = Plan::scan("s").aggregate(func);
        let r = execute(
            &plan,
            &store,
            &PipelineConfig {
                allow_slicing: false,
                ..cfg()
            },
        )
        .unwrap();
        let mut naive = AggState::new();
        vals.iter().for_each(|&v| naive.push(v));
        let want = finalize(func, &naive);
        match (r.rows[0][0], want) {
            (Value::Float(a), Value::Float(b)) => assert!((a - b).abs() < 1e-9, "{func:?}"),
            (a, b) => assert_eq!(a, b, "{func:?}"),
        }
    }
}
