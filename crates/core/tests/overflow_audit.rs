//! Overflow audit regressions (§VI-C): aggregates over values near the
//! `i64` limits must match the oracle exactly on every fast path.
//!
//! Three historical wrap/crash sites, each now guarded by
//! `spread_fits_i64` (fall back to the exact decode path) or widened:
//!
//! 1. the slice-coefficient chain accumulated `rel: i64` with wrapping
//!    adds, so sliced SUM over a page spanning more than `i64::MAX` was
//!    silently wrong;
//! 2. the fused TS2DIFF/Delta-RLE closed forms widen *stored* deltas to
//!    `i128`, which is only exact when the deltas did not wrap at encode
//!    time;
//! 3. `sum_ts2diff` unpacked deltas with the 32-bit unpacker, which
//!    *asserts* `width <= 32` — any page with a delta spread above 2³²
//!    panicked the fused path.

use etsqp_core::decode::DecodeOptions;
use etsqp_core::expr::{AggFunc, Plan};
use etsqp_core::fused::FuseLevel;
use etsqp_core::oracle;
use etsqp_core::plan::{execute, PipelineConfig, Value};
use etsqp_encoding::Encoding;
use etsqp_storage::store::SeriesStore;

fn store_with(codec: Encoding, ts: &[i64], vals: &[i64]) -> SeriesStore {
    let store = SeriesStore::new(1024);
    store.create_series("s", Encoding::Ts2Diff, codec);
    store.append_all("s", ts, vals).unwrap();
    store.flush("s").unwrap();
    store
}

fn run(store: &SeriesStore, plan: &Plan, cfg: &PipelineConfig) -> Vec<Vec<Value>> {
    let (ocols, orows) = oracle::execute(plan, store).unwrap();
    let got = execute(plan, store, cfg).unwrap();
    assert_eq!(got.columns, ocols);
    assert_eq!(got.rows, orows, "engine diverged from oracle under {cfg:?}");
    orows
}

fn sliced_cfg() -> PipelineConfig {
    PipelineConfig {
        threads: 4,
        prune: false,
        fuse: FuseLevel::None,
        vectorized: true,
        decode: DecodeOptions::default(),
        allow_slicing: true,
        decode_budget_bytes: None,
        scheduler: etsqp_core::exec::Scheduler::Pool,
        partial_cache: true,
    }
}

fn fused_cfg() -> PipelineConfig {
    PipelineConfig {
        fuse: FuseLevel::DeltaRepeat,
        allow_slicing: false,
        ..sliced_cfg()
    }
}

/// Regression 1: sliced SUM over a single page whose value spread
/// exceeds `i64::MAX` (deltas wrapped at encode time). One page and
/// `threads > pages` forces the slicing path; the spread guard must
/// reject it and fall back to the exact decode pipeline.
#[test]
fn sliced_sum_near_i64_extremes_does_not_wrap() {
    let ts: Vec<i64> = (0..64).map(|i| i * 10).collect();
    let vals: Vec<i64> = (0..64)
        .map(|i| {
            if i % 2 == 0 {
                i64::MIN + 7
            } else {
                i64::MAX - 7
            }
        })
        .collect();
    let store = store_with(Encoding::Ts2Diff, &ts, &vals);
    let rows = run(
        &store,
        &Plan::scan("s").aggregate(AggFunc::Sum),
        &sliced_cfg(),
    );
    // 32 pairs of (MIN+7, MAX-7): each pair sums to -1, total -32.
    assert_eq!(rows[0][0], Value::Int(-32));
}

/// Regression 2a: fused whole-page SUM with wrapped TS2DIFF deltas.
#[test]
fn fused_sum_with_wrapped_deltas_matches_oracle() {
    let ts: Vec<i64> = (0..32).map(|i| i * 10).collect();
    let vals: Vec<i64> = (0..32)
        .map(|i| {
            if i % 2 == 0 {
                i64::MIN / 2
            } else {
                i64::MAX / 2
            }
        })
        .collect();
    let store = store_with(Encoding::Ts2Diff, &ts, &vals);
    run(
        &store,
        &Plan::scan("s").aggregate(AggFunc::Sum),
        &fused_cfg(),
    );
    run(
        &store,
        &Plan::scan("s").window(0, 40, AggFunc::Sum),
        &fused_cfg(),
    );
}

/// Regression 2b: sums whose *result* exceeds `i64` widen to `Float`
/// (the §VI-C contract) instead of wrapping, on every path.
#[test]
fn sum_exceeding_i64_widens_to_float() {
    let ts: Vec<i64> = (0..8).map(|i| i * 10).collect();
    let vals: Vec<i64> = vec![i64::MAX - 1; 8];
    let store = store_with(Encoding::Ts2Diff, &ts, &vals);
    for cfg in [sliced_cfg(), fused_cfg(), PipelineConfig::default()] {
        let rows = run(&store, &Plan::scan("s").aggregate(AggFunc::Sum), &cfg);
        match rows[0][0] {
            Value::Float(f) => assert_eq!(f, (i64::MAX - 1) as f64 * 8.0),
            ref other => panic!("expected widened Float, got {other:?}"),
        }
    }
}

/// Regression 3: a TS2DIFF page whose delta spread exceeds 2³² needs the
/// 64-bit unpacker on the fused path (the 32-bit one asserts width ≤ 32).
/// The spread here still fits `i64`, so fusion stays enabled and must be
/// exact.
#[test]
fn fused_sum_with_wide_deltas_uses_64bit_unpack() {
    let ts: Vec<i64> = (0..48).map(|i| i * 10).collect();
    let big = 1i64 << 40; // delta spread ±2⁴⁰ → width ≈ 42 bits
    let vals: Vec<i64> = (0..48).map(|i| if i % 2 == 0 { 0 } else { big }).collect();
    let store = store_with(Encoding::Ts2Diff, &ts, &vals);
    let rows = run(
        &store,
        &Plan::scan("s").aggregate(AggFunc::Sum),
        &fused_cfg(),
    );
    assert_eq!(rows[0][0], Value::Int(24 * big));
    run(
        &store,
        &Plan::scan("s").window(0, 45, AggFunc::Sum),
        &fused_cfg(),
    );
}

/// Regression 5: VARIANCE of identical values near `i64::MAX` came out
/// a large *negative* number — Σx² saturates at the `i128` limit, and
/// the E[x²]−mean² finalizer in `f64` then dipped below zero. Population
/// variance is non-negative by definition, so the finalizers clamp.
#[test]
fn variance_near_i64_max_is_never_negative() {
    let ts: Vec<i64> = (0..8).map(|i| i * 10).collect();
    let vals: Vec<i64> = vec![i64::MAX - 1; 8];
    let store = store_with(Encoding::Ts2Diff, &ts, &vals);
    for cfg in [sliced_cfg(), fused_cfg(), PipelineConfig::default()] {
        let rows = run(&store, &Plan::scan("s").aggregate(AggFunc::Variance), &cfg);
        match rows[0][0] {
            Value::Float(f) => assert!(f >= 0.0, "negative variance {f} under {cfg:?}"),
            ref other => panic!("expected Float variance, got {other:?}"),
        }
    }
}

/// Regression 4: fused Delta-RLE LAST returned the page's *first* value
/// (`aggregate_delta_rle` never advanced `state.last` past the seed).
/// Found by the differential sweep:
/// `spec=Atm codec=DeltaRle fuse=DeltaRepeat query=LAST(all)`.
#[test]
fn fused_delta_rle_last_is_the_final_value() {
    let ts: Vec<i64> = (0..60).map(|i| i * 10).collect();
    let vals: Vec<i64> = (0..60).map(|i| 100 + (i / 5) * 3).collect();
    let store = store_with(Encoding::DeltaRle, &ts, &vals);
    let rows = run(
        &store,
        &Plan::scan("s").aggregate(AggFunc::Last),
        &fused_cfg(),
    );
    assert_eq!(rows[0][0], Value::Int(*vals.last().unwrap()));
}
