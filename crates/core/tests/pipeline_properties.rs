//! Property tests for the whole pipeline: for arbitrary sensor-like
//! series, predicates and engine configurations, the vectorized / fused /
//! pruned / sliced engine must agree exactly with a naive in-memory
//! evaluation.

use etsqp_core::decode::{DecodeOptions, DeltaStrategy};
use etsqp_core::engine::{EngineOptions, IotDb};
use etsqp_core::expr::{AggFunc, Plan, Predicate};
use etsqp_core::fused::FuseLevel;
use etsqp_core::plan::{PipelineConfig, Value};
use etsqp_encoding::Encoding;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Series {
    ts: Vec<i64>,
    vals: Vec<i64>,
}

fn series_strategy() -> impl Strategy<Value = Series> {
    (
        1_000_000i64..2_000_000,
        proptest::collection::vec((1i64..5000, -3000i64..3000), 1..600),
    )
        .prop_map(|(t0, steps)| {
            let mut ts = Vec::with_capacity(steps.len());
            let mut vals = Vec::with_capacity(steps.len());
            let mut t = t0;
            let mut v = 0i64;
            for (dt, dv) in steps {
                t += dt;
                v += dv;
                ts.push(t);
                vals.push(v);
            }
            Series { ts, vals }
        })
}

fn naive(s: &Series, pred: &Predicate) -> (i128, u64, Option<i64>, Option<i64>) {
    let mut sum = 0i128;
    let mut count = 0u64;
    let mut mn = None;
    let mut mx = None;
    for (&t, &v) in s.ts.iter().zip(&s.vals) {
        if let Some(tr) = pred.time {
            if !tr.contains(t) {
                continue;
            }
        }
        if let Some((lo, hi)) = pred.value {
            if v < lo || v > hi {
                continue;
            }
        }
        sum += v as i128;
        count += 1;
        mn = Some(mn.map_or(v, |m: i64| m.min(v)));
        mx = Some(mx.map_or(v, |m: i64| m.max(v)));
    }
    (sum, count, mn, mx)
}

fn check_value(got: Value, want: Value, what: &str) -> Result<(), TestCaseError> {
    match (got, want) {
        (Value::Float(a), Value::Float(b)) => {
            prop_assert!(
                (a - b).abs() <= b.abs().max(1.0) * 1e-12,
                "{what}: {a} vs {b}"
            )
        }
        (a, b) => prop_assert_eq!(a, b, "{}", what),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engine_matches_naive_for_arbitrary_series(
        s in series_strategy(),
        page_points in prop_oneof![Just(7usize), Just(64), Just(300), Just(1024)],
        enc_idx in 0usize..3,
        t_sel in 0.0f64..1.0,
        v_sel in 0.0f64..1.0,
        cfg_idx in 0usize..5,
    ) {
        let enc = [Encoding::Ts2Diff, Encoding::DeltaRle, Encoding::Sprintz][enc_idx];
        let db = IotDb::new(
            EngineOptions::default()
                .with_encodings(Encoding::Ts2Diff, enc)
                .with_page_points(page_points),
        );
        db.create_series("s").unwrap();
        db.append_all("s", &s.ts, &s.vals).unwrap();
        db.flush().unwrap();

        // Predicate derived from data quantiles.
        let t_lo = s.ts[((s.ts.len() - 1) as f64 * t_sel * 0.5) as usize];
        let t_hi = s.ts[((s.ts.len() - 1) as f64 * (0.5 + t_sel * 0.5)) as usize];
        let mut sorted = s.vals.clone();
        sorted.sort_unstable();
        let v_lo = sorted[((sorted.len() - 1) as f64 * v_sel * 0.5) as usize];
        let v_hi = sorted[((sorted.len() - 1) as f64 * (0.5 + v_sel * 0.5)) as usize];
        let pred = Predicate::time(t_lo, t_hi).and(&Predicate::value(v_lo, v_hi));

        let cfg = [
            PipelineConfig::default(),
            PipelineConfig { prune: false, fuse: FuseLevel::None, ..Default::default() },
            PipelineConfig { threads: 1, allow_slicing: false, ..Default::default() },
            PipelineConfig { threads: 7, ..Default::default() },
            PipelineConfig {
                decode: DecodeOptions { n_v: Some(2), strategy: DeltaStrategy::StraightScan, ..Default::default() },
                ..Default::default()
            },
        ][cfg_idx];

        let (sum, count, mn, mx) = naive(&s, &pred);
        for func in [AggFunc::Sum, AggFunc::Count, AggFunc::Min, AggFunc::Max, AggFunc::Avg] {
            let plan = Plan::scan("s").filter(pred).aggregate(func);
            let r = db.execute_with(&plan, &cfg).unwrap();
            let got = r.rows[0][0];
            let want = if count == 0 {
                Value::Null
            } else {
                match func {
                    AggFunc::Sum => i64::try_from(sum).map(Value::Int).unwrap_or(Value::Float(sum as f64)),
                    AggFunc::Count => Value::Int(count as i64),
                    AggFunc::Min => Value::Int(mn.unwrap()),
                    AggFunc::Max => Value::Int(mx.unwrap()),
                    AggFunc::Avg => Value::Float(sum as f64 / count as f64),
                    _ => unreachable!("not exercised here"),
                }
            };
            check_value(got, want, &format!("{func:?} cfg{cfg_idx} enc{enc_idx}"))?;
        }
    }

    #[test]
    fn window_aggregation_matches_naive(
        s in series_strategy(),
        windows in 1i64..40,
        page_points in prop_oneof![Just(13usize), Just(128), Just(1024)],
    ) {
        let db = IotDb::new(EngineOptions::default().with_page_points(page_points));
        db.create_series("s").unwrap();
        db.append_all("s", &s.ts, &s.vals).unwrap();
        db.flush().unwrap();
        let span = s.ts.last().unwrap() - s.ts[0] + 1;
        let dt = (span / windows).max(1);
        let plan = Plan::scan("s").window(s.ts[0], dt, AggFunc::Sum);
        let r = db.execute(&plan).unwrap();

        let mut naive_map = std::collections::BTreeMap::new();
        for (&t, &v) in s.ts.iter().zip(&s.vals) {
            let k = (t - s.ts[0]) / dt;
            *naive_map.entry(s.ts[0] + k * dt).or_insert(0i128) += v as i128;
        }
        prop_assert_eq!(r.rows.len(), naive_map.len());
        for row in &r.rows {
            let Value::Int(start) = row[0] else { panic!() };
            let want = naive_map[&start];
            match row[1] {
                Value::Int(v) => prop_assert_eq!(v as i128, want),
                Value::Float(v) => prop_assert!((v - want as f64).abs() < 1.0),
                Value::Null => prop_assert_eq!(0, want),
            }
        }
    }

    #[test]
    fn sql_roundtrip_arbitrary_ranges(
        s in series_strategy(),
        lo in -5_000i64..5_000,
        len in 0i64..10_000,
    ) {
        let db = IotDb::new(EngineOptions::default());
        db.create_series("s").unwrap();
        db.append_all("s", &s.ts, &s.vals).unwrap();
        db.flush().unwrap();
        let hi = lo + len;
        let q = format!("SELECT COUNT(s) FROM s WHERE s >= {lo} AND s <= {hi}");
        let r = db.query(&q).unwrap();
        let want = s.vals.iter().filter(|&&v| v >= lo && v <= hi).count() as i64;
        let got = match r.rows[0][0] {
            Value::Int(v) => v,
            Value::Null => 0,
            other => panic!("{other:?}"),
        };
        prop_assert_eq!(got, want);
    }
}
