//! Pruned pipelines by encoding statistics (paper §V, Propositions 4–5).
//!
//! Two granularities:
//!
//! * **Page pruning** — header min/max statistics rule a page in or out of
//!   a time/value range before its payload is ever loaded (charged I/O).
//! * **Suffix pruning** — *during* a scan, the bounds derived from packing
//!   widths (`D_m ≥ minBase`, `D_M ≤ minBase + 2^ω − 1`, `R_M` from the
//!   run width) prove that the remaining suffix of a page can never
//!   re-enter the filter range, terminating the decode early. For ordered
//!   timestamps this is the "stop after passing `t₂`" rule of Example 2.

use etsqp_encoding::delta_rle::DeltaRlePage;
use etsqp_encoding::ts2diff::Ts2DiffPage;
use etsqp_storage::page::PageHeader;

/// A half-open decision produced by the pruning rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruneDecision {
    /// The rest of the sequence may still contain matches — keep decoding.
    Continue,
    /// Proposition 4/5 proves no later element can match — stop now.
    StopRest,
}

/// Bounds extracted from a page's encoding parameters — the statistics
/// §V reads from headers instead of data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaBounds {
    /// `D_m`: lower bound of any delta (`minBase`).
    pub d_min: i64,
    /// `D_M`: upper bound of any delta (`minBase + 2^ω − 1`).
    pub d_max: i64,
    /// `R_M`: upper bound of any run length (1 for non-Repeat formats).
    ///
    /// Kept for the §V statistics surface (and for future *run-count*
    /// based rules), but [`prune_rest`] deliberately does not read it:
    /// its `steps` are counted in **tuples**, not `(Δ, run)` pairs, and
    /// in Delta-RLE each tuple applies exactly one delta. The per-tuple
    /// reach bound `v_k + D_M·steps` (resp. `v_k + D_m·steps`) is
    /// therefore already tight regardless of how tuples group into runs
    /// — folding `R_M` in could only *loosen* a bound computed over
    /// pairs (`D_M·R_M` per pair ≥ `D_M` per tuple), never tighten the
    /// per-tuple one. Soundness is property-tested against real
    /// Delta-RLE pages in `tests/prune_properties.rs`.
    pub r_max: u64,
}

impl DeltaBounds {
    /// Bounds of a TS2DIFF page (no Repeat ⇒ `R_M = 1`).
    pub fn from_ts2diff(page: &Ts2DiffPage<'_>) -> Self {
        DeltaBounds {
            d_min: page.delta_lower_bound(),
            d_max: page.delta_upper_bound(),
            r_max: 1,
        }
    }

    /// Bounds of a Delta-RLE page.
    pub fn from_delta_rle(page: &DeltaRlePage<'_>) -> Self {
        DeltaBounds {
            d_min: page.delta_lower_bound(),
            d_max: page.delta_upper_bound(),
            r_max: page.run_upper_bound().max(1),
        }
    }
}

/// Proposition 4/5: given the decoded value `v_k` at position `k` of a
/// sequence of `n` elements and a conjunctive range filter
/// `v > c1 ∧ v < c2` (passed inclusively as `[c1, c2]`), decide whether
/// the remaining `n − k − 1` elements can be pruned.
///
/// ```
/// use etsqp_core::prune::{prune_rest, DeltaBounds, PruneDecision};
/// // Deltas in [0, 7], value 10 at position 95 of 100, filter v ≥ 1000:
/// // the remaining 4 elements can climb at most 28 — prune.
/// let b = DeltaBounds { d_min: 0, d_max: 7, r_max: 1 };
/// assert_eq!(prune_rest(&b, 10, 95, 100, 1000, i64::MAX),
///            PruneDecision::StopRest);
/// ```
///
/// Rule (1): if `v_k < c1` and even the fastest possible climb
/// (`D_M` per step, `R_M` elements per delta) cannot reach `c1`, stop.
/// Rule (2): if `v_k > c2` and even the fastest descent (`D_m`) cannot
/// fall back to `c2`, stop.
pub fn prune_rest(
    bounds: &DeltaBounds,
    v_k: i64,
    k: usize,
    n: usize,
    c1: i64,
    c2: i64,
) -> PruneDecision {
    if k + 1 >= n {
        return PruneDecision::Continue; // nothing left to prune
    }
    let steps = (n - k - 1) as i128;
    // `steps` counts remaining TUPLES (not `(Δ, run)` pairs): each tuple
    // applies exactly one delta, so each moves by at most D_M upward / at
    // least D_m downward — `R_M` cannot sharpen this per-tuple bound (see
    // `DeltaBounds::r_max`). The maximum attainable value over the rest:
    let max_reach = v_k as i128 + (bounds.d_max.max(0) as i128) * steps;
    let min_reach = v_k as i128 + (bounds.d_min.min(0) as i128) * steps;
    if v_k < c1 && max_reach < c1 as i128 {
        return PruneDecision::StopRest;
    }
    if v_k > c2 && min_reach > c2 as i128 {
        return PruneDecision::StopRest;
    }
    // Monotone shortcut (ordered timestamps, Example 2): when deltas are
    // provably non-negative and we already passed c2, nothing later fits.
    if bounds.d_min >= 0 && v_k > c2 {
        return PruneDecision::StopRest;
    }
    PruneDecision::Continue
}

/// Page-level time pruning: should this page be loaded at all for the
/// time range `[t_lo, t_hi]`?
pub fn page_overlaps_time(header: &PageHeader, t_lo: i64, t_hi: i64) -> bool {
    header.overlaps_time(t_lo, t_hi)
}

/// Page-level value pruning for a value range `[v_lo, v_hi]`.
pub fn page_overlaps_value(header: &PageHeader, v_lo: i64, v_hi: i64) -> bool {
    header.overlaps_value(v_lo, v_hi)
}

/// For ordered timestamps with a constant known interval (width 0 pages:
/// every delta equals `minBase`), the valid positions can be solved
/// directly (paper §V-A, "when the interval D is constant"): returns the
/// inclusive index range of elements inside `[t_lo, t_hi]`, or `None`
/// when empty.
pub fn constant_interval_positions(
    first_ts: i64,
    interval: i64,
    count: usize,
    t_lo: i64,
    t_hi: i64,
) -> Option<(usize, usize)> {
    if count == 0 || interval < 0 {
        return None;
    }
    if interval == 0 {
        return (first_ts >= t_lo && first_ts <= t_hi).then_some((0, count - 1));
    }
    // first index with t >= t_lo:   i >= (t_lo − first)/interval
    let lo_i = if t_lo <= first_ts {
        0i128
    } else {
        ((t_lo - first_ts) as i128 + interval as i128 - 1) / interval as i128
    };
    // last index with t <= t_hi
    let hi_i = if t_hi < first_ts {
        return None;
    } else {
        ((t_hi - first_ts) as i128) / interval as i128
    };
    let lo_i = lo_i.max(0) as usize;
    let hi_i = (hi_i as usize).min(count - 1);
    (hi_i >= lo_i).then_some((lo_i, hi_i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsqp_encoding::ts2diff;

    fn bounds(d_min: i64, d_max: i64, r_max: u64) -> DeltaBounds {
        DeltaBounds {
            d_min,
            d_max,
            r_max,
        }
    }

    #[test]
    fn rule1_stops_when_climb_cannot_reach() {
        // v_k = 10, filter lower bound 1000, 5 elements left, D_M = 100:
        // max reach 510 < 1000 → stop.
        let b = bounds(0, 100, 1);
        assert_eq!(
            prune_rest(&b, 10, 4, 10, 1000, 2000),
            PruneDecision::StopRest
        );
        // 20 elements left: reach 10 + 19·100 = 1910 ≥ 1000 → continue.
        assert_eq!(
            prune_rest(&b, 10, 0, 20, 1000, 2000),
            PruneDecision::Continue
        );
    }

    #[test]
    fn rule2_stops_when_descent_cannot_fall() {
        // v_k = 5000, filter upper bound 100, deltas ≥ −10, 8 left:
        // min reach 5000 − 70 = 4930 > 100 → stop.
        let b = bounds(-10, 50, 1);
        assert_eq!(prune_rest(&b, 5000, 1, 9, 0, 100), PruneDecision::StopRest);
    }

    #[test]
    fn ordered_timestamps_stop_after_upper_bound() {
        // Non-negative deltas (timestamps): once past t_hi, stop.
        let b = bounds(0, 1000, 1);
        assert_eq!(
            prune_rest(&b, 10_001, 3, 1000, 0, 10_000),
            PruneDecision::StopRest
        );
        assert_eq!(
            prune_rest(&b, 9_999, 3, 1000, 0, 10_000),
            PruneDecision::Continue
        );
    }

    #[test]
    fn in_range_never_prunes() {
        let b = bounds(-5, 5, 3);
        assert_eq!(prune_rest(&b, 50, 10, 100, 0, 100), PruneDecision::Continue);
    }

    #[test]
    fn last_element_continues_trivially() {
        let b = bounds(0, 1, 1);
        assert_eq!(prune_rest(&b, -999, 99, 100, 0, 1), PruneDecision::Continue);
    }

    #[test]
    fn bounds_from_real_page_are_sound() {
        let values: Vec<i64> = (0..200).map(|i| i * 7 + (i % 3)).collect();
        let bytes = ts2diff::encode(&values, 1);
        let page = ts2diff::parse(&bytes).unwrap();
        let b = DeltaBounds::from_ts2diff(&page);
        for w in values.windows(2) {
            let d = w[1] - w[0];
            assert!(d >= b.d_min && d <= b.d_max);
        }
        // Soundness: pruning claims must never cut real matches. Simulate
        // a scan with rule checks at every position.
        let (c1, c2) = (700, 900);
        for (k, &v) in values.iter().enumerate() {
            if prune_rest(&b, v, k, values.len(), c1, c2) == PruneDecision::StopRest {
                assert!(
                    values[k + 1..].iter().all(|&x| x < c1 || x > c2),
                    "pruned a real match after position {k}"
                );
            }
        }
    }

    #[test]
    fn constant_interval_direct_positions() {
        // t = 100, 110, ..., 190 (10 elements).
        assert_eq!(
            constant_interval_positions(100, 10, 10, 125, 165),
            Some((3, 6))
        );
        assert_eq!(constant_interval_positions(100, 10, 10, 0, 99), None);
        assert_eq!(constant_interval_positions(100, 10, 10, 200, 300), None);
        assert_eq!(
            constant_interval_positions(100, 10, 10, 100, 190),
            Some((0, 9))
        );
        assert_eq!(
            constant_interval_positions(100, 10, 10, 120, 120),
            Some((2, 2))
        );
        // Zero interval (all same timestamp — repeat-encoded).
        assert_eq!(constant_interval_positions(50, 0, 5, 40, 60), Some((0, 4)));
        assert_eq!(constant_interval_positions(50, 0, 5, 60, 70), None);
    }
}
