//! # etsqp-core — Encoded Time-Series Query Pipelines (ETSQP)
//!
//! The paper's primary contribution: a pipeline query engine that executes
//! selective aggregations *directly over encoded IoT time series*.
//!
//! Module map (paper section → module):
//!
//! | Paper | Module | What it implements |
//! |-------|--------|--------------------|
//! | §III-A, Alg. 1 | [`decode`] | vectorized unpack + Delta-chain layout recovery |
//! | §III-B | `etsqp_simd::tables` | JIT-style cached shuffle/shift/mask plans |
//! | §III-C, Fig. 8 | [`slice`], [`exec`] | page distribution, slicing, thread scheduling |
//! | §III-D, Prop. 1/Thm. 2 | [`cost`] | `n_v` cost model and speedup estimate |
//! | §IV, Prop. 3 | [`fused`] | aggregation without decoding (Delta / Delta-Repeat) |
//! | §V, Prop. 4/5 | [`prune`] | time/value pruning from encoding statistics |
//! | §VI, Alg. 2 | [`plan`], [`expr`] | `Pipe`: logical plan → pipeline jobs + merge nodes |
//! | §VI-B | [`sql`], [`engine`] | SQL front end and the integrated database facade |
//!
//! The quickest way in is [`engine::IotDb`]:
//!
//! ```
//! use etsqp_core::engine::{EngineOptions, IotDb};
//!
//! let db = IotDb::new(EngineOptions::default());
//! db.create_series("velocity").unwrap();
//! for i in 0..10_000i64 {
//!     db.append("velocity", i * 1000, 60 + (i % 25)).unwrap();
//! }
//! db.flush().unwrap();
//! let result = db
//!     .query("SELECT AVG(velocity) FROM velocity WHERE time >= 100000 AND time <= 900000")
//!     .unwrap();
//! assert_eq!(result.rows.len(), 1);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod cancel;
pub mod cost;
pub mod decode;
pub mod engine;
pub mod exec;
pub mod expr;
pub mod float;
pub mod fused;
pub mod oracle;
pub mod partial;
pub mod physical;
pub mod plan;
pub mod pool;
pub mod prune;
pub mod slice;
pub mod sql;

/// Errors raised by the query pipelines.
#[derive(Debug)]
pub enum Error {
    /// Underlying codec failure.
    Encoding(etsqp_encoding::Error),
    /// Storage-layer failure.
    Storage(etsqp_storage::Error),
    /// Structural decode failure inside a pipeline.
    Decode(&'static str),
    /// SQL text could not be parsed.
    Sql(String),
    /// The logical plan is not executable (unknown series, bad window…).
    Plan(String),
    /// An aggregate overflowed its checked accumulator (§VI-C).
    Overflow,
    /// The query was cancelled via its [`cancel::CancellationToken`].
    Cancelled,
    /// The query ran past its deadline (`--timeout-ms` /
    /// [`cancel::CancellationToken::with_timeout`]).
    Timeout,
    /// The service shed this query at admission because both the
    /// in-flight bound and the wait queue were full. Failing fast here
    /// is the point: stacking the query behind a saturated queue would
    /// only add latency for everyone. `retry_after_ms` is the server's
    /// estimate of when capacity frees up (clients should back off at
    /// least this long before retrying).
    Overloaded {
        /// Suggested client back-off before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// A scheduler worker panicked; the payload message is preserved so
    /// one bad page aborts the query, not the process.
    Worker(String),
    /// The compiled physical plan violated the `etsqp-verify` invariant
    /// catalog ([`physical::verify`]) — a planner bug caught before the
    /// executor could act on the broken plan.
    Verify(physical::verify::VerifyError),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Encoding(e) => write!(f, "encoding: {e}"),
            Error::Storage(e) => write!(f, "storage: {e}"),
            Error::Decode(what) => write!(f, "decode: {what}"),
            Error::Sql(msg) => write!(f, "sql: {msg}"),
            Error::Plan(msg) => write!(f, "plan: {msg}"),
            Error::Overflow => write!(f, "aggregate overflow"),
            Error::Cancelled => write!(f, "query cancelled"),
            Error::Timeout => write!(f, "query deadline exceeded"),
            Error::Overloaded { retry_after_ms } => {
                write!(f, "server overloaded; retry after {retry_after_ms} ms")
            }
            Error::Worker(msg) => write!(f, "worker panicked: {msg}"),
            Error::Verify(e) => write!(f, "plan verifier: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Encoding(e) => Some(e),
            Error::Storage(e) => Some(e),
            Error::Verify(e) => Some(e),
            _ => None,
        }
    }
}

impl From<etsqp_encoding::Error> for Error {
    fn from(e: etsqp_encoding::Error) -> Self {
        Error::Encoding(e)
    }
}

impl From<etsqp_storage::Error> for Error {
    fn from(e: etsqp_storage::Error) -> Self {
        Error::Storage(e)
    }
}

impl Error {
    /// Whether this error traces back to rejected (corrupt or hostile)
    /// input rather than usage or transient conditions.
    pub fn is_corrupt(&self) -> bool {
        match self {
            Error::Encoding(_) | Error::Decode(_) => true,
            Error::Storage(e) => matches!(
                e,
                etsqp_storage::Error::Corrupt { .. } | etsqp_storage::Error::Encoding(_)
            ),
            _ => false,
        }
    }

    /// The process exit status for this error, shared by every binary
    /// front end (CLI and server) so scripts can react to the failure
    /// class. The table (documented in the README):
    ///
    /// | code | meaning |
    /// |------|---------|
    /// | 1    | generic failure (SQL, plan, worker, verifier, I/O…) |
    /// | 3    | corrupt input rejected (checksum, hostile header…) |
    /// | 4    | query deadline exceeded ([`Error::Timeout`]) |
    /// | 5    | shed at admission ([`Error::Overloaded`]) |
    /// | 6    | query cancelled ([`Error::Cancelled`]) |
    ///
    /// (0 is success and 2 is a usage error, per convention; neither
    /// reaches this function.)
    pub fn exit_code(&self) -> i32 {
        match self {
            _ if self.is_corrupt() => 3,
            Error::Timeout => 4,
            Error::Overloaded { .. } => 5,
            Error::Cancelled => 6,
            _ => 1,
        }
    }
}

/// Result alias for pipeline operations.
pub type Result<T> = std::result::Result<T, Error>;
