//! Page distribution and slicing (paper §III-C, Figure 8).
//!
//! [`distribute`] shapes a query's *morsels*: the stealable work units
//! the persistent pool ([`crate::pool`]) schedules dynamically. It
//! prefers whole pages — one pipeline instance per page — and splits
//! pages into slices only when there are fewer pages than cores, because
//! slices of a Delta-encoded page depend on each other through the
//! prefix sum. Slice jobs therefore run in two phases: every slice
//! independently unpacks its delta range and produces a *symbolic*
//! partial (coefficients over its unknown start value), and a sequential
//! merge resolves the start values — the "split the pipeline into two
//! tasks so threads never wait for the prefix sum" design of Fig. 14(c-d).
//! The merge consumes outputs in job order (the scheduler's contract),
//! so slices combine correctly no matter which runner claimed which
//! morsel or in what temporal order they executed.

use std::sync::Arc;

use etsqp_storage::page::Page;

/// A unit of pipeline work: a page or a slice of one.
#[derive(Debug, Clone)]
pub enum WorkItem {
    /// A whole page.
    Page(Arc<Page>),
    /// Slice `part` of `parts` of a page (delta-index granularity).
    Slice {
        /// The sliced page.
        page: Arc<Page>,
        /// Zero-based slice index.
        part: usize,
        /// Total slices of this page.
        parts: usize,
    },
}

impl WorkItem {
    /// The page this item reads.
    pub fn page(&self) -> &Arc<Page> {
        match self {
            WorkItem::Page(p) => p,
            WorkItem::Slice { page, .. } => page,
        }
    }

    /// Number of tuples this item covers.
    pub fn tuple_count(&self) -> usize {
        match self {
            WorkItem::Page(p) => p.header.count as usize,
            WorkItem::Slice { page, part, parts } => {
                let (lo, hi) = slice_range(page.header.count as usize, *part, *parts);
                hi - lo
            }
        }
    }
}

/// Element-index range `[lo, hi)` of slice `part` of `parts` over `count`
/// elements (balanced split).
pub fn slice_range(count: usize, part: usize, parts: usize) -> (usize, usize) {
    debug_assert!(part < parts);
    let base = count / parts;
    let extra = count % parts;
    let lo = part * base + part.min(extra);
    let len = base + usize::from(part < extra);
    (lo, lo + len)
}

/// Distributes pages to work items for `threads` workers (paper §III-C):
/// whole pages when there are at least as many pages as threads, slices
/// otherwise (each page split into `⌈threads / #pages⌉` slices).
pub fn distribute(pages: &[Arc<Page>], threads: usize) -> Vec<WorkItem> {
    let threads = threads.max(1);
    if pages.is_empty() {
        return Vec::new();
    }
    if pages.len() >= threads {
        return pages.iter().cloned().map(WorkItem::Page).collect();
    }
    let parts = threads.div_ceil(pages.len());
    let mut items = Vec::with_capacity(pages.len() * parts);
    for page in pages {
        // Never produce empty slices for tiny pages.
        let parts = parts.min((page.header.count as usize).max(1));
        if parts <= 1 {
            items.push(WorkItem::Page(Arc::clone(page)));
        } else {
            for part in 0..parts {
                items.push(WorkItem::Slice {
                    page: Arc::clone(page),
                    part,
                    parts,
                });
            }
        }
    }
    items
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsqp_encoding::Encoding;

    fn make_pages(n: usize, points: usize) -> Vec<Arc<Page>> {
        (0..n)
            .map(|k| {
                let ts: Vec<i64> = (0..points as i64)
                    .map(|i| (k * points) as i64 * 10 + i * 10)
                    .collect();
                let vals: Vec<i64> = (0..points as i64).collect();
                Arc::new(Page::encode(&ts, &vals, Encoding::Ts2Diff, Encoding::Ts2Diff).unwrap())
            })
            .collect()
    }

    #[test]
    fn whole_pages_when_enough() {
        let pages = make_pages(8, 100);
        let items = distribute(&pages, 4);
        assert_eq!(items.len(), 8);
        assert!(items.iter().all(|i| matches!(i, WorkItem::Page(_))));
    }

    #[test]
    fn slices_when_few_pages() {
        let pages = make_pages(2, 100);
        let items = distribute(&pages, 8);
        assert_eq!(items.len(), 8); // 2 pages × 4 slices
        assert!(items
            .iter()
            .all(|i| matches!(i, WorkItem::Slice { parts: 4, .. })));
        // Coverage: slice tuple counts per page sum to the page count.
        let total: usize = items.iter().map(|i| i.tuple_count()).sum();
        assert_eq!(total, 200);
    }

    #[test]
    fn slice_ranges_partition_exactly() {
        for count in [1usize, 7, 64, 100, 1023] {
            for parts in [1usize, 2, 3, 4, 7, 16] {
                let mut covered = 0usize;
                let mut expected_lo = 0usize;
                for part in 0..parts.min(count) {
                    let (lo, hi) = slice_range(count, part, parts.min(count));
                    assert_eq!(lo, expected_lo);
                    assert!(hi >= lo);
                    covered += hi - lo;
                    expected_lo = hi;
                }
                assert_eq!(covered, count, "count={count} parts={parts}");
            }
        }
    }

    #[test]
    fn empty_input_and_single_thread() {
        assert!(distribute(&[], 4).is_empty());
        let pages = make_pages(3, 10);
        let items = distribute(&pages, 1);
        assert_eq!(items.len(), 3);
    }

    #[test]
    fn tiny_pages_are_not_oversliced() {
        let pages = make_pages(1, 2); // 2 points, 8 threads
        let items = distribute(&pages, 8);
        assert_eq!(items.len(), 2); // capped at count
    }
}
