//! SQL front end for the benchmark dialect of Table III.
//!
//! Supported shapes (case-insensitive keywords):
//!
//! ```sql
//! SELECT SUM(A) FROM ts SW(0, 1000);                        -- Q1
//! SELECT AVG(A) FROM ts(T, A) SW(0, 1000);                  -- Q2
//! SELECT SUM(A) FROM (SELECT * FROM ts WHERE A > 10);       -- Q3
//! SELECT ts1.A + ts2.A FROM ts1, ts2;                       -- Q4
//! SELECT * FROM ts1 UNION ts2 ORDER BY TIME;                -- Q5
//! SELECT * FROM ts1, ts2;                                   -- Q6
//! SELECT AVG(v) FROM v WHERE time >= 3 AND time <= 5;       -- Example 2
//! SELECT P95(A) FROM ts GROUP BY TIME(1000);                 -- bucketed quantile
//! SELECT RATE(A) FROM ts WHERE time >= 5000 GROUP BY TIME(60000);
//! ```
//!
//! `WHERE` accepts conjunctions of comparisons over `time` and the value
//! column (any other identifier). Strict comparisons are normalized to
//! inclusive integer bounds (`A > a` ⇒ `A ≥ a+1`).
//!
//! `GROUP BY TIME(dt)` is the epoch-aligned spelling of the `SW(t_min,
//! dt)` sliding window: the bucket origin snaps the `WHERE` time lower
//! bound (when one is given) down to a multiple of `dt`, so the same
//! interval always produces the same bucket boundaries regardless of the
//! filter. Without a time filter the origin is 0.

use crate::expr::{AggFunc, BinOp, CmpOp, PairAggFunc, Plan, Predicate};
use crate::{Error, Result};

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Number(i64),
    Star,
    LParen,
    RParen,
    Comma,
    Dot,
    Plus,
    Minus,
    Semicolon,
    Cmp(Cmp),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cmp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
}

fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Cmp(Cmp::Eq));
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Cmp(Cmp::Le));
                    i += 2;
                } else {
                    tokens.push(Token::Cmp(Cmp::Lt));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Cmp(Cmp::Ge));
                    i += 2;
                } else {
                    tokens.push(Token::Cmp(Cmp::Gt));
                    i += 1;
                }
            }
            '-' => {
                // Negative literal or subtraction; numbers only follow
                // comparisons, commas or parens in this dialect.
                if matches!(
                    tokens.last(),
                    Some(Token::Cmp(_)) | Some(Token::Comma) | Some(Token::LParen) | None
                ) {
                    let (n, used) = read_number(&input[i..])?;
                    tokens.push(Token::Number(n));
                    i += used;
                } else {
                    tokens.push(Token::Minus);
                    i += 1;
                }
            }
            '0'..='9' => {
                let (n, used) = read_number(&input[i..])?;
                tokens.push(Token::Number(n));
                i += used;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token::Ident(input[start..i].to_string()));
            }
            other => return Err(Error::Sql(format!("unexpected character '{other}'"))),
        }
    }
    Ok(tokens)
}

fn read_number(s: &str) -> Result<(i64, usize)> {
    let mut len = 0;
    let bytes = s.as_bytes();
    if bytes.first() == Some(&b'-') {
        len = 1;
    }
    while len < bytes.len() && bytes[len].is_ascii_digit() {
        len += 1;
    }
    s[..len]
        .parse::<i64>()
        .map(|n| (n, len))
        .map_err(|e| Error::Sql(format!("bad number: {e}")))
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        match self.next() {
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(Error::Sql(format!("expected {kw}, found {other:?}"))),
        }
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn expect(&mut self, t: Token) -> Result<()> {
        match self.next() {
            Some(got) if got == t => Ok(()),
            other => Err(Error::Sql(format!("expected {t:?}, found {other:?}"))),
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(Error::Sql(format!("expected identifier, found {other:?}"))),
        }
    }

    fn number(&mut self) -> Result<i64> {
        match self.next() {
            Some(Token::Number(n)) => Ok(n),
            other => Err(Error::Sql(format!("expected number, found {other:?}"))),
        }
    }
}

/// Parses one statement into a logical [`Plan`].
pub fn parse(input: &str) -> Result<Plan> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let plan = parse_query(&mut p)?;
    // Allow a trailing semicolon.
    if matches!(p.peek(), Some(Token::Semicolon)) {
        p.next();
    }
    if p.peek().is_some() {
        return Err(Error::Sql(format!("trailing tokens at {:?}", p.peek())));
    }
    Ok(plan)
}

/// A parsed SQL statement: a query, or an `EXPLAIN` wrapping one.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// Execute the plan and return rows.
    Query(Plan),
    /// Compile the plan and return its rendered physical pipeline.
    Explain(Plan),
}

/// Parses one statement, recognizing an optional leading `EXPLAIN`
/// keyword (case-insensitive) before the query.
pub fn parse_statement(input: &str) -> Result<Statement> {
    let trimmed = input.trim_start();
    let explained = trimmed
        .split_whitespace()
        .next()
        .is_some_and(|w| w.eq_ignore_ascii_case("EXPLAIN"));
    if explained {
        let rest = &trimmed[trimmed
            .char_indices()
            .find(|(_, c)| c.is_whitespace())
            .map(|(i, _)| i)
            .unwrap_or(trimmed.len())..];
        Ok(Statement::Explain(parse(rest)?))
    } else {
        Ok(Statement::Query(parse(input)?))
    }
}

#[derive(Debug)]
enum SelectItem {
    Star,
    Agg(AggFunc, String),
    PairAgg(PairAggFunc, String, String),
    ColumnExpr {
        left: String,
        right: String,
        op: BinOp,
    },
}

fn parse_query(p: &mut Parser) -> Result<Plan> {
    p.expect_kw("SELECT")?;
    let item = parse_select_item(p)?;
    p.expect_kw("FROM")?;
    let sources = parse_from(p)?;
    let (pred, inter) = if p.peek_kw("WHERE") {
        p.next();
        let (pr, inter) = parse_where(p)?;
        (Some(pr), inter)
    } else {
        (None, None)
    };
    let window = if p.peek_kw("SW") {
        p.next();
        p.expect(Token::LParen)?;
        let t_min = p.number()?;
        p.expect(Token::Comma)?;
        let dt = p.number()?;
        p.expect(Token::RParen)?;
        if dt <= 0 {
            return Err(Error::Sql("sliding window width must be positive".into()));
        }
        Some((t_min, dt))
    } else if p.peek_kw("GROUP") {
        p.next();
        p.expect_kw("BY")?;
        p.expect_kw("TIME")?;
        p.expect(Token::LParen)?;
        let dt = p.number()?;
        p.expect(Token::RParen)?;
        if dt <= 0 {
            return Err(Error::Sql(
                "GROUP BY TIME(..) interval must be positive".into(),
            ));
        }
        // Epoch-aligned buckets: snap the WHERE time lower bound (if
        // any) down to a multiple of dt so bucket boundaries depend only
        // on the interval, never on the filter.
        let t_min = match pred.as_ref().and_then(|pr| pr.time) {
            Some(tr) if tr.lo != i64::MIN => tr.lo.div_euclid(dt).checked_mul(dt).unwrap_or(0),
            _ => 0,
        };
        Some((t_min, dt))
    } else {
        None
    };

    let apply_pred = |plan: Plan| -> Plan {
        match &pred {
            Some(pr) if !pr.is_trivial() => plan.filter(*pr),
            _ => plan,
        }
    };

    match (item, sources) {
        (SelectItem::Agg(func, _col), FromClause::Single(src)) => {
            let base = apply_pred(src);
            Ok(match window {
                Some((t_min, dt)) => base.window(t_min, dt, func),
                None => base.aggregate(func),
            })
        }
        (SelectItem::Star, FromClause::Single(src)) => {
            if window.is_some() {
                return Err(Error::Sql("SW requires an aggregate select".into()));
            }
            Ok(apply_pred(src))
        }
        (SelectItem::Star, FromClause::Union(l, r)) => Ok(Plan::Union {
            left: Box::new(apply_pred(l)),
            right: Box::new(apply_pred(r)),
        }),
        (SelectItem::Star, FromClause::Cross(l, r)) => Ok(Plan::Join {
            left: Box::new(apply_pred(l)),
            right: Box::new(apply_pred(r)),
            on: inter,
        }),
        (SelectItem::PairAgg(func, a, b), from) => {
            // Sources: FROM a, b — or derive scans from the argument names.
            let (l, r) = match from {
                FromClause::Cross(l, r) => (l, r),
                FromClause::Single(_) | FromClause::Union(_, _) => (Plan::scan(&a), Plan::scan(&b)),
            };
            if window.is_some() {
                return Err(Error::Sql(
                    "SW is not supported for paired aggregates".into(),
                ));
            }
            Ok(Plan::JoinAggregate {
                left: Box::new(apply_pred(l)),
                right: Box::new(apply_pred(r)),
                func,
            })
        }
        (SelectItem::ColumnExpr { left, right, op }, FromClause::Cross(l, r)) => {
            // Bind qualifiers to sources by name.
            let (lname, rname) = (source_name(&l), source_name(&r));
            let (l, r) = if Some(left.as_str()) == lname.as_deref()
                || Some(right.as_str()) == rname.as_deref()
            {
                (l, r)
            } else if Some(right.as_str()) == lname.as_deref()
                || Some(left.as_str()) == rname.as_deref()
            {
                (r, l)
            } else {
                (l, r)
            };
            Ok(Plan::JoinExpr {
                left: Box::new(apply_pred(l)),
                right: Box::new(apply_pred(r)),
                op,
            })
        }
        (item, _) => Err(Error::Sql(format!(
            "unsupported select/from combination: {item:?}"
        ))),
    }
}

fn source_name(plan: &Plan) -> Option<String> {
    match plan {
        Plan::Scan { series } => Some(series.clone()),
        Plan::Filter { input, .. } => source_name(input),
        _ => None,
    }
}

fn parse_select_item(p: &mut Parser) -> Result<SelectItem> {
    match p.peek() {
        Some(Token::Star) => {
            p.next();
            Ok(SelectItem::Star)
        }
        Some(Token::Ident(name)) => {
            let name = name.clone();
            let func = match name.to_ascii_uppercase().as_str() {
                "SUM" => Some(AggFunc::Sum),
                "AVG" => Some(AggFunc::Avg),
                "COUNT" => Some(AggFunc::Count),
                "MIN" => Some(AggFunc::Min),
                "MAX" => Some(AggFunc::Max),
                "VARIANCE" | "VAR" => Some(AggFunc::Variance),
                "FIRST" | "FIRST_VALUE" => Some(AggFunc::First),
                "LAST" | "LAST_VALUE" => Some(AggFunc::Last),
                "P50" | "MEDIAN" => Some(AggFunc::P50),
                "P95" => Some(AggFunc::P95),
                "P99" => Some(AggFunc::P99),
                "RATE" => Some(AggFunc::Rate),
                "DELTA" => Some(AggFunc::Delta),
                _ => None,
            };
            let pair = match name.to_ascii_uppercase().as_str() {
                "CORR" => Some(PairAggFunc::Correlation),
                "COV" | "COVAR" => Some(PairAggFunc::Covariance),
                "DOT" => Some(PairAggFunc::Dot),
                _ => None,
            };
            if let Some(func) = pair {
                p.next();
                p.expect(Token::LParen)?;
                let a = p.ident()?;
                p.expect(Token::Comma)?;
                let b = p.ident()?;
                p.expect(Token::RParen)?;
                Ok(SelectItem::PairAgg(func, a, b))
            } else if let Some(func) = func {
                p.next();
                p.expect(Token::LParen)?;
                let col = match p.next() {
                    Some(Token::Ident(c)) => c,
                    Some(Token::Star) => "*".to_string(),
                    other => return Err(Error::Sql(format!("expected column, found {other:?}"))),
                };
                p.expect(Token::RParen)?;
                Ok(SelectItem::Agg(func, col))
            } else {
                // Qualified column expression: ts1.A + ts2.A
                p.next();
                p.expect(Token::Dot)?;
                let _lcol = p.ident()?;
                let op = match p.next() {
                    Some(Token::Plus) => BinOp::Add,
                    Some(Token::Minus) => BinOp::Sub,
                    Some(Token::Star) => BinOp::Mul,
                    other => return Err(Error::Sql(format!("expected operator, found {other:?}"))),
                };
                let right = p.ident()?;
                p.expect(Token::Dot)?;
                let _rcol = p.ident()?;
                Ok(SelectItem::ColumnExpr {
                    left: name,
                    right,
                    op,
                })
            }
        }
        other => Err(Error::Sql(format!("bad select list start: {other:?}"))),
    }
}

#[derive(Debug)]
enum FromClause {
    Single(Plan),
    Union(Plan, Plan),
    Cross(Plan, Plan),
}

fn parse_from(p: &mut Parser) -> Result<FromClause> {
    let first = parse_source(p)?;
    match p.peek() {
        Some(Token::Comma) => {
            p.next();
            let second = parse_source(p)?;
            Ok(FromClause::Cross(first, second))
        }
        Some(Token::Ident(s)) if s.eq_ignore_ascii_case("UNION") => {
            p.next();
            let second = parse_source(p)?;
            // Optional ORDER BY TIME suffix (the merge is always by time).
            if p.peek_kw("ORDER") {
                p.next();
                p.expect_kw("BY")?;
                p.expect_kw("TIME")?;
            }
            Ok(FromClause::Union(first, second))
        }
        _ => Ok(FromClause::Single(first)),
    }
}

fn parse_source(p: &mut Parser) -> Result<Plan> {
    match p.peek() {
        Some(Token::LParen) => {
            p.next();
            let inner = parse_query(p)?;
            p.expect(Token::RParen)?;
            Ok(inner)
        }
        Some(Token::Ident(_)) => {
            let name = p.ident()?;
            // Optional schema annotation `ts(T, A, ...)` — documented but
            // ignored (schema lives in the catalog).
            if matches!(p.peek(), Some(Token::LParen)) {
                p.next();
                loop {
                    match p.next() {
                        Some(Token::RParen) => break,
                        Some(Token::Ident(_)) | Some(Token::Comma) => continue,
                        other => {
                            return Err(Error::Sql(format!("bad schema annotation: {other:?}")))
                        }
                    }
                }
            }
            Ok(Plan::scan(&name))
        }
        other => Err(Error::Sql(format!("bad FROM source: {other:?}"))),
    }
}

/// Parses the WHERE conjunction, separating single-column conjuncts (the
/// returned [`Predicate`], pushed to the scans per Algorithm 2 Eq. 1)
/// from at most one inter-column comparison `a.X <op> b.Y` (Eq. 3,
/// applied to the joined vectors).
fn parse_where(p: &mut Parser) -> Result<(Predicate, Option<CmpOp>)> {
    let mut pred = Predicate::default();
    let mut inter = None;
    loop {
        match parse_comparison(p)? {
            Conjunct::Single(c) => pred = pred.and(&c),
            Conjunct::Inter(op) => {
                if inter.replace(op).is_some() {
                    return Err(Error::Sql("at most one inter-column predicate".into()));
                }
            }
        }
        if p.peek_kw("AND") {
            p.next();
        } else {
            break;
        }
    }
    Ok((pred, inter))
}

enum Conjunct {
    Single(Predicate),
    Inter(CmpOp),
}

fn parse_comparison(p: &mut Parser) -> Result<Conjunct> {
    let col = p.ident()?;
    // Qualified left side → inter-column comparison.
    if matches!(p.peek(), Some(Token::Dot)) {
        p.next();
        let _lcol = p.ident()?;
        let cmp = match p.next() {
            Some(Token::Cmp(c)) => c,
            other => return Err(Error::Sql(format!("expected comparison, found {other:?}"))),
        };
        let _rseries = p.ident()?;
        p.expect(Token::Dot)?;
        let _rcol = p.ident()?;
        let op = match cmp {
            Cmp::Lt => CmpOp::Lt,
            Cmp::Le => CmpOp::Le,
            Cmp::Gt => CmpOp::Gt,
            Cmp::Ge => CmpOp::Ge,
            Cmp::Eq => CmpOp::Eq,
        };
        return Ok(Conjunct::Inter(op));
    }
    let cmp = match p.next() {
        Some(Token::Cmp(c)) => c,
        other => return Err(Error::Sql(format!("expected comparison, found {other:?}"))),
    };
    let n = p.number()?;
    // Normalize to inclusive integer bounds.
    let (lo, hi) = match cmp {
        Cmp::Lt => (i64::MIN, n.saturating_sub(1)),
        Cmp::Le => (i64::MIN, n),
        Cmp::Gt => (n.saturating_add(1), i64::MAX),
        Cmp::Ge => (n, i64::MAX),
        Cmp::Eq => (n, n),
    };
    if col.eq_ignore_ascii_case("time") || col.eq_ignore_ascii_case("t") {
        Ok(Conjunct::Single(Predicate::time(lo, hi)))
    } else {
        Ok(Conjunct::Single(Predicate::value(lo, hi)))
    }
}
