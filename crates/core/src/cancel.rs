//! Cooperative query cancellation and deadlines.
//!
//! A [`CancellationToken`] is handed to a query at submission time and
//! checked at every morsel boundary by the executors ([`crate::exec`],
//! [`crate::pool`]): a cancelled or deadlined query stops within one
//! morsel of work, surfaces as [`Error::Cancelled`] / [`Error::Timeout`],
//! and leaves the shared worker pool fully usable — remaining morsels of
//! the batch drain as errors instead of executing.
//!
//! The check is cooperative rather than preemptive on purpose: morsels
//! are bounded (one page or slice), so the worst-case overshoot past a
//! deadline is a single page's decode, and no locks or thread state are
//! ever abandoned mid-update.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::{Error, Result};

/// Why a token fired, latched on first observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fired {
    Cancelled,
    Deadline,
}

/// Token states; the first transition out of `LIVE` wins, so every
/// worker of a query reports the same cause.
const LIVE: u8 = 0;
const CANCELLED: u8 = 1;
const DEADLINE: u8 = 2;

#[derive(Debug)]
struct Inner {
    state: AtomicU8,
    /// Absolute deadline; checked lazily by [`CancellationToken::check`].
    deadline: Option<Instant>,
}

/// A cheaply cloneable handle signalling that a query should stop.
///
/// The default token never fires and costs nothing to check, so every
/// internal executor path takes one unconditionally.
#[derive(Debug, Clone, Default)]
pub struct CancellationToken {
    inner: Option<Arc<Inner>>,
}

impl CancellationToken {
    /// A token that can be cancelled explicitly (no deadline).
    pub fn new() -> Self {
        CancellationToken {
            inner: Some(Arc::new(Inner {
                state: AtomicU8::new(LIVE),
                deadline: None,
            })),
        }
    }

    /// A token that fires once `timeout` has elapsed (and can also be
    /// cancelled explicitly before that).
    pub fn with_timeout(timeout: Duration) -> Self {
        CancellationToken {
            inner: Some(Arc::new(Inner {
                state: AtomicU8::new(LIVE),
                deadline: Instant::now().checked_add(timeout),
            })),
        }
    }

    /// A token that never fires (the default for unmanaged queries).
    pub fn none() -> Self {
        CancellationToken::default()
    }

    /// Requests cancellation. Safe to call from any thread, any number
    /// of times; in-flight morsels finish, queued ones drain as errors.
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            let _ =
                inner
                    .state
                    .compare_exchange(LIVE, CANCELLED, Ordering::AcqRel, Ordering::Acquire);
        }
    }

    /// Whether the token has fired (explicitly or by deadline).
    pub fn is_cancelled(&self) -> bool {
        self.fired().is_some()
    }

    fn fired(&self) -> Option<Fired> {
        let inner = self.inner.as_ref()?;
        let mut state = inner.state.load(Ordering::Acquire);
        if state == LIVE {
            if let Some(deadline) = inner.deadline {
                if Instant::now() >= deadline {
                    // Latch the cause; a concurrent explicit cancel may
                    // win the race, and then every worker reports that.
                    state = match inner.state.compare_exchange(
                        LIVE,
                        DEADLINE,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    ) {
                        Ok(_) => DEADLINE,
                        Err(cur) => cur,
                    };
                }
            }
        }
        match state {
            CANCELLED => Some(Fired::Cancelled),
            DEADLINE => Some(Fired::Deadline),
            _ => None,
        }
    }

    /// The morsel-boundary check: `Ok` to keep working, or the typed
    /// error the query must surface.
    pub fn check(&self) -> Result<()> {
        match self.fired() {
            None => Ok(()),
            Some(Fired::Cancelled) => Err(Error::Cancelled),
            Some(Fired::Deadline) => Err(Error::Timeout),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_token_never_fires() {
        let t = CancellationToken::none();
        assert!(t.check().is_ok());
        t.cancel(); // no-op on the inert token
        assert!(t.check().is_ok());
        assert!(!t.is_cancelled());
    }

    #[test]
    fn explicit_cancel_latches() {
        let t = CancellationToken::new();
        assert!(t.check().is_ok());
        let clone = t.clone();
        clone.cancel();
        assert!(matches!(t.check(), Err(Error::Cancelled)));
        assert!(t.is_cancelled());
    }

    #[test]
    fn deadline_fires_as_timeout() {
        let t = CancellationToken::with_timeout(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(1));
        assert!(matches!(t.check(), Err(Error::Timeout)));
    }

    #[test]
    fn generous_deadline_does_not_fire() {
        let t = CancellationToken::with_timeout(Duration::from_secs(3600));
        assert!(t.check().is_ok());
    }

    #[test]
    fn explicit_cancel_wins_over_pending_deadline() {
        let t = CancellationToken::with_timeout(Duration::from_secs(3600));
        t.cancel();
        assert!(matches!(t.check(), Err(Error::Cancelled)));
    }
}
