//! The physical pipeline layer (paper §VI, Algorithm 2 / Figure 9).
//!
//! The logical [`crate::expr::Plan`] is compiled by [`pipe::compile`]
//! into a [`pipe::PhysicalPlan`] — an explicit DAG of typed nodes
//! ([`node`]) recording, as data, every decision the old interpreter
//! buried in control flow: per-page §V prune verdicts, the fused /
//! decode / serial strategy per kept page (§IV), the page-vs-slice
//! morsel shape (§III-C), and the time-range partitions of binary merge
//! nodes. The crate-internal `driver` module then maps that DAG onto
//! the work-stealing pool, and [`pipe::explain`] renders it — `EXPLAIN`
//! output and execution share one compiled artifact, so the planner
//! cannot silently diverge from the executor.
//!
//! Operator bodies live beside the IR: scan-side in `scan`, aggregation
//! in `agg`, binary merges in `merge` (all crate-internal).

pub mod node;
pub mod pipe;
pub mod verify;

pub(crate) mod agg;
pub(crate) mod driver;
pub(crate) mod merge;
pub(crate) mod scan;
pub(crate) mod verify_partial;
pub(crate) mod window;
