//! Window/bucket geometry shared by the aggregation executor
//! ([`crate::physical::agg`]), the `Pipe` planner
//! ([`crate::physical::pipe`]) and the plan verifier
//! ([`crate::physical::verify`]): resolving per-window index subranges
//! inside a page, the §V-A constant-interval position arithmetic, and
//! the single-bucket test that lets bucket-aligned pages stay on the
//! §IV fused closed-form path under `GROUP BY time(..)`.
//!
//! Split out of `physical/agg.rs` before it tripped the etsqp-lint
//! 800-line ceiling; both files stay under the HOT_DIRS panic-free
//! rules.

use etsqp_encoding::{ts2diff, Encoding};
use etsqp_storage::page::Page;

use crate::decode::{decode_column, DecodeOptions};
use crate::expr::{SlidingWindow, TimeRange};
use crate::prune::constant_interval_positions;
use crate::Result;

/// The single bucket wholly containing `page`'s time span, if any.
///
/// `Some(k)` means every tuple of the page falls into window `k` — the
/// precondition for running a whole-page fused form (or serving a
/// cached whole-page partial) under a windowed aggregate. All the
/// arithmetic is overflow-checked so hostile `t_min`/timestamp
/// combinations return `None` instead of wrapping.
pub(crate) fn single_bucket_index(page: &Page, w: &SlidingWindow) -> Option<usize> {
    if w.dt <= 0 || page.header.first_ts < w.t_min {
        return None;
    }
    // first_ts ≤ last_ts, so if last_ts − t_min fits, first_ts − t_min does.
    page.header.last_ts.checked_sub(w.t_min)?;
    let ka = w.window_of(page.header.first_ts)?;
    let kb = w.window_of(page.header.last_ts)?;
    (ka == kb).then_some(ka)
}

/// The window index a whole-page partial lands in: `0` when unwindowed,
/// the single covering bucket when the page is bucket-aligned, `None`
/// when the page straddles buckets (the caller must fall back to the
/// decode-and-split path).
pub(crate) fn whole_page_bucket(page: &Page, window: Option<SlidingWindow>) -> Option<usize> {
    match window {
        None => Some(0),
        Some(w) => single_bucket_index(page, &w),
    }
}

/// Splits the qualifying index range `[a, b]` of a page into per-window
/// inclusive subranges `(window, i, j)`. Uses constant-interval position
/// arithmetic when the timestamp page allows (§V-A), decoded timestamps
/// otherwise.
pub(crate) fn window_index_ranges(
    page: &Page,
    w: &SlidingWindow,
    trange: &TimeRange,
    a: usize,
    b: usize,
    ts_decoded: Option<&[i64]>,
) -> Result<Vec<(usize, usize, usize)>> {
    let mut out = Vec::new();
    // Constant-interval shortcut: no timestamp decode at all.
    if ts_decoded.is_none() {
        if let Ok(parsed) = ts2diff::parse(&page.ts_bytes) {
            if parsed.order == 1 && parsed.width == 0 && parsed.min_delta > 0 && parsed.count > 0 {
                let first = parsed.first[0];
                let interval = parsed.min_delta;
                let last = first + (parsed.count as i64 - 1) * interval;
                let mut k = w.window_of(first.max(w.t_min)).unwrap_or(0);
                loop {
                    let wr = w.range(k).intersect(trange);
                    if wr.lo > last {
                        break;
                    }
                    if !wr.is_empty() {
                        if let Some((i, j)) =
                            constant_interval_positions(first, interval, parsed.count, wr.lo, wr.hi)
                        {
                            let i = i.max(a);
                            let j = j.min(b);
                            if i <= j {
                                out.push((k, i, j));
                            }
                        }
                    }
                    k += 1;
                }
                return Ok(out);
            }
        }
    }
    // General: binary-search window boundaries over decoded timestamps.
    let ts_owned;
    let ts: &[i64] = match ts_decoded {
        Some(t) => t,
        None => {
            let mut buf = Vec::new();
            decode_column(
                page.header.ts_encoding,
                &page.ts_bytes,
                &DecodeOptions::default(),
                &mut buf,
            )?;
            ts_owned = buf;
            &ts_owned
        }
    };
    let mut i = a;
    let hi = b.min(ts.len().saturating_sub(1));
    while i <= hi {
        let Some(k) = w.window_of(ts[i]) else {
            i += 1;
            continue;
        };
        let wr = w.range(k).intersect(trange);
        let j = i + ts[i..=hi].partition_point(|&t| t <= wr.hi);
        if j > i {
            out.push((k, i, j - 1));
            i = j;
        } else {
            i += 1;
        }
    }
    Ok(out)
}

/// Constant-interval shortcut (§V-A): for width-0 order-1 TS2DIFF
/// timestamps the qualifying index range is solved arithmetically.
/// Returns `None` when the shortcut does not apply, `Some(None)` when it
/// applies and proves emptiness.
#[allow(clippy::option_option)]
pub(crate) fn constant_positions(
    page: &Page,
    t_lo: i64,
    t_hi: i64,
) -> Option<Option<(usize, usize)>> {
    if page.header.ts_encoding != Encoding::Ts2Diff {
        return None;
    }
    let parsed = ts2diff::parse(&page.ts_bytes).ok()?;
    if parsed.order != 1 || parsed.width != 0 {
        return None;
    }
    Some(constant_interval_positions(
        parsed.first[0],
        parsed.min_delta,
        parsed.count,
        t_lo,
        t_hi,
    ))
}
