//! Typed physical-pipeline nodes (the vertices of the Algorithm 2 DAG).
//!
//! Every planner decision the executor acts on is a value of one of these
//! types: a [`PruneVerdict`] per page (§V), a [`Strategy`] per kept page
//! (§IV fusion vs. Algorithm 1 decode), a [`Parallelism`] per series
//! (§III-C pages vs. slices), and a [`RootNode`] naming the merge that
//! stitches the partials (Figure 9). [`Node`] renders the operator chain
//! a page group runs through, and [`Node::stage`] names the [`Stage`]
//! timer that chain charges — the link between the pipeline IR and the
//! Fig. 14(b) stage breakdown in [`ExecStats`].

use std::fmt;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use etsqp_storage::page::Page;

use crate::exec::{ExecStats, ScopedTimer};
use crate::expr::{AggFunc, BinOp, CmpOp, PairAggFunc, Predicate, SlidingWindow, TimeRange};

/// Execution stage a pipeline node charges its time to — one per stage
/// counter of [`ExecStats`] (the Fig. 14(b) breakdown).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Page distribution / touching encoded bytes (`io_ns`).
    Io,
    /// Bit-unpacking (`unpack_ns`).
    Unpack,
    /// Delta accumulation / RLE flattening (`delta_ns`).
    Delta,
    /// Mask generation and position resolution (`filter_ns`).
    Filter,
    /// Aggregation — fused or over decoded vectors (`agg_ns`).
    Agg,
    /// Sequential merge nodes (`merge_ns`).
    Merge,
}

impl Stage {
    /// The [`ExecStats`] counter this stage feeds.
    pub fn counter(self, stats: &ExecStats) -> &AtomicU64 {
        match self {
            Stage::Io => &stats.io_ns,
            Stage::Unpack => &stats.unpack_ns,
            Stage::Delta => &stats.delta_ns,
            Stage::Filter => &stats.filter_ns,
            Stage::Agg => &stats.agg_ns,
            Stage::Merge => &stats.merge_ns,
        }
    }

    /// Starts a drop-guard timer charging this stage's counter.
    pub fn timer(self, stats: &ExecStats) -> ScopedTimer<'_> {
        ScopedTimer::new(self.counter(stats))
    }
}

/// §V header-pruning verdict for one page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruneVerdict {
    /// The page may contain qualifying tuples and enters the pipeline.
    Kept,
    /// Pruned: the header time range cannot overlap the time filter.
    PrunedTime,
    /// Pruned: the header value bounds cannot overlap the value filter.
    PrunedValue,
}

impl PruneVerdict {
    /// Whether the page survives pruning.
    pub fn kept(self) -> bool {
        matches!(self, PruneVerdict::Kept)
    }
}

impl fmt::Display for PruneVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PruneVerdict::Kept => write!(f, "kept"),
            PruneVerdict::PrunedTime => write!(f, "pruned(time)"),
            PruneVerdict::PrunedValue => write!(f, "pruned(value)"),
        }
    }
}

/// The aggregation strategy the planner picked for one kept page —
/// previously an implicit branch inside the executor, now explicit data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// §IV fused aggregation straight from packed TS2DIFF deltas
    /// (closed-form, works on any index subrange).
    FusedTs2Diff,
    /// §IV fused aggregation from Delta-RLE `(Δ, run)` pairs (whole page
    /// only — the time filter must cover the page).
    FusedDeltaRle,
    /// Fused SUM/AVG/COUNT straight from Stream VByte length-coded
    /// deltas: the quad-shuffle decode yields the zigzag'd deltas and the
    /// closed form `n·v₀ + Σ_j (n−1−j)·δ_j` skips the prefix sum and the
    /// widening entirely (whole page only, like Delta-RLE fusion).
    FusedSvb,
    /// MIN/MAX of a fully covered, value-unfiltered page come straight
    /// from the exact header statistics.
    HeaderMinMax,
    /// The general path: Algorithm 1 vectorized decode (with §V suffix
    /// pruning under value filters) + masked SIMD aggregation.
    Decode,
    /// Byte-serial per-tuple baseline (the non-vectorized engine).
    Serial,
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Strategy::FusedTs2Diff => write!(f, "fused(ts2diff)"),
            Strategy::FusedDeltaRle => write!(f, "fused(delta_rle)"),
            Strategy::FusedSvb => write!(f, "fused(svb)"),
            Strategy::HeaderMinMax => write!(f, "header(min/max)"),
            Strategy::Decode => write!(f, "decode"),
            Strategy::Serial => write!(f, "serial"),
        }
    }
}

/// The planner's verdict and strategy for one page of a series.
#[derive(Debug, Clone, Copy)]
pub struct PageDecision {
    /// Page index within the series (storage order).
    pub index: usize,
    /// Tuples the page covers (header count).
    pub tuples: u64,
    /// §V pruning verdict.
    pub verdict: PruneVerdict,
    /// Strategy for kept pages; `None` when pruned.
    pub strategy: Option<Strategy>,
    /// The §V verify-before-prune obligation: a pruned page's checksum
    /// must be verified before the page may be dropped (its header
    /// min/max were trusted without decoding). The compiler sets this on
    /// every pruned decision; the verifier and the driver both refuse to
    /// drop a page that lacks it.
    pub checksum_obligation: bool,
    /// Whether the page's whole-range partial state may be served from /
    /// inserted into the global [`crate::partial::PartialCache`]. The
    /// planner grants this only when the partial is a pure function of
    /// the page's content: the page is kept, no value filter applies,
    /// the time filter covers the whole page, and (under a windowed
    /// aggregate) the page lies inside a single bucket. The executor's
    /// hit path still re-verifies the page checksum — the
    /// cache-obligation invariant checked by
    /// [`crate::physical::verify`].
    pub cacheable: bool,
}

/// How a series' work is cut into scheduler morsels (§III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// One pipeline instance per kept page.
    PerPage {
        /// Number of page jobs.
        jobs: usize,
    },
    /// Pages split into slices with symbolic prefix-sum stitching
    /// (fewer pages than threads, Fig. 14(c)).
    Sliced {
        /// Kept pages being sliced.
        pages: usize,
        /// Total slice jobs across those pages.
        jobs: usize,
    },
}

impl fmt::Display for Parallelism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Parallelism::PerPage { jobs } => write!(f, "per-page ({jobs} jobs)"),
            Parallelism::Sliced { pages, jobs } => {
                write!(
                    f,
                    "sliced ({pages} pages -> {jobs} slice jobs, prefix-stitched)"
                )
            }
        }
    }
}

/// The hot-chunk scan source of a pipeline: a point-in-time copy of the
/// series' unsealed append buffer, captured atomically with the sealed
/// page list at plan-compile time via `SeriesStore::snapshot`. The
/// columns are already decoded — the executor filters and folds them
/// directly, after every sealed-page partial (hot timestamps are
/// strictly greater than all sealed ones, so first/last-sensitive
/// merges stay ordered).
#[derive(Debug, Clone)]
pub struct HotScan {
    /// Buffered timestamps (strictly increasing).
    pub ts: Arc<Vec<i64>>,
    /// Buffered values, aligned with `ts`.
    pub vals: Arc<Vec<i64>>,
    /// §V pruning verdict over the snapshot's exact min/max statistics.
    pub verdict: PruneVerdict,
}

/// One per-series pipeline: the pages it reads plus every planner
/// decision over them. This is the unit [`crate::physical::driver`] maps
/// onto the work-stealing pool.
#[derive(Debug, Clone)]
pub struct SeriesPipeline {
    /// Series name.
    pub series: String,
    /// The conjunctive predicate pushed down to this scan.
    pub pred: Predicate,
    /// All pages of the series, storage order (aligned with `decisions`).
    pub pages: Vec<Arc<Page>>,
    /// Per-page verdict + strategy, aligned with `pages`.
    pub decisions: Vec<PageDecision>,
    /// Morsel shape for the kept pages.
    pub parallelism: Parallelism,
    /// The live hot-chunk snapshot, when the series had unsealed points
    /// at compile time (unary pipelines only — binary operators
    /// materialize the snapshot as a transient page instead, so their
    /// partitioned merges see one uniform page list).
    pub hot: Option<HotScan>,
}

impl SeriesPipeline {
    /// The kept pages with their strategies, in storage order.
    pub fn kept(&self) -> impl Iterator<Item = (&Arc<Page>, Strategy)> {
        self.pages
            .iter()
            .zip(&self.decisions)
            .filter_map(|(p, d)| d.strategy.map(|s| (p, s)))
    }
}

/// The merge node at the root of the DAG — what combines the per-series
/// partials into the result relation (Figure 9).
#[derive(Debug, Clone)]
pub enum RootNode {
    /// Whole-input or windowed aggregation over one series; partial
    /// states concatenate in a `MergeConcat` keyed by window.
    Aggregate {
        /// Aggregation function.
        func: AggFunc,
        /// Sliding window, if any.
        window: Option<SlidingWindow>,
    },
    /// Row-producing scan of one series (`MergeConcat` of page outputs).
    Rows,
    /// Time-ordered union of two series over `MergeUnion` partitions.
    Union {
        /// Disjoint time-range partitions (one merge job each).
        partitions: Vec<TimeRange>,
    },
    /// Natural join of two series over `MergeJoin` partitions.
    Join {
        /// Disjoint time-range partitions (one merge job each).
        partitions: Vec<TimeRange>,
        /// Element-wise expression over the joined values, if any.
        op: Option<BinOp>,
        /// Inter-column predicate on the joined values, if any.
        on: Option<CmpOp>,
    },
    /// Paired aggregation over the natural join (§IV).
    PairAgg {
        /// The paired aggregate.
        func: PairAggFunc,
        /// Whether the fused `(Δ, run)` fast path applies (page-aligned
        /// Delta-RLE value columns with bit-identical clocks).
        fused: bool,
    },
}

/// A pipeline operator, used to render the per-page-group chain in
/// `EXPLAIN` output. [`Node::stage`] names the stage counter the
/// operator's execution charges.
#[derive(Debug, Clone)]
pub enum Node {
    /// Source: hands encoded pages to the pipeline.
    SourcePages,
    /// Source: hands the hot-chunk snapshot's decoded columns to the
    /// pipeline (no unpack/delta work — the buffer was never encoded).
    SourceHot,
    /// §V header pruning.
    Prune,
    /// §III-C page slicing (symbolic partials).
    Slice,
    /// Algorithm 1 decode of the value (and, when filtered, timestamp)
    /// columns.
    DecodeScan {
        /// True on the byte-serial baseline.
        serial: bool,
    },
    /// §IV fused aggregation (no decode).
    FusedAgg {
        /// The fused strategy.
        strategy: Strategy,
        /// Aggregation function.
        func: AggFunc,
    },
    /// Predicate evaluation over decoded vectors.
    Filter {
        /// A time conjunct is present.
        time: bool,
        /// A value conjunct is present.
        value: bool,
    },
    /// Partial aggregation of decoded (masked) vectors.
    PartialAgg {
        /// Aggregation function.
        func: AggFunc,
    },
    /// Ordered concatenation of partials.
    MergeConcat,
    /// Time-ordered union merge.
    MergeUnion,
    /// Natural-join merge on timestamps.
    MergeJoin,
}

impl Node {
    /// The stage counter this operator's execution charges.
    pub fn stage(&self) -> Stage {
        match self {
            Node::SourcePages | Node::SourceHot | Node::Prune => Stage::Io,
            Node::Slice => Stage::Delta,
            Node::DecodeScan { .. } => Stage::Delta,
            Node::FusedAgg { .. } | Node::PartialAgg { .. } => Stage::Agg,
            Node::Filter { .. } => Stage::Filter,
            Node::MergeConcat | Node::MergeUnion | Node::MergeJoin => Stage::Merge,
        }
    }
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Node::SourcePages => write!(f, "SourcePages"),
            Node::SourceHot => write!(f, "SourceHot"),
            Node::Prune => write!(f, "Prune"),
            Node::Slice => write!(f, "Slice"),
            Node::DecodeScan { serial: false } => write!(f, "DecodeScan"),
            Node::DecodeScan { serial: true } => write!(f, "DecodeScan[serial]"),
            Node::FusedAgg { strategy, func } => {
                write!(f, "FusedAgg[{strategy}, {}]", func.name())
            }
            Node::Filter { time, value } => {
                write!(f, "Filter[")?;
                match (time, value) {
                    (true, true) => write!(f, "time,value")?,
                    (true, false) => write!(f, "time")?,
                    (false, true) => write!(f, "value")?,
                    (false, false) => write!(f, "none")?,
                }
                write!(f, "]")
            }
            Node::PartialAgg { func } => write!(f, "PartialAgg[{}]", func.name()),
            Node::MergeConcat => write!(f, "MergeConcat"),
            Node::MergeUnion => write!(f, "MergeUnion"),
            Node::MergeJoin => write!(f, "MergeJoin"),
        }
    }
}
