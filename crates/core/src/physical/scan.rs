//! Scan-side operator bodies: §V header pruning, Algorithm 1 column
//! decode (with suffix pruning under value filters), and the
//! row-producing page scan.
//!
//! Both the `Pipe` planner ([`crate::physical::pipe`]) and the runtime
//! partition scans of binary operators ([`crate::physical::merge`]) go
//! through [`page_verdict`], so the pruning decision rendered by
//! `EXPLAIN` is by construction the one the executor acts on.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use etsqp_encoding::{ts2diff, Encoding};
use etsqp_storage::page::Page;
use etsqp_storage::store::SeriesStore;

use crate::cancel::CancellationToken;
use crate::decode::{decode_column, DecodeOptions};
use crate::exec::{run_jobs_ctl, ExecStats};
use crate::expr::Predicate;
use crate::physical::node::{HotScan, PruneVerdict, Stage};
use crate::plan::PipelineConfig;
use crate::prune::{prune_rest, DeltaBounds, PruneDecision};
use crate::{Error, Result};

/// The §VI-C decode-buffer memory budget configured by `cfg`.
pub(crate) fn budget_of(cfg: &PipelineConfig) -> etsqp_storage::budget::MemoryBudget {
    match cfg.decode_budget_bytes {
        Some(b) => etsqp_storage::budget::MemoryBudget::new(b),
        None => etsqp_storage::budget::MemoryBudget::unlimited(),
    }
}

/// §V header pruning for one page: the single pruning rule shared by the
/// planner and every runtime scan.
pub(crate) fn page_verdict(page: &Page, pred: &Predicate, prune: bool) -> PruneVerdict {
    if !prune {
        return PruneVerdict::Kept;
    }
    if let Some(t) = pred.time {
        if !page.header.overlaps_time(t.lo, t.hi) {
            return PruneVerdict::PrunedTime;
        }
    }
    if let Some((lo, hi)) = pred.value {
        if !page.header.overlaps_value(lo, hi) {
            return PruneVerdict::PrunedValue;
        }
    }
    PruneVerdict::Kept
}

/// §V pruning verdict for a hot-chunk snapshot — the same rule as
/// [`page_verdict`], applied to the snapshot's exact statistics: the
/// sorted timestamp column bounds the time range, and min/max were
/// computed over the buffered values at snapshot time. No checksum
/// enters the decision — the columns were never encoded.
pub(crate) fn hot_verdict(
    ts: &[i64],
    min_value: i64,
    max_value: i64,
    pred: &Predicate,
    prune: bool,
) -> PruneVerdict {
    if !prune {
        return PruneVerdict::Kept;
    }
    if let (Some(t), Some(&first), Some(&last)) = (pred.time, ts.first(), ts.last()) {
        if last < t.lo || first > t.hi {
            return PruneVerdict::PrunedTime;
        }
    }
    if let Some((lo, hi)) = pred.value {
        if max_value < lo || min_value > hi {
            return PruneVerdict::PrunedValue;
        }
    }
    PruneVerdict::Kept
}

/// Filters a hot-chunk snapshot's rows through the pushed-down predicate
/// — the `SourceHot → Filter` chain. Charges the snapshot's tuples to
/// the §VII-B scan counters (no page/byte I/O: the buffer is decoded
/// memory, not encoded storage).
pub(crate) fn hot_rows(hot: &HotScan, pred: &Predicate, stats: &ExecStats) -> (Vec<i64>, Vec<i64>) {
    stats
        .tuples_scanned
        .fetch_add(hot.ts.len() as u64, Ordering::Relaxed);
    let _f = Stage::Filter.timer(stats);
    let ts = &hot.ts[..];
    let vals = &hot.vals[..];
    let (a, b) = match pred.time {
        Some(tr) => {
            let a = ts.partition_point(|&t| t < tr.lo);
            let b = ts.partition_point(|&t| t <= tr.hi);
            (a, b.max(a))
        }
        None => (0, ts.len()),
    };
    match pred.value {
        None => (ts[a..b].to_vec(), vals[a..b].to_vec()),
        Some((lo, hi)) => {
            let mut out_ts = Vec::new();
            let mut out_vals = Vec::new();
            for i in a..b {
                if vals[i] >= lo && vals[i] <= hi {
                    out_ts.push(ts[i]);
                    out_vals.push(vals[i]);
                }
            }
            (out_ts, out_vals)
        }
    }
}

/// Charges a pruned hot snapshot's tuples to the throughput counters
/// (tuples only — a hot chunk is not a page and touches no encoded
/// bytes).
pub(crate) fn charge_pruned_hot(hot: &HotScan, stats: &ExecStats) {
    stats
        .tuples_pruned
        .fetch_add(hot.ts.len() as u64, Ordering::Relaxed);
}

/// Validates a page that a §V verdict is about to exclude. Pruning
/// trusts header min/max without decoding, so the checksum is the only
/// thing standing between a corrupted header and a silently wrong
/// pruned answer — a kept page is re-verified at decode anyway, but an
/// excluded one would otherwise never be looked at again.
pub(crate) fn verify_pruned(page: &Page) -> Result<()> {
    page.verify().map_err(Error::Storage)
}

/// Applies [`page_verdict`] to a page list, charging pruned pages/tuples
/// to `stats` and returning the survivors. Excluded pages are
/// checksum-verified first (see [`verify_pruned`]).
pub(crate) fn prune_pages(
    pages: Vec<Arc<Page>>,
    pred: &Predicate,
    cfg: &PipelineConfig,
    stats: &ExecStats,
) -> Result<Vec<Arc<Page>>> {
    let mut kept = Vec::with_capacity(pages.len());
    for page in pages {
        if page_verdict(&page, pred, cfg.prune).kept() {
            kept.push(page);
        } else {
            verify_pruned(&page)?;
            charge_pruned_page(&page, stats);
        }
    }
    Ok(kept)
}

/// Charges one pruned page to the §VII-B throughput counters.
pub(crate) fn charge_pruned_page(page: &Page, stats: &ExecStats) {
    stats.pages_pruned.fetch_add(1, Ordering::Relaxed);
    stats
        .tuples_pruned
        .fetch_add(page.header.count as u64, Ordering::Relaxed);
}

/// Charges one loaded page: I/O accounting for the `SourcePages` node.
pub(crate) fn charge_page_io(page: &Page, stats: &ExecStats, store: &SeriesStore) {
    let _io = Stage::Io.timer(stats);
    store.io().record_page(page.encoded_len());
    stats.pages_loaded.fetch_add(1, Ordering::Relaxed);
    stats
        .tuples_scanned
        .fetch_add(page.header.count as u64, Ordering::Relaxed);
}

/// Decodes a page's timestamp column (vectorized).
pub(crate) fn decode_ts_column(
    page: &Page,
    cfg: &PipelineConfig,
    stats: &ExecStats,
) -> Result<Vec<i64>> {
    let _t = Stage::Unpack.timer(stats);
    let mut out = Vec::new();
    let opts = DecodeOptions {
        value_range: Some((page.header.first_ts, page.header.last_ts)),
        ..cfg.decode
    };
    decode_column(page.header.ts_encoding, &page.ts_bytes, &opts, &mut out)?;
    stats
        .materialized_bytes
        .fetch_add(out.len() as u64 * 8, Ordering::Relaxed);
    Ok(out)
}

/// Decodes the value column, applying suffix pruning (Propositions 4–5)
/// when a value filter is present: the scan decodes in chunks and stops
/// once the remaining suffix provably cannot match. Returns `None` when
/// pruning eliminated everything before any chunk qualified.
pub(crate) fn decode_val_column(
    page: &Page,
    pred: &Predicate,
    cfg: &PipelineConfig,
    stats: &ExecStats,
) -> Result<Option<Vec<i64>>> {
    let _t = Stage::Delta.timer(stats);
    let mut out = Vec::new();
    // Suffix pruning applies to TS2DIFF value columns under value filters.
    if let (true, Some((c1, c2)), Encoding::Ts2Diff) =
        (cfg.prune, pred.value, page.header.val_encoding)
    {
        let parsed = ts2diff::parse(&page.val_bytes)?;
        if parsed.order == 1 && parsed.count > 0 {
            let bounds = DeltaBounds::from_ts2diff(&parsed);
            // Genuinely incremental scan: unpack and accumulate one chunk
            // of deltas at a time; the Proposition 5 rule check after each
            // chunk stops the scan — and the remaining unpack/accumulate
            // work — as soon as the suffix provably cannot match.
            const CHUNK: usize = 256;
            let n = parsed.count;
            out.reserve(n.min(4 * CHUNK));
            out.push(parsed.first[0]);
            let mut cur = parsed.first[0];
            let mut chunk = vec![0u64; CHUNK];
            let mut pos = 0usize; // delta index
            let total = parsed.num_deltas();
            let mut pruned = false;
            while pos < total {
                let len = CHUNK.min(total - pos);
                {
                    let _u = Stage::Unpack.timer(stats);
                    etsqp_simd::unpack::unpack_u64(
                        parsed.payload,
                        pos * parsed.width as usize,
                        parsed.width,
                        &mut chunk[..len],
                    );
                }
                for &s in &chunk[..len] {
                    cur = cur.wrapping_add(parsed.min_delta.wrapping_add(s as i64));
                    out.push(cur);
                }
                pos += len;
                if prune_rest(&bounds, cur, pos, n, c1, c2) == PruneDecision::StopRest {
                    pruned = true;
                    break;
                }
            }
            if pruned {
                stats
                    .tuples_pruned
                    .fetch_add((n - out.len()) as u64, Ordering::Relaxed);
            }
        } else {
            decode_column(
                page.header.val_encoding,
                &page.val_bytes,
                &cfg.decode,
                &mut out,
            )?;
        }
    } else {
        let opts = DecodeOptions {
            value_range: Some((page.header.min_value, page.header.max_value)),
            ..cfg.decode
        };
        decode_column(page.header.val_encoding, &page.val_bytes, &opts, &mut out)?;
    }
    stats
        .materialized_bytes
        .fetch_add(out.len() as u64 * 8, Ordering::Relaxed);
    Ok(Some(out))
}

/// Decodes the qualifying rows of a pre-pruned page set — the
/// `SourcePages → DecodeScan → Filter → MergeConcat` pipeline of
/// row-producing plans. The caller picks the kept pages (planner
/// decisions for unary scans, per-partition pruning for merge nodes).
pub(crate) fn scan_rows(
    store: &SeriesStore,
    kept: Vec<Arc<Page>>,
    pred: &Predicate,
    cfg: &PipelineConfig,
    stats: &ExecStats,
    ctl: &CancellationToken,
) -> Result<(Vec<i64>, Vec<i64>)> {
    let budget = budget_of(cfg);
    let outputs = run_jobs_ctl(
        cfg.scheduler,
        kept,
        cfg.threads,
        stats,
        ctl,
        |page| -> Result<(Vec<i64>, Vec<i64>)> {
            charge_page_io(&page, stats, store);
            // The vectorized branch parses chunk bytes directly (no
            // Page::decode), so corruption must be caught here, before
            // any fast path trusts the payload.
            page.verify().map_err(Error::Storage)?;
            // Gradual loading (§VI-C): reserve decode-buffer memory before
            // materializing this page's vectors; released when the job's
            // (filtered, smaller) output replaces them.
            let _guard = budget.acquire(page.header.count as u64 * 16);
            let (ts, vals) = if cfg.vectorized {
                let ts = decode_ts_column(&page, cfg, stats)?;
                let mut vals = Vec::new();
                {
                    let _d = Stage::Delta.timer(stats);
                    let opts = DecodeOptions {
                        value_range: Some((page.header.min_value, page.header.max_value)),
                        ..cfg.decode
                    };
                    decode_column(page.header.val_encoding, &page.val_bytes, &opts, &mut vals)?;
                }
                (ts, vals)
            } else {
                page.decode().map_err(Error::Storage)?
            };
            if ts.len() != vals.len() || ts.len() != page.header.count as usize {
                // A corrupt payload can decode to a different length than the
                // header declares — fail cleanly instead of misaligning rows.
                return Err(Error::Decode("column length mismatch (corrupt page)"));
            }
            let _f = Stage::Filter.timer(stats);
            let mut out_ts = Vec::with_capacity(ts.len());
            let mut out_vals = Vec::with_capacity(ts.len());
            let (a, b) = match pred.time {
                Some(tr) => {
                    let a = ts.partition_point(|&t| t < tr.lo);
                    let b = ts.partition_point(|&t| t <= tr.hi);
                    (a, b.max(a)) // empty ranges (lo > hi) select nothing
                }
                None => (0, ts.len()),
            };
            match pred.value {
                None => {
                    out_ts.extend_from_slice(&ts[a..b]);
                    out_vals.extend_from_slice(&vals[a..b]);
                }
                Some((lo, hi)) => {
                    for i in a..b {
                        if vals[i] >= lo && vals[i] <= hi {
                            out_ts.push(ts[i]);
                            out_vals.push(vals[i]);
                        }
                    }
                }
            }
            Ok((out_ts, out_vals))
        },
    )?;
    let _m = Stage::Merge.timer(stats);
    let mut all_ts = Vec::new();
    let mut all_vals = Vec::new();
    for out in outputs {
        let (t, v) = out?;
        all_ts.extend(t);
        all_vals.extend(v);
    }
    Ok((all_ts, all_vals))
}
