//! Partial-state invariants of the physical-plan verifier (DESIGN.md
//! §13): the three checks introduced with partializable aggregates —
//! [`Invariant::BucketTiling`], [`Invariant::CacheObligation`], and
//! [`Invariant::PartialMergeOrder`] — live here so
//! [`crate::physical::verify`] stays within the module size budget.
//! They are called from [`crate::physical::verify::verify`] on every
//! pipeline and share its [`VerifyRole`] / [`fail`] plumbing.

use crate::physical::node::{Parallelism, SeriesPipeline};
use crate::physical::pipe::time_covers_page;
use crate::physical::verify::{fail, Invariant, VerifyResult, VerifyRole};
use crate::physical::window::single_bucket_index;
use crate::plan::PipelineConfig;

/// The windowed-bucket obligations: positive width, overflow-free index
/// arithmetic for every kept page, monotone bucket indices within each
/// page, and gap/overlap-free bucket ranges across the kept span.
pub(super) fn check_bucket_tiling(p: &SeriesPipeline, role: &VerifyRole) -> VerifyResult {
    let VerifyRole::Agg {
        window: Some(w), ..
    } = role
    else {
        return Ok(());
    };
    if w.dt <= 0 {
        return fail(
            Invariant::BucketTiling,
            format!("pipeline {}: non-positive bucket width {}", p.series, w.dt),
        );
    }
    let (mut k_lo, mut k_hi): (Option<usize>, Option<usize>) = (None, None);
    for (page, d) in p.pages.iter().zip(&p.decisions) {
        if !d.verdict.kept() {
            continue;
        }
        // window_of computes (t − t_min)/dt; the subtraction must not
        // overflow for any timestamp the executor will bucket.
        if page.header.last_ts >= w.t_min && page.header.last_ts.checked_sub(w.t_min).is_none() {
            return fail(
                Invariant::BucketTiling,
                format!(
                    "pipeline {}: page {}: bucket arithmetic overflows for last_ts {}",
                    p.series, d.index, page.header.last_ts
                ),
            );
        }
        match (
            w.window_of(page.header.first_ts),
            w.window_of(page.header.last_ts),
        ) {
            (Some(a), Some(b)) if a > b => {
                return fail(
                    Invariant::BucketTiling,
                    format!(
                        "pipeline {}: page {}: bucket index not monotone ({a} > {b})",
                        p.series, d.index
                    ),
                );
            }
            (Some(a), Some(b)) => {
                k_lo = Some(k_lo.map_or(a, |k: usize| k.min(a)));
                k_hi = Some(k_hi.map_or(b, |k: usize| k.max(b)));
            }
            (_, Some(b)) => {
                // first_ts precedes the window origin: bucket 0.
                k_lo = Some(0);
                k_hi = Some(k_hi.map_or(b, |k: usize| k.max(b)));
            }
            _ => {}
        }
    }
    // Bucket ranges must tile: range(k).hi + 1 == range(k+1).lo over the
    // span the kept pages touch (checked at the extremes plus their
    // neighbors — the ranges are affine in k, so that suffices).
    if let (Some(lo), Some(hi)) = (k_lo, k_hi) {
        for k in [lo, hi.saturating_sub(1)] {
            let a = w.range(k);
            let b = w.range(k + 1);
            if a.hi.checked_add(1) != Some(b.lo) || a.lo > a.hi {
                return fail(
                    Invariant::BucketTiling,
                    format!(
                        "pipeline {}: buckets {k} and {} do not tile \
                         ([{}, {}] then [{}, {}])",
                        p.series,
                        k + 1,
                        a.lo,
                        a.hi,
                        b.lo,
                        b.hi
                    ),
                );
            }
        }
    }
    Ok(())
}

/// Re-derives every `[cacheable]` marking: a page may only probe/fill
/// the partial cache when the whole-page partial is the query's exact
/// contribution for that page — cache enabled, page kept, no value
/// filter, time range covers the page, single bucket, and not sliced
/// (slice jobs never see the cache).
pub(super) fn check_cache_obligations(
    p: &SeriesPipeline,
    role: &VerifyRole,
    cfg: &PipelineConfig,
) -> VerifyResult {
    for (page, d) in p.pages.iter().zip(&p.decisions) {
        if !d.cacheable {
            continue;
        }
        let why = if !matches!(role, VerifyRole::Agg { .. }) {
            Some("cacheable page on a non-aggregate pipeline")
        } else if !cfg.partial_cache {
            Some("cacheable page while the partial cache is disabled")
        } else if !d.verdict.kept() {
            Some("cacheable page that is pruned")
        } else if p.pred.value.is_some() {
            Some("cacheable page under a value filter")
        } else if !time_covers_page(page, &p.pred) {
            Some("cacheable page not fully covered by the time range")
        } else if matches!(p.parallelism, Parallelism::Sliced { .. }) {
            Some("cacheable page on a sliced pipeline")
        } else {
            match role {
                VerifyRole::Agg {
                    window: Some(w), ..
                } if single_bucket_index(page, w).is_none() => {
                    Some("cacheable page straddling a bucket boundary")
                }
                _ => None,
            }
        };
        if let Some(why) = why {
            return fail(
                Invariant::CacheObligation,
                format!("pipeline {}: page {}: {why}", p.series, d.index),
            );
        }
    }
    Ok(())
}

/// Kept pages must be strictly time-ordered and internally consistent:
/// the driver merges their partials in list order, and the
/// [`crate::partial::PartialState::merge`] contract (FIRST/LAST,
/// timestamp bounds, digest append) assumes that order is time order.
pub(super) fn check_partial_merge_order(p: &SeriesPipeline) -> VerifyResult {
    let mut prev: Option<(usize, i64)> = None;
    for (page, d) in p.pages.iter().zip(&p.decisions) {
        if !d.verdict.kept() {
            continue;
        }
        if page.header.first_ts > page.header.last_ts {
            return fail(
                Invariant::PartialMergeOrder,
                format!(
                    "pipeline {}: page {}: header time range inverted ({} > {})",
                    p.series, d.index, page.header.first_ts, page.header.last_ts
                ),
            );
        }
        if let Some((pi, ph)) = prev {
            if page.header.first_ts <= ph {
                return fail(
                    Invariant::PartialMergeOrder,
                    format!(
                        "pipeline {}: page {} starts at {} but kept page {pi} ends at {ph}; \
                         the partial merge would be out of time order",
                        p.series, d.index, page.header.first_ts
                    ),
                );
            }
        }
        prev = Some((d.index, page.header.last_ts));
    }
    Ok(())
}
