//! `etsqp-verify` layer 1: the physical-plan IR verifier.
//!
//! An LLVM-verifier-style pass over a compiled [`PhysicalPlan`]: every
//! invariant the executor relies on is re-derived from the plan's own
//! pages, predicate, and config, and any mismatch is a typed
//! [`VerifyError`] naming the violated [`Invariant`]. The catalog
//! (DESIGN.md §13):
//!
//! * [`Invariant::PlanShape`] — root arity matches the pipeline list and
//!   per-page decisions align index-for-index with the page list.
//! * [`Invariant::PruneSoundness`] — every §V verdict re-derives from
//!   the page header under the plan's config, pruned pages carry the
//!   checksum-verification obligation (the PR 5 `verify_pruned`
//!   discipline), and verdict/strategy presence agree.
//! * [`Invariant::SliceBounds`] — morsel shape is consistent: job counts
//!   match the kept-page set and every §III-C slice index lies within
//!   its page's tuple count.
//! * [`Invariant::PartitionTiling`] — binary-merge partitions tile
//!   `[i64::MIN, i64::MAX]` disjointly and completely (§VI merge order).
//! * [`Invariant::FusionAdmissibility`] — §IV fused strategies only
//!   appear when codec, fuse level, predicate, and aggregate admit them
//!   (including the root-level pair-fusion fast path).
//! * [`Invariant::HotFoldsLast`] — a hot-chunk source only appears on
//!   unary pipelines and its timestamps strictly follow every sealed
//!   page, so FIRST/LAST folding order is safe.
//! * [`Invariant::ExplainRoundTrip`] — `EXPLAIN` text re-renders
//!   byte-identically from the verified plan and echoes its structure.
//! * [`Invariant::BucketTiling`] — windowed roots use a positive bucket
//!   width, every kept page's window arithmetic is overflow-free, bucket
//!   indices are monotone over each page, and consecutive bucket ranges
//!   tile the time axis without gap or overlap.
//! * [`Invariant::CacheObligation`] — a `[cacheable]` page decision only
//!   appears where the partial cache is sound: cache enabled, page kept,
//!   no value filter, time range covers the page, the page lands in a
//!   single bucket, and the pipeline is not sliced.
//! * [`Invariant::PartialMergeOrder`] — kept pages are strictly
//!   time-ordered and internally consistent, so the sequential partial
//!   merge (FIRST/LAST, timestamp bounds, sketches) is order-safe.
//!
//! [`verify`] is pure header/IR analysis and runs as a debug-assertion
//! post-compile hook inside [`crate::physical::pipe::compile`];
//! [`verify_deep`] additionally discharges the checksum obligations
//! (used by `cargo run -p xtask -- verify-plans`, which enumerates the
//! full plan space and mutation-tests rejection).

use std::fmt;

use etsqp_encoding::Encoding;
use etsqp_storage::page::Page;

use crate::expr::{AggFunc, Predicate, SlidingWindow, TimeRange};
use crate::physical::agg::{fusion_covers, spread_fits_i64};
use crate::physical::node::{Parallelism, RootNode, SeriesPipeline, Strategy};
use crate::physical::pipe::{pair_fusible, sliceable, time_covers_page, PhysicalPlan};
use crate::physical::scan::{hot_verdict, page_verdict};
use crate::physical::verify_partial::{
    check_bucket_tiling, check_cache_obligations, check_partial_merge_order,
};
use crate::physical::window::single_bucket_index;
use crate::plan::PipelineConfig;
use crate::slice::{distribute, slice_range, WorkItem};

/// The invariant classes of the verifier catalog (one negative test per
/// class lives in `crates/core/tests/verify_negative.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Invariant {
    /// Root arity and page/decision alignment.
    PlanShape,
    /// §V verdicts re-derive and pruned pages carry their checksum
    /// obligation (`verify_pruned` discipline).
    PruneSoundness,
    /// Morsel shape consistency and §III-C slice index bounds.
    SliceBounds,
    /// Binary-merge partitions tile the time domain disjointly.
    PartitionTiling,
    /// §IV fused strategies only where codec/expression admit them.
    FusionAdmissibility,
    /// Hot-chunk sources fold last (unary only, timestamps after all
    /// sealed pages).
    HotFoldsLast,
    /// `EXPLAIN` output round-trips the verified plan.
    ExplainRoundTrip,
    /// Windowed buckets are well-formed: positive width, overflow-free
    /// index arithmetic, monotone over pages, gap/overlap-free ranges.
    BucketTiling,
    /// `[cacheable]` decisions only where the partial cache is sound.
    CacheObligation,
    /// Kept pages are strictly time-ordered (order-safe partial merge).
    PartialMergeOrder,
}

impl Invariant {
    /// Stable catalog name (used in error text and DESIGN.md §13).
    pub fn name(self) -> &'static str {
        match self {
            Invariant::PlanShape => "plan-shape",
            Invariant::PruneSoundness => "prune-soundness",
            Invariant::SliceBounds => "slice-bounds",
            Invariant::PartitionTiling => "partition-tiling",
            Invariant::FusionAdmissibility => "fusion-admissibility",
            Invariant::HotFoldsLast => "hot-folds-last",
            Invariant::ExplainRoundTrip => "explain-round-trip",
            Invariant::BucketTiling => "bucket-tiling",
            Invariant::CacheObligation => "cache-obligation",
            Invariant::PartialMergeOrder => "partial-merge-order",
        }
    }
}

impl fmt::Display for Invariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A rejected plan: which invariant failed and where.
#[derive(Debug, Clone)]
pub struct VerifyError {
    /// The violated invariant class.
    pub invariant: Invariant,
    /// Human-readable location + mismatch description.
    pub detail: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invariant {}: {}", self.invariant, self.detail)
    }
}

impl std::error::Error for VerifyError {}

/// Verifier result alias.
pub type VerifyResult = std::result::Result<(), VerifyError>;

pub(super) fn fail(invariant: Invariant, detail: String) -> VerifyResult {
    Err(VerifyError { invariant, detail })
}

/// What a pipeline's kept pages feed — mirrors the planner's `Role`, but
/// derived here from the root node so the two cannot share a bug.
pub(super) enum VerifyRole {
    Agg {
        func: AggFunc,
        window: Option<SlidingWindow>,
    },
    Rows,
}

/// Verifies a compiled plan against the invariant catalog. Pure IR/header
/// analysis: no page payload is decoded and no checksum is computed (see
/// [`verify_deep`] for the obligation-discharging variant).
pub fn verify(plan: &PhysicalPlan, cfg: &PipelineConfig) -> VerifyResult {
    check_shape(plan)?;
    let role = |i: usize| match &plan.root {
        RootNode::Aggregate { func, window } if i == 0 => VerifyRole::Agg {
            func: *func,
            window: *window,
        },
        _ => VerifyRole::Rows,
    };
    for (i, p) in plan.pipelines.iter().enumerate() {
        check_prune_soundness(p, cfg)?;
        check_slice_bounds(p, &role(i), cfg)?;
        check_fusion_admissibility(p, &role(i), cfg)?;
        check_hot_folds_last(p, &plan.root, cfg)?;
        check_bucket_tiling(p, &role(i))?;
        check_cache_obligations(p, &role(i), cfg)?;
        check_partial_merge_order(p)?;
    }
    check_partition_tiling(plan, cfg)?;
    Ok(())
}

/// [`verify`] plus discharge of every checksum obligation the plan
/// recorded: each pruned page's FNV checksum is verified now, proving
/// the header statistics the §V verdict trusted were intact.
pub fn verify_deep(plan: &PhysicalPlan, cfg: &PipelineConfig) -> VerifyResult {
    verify(plan, cfg)?;
    for p in &plan.pipelines {
        for (page, d) in p.pages.iter().zip(&p.decisions) {
            if !d.verdict.kept() {
                if let Err(e) = page.verify() {
                    return fail(
                        Invariant::PruneSoundness,
                        format!(
                            "pipeline {}: pruned page {} fails its checksum obligation: {e}",
                            p.series, d.index
                        ),
                    );
                }
            }
        }
    }
    Ok(())
}

/// Verifies that `rendered` is the `EXPLAIN` text of `plan` under `cfg`:
/// it must re-render byte-identically and echo the plan's structure
/// (header config, pipeline count, partition count).
pub fn verify_explain(plan: &PhysicalPlan, cfg: &PipelineConfig, rendered: &str) -> VerifyResult {
    let again = plan.render(cfg);
    if again != rendered {
        return fail(
            Invariant::ExplainRoundTrip,
            "EXPLAIN text does not re-render from the plan".into(),
        );
    }
    let header = format!("physical plan (threads={}", cfg.threads);
    if !rendered.starts_with(&header) {
        return fail(
            Invariant::ExplainRoundTrip,
            format!("EXPLAIN header does not echo the config (expected `{header}…`)"),
        );
    }
    let pipeline_lines = rendered
        .lines()
        .filter(|l| l.starts_with("  pipeline "))
        .count();
    if pipeline_lines != plan.pipelines.len() {
        return fail(
            Invariant::ExplainRoundTrip,
            format!(
                "EXPLAIN shows {pipeline_lines} pipelines, plan has {}",
                plan.pipelines.len()
            ),
        );
    }
    let partitions = match &plan.root {
        RootNode::Union { partitions } | RootNode::Join { partitions, .. } => partitions.len(),
        _ => 0,
    };
    let partition_lines = rendered
        .lines()
        .filter(|l| l.starts_with("  partition "))
        .count();
    if partition_lines != partitions {
        return fail(
            Invariant::ExplainRoundTrip,
            format!("EXPLAIN shows {partition_lines} partitions, plan has {partitions}"),
        );
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Invariant checks
// ---------------------------------------------------------------------

fn check_shape(plan: &PhysicalPlan) -> VerifyResult {
    let arity = match &plan.root {
        RootNode::Aggregate { .. } | RootNode::Rows => 1,
        RootNode::Union { .. } | RootNode::Join { .. } | RootNode::PairAgg { .. } => 2,
    };
    if plan.pipelines.len() != arity {
        return fail(
            Invariant::PlanShape,
            format!(
                "root expects {arity} pipeline(s), plan has {}",
                plan.pipelines.len()
            ),
        );
    }
    for p in &plan.pipelines {
        if p.decisions.len() != p.pages.len() {
            return fail(
                Invariant::PlanShape,
                format!(
                    "pipeline {}: {} decisions for {} pages",
                    p.series,
                    p.decisions.len(),
                    p.pages.len()
                ),
            );
        }
        for (i, (page, d)) in p.pages.iter().zip(&p.decisions).enumerate() {
            if d.index != i {
                return fail(
                    Invariant::PlanShape,
                    format!(
                        "pipeline {}: decision {i} records page index {}",
                        p.series, d.index
                    ),
                );
            }
            if d.tuples != page.header.count as u64 {
                return fail(
                    Invariant::PlanShape,
                    format!(
                        "pipeline {}: decision {i} records {} tuples, header says {}",
                        p.series, d.tuples, page.header.count
                    ),
                );
            }
        }
    }
    Ok(())
}

fn check_prune_soundness(p: &SeriesPipeline, cfg: &PipelineConfig) -> VerifyResult {
    for (page, d) in p.pages.iter().zip(&p.decisions) {
        let expect = page_verdict(page, &p.pred, cfg.prune);
        if d.verdict != expect {
            return fail(
                Invariant::PruneSoundness,
                format!(
                    "pipeline {}: page {} verdict {} does not re-derive (expected {expect})",
                    p.series, d.index, d.verdict
                ),
            );
        }
        if d.verdict.kept() != d.strategy.is_some() {
            return fail(
                Invariant::PruneSoundness,
                format!(
                    "pipeline {}: page {} is {} but strategy is {:?}",
                    p.series, d.index, d.verdict, d.strategy
                ),
            );
        }
        if !d.verdict.kept() && !d.checksum_obligation {
            return fail(
                Invariant::PruneSoundness,
                format!(
                    "pipeline {}: page {} is {} without a checksum-verification \
                     obligation (verify-before-prune, PR 5)",
                    p.series, d.index, d.verdict
                ),
            );
        }
    }
    Ok(())
}

fn kept_pages(p: &SeriesPipeline) -> Vec<std::sync::Arc<Page>> {
    p.kept()
        .map(|(page, _)| std::sync::Arc::clone(page))
        .collect()
}

fn check_slice_bounds(p: &SeriesPipeline, role: &VerifyRole, cfg: &PipelineConfig) -> VerifyResult {
    let kept = kept_pages(p);
    match p.parallelism {
        Parallelism::PerPage { jobs } => {
            if jobs != kept.len() {
                return fail(
                    Invariant::SliceBounds,
                    format!(
                        "pipeline {}: per-page parallelism claims {jobs} jobs for {} kept pages",
                        p.series,
                        kept.len()
                    ),
                );
            }
        }
        Parallelism::Sliced { pages, jobs } => {
            let (windowed, func) = match role {
                VerifyRole::Agg { func, window } => (window.is_some(), *func),
                VerifyRole::Rows => {
                    return fail(
                        Invariant::SliceBounds,
                        format!(
                            "pipeline {}: sliced morsels on a row-producing scan",
                            p.series
                        ),
                    )
                }
            };
            if pages != kept.len() {
                return fail(
                    Invariant::SliceBounds,
                    format!(
                        "pipeline {}: sliced parallelism claims {pages} pages, {} kept",
                        p.series,
                        kept.len()
                    ),
                );
            }
            if !sliceable(&kept, &p.pred, windowed, func, cfg) {
                return fail(
                    Invariant::SliceBounds,
                    format!(
                        "pipeline {}: sliced morsels where §III-C slicing is inadmissible",
                        p.series
                    ),
                );
            }
            let items = distribute(&kept, cfg.threads);
            if jobs != items.len() {
                return fail(
                    Invariant::SliceBounds,
                    format!(
                        "pipeline {}: sliced parallelism claims {jobs} jobs, distribute yields {}",
                        p.series,
                        items.len()
                    ),
                );
            }
            for item in &items {
                if let WorkItem::Slice { page, part, parts } = item {
                    let count = page.header.count as usize;
                    if *part >= *parts || *parts == 0 || *parts > count.max(1) {
                        return fail(
                            Invariant::SliceBounds,
                            format!(
                                "pipeline {}: slice {part}/{parts} out of bounds for a \
                                 {count}-tuple page",
                                p.series
                            ),
                        );
                    }
                    let (lo, hi) = slice_range(count, *part, *parts);
                    if lo > hi || hi > count {
                        return fail(
                            Invariant::SliceBounds,
                            format!(
                                "pipeline {}: slice {part}/{parts} covers [{lo}, {hi}) of a \
                                 {count}-tuple page",
                                p.series
                            ),
                        );
                    }
                }
            }
        }
    }
    Ok(())
}

/// Whether `strategy` is admissible for `page` under `role` and `cfg` —
/// deliberately re-derived from first principles (codec, fuse level,
/// predicate, aggregate) rather than by re-running the planner's choice
/// function, so a planner bug cannot vouch for itself.
fn admissible(
    page: &Page,
    pred: &Predicate,
    role: &VerifyRole,
    strategy: Strategy,
    cfg: &PipelineConfig,
) -> Result<(), String> {
    if matches!(strategy, Strategy::Serial) != !cfg.vectorized {
        return Err(format!(
            "strategy {strategy} contradicts vectorized={}",
            cfg.vectorized
        ));
    }
    let (func, window) = match role {
        VerifyRole::Rows => {
            return match strategy {
                Strategy::Decode | Strategy::Serial => Ok(()),
                other => Err(format!("row-producing scan cannot run {other}")),
            }
        }
        VerifyRole::Agg { func, window } => (*func, window),
    };
    let enc = page.header.val_encoding;
    let fused_ok = |want: Encoding| -> Result<(), String> {
        if pred.value.is_some() {
            return Err(format!("{strategy} under a value filter"));
        }
        if enc != want {
            return Err(format!("{strategy} on a {} value column", enc.name()));
        }
        if !fusion_covers(func, enc, cfg.fuse) {
            return Err(format!(
                "{strategy} not covered for {} at fuse level {:?}",
                func.name(),
                cfg.fuse
            ));
        }
        if !spread_fits_i64(page) {
            return Err(format!(
                "{strategy} on a page whose value spread overflows i64"
            ));
        }
        Ok(())
    };
    match strategy {
        Strategy::Decode | Strategy::Serial => Ok(()),
        Strategy::FusedTs2Diff => fused_ok(Encoding::Ts2Diff),
        Strategy::FusedDeltaRle => {
            fused_ok(Encoding::DeltaRle)?;
            if let Some(w) = window {
                // A windowed whole-page fusion is only exact when the
                // page lands in a single bucket.
                if single_bucket_index(page, w).is_none() {
                    return Err("fused(delta_rle) on a page straddling a bucket boundary".into());
                }
            }
            if !time_covers_page(page, pred) {
                return Err("fused(delta_rle) on a partially covered page".into());
            }
            Ok(())
        }
        Strategy::FusedSvb => {
            fused_ok(Encoding::StreamVByte)?;
            if let Some(w) = window {
                if single_bucket_index(page, w).is_none() {
                    return Err("fused(svb) on a page straddling a bucket boundary".into());
                }
            }
            if !time_covers_page(page, pred) {
                return Err("fused(svb) on a partially covered page".into());
            }
            Ok(())
        }
        Strategy::HeaderMinMax => {
            if !matches!(func, AggFunc::Min | AggFunc::Max) {
                return Err(format!("header(min/max) for {}", func.name()));
            }
            if let Some(w) = window {
                if single_bucket_index(page, w).is_none() {
                    return Err("header(min/max) on a page straddling a bucket boundary".into());
                }
            }
            if pred.value.is_some() {
                return Err("header(min/max) under a value filter".into());
            }
            if !time_covers_page(page, pred) {
                return Err("header(min/max) on a partially covered page".into());
            }
            Ok(())
        }
    }
}

fn check_fusion_admissibility(
    p: &SeriesPipeline,
    role: &VerifyRole,
    cfg: &PipelineConfig,
) -> VerifyResult {
    for (page, d) in p.pages.iter().zip(&p.decisions) {
        if let Some(s) = d.strategy {
            if let Err(why) = admissible(page, &p.pred, role, s, cfg) {
                return fail(
                    Invariant::FusionAdmissibility,
                    format!("pipeline {}: page {}: {why}", p.series, d.index),
                );
            }
        }
    }
    Ok(())
}

fn check_partition_tiling(plan: &PhysicalPlan, cfg: &PipelineConfig) -> VerifyResult {
    let partitions: &[TimeRange] = match &plan.root {
        RootNode::Union { partitions } | RootNode::Join { partitions, .. } => partitions,
        RootNode::PairAgg { func: _, fused } => {
            // The root-level §IV pair-fusion fast path is itself a fused
            // strategy: admissibility is re-derived here.
            if *fused {
                let (Some(l), Some(r)) = (plan.pipelines.first(), plan.pipelines.get(1)) else {
                    return Ok(()); // arity already rejected by PlanShape
                };
                if !l.pred.is_trivial() || !r.pred.is_trivial() {
                    return fail(
                        Invariant::FusionAdmissibility,
                        "fused pair aggregation under a non-trivial predicate".into(),
                    );
                }
                if !pair_fusible(&l.pages, &r.pages, cfg) {
                    return fail(
                        Invariant::FusionAdmissibility,
                        "fused pair aggregation over non-aligned page lists".into(),
                    );
                }
            }
            return Ok(());
        }
        _ => return Ok(()),
    };
    let Some(first) = partitions.first() else {
        return fail(
            Invariant::PartitionTiling,
            "binary merge with zero partitions".into(),
        );
    };
    if first.lo != i64::MIN {
        return fail(
            Invariant::PartitionTiling,
            format!("first partition starts at {}, not -inf", first.lo),
        );
    }
    let mut prev_hi: Option<i64> = None;
    for (i, r) in partitions.iter().enumerate() {
        if r.lo > r.hi {
            return fail(
                Invariant::PartitionTiling,
                format!("partition {i} is empty ([{}, {}])", r.lo, r.hi),
            );
        }
        if let Some(ph) = prev_hi {
            if ph == i64::MAX || r.lo != ph + 1 {
                return fail(
                    Invariant::PartitionTiling,
                    format!(
                        "partition {i} starts at {} but partition {} ended at {ph} \
                         (gap or overlap)",
                        r.lo,
                        i - 1
                    ),
                );
            }
        }
        prev_hi = Some(r.hi);
    }
    if prev_hi != Some(i64::MAX) {
        return fail(
            Invariant::PartitionTiling,
            format!("last partition ends at {prev_hi:?}, not +inf"),
        );
    }
    Ok(())
}

fn check_hot_folds_last(p: &SeriesPipeline, root: &RootNode, cfg: &PipelineConfig) -> VerifyResult {
    let Some(hot) = &p.hot else {
        return Ok(());
    };
    if !matches!(root, RootNode::Aggregate { .. } | RootNode::Rows) {
        return fail(
            Invariant::HotFoldsLast,
            format!(
                "pipeline {}: hot-chunk source on a binary operator (must be \
                 materialized as a transient page)",
                p.series
            ),
        );
    }
    if hot.ts.len() != hot.vals.len() || hot.ts.is_empty() {
        return fail(
            Invariant::HotFoldsLast,
            format!(
                "pipeline {}: hot snapshot has {} timestamps and {} values",
                p.series,
                hot.ts.len(),
                hot.vals.len()
            ),
        );
    }
    if hot.ts.windows(2).any(|w| w[0] >= w[1]) {
        return fail(
            Invariant::HotFoldsLast,
            format!(
                "pipeline {}: hot timestamps are not strictly increasing",
                p.series
            ),
        );
    }
    let hot_first = hot.ts[0];
    for (page, d) in p.pages.iter().zip(&p.decisions) {
        if page.header.last_ts >= hot_first {
            return fail(
                Invariant::HotFoldsLast,
                format!(
                    "pipeline {}: sealed page {} ends at {} but the hot chunk starts \
                     at {hot_first}; folding hot last would break FIRST/LAST",
                    p.series, d.index, page.header.last_ts
                ),
            );
        }
    }
    let (mut min_v, mut max_v) = (i64::MAX, i64::MIN);
    for &v in hot.vals.iter() {
        min_v = min_v.min(v);
        max_v = max_v.max(v);
    }
    let expect = hot_verdict(&hot.ts, min_v, max_v, &p.pred, cfg.prune);
    if hot.verdict != expect {
        return fail(
            Invariant::HotFoldsLast,
            format!(
                "pipeline {}: hot verdict {} does not re-derive from the snapshot's \
                 exact statistics (expected {expect})",
                p.series, hot.verdict
            ),
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invariant_names_are_stable() {
        let all = [
            Invariant::PlanShape,
            Invariant::PruneSoundness,
            Invariant::SliceBounds,
            Invariant::PartitionTiling,
            Invariant::FusionAdmissibility,
            Invariant::HotFoldsLast,
            Invariant::ExplainRoundTrip,
            Invariant::BucketTiling,
            Invariant::CacheObligation,
            Invariant::PartialMergeOrder,
        ];
        let names: Vec<_> = all.iter().map(|i| i.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), all.len(), "names must be distinct: {names:?}");
    }

    #[test]
    fn verify_error_display_names_the_invariant() {
        let e = VerifyError {
            invariant: Invariant::PartitionTiling,
            detail: "gap at 7".into(),
        };
        assert_eq!(e.to_string(), "invariant partition-tiling: gap at 7");
    }
}
