//! The Algorithm 2 `Pipe` generator: compiles a logical [`Plan`] plus
//! per-page encoding statistics into an explicit pipeline DAG
//! ([`PhysicalPlan`]), making every fused/decoded/sliced and prune
//! decision *data* instead of control flow buried in the executor.
//!
//! The same compiled plan drives both execution
//! ([`crate::physical::driver::run`]) and `EXPLAIN`
//! ([`PhysicalPlan::render`]) — what the snapshot tests pin is by
//! construction what the executor does.

use std::fmt::Write as _;
use std::sync::Arc;

use etsqp_encoding::Encoding;
use etsqp_storage::ingest::HotSnapshot;
use etsqp_storage::page::Page;
use etsqp_storage::store::SeriesStore;

use crate::expr::{AggFunc, BinOp, CmpOp, Plan, Predicate, SlidingWindow, TimeRange};
use crate::fused::FuseLevel;
use crate::physical::agg::{fusion_covers, spread_fits_i64};
use crate::physical::merge::merge_partitions;
use crate::physical::node::{
    HotScan, Node, PageDecision, Parallelism, RootNode, SeriesPipeline, Strategy,
};
use crate::physical::scan::{hot_verdict, page_verdict};
use crate::physical::window::single_bucket_index;
use crate::plan::{flatten_scan, PipelineConfig};
use crate::slice::distribute;
use crate::{Error, Result};

/// A compiled physical pipeline DAG: per-series pipelines feeding the
/// root merge node (Figure 9).
#[derive(Debug, Clone)]
pub struct PhysicalPlan {
    /// The root merge node combining the per-series partials.
    pub root: RootNode,
    /// One pipeline per scanned series (left before right for binary
    /// operators).
    pub pipelines: Vec<SeriesPipeline>,
}

/// What the pages of a pipeline feed — decides the per-page strategy.
enum Role {
    /// Partial aggregation (`FusedAgg` / `PartialAgg` pipelines).
    Agg {
        func: AggFunc,
        window: Option<SlidingWindow>,
    },
    /// Row production (scans and binary-operator sides).
    Rows,
}

/// Captures a series' atomic `(sealed pages, hot snapshot)` pair and
/// compiles the hot half into the [`HotScan`] source of a unary
/// pipeline, including its §V verdict over the snapshot's exact
/// statistics. Float hot chunks are not compiled here — float queries go
/// through [`crate::float`], which snapshots on its own.
fn snapshot_unary(
    store: &SeriesStore,
    series: &str,
    pred: &Predicate,
    cfg: &PipelineConfig,
) -> Result<(Vec<Arc<Page>>, Option<HotScan>)> {
    let snap = store.snapshot(series).map_err(Error::Storage)?;
    let hot = match snap.hot {
        Some(HotSnapshot::Int(h)) => Some(HotScan {
            verdict: hot_verdict(&h.ts, h.min_value, h.max_value, pred, cfg.prune),
            ts: h.ts,
            vals: h.vals,
        }),
        _ => None,
    };
    Ok((snap.pages, hot))
}

/// Captures a series' snapshot for a binary-operator side, materializing
/// any hot points as one transient checksummed page (encoded with the
/// series' own codecs) appended after the sealed pages. Partitioned
/// merge nodes then see a single uniform page list — partitioning,
/// pruning and pair-fusion checks all apply to live data unchanged.
fn pages_with_hot(store: &SeriesStore, series: &str) -> Result<Vec<Arc<Page>>> {
    let snap = store.snapshot(series).map_err(Error::Storage)?;
    let mut pages = snap.pages;
    if let Some(HotSnapshot::Int(h)) = snap.hot {
        pages.push(Arc::new(h.to_page().map_err(Error::Storage)?));
    }
    Ok(pages)
}

/// Algorithm 2 `Pipe`: compiles the logical plan against the store's
/// page headers under `cfg` into an explicit [`PhysicalPlan`].
///
/// Debug builds run the `etsqp-verify` invariant catalog
/// ([`crate::physical::verify`]) over every compiled plan — including an
/// `EXPLAIN` round-trip — before handing it to the executor, so a
/// planner regression aborts at compile time instead of silently
/// mis-executing. Release builds skip the pass; `cargo run -p xtask --
/// verify-plans` covers the full plan space there.
pub fn compile(plan: &Plan, store: &SeriesStore, cfg: &PipelineConfig) -> Result<PhysicalPlan> {
    let compiled = compile_inner(plan, store, cfg)?;
    #[cfg(debug_assertions)]
    {
        use crate::physical::verify;
        verify::verify(&compiled, cfg).map_err(Error::Verify)?;
        let rendered = compiled.render(cfg);
        verify::verify_explain(&compiled, cfg, &rendered).map_err(Error::Verify)?;
    }
    Ok(compiled)
}

fn compile_inner(plan: &Plan, store: &SeriesStore, cfg: &PipelineConfig) -> Result<PhysicalPlan> {
    match plan {
        Plan::Aggregate { input, func } => {
            let (series, pred) = flatten_scan(input)?;
            let (pages, hot) = snapshot_unary(store, &series, &pred, cfg)?;
            let pipeline = build_pipeline(
                series,
                pred,
                pages,
                hot,
                Role::Agg {
                    func: *func,
                    window: None,
                },
                cfg,
            );
            Ok(PhysicalPlan {
                root: RootNode::Aggregate {
                    func: *func,
                    window: None,
                },
                pipelines: vec![pipeline],
            })
        }
        Plan::WindowAggregate {
            input,
            window,
            func,
        } => {
            let (series, pred) = flatten_scan(input)?;
            let (pages, hot) = snapshot_unary(store, &series, &pred, cfg)?;
            let pipeline = build_pipeline(
                series,
                pred,
                pages,
                hot,
                Role::Agg {
                    func: *func,
                    window: Some(*window),
                },
                cfg,
            );
            Ok(PhysicalPlan {
                root: RootNode::Aggregate {
                    func: *func,
                    window: Some(*window),
                },
                pipelines: vec![pipeline],
            })
        }
        Plan::Scan { .. } | Plan::Filter { .. } => {
            let (series, pred) = flatten_scan(plan)?;
            let (pages, hot) = snapshot_unary(store, &series, &pred, cfg)?;
            let pipeline = build_pipeline(series, pred, pages, hot, Role::Rows, cfg);
            Ok(PhysicalPlan {
                root: RootNode::Rows,
                pipelines: vec![pipeline],
            })
        }
        Plan::Union { left, right } => {
            let (lpipe, rpipe, partitions) = binary_sides(left, right, store, cfg)?;
            Ok(PhysicalPlan {
                root: RootNode::Union { partitions },
                pipelines: vec![lpipe, rpipe],
            })
        }
        Plan::Join { left, right, on } => {
            let (lpipe, rpipe, partitions) = binary_sides(left, right, store, cfg)?;
            Ok(PhysicalPlan {
                root: RootNode::Join {
                    partitions,
                    op: None,
                    on: *on,
                },
                pipelines: vec![lpipe, rpipe],
            })
        }
        Plan::JoinExpr { left, right, op } => {
            let (lpipe, rpipe, partitions) = binary_sides(left, right, store, cfg)?;
            Ok(PhysicalPlan {
                root: RootNode::Join {
                    partitions,
                    op: Some(*op),
                    on: None,
                },
                pipelines: vec![lpipe, rpipe],
            })
        }
        Plan::JoinAggregate { left, right, func } => {
            let (ls, lp) = flatten_scan(left)?;
            let (rs, rp) = flatten_scan(right)?;
            let lpages = pages_with_hot(store, &ls)?;
            let rpages = pages_with_hot(store, &rs)?;
            let fused = lp.is_trivial() && rp.is_trivial() && pair_fusible(&lpages, &rpages, cfg);
            let lpipe = build_pipeline(ls, lp, lpages, None, Role::Rows, cfg);
            let rpipe = build_pipeline(rs, rp, rpages, None, Role::Rows, cfg);
            Ok(PhysicalPlan {
                root: RootNode::PairAgg { func: *func, fused },
                pipelines: vec![lpipe, rpipe],
            })
        }
    }
}

/// Compiles both sides of a binary operator and the time-range
/// partitions its merge node runs over.
fn binary_sides(
    left: &Plan,
    right: &Plan,
    store: &SeriesStore,
    cfg: &PipelineConfig,
) -> Result<(SeriesPipeline, SeriesPipeline, Vec<TimeRange>)> {
    let (ls, lp) = flatten_scan(left)?;
    let (rs, rp) = flatten_scan(right)?;
    let lpages = pages_with_hot(store, &ls)?;
    let rpages = pages_with_hot(store, &rs)?;
    let partitions = merge_partitions(&lpages, &rpages, cfg.threads);
    let lpipe = build_pipeline(ls, lp, lpages, None, Role::Rows, cfg);
    let rpipe = build_pipeline(rs, rp, rpages, None, Role::Rows, cfg);
    Ok((lpipe, rpipe, partitions))
}

/// Builds one per-series pipeline: §V verdict per page, strategy per
/// kept page, and the §III-C morsel shape.
fn build_pipeline(
    series: String,
    pred: Predicate,
    pages: Vec<Arc<Page>>,
    hot: Option<HotScan>,
    role: Role,
    cfg: &PipelineConfig,
) -> SeriesPipeline {
    let mut decisions = Vec::with_capacity(pages.len());
    let mut kept: Vec<Arc<Page>> = Vec::new();
    for (index, page) in pages.iter().enumerate() {
        let verdict = page_verdict(page, &pred, cfg.prune);
        let strategy = verdict.kept().then(|| match &role {
            Role::Agg { func, window } => {
                choose_page_strategy(page, &pred, window.as_ref(), *func, cfg)
            }
            Role::Rows => {
                if cfg.vectorized {
                    Strategy::Decode
                } else {
                    Strategy::Serial
                }
            }
        });
        if verdict.kept() {
            kept.push(Arc::clone(page));
        }
        decisions.push(PageDecision {
            index,
            tuples: page.header.count as u64,
            verdict,
            strategy,
            // Pruning trusts header min/max without decoding, so every
            // pruned page carries the obligation to checksum-verify
            // before it is dropped (§V verify-before-prune).
            checksum_obligation: !verdict.kept(),
            cacheable: cacheable_page(page, &pred, &role, verdict.kept(), cfg),
        });
    }
    let parallelism = match &role {
        Role::Agg { func, window } if sliceable(&kept, &pred, window.is_some(), *func, cfg) => {
            Parallelism::Sliced {
                pages: kept.len(),
                jobs: distribute(&kept, cfg.threads).len(),
            }
        }
        _ => Parallelism::PerPage { jobs: kept.len() },
    };
    if matches!(parallelism, Parallelism::Sliced { .. }) {
        // Sliced pipelines run slice-coefficient jobs, which never probe
        // the partial cache; a `[cacheable]` tag would be a lie.
        for d in &mut decisions {
            d.cacheable = false;
        }
    }
    SeriesPipeline {
        series,
        pred,
        pages,
        decisions,
        parallelism,
        hot,
    }
}

/// The static partial-cache eligibility of one page (rendered as
/// `[cacheable]` in `EXPLAIN`; checked by the cache-obligation
/// invariant): the whole-page partial must be a pure function of the
/// page content — kept, no value filter, time filter covering the whole
/// page, and (under a windowed aggregate) the page inside one bucket.
fn cacheable_page(
    page: &Page,
    pred: &Predicate,
    role: &Role,
    kept: bool,
    cfg: &PipelineConfig,
) -> bool {
    let Role::Agg { window, .. } = role else {
        return false;
    };
    cfg.partial_cache
        && kept
        && pred.value.is_none()
        && time_covers_page(page, pred)
        && match window {
            None => true,
            Some(w) => single_bucket_index(page, w).is_some(),
        }
}

/// Whether the §III-C slicing morsel shape applies: unfiltered,
/// unwindowed TS2DIFF scans with fewer kept pages than threads, where
/// the slice partials combine symbolically. Partial-only aggregates
/// (quantiles, rate/delta) never slice — a symbolic slice coefficient
/// cannot carry a sketch or the covered timestamps.
pub(crate) fn sliceable(
    kept: &[Arc<Page>],
    pred: &Predicate,
    windowed: bool,
    func: AggFunc,
    cfg: &PipelineConfig,
) -> bool {
    cfg.allow_slicing
        && cfg.vectorized
        && !windowed
        && !func.partial_only()
        && pred.is_trivial()
        && kept.len() < cfg.threads
        && kept
            .iter()
            .all(|p| p.header.val_encoding == Encoding::Ts2Diff && spread_fits_i64(p))
}

/// Whether the time conjunct (if any) covers the whole page — header
/// first/last timestamps are exact, so this equals "the qualifying index
/// range is the full page".
pub(crate) fn time_covers_page(page: &Page, pred: &Predicate) -> bool {
    pred.time
        .is_none_or(|t| t.lo <= page.header.first_ts && t.hi >= page.header.last_ts)
}

/// The per-page strategy choice — previously an implicit branch chain in
/// the executor, now a planner decision from header statistics alone.
fn choose_page_strategy(
    page: &Page,
    pred: &Predicate,
    window: Option<&SlidingWindow>,
    func: AggFunc,
    cfg: &PipelineConfig,
) -> Strategy {
    if !cfg.vectorized {
        return Strategy::Serial;
    }
    if pred.value.is_some() {
        return Strategy::Decode;
    }
    let covers = fusion_covers(func, page.header.val_encoding, cfg.fuse) && spread_fits_i64(page);
    match window {
        None => {
            if covers && page.header.val_encoding == Encoding::Ts2Diff {
                Strategy::FusedTs2Diff
            } else if covers
                && page.header.val_encoding == Encoding::DeltaRle
                && time_covers_page(page, pred)
            {
                Strategy::FusedDeltaRle
            } else if covers
                && page.header.val_encoding == Encoding::StreamVByte
                && time_covers_page(page, pred)
            {
                Strategy::FusedSvb
            } else if matches!(func, AggFunc::Min | AggFunc::Max) && time_covers_page(page, pred) {
                Strategy::HeaderMinMax
            } else {
                Strategy::Decode
            }
        }
        // Windowed: TS2DIFF fuses per-window index subranges on any
        // page; the whole-page forms (Delta-RLE, SVB, header MIN/MAX)
        // additionally apply when the page is *bucket-aligned* — fully
        // covered by the time filter and inside a single bucket — so
        // only straddling pages decode.
        Some(w) => {
            let aligned = time_covers_page(page, pred) && single_bucket_index(page, w).is_some();
            if covers && page.header.val_encoding == Encoding::Ts2Diff {
                Strategy::FusedTs2Diff
            } else if covers && page.header.val_encoding == Encoding::DeltaRle && aligned {
                Strategy::FusedDeltaRle
            } else if covers && page.header.val_encoding == Encoding::StreamVByte && aligned {
                Strategy::FusedSvb
            } else if matches!(func, AggFunc::Min | AggFunc::Max) && aligned {
                Strategy::HeaderMinMax
            } else {
                Strategy::Decode
            }
        }
    }
}

/// The §IV pair-fusion alignment check: pairwise-aligned pages (identical
/// clocks, bit for bit) with Delta-RLE value columns on both sides.
pub(crate) fn pair_fusible(left: &[Arc<Page>], right: &[Arc<Page>], cfg: &PipelineConfig) -> bool {
    if cfg.fuse < FuseLevel::DeltaRepeat || !cfg.vectorized || left.len() != right.len() {
        return false;
    }
    left.iter().zip(right).all(|(a, b)| {
        let ha = &a.header;
        let hb = &b.header;
        ha.count == hb.count
            && ha.first_ts == hb.first_ts
            && ha.last_ts == hb.last_ts
            && ha.val_encoding == Encoding::DeltaRle
            && hb.val_encoding == Encoding::DeltaRle
            && spread_fits_i64(a)
            && spread_fits_i64(b)
            && a.ts_bytes == b.ts_bytes // identical clocks, bit for bit
    })
}

/// Compiles and renders in one step — the engine's `EXPLAIN` entry point.
pub fn explain(plan: &Plan, store: &SeriesStore, cfg: &PipelineConfig) -> Result<String> {
    Ok(compile(plan, store, cfg)?.render(cfg))
}

fn fuse_name(level: FuseLevel) -> &'static str {
    match level {
        FuseLevel::None => "none",
        FuseLevel::Delta => "delta",
        FuseLevel::DeltaRepeat => "delta-repeat",
    }
}

fn on_off(flag: bool) -> &'static str {
    if flag {
        "on"
    } else {
        "off"
    }
}

fn fmt_bound(t: i64) -> String {
    match t {
        i64::MIN => "-inf".into(),
        i64::MAX => "+inf".into(),
        other => other.to_string(),
    }
}

fn fmt_range(r: &TimeRange) -> String {
    format!("[{}, {}]", fmt_bound(r.lo), fmt_bound(r.hi))
}

fn fmt_pred(pred: &Predicate) -> String {
    let mut parts = Vec::new();
    if let Some(t) = pred.time {
        parts.push(format!("time in {}", fmt_range(&t)));
    }
    if let Some((lo, hi)) = pred.value {
        parts.push(format!("value in [{lo}, {hi}]"));
    }
    if parts.is_empty() {
        "none".into()
    } else {
        parts.join(" and ")
    }
}

fn cmp_name(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
        CmpOp::Eq => "=",
    }
}

fn binop_name(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
    }
}

/// The operator chain a page group runs through, built from [`Node`]
/// renderings so `EXPLAIN` and the node catalogue cannot drift apart.
fn chain(strategy: Strategy, pred: &Predicate, role_func: Option<AggFunc>, sliced: bool) -> String {
    let filter = Node::Filter {
        time: pred.time.is_some(),
        value: pred.value.is_some(),
    };
    let mut nodes: Vec<Node> = vec![Node::SourcePages];
    match (strategy, role_func) {
        _ if sliced => {
            nodes.push(Node::Slice);
            if let Some(func) = role_func {
                nodes.push(Node::PartialAgg { func });
            }
        }
        (
            Strategy::FusedTs2Diff
            | Strategy::FusedDeltaRle
            | Strategy::FusedSvb
            | Strategy::HeaderMinMax,
            Some(func),
        ) => {
            nodes.push(Node::FusedAgg { strategy, func });
        }
        (s, Some(func)) => {
            nodes.push(Node::DecodeScan {
                serial: s == Strategy::Serial,
            });
            nodes.push(filter);
            nodes.push(Node::PartialAgg { func });
        }
        (s, None) => {
            nodes.push(Node::DecodeScan {
                serial: s == Strategy::Serial,
            });
            nodes.push(filter);
        }
    }
    nodes
        .iter()
        .map(|n| n.to_string())
        .collect::<Vec<_>>()
        .join(" -> ")
}

impl PhysicalPlan {
    /// Renders the pipeline DAG as stable ASCII text (the `EXPLAIN`
    /// output): config header, root merge node, and per-series pipelines
    /// with page-group strategies and prune verdicts.
    pub fn render(&self, cfg: &PipelineConfig) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "physical plan (threads={}, prune={}, fuse={}, vectorized={}, slicing={}, cache={})",
            cfg.threads,
            on_off(cfg.prune),
            fuse_name(cfg.fuse),
            on_off(cfg.vectorized),
            on_off(cfg.allow_slicing),
            on_off(cfg.partial_cache),
        );
        let role_func = match &self.root {
            RootNode::Aggregate { func, window } => {
                match window {
                    Some(w) => {
                        let _ = writeln!(
                            out,
                            "WindowAggregate[{}, t_min={}, dt={}] <- {}",
                            func.name(),
                            w.t_min,
                            w.dt,
                            Node::MergeConcat
                        );
                    }
                    None => {
                        let _ =
                            writeln!(out, "Aggregate[{}] <- {}", func.name(), Node::MergeConcat);
                    }
                }
                Some(*func)
            }
            RootNode::Rows => {
                let _ = writeln!(out, "Rows <- {}", Node::MergeConcat);
                None
            }
            RootNode::Union { partitions } => {
                let _ = writeln!(
                    out,
                    "Union <- {} ({} partitions)",
                    Node::MergeUnion,
                    partitions.len()
                );
                render_partitions(&mut out, partitions);
                None
            }
            RootNode::Join { partitions, op, on } => {
                let mut extras = String::new();
                if let Some(op) = op {
                    let _ = write!(extras, ", expr: a {} b", binop_name(*op));
                }
                if let Some(on) = on {
                    let _ = write!(extras, ", on: a {} b", cmp_name(*on));
                }
                let _ = writeln!(
                    out,
                    "Join <- {} ({} partitions{extras})",
                    Node::MergeJoin,
                    partitions.len()
                );
                render_partitions(&mut out, partitions);
                None
            }
            RootNode::PairAgg { func, fused } => {
                let how = if *fused {
                    "FusedPairAgg (delta-rle, page-aligned)".to_string()
                } else {
                    format!("{}[moments]", Node::MergeJoin)
                };
                let _ = writeln!(out, "PairAgg[{}] <- {how}", func.name());
                None
            }
        };
        for p in &self.pipelines {
            let kept_pages = p.decisions.iter().filter(|d| d.verdict.kept()).count();
            let total_tuples: u64 = p.decisions.iter().map(|d| d.tuples).sum();
            let encs = p
                .pages
                .first()
                .map(|pg| {
                    format!(
                        " [ts={}, val={}]",
                        pg.header.ts_encoding.name(),
                        pg.header.val_encoding.name()
                    )
                })
                .unwrap_or_default();
            let _ = writeln!(
                out,
                "  pipeline {}: {} pages ({} kept), {} tuples{}",
                p.series,
                p.pages.len(),
                kept_pages,
                total_tuples,
                encs
            );
            let _ = writeln!(out, "    pred: {}", fmt_pred(&p.pred));
            let _ = writeln!(out, "    parallelism: {}", p.parallelism);
            let sliced = matches!(p.parallelism, Parallelism::Sliced { .. });
            // Group consecutive pages with the same verdict + strategy.
            let mut i = 0;
            while i < p.decisions.len() {
                let d = &p.decisions[i];
                let mut j = i;
                while j + 1 < p.decisions.len()
                    && p.decisions[j + 1].verdict == d.verdict
                    && p.decisions[j + 1].strategy == d.strategy
                    && p.decisions[j + 1].cacheable == d.cacheable
                {
                    j += 1;
                }
                let span = if i == j {
                    format!("page {i}")
                } else {
                    format!("pages {i}-{j}")
                };
                // Static cache *eligibility* only — never live hit/miss
                // counts, which would break the EXPLAIN purity check
                // (`verify_explain` re-renders byte-identically).
                let cache_tag = if d.cacheable { " [cacheable]" } else { "" };
                match d.strategy {
                    Some(s) => {
                        let _ = writeln!(
                            out,
                            "    {span}: {} -> {}{cache_tag}",
                            d.verdict,
                            chain(s, &p.pred, role_func, sliced)
                        );
                    }
                    None => {
                        let _ = writeln!(out, "    {span}: {}", d.verdict);
                    }
                }
                i = j + 1;
            }
            // The hot-chunk source renders last: the executor folds it
            // after every sealed-page partial (its timestamps follow all
            // sealed ones). Absent when nothing is buffered, so plans
            // over flushed stores render exactly as before.
            if let Some(hot) = &p.hot {
                if hot.verdict.kept() {
                    let _ = writeln!(
                        out,
                        "    hot ({} tuples): {} -> {}",
                        hot.ts.len(),
                        hot.verdict,
                        hot_chain(&p.pred, role_func)
                    );
                } else {
                    let _ = writeln!(out, "    hot ({} tuples): {}", hot.ts.len(), hot.verdict);
                }
            }
        }
        out
    }
}

/// The operator chain a kept hot snapshot runs through: its columns are
/// already decoded, so the chain is source → filter (→ partial agg).
fn hot_chain(pred: &Predicate, role_func: Option<AggFunc>) -> String {
    let mut nodes: Vec<Node> = vec![
        Node::SourceHot,
        Node::Filter {
            time: pred.time.is_some(),
            value: pred.value.is_some(),
        },
    ];
    if let Some(func) = role_func {
        nodes.push(Node::PartialAgg { func });
    }
    nodes
        .iter()
        .map(|n| n.to_string())
        .collect::<Vec<_>>()
        .join(" -> ")
}

fn render_partitions(out: &mut String, partitions: &[TimeRange]) {
    for (i, r) in partitions.iter().enumerate() {
        let _ = writeln!(out, "  partition {i}: {}", fmt_range(r));
    }
}
