//! Aggregation operator bodies: per-page pipelines (`FusedAgg`,
//! `DecodeScan → Filter → PartialAgg`), the §III-C symbolic slice
//! partials, and the SIMD fold kernels they share.
//!
//! The strategy a page runs is no longer chosen here: the `Pipe` planner
//! ([`crate::physical::pipe`]) picks a [`Strategy`] per page from header
//! statistics, and [`agg_page_job`] dispatches on that decision (with
//! [`Strategy::Decode`] as the sound fallback whenever a runtime check —
//! e.g. the resolved index range — falls outside what a fused form
//! handles).

use etsqp_encoding::{delta_rle, stream_vbyte, ts2diff, Encoding};
use etsqp_simd::agg::AggState;
use etsqp_storage::page::Page;
use etsqp_storage::store::SeriesStore;

use crate::exec::ExecStats;
use crate::expr::{AggFunc, Predicate, SlidingWindow, TimeRange};
use crate::fused::{aggregate_delta_rle, sum_svb, sum_ts2diff, sum_ts2diff_range, FuseLevel};
use crate::partial::{CacheKey, PartialCache, PartialState};
use crate::physical::node::{Stage, Strategy};
use crate::physical::scan::{charge_page_io, decode_ts_column, decode_val_column};
use crate::physical::window::{constant_positions, whole_page_bucket, window_index_ranges};
use crate::plan::PipelineConfig;
use crate::slice::slice_range;
use crate::{Error, Result};

/// Partial aggregate states keyed by window index (0 when unwindowed).
pub(crate) type WindowStates = Vec<(usize, PartialState)>;

/// True when the page's value spread `max − min` is representable in
/// `i64`, which guarantees every pairwise difference — in particular
/// every encoded delta — equals the true mathematical difference.
///
/// The fused closed forms (§IV) and the slice-coefficient chain (§III-C)
/// sum *stored deltas* symbolically in `i128`; that widening is only
/// exact when the deltas did not wrap at encode time. The decode paths
/// are immune (their wrapping adds reproduce each value bit-exactly), so
/// pages failing this check simply fall back to decode-then-aggregate.
/// Regression: `overflow_audit.rs` (values spanning more than `i64::MAX`
/// used to wrap SUM on the sliced and fused paths).
pub(crate) fn spread_fits_i64(page: &Page) -> bool {
    page.header
        .max_value
        .checked_sub(page.header.min_value)
        .is_some()
}

/// Whether the fused path can produce what `func` needs without decode.
pub(crate) fn fusion_covers(func: AggFunc, val_enc: Encoding, fuse: FuseLevel) -> bool {
    // Quantile sketches and rate/delta need per-tuple values and
    // timestamps; no closed form over (Δ, run-length) pairs produces
    // them. This gate must stay ahead of the per-encoding arms — the
    // Delta-RLE arm below claims *all* remaining functions.
    if func.partial_only() {
        return false;
    }
    match val_enc {
        Encoding::Ts2Diff => {
            fuse >= FuseLevel::Delta && matches!(func, AggFunc::Sum | AggFunc::Avg | AggFunc::Count)
        }
        Encoding::DeltaRle => fuse >= FuseLevel::DeltaRepeat,
        // Stream VByte stores length-coded deltas: fusing skips the
        // prefix sum (the Delta decoder), same family as TS2DIFF.
        Encoding::StreamVByte => {
            fuse >= FuseLevel::Delta && matches!(func, AggFunc::Sum | AggFunc::Avg | AggFunc::Count)
        }
        _ => false,
    }
}

/// Folds a dense slice into the state, computing only what `func` needs
/// (Σx² is expensive and only VARIANCE reads it; MIN/MAX skip sums).
pub(crate) fn agg_slice(state: &mut AggState, slice: &[i64], func: AggFunc) {
    if slice.is_empty() {
        return;
    }
    match func {
        AggFunc::Sum | AggFunc::Avg | AggFunc::Count => {
            state.sum += etsqp_simd::agg::sum_i64(slice);
            state.count += slice.len() as u64;
        }
        AggFunc::Min | AggFunc::Max => {
            if let Some((mn, mx)) = etsqp_simd::agg::min_max_i64(slice) {
                state.min = Some(state.min.map_or(mn, |m| m.min(mn)));
                state.max = Some(state.max.map_or(mx, |m| m.max(mx)));
            }
            state.count += slice.len() as u64;
        }
        AggFunc::Variance => state.push_slice(slice),
        AggFunc::First | AggFunc::Last => {
            state.first.get_or_insert(slice[0]);
            state.last = slice.last().copied().or(state.last);
            state.count += slice.len() as u64;
        }
        // Partial-only aggregates take the tuple-level path (they need
        // timestamps and/or a sketch); fold the exact moments anyway so
        // a planner slip degrades to a sound superset, never silence.
        AggFunc::P50 | AggFunc::P95 | AggFunc::P99 | AggFunc::Rate | AggFunc::Delta => {
            state.push_slice(slice)
        }
    }
}

/// Mask-filtered variant of [`agg_slice`].
pub(crate) fn agg_masked(state: &mut AggState, slice: &[i64], mask: &[u64], func: AggFunc) {
    match func {
        AggFunc::Sum | AggFunc::Avg | AggFunc::Count => {
            let (s, c) = etsqp_simd::agg::masked_sum_i64(slice, mask);
            state.sum += s;
            state.count += c;
        }
        AggFunc::Min | AggFunc::Max => {
            if let Some((mn, mx)) = etsqp_simd::agg::masked_min_max_i64(slice, mask) {
                state.min = Some(state.min.map_or(mn, |m| m.min(mn)));
                state.max = Some(state.max.map_or(mx, |m| m.max(mx)));
            }
            state.count += etsqp_simd::filter::count_mask(mask, slice.len());
        }
        AggFunc::Variance => state.push_masked(slice, mask),
        AggFunc::First | AggFunc::Last => {
            for (i, &v) in slice.iter().enumerate() {
                if mask[i / 64] & (1u64 << (i % 64)) != 0 {
                    state.first.get_or_insert(v);
                    state.last = Some(v);
                    state.count += 1;
                }
            }
        }
        // See agg_slice: unreachable for partial-only aggregates.
        AggFunc::P50 | AggFunc::P95 | AggFunc::P99 | AggFunc::Rate | AggFunc::Delta => {
            state.push_masked(slice, mask)
        }
    }
}

/// Symbolic partial of a slice over a TS2DIFF value column: every term is
/// expressed relative to the unknown slice-start value `v_pre`, so slice
/// jobs never wait on each other's prefix sums (§III-C / Fig. 14(c)).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SliceCoeff {
    /// Values covered by the slice.
    len: u64,
    /// Σ rel_k where `rel_k = v_k − v_pre`.
    rel_sum: i128,
    /// Σ rel_k².
    rel_sq: i128,
    /// min rel_k.
    rel_min: i64,
    /// max rel_k.
    rel_max: i64,
    /// `v_first − v_pre` (the slice's first covered value, relative).
    rel_first: i64,
    /// `v_last − v_pre`: carried into the next slice's `v_pre`.
    pub(crate) delta_total: i64,
    /// The page's first value (meaningful on part 0; seeds the chain).
    pub(crate) first_value: i64,
}

impl SliceCoeff {
    /// Resolves the symbolic partial against the now-known `v_pre` and
    /// folds it into `state` — the prefix-stitching merge node.
    pub(crate) fn fold_into(&self, state: &mut AggState, v_pre: i128) {
        if self.len == 0 {
            return;
        }
        let n = self.len as i128;
        state.sum += n * v_pre + self.rel_sum;
        state.sum_sq = state.sum_sq.saturating_add(
            n.saturating_mul(v_pre.saturating_mul(v_pre))
                .saturating_add((2 * v_pre).saturating_mul(self.rel_sum))
                .saturating_add(self.rel_sq),
        );
        state.count += self.len;
        let lo = (v_pre + self.rel_min as i128) as i64;
        let hi = (v_pre + self.rel_max as i128) as i64;
        state.min = Some(state.min.map_or(lo, |m| m.min(lo)));
        state.max = Some(state.max.map_or(hi, |m| m.max(hi)));
        state
            .first
            .get_or_insert((v_pre + self.rel_first as i128) as i64);
        state.last = Some((v_pre + self.delta_total as i128) as i64);
    }
}

/// Slice phase-1 job: unpack the slice's delta range and summarize it
/// relative to the unknown start value.
pub(crate) fn slice_coeff_job(
    page: &Page,
    part: usize,
    parts: usize,
    cfg: &PipelineConfig,
    stats: &ExecStats,
    store: &SeriesStore,
) -> Result<SliceCoeff> {
    if part == 0 {
        charge_page_io(page, stats, store);
    }
    // Slice jobs unpack chunk bytes directly; reject corrupt payloads
    // before the symbolic coefficients are built from them. Part 0 is
    // enough: every part of a page runs, and one failure aborts the
    // query.
    if part == 0 {
        page.verify().map_err(Error::Storage)?;
    }
    let parsed = ts2diff::parse(&page.val_bytes)?;
    let count = parsed.count;
    let (lo, hi) = slice_range(count, part, parts);
    if lo >= hi {
        return Ok(SliceCoeff {
            first_value: parsed.first[0],
            ..Default::default()
        });
    }
    // Deltas connecting the slice's values: indices (max(lo,1)−1)..(hi−1).
    let d_lo = lo.saturating_sub(1).max(if lo == 0 { 0 } else { lo - 1 });
    let d_hi = hi.saturating_sub(1);
    let n_deltas = d_hi - d_lo;
    let mut stored = vec![0u64; n_deltas];
    {
        let _u = Stage::Unpack.timer(stats);
        etsqp_simd::unpack::unpack_u64(
            parsed.payload,
            d_lo * parsed.width as usize,
            parsed.width,
            &mut stored,
        );
    }
    let _d = Stage::Delta.timer(stats);
    let mut coeff = SliceCoeff {
        first_value: parsed.first[0],
        ..Default::default()
    };
    let mut rel: i64 = 0;
    let push = |r: i64, c: &mut SliceCoeff| {
        c.len += 1;
        c.rel_sum += r as i128;
        c.rel_sq = c.rel_sq.saturating_add((r as i128) * (r as i128));
        if c.len == 1 {
            c.rel_min = r;
            c.rel_max = r;
            c.rel_first = r;
        } else {
            c.rel_min = c.rel_min.min(r);
            c.rel_max = c.rel_max.max(r);
        }
    };
    if lo == 0 {
        // Value 0 itself has rel 0.
        push(0, &mut coeff);
    }
    for &s in &stored {
        rel = rel.wrapping_add(parsed.min_delta.wrapping_add(s as i64));
        push(rel, &mut coeff);
    }
    coeff.delta_total = rel;
    let _ = cfg;
    Ok(coeff)
}

/// The per-page aggregation pipeline, executing the planner's
/// [`Strategy`]. Returns partial states keyed by window index (0 when
/// unwindowed).
///
/// `cacheable` is the planner's [`crate::physical::node::PageDecision::cacheable`]
/// verdict: the page's whole-range partial is content-addressed in the
/// global [`PartialCache`]. The hit path still charges I/O and
/// re-verifies the page checksum first (the cache-obligation
/// invariant), so a cached entry can never stand in for corrupted
/// bytes.
#[allow(clippy::too_many_arguments)]
pub(crate) fn agg_page_job(
    page: &Page,
    pred: &Predicate,
    window: Option<SlidingWindow>,
    func: AggFunc,
    strategy: Strategy,
    cacheable: bool,
    cfg: &PipelineConfig,
    stats: &ExecStats,
    store: &SeriesStore,
) -> Result<WindowStates> {
    charge_page_io(page, stats, store);
    // Every non-serial strategy below reads chunk bytes without going
    // through the checksum-verified Page::decode — the fused closed
    // forms would otherwise turn corruption into a silently wrong
    // aggregate rather than an error. The checksum re-verification also
    // discharges the cache hit path: the cache key embeds this checksum.
    page.verify().map_err(Error::Storage)?;

    // The planner only marks pages cacheable when the whole page
    // qualifies and lands in one bucket; re-derive the bucket index
    // defensively (a straddling page just skips the cache).
    let cached_bucket = if cacheable {
        whole_page_bucket(page, window).map(|k| (k, CacheKey::for_page(page, func)))
    } else {
        None
    };
    if let Some((k, key)) = &cached_bucket {
        if let Some(state) = PartialCache::global().get(key) {
            stats
                .cache_hits
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            if state.agg.count == 0 {
                return Ok(Vec::new());
            }
            return Ok(vec![(*k, state)]);
        }
        stats
            .cache_misses
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
    let out = agg_page_states(page, pred, window, func, strategy, cfg, stats)?;
    if let Some((_, key)) = cached_bucket {
        // Cache-eligible pages aggregate whole-page into one bucket, so
        // `out` holds at most one state; an empty page caches an empty
        // partial (served as "no states" above).
        let state = out
            .first()
            .map(|(_, s)| s.clone())
            .unwrap_or_else(|| PartialState::new(func));
        PartialCache::global().insert(key, state);
    }
    Ok(out)
}

/// Strategy dispatch body of [`agg_page_job`] (everything after the I/O
/// charge, checksum verification and cache probe).
fn agg_page_states(
    page: &Page,
    pred: &Predicate,
    window: Option<SlidingWindow>,
    func: AggFunc,
    strategy: Strategy,
    cfg: &PipelineConfig,
    stats: &ExecStats,
) -> Result<WindowStates> {
    if strategy == Strategy::Serial {
        return serial_agg_page(page, pred, window, func, cfg, stats);
    }

    let count = page.header.count as usize;
    let trange = pred.time.unwrap_or_else(TimeRange::all);

    // ---- Resolve the qualifying positions from the timestamp column ----
    // Ordered timestamps make every time filter an index range [a, b].
    let mut ts_decoded: Option<Vec<i64>> = None;
    let (a, b) = if pred.time.is_none() && window.is_none() {
        (0usize, count.saturating_sub(1))
    } else {
        let wide = match window {
            // Windows only constrain below by t_min; combine with filter.
            Some(w) => TimeRange {
                lo: w.t_min,
                hi: i64::MAX,
            }
            .intersect(&trange),
            None => trange,
        };
        match constant_positions(page, wide.lo, wide.hi) {
            Some(Some(range)) => range,
            Some(None) => return Ok(Vec::new()), // constant interval, no overlap
            None => {
                let range = {
                    let _f = Stage::Filter.timer(stats);
                    let ts = decode_ts_column(page, cfg, stats)?;
                    let a = ts.partition_point(|&t| t < wide.lo);
                    let b = ts.partition_point(|&t| t <= wide.hi);
                    if a >= b {
                        None
                    } else {
                        ts_decoded = Some(ts);
                        Some((a, b - 1))
                    }
                };
                match range {
                    Some(r) => r,
                    None => return Ok(Vec::new()),
                }
            }
        }
    };

    // ---- The planner's fused strategies (FusedAgg node) --------------
    match strategy {
        Strategy::FusedTs2Diff if window.is_none() => {
            let parsed = ts2diff::parse(&page.val_bytes)?;
            let _a = Stage::Agg.timer(stats);
            let state = if a == 0 && b + 1 == count {
                sum_ts2diff(&parsed, &cfg.decode)?
            } else {
                sum_ts2diff_range(&parsed, a, b, &cfg.decode)?
            };
            return Ok(vec![(0, state.into())]);
        }
        // Delta-RLE fusion, SVB fusion and header MIN/MAX are whole-page
        // forms; the planner chose them from exact header bounds (for a
        // windowed aggregate additionally proving the page lies inside
        // one bucket), but both conditions are re-checked so any
        // mismatch falls through to the decode path below.
        Strategy::FusedDeltaRle if a == 0 && b + 1 == count => {
            if let Some(k) = whole_page_bucket(page, window) {
                let parsed = delta_rle::parse(&page.val_bytes)?;
                let _a = Stage::Agg.timer(stats);
                return Ok(vec![(k, aggregate_delta_rle(&parsed)?.into())]);
            }
        }
        Strategy::FusedSvb if a == 0 && b + 1 == count => {
            if let Some(k) = whole_page_bucket(page, window) {
                let parsed = stream_vbyte::parse(&page.val_bytes)?;
                let _a = Stage::Agg.timer(stats);
                return Ok(vec![(k, sum_svb(&parsed, &cfg.decode)?.into())]);
            }
        }
        Strategy::HeaderMinMax if a == 0 && b + 1 == count => {
            if let Some(k) = whole_page_bucket(page, window) {
                let mut s = AggState::new();
                s.count = count as u64;
                s.min = Some(page.header.min_value);
                s.max = Some(page.header.max_value);
                return Ok(vec![(k, s.into())]);
            }
        }
        // Windowed fused path: resolve each window's index subrange
        // (constant-interval arithmetic or binary search over decoded
        // timestamps), then aggregate every subrange in closed form over
        // the packed deltas — no value decode.
        Strategy::FusedTs2Diff => {
            let Some(w) = window else {
                return Err(Error::Plan("windowed fused strategy without window".into()));
            };
            let ranges = window_index_ranges(page, &w, &trange, a, b, ts_decoded.as_deref())?;
            let parsed = ts2diff::parse(&page.val_bytes)?;
            let _a = Stage::Agg.timer(stats);
            let mut out: WindowStates = Vec::with_capacity(ranges.len());
            for (k, i, j) in ranges {
                let state = if i == 0 && j + 1 == count {
                    sum_ts2diff(&parsed, &cfg.decode)?
                } else {
                    sum_ts2diff_range(&parsed, i, j, &cfg.decode)?
                };
                if state.count > 0 {
                    out.push((k, state.into()));
                }
            }
            return Ok(out);
        }
        _ => {}
    }

    // ---- General path: decode values (DecodeScan → Filter → PartialAgg)
    let vals = decode_val_column(page, pred, cfg, stats)?;
    let vals = match vals {
        Some(v) => v,
        None => return Ok(Vec::new()), // fully pruned during scan
    };
    if a >= vals.len() {
        // The qualifying index range lies entirely in the pruned suffix —
        // sound because pruned elements provably fail the value filter.
        return Ok(Vec::new());
    }

    let _a = Stage::Agg.timer(stats);

    // Partial-only aggregates (quantile sketches, rate/delta) fold
    // tuple-at-a-time with timestamps — this is the "straddling pages
    // decode" leg of the bucket pipeline.
    if func.partial_only() {
        let ts_owned;
        let ts: &[i64] = match &ts_decoded {
            Some(t) => t,
            None => {
                ts_owned = decode_ts_column(page, cfg, stats)?;
                &ts_owned
            }
        };
        let hi = b.min(vals.len() - 1).min(ts.len().saturating_sub(1));
        let mut windows: std::collections::BTreeMap<usize, PartialState> =
            std::collections::BTreeMap::new();
        for (&t, &v) in ts[a..=hi].iter().zip(&vals[a..=hi]) {
            if let Some((vlo, vhi)) = pred.value {
                if v < vlo || v > vhi {
                    continue;
                }
            }
            let k = match window {
                Some(w) => match w.window_of(t) {
                    Some(k) => k,
                    None => continue,
                },
                None => 0,
            };
            windows
                .entry(k)
                .or_insert_with(|| PartialState::new(func))
                .push_tv(t, v);
        }
        return Ok(windows.into_iter().collect());
    }

    let mut out: WindowStates = Vec::new();
    match window {
        None => {
            let mut state = AggState::new();
            match pred.value {
                None => agg_slice(&mut state, &vals[a..=b.min(vals.len() - 1)], func),
                Some((vlo, vhi)) => {
                    let hi = b.min(vals.len() - 1);
                    let slice = &vals[a..=hi];
                    let mut mask = etsqp_simd::filter::new_mask(slice.len());
                    etsqp_simd::filter::range_mask_i64(slice, vlo, vhi, &mut mask);
                    agg_masked(&mut state, slice, &mask, func);
                }
            }
            if state.count > 0 {
                out.push((0, state.into()));
            }
        }
        Some(w) => {
            // Split [a, b] into per-window index subranges via the
            // timestamp column (decoded or constant-interval).
            let ts_owned;
            let ts: &[i64] = match &ts_decoded {
                Some(t) => t,
                None => {
                    ts_owned = decode_ts_column(page, cfg, stats)?;
                    &ts_owned
                }
            };
            let mut i = a;
            let hi = b.min(vals.len() - 1);
            while i <= hi {
                let Some(k) = w.window_of(ts[i]) else {
                    i += 1;
                    continue;
                };
                let wrange = w.range(k).intersect(&trange);
                // End of this window's run of indices.
                let mut j = i;
                while j <= hi && wrange.contains(ts[j]) {
                    j += 1;
                }
                if j > i {
                    let slice = &vals[i..j];
                    let mut state = AggState::new();
                    match pred.value {
                        None => agg_slice(&mut state, slice, func),
                        Some((vlo, vhi)) => {
                            let mut mask = etsqp_simd::filter::new_mask(slice.len());
                            etsqp_simd::filter::range_mask_i64(slice, vlo, vhi, &mut mask);
                            agg_masked(&mut state, slice, &mask, func);
                        }
                    }
                    if state.count > 0 {
                        out.push((k, state.into()));
                    }
                    i = j;
                } else {
                    i += 1;
                }
            }
        }
    }
    Ok(out)
}

/// Byte-serial per-value pipeline — the "Serial"/"IoTDB" baseline: decode
/// value-at-a-time with the reference decoders, branch per tuple.
fn serial_agg_page(
    page: &Page,
    pred: &Predicate,
    window: Option<SlidingWindow>,
    func: AggFunc,
    _cfg: &PipelineConfig,
    stats: &ExecStats,
) -> Result<WindowStates> {
    let (ts, vals) = {
        let _d = Stage::Delta.timer(stats);
        page.decode().map_err(Error::Storage)?
    };
    stats.materialized_bytes.fetch_add(
        (ts.len() + vals.len()) as u64 * 8,
        std::sync::atomic::Ordering::Relaxed,
    );
    let _a = Stage::Agg.timer(stats);
    let mut windows: std::collections::BTreeMap<usize, PartialState> =
        std::collections::BTreeMap::new();
    for (&t, &v) in ts.iter().zip(&vals) {
        if let Some(tr) = pred.time {
            if !tr.contains(t) {
                continue;
            }
        }
        if let Some((lo, hi)) = pred.value {
            if v < lo || v > hi {
                continue;
            }
        }
        let k = match window {
            Some(w) => match w.window_of(t) {
                Some(k) => k,
                None => continue,
            },
            None => 0,
        };
        windows
            .entry(k)
            .or_insert_with(|| PartialState::new(func))
            .push_tv(t, v);
    }
    Ok(windows.into_iter().collect())
}
