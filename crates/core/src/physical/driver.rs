//! The pipeline driver: maps a compiled [`PhysicalPlan`]'s morsels onto
//! the work-stealing pool and stitches the partials back together —
//! per-page partial states through `MergeConcat`, §III-C slice
//! coefficients through the sequential prefix-sum chain, and binary
//! operators through their partitioned merge nodes.

use std::sync::Arc;

use etsqp_storage::store::SeriesStore;

use crate::cancel::CancellationToken;
use crate::exec::{run_jobs_ctl, ExecStats};
use crate::expr::{AggFunc, SlidingWindow};
use crate::partial::PartialState;
use crate::physical::agg::{agg_page_job, slice_coeff_job, SliceCoeff, WindowStates};
use crate::physical::merge::{
    binary_merge_partitioned, fused_pair_aggregate, merge_join_moments, BinaryKind,
};
use crate::physical::node::{Parallelism, RootNode, SeriesPipeline, Strategy};
use crate::physical::pipe::PhysicalPlan;
use crate::physical::scan::{
    charge_pruned_hot, charge_pruned_page, hot_rows, scan_rows, verify_pruned,
};
use crate::plan::{finalize_pair, finalize_partial, PipelineConfig, Value};
use crate::slice::{distribute, WorkItem};
use crate::{Error, Result};

/// Executes a compiled plan, returning column names and rows.
pub(crate) fn run(
    phys: &PhysicalPlan,
    store: &SeriesStore,
    cfg: &PipelineConfig,
    stats: &ExecStats,
    ctl: &CancellationToken,
) -> Result<(Vec<String>, Vec<Vec<Value>>)> {
    // A query whose deadline already passed never starts a morsel.
    ctl.check()?;
    match &phys.root {
        RootNode::Aggregate { func, window: None } => {
            let p = &phys.pipelines[0];
            // Partials merge in kept-page time order (hot last), so the
            // fold below keeps FIRST/LAST, timestamp bounds and sketch
            // merges exact per the PartialState::merge contract.
            let state = aggregate_pipeline(store, p, None, *func, cfg, stats, ctl)?
                .into_iter()
                .fold(PartialState::new(*func), |mut acc, (_, s)| {
                    acc.merge(&s);
                    acc
                });
            let col = format!("{}({})", func.name(), p.series);
            Ok((vec![col], vec![vec![finalize_partial(*func, &state)]]))
        }
        RootNode::Aggregate {
            func,
            window: Some(window),
        } => {
            let p = &phys.pipelines[0];
            let per_window = aggregate_pipeline(store, p, Some(*window), *func, cfg, stats, ctl)?;
            let col = format!("{}({})", func.name(), p.series);
            let rows = per_window
                .into_iter()
                .map(|(k, s)| {
                    vec![
                        Value::Int(window.t_min + k as i64 * window.dt),
                        finalize_partial(*func, &s),
                    ]
                })
                .collect();
            Ok((vec!["window_start".into(), col], rows))
        }
        RootNode::Rows => {
            let p = &phys.pipelines[0];
            let (mut ts, mut vals) =
                scan_rows(store, kept_of(p, stats)?, &p.pred, cfg, stats, ctl)?;
            // Hot rows append after all sealed rows: their timestamps are
            // strictly greater than every sealed one, so time order holds.
            if let Some(hot) = &p.hot {
                if hot.verdict.kept() {
                    let (ht, hv) = hot_rows(hot, &p.pred, stats);
                    ts.extend(ht);
                    vals.extend(hv);
                } else {
                    charge_pruned_hot(hot, stats);
                }
            }
            let rows = ts
                .into_iter()
                .zip(vals)
                .map(|(t, v)| vec![Value::Int(t), Value::Int(v)])
                .collect();
            Ok((vec!["time".into(), p.series.clone()], rows))
        }
        RootNode::Union { partitions } => {
            let (l, r) = (&phys.pipelines[0], &phys.pipelines[1]);
            let rows = binary_merge_partitioned(
                store,
                &l.pages,
                &l.pred,
                &r.pages,
                &r.pred,
                partitions,
                BinaryKind::Union,
                cfg,
                stats,
                ctl,
            )?;
            Ok((vec!["time".into(), "value".into()], rows))
        }
        RootNode::Join { partitions, op, on } => {
            let (l, r) = (&phys.pipelines[0], &phys.pipelines[1]);
            let rows = binary_merge_partitioned(
                store,
                &l.pages,
                &l.pred,
                &r.pages,
                &r.pred,
                partitions,
                BinaryKind::Join { op: *op, on: *on },
                cfg,
                stats,
                ctl,
            )?;
            let columns = match op {
                Some(_) => vec!["time".into(), format!("{}.A op {}.A", l.series, r.series)],
                None => vec!["time".into(), l.series.clone(), r.series.clone()],
            };
            Ok((columns, rows))
        }
        RootNode::PairAgg { func, fused } => {
            let (l, r) = (&phys.pipelines[0], &phys.pipelines[1]);
            let col = format!("{}({}, {})", func.name(), l.series, r.series);
            let moments = if *fused {
                // §IV fused fast path: page-aligned Delta-RLE value
                // columns with identical clocks aggregate straight from
                // (Δ, run) pairs — no flattening, no join materialization.
                fused_pair_aggregate(store, &l.pages, &r.pages, stats, ctl)?
            } else {
                let (lt, lv) = scan_rows(store, kept_of(l, stats)?, &l.pred, cfg, stats, ctl)?;
                let (rt, rv) = scan_rows(store, kept_of(r, stats)?, &r.pred, cfg, stats, ctl)?;
                merge_join_moments(&lt, &lv, &rt, &rv, stats)
            };
            Ok((vec![col], vec![vec![finalize_pair(*func, moments)]]))
        }
    }
}

/// The driver-side half of the §V verify-before-prune discipline: a
/// pruned page may only be dropped when its decision carries the
/// checksum-verification obligation the compiler recorded. A decision
/// without it means the plan was tampered with or a planner bug slipped
/// past the verifier — refuse to execute rather than silently skip data.
fn require_obligation(d: &crate::physical::node::PageDecision) -> Result<()> {
    if d.checksum_obligation {
        Ok(())
    } else {
        Err(Error::Plan(format!(
            "pruned page {} lacks its checksum-verification obligation",
            d.index
        )))
    }
}

/// Materializes a pipeline's kept pages, charging its pruned pages to
/// the §VII-B throughput counters. Pruned pages are checksum-verified
/// before being dropped — a corrupted header must abort the query, not
/// skew which pages the §V verdicts exclude.
fn kept_of(p: &SeriesPipeline, stats: &ExecStats) -> Result<Vec<Arc<etsqp_storage::page::Page>>> {
    for (page, d) in p.pages.iter().zip(&p.decisions) {
        if !d.verdict.kept() {
            require_obligation(d)?;
            verify_pruned(page)?;
            charge_pruned_page(page, stats);
        }
    }
    Ok(p.kept().map(|(page, _)| Arc::clone(page)).collect())
}

/// Runs one aggregation pipeline: job generation per the planner's
/// [`Parallelism`], scheduler dispatch, and the sequential merge node
/// (including the §III-C prefix-sum stitch across slices).
fn aggregate_pipeline(
    store: &SeriesStore,
    pipeline: &SeriesPipeline,
    window: Option<SlidingWindow>,
    func: AggFunc,
    cfg: &PipelineConfig,
    stats: &ExecStats,
    ctl: &CancellationToken,
) -> Result<WindowStates> {
    let pred = &pipeline.pred;
    let mut kept: Vec<Arc<etsqp_storage::page::Page>> = Vec::new();
    let mut strategies: Vec<Strategy> = Vec::new();
    let mut cacheables: Vec<bool> = Vec::new();
    for (page, d) in pipeline.pages.iter().zip(&pipeline.decisions) {
        match d.strategy {
            Some(s) => {
                kept.push(Arc::clone(page));
                strategies.push(s);
                cacheables.push(d.cacheable);
            }
            None => {
                require_obligation(d)?;
                verify_pruned(page)?;
                charge_pruned_page(page, stats);
            }
        }
    }

    let items = match pipeline.parallelism {
        Parallelism::Sliced { .. } => distribute(&kept, cfg.threads),
        Parallelism::PerPage { .. } => kept.iter().cloned().map(WorkItem::Page).collect(),
    };

    #[derive(Debug)]
    enum JobOut {
        Whole(WindowStates),
        Slice {
            page_seq: usize,
            part: usize,
            coeff: SliceCoeff,
        },
        Err(Error),
    }

    // Tag items with a page sequence: it orders the slice prefix chain
    // and indexes the planner's per-page strategy (items preserve kept
    // order, so the seq equals the kept-page index).
    let mut tagged = Vec::with_capacity(items.len());
    let mut seq = usize::MAX;
    let mut last_ptr: *const etsqp_storage::page::Page = std::ptr::null();
    for item in items {
        let ptr = Arc::as_ptr(item.page());
        if ptr != last_ptr {
            seq = seq.wrapping_add(1);
            last_ptr = ptr;
        }
        tagged.push((seq, item));
    }

    let outputs = run_jobs_ctl(
        cfg.scheduler,
        tagged,
        cfg.threads,
        stats,
        ctl,
        |(page_seq, item)| match item {
            WorkItem::Page(page) => {
                match agg_page_job(
                    &page,
                    pred,
                    window,
                    func,
                    strategies[page_seq],
                    cacheables[page_seq],
                    cfg,
                    stats,
                    store,
                ) {
                    Ok(states) => JobOut::Whole(states),
                    Err(e) => JobOut::Err(e),
                }
            }
            WorkItem::Slice { page, part, parts } => {
                match slice_coeff_job(&page, part, parts, cfg, stats, store) {
                    Ok(coeff) => JobOut::Slice {
                        page_seq,
                        part,
                        coeff,
                    },
                    Err(e) => JobOut::Err(e),
                }
            }
        },
    )?;

    let mut windows: std::collections::BTreeMap<usize, PartialState> =
        std::collections::BTreeMap::new();
    {
        // Merge node (sequential, timed). Job outputs arrive in kept-page
        // time order, so each per-window merge chain is itself
        // time-ordered — the PartialState::merge contract that keeps
        // FIRST/LAST, timestamp bounds and digest merges deterministic
        // across thread counts.
        let _m = crate::physical::node::Stage::Merge.timer(stats);
        let mut v_pre: i128 = 0;
        let mut cur_page = usize::MAX;
        for out in outputs {
            match out {
                JobOut::Err(e) => return Err(e),
                JobOut::Whole(states) => {
                    for (k, s) in states {
                        windows.entry(k).or_default().merge(&s);
                    }
                }
                JobOut::Slice {
                    page_seq,
                    part,
                    coeff,
                } => {
                    if page_seq != cur_page {
                        cur_page = page_seq;
                        debug_assert_eq!(part, 0, "slices arrive in order");
                        v_pre = coeff.first_value as i128;
                    }
                    // Slices only exist for non-partial-only aggregates;
                    // the coefficients resolve into the exact moments.
                    let state = windows.entry(0).or_default();
                    coeff.fold_into(&mut state.agg, v_pre);
                    v_pre += coeff.delta_total as i128;
                }
            }
        }
    }
    // The hot-chunk source folds last: its timestamps are strictly
    // greater than every sealed timestamp, so pushing after all page
    // partials keeps order-sensitive aggregates (FIRST/LAST, timestamp
    // bounds, sketches) correct.
    if let Some(hot) = &pipeline.hot {
        if hot.verdict.kept() {
            let (hts, hvals) = hot_rows(hot, pred, stats);
            let _a = crate::physical::node::Stage::Agg.timer(stats);
            match window {
                None => {
                    let state = windows.entry(0).or_insert_with(|| PartialState::new(func));
                    for (t, v) in hts.into_iter().zip(hvals) {
                        state.push_tv(t, v);
                    }
                }
                Some(w) => {
                    for (t, v) in hts.into_iter().zip(hvals) {
                        if let Some(k) = w.window_of(t) {
                            windows
                                .entry(k)
                                .or_insert_with(|| PartialState::new(func))
                                .push_tv(t, v);
                        }
                    }
                }
            }
        } else {
            charge_pruned_hot(hot, stats);
        }
    }
    Ok(windows.into_iter().collect())
}
