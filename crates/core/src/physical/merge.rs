//! Binary merge nodes (Figure 9): time-partitioned `MergeUnion` /
//! `MergeJoin` execution and the §IV fused pair aggregation.
//!
//! The partition boundaries are planner output ([`crate::physical::pipe`]
//! computes them from page headers and stores them in the
//! [`crate::physical::node::RootNode`]); this module only executes them:
//! one scheduler job per time range, each decoding both sides restricted
//! to its range and merging independently, with partials concatenating in
//! time order.

use std::sync::Arc;

use etsqp_encoding::delta_rle;
use etsqp_storage::page::Page;
use etsqp_storage::store::SeriesStore;

use crate::cancel::CancellationToken;
use crate::exec::{run_jobs_ctl, ExecStats};
use crate::expr::{BinOp, CmpOp, Predicate, TimeRange};
use crate::fused::{aggregate_delta_rle, dot_product_delta_rle};
use crate::physical::node::Stage;
use crate::physical::scan::{charge_page_io, prune_pages, scan_rows};
use crate::plan::{PairMoments, PipelineConfig, Value};
use crate::{Error, Result};

/// Which binary merge a partition job runs.
#[derive(Debug, Clone, Copy)]
pub(crate) enum BinaryKind {
    /// Time-ordered union (ties emit left first).
    Union,
    /// Merge join on equal timestamps, optionally applying an
    /// element-wise expression or inter-column predicate.
    Join {
        /// Element-wise expression over the joined values.
        op: Option<BinOp>,
        /// Inter-column predicate (Eq. 3).
        on: Option<CmpOp>,
    },
}

/// Builds at most `2 * threads` disjoint time ranges covering both page
/// lists, cut at page first-timestamps so most pages fall wholly in one
/// range. Planner-side: the ranges appear verbatim in `EXPLAIN`.
pub(crate) fn merge_partitions(
    left: &[Arc<Page>],
    right: &[Arc<Page>],
    threads: usize,
) -> Vec<TimeRange> {
    let mut cuts: Vec<i64> = Vec::new();
    for page in left.iter().chain(right) {
        cuts.push(page.header.first_ts);
    }
    cuts.sort_unstable();
    cuts.dedup();
    if cuts.is_empty() {
        return vec![TimeRange::all()];
    }
    let want = (threads * 2).max(1);
    let step = cuts.len().div_ceil(want).max(1);
    let mut bounds: Vec<i64> = cuts.iter().copied().step_by(step).collect();
    bounds[0] = i64::MIN;
    let mut ranges = Vec::with_capacity(bounds.len());
    for (i, &lo) in bounds.iter().enumerate() {
        let hi = bounds.get(i + 1).map(|&b| b - 1).unwrap_or(i64::MAX);
        ranges.push(TimeRange { lo, hi });
    }
    ranges
}

/// Executes `Union` / `Join` / `JoinExpr` over the planner's partitions:
/// every partition decodes both sides restricted to its range (page
/// pruning keeps out-of-range pages untouched) and merges independently;
/// partials concatenate in time order.
// Two (pages, predicate) pairs plus execution context; bundling them
// into a struct would add a type used exactly once.
#[allow(clippy::too_many_arguments)]
pub(crate) fn binary_merge_partitioned(
    store: &SeriesStore,
    left: &[Arc<Page>],
    lpred: &Predicate,
    right: &[Arc<Page>],
    rpred: &Predicate,
    ranges: &[TimeRange],
    kind: BinaryKind,
    cfg: &PipelineConfig,
    stats: &ExecStats,
    ctl: &CancellationToken,
) -> Result<Vec<Vec<Value>>> {
    // One worker per partition; within a partition both sides scan with
    // a single thread (the partition level is the parallel axis).
    let inner_cfg = PipelineConfig { threads: 1, ..*cfg };
    let outputs = run_jobs_ctl(
        cfg.scheduler,
        ranges.to_vec(),
        cfg.threads,
        stats,
        ctl,
        |range| -> Result<Vec<Vec<Value>>> {
            let lp = lpred.and(&Predicate {
                time: Some(range),
                value: None,
            });
            let rp = rpred.and(&Predicate {
                time: Some(range),
                value: None,
            });
            let lkept = prune_pages(left.to_vec(), &lp, &inner_cfg, stats)?;
            let rkept = prune_pages(right.to_vec(), &rp, &inner_cfg, stats)?;
            let (lt, lv) = scan_rows(store, lkept, &lp, &inner_cfg, stats, ctl)?;
            let (rt, rv) = scan_rows(store, rkept, &rp, &inner_cfg, stats, ctl)?;
            let _m = Stage::Merge.timer(stats);
            let rows = match kind {
                BinaryKind::Union => merge_union(&lt, &lv, &rt, &rv),
                BinaryKind::Join { op, on } => merge_join(&lt, &lv, &rt, &rv, op, on),
            };
            Ok(rows)
        },
    )?;
    let mut rows = Vec::new();
    for out in outputs {
        rows.extend(out?);
    }
    Ok(rows)
}

/// Time-ordered merge of two sorted series (Q5). Ties emit left first.
pub(crate) fn merge_union(lt: &[i64], lv: &[i64], rt: &[i64], rv: &[i64]) -> Vec<Vec<Value>> {
    let mut rows = Vec::with_capacity(lt.len() + rt.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < lt.len() || j < rt.len() {
        let take_left = match (lt.get(i), rt.get(j)) {
            (Some(&a), Some(&b)) => a <= b,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        if take_left {
            rows.push(vec![Value::Int(lt[i]), Value::Int(lv[i])]);
            i += 1;
        } else {
            rows.push(vec![Value::Int(rt[j]), Value::Int(rv[j])]);
            j += 1;
        }
    }
    rows
}

/// Merge join on equal timestamps (Q4/Q6). With `op`, emits
/// `(t, op(a, b))`; without, emits `(t, a, b)`.
pub(crate) fn merge_join(
    lt: &[i64],
    lv: &[i64],
    rt: &[i64],
    rv: &[i64],
    op: Option<BinOp>,
    on: Option<CmpOp>,
) -> Vec<Vec<Value>> {
    let mut rows = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < lt.len() && j < rt.len() {
        match lt[i].cmp(&rt[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // Inter-column predicate on the decoded pair (Eq. 3).
                if on.is_none_or(|c| c.eval(lv[i], rv[j])) {
                    match op {
                        Some(op) => {
                            rows.push(vec![Value::Int(lt[i]), Value::Int(op.apply(lv[i], rv[j]))])
                        }
                        None => rows.push(vec![
                            Value::Int(lt[i]),
                            Value::Int(lv[i]),
                            Value::Int(rv[j]),
                        ]),
                    }
                }
                i += 1;
                j += 1;
            }
        }
    }
    rows
}

/// Merge join folding matched pairs into running moments — the non-fused
/// `PairAgg` merge node.
pub(crate) fn merge_join_moments(
    lt: &[i64],
    lv: &[i64],
    rt: &[i64],
    rv: &[i64],
    stats: &ExecStats,
) -> PairMoments {
    let _m = Stage::Merge.timer(stats);
    let mut acc = PairMoments::default();
    let (mut i, mut j) = (0usize, 0usize);
    while i < lt.len() && j < rt.len() {
        match lt[i].cmp(&rt[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                acc.push(lv[i], rv[j]);
                i += 1;
                j += 1;
            }
        }
    }
    acc
}

/// The §IV fused pair aggregation: every moment comes straight from
/// `(Δ, run)` pairs of the two page-aligned Delta-RLE value columns. The
/// planner ([`crate::physical::pipe`]) verified the alignment (identical
/// clocks per page, bit for bit) before choosing this node.
pub(crate) fn fused_pair_aggregate(
    store: &SeriesStore,
    left: &[Arc<Page>],
    right: &[Arc<Page>],
    stats: &ExecStats,
    ctl: &CancellationToken,
) -> Result<PairMoments> {
    let _a = Stage::Agg.timer(stats);
    let mut m = PairMoments::default();
    for (a, b) in left.iter().zip(right) {
        // Serial fused loop: each page pair is the morsel boundary.
        ctl.check()?;
        charge_page_io(a, stats, store);
        charge_page_io(b, stats, store);
        // The fused kernels consume (Δ, run) pairs straight from the
        // chunk bytes, so checksum verification is the only thing
        // standing between a flipped bit and a silently wrong moment.
        a.verify().map_err(Error::Storage)?;
        b.verify().map_err(Error::Storage)?;
        let pa = delta_rle::parse(&a.val_bytes)?;
        let pb = delta_rle::parse(&b.val_bytes)?;
        m.sum_ab = m.sum_ab.saturating_add(dot_product_delta_rle(&pa, &pb)?);
        let sa = aggregate_delta_rle(&pa)?;
        let sb = aggregate_delta_rle(&pb)?;
        m.n += sa.count;
        m.sum_a += sa.sum;
        m.sum_b += sb.sum;
        m.sum_aa = m.sum_aa.saturating_add(sa.sum_sq);
        m.sum_bb = m.sum_bb.saturating_add(sb.sum_sq);
    }
    Ok(m)
}
