//! Process-wide persistent worker pool with morsel-driven work stealing.
//!
//! The paper's core-level parallelism (§III-C) assumes a long-lived
//! multi-thread job scheduler. The original `run_jobs` instead spawned
//! and joined a fresh thread set *per query*, which dominates short
//! selective queries once decode runs at memory speed. This module
//! replaces it:
//!
//! * **One pool per process**, lazily initialized on the first parallel
//!   query and sized to the hardware (`ETSQP_POOL_THREADS` overrides).
//!   Workers are detached daemon threads that park when idle; after
//!   warmup no query ever spawns or joins a thread.
//! * **Morsel-driven scheduling**: every page/slice job of a query is a
//!   stealable morsel in a per-query [`deque::Injector`]. Runners grab
//!   batches into local [`deque::Worker`] deques and steal from each
//!   other when they run dry, so a straggler page rebalances dynamically
//!   instead of stalling its statically-assigned thread. Results land in
//!   per-index slots, so outputs still return in job order and the slice
//!   prefix-sum stitching of [`crate::plan`] is untouched.
//! * **Shared across concurrent queries**: runner tasks from any number
//!   of queries interleave on the same workers ([`crate::engine::IotDb`]
//!   is `Sync` and usable behind `Arc` from many OS threads). A panic in
//!   one query's worker closure is contained by
//!   [`crate::exec::run_one`] (surfacing as `Error::Worker` to that
//!   query alone) and, as a second line of defence, every pool task runs
//!   under `catch_unwind`, so a panicking query cannot poison the pool.
//! * **The caller is a runner too** — it executes morsels of its own
//!   query, and while waiting for stragglers it *helps* by running
//!   queued pool tasks. This keeps the scheduler deadlock-free even if
//!   every pool worker is busy (or the pool has a single thread), and it
//!   lets the requesting thread's core contribute on small machines.
//!
//! Idle time (morsel-acquisition latency and the caller's completion
//! wait) is charged to [`ExecStats::idle_ns`]; morsel provenance is
//! counted in [`ExecStats::local_pops`] / [`ExecStats::steals`].

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Once, OnceLock};
use std::time::{Duration, Instant};

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use parking_lot::{Condvar, Mutex};

use crate::cancel::CancellationToken;
use crate::exec::{run_one, ExecStats};
use crate::{Error, Result};

/// A unit of pool work: a boxed runner entry for one query's batch.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// How long an idle pool worker parks before re-checking for work that
/// arrived without a wakeup (e.g. morsels left in a sibling's deque).
const PARK_TIMEOUT: Duration = Duration::from_millis(50);

/// How long a waiting caller parks between help attempts.
const WAIT_TIMEOUT: Duration = Duration::from_millis(1);

/// The process-wide pool.
struct Pool {
    /// Global FIFO of runner tasks; workers batch-steal from here.
    injector: Injector<Task>,
    /// Thief handles onto every worker's local deque.
    stealers: Vec<Stealer<Task>>,
    /// Local deques, parked here until `ensure_started` hands each to
    /// its worker thread.
    pending: Mutex<Vec<Worker<Task>>>,
    started: Once,
    sleep: Mutex<()>,
    wake: Condvar,
    /// Threads spawned over the pool's lifetime (stable after warmup —
    /// asserted by tests and the bench harness).
    spawned: AtomicUsize,
    threads: usize,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    let p = POOL.get_or_init(Pool::new);
    p.ensure_started();
    p
}

/// Number of worker threads the persistent pool runs with.
pub fn pool_threads() -> usize {
    pool().threads
}

/// Threads spawned by the pool since process start. Constant after the
/// first parallel query — the "no spawn/join on the hot path" invariant.
pub fn spawned_threads() -> usize {
    pool().spawned.load(Ordering::SeqCst)
}

impl Pool {
    fn new() -> Pool {
        let threads = std::env::var("ETSQP_POOL_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(4)
            })
            .max(1);
        let mut pending = Vec::with_capacity(threads);
        let mut stealers = Vec::with_capacity(threads);
        for _ in 0..threads {
            let w = Worker::new_fifo();
            stealers.push(w.stealer());
            pending.push(w);
        }
        Pool {
            injector: Injector::new(),
            stealers,
            pending: Mutex::new(pending),
            started: Once::new(),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
            spawned: AtomicUsize::new(0),
            threads,
        }
    }

    fn ensure_started(&'static self) {
        self.started.call_once(|| {
            let locals = std::mem::take(&mut *self.pending.lock());
            for (i, local) in locals.into_iter().enumerate() {
                let ok = std::thread::Builder::new()
                    .name(format!("etsqp-pool-{i}"))
                    .spawn(move || self.worker_loop(local))
                    .is_ok();
                if ok {
                    self.spawned.fetch_add(1, Ordering::SeqCst);
                }
                // A failed spawn degrades capacity, not correctness: the
                // caller always helps drain the injector itself.
            }
        });
    }

    fn worker_loop(&self, local: Worker<Task>) {
        loop {
            match self.find_task(&local) {
                Some(task) => {
                    // Second line of defence behind `run_one`: a panic
                    // escaping one query's runner must not kill a shared
                    // pool thread and starve every other query.
                    let _ = catch_unwind(AssertUnwindSafe(task));
                }
                None => self.park(),
            }
        }
    }

    /// Local deque first, then the global injector (batched), then the
    /// siblings' deques.
    fn find_task(&self, local: &Worker<Task>) -> Option<Task> {
        if let Some(t) = local.pop() {
            return Some(t);
        }
        loop {
            match self.injector.steal_batch_and_pop(local) {
                Steal::Success(t) => return Some(t),
                Steal::Retry => continue,
                Steal::Empty => break,
            }
        }
        loop {
            let mut retry = false;
            for s in &self.stealers {
                match s.steal() {
                    Steal::Success(t) => return Some(t),
                    Steal::Retry => retry = true,
                    Steal::Empty => {}
                }
            }
            if !retry {
                return None;
            }
        }
    }

    /// One steal attempt without a local deque (used by helping callers).
    fn try_steal_task(&self) -> Option<Task> {
        loop {
            match self.injector.steal() {
                Steal::Success(t) => return Some(t),
                Steal::Retry => continue,
                Steal::Empty => break,
            }
        }
        loop {
            let mut retry = false;
            for s in &self.stealers {
                match s.steal() {
                    Steal::Success(t) => return Some(t),
                    Steal::Retry => retry = true,
                    Steal::Empty => {}
                }
            }
            if !retry {
                return None;
            }
        }
    }

    fn park(&self) {
        let mut guard = self.sleep.lock();
        // Re-check under the lock: a submit between our failed steal and
        // the lock acquisition must not be slept through.
        if !self.injector.is_empty() {
            return;
        }
        // The timeout also covers work that arrives without a wakeup.
        let _ = self.wake.wait_for(&mut guard, PARK_TIMEOUT);
    }

    fn submit(&self, task: Task) {
        self.injector.push(task);
        let _guard = self.sleep.lock();
        self.wake.notify_one();
    }
}

/// Completion latch for one `run_jobs` batch. Heap-allocated (`Arc`) so
/// a runner task's final signal never touches the caller's stack frame —
/// the caller may free the batch the instant the latch opens.
struct Latch {
    /// Jobs whose result slot is not yet written.
    jobs_left: AtomicUsize,
    /// Spawned runner tasks that have not finished executing. The caller
    /// must outwait these: a queued-but-unstarted runner still holds an
    /// (erased) reference to the batch on the caller's stack.
    tasks_live: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
}

impl Latch {
    fn new(jobs: usize, tasks: usize) -> Latch {
        Latch {
            jobs_left: AtomicUsize::new(jobs),
            tasks_live: AtomicUsize::new(tasks),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    fn is_open(&self) -> bool {
        self.jobs_left.load(Ordering::Acquire) == 0 && self.tasks_live.load(Ordering::Acquire) == 0
    }

    fn job_done(&self) {
        if self.jobs_left.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = self.lock.lock();
            self.cv.notify_all();
        }
    }

    fn task_exit(&self) {
        if self.tasks_live.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = self.lock.lock();
            self.cv.notify_all();
        }
    }

    fn wait_timeout(&self, timeout: Duration) {
        let mut guard = self.lock.lock();
        if self.is_open() {
            return;
        }
        let _ = self.cv.wait_for(&mut guard, timeout);
    }
}

/// Interior-mutable slot written exactly once by the morsel's unique
/// claimant (claim exclusivity comes from the deques).
struct SyncCell<T>(std::cell::UnsafeCell<T>);

// SAFETY: access discipline is "one writer per cell, reads only after
// the latch's Acquire/Release edge" — see `Batch`.
unsafe impl<T: Send> Sync for SyncCell<T> {}

impl<T> SyncCell<T> {
    fn new(v: T) -> SyncCell<T> {
        SyncCell(std::cell::UnsafeCell::new(v))
    }

    fn into_inner(self) -> T {
        self.0.into_inner()
    }
}

/// One query's in-flight job batch: morsel queue, job/result slots, and
/// the worker closure. Lives on the caller's stack for the duration of
/// `run_jobs_pool`; runner tasks reference it through an erased lifetime
/// and are strictly outwaited.
struct Batch<'a, J, R, F> {
    jobs: Vec<SyncCell<Option<J>>>,
    results: Vec<SyncCell<Option<Result<R>>>>,
    /// Morsel indices not yet claimed by any runner.
    queue: Injector<usize>,
    /// Thief handles onto every active runner's local morsel deque.
    runner_stealers: Mutex<Vec<Stealer<usize>>>,
    latch: Arc<Latch>,
    worker: &'a F,
    stats: &'a ExecStats,
    /// The owning query's cancellation token, checked per morsel.
    ctl: &'a CancellationToken,
}

impl<J: Send, R: Send, F: Fn(J) -> R + Sync> Batch<'_, J, R, F> {
    /// Runs morsels until the batch has none left to claim.
    fn run_runner(&self) {
        let local = Worker::new_fifo();
        self.runner_stealers.lock().push(local.stealer());
        while let Some(i) = self.next_morsel(&local) {
            // Cancellation / deadline check at the morsel boundary: once
            // the token fires, the batch's remaining morsels drain as
            // typed errors without running the worker, so the query
            // returns within one morsel and the pool moves on.
            if let Err(e) = self.ctl.check() {
                // SAFETY: morsel index `i` is claimed by exactly one
                // runner, so this result slot is written exactly once.
                unsafe { *self.results[i].0.get() = Some(Err(e)) };
                self.latch.job_done();
                continue;
            }
            // SAFETY: morsel index `i` is claimed by exactly one runner
            // (deques hand out each index once); the job was written
            // before the index was pushed.
            // lint:allow(no-panic-paths) -- an empty slot here means the
            // deques handed out an index twice, a scheduler logic bug
            // that must fail loudly; the panic is contained by the
            // pool's catch_unwind and surfaces as Error::Worker to this
            // query alone.
            let job = unsafe { (*self.jobs[i].0.get()).take() }.expect("morsel claimed once");
            let out = run_one(self.worker, job);
            // SAFETY: same unique-claimant argument for the result slot;
            // the caller only reads it after `jobs_left` hits zero.
            unsafe { *self.results[i].0.get() = Some(out) };
            self.latch.job_done();
        }
    }

    /// Claims the next morsel: local deque, then the batch queue
    /// (batched), then stealing from sibling runners. Acquisition
    /// latency is the pool's analogue of queue wait and is charged to
    /// `idle_ns` — including the final failed claim, so shutdown waits
    /// are accounted per worker.
    fn next_morsel(&self, local: &Worker<usize>) -> Option<usize> {
        let wait_start = Instant::now();
        let got = self.claim(local);
        self.stats.add(&self.stats.idle_ns, wait_start.elapsed());
        got
    }

    fn claim(&self, local: &Worker<usize>) -> Option<usize> {
        if let Some(i) = local.pop() {
            self.stats.local_pops.fetch_add(1, Ordering::Relaxed);
            return Some(i);
        }
        loop {
            match self.queue.steal_batch_and_pop(local) {
                Steal::Success(i) => {
                    self.stats.steals.fetch_add(1, Ordering::Relaxed);
                    return Some(i);
                }
                Steal::Retry => continue,
                Steal::Empty => break,
            }
        }
        loop {
            let mut retry = false;
            {
                let stealers = self.runner_stealers.lock();
                for s in stealers.iter() {
                    match s.steal() {
                        Steal::Success(i) => {
                            self.stats.steals.fetch_add(1, Ordering::Relaxed);
                            return Some(i);
                        }
                        Steal::Retry => retry = true,
                        Steal::Empty => {}
                    }
                }
            }
            if !retry {
                return None;
            }
        }
    }
}

/// Executes `jobs` on the persistent pool, morsel-driven, returning
/// outputs in job order. Parallelism is `min(threads, pool + 1, jobs)`
/// (the `+ 1` is the calling thread, which always participates).
///
/// Callers go through [`crate::exec::run_jobs`], which handles the
/// empty/serial fast paths; this function assumes `jobs.len() >= 2` and
/// `threads >= 2`.
pub(crate) fn run_jobs_pool<J, R>(
    jobs: Vec<J>,
    threads: usize,
    stats: &ExecStats,
    ctl: &CancellationToken,
    worker: impl Fn(J) -> R + Sync,
) -> Result<Vec<R>>
where
    J: Send,
    R: Send,
{
    let n = jobs.len();
    let pool = pool();
    // Extra runners beyond the caller. Oversubscribing a shared pool
    // with more runners than workers only queues dead tasks, so cap at
    // pool size; each runner drains morsels dynamically regardless.
    let extra = threads.min(n).min(pool.threads + 1).saturating_sub(1);
    let latch = Arc::new(Latch::new(n, extra));
    let batch = Batch {
        jobs: jobs.into_iter().map(|j| SyncCell::new(Some(j))).collect(),
        results: (0..n).map(|_| SyncCell::new(None)).collect(),
        queue: Injector::new(),
        runner_stealers: Mutex::new(Vec::new()),
        latch: Arc::clone(&latch),
        worker: &worker,
        stats,
        ctl,
    };
    for i in 0..n {
        batch.queue.push(i);
    }
    {
        let batch_ref = &batch;
        for _ in 0..extra {
            let task_latch = Arc::clone(&latch);
            let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                batch_ref.run_runner();
                // Last touch is the Arc'd latch, never the caller's
                // stack: after this the task holds no batch reference.
                task_latch.task_exit();
            });
            // SAFETY: lifetime erasure for a scoped task. The closure
            // borrows `batch` (and `worker`/`stats` through it), which
            // live on this stack frame; we do not return until the latch
            // reports every spawned task has finished executing
            // (`tasks_live == 0`), so no erased reference outlives its
            // referent. This is the standard scoped-pool contract.
            let task: Task = unsafe {
                std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Box<dyn FnOnce() + Send>>(task)
            };
            pool.submit(task);
        }
    }
    // The caller is always a runner for its own query.
    batch.run_runner();
    // Wait for stragglers and stale runner tasks — helping the pool
    // while blocked, which both avoids deadlock (a nested caller can
    // drain its own sub-tasks) and lets this thread finish its own
    // just-submitted runners instead of waiting on a busy pool.
    while !latch.is_open() {
        if let Some(task) = pool.try_steal_task() {
            let _ = catch_unwind(AssertUnwindSafe(task));
            continue;
        }
        let wait_start = Instant::now();
        latch.wait_timeout(WAIT_TIMEOUT);
        stats.add(&stats.idle_ns, wait_start.elapsed());
    }
    batch
        .results
        .into_iter()
        .map(|slot| {
            // The latch protocol guarantees every result slot is written
            // before `jobs_left` reaches zero; an empty slot would mean
            // the accounting broke, which is reported as a worker error
            // rather than a panic on the caller's thread.
            slot.into_inner()
                .unwrap_or_else(|| Err(Error::Worker("result slot never written".into())))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{run_jobs, Scheduler};
    use crate::Error;

    #[test]
    fn pool_initializes_once_and_reuses_threads() {
        let stats = ExecStats::default();
        // Warmup.
        run_jobs(vec![1, 2, 3, 4], 4, &stats, |j: i32| j * 2).unwrap();
        let after_warmup = spawned_threads();
        assert!(after_warmup >= 1, "pool must have spawned workers");
        // Hundreds of short parallel queries: no further spawns.
        for _ in 0..300 {
            let out = run_jobs((0..8).collect(), 8, &stats, |j: i32| j + 1).unwrap();
            assert_eq!(out, (1..9).collect::<Vec<_>>());
        }
        assert_eq!(
            spawned_threads(),
            after_warmup,
            "hot path must not spawn threads after warmup"
        );
    }

    #[test]
    fn pool_counts_morsel_provenance() {
        let stats = ExecStats::default();
        run_jobs((0..64).collect(), 4, &stats, |j: i64| j).unwrap();
        let snap = stats.snapshot();
        assert_eq!(
            snap.steals + snap.local_pops,
            64,
            "every morsel is claimed exactly once: {snap:?}"
        );
        assert!(snap.steals >= 1, "the first claim of a batch is a steal");
    }

    #[test]
    fn panic_in_one_batch_does_not_poison_the_pool() {
        let stats = ExecStats::default();
        let spawned_before = {
            // Warmup so the counter is stable.
            run_jobs(vec![0, 1, 2, 3], 4, &stats, |j: i32| j).unwrap();
            spawned_threads()
        };
        for round in 0..20 {
            let out = run_jobs((0..16).collect::<Vec<i32>>(), 4, &stats, |j| {
                if j == 7 {
                    panic!("boom {round}");
                }
                j
            });
            assert!(matches!(out, Err(Error::Worker(_))));
            // The pool still answers the next, healthy batch.
            let ok = run_jobs((0..16).collect::<Vec<i32>>(), 4, &stats, |j| j * 3).unwrap();
            assert_eq!(ok, (0..16).map(|j| j * 3).collect::<Vec<_>>());
        }
        assert_eq!(spawned_threads(), spawned_before);
    }

    #[test]
    fn pool_and_spawn_schedulers_agree() {
        let stats = ExecStats::default();
        for n in [2usize, 5, 17, 64] {
            let jobs: Vec<u64> = (0..n as u64).collect();
            let a =
                crate::exec::run_jobs_with(Scheduler::Pool, jobs.clone(), 4, &stats, |j| j * j + 1)
                    .unwrap();
            let b = crate::exec::run_jobs_with(Scheduler::SpawnPerQuery, jobs, 4, &stats, |j| {
                j * j + 1
            })
            .unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn nested_pool_calls_complete() {
        // A runner that itself runs a parallel batch must not deadlock
        // even on a single-worker pool: waiting callers help.
        let stats = ExecStats::default();
        let out = run_jobs((0..4u64).collect(), 4, &stats, |j| {
            let inner_stats = ExecStats::default();
            let inner = run_jobs((0..6u64).collect(), 4, &inner_stats, |k| k + j).unwrap();
            inner.iter().sum::<u64>()
        })
        .unwrap();
        assert_eq!(out, vec![15, 21, 27, 33]);
    }
}
