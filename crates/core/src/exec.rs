//! Job scheduler and execution statistics.
//!
//! Pipeline jobs (built by Algorithm 2 in [`crate::plan`]) are independent
//! units of work over pages or slices. The default [`Scheduler::Pool`]
//! runs them morsel-driven on the process-wide persistent worker pool
//! ([`crate::pool`]); [`Scheduler::SpawnPerQuery`] keeps the original
//! spawn-a-scope-per-query path as a baseline for benchmarking and
//! differential testing. Under both, workers never wait on each other
//! (slice dependencies are resolved by a sequential merge after the
//! parallel phase — §III-C / Fig. 14(c-d)), so the only blocking is queue
//! starvation, which is measured and reported as idle time.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::cancel::CancellationToken;
use crate::{Error, Result};

/// Stage-level counters for one query execution (Figure 14(b)'s staged
/// time breakdown and the idle/materialization accounting of 14(c-d)).
#[derive(Debug, Default)]
pub struct ExecStats {
    /// Pages whose payloads were loaded.
    pub pages_loaded: AtomicU64,
    /// Pages skipped entirely by pruning.
    pub pages_pruned: AtomicU64,
    /// Tuples covered by loaded work items.
    pub tuples_scanned: AtomicU64,
    /// Tuples skipped by pruning (counted toward throughput per §VII-B).
    pub tuples_pruned: AtomicU64,
    /// Nanoseconds distributing pages / touching encoded bytes.
    pub io_ns: AtomicU64,
    /// Nanoseconds in bit-unpacking.
    pub unpack_ns: AtomicU64,
    /// Nanoseconds in Delta accumulation / RLE flattening.
    pub delta_ns: AtomicU64,
    /// Nanoseconds in filtering (mask generation).
    pub filter_ns: AtomicU64,
    /// Nanoseconds in aggregation.
    pub agg_ns: AtomicU64,
    /// Nanoseconds in merge nodes (sequential combine).
    pub merge_ns: AtomicU64,
    /// Nanoseconds workers spent starved for work.
    pub idle_ns: AtomicU64,
    /// Bytes of decoded vectors materialized to memory (ablation 14(d)).
    pub materialized_bytes: AtomicU64,
    /// Morsels claimed from a runner's own local deque (pool scheduler).
    pub local_pops: AtomicU64,
    /// Morsels stolen from the shared queue or a sibling runner's deque.
    pub steals: AtomicU64,
    /// Whole-page partials served from the global partial cache.
    pub cache_hits: AtomicU64,
    /// Cache-eligible pages whose partial had to be computed (and was
    /// then inserted).
    pub cache_misses: AtomicU64,
}

/// A plain-value snapshot of [`ExecStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Pages whose payloads were loaded.
    pub pages_loaded: u64,
    /// Pages skipped entirely by pruning.
    pub pages_pruned: u64,
    /// Tuples covered by loaded work items.
    pub tuples_scanned: u64,
    /// Tuples skipped by pruning.
    pub tuples_pruned: u64,
    /// Stage nanoseconds: I/O / unpack / delta / filter / aggregate / merge.
    pub io_ns: u64,
    /// See [`ExecStats::unpack_ns`].
    pub unpack_ns: u64,
    /// See [`ExecStats::delta_ns`].
    pub delta_ns: u64,
    /// See [`ExecStats::filter_ns`].
    pub filter_ns: u64,
    /// See [`ExecStats::agg_ns`].
    pub agg_ns: u64,
    /// See [`ExecStats::merge_ns`].
    pub merge_ns: u64,
    /// See [`ExecStats::idle_ns`].
    pub idle_ns: u64,
    /// See [`ExecStats::materialized_bytes`].
    pub materialized_bytes: u64,
    /// See [`ExecStats::local_pops`].
    pub local_pops: u64,
    /// See [`ExecStats::steals`].
    pub steals: u64,
    /// See [`ExecStats::cache_hits`].
    pub cache_hits: u64,
    /// See [`ExecStats::cache_misses`].
    pub cache_misses: u64,
}

impl ExecStats {
    /// Adds `d` to a stage counter.
    pub fn add(&self, counter: &AtomicU64, d: Duration) {
        counter.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Starts a drop-guard timer charging a stage counter — see
    /// [`ScopedTimer`].
    pub fn scoped<'a>(&self, counter: &'a AtomicU64) -> ScopedTimer<'a> {
        ScopedTimer::new(counter)
    }

    /// Snapshot of every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            pages_loaded: self.pages_loaded.load(Ordering::Relaxed),
            pages_pruned: self.pages_pruned.load(Ordering::Relaxed),
            tuples_scanned: self.tuples_scanned.load(Ordering::Relaxed),
            tuples_pruned: self.tuples_pruned.load(Ordering::Relaxed),
            io_ns: self.io_ns.load(Ordering::Relaxed),
            unpack_ns: self.unpack_ns.load(Ordering::Relaxed),
            delta_ns: self.delta_ns.load(Ordering::Relaxed),
            filter_ns: self.filter_ns.load(Ordering::Relaxed),
            agg_ns: self.agg_ns.load(Ordering::Relaxed),
            merge_ns: self.merge_ns.load(Ordering::Relaxed),
            idle_ns: self.idle_ns.load(Ordering::Relaxed),
            materialized_bytes: self.materialized_bytes.load(Ordering::Relaxed),
            local_pops: self.local_pops.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
        }
    }
}

impl StatsSnapshot {
    /// Total tuples counted toward throughput (scanned + pruned, per the
    /// paper's throughput definition in §VII-B).
    pub fn tuples_total(&self) -> u64 {
        self.tuples_scanned + self.tuples_pruned
    }
}

/// Drop-guard stage timer: charges the elapsed time since construction to
/// an [`ExecStats`] counter when it goes out of scope.
///
/// Operator code used to bracket every stage with a manual
/// `let t = Instant::now(); … stats.add(&stats.x_ns, t.elapsed())` pair,
/// which silently lost the charge whenever a `?` returned early between
/// the two lines. The guard form cannot skip the charge: the `Drop` impl
/// runs on every exit path, including errors and panics unwinding through
/// the scope.
#[derive(Debug)]
pub struct ScopedTimer<'a> {
    counter: &'a AtomicU64,
    start: Instant,
}

impl<'a> ScopedTimer<'a> {
    /// Starts timing against `counter` (one of the `*_ns` stage counters
    /// of [`ExecStats`]).
    pub fn new(counter: &'a AtomicU64) -> Self {
        ScopedTimer {
            counter,
            start: Instant::now(),
        }
    }
}

impl Drop for ScopedTimer<'_> {
    fn drop(&mut self) {
        self.counter
            .fetch_add(self.start.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

/// Runs one job, converting a panic into [`Error::Worker`] so a single
/// bad page cannot abort the whole process.
pub(crate) fn run_one<J, R>(worker: &(impl Fn(J) -> R + Sync), job: J) -> Result<R> {
    catch_unwind(AssertUnwindSafe(|| worker(job))).map_err(|p| Error::Worker(panic_message(p)))
}

/// Which executor dispatches a query's page/slice jobs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Scheduler {
    /// Morsel-driven execution on the process-wide persistent worker pool
    /// ([`crate::pool`]): no thread spawn/join per query, dynamic
    /// rebalancing via work stealing. The default.
    #[default]
    Pool,
    /// The original baseline: spawn a fresh `crossbeam::scope` thread set
    /// per query with a shared FIFO job channel. Kept for benchmarking
    /// (`scripts/bench.sh`) and differential testing against the pool.
    SpawnPerQuery,
}

/// Runs `jobs` through `worker` with the default [`Scheduler::Pool`],
/// returning outputs in job order. See [`run_jobs_with`].
pub fn run_jobs<J, R>(
    jobs: Vec<J>,
    threads: usize,
    stats: &ExecStats,
    worker: impl Fn(J) -> R + Sync,
) -> Result<Vec<R>>
where
    J: Send,
    R: Send,
{
    run_jobs_with(Scheduler::Pool, jobs, threads, stats, worker)
}

/// Runs `jobs` through `worker` on up to `threads` workers under the
/// chosen [`Scheduler`], returning outputs in job order. Worker
/// starvation time is charged to `stats.idle_ns`.
///
/// A panicking worker does not abort the process: the panic payload is
/// captured and surfaced to the caller as [`Error::Worker`] (the first
/// panic in job order wins; remaining jobs still drain).
pub fn run_jobs_with<J, R>(
    scheduler: Scheduler,
    jobs: Vec<J>,
    threads: usize,
    stats: &ExecStats,
    worker: impl Fn(J) -> R + Sync,
) -> Result<Vec<R>>
where
    J: Send,
    R: Send,
{
    run_jobs_ctl(
        scheduler,
        jobs,
        threads,
        stats,
        &CancellationToken::none(),
        worker,
    )
}

/// [`run_jobs_with`] under a [`CancellationToken`]: the token is checked
/// at every morsel boundary, so a cancelled or deadlined query stops
/// within one morsel — queued jobs drain as [`Error::Cancelled`] /
/// [`Error::Timeout`] without executing, and the pool stays healthy for
/// every other query.
pub fn run_jobs_ctl<J, R>(
    scheduler: Scheduler,
    jobs: Vec<J>,
    threads: usize,
    stats: &ExecStats,
    ctl: &CancellationToken,
    worker: impl Fn(J) -> R + Sync,
) -> Result<Vec<R>>
where
    J: Send,
    R: Send,
{
    let threads = threads.max(1);
    let n = jobs.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    if threads == 1 || n == 1 {
        return jobs
            .into_iter()
            .map(|j| {
                ctl.check()?;
                run_one(&worker, j)
            })
            .collect();
    }
    match scheduler {
        Scheduler::Pool => crate::pool::run_jobs_pool(jobs, threads, stats, ctl, worker),
        Scheduler::SpawnPerQuery => run_jobs_spawn(jobs, threads, stats, ctl, worker),
    }
}

/// Spawn-per-query baseline executor (the pre-pool implementation).
fn run_jobs_spawn<J, R>(
    jobs: Vec<J>,
    threads: usize,
    stats: &ExecStats,
    ctl: &CancellationToken,
    worker: impl Fn(J) -> R + Sync,
) -> Result<Vec<R>>
where
    J: Send,
    R: Send,
{
    let n = jobs.len();
    let (job_tx, job_rx) = crossbeam::channel::unbounded::<(usize, J)>();
    for pair in jobs.into_iter().enumerate() {
        // Both channel ends are alive in this frame, but a send failure
        // is reported instead of trusted away.
        job_tx
            .send(pair)
            .map_err(|_| Error::Worker("job queue closed before dispatch".into()))?;
    }
    drop(job_tx);
    let mut slots: Vec<Option<Result<R>>> = (0..n).map(|_| None).collect();
    let (res_tx, res_rx) = crossbeam::channel::unbounded::<(usize, Result<R>)>();
    crossbeam::scope(|scope| {
        for _ in 0..threads.min(n) {
            let job_rx = job_rx.clone();
            let res_tx = res_tx.clone();
            let worker = &worker;
            scope.spawn(move |_| loop {
                let wait_start = Instant::now();
                let recv = job_rx.recv();
                // Charge the queue wait even for the final (failed) recv
                // at channel disconnect, so per-worker shutdown waits are
                // accounted like every other starvation interval.
                stats.add(&stats.idle_ns, wait_start.elapsed());
                let Ok((idx, job)) = recv else { break };
                // Morsel-boundary cancellation: queued jobs of a fired
                // query drain as typed errors instead of executing.
                let out = match ctl.check() {
                    Ok(()) => run_one(worker, job),
                    Err(e) => Err(e),
                };
                if res_tx.send((idx, out)).is_err() {
                    break;
                }
            });
        }
        drop(res_tx);
        while let Ok((idx, out)) = res_rx.recv() {
            slots[idx] = Some(out);
        }
    })
    .map_err(|_| Error::Worker("scheduler thread panicked".into()))?;
    slots
        .into_iter()
        .map(|s| {
            // Every worker either sends a result or the scope above
            // already errored; an empty slot is reported, not panicked.
            s.unwrap_or_else(|| Err(Error::Worker("result slot never written".into())))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outputs_preserve_job_order() {
        for sched in [Scheduler::Pool, Scheduler::SpawnPerQuery] {
            let jobs: Vec<u64> = (0..100).collect();
            let stats = ExecStats::default();
            let out = run_jobs_with(sched, jobs, 4, &stats, |j| j * 2).unwrap();
            assert_eq!(out, (0..100).map(|j| j * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn single_thread_path() {
        let stats = ExecStats::default();
        let out = run_jobs(vec![1, 2, 3], 1, &stats, |j| j + 1).unwrap();
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_jobs() {
        let stats = ExecStats::default();
        let out: Vec<i32> = run_jobs(Vec::<i32>::new(), 8, &stats, |j| j).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn scoped_timer_charges_on_early_return() {
        let stats = ExecStats::default();
        let attempt = |fail: bool| -> Result<()> {
            let _t = stats.scoped(&stats.agg_ns);
            std::thread::sleep(Duration::from_millis(2));
            if fail {
                return Err(Error::Decode("early exit"));
            }
            Ok(())
        };
        assert!(attempt(true).is_err());
        let after_err = stats.snapshot().agg_ns;
        assert!(after_err > 0, "error path must still charge the stage");
        attempt(false).unwrap();
        assert!(stats.snapshot().agg_ns > after_err);
    }

    #[test]
    fn stats_snapshot_roundtrip() {
        let stats = ExecStats::default();
        stats.pages_loaded.store(5, Ordering::Relaxed);
        stats.tuples_pruned.store(7, Ordering::Relaxed);
        stats.tuples_scanned.store(3, Ordering::Relaxed);
        let snap = stats.snapshot();
        assert_eq!(snap.pages_loaded, 5);
        assert_eq!(snap.tuples_total(), 10);
    }

    #[test]
    fn parallel_execution_uses_multiple_workers() {
        // All jobs record their thread id; with enough slow jobs and at
        // least one pool worker beyond the caller, 2+ distinct threads
        // must participate.
        use std::collections::HashSet;
        use std::sync::Mutex;
        for sched in [Scheduler::Pool, Scheduler::SpawnPerQuery] {
            let seen = Mutex::new(HashSet::new());
            let stats = ExecStats::default();
            run_jobs_with(sched, (0..64).collect(), 4, &stats, |_: i32| {
                std::thread::sleep(Duration::from_millis(1));
                seen.lock().unwrap().insert(std::thread::current().id());
            })
            .unwrap();
            assert!(seen.lock().unwrap().len() >= 2, "scheduler {sched:?}");
        }
    }

    #[test]
    fn spawn_scheduler_charges_shutdown_wait_per_worker() {
        // With far more workers than jobs, most workers' only queue
        // interaction is the final disconnect recv — previously
        // unaccounted. Slow jobs force the surplus workers to measurably
        // wait on the drained channel before it disconnects.
        let stats = ExecStats::default();
        run_jobs_with(
            Scheduler::SpawnPerQuery,
            (0..2).collect::<Vec<i32>>(),
            8,
            &stats,
            |_| std::thread::sleep(Duration::from_millis(5)),
        )
        .unwrap();
        assert!(
            stats.snapshot().idle_ns > 0,
            "shutdown queue-wait must be charged to idle_ns"
        );
    }

    #[test]
    fn panicking_worker_surfaces_error_single_thread() {
        let stats = ExecStats::default();
        let out = run_jobs(vec![1, 2, 3], 1, &stats, |j| {
            if j == 2 {
                panic!("bad page {j}");
            }
            j
        });
        match out {
            Err(Error::Worker(msg)) => assert!(msg.contains("bad page 2"), "msg={msg}"),
            other => panic!("expected Error::Worker, got {other:?}"),
        }
    }

    #[test]
    fn panicking_worker_surfaces_error_multi_thread() {
        for sched in [Scheduler::Pool, Scheduler::SpawnPerQuery] {
            let stats = ExecStats::default();
            let out = run_jobs_with(sched, (0..32).collect::<Vec<i32>>(), 4, &stats, |j| {
                if j == 17 {
                    panic!("poisoned job");
                }
                j * 10
            });
            match out {
                Err(Error::Worker(msg)) => assert!(msg.contains("poisoned job"), "msg={msg}"),
                other => panic!("expected Error::Worker, got {other:?} ({sched:?})"),
            }
        }
    }
}
