//! Vectorized page decoding — Algorithm 1 end-to-end.
//!
//! The pipeline for a TS2DIFF page is:
//!
//! 1. **unpack** packed deltas into straight-order 32-bit lanes (the
//!    shuffle / srlv / and sequence of Figure 3, table-driven per §III-B);
//! 2. **add base** (`min_delta`) to every lane;
//! 3. **layout** — scatter a round of `n_v · 8` deltas so every SIMD lane
//!    holds a chain of `n_v` consecutive deltas (Figure 4(d));
//! 4. **accumulate** — partial sums + prefix permute + broadcast add
//!    (Algorithm 1 lines 10–15);
//! 5. **widen** the 32-bit relative values to absolute `i64`s.
//!
//! The 32-bit fast path requires every intermediate value to stay within
//! an `i32` offset of the page's first value; [`fits_32bit_path`] verifies
//! this from header statistics alone (width, base, count), falling back to
//! the serial decoder otherwise — the overflow discipline of §VI-C.

use etsqp_encoding::ts2diff::Ts2DiffPage;
use etsqp_encoding::{delta_rle, rle, sprintz, stream_vbyte, ts2diff, Encoding};
use etsqp_simd::{scan, svb, transpose, unpack, LANES32};

use crate::cost::{choose_nv, CostConstants};
use crate::{Error, Result};

/// Decoding strategy for the Delta accumulation step — the ablation axis
/// of DESIGN.md ("chain layout" vs "straight scan").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeltaStrategy {
    /// Algorithm 1's chain layout: transpose + partial sums + one prefix.
    #[default]
    ChainLayout,
    /// One in-vector inclusive scan per 8 values (SBoost-style).
    StraightScan,
}

/// Tuning knobs for the vectorized decoder.
#[derive(Debug, Clone, Copy)]
pub struct DecodeOptions {
    /// Override `n_v`; `None` asks the Proposition 1 cost model.
    pub n_v: Option<usize>,
    /// Delta accumulation strategy.
    pub strategy: DeltaStrategy,
    /// Known (min, max) of the decoded values — page-header statistics.
    /// When present, the 32-bit fast path is gated on the *actual* value
    /// range instead of the conservative width-derived bound, which
    /// otherwise rejects wide packing widths on large pages.
    pub value_range: Option<(i64, i64)>,
}

impl Default for DecodeOptions {
    fn default() -> Self {
        DecodeOptions {
            n_v: None,
            strategy: DeltaStrategy::ChainLayout,
            value_range: None,
        }
    }
}

/// Whether the 32-bit relative-offset fast path is provably safe for a
/// page: the largest possible cumulative offset `count · max|Δ|` must stay
/// far inside `i32`. A known `(min, max)` value range (page-header
/// statistics) proves it directly.
pub fn fits_32bit_path(page: &Ts2DiffPage<'_>, opts: &DecodeOptions) -> bool {
    if page.width > 32 {
        return false;
    }
    if let Some((mn, mx)) = opts.value_range {
        // Every value lies in [mn, mx]; offsets from the first value are
        // bounded by the range width.
        if (mx as i128 - mn as i128) < (1 << 31) {
            return true;
        }
    }
    let lo = page.delta_lower_bound().unsigned_abs();
    let hi = page.delta_upper_bound().unsigned_abs();
    let max_abs = lo.max(hi) as u128;
    let n = page.count as u128;
    // Order-2 compounds: |v_rel| ≤ n²·max|ΔΔ| + n·|d₁|; bound conservatively.
    let bound = if page.order == 1 {
        n.saturating_mul(max_abs)
    } else {
        let d1 = page.first[1].wrapping_sub(page.first[0]).unsigned_abs() as u128;
        n.saturating_mul(n)
            .saturating_mul(max_abs)
            .saturating_add(n.saturating_mul(d1))
    };
    bound < (1 << 30)
}

/// Decodes a parsed TS2DIFF page into `out` using the vectorized pipeline
/// when safe, the serial decoder otherwise. Returns the number of values.
pub fn decode_ts2diff(
    page: &Ts2DiffPage<'_>,
    opts: &DecodeOptions,
    out: &mut Vec<i64>,
) -> Result<usize> {
    out.clear();
    if page.count == 0 {
        return Ok(0);
    }
    if !fits_32bit_path(page, opts) {
        let bytes_header = rebuild_decode_serial(page)?;
        out.extend_from_slice(&bytes_header);
        return Ok(out.len());
    }
    out.reserve(page.count);
    let o = page.order as usize;
    for i in 0..o.min(page.count) {
        out.push(page.first[i]);
    }
    let n = page.num_deltas();
    if n == 0 {
        return Ok(out.len());
    }
    // Unpack all stored deltas (straight order) and add the base.
    let mut stored = vec![0u32; n];
    unpack::unpack_u32(page.payload, 0, page.width, &mut stored);
    let base32 = page.min_delta as u32; // wrapping two's complement
    for s in stored.iter_mut() {
        *s = s.wrapping_add(base32);
    }
    match page.order {
        1 => {
            let v0 = page.first[0];
            let mut rel = vec![0u32; n];
            accumulate_rel(&stored, 0, opts, &mut rel);
            let start = out.len();
            out.resize(start + n, 0);
            scan::widen_rel_i64(v0, &rel, &mut out[start..]);
        }
        _ => {
            // Pass A: delta-of-deltas → deltas (relative to d1).
            let d1 = page.first[1].wrapping_sub(page.first[0]);
            let mut deltas = vec![0u32; n];
            accumulate_rel(&stored, d1 as u32, opts, &mut deltas);
            // Pass B: deltas → values (relative to v1 = first[1]).
            let mut rel = vec![0u32; n];
            accumulate_rel(&deltas, 0, opts, &mut rel);
            let start = out.len();
            out.resize(start + n, 0);
            scan::widen_rel_i64(page.first[1], &rel, &mut out[start..]);
        }
    }
    Ok(out.len())
}

/// Inclusive prefix sum of `deltas` (u32 wrapping), seeded with `seed`,
/// written to `rel`. Uses the configured Delta strategy for full rounds
/// and a scalar tail.
fn accumulate_rel(deltas: &[u32], seed: u32, opts: &DecodeOptions, rel: &mut [u32]) {
    debug_assert_eq!(deltas.len(), rel.len());
    let mut carry = seed;
    match opts.strategy {
        DeltaStrategy::ChainLayout => {
            let n_v = opts
                .n_v
                .unwrap_or_else(|| choose_nv(10, 32, &CostConstants::default()));
            let n_v = if transpose::SUPPORTED_NV.contains(&n_v) {
                n_v
            } else {
                8
            };
            let round = n_v * LANES32;
            let mut vs = vec![[0u32; LANES32]; n_v];
            let mut pos = 0usize;
            while pos + round <= deltas.len() {
                transpose::layout_transpose(&deltas[pos..pos + round], &mut vs);
                scan::chain_delta_decode(&mut vs, &mut carry);
                transpose::layout_untranspose(&vs, &mut rel[pos..pos + round]);
                pos += round;
            }
            scalar_prefix(&deltas[pos..], &mut carry, &mut rel[pos..]);
        }
        DeltaStrategy::StraightScan => {
            let mut pos = 0usize;
            while pos + LANES32 <= deltas.len() {
                // Infallible: the loop condition guarantees LANES32
                // elements remain, so build the lane array by copy
                // instead of a panicking try_into conversion.
                let mut v = [0u32; LANES32];
                v.copy_from_slice(&deltas[pos..pos + LANES32]);
                scan::inclusive_scan_v32(&mut v, &mut carry);
                rel[pos..pos + LANES32].copy_from_slice(&v);
                pos += LANES32;
            }
            scalar_prefix(&deltas[pos..], &mut carry, &mut rel[pos..]);
        }
    }
}

fn scalar_prefix(deltas: &[u32], carry: &mut u32, rel: &mut [u32]) {
    let mut acc = *carry;
    for (r, &d) in rel.iter_mut().zip(deltas) {
        acc = acc.wrapping_add(d);
        *r = acc;
    }
    *carry = acc;
}

/// Serial fallback that re-serializes nothing: re-runs the reference
/// decoder over the original page image reconstructed from parts.
fn rebuild_decode_serial(page: &Ts2DiffPage<'_>) -> Result<Vec<i64>> {
    // The reference decoder works from bytes; rebuild a minimal image.
    let mut values = Vec::with_capacity(page.count);
    let o = page.order as usize;
    for i in 0..o.min(page.count) {
        values.push(page.first[i]);
    }
    let mut r = etsqp_encoding::bitio::BitReader::new(page.payload);
    match page.order {
        1 => {
            let mut prev = page.first[0];
            for _ in 0..page.num_deltas() {
                let stored = r
                    .read_bits(page.width)
                    .ok_or(Error::Decode("ts2diff payload"))?;
                prev = prev.wrapping_add(page.min_delta.wrapping_add(stored as i64));
                values.push(prev);
            }
        }
        _ => {
            let mut prev = page.first[1];
            let mut prev_d = page.first[1].wrapping_sub(page.first[0]);
            for _ in 0..page.num_deltas() {
                let stored = r
                    .read_bits(page.width)
                    .ok_or(Error::Decode("ts2diff payload"))?;
                prev_d = prev_d.wrapping_add(page.min_delta.wrapping_add(stored as i64));
                prev = prev.wrapping_add(prev_d);
                values.push(prev);
            }
        }
    }
    Ok(values)
}

/// Decodes any integer-encoded column into `out`, using the vectorized
/// TS2DIFF pipeline where it applies and the serial reference decoders
/// otherwise.
pub fn decode_column(
    encoding: Encoding,
    bytes: &[u8],
    opts: &DecodeOptions,
    out: &mut Vec<i64>,
) -> Result<usize> {
    match encoding {
        Encoding::Ts2Diff | Encoding::Ts2DiffOrder2 => {
            let page = ts2diff::parse(bytes).map_err(Error::Encoding)?;
            decode_ts2diff(&page, opts, out)
        }
        Encoding::DeltaRle => {
            let decoded = delta_rle::decode(bytes).map_err(Error::Encoding)?;
            *out = decoded;
            Ok(out.len())
        }
        Encoding::Rle => {
            let decoded = rle::decode(bytes).map_err(Error::Encoding)?;
            *out = decoded;
            Ok(out.len())
        }
        Encoding::Sprintz => {
            let page = sprintz::parse(bytes).map_err(Error::Encoding)?;
            decode_sprintz(&page, opts, out)
        }
        Encoding::StreamVByte => {
            let page = stream_vbyte::parse(bytes).map_err(Error::Encoding)?;
            decode_svb(&page, opts, out)
        }
        other => {
            let decoded = other.decode_i64(bytes).map_err(Error::Encoding)?;
            *out = decoded;
            Ok(out.len())
        }
    }
}

/// Vectorized Sprintz decode: unpack ZigZag deltas, un-ZigZag lane-wise,
/// then the same accumulate pipeline as TS2DIFF.
pub fn decode_sprintz(
    page: &sprintz::SprintzPage<'_>,
    opts: &DecodeOptions,
    out: &mut Vec<i64>,
) -> Result<usize> {
    out.clear();
    if page.count == 0 {
        return Ok(0);
    }
    let n = page.count - 1;
    // Safety: |Δ| ≤ 2^(width−1); cumulative offset must fit i32.
    let safe = page.width <= 32
        && (page.count as u128).saturating_mul(page.delta_magnitude_bound().unsigned_abs() as u128)
            < (1 << 30);
    if !safe {
        let decoded = sprintz::decode_from_parts(page).map_err(Error::Encoding)?;
        *out = decoded;
        return Ok(out.len());
    }
    out.reserve(page.count);
    out.push(page.first);
    if n == 0 {
        return Ok(1);
    }
    let mut zz = vec![0u32; n];
    unpack::unpack_u32(page.payload, 0, page.width, &mut zz);
    // Un-ZigZag in 32-bit lanes: (z >> 1) ^ −(z & 1).
    for z in zz.iter_mut() {
        *z = (*z >> 1) ^ (*z & 1).wrapping_neg();
    }
    let mut rel = vec![0u32; n];
    accumulate_rel(&zz, 0, opts, &mut rel);
    out.resize(1 + n, 0);
    scan::widen_rel_i64(page.first, &rel, &mut out[1..]);
    Ok(out.len())
}

/// Vectorized Stream VByte decode: shuffle-table quad decode of the
/// ZigZag'd deltas (4 values per `pshufb`), un-ZigZag lane-wise, then the
/// same accumulate pipeline as TS2DIFF/Sprintz.
///
/// The 32-bit path is gated on the control-stream-derived
/// [`stream_vbyte::SvbPage::rel_bound`]: it bounds every prefix sum's
/// magnitude without trusting the data stream, so hostile pages cannot
/// push the wrapping 32-bit arithmetic into silent corruption — they fall
/// back to the serial reference decoder instead.
pub fn decode_svb(
    page: &stream_vbyte::SvbPage<'_>,
    opts: &DecodeOptions,
    out: &mut Vec<i64>,
) -> Result<usize> {
    out.clear();
    if page.count == 0 {
        return Ok(0);
    }
    let safe = page.mode == 0 && page.rel_bound < (1 << 30);
    if !safe {
        let decoded = stream_vbyte::decode_from_parts(page).map_err(Error::Encoding)?;
        *out = decoded;
        return Ok(out.len());
    }
    out.reserve(page.count);
    out.push(page.first);
    let n = page.num_deltas();
    if n == 0 {
        return Ok(1);
    }
    let mut zz = vec![0u32; n];
    // The parser validated that `data` holds every declared byte, so the
    // quad kernel may use the full remaining slice as its load window.
    let used = svb::decode_quads(page.controls, page.data, n, &mut zz);
    debug_assert_eq!(used, page.data_len);
    // Un-ZigZag in 32-bit lanes: (z >> 1) ^ −(z & 1).
    for z in zz.iter_mut() {
        *z = (*z >> 1) ^ (*z & 1).wrapping_neg();
    }
    let mut rel = vec![0u32; n];
    accumulate_rel(&zz, 0, opts, &mut rel);
    out.resize(1 + n, 0);
    scan::widen_rel_i64(page.first, &rel, &mut out[1..]);
    Ok(out.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsqp_encoding::ts2diff;

    fn roundtrip(values: &[i64], order: u8, opts: &DecodeOptions) {
        let bytes = ts2diff::encode(values, order);
        let page = ts2diff::parse(&bytes).unwrap();
        let mut out = Vec::new();
        decode_ts2diff(&page, opts, &mut out).unwrap();
        assert_eq!(out, values, "order {order} opts {opts:?}");
    }

    #[test]
    fn vectorized_matches_reference_order1() {
        let values: Vec<i64> = (0..1000).map(|i| 10_000 + i * 3 + (i % 11)).collect();
        for nv in [None, Some(1), Some(2), Some(4), Some(8)] {
            roundtrip(
                &values,
                1,
                &DecodeOptions {
                    n_v: nv,
                    strategy: DeltaStrategy::ChainLayout,
                    ..Default::default()
                },
            );
        }
        roundtrip(
            &values,
            1,
            &DecodeOptions {
                n_v: None,
                strategy: DeltaStrategy::StraightScan,
                ..Default::default()
            },
        );
    }

    #[test]
    fn vectorized_matches_reference_order2() {
        let values: Vec<i64> = (0..777i64)
            .map(|i| 1_000_000 + i * 50 + (i * i) % 23)
            .collect();
        for strategy in [DeltaStrategy::ChainLayout, DeltaStrategy::StraightScan] {
            roundtrip(
                &values,
                2,
                &DecodeOptions {
                    n_v: None,
                    strategy,
                    ..Default::default()
                },
            );
        }
    }

    #[test]
    fn negative_deltas_and_short_pages() {
        for len in [0usize, 1, 2, 7, 8, 9, 63, 64, 65] {
            let values: Vec<i64> = (0..len as i64).map(|i| 500 - i * 7 + (i % 3)).collect();
            roundtrip(&values, 1, &DecodeOptions::default());
        }
    }

    #[test]
    fn wide_values_fall_back_to_serial() {
        let values = vec![i64::MIN, 0, i64::MAX, -1, 1];
        let bytes = ts2diff::encode(&values, 1);
        let page = ts2diff::parse(&bytes).unwrap();
        assert!(!fits_32bit_path(&page, &DecodeOptions::default()));
        let mut out = Vec::new();
        decode_ts2diff(&page, &DecodeOptions::default(), &mut out).unwrap();
        assert_eq!(out, values);
    }

    #[test]
    fn decode_column_dispatches_all_encodings() {
        let values: Vec<i64> = (0..300).map(|i| 70 + (i % 13) - 5).collect();
        for enc in [
            Encoding::Plain,
            Encoding::Ts2Diff,
            Encoding::Ts2DiffOrder2,
            Encoding::Rle,
            Encoding::DeltaRle,
            Encoding::Sprintz,
            Encoding::Rlbe,
            Encoding::Gorilla,
            Encoding::StreamVByte,
        ] {
            let bytes = enc.encode_i64(&values);
            let mut out = Vec::new();
            decode_column(enc, &bytes, &DecodeOptions::default(), &mut out).unwrap();
            assert_eq!(out, values, "{}", enc.name());
        }
    }

    #[test]
    fn svb_vectorized_path_mixed_magnitudes() {
        // Deltas spanning all four control-byte length classes.
        let mut values = vec![5_000_000i64];
        for (i, step) in [3i64, -90, 40_000, -7_000_000, 0, 250]
            .iter()
            .cycle()
            .take(900)
            .enumerate()
        {
            values.push(values[i] + step);
        }
        let bytes = Encoding::StreamVByte.encode_i64(&values);
        let page = stream_vbyte::parse(&bytes).unwrap();
        assert_eq!(page.mode, 0);
        let mut out = Vec::new();
        decode_svb(&page, &DecodeOptions::default(), &mut out).unwrap();
        assert_eq!(out, values);
    }

    #[test]
    fn svb_wide_mode_falls_back_to_serial() {
        let values = vec![0i64, i64::MAX, i64::MIN, 17, -17];
        let bytes = Encoding::StreamVByte.encode_i64(&values);
        let page = stream_vbyte::parse(&bytes).unwrap();
        assert_eq!(page.mode, 1);
        let mut out = Vec::new();
        decode_svb(&page, &DecodeOptions::default(), &mut out).unwrap();
        assert_eq!(out, values);
    }

    #[test]
    fn svb_large_rel_bound_falls_back_to_serial() {
        // Mode 0 (every zigzag delta fits u32) but cumulative magnitudes
        // exceed the 32-bit gate: rel_bound must reject the SIMD path and
        // the serial twin must still decode exactly.
        let values: Vec<i64> = (0..2000i64).map(|i| i * 2_000_000_000).collect();
        let bytes = Encoding::StreamVByte.encode_i64(&values);
        let page = stream_vbyte::parse(&bytes).unwrap();
        assert_eq!(page.mode, 0);
        assert!(page.rel_bound >= (1 << 30));
        let mut out = Vec::new();
        decode_svb(&page, &DecodeOptions::default(), &mut out).unwrap();
        assert_eq!(out, values);
    }

    #[test]
    fn sprintz_vectorized_path() {
        let values: Vec<i64> = (0..500)
            .map(|i| 100 + if i % 2 == 0 { i } else { -i })
            .collect();
        let bytes = Encoding::Sprintz.encode_i64(&values);
        let mut out = Vec::new();
        decode_column(
            Encoding::Sprintz,
            &bytes,
            &DecodeOptions::default(),
            &mut out,
        )
        .unwrap();
        assert_eq!(out, values);
    }
}
