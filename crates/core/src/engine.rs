//! The integrated IoT database facade (paper §VI): storage + SQL +
//! pipeline engine behind one handle.

use etsqp_encoding::Encoding;
use etsqp_storage::store::SeriesStore;

use crate::fused::FuseLevel;
use crate::plan::{execute, PipelineConfig, QueryResult};
use crate::sql;
use crate::Result;

/// Engine-level options (per-database defaults for every query).
#[derive(Debug, Clone, Copy)]
pub struct EngineOptions {
    /// Pipeline configuration (threads, pruning, fusion, vectorization).
    pub pipeline: PipelineConfig,
    /// Points per flushed page.
    pub page_points: usize,
    /// Default timestamp codec for new series.
    pub ts_encoding: Encoding,
    /// Default value codec for new series.
    pub val_encoding: Encoding,
    /// Shard count of the live-ingestion series map (rounded up to a
    /// power of two). More shards = less append contention across series.
    pub ingest_shards: usize,
    /// Optional time-span seal threshold for hot chunks: a series whose
    /// buffered range covers this many time units seals a page even
    /// before reaching `page_points` (bounded staleness for pruning).
    pub seal_interval: Option<i64>,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            pipeline: PipelineConfig::default(),
            page_points: etsqp_storage::series::DEFAULT_PAGE_POINTS,
            ts_encoding: Encoding::Ts2Diff,
            val_encoding: Encoding::Ts2Diff,
            ingest_shards: etsqp_storage::ingest::DEFAULT_SHARDS,
            seal_interval: None,
        }
    }
}

impl EngineOptions {
    /// The full ETSQP configuration (vectorized, fused, pruned).
    pub fn etsqp() -> Self {
        Self::default()
    }

    /// ETSQP without the §V pruning rules (the "ETSQP" bar of Fig. 10;
    /// the default is "ETSQP-prune").
    pub fn etsqp_no_prune() -> Self {
        let mut o = Self::default();
        o.pipeline.prune = false;
        o
    }

    /// The serial baseline: byte-sequential decoding, per-tuple operators,
    /// one thread (the "Serial" bar of Fig. 10 / "IoTDB" of Fig. 13).
    pub fn serial() -> Self {
        let mut o = Self::default();
        o.pipeline.vectorized = false;
        o.pipeline.prune = false;
        o.pipeline.fuse = FuseLevel::None;
        o.pipeline.threads = 1;
        o.pipeline.allow_slicing = false;
        o
    }

    /// Sets the worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.pipeline.threads = threads;
        self
    }

    /// Sets the page size in points.
    pub fn with_page_points(mut self, points: usize) -> Self {
        self.page_points = points;
        self
    }

    /// Sets both column codecs for new series.
    pub fn with_encodings(mut self, ts: Encoding, val: Encoding) -> Self {
        self.ts_encoding = ts;
        self.val_encoding = val;
        self
    }

    /// Selects the job executor (persistent pool vs spawn-per-query).
    pub fn with_scheduler(mut self, scheduler: crate::exec::Scheduler) -> Self {
        self.pipeline.scheduler = scheduler;
        self
    }

    /// Sets the ingest-map shard count (rounded up to a power of two).
    pub fn with_ingest_shards(mut self, shards: usize) -> Self {
        self.ingest_shards = shards;
        self
    }

    /// Sets the hot-chunk time-span seal threshold.
    pub fn with_seal_interval(mut self, interval: i64) -> Self {
        self.seal_interval = Some(interval);
        self
    }
}

/// An embedded IoT time-series database with the ETSQP query engine.
///
/// `IotDb` is `Send + Sync`: wrap it in an `Arc` and query it from any
/// number of OS threads concurrently. All queries share the process-wide
/// persistent worker pool ([`crate::pool`]), so concurrent short queries
/// interleave their page morsels instead of each spawning threads.
pub struct IotDb {
    store: SeriesStore,
    opts: EngineOptions,
}

// Compile-time proof of the concurrent-use contract above.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<IotDb>()
};

impl IotDb {
    /// Creates an empty database.
    pub fn new(opts: EngineOptions) -> Self {
        IotDb {
            store: SeriesStore::with_options(etsqp_storage::store::StoreOptions {
                page_points: opts.page_points,
                shards: opts.ingest_shards,
                seal_interval: opts.seal_interval,
            }),
            opts,
        }
    }

    /// Wraps an existing store (e.g. loaded from a TsFile).
    pub fn with_store(store: SeriesStore, opts: EngineOptions) -> Self {
        IotDb { store, opts }
    }

    /// The underlying page store (shared handle).
    pub fn store(&self) -> &SeriesStore {
        &self.store
    }

    /// Engine options in effect.
    pub fn options(&self) -> &EngineOptions {
        &self.opts
    }

    /// Registers a series with the engine's default codecs.
    pub fn create_series(&self, name: &str) -> Result<()> {
        self.store
            .create_series(name, self.opts.ts_encoding, self.opts.val_encoding);
        Ok(())
    }

    /// Registers a series with explicit codecs.
    pub fn create_series_with(&self, name: &str, ts: Encoding, val: Encoding) -> Result<()> {
        self.store.create_series(name, ts, val);
        Ok(())
    }

    /// Appends a point (timestamps must be strictly increasing).
    pub fn append(&self, series: &str, ts: i64, value: i64) -> Result<()> {
        self.store.append(series, ts, value)?;
        Ok(())
    }

    /// Bulk-appends points.
    pub fn append_all(&self, series: &str, ts: &[i64], values: &[i64]) -> Result<()> {
        self.store.append_all(series, ts, values)?;
        Ok(())
    }

    /// Flushes every series' receive buffer to pages.
    pub fn flush(&self) -> Result<()> {
        for name in self.store.series_names() {
            self.store.flush(&name)?;
        }
        Ok(())
    }

    /// Registers a float-valued series (GorillaFloat / Chimp / Elf value
    /// codec).
    pub fn create_series_f64(&self, name: &str, val: etsqp_encoding::Encoding) -> Result<()> {
        self.store
            .create_series_f64(name, self.opts.ts_encoding, val);
        Ok(())
    }

    /// Appends a float point (timestamps must be strictly increasing).
    pub fn append_f64(&self, series: &str, ts: i64, value: f64) -> Result<()> {
        self.store.append_f64(series, ts, value)?;
        Ok(())
    }

    /// Aggregates a float series over optional time/value ranges.
    pub fn aggregate_f64(
        &self,
        series: &str,
        trange: Option<crate::expr::TimeRange>,
        vrange: Option<crate::float::FloatRange>,
        func: crate::expr::AggFunc,
    ) -> Result<Option<f64>> {
        let (agg, _) =
            crate::float::aggregate_f64(&self.store, series, trange, vrange, &self.opts.pipeline)?;
        Ok(agg.finish(func))
    }

    /// Scans a float series' qualifying rows.
    pub fn scan_f64(
        &self,
        series: &str,
        trange: Option<crate::expr::TimeRange>,
    ) -> Result<(Vec<i64>, Vec<f64>)> {
        crate::float::scan_f64(&self.store, series, trange, &self.opts.pipeline)
    }

    /// Parses and executes one SQL statement. An `EXPLAIN <query>`
    /// statement compiles the query's physical pipeline and returns its
    /// rendering in [`QueryResult::explain`] instead of rows.
    pub fn query(&self, sql_text: &str) -> Result<QueryResult> {
        self.query_ctl(sql_text, &crate::cancel::CancellationToken::none())
    }

    /// [`IotDb::query`] with a per-query deadline: past `timeout` the
    /// query stops at the next morsel boundary and returns
    /// [`crate::Error::Timeout`]. The worker pool stays fully usable.
    pub fn query_with_timeout(
        &self,
        sql_text: &str,
        timeout: std::time::Duration,
    ) -> Result<QueryResult> {
        self.query_ctl(
            sql_text,
            &crate::cancel::CancellationToken::with_timeout(timeout),
        )
    }

    /// [`IotDb::query`] under a caller-held [`CancellationToken`]:
    /// calling [`CancellationToken::cancel`] from another thread stops
    /// the query within one morsel with [`crate::Error::Cancelled`].
    ///
    /// [`CancellationToken`]: crate::cancel::CancellationToken
    /// [`CancellationToken::cancel`]: crate::cancel::CancellationToken::cancel
    pub fn query_ctl(
        &self,
        sql_text: &str,
        ctl: &crate::cancel::CancellationToken,
    ) -> Result<QueryResult> {
        match sql::parse_statement(sql_text)? {
            sql::Statement::Query(plan) => {
                crate::plan::execute_ctl(&plan, &self.store, &self.opts.pipeline, ctl)
            }
            sql::Statement::Explain(plan) => {
                let start = std::time::Instant::now();
                let text = crate::physical::pipe::explain(&plan, &self.store, &self.opts.pipeline)?;
                Ok(QueryResult {
                    columns: vec!["plan".into()],
                    rows: Vec::new(),
                    stats: crate::exec::ExecStats::default().snapshot(),
                    elapsed: start.elapsed(),
                    explain: Some(text),
                })
            }
        }
    }

    /// Compiles `sql_text`'s query under the engine configuration and
    /// returns the rendered physical pipeline (the `EXPLAIN` text).
    pub fn explain(&self, sql_text: &str) -> Result<String> {
        let plan = match sql::parse_statement(sql_text)? {
            sql::Statement::Query(plan) | sql::Statement::Explain(plan) => plan,
        };
        crate::physical::pipe::explain(&plan, &self.store, &self.opts.pipeline)
    }

    /// Executes a pre-built logical plan.
    pub fn execute(&self, plan: &crate::expr::Plan) -> Result<QueryResult> {
        execute(plan, &self.store, &self.opts.pipeline)
    }

    /// Executes a plan under a one-off pipeline configuration.
    pub fn execute_with(
        &self,
        plan: &crate::expr::Plan,
        cfg: &PipelineConfig,
    ) -> Result<QueryResult> {
        execute(plan, &self.store, cfg)
    }

    /// Executes a plan under a one-off configuration and a cancellation
    /// token.
    pub fn execute_ctl(
        &self,
        plan: &crate::expr::Plan,
        cfg: &PipelineConfig,
        ctl: &crate::cancel::CancellationToken,
    ) -> Result<QueryResult> {
        crate::plan::execute_ctl(plan, &self.store, cfg, ctl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Value;

    fn seeded_db(opts: EngineOptions) -> IotDb {
        let db = IotDb::new(opts);
        db.create_series("velocity").unwrap();
        let ts: Vec<i64> = (0..10_000).map(|i| i * 1000).collect();
        let vals: Vec<i64> = (0..10_000).map(|i| 60 + (i % 25)).collect();
        db.append_all("velocity", &ts, &vals).unwrap();
        db.flush().unwrap();
        db
    }

    #[test]
    fn end_to_end_sql_avg() {
        let db = seeded_db(EngineOptions::default());
        let r = db
            .query("SELECT AVG(velocity) FROM velocity WHERE time >= 0 AND time <= 9999000")
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        let Value::Float(avg) = r.rows[0][0] else {
            panic!("{:?}", r.rows)
        };
        let want = (0..10_000).map(|i| 60 + (i % 25)).sum::<i64>() as f64 / 10_000.0;
        assert!((avg - want).abs() < 1e-9);
    }

    #[test]
    fn sliding_window_sql() {
        let db = seeded_db(EngineOptions::default());
        let r = db
            .query("SELECT SUM(velocity) FROM velocity SW(0, 1000000)")
            .unwrap();
        // 10_000 points over [0, 9_999_000] in 1e6-wide windows → 10 rows.
        assert_eq!(r.rows.len(), 10);
        let total: i64 = r
            .rows
            .iter()
            .map(|row| match row[1] {
                Value::Int(v) => v,
                _ => panic!(),
            })
            .sum();
        let want: i64 = (0..10_000).map(|i| 60 + (i % 25)).sum();
        assert_eq!(total, want);
    }

    #[test]
    fn engine_variants_agree() {
        let q = "SELECT SUM(velocity) FROM (SELECT * FROM velocity WHERE velocity > 70)";
        let fast = seeded_db(EngineOptions::etsqp()).query(q).unwrap();
        let noprune = seeded_db(EngineOptions::etsqp_no_prune()).query(q).unwrap();
        let serial = seeded_db(EngineOptions::serial()).query(q).unwrap();
        assert_eq!(fast.rows, serial.rows);
        assert_eq!(noprune.rows, serial.rows);
    }

    #[test]
    fn join_queries_via_sql() {
        let db = IotDb::new(EngineOptions::default());
        db.create_series("ts1").unwrap();
        db.create_series("ts2").unwrap();
        for i in 0..1000i64 {
            db.append("ts1", i * 2, i).unwrap();
            db.append("ts2", i * 3, i * 10).unwrap();
        }
        db.flush().unwrap();
        let union = db
            .query("SELECT * FROM ts1 UNION ts2 ORDER BY TIME")
            .unwrap();
        assert_eq!(union.rows.len(), 2000);
        let join = db.query("SELECT * FROM ts1, ts2").unwrap();
        assert!(!join.rows.is_empty());
        let jexpr = db.query("SELECT ts1.A + ts2.A FROM ts1, ts2").unwrap();
        assert_eq!(join.rows.len(), jexpr.rows.len());
    }

    #[test]
    fn out_of_order_append_rejected() {
        let db = IotDb::new(EngineOptions::default());
        db.create_series("s").unwrap();
        db.append("s", 10, 1).unwrap();
        assert!(db.append("s", 10, 2).is_err());
    }

    #[test]
    fn unknown_series_query_errors() {
        let db = IotDb::new(EngineOptions::default());
        assert!(db.query("SELECT SUM(A) FROM nope").is_err());
    }
}
