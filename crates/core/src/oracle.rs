//! Differential-testing oracle: a deliberately naive reference executor.
//!
//! Every fast path in this crate — vectorized unpacking, operator fusion
//! (§IV), pruning (§V), slicing and multi-threaded scheduling (§III-C) —
//! is an *optimization* of one simple semantics: decode everything,
//! filter tuple by tuple, aggregate with exact arithmetic. This module
//! implements that semantics directly, with none of the optimizations:
//!
//! * every page is fully decoded with the serial reference decoders
//!   ([`Page::decode`]); no page pruning, no suffix pruning, no fusion,
//!   no slicing, no threads;
//! * filters are evaluated per tuple, in time order;
//! * aggregates accumulate in `i128` ([`AggState`] / [`PairMoments`]),
//!   so no intermediate result ever wraps.
//!
//! The only code shared with the engine is the *output contract* —
//! [`finalize`]'s `Null`/`Int`/`Float` widening rules and the column
//! naming — because that is the surface being compared, not the
//! computation behind it. `tests/differential.rs` (repo root) sweeps
//! every [`PipelineConfig`](crate::plan::PipelineConfig) variant × codec
//! × dataset × query against this oracle.

use std::collections::BTreeMap;

use etsqp_simd::agg::AggState;
use etsqp_storage::store::SeriesStore;

use crate::expr::{AggFunc, BinOp, CmpOp, Plan, Predicate, SlidingWindow};
use crate::plan::{finalize, finalize_pair, flatten_scan, PairMoments, Value};
use crate::Result;

/// Evaluates `plan` naively. Returns `(columns, rows)` shaped exactly
/// like [`crate::plan::execute`]'s `QueryResult` (same column names, same
/// row order, same `Value` widening), so results compare cell-for-cell.
pub fn execute(plan: &Plan, store: &SeriesStore) -> Result<(Vec<String>, Vec<Vec<Value>>)> {
    match plan {
        Plan::Aggregate { input, func } => {
            let (series, pred) = flatten_scan(input)?;
            let (ts, vals) = scan_tuples(store, &series, &pred)?;
            let col = format!("{}({series})", func.name());
            Ok((vec![col], vec![vec![exact_agg(*func, &ts, &vals)]]))
        }
        Plan::WindowAggregate {
            input,
            window,
            func,
        } => {
            let (series, pred) = flatten_scan(input)?;
            let (ts, vals) = scan_tuples(store, &series, &pred)?;
            let per_window = window_tuples(&ts, &vals, window);
            let col = format!("{}({series})", func.name());
            let rows = per_window
                .into_iter()
                .map(|(k, (wts, wvals))| {
                    vec![
                        Value::Int(window.t_min + k as i64 * window.dt),
                        exact_agg(*func, &wts, &wvals),
                    ]
                })
                .collect();
            Ok((vec!["window_start".into(), col], rows))
        }
        Plan::Scan { .. } | Plan::Filter { .. } => {
            let (series, pred) = flatten_scan(plan)?;
            let (ts, vals) = scan_tuples(store, &series, &pred)?;
            let rows = ts
                .into_iter()
                .zip(vals)
                .map(|(t, v)| vec![Value::Int(t), Value::Int(v)])
                .collect();
            Ok((vec!["time".into(), series], rows))
        }
        Plan::Union { left, right } => {
            let (lt, lv, _, rt, rv, _) = both_sides(store, left, right)?;
            Ok((
                vec!["time".into(), "value".into()],
                union_rows(&lt, &lv, &rt, &rv),
            ))
        }
        Plan::Join { left, right, on } => {
            let (lt, lv, ls, rt, rv, rs) = both_sides(store, left, right)?;
            let rows = join_rows(&lt, &lv, &rt, &rv, None, *on);
            Ok((vec!["time".into(), ls, rs], rows))
        }
        Plan::JoinExpr { left, right, op } => {
            let (lt, lv, ls, rt, rv, rs) = both_sides(store, left, right)?;
            let rows = join_rows(&lt, &lv, &rt, &rv, Some(*op), None);
            Ok((vec!["time".into(), format!("{ls}.A op {rs}.A")], rows))
        }
        Plan::JoinAggregate { left, right, func } => {
            let (lt, lv, ls, rt, rv, rs) = both_sides(store, left, right)?;
            let mut m = PairMoments::default();
            let (mut i, mut j) = (0usize, 0usize);
            while i < lt.len() && j < rt.len() {
                match lt[i].cmp(&rt[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        m.push(lv[i], rv[j]);
                        i += 1;
                        j += 1;
                    }
                }
            }
            let col = format!("{}({ls}, {rs})", func.name());
            Ok((vec![col], vec![vec![finalize_pair(*func, m)]]))
        }
    }
}

/// Whether one tuple passes the conjunctive predicate.
fn tuple_qualifies(pred: &Predicate, t: i64, v: i64) -> bool {
    if let Some(tr) = pred.time {
        if !tr.contains(t) {
            return false;
        }
    }
    if let Some((lo, hi)) = pred.value {
        if v < lo || v > hi {
            return false;
        }
    }
    true
}

/// Decodes every sealed page of `series` with the serial reference
/// decoders, then walks the hot chunk's buffered columns — both halves
/// of one atomic [`SeriesStore::snapshot`], so the oracle sees exactly
/// the prefix of the append stream a concurrently planned engine query
/// would. Tuples pass `pred` one at a time.
fn scan_tuples(
    store: &SeriesStore,
    series: &str,
    pred: &Predicate,
) -> Result<(Vec<i64>, Vec<i64>)> {
    let mut out_ts = Vec::new();
    let mut out_vals = Vec::new();
    let snap = store.snapshot(series)?;
    for page in snap.pages {
        let (ts, vals) = page.decode()?;
        for (&t, &v) in ts.iter().zip(&vals) {
            if tuple_qualifies(pred, t, v) {
                out_ts.push(t);
                out_vals.push(v);
            }
        }
    }
    if let Some(etsqp_storage::ingest::HotSnapshot::Int(hot)) = snap.hot {
        for (&t, &v) in hot.ts.iter().zip(hot.vals.iter()) {
            if tuple_qualifies(pred, t, v) {
                out_ts.push(t);
                out_vals.push(v);
            }
        }
    }
    Ok((out_ts, out_vals))
}

/// The exact (reference) aggregate over time-ordered qualifying tuples.
///
/// * Quantiles use the **nearest-rank** definition over a full sorted
///   copy — `sorted[round(q·(n−1))]`. The engine's t-digest answer is
///   *not* expected to match this bit-for-bit; the differential harness
///   compares by rank within [`crate::partial::TDigest::rank_error_bound`].
/// * `RATE`/`DELTA` use the same `i128` first/last formulas as
///   [`crate::plan::finalize_partial`], so they compare bit-exact.
/// * Everything else accumulates through [`AggState`] and shares
///   [`finalize`]'s widening rules with the engine.
pub fn exact_agg(func: AggFunc, ts: &[i64], vals: &[i64]) -> Value {
    if vals.is_empty() {
        return Value::Null;
    }
    match func {
        AggFunc::P50 | AggFunc::P95 | AggFunc::P99 => {
            let q = func.quantile().unwrap_or(0.5);
            let mut sorted = vals.to_vec();
            sorted.sort_unstable();
            let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
            Value::Float(sorted[idx.min(sorted.len() - 1)] as f64)
        }
        AggFunc::Rate => {
            let (ft, lt) = (ts[0], ts[ts.len() - 1]);
            if ft == lt {
                return Value::Null; // fewer than two distinct instants
            }
            let dv = vals[vals.len() - 1] as i128 - vals[0] as i128;
            let dt = lt as i128 - ft as i128;
            Value::Float(dv as f64 / dt as f64)
        }
        AggFunc::Delta => {
            let dv = vals[vals.len() - 1] as i128 - vals[0] as i128;
            i64::try_from(dv)
                .map(Value::Int)
                .unwrap_or(Value::Float(dv as f64))
        }
        _ => {
            let mut state = AggState::new();
            for &v in vals {
                state.push(v);
            }
            finalize(func, &state)
        }
    }
}

/// Buckets qualifying tuples into per-window tuple lists, ascending by
/// window index; only non-empty windows appear (matching the engine
/// contract). Tuples stay in time order inside each bucket, which the
/// order-sensitive reference aggregates (FIRST/LAST/RATE/DELTA) rely on.
#[allow(clippy::type_complexity)]
fn window_tuples(
    ts: &[i64],
    vals: &[i64],
    w: &SlidingWindow,
) -> Vec<(usize, (Vec<i64>, Vec<i64>))> {
    let mut windows: BTreeMap<usize, (Vec<i64>, Vec<i64>)> = BTreeMap::new();
    for (&t, &v) in ts.iter().zip(vals) {
        if let Some(k) = w.window_of(t) {
            let bucket = windows.entry(k).or_default();
            bucket.0.push(t);
            bucket.1.push(v);
        }
    }
    windows.into_iter().collect()
}

/// Flattens + scans both inputs of a binary plan node.
#[allow(clippy::type_complexity)]
fn both_sides(
    store: &SeriesStore,
    left: &Plan,
    right: &Plan,
) -> Result<(Vec<i64>, Vec<i64>, String, Vec<i64>, Vec<i64>, String)> {
    let (ls, lp) = flatten_scan(left)?;
    let (rs, rp) = flatten_scan(right)?;
    let (lt, lv) = scan_tuples(store, &ls, &lp)?;
    let (rt, rv) = scan_tuples(store, &rs, &rp)?;
    Ok((lt, lv, ls, rt, rv, rs))
}

/// Time-ordered two-way merge; ties emit the left tuple first.
fn union_rows(lt: &[i64], lv: &[i64], rt: &[i64], rv: &[i64]) -> Vec<Vec<Value>> {
    let mut rows = Vec::with_capacity(lt.len() + rt.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < lt.len() || j < rt.len() {
        let take_left = match (lt.get(i), rt.get(j)) {
            (Some(&a), Some(&b)) => a <= b,
            (Some(_), None) => true,
            _ => false,
        };
        if take_left {
            rows.push(vec![Value::Int(lt[i]), Value::Int(lv[i])]);
            i += 1;
        } else {
            rows.push(vec![Value::Int(rt[j]), Value::Int(rv[j])]);
            j += 1;
        }
    }
    rows
}

/// Natural (equal-timestamp) merge join. With `op`, emits
/// `(t, op(a, b))`; without, `(t, a, b)` filtered by the optional `on`.
fn join_rows(
    lt: &[i64],
    lv: &[i64],
    rt: &[i64],
    rv: &[i64],
    op: Option<BinOp>,
    on: Option<CmpOp>,
) -> Vec<Vec<Value>> {
    let mut rows = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < lt.len() && j < rt.len() {
        match lt[i].cmp(&rt[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                if on.is_none_or(|c| c.eval(lv[i], rv[j])) {
                    match op {
                        Some(op) => {
                            rows.push(vec![Value::Int(lt[i]), Value::Int(op.apply(lv[i], rv[j]))])
                        }
                        None => rows.push(vec![
                            Value::Int(lt[i]),
                            Value::Int(lv[i]),
                            Value::Int(rv[j]),
                        ]),
                    }
                }
                i += 1;
                j += 1;
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{AggFunc, TimeRange};
    use crate::plan::{execute as engine_execute, PipelineConfig};
    use etsqp_encoding::Encoding;

    fn store_with(series: &str, ts: &[i64], vals: &[i64]) -> SeriesStore {
        let store = SeriesStore::new(128);
        store.create_series(series, Encoding::Ts2Diff, Encoding::Ts2Diff);
        store.append_all(series, ts, vals).unwrap();
        store.flush(series).unwrap();
        store
    }

    #[test]
    fn oracle_matches_engine_on_simple_aggregate() {
        let ts: Vec<i64> = (0..500).map(|i| i * 10).collect();
        let vals: Vec<i64> = (0..500).map(|i| 40 + i % 13).collect();
        let store = store_with("s", &ts, &vals);
        let plan = Plan::scan("s")
            .filter(Predicate {
                time: Some(TimeRange { lo: 100, hi: 4200 }),
                value: Some((41, 50)),
            })
            .aggregate(AggFunc::Sum);
        let (ocols, orows) = execute(&plan, &store).unwrap();
        let got = engine_execute(&plan, &store, &PipelineConfig::default()).unwrap();
        assert_eq!(ocols, got.columns);
        assert_eq!(orows, got.rows);
    }

    #[test]
    fn oracle_aggregate_is_exact_in_i128() {
        // Two values whose sum exceeds i64: the oracle must widen, not
        // wrap (the engine's §VI-C contract).
        let store = store_with("w", &[0, 10], &[i64::MAX - 1, i64::MAX - 1]);
        let plan = Plan::scan("w").aggregate(AggFunc::Sum);
        let (_, rows) = execute(&plan, &store).unwrap();
        let want = (i64::MAX - 1) as f64 * 2.0;
        match rows[0][0] {
            Value::Float(f) => assert_eq!(f, want),
            other => panic!("expected widened Float, got {other:?}"),
        }
    }

    #[test]
    fn oracle_rejects_non_scan_aggregate_input() {
        let store = store_with("s", &[0], &[1]);
        let bad = Plan::Aggregate {
            input: Box::new(Plan::Union {
                left: Box::new(Plan::scan("s")),
                right: Box::new(Plan::scan("s")),
            }),
            func: AggFunc::Sum,
        };
        assert!(execute(&bad, &store).is_err());
    }

    #[test]
    fn oracle_window_rows_only_for_nonempty_windows() {
        // Gap between t=0..40 and t=1000..1040: middle windows are absent.
        let ts = [0, 10, 20, 30, 40, 1000, 1010, 1020, 1030, 1040];
        let vals = [1i64, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        let store = store_with("g", &ts, &vals);
        let plan = Plan::scan("g").window(0, 100, AggFunc::Count);
        let (_, rows) = execute(&plan, &store).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], vec![Value::Int(0), Value::Int(5)]);
        assert_eq!(rows[1], vec![Value::Int(1000), Value::Int(5)]);
    }
}
