//! Logical query plans — the IoT expression language of Definitions 1–2
//! (filters, aggregations, sliding windows, concatenation, natural join),
//! the input to the `Pipe` pipeline generator (Algorithm 2).

/// Aggregation functions (`f` in `f(e, mask)` / `G_sw:f`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Σ of valid values.
    Sum,
    /// Arithmetic mean (algebraic: SUM/COUNT).
    Avg,
    /// Number of valid tuples.
    Count,
    /// Minimum valid value.
    Min,
    /// Maximum valid value.
    Max,
    /// Population variance (algebraic: needs Σx²).
    Variance,
    /// First qualifying value in time order (IoT FIRST_VALUE).
    First,
    /// Last qualifying value in time order (IoT LAST_VALUE).
    Last,
    /// Median (50th percentile), estimated by a t-digest sketch.
    P50,
    /// 95th percentile, estimated by a t-digest sketch.
    P95,
    /// 99th percentile, estimated by a t-digest sketch.
    P99,
    /// `(last − first) / (last_ts − first_ts)` — per-time-unit rate of
    /// change between the first and last qualifying tuples.
    Rate,
    /// `last − first` — value change between the first and last
    /// qualifying tuples.
    Delta,
}

impl AggFunc {
    /// SQL spelling.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Count => "COUNT",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Variance => "VARIANCE",
            AggFunc::First => "FIRST",
            AggFunc::Last => "LAST",
            AggFunc::P50 => "P50",
            AggFunc::P95 => "P95",
            AggFunc::P99 => "P99",
            AggFunc::Rate => "RATE",
            AggFunc::Delta => "DELTA",
        }
    }

    /// The quantile level of a percentile aggregate, if this is one.
    pub fn quantile(self) -> Option<f64> {
        match self {
            AggFunc::P50 => Some(0.5),
            AggFunc::P95 => Some(0.95),
            AggFunc::P99 => Some(0.99),
            _ => None,
        }
    }

    /// Whether finalization needs a t-digest sketch of the values.
    pub fn needs_digest(self) -> bool {
        self.quantile().is_some()
    }

    /// Whether finalization needs the first/last qualifying timestamps
    /// (rate/delta read the time axis, not just the values).
    pub fn needs_ts(self) -> bool {
        matches!(self, AggFunc::Rate | AggFunc::Delta)
    }

    /// Aggregates computable only from tuple-level partials: they never
    /// take the §IV closed-form fused path and are never sliced — every
    /// kept page decodes (with its timestamps) into a
    /// [`crate::partial::PartialState`].
    pub fn partial_only(self) -> bool {
        self.needs_digest() || self.needs_ts()
    }
}

/// An inclusive time range `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeRange {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
}

impl TimeRange {
    /// The full time domain.
    pub fn all() -> Self {
        TimeRange {
            lo: i64::MIN,
            hi: i64::MAX,
        }
    }

    /// Intersection of two ranges; empty ranges have `lo > hi`.
    pub fn intersect(&self, other: &TimeRange) -> TimeRange {
        TimeRange {
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
        }
    }

    /// Whether the range contains no instants.
    pub fn is_empty(&self) -> bool {
        self.lo > self.hi
    }

    /// Whether `t` lies inside.
    pub fn contains(&self, t: i64) -> bool {
        t >= self.lo && t <= self.hi
    }
}

/// Conjunctive predicates over one series (single-column: time or value).
///
/// Bounds are **inclusive**; strict SQL comparisons are normalized by the
/// parser (`A > a` ⇒ `lo = a + 1` on the integer domain).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Predicate {
    /// Optional time-range conjunct.
    pub time: Option<TimeRange>,
    /// Optional value-range conjunct `[lo, hi]`.
    pub value: Option<(i64, i64)>,
}

impl Predicate {
    /// A predicate with only a time conjunct.
    pub fn time(lo: i64, hi: i64) -> Self {
        Predicate {
            time: Some(TimeRange { lo, hi }),
            value: None,
        }
    }

    /// A predicate with only a value conjunct.
    pub fn value(lo: i64, hi: i64) -> Self {
        Predicate {
            time: None,
            value: Some((lo, hi)),
        }
    }

    /// Conjunction of two predicates.
    pub fn and(&self, other: &Predicate) -> Predicate {
        Predicate {
            time: match (self.time, other.time) {
                (Some(a), Some(b)) => Some(a.intersect(&b)),
                (a, b) => a.or(b),
            },
            value: match (self.value, other.value) {
                (Some((al, ah)), Some((bl, bh))) => Some((al.max(bl), ah.min(bh))),
                (a, b) => a.or(b),
            },
        }
    }

    /// True when neither conjunct is present.
    pub fn is_trivial(&self) -> bool {
        self.time.is_none() && self.value.is_none()
    }
}

/// A sliding-window description `sw(T_min, ΔT)`: window `k` covers
/// `[T_min + k·ΔT, T_min + (k+1)·ΔT)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlidingWindow {
    /// Start of window 0.
    pub t_min: i64,
    /// Window width (must be positive).
    pub dt: i64,
}

impl SlidingWindow {
    /// The window index containing `t`, if `t ≥ t_min`.
    pub fn window_of(&self, t: i64) -> Option<usize> {
        (t >= self.t_min).then(|| ((t - self.t_min) / self.dt) as usize)
    }

    /// Inclusive time range of window `k` (`[start, start + dt − 1]`).
    pub fn range(&self, k: usize) -> TimeRange {
        let start = self.t_min + k as i64 * self.dt;
        TimeRange {
            lo: start,
            hi: start + self.dt - 1,
        }
    }
}

/// Comparison operators for inter-column predicates (Algorithm 2 line 8:
/// filters that need both columns decoded, applied to the joined vectors).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `a < b`
    Lt,
    /// `a <= b`
    Le,
    /// `a > b`
    Gt,
    /// `a >= b`
    Ge,
    /// `a = b`
    Eq,
}

impl CmpOp {
    /// Evaluates the comparison.
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
            CmpOp::Eq => a == b,
        }
    }
}

/// Element-wise binary operators for inter-column expressions (Q4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `a + b`
    Add,
    /// `a - b`
    Sub,
    /// `a * b`
    Mul,
}

impl BinOp {
    /// Applies the operator with wrapping semantics.
    pub fn apply(self, a: i64, b: i64) -> i64 {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
        }
    }
}

/// Two-series (paired) aggregation functions computed over naturally
/// joined tuples — the §IV extension to `Σ AᵢBᵢ`-style aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairAggFunc {
    /// `Σ AᵢBᵢ` over matching timestamps.
    Dot,
    /// Population covariance of the matched pairs.
    Covariance,
    /// Pearson correlation of the matched pairs.
    Correlation,
}

impl PairAggFunc {
    /// SQL spelling.
    pub fn name(self) -> &'static str {
        match self {
            PairAggFunc::Dot => "DOT",
            PairAggFunc::Covariance => "COV",
            PairAggFunc::Correlation => "CORR",
        }
    }
}

/// Logical query plans — the `e` of Algorithm 2.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Scan one series.
    Scan {
        /// Series name.
        series: String,
    },
    /// `σ_θ(e)` with a single-column conjunctive predicate.
    Filter {
        /// Input plan.
        input: Box<Plan>,
        /// The predicate.
        pred: Predicate,
    },
    /// Whole-input aggregation `f(e, mask)`.
    Aggregate {
        /// Input plan.
        input: Box<Plan>,
        /// Aggregation function.
        func: AggFunc,
    },
    /// `G_{sw(T_min, ΔT): f}(e)` — one aggregate row per window instance.
    WindowAggregate {
        /// Input plan.
        input: Box<Plan>,
        /// Window description.
        window: SlidingWindow,
        /// Aggregation function.
        func: AggFunc,
    },
    /// Natural join on timestamps followed by an element-wise expression
    /// over the two value columns (Q4: `ts1.A + ts2.A`).
    JoinExpr {
        /// Left series plan.
        left: Box<Plan>,
        /// Right series plan.
        right: Box<Plan>,
        /// The element-wise operator.
        op: BinOp,
    },
    /// Series concatenation / merge ordered by time (Q5: `UNION … ORDER
    /// BY TIME`).
    Union {
        /// Left series plan.
        left: Box<Plan>,
        /// Right series plan.
        right: Box<Plan>,
    },
    /// Natural join emitting `(t, a_left, a_right)` tuples (Q6),
    /// optionally restricted by an inter-column predicate
    /// `left.A <op> right.A` (Algorithm 2 Eq. 3: applied to the decoded
    /// vectors after the timestamp join).
    Join {
        /// Left series plan.
        left: Box<Plan>,
        /// Right series plan.
        right: Box<Plan>,
        /// Inter-column predicate between the joined values.
        on: Option<CmpOp>,
    },
    /// Paired aggregation over the natural join (§IV: `Σ AᵢBᵢ`,
    /// covariance, correlation).
    JoinAggregate {
        /// Left series plan.
        left: Box<Plan>,
        /// Right series plan.
        right: Box<Plan>,
        /// The paired aggregate.
        func: PairAggFunc,
    },
}

impl Plan {
    /// Convenience: scan of a named series.
    pub fn scan(series: &str) -> Plan {
        Plan::Scan {
            series: series.to_string(),
        }
    }

    /// Pushes `pred` onto this plan.
    pub fn filter(self, pred: Predicate) -> Plan {
        Plan::Filter {
            input: Box::new(self),
            pred,
        }
    }

    /// Wraps this plan in a whole-input aggregate.
    pub fn aggregate(self, func: AggFunc) -> Plan {
        Plan::Aggregate {
            input: Box::new(self),
            func,
        }
    }

    /// Wraps this plan in a sliding-window aggregate.
    pub fn window(self, t_min: i64, dt: i64, func: AggFunc) -> Plan {
        Plan::WindowAggregate {
            input: Box::new(self),
            window: SlidingWindow { t_min, dt },
            func,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_range_algebra() {
        let a = TimeRange { lo: 0, hi: 100 };
        let b = TimeRange { lo: 50, hi: 200 };
        assert_eq!(a.intersect(&b), TimeRange { lo: 50, hi: 100 });
        assert!(!a.intersect(&b).is_empty());
        let c = TimeRange { lo: 150, hi: 200 };
        assert!(a.intersect(&c).is_empty());
        assert!(TimeRange::all().contains(i64::MIN));
    }

    #[test]
    fn predicate_conjunction() {
        let p = Predicate::time(0, 100).and(&Predicate::value(5, 50));
        assert_eq!(p.time, Some(TimeRange { lo: 0, hi: 100 }));
        assert_eq!(p.value, Some((5, 50)));
        let q = p.and(&Predicate::time(50, 200));
        assert_eq!(q.time, Some(TimeRange { lo: 50, hi: 100 }));
    }

    #[test]
    fn sliding_window_indexing() {
        let sw = SlidingWindow { t_min: 100, dt: 50 };
        assert_eq!(sw.window_of(100), Some(0));
        assert_eq!(sw.window_of(149), Some(0));
        assert_eq!(sw.window_of(150), Some(1));
        assert_eq!(sw.window_of(99), None);
        assert_eq!(sw.range(2), TimeRange { lo: 200, hi: 249 });
    }

    #[test]
    fn binop_semantics() {
        assert_eq!(BinOp::Add.apply(2, 3), 5);
        assert_eq!(BinOp::Sub.apply(2, 3), -1);
        assert_eq!(BinOp::Mul.apply(i64::MAX, 2), -2); // wrapping
    }

    #[test]
    fn plan_builders_compose() {
        let p = Plan::scan("velocity")
            .filter(Predicate::time(0, 10))
            .aggregate(AggFunc::Avg);
        match p {
            Plan::Aggregate { input, func } => {
                assert_eq!(func, AggFunc::Avg);
                assert!(matches!(*input, Plan::Filter { .. }));
            }
            _ => panic!("wrong shape"),
        }
    }
}
