//! The logical plan layer: engine configuration, result types, and the
//! scalar finalizers shared by the engine and the oracle.
//!
//! Execution itself lives in [`crate::physical`]: [`execute`] compiles
//! the logical [`Plan`] with the Algorithm 2 generator
//! ([`crate::physical::pipe::compile`]) into an explicit pipeline DAG —
//! per-page §V prune verdicts, §IV fusion strategies, §III-C morsel
//! shapes and Figure 9 merge partitions, all as inspectable data — and
//! hands that DAG to the pipeline driver. `EXPLAIN` renders the same
//! compiled artifact, so the textual plan is the executed plan.

use std::time::Instant;

use etsqp_simd::agg::AggState;
use etsqp_storage::store::SeriesStore;

use crate::decode::DecodeOptions;
use crate::exec::{ExecStats, Scheduler, StatsSnapshot};
use crate::expr::{AggFunc, PairAggFunc, Plan, Predicate};
use crate::fused::FuseLevel;
use crate::partial::PartialState;
use crate::physical::{driver, pipe};
use crate::{Error, Result};

/// Configuration of the pipeline engine — the knobs the evaluation varies.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Worker threads (core-level parallelism, §III-C).
    pub threads: usize,
    /// Enable the §V pruning rules (ETSQP-prune vs ETSQP).
    pub prune: bool,
    /// Operator-fusion level (§IV / Fig. 14(a) ablation).
    pub fuse: FuseLevel,
    /// Use the vectorized decoders; `false` is the byte-serial engine
    /// ("IoTDB" in Fig. 13, "Serial" in Fig. 10).
    pub vectorized: bool,
    /// Vectorized-decoder tuning (n_v, delta strategy).
    pub decode: DecodeOptions,
    /// Allow splitting pages into slices when pages < threads.
    pub allow_slicing: bool,
    /// Byte budget for concurrently materialized decode buffers (paper
    /// §VI-C, gradual page loading); `None` = unlimited.
    pub decode_budget_bytes: Option<u64>,
    /// Executor dispatching the page/slice jobs: the persistent
    /// work-stealing pool (default) or the spawn-per-query baseline.
    pub scheduler: Scheduler,
    /// Serve/store whole-page partial aggregate states through the
    /// process-global [`crate::partial::PartialCache`] (content-
    /// addressed by page checksum + header statistics + function).
    /// `EXPLAIN` renders the static eligibility as `[cacheable]`;
    /// [`StatsSnapshot::cache_hits`]/[`StatsSnapshot::cache_misses`]
    /// count the live traffic.
    pub partial_cache: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            prune: true,
            fuse: FuseLevel::DeltaRepeat,
            vectorized: true,
            decode: DecodeOptions::default(),
            allow_slicing: true,
            decode_budget_bytes: None,
            scheduler: Scheduler::Pool,
            partial_cache: true,
        }
    }
}

/// One result cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Exact integer.
    Int(i64),
    /// Floating-point (AVG, VARIANCE, or an overflowing SUM widened per
    /// §VI-C).
    Float(f64),
    /// No qualifying tuples.
    Null,
}

impl Value {
    /// The value as f64 (NaN for NULL) — convenient in tests/benches.
    pub fn as_f64(&self) -> f64 {
        match self {
            Value::Int(v) => *v as f64,
            Value::Float(v) => *v,
            Value::Null => f64::NAN,
        }
    }
}

/// The answer to a query plus its execution statistics.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Column names.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
    /// Stage/pruning counters collected during execution.
    pub stats: StatsSnapshot,
    /// Wall-clock execution time.
    pub elapsed: std::time::Duration,
    /// For `EXPLAIN` statements: the rendered physical pipeline instead
    /// of result rows.
    pub explain: Option<String>,
}

/// Executes a logical plan against a store: Algorithm 2 compilation
/// ([`pipe::compile`]) followed by the pipeline driver.
pub fn execute(plan: &Plan, store: &SeriesStore, cfg: &PipelineConfig) -> Result<QueryResult> {
    execute_ctl(plan, store, cfg, &crate::cancel::CancellationToken::none())
}

/// [`execute`] under a [`crate::cancel::CancellationToken`]: the token is
/// checked at every morsel boundary, so cancellation or a deadline stops
/// the query within one page/slice of work.
pub fn execute_ctl(
    plan: &Plan,
    store: &SeriesStore,
    cfg: &PipelineConfig,
    ctl: &crate::cancel::CancellationToken,
) -> Result<QueryResult> {
    let stats = ExecStats::default();
    let start = Instant::now();
    let phys = pipe::compile(plan, store, cfg)?;
    let (columns, rows) = driver::run(&phys, store, cfg, &stats, ctl)?;
    Ok(QueryResult {
        columns,
        rows,
        stats: stats.snapshot(),
        elapsed: start.elapsed(),
        explain: None,
    })
}

/// Running second-order moments of naturally joined pairs (§IV: the
/// quantities behind dot products, covariance and correlation).
#[derive(Debug, Default, Clone, Copy)]
pub struct PairMoments {
    /// Matched tuple count.
    pub n: u64,
    /// Σ a.
    pub sum_a: i128,
    /// Σ b.
    pub sum_b: i128,
    /// Σ a·b. Like [`AggState::sum_sq`], the second-order moments
    /// saturate at the `i128` limits rather than wrapping.
    pub sum_ab: i128,
    /// Σ a².
    pub sum_aa: i128,
    /// Σ b².
    pub sum_bb: i128,
}

impl PairMoments {
    /// Folds one matched pair.
    pub fn push(&mut self, a: i64, b: i64) {
        let (a, b) = (a as i128, b as i128);
        self.n += 1;
        self.sum_a += a;
        self.sum_b += b;
        self.sum_ab = self.sum_ab.saturating_add(a * b);
        self.sum_aa = self.sum_aa.saturating_add(a * a);
        self.sum_bb = self.sum_bb.saturating_add(b * b);
    }

    /// Population covariance.
    pub fn covariance(&self) -> Option<f64> {
        if self.n == 0 {
            return None;
        }
        let n = self.n as f64;
        Some(self.sum_ab as f64 / n - (self.sum_a as f64 / n) * (self.sum_b as f64 / n))
    }

    /// Pearson correlation.
    pub fn correlation(&self) -> Option<f64> {
        if self.n == 0 {
            return None;
        }
        let n = self.n as f64;
        // Marginal variances are non-negative; clamp away f64 rounding
        // (and Σx² saturation at extreme magnitudes) before the sqrt.
        let var_a = (self.sum_aa as f64 / n - (self.sum_a as f64 / n).powi(2)).max(0.0);
        let var_b = (self.sum_bb as f64 / n - (self.sum_b as f64 / n).powi(2)).max(0.0);
        let denom = (var_a * var_b).sqrt();
        (denom > 0.0).then(|| self.covariance().unwrap() / denom)
    }
}

/// Converts final pair moments into the paired aggregate's result cell.
pub fn finalize_pair(func: PairAggFunc, m: PairMoments) -> Value {
    if m.n == 0 {
        return Value::Null;
    }
    match func {
        PairAggFunc::Dot => i64::try_from(m.sum_ab)
            .map(Value::Int)
            .unwrap_or(Value::Float(m.sum_ab as f64)),
        PairAggFunc::Covariance => m.covariance().map(Value::Float).unwrap_or(Value::Null),
        PairAggFunc::Correlation => m.correlation().map(Value::Float).unwrap_or(Value::Null),
    }
}

/// Walks Filter/Scan chains collecting the conjunctive predicate
/// (Algorithm 2 lines 1–3: single-column filters are pushed to the scan).
pub(crate) fn flatten_scan(plan: &Plan) -> Result<(String, Predicate)> {
    match plan {
        Plan::Scan { series } => Ok((series.clone(), Predicate::default())),
        Plan::Filter { input, pred } => {
            let (series, inner) = flatten_scan(input)?;
            Ok((series, inner.and(pred)))
        }
        other => Err(Error::Plan(format!(
            "expected a (filtered) series scan, got {other:?}"
        ))),
    }
}

/// Converts a final aggregate state into the result cell for `func`.
///
/// Only the scalar-state aggregates finalize here; the partial-only
/// functions (quantiles, rate/delta) need a [`PartialState`] and go
/// through [`finalize_partial`] — handed a bare [`AggState`] they
/// answer `Null`.
pub fn finalize(func: AggFunc, state: &AggState) -> Value {
    if state.count == 0 {
        return Value::Null;
    }
    match func {
        AggFunc::Sum => i64::try_from(state.sum)
            .map(Value::Int)
            .unwrap_or(Value::Float(state.sum as f64)),
        AggFunc::Count => Value::Int(state.count as i64),
        AggFunc::Avg => state.avg().map(Value::Float).unwrap_or(Value::Null),
        AggFunc::Min => state.min.map(Value::Int).unwrap_or(Value::Null),
        AggFunc::Max => state.max.map(Value::Int).unwrap_or(Value::Null),
        AggFunc::Variance => state.variance().map(Value::Float).unwrap_or(Value::Null),
        AggFunc::First => state.first.map(Value::Int).unwrap_or(Value::Null),
        AggFunc::Last => state.last.map(Value::Int).unwrap_or(Value::Null),
        AggFunc::P50 | AggFunc::P95 | AggFunc::P99 | AggFunc::Rate | AggFunc::Delta => Value::Null,
    }
}

/// Converts a final [`PartialState`] into the result cell for `func`:
/// quantiles read the t-digest sketch, `RATE`/`DELTA` read the exact
/// first/last values and timestamps, and everything else delegates to
/// [`finalize`] on the embedded exact moments.
pub fn finalize_partial(func: AggFunc, state: &PartialState) -> Value {
    if state.agg.count == 0 {
        return Value::Null;
    }
    match func {
        AggFunc::P50 | AggFunc::P95 | AggFunc::P99 => {
            let q = func.quantile().unwrap_or(0.5);
            match &state.digest {
                Some(d) if d.count() > 0 => Value::Float(d.quantile(q)),
                _ => Value::Null,
            }
        }
        AggFunc::Rate => match (
            state.agg.first,
            state.agg.last,
            state.first_ts,
            state.last_ts,
        ) {
            (Some(f), Some(l), Some(ft), Some(lt)) if ft != lt => {
                // i128 intermediates: the value or time span may exceed
                // i64 even though each endpoint fits.
                let dv = l as i128 - f as i128;
                let dt = lt as i128 - ft as i128;
                Value::Float(dv as f64 / dt as f64)
            }
            _ => Value::Null, // fewer than two distinct instants
        },
        AggFunc::Delta => match (state.agg.first, state.agg.last) {
            (Some(f), Some(l)) => {
                let dv = l as i128 - f as i128;
                i64::try_from(dv)
                    .map(Value::Int)
                    .unwrap_or(Value::Float(dv as f64))
            }
            _ => Value::Null,
        },
        _ => finalize(func, &state.agg),
    }
}
