//! `Pipe`: the pipeline generator and executor (paper Algorithm 2, §VI).
//!
//! [`execute`] walks a logical [`Plan`] top-down, turns the storage pages
//! of every scanned series into parallel pipeline jobs (pages, or slices
//! when there are fewer pages than threads — §III-C), runs them on the
//! scheduler, and combines partial results in sequential **merge nodes**
//! grouped by time order (Figure 9).
//!
//! Per-job pipelines pick the cheapest sound strategy, in order:
//!
//! 1. **Header pruning** (§V): pages whose time/value statistics cannot
//!    match are skipped (their tuples still count toward throughput).
//! 2. **Fusion** (§IV): SUM/AVG/COUNT over TS2DIFF aggregate from
//!    unpacked deltas; everything over Delta-RLE aggregates from
//!    `(Δ, run)` pairs; MIN/MAX of unfiltered pages come from the header.
//! 3. **Position ranges**: ordered timestamps turn time filters into
//!    index ranges — constant-interval pages (width 0) solve positions
//!    directly (§V-A), otherwise the decoded timestamps are binary
//!    searched instead of masked.
//! 4. **Vectorized decode** (Algorithm 1) with masked SIMD aggregation as
//!    the general path, with suffix pruning (Propositions 4–5) stopping
//!    value scans early when the remaining suffix provably cannot match.

use std::sync::Arc;
use std::time::Instant;

use etsqp_encoding::{delta_rle, ts2diff, Encoding};
use etsqp_simd::agg::AggState;
use etsqp_storage::page::Page;
use etsqp_storage::store::SeriesStore;

use crate::decode::{decode_column, DecodeOptions};
use crate::exec::{run_jobs_with, ExecStats, Scheduler, StatsSnapshot};
use crate::expr::{AggFunc, BinOp, CmpOp, PairAggFunc, Plan, Predicate, SlidingWindow, TimeRange};
use crate::fused::{
    aggregate_delta_rle, dot_product_delta_rle, sum_ts2diff, sum_ts2diff_range, FuseLevel,
};
use crate::prune::{constant_interval_positions, prune_rest, DeltaBounds, PruneDecision};
use crate::slice::{distribute, slice_range, WorkItem};
use crate::{Error, Result};

/// Configuration of the pipeline engine — the knobs the evaluation varies.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Worker threads (core-level parallelism, §III-C).
    pub threads: usize,
    /// Enable the §V pruning rules (ETSQP-prune vs ETSQP).
    pub prune: bool,
    /// Operator-fusion level (§IV / Fig. 14(a) ablation).
    pub fuse: FuseLevel,
    /// Use the vectorized decoders; `false` is the byte-serial engine
    /// ("IoTDB" in Fig. 13, "Serial" in Fig. 10).
    pub vectorized: bool,
    /// Vectorized-decoder tuning (n_v, delta strategy).
    pub decode: DecodeOptions,
    /// Allow splitting pages into slices when pages < threads.
    pub allow_slicing: bool,
    /// Byte budget for concurrently materialized decode buffers (paper
    /// §VI-C, gradual page loading); `None` = unlimited.
    pub decode_budget_bytes: Option<u64>,
    /// Executor dispatching the page/slice jobs: the persistent
    /// work-stealing pool (default) or the spawn-per-query baseline.
    pub scheduler: Scheduler,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            prune: true,
            fuse: FuseLevel::DeltaRepeat,
            vectorized: true,
            decode: DecodeOptions::default(),
            allow_slicing: true,
            decode_budget_bytes: None,
            scheduler: Scheduler::Pool,
        }
    }
}

fn budget_of(cfg: &PipelineConfig) -> etsqp_storage::budget::MemoryBudget {
    match cfg.decode_budget_bytes {
        Some(b) => etsqp_storage::budget::MemoryBudget::new(b),
        None => etsqp_storage::budget::MemoryBudget::unlimited(),
    }
}

/// One result cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Exact integer.
    Int(i64),
    /// Floating-point (AVG, VARIANCE, or an overflowing SUM widened per
    /// §VI-C).
    Float(f64),
    /// No qualifying tuples.
    Null,
}

impl Value {
    /// The value as f64 (NaN for NULL) — convenient in tests/benches.
    pub fn as_f64(&self) -> f64 {
        match self {
            Value::Int(v) => *v as f64,
            Value::Float(v) => *v,
            Value::Null => f64::NAN,
        }
    }
}

/// The answer to a query plus its execution statistics.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Column names.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
    /// Stage/pruning counters collected during execution.
    pub stats: StatsSnapshot,
    /// Wall-clock execution time.
    pub elapsed: std::time::Duration,
}

/// Executes a logical plan against a store.
pub fn execute(plan: &Plan, store: &SeriesStore, cfg: &PipelineConfig) -> Result<QueryResult> {
    let stats = ExecStats::default();
    let start = Instant::now();
    let (columns, rows) = execute_inner(plan, store, cfg, &stats)?;
    Ok(QueryResult {
        columns,
        rows,
        stats: stats.snapshot(),
        elapsed: start.elapsed(),
    })
}

fn execute_inner(
    plan: &Plan,
    store: &SeriesStore,
    cfg: &PipelineConfig,
    stats: &ExecStats,
) -> Result<(Vec<String>, Vec<Vec<Value>>)> {
    match plan {
        Plan::Aggregate { input, func } => {
            let (series, pred) = flatten_scan(input)?;
            let state = aggregate_series(store, &series, &pred, None, *func, cfg, stats)?
                .into_iter()
                .fold(AggState::new(), |mut acc, (_, s)| {
                    acc.merge(&s);
                    acc
                });
            let col = format!("{}({series})", func.name());
            Ok((vec![col], vec![vec![finalize(*func, &state)]]))
        }
        Plan::WindowAggregate {
            input,
            window,
            func,
        } => {
            let (series, pred) = flatten_scan(input)?;
            let per_window =
                aggregate_series(store, &series, &pred, Some(*window), *func, cfg, stats)?;
            let col = format!("{}({series})", func.name());
            let rows = per_window
                .into_iter()
                .map(|(k, s)| {
                    vec![
                        Value::Int(window.t_min + k as i64 * window.dt),
                        finalize(*func, &s),
                    ]
                })
                .collect();
            Ok((vec!["window_start".into(), col], rows))
        }
        Plan::Scan { .. } | Plan::Filter { .. } => {
            let (series, pred) = flatten_scan(plan)?;
            let (ts, vals) = scan_rows(store, &series, &pred, cfg, stats)?;
            let rows = ts
                .into_iter()
                .zip(vals)
                .map(|(t, v)| vec![Value::Int(t), Value::Int(v)])
                .collect();
            Ok((vec!["time".into(), series], rows))
        }
        Plan::Union { left, right } => {
            let (ls, lp) = flatten_scan(left)?;
            let (rs, rp) = flatten_scan(right)?;
            let rows =
                binary_merge_partitioned(store, &ls, &lp, &rs, &rp, BinaryKind::Union, cfg, stats)?;
            Ok((vec!["time".into(), "value".into()], rows))
        }
        Plan::Join { left, right, on } => {
            let (ls, lp) = flatten_scan(left)?;
            let (rs, rp) = flatten_scan(right)?;
            let rows = binary_merge_partitioned(
                store,
                &ls,
                &lp,
                &rs,
                &rp,
                BinaryKind::Join { op: None, on: *on },
                cfg,
                stats,
            )?;
            Ok((vec!["time".into(), ls, rs], rows))
        }
        Plan::JoinAggregate { left, right, func } => {
            let (ls, lp) = flatten_scan(left)?;
            let (rs, rp) = flatten_scan(right)?;
            let col = format!("{}({ls}, {rs})", func.name());
            // §IV fused fast path: page-aligned Delta-RLE value columns
            // with identical clocks aggregate straight from (Δ, run)
            // pairs — no flattening, no join materialization.
            if lp.is_trivial() && rp.is_trivial() {
                if let Some(stats5) = fused_pair_aggregate(store, &ls, &rs, cfg, stats)? {
                    return Ok((vec![col], vec![vec![finalize_pair(*func, stats5)]]));
                }
            }
            let (lt, lv) = scan_rows(store, &ls, &lp, cfg, stats)?;
            let (rt, rv) = scan_rows(store, &rs, &rp, cfg, stats)?;
            let merge_start = Instant::now();
            let mut acc = PairMoments::default();
            let (mut i, mut j) = (0usize, 0usize);
            while i < lt.len() && j < rt.len() {
                match lt[i].cmp(&rt[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        acc.push(lv[i], rv[j]);
                        i += 1;
                        j += 1;
                    }
                }
            }
            stats.add(&stats.merge_ns, merge_start.elapsed());
            Ok((vec![col], vec![vec![finalize_pair(*func, acc)]]))
        }
        Plan::JoinExpr { left, right, op } => {
            let (ls, lp) = flatten_scan(left)?;
            let (rs, rp) = flatten_scan(right)?;
            let rows = binary_merge_partitioned(
                store,
                &ls,
                &lp,
                &rs,
                &rp,
                BinaryKind::Join {
                    op: Some(*op),
                    on: None,
                },
                cfg,
                stats,
            )?;
            Ok((vec!["time".into(), format!("{ls}.A op {rs}.A")], rows))
        }
    }
}

/// Running second-order moments of naturally joined pairs (§IV: the
/// quantities behind dot products, covariance and correlation).
#[derive(Debug, Default, Clone, Copy)]
pub struct PairMoments {
    /// Matched tuple count.
    pub n: u64,
    /// Σ a.
    pub sum_a: i128,
    /// Σ b.
    pub sum_b: i128,
    /// Σ a·b. Like [`AggState::sum_sq`], the second-order moments
    /// saturate at the `i128` limits rather than wrapping.
    pub sum_ab: i128,
    /// Σ a².
    pub sum_aa: i128,
    /// Σ b².
    pub sum_bb: i128,
}

impl PairMoments {
    /// Folds one matched pair.
    pub fn push(&mut self, a: i64, b: i64) {
        let (a, b) = (a as i128, b as i128);
        self.n += 1;
        self.sum_a += a;
        self.sum_b += b;
        self.sum_ab = self.sum_ab.saturating_add(a * b);
        self.sum_aa = self.sum_aa.saturating_add(a * a);
        self.sum_bb = self.sum_bb.saturating_add(b * b);
    }

    /// Population covariance.
    pub fn covariance(&self) -> Option<f64> {
        if self.n == 0 {
            return None;
        }
        let n = self.n as f64;
        Some(self.sum_ab as f64 / n - (self.sum_a as f64 / n) * (self.sum_b as f64 / n))
    }

    /// Pearson correlation.
    pub fn correlation(&self) -> Option<f64> {
        if self.n == 0 {
            return None;
        }
        let n = self.n as f64;
        // Marginal variances are non-negative; clamp away f64 rounding
        // (and Σx² saturation at extreme magnitudes) before the sqrt.
        let var_a = (self.sum_aa as f64 / n - (self.sum_a as f64 / n).powi(2)).max(0.0);
        let var_b = (self.sum_bb as f64 / n - (self.sum_b as f64 / n).powi(2)).max(0.0);
        let denom = (var_a * var_b).sqrt();
        (denom > 0.0).then(|| self.covariance().unwrap() / denom)
    }
}

pub(crate) fn finalize_pair(func: PairAggFunc, m: PairMoments) -> Value {
    if m.n == 0 {
        return Value::Null;
    }
    match func {
        PairAggFunc::Dot => i64::try_from(m.sum_ab)
            .map(Value::Int)
            .unwrap_or(Value::Float(m.sum_ab as f64)),
        PairAggFunc::Covariance => m.covariance().map(Value::Float).unwrap_or(Value::Null),
        PairAggFunc::Correlation => m.correlation().map(Value::Float).unwrap_or(Value::Null),
    }
}

/// The §IV fused pair aggregation: when both series have pairwise-aligned
/// pages (identical clocks per page) with Delta-RLE value columns, every
/// moment comes straight from `(Δ, run)` pairs. Returns `None` when the
/// shape doesn't allow fusion (caller falls back to decode + merge-join).
fn fused_pair_aggregate(
    store: &SeriesStore,
    left: &str,
    right: &str,
    cfg: &PipelineConfig,
    stats: &ExecStats,
) -> Result<Option<PairMoments>> {
    if cfg.fuse < FuseLevel::DeltaRepeat || !cfg.vectorized {
        return Ok(None);
    }
    let lp = store.peek_pages(left)?;
    let rp = store.peek_pages(right)?;
    if lp.len() != rp.len() {
        return Ok(None);
    }
    for (a, b) in lp.iter().zip(&rp) {
        let ha = &a.header;
        let hb = &b.header;
        let aligned = ha.count == hb.count
            && ha.first_ts == hb.first_ts
            && ha.last_ts == hb.last_ts
            && ha.val_encoding == Encoding::DeltaRle
            && hb.val_encoding == Encoding::DeltaRle
            && spread_fits_i64(a)
            && spread_fits_i64(b)
            && a.ts_bytes == b.ts_bytes; // identical clocks, bit for bit
        if !aligned {
            return Ok(None);
        }
    }
    let agg_start = Instant::now();
    let mut m = PairMoments::default();
    for (a, b) in lp.iter().zip(&rp) {
        charge_page_io(a, stats, store);
        charge_page_io(b, stats, store);
        let pa = delta_rle::parse(&a.val_bytes)?;
        let pb = delta_rle::parse(&b.val_bytes)?;
        m.sum_ab = m.sum_ab.saturating_add(dot_product_delta_rle(&pa, &pb)?);
        let sa = aggregate_delta_rle(&pa)?;
        let sb = aggregate_delta_rle(&pb)?;
        m.n += sa.count;
        m.sum_a += sa.sum;
        m.sum_b += sb.sum;
        m.sum_aa = m.sum_aa.saturating_add(sa.sum_sq);
        m.sum_bb = m.sum_bb.saturating_add(sb.sum_sq);
    }
    stats.add(&stats.agg_ns, agg_start.elapsed());
    Ok(Some(m))
}

/// Walks Filter/Scan chains collecting the conjunctive predicate
/// (Algorithm 2 lines 1–3: single-column filters are pushed to the scan).
pub(crate) fn flatten_scan(plan: &Plan) -> Result<(String, Predicate)> {
    match plan {
        Plan::Scan { series } => Ok((series.clone(), Predicate::default())),
        Plan::Filter { input, pred } => {
            let (series, inner) = flatten_scan(input)?;
            Ok((series, inner.and(pred)))
        }
        other => Err(Error::Plan(format!(
            "expected a (filtered) series scan, got {other:?}"
        ))),
    }
}

pub(crate) fn finalize(func: AggFunc, state: &AggState) -> Value {
    if state.count == 0 {
        return Value::Null;
    }
    match func {
        AggFunc::Sum => i64::try_from(state.sum)
            .map(Value::Int)
            .unwrap_or(Value::Float(state.sum as f64)),
        AggFunc::Count => Value::Int(state.count as i64),
        AggFunc::Avg => state.avg().map(Value::Float).unwrap_or(Value::Null),
        AggFunc::Min => state.min.map(Value::Int).unwrap_or(Value::Null),
        AggFunc::Max => state.max.map(Value::Int).unwrap_or(Value::Null),
        AggFunc::Variance => state.variance().map(Value::Float).unwrap_or(Value::Null),
        AggFunc::First => state.first.map(Value::Int).unwrap_or(Value::Null),
        AggFunc::Last => state.last.map(Value::Int).unwrap_or(Value::Null),
    }
}

/// True when the page's value spread `max − min` is representable in
/// `i64`, which guarantees every pairwise difference — in particular
/// every encoded delta — equals the true mathematical difference.
///
/// The fused closed forms (§IV) and the slice-coefficient chain (§III-C)
/// sum *stored deltas* symbolically in `i128`; that widening is only
/// exact when the deltas did not wrap at encode time. The decode paths
/// are immune (their wrapping adds reproduce each value bit-exactly), so
/// pages failing this check simply fall back to decode-then-aggregate.
/// Regression: `overflow_audit.rs` (values spanning more than `i64::MAX`
/// used to wrap SUM on the sliced and fused paths).
fn spread_fits_i64(page: &Page) -> bool {
    page.header
        .max_value
        .checked_sub(page.header.min_value)
        .is_some()
}

/// Whether the fused path can produce what `func` needs without decode.
fn fusion_covers(func: AggFunc, val_enc: Encoding, fuse: FuseLevel) -> bool {
    match val_enc {
        Encoding::Ts2Diff => {
            fuse >= FuseLevel::Delta && matches!(func, AggFunc::Sum | AggFunc::Avg | AggFunc::Count)
        }
        Encoding::DeltaRle => fuse >= FuseLevel::DeltaRepeat,
        _ => false,
    }
}

type WindowStates = Vec<(usize, AggState)>;

/// Folds a dense slice into the state, computing only what `func` needs
/// (Σx² is expensive and only VARIANCE reads it; MIN/MAX skip sums).
fn agg_slice(state: &mut AggState, slice: &[i64], func: AggFunc) {
    if slice.is_empty() {
        return;
    }
    match func {
        AggFunc::Sum | AggFunc::Avg | AggFunc::Count => {
            state.sum += etsqp_simd::agg::sum_i64(slice);
            state.count += slice.len() as u64;
        }
        AggFunc::Min | AggFunc::Max => {
            if let Some((mn, mx)) = etsqp_simd::agg::min_max_i64(slice) {
                state.min = Some(state.min.map_or(mn, |m| m.min(mn)));
                state.max = Some(state.max.map_or(mx, |m| m.max(mx)));
            }
            state.count += slice.len() as u64;
        }
        AggFunc::Variance => state.push_slice(slice),
        AggFunc::First | AggFunc::Last => {
            state.first.get_or_insert(slice[0]);
            state.last = slice.last().copied().or(state.last);
            state.count += slice.len() as u64;
        }
    }
}

/// Mask-filtered variant of [`agg_slice`].
fn agg_masked(state: &mut AggState, slice: &[i64], mask: &[u64], func: AggFunc) {
    match func {
        AggFunc::Sum | AggFunc::Avg | AggFunc::Count => {
            let (s, c) = etsqp_simd::agg::masked_sum_i64(slice, mask);
            state.sum += s;
            state.count += c;
        }
        AggFunc::Min | AggFunc::Max => {
            if let Some((mn, mx)) = etsqp_simd::agg::masked_min_max_i64(slice, mask) {
                state.min = Some(state.min.map_or(mn, |m| m.min(mn)));
                state.max = Some(state.max.map_or(mx, |m| m.max(mx)));
            }
            state.count += etsqp_simd::filter::count_mask(mask, slice.len());
        }
        AggFunc::Variance => state.push_masked(slice, mask),
        AggFunc::First | AggFunc::Last => {
            for (i, &v) in slice.iter().enumerate() {
                if mask[i / 64] & (1u64 << (i % 64)) != 0 {
                    state.first.get_or_insert(v);
                    state.last = Some(v);
                    state.count += 1;
                }
            }
        }
    }
}

/// Aggregates one series (whole-input or per window), Algorithm 2's
/// aggregation branch: page pruning → job generation → scheduler →
/// merge node.
fn aggregate_series(
    store: &SeriesStore,
    series: &str,
    pred: &Predicate,
    window: Option<SlidingWindow>,
    func: AggFunc,
    cfg: &PipelineConfig,
    stats: &ExecStats,
) -> Result<WindowStates> {
    let io_start = Instant::now();
    let pages = store.peek_pages(series)?;
    stats.add(&stats.io_ns, io_start.elapsed());

    // Page-level pruning (§V): header statistics only.
    let mut kept: Vec<Arc<Page>> = Vec::with_capacity(pages.len());
    for page in pages {
        let keep = !cfg.prune
            || (pred
                .time
                .is_none_or(|t| page.header.overlaps_time(t.lo, t.hi))
                && pred
                    .value
                    .is_none_or(|(lo, hi)| page.header.overlaps_value(lo, hi)));
        if keep {
            kept.push(page);
        } else {
            stats
                .pages_pruned
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            stats.tuples_pruned.fetch_add(
                page.header.count as u64,
                std::sync::atomic::Ordering::Relaxed,
            );
        }
    }

    // Slicing applies to unfiltered single-aggregate TS2DIFF scans where
    // the slice partials can be combined symbolically (§III-C).
    let sliceable = cfg.allow_slicing
        && cfg.vectorized
        && window.is_none()
        && pred.is_trivial()
        && kept.len() < cfg.threads
        && kept
            .iter()
            .all(|p| p.header.val_encoding == Encoding::Ts2Diff && spread_fits_i64(p));
    let items = if sliceable {
        distribute(&kept, cfg.threads)
    } else {
        kept.iter().cloned().map(WorkItem::Page).collect()
    };

    #[derive(Debug)]
    enum JobOut {
        Whole(WindowStates),
        Slice {
            page_seq: usize,
            part: usize,
            coeff: SliceCoeff,
        },
        Err(Error),
    }

    // Tag items with a page sequence for the slice merge.
    let mut tagged = Vec::with_capacity(items.len());
    let mut seq = usize::MAX;
    let mut last_ptr: *const Page = std::ptr::null();
    for item in items {
        let ptr = Arc::as_ptr(item.page());
        if ptr != last_ptr {
            seq = seq.wrapping_add(1);
            last_ptr = ptr;
        }
        tagged.push((seq, item));
    }

    let outputs = run_jobs_with(
        cfg.scheduler,
        tagged,
        cfg.threads,
        stats,
        |(page_seq, item)| match item {
            WorkItem::Page(page) => {
                match agg_page_job(&page, pred, window, func, cfg, stats, store) {
                    Ok(states) => JobOut::Whole(states),
                    Err(e) => JobOut::Err(e),
                }
            }
            WorkItem::Slice { page, part, parts } => {
                match slice_coeff_job(&page, part, parts, cfg, stats, store) {
                    Ok(coeff) => JobOut::Slice {
                        page_seq,
                        part,
                        coeff,
                    },
                    Err(e) => JobOut::Err(e),
                }
            }
        },
    )?;

    // Merge node (sequential, timed).
    let merge_start = Instant::now();
    let mut windows: std::collections::BTreeMap<usize, AggState> =
        std::collections::BTreeMap::new();
    let mut v_pre: i128 = 0;
    let mut cur_page = usize::MAX;
    for out in outputs {
        match out {
            JobOut::Err(e) => return Err(e),
            JobOut::Whole(states) => {
                for (k, s) in states {
                    windows.entry(k).or_default().merge(&s);
                }
            }
            JobOut::Slice {
                page_seq,
                part,
                coeff,
            } => {
                if page_seq != cur_page {
                    cur_page = page_seq;
                    debug_assert_eq!(part, 0, "slices arrive in order");
                    v_pre = coeff.first_value as i128;
                }
                let state = windows.entry(0).or_default();
                coeff.fold_into(state, v_pre);
                v_pre += coeff.delta_total as i128;
            }
        }
    }
    stats.add(&stats.merge_ns, merge_start.elapsed());
    Ok(windows.into_iter().collect())
}

/// Symbolic partial of a slice over a TS2DIFF value column: every term is
/// expressed relative to the unknown slice-start value `v_pre`, so slice
/// jobs never wait on each other's prefix sums (§III-C / Fig. 14(c)).
#[derive(Debug, Clone, Copy, Default)]
struct SliceCoeff {
    /// Values covered by the slice.
    len: u64,
    /// Σ rel_k where `rel_k = v_k − v_pre`.
    rel_sum: i128,
    /// Σ rel_k².
    rel_sq: i128,
    /// min rel_k.
    rel_min: i64,
    /// max rel_k.
    rel_max: i64,
    /// `v_first − v_pre` (the slice's first covered value, relative).
    rel_first: i64,
    /// `v_last − v_pre`: carried into the next slice's `v_pre`.
    delta_total: i64,
    /// The page's first value (meaningful on part 0; seeds the chain).
    first_value: i64,
}

impl SliceCoeff {
    fn fold_into(&self, state: &mut AggState, v_pre: i128) {
        if self.len == 0 {
            return;
        }
        let n = self.len as i128;
        state.sum += n * v_pre + self.rel_sum;
        state.sum_sq = state.sum_sq.saturating_add(
            n.saturating_mul(v_pre.saturating_mul(v_pre))
                .saturating_add((2 * v_pre).saturating_mul(self.rel_sum))
                .saturating_add(self.rel_sq),
        );
        state.count += self.len;
        let lo = (v_pre + self.rel_min as i128) as i64;
        let hi = (v_pre + self.rel_max as i128) as i64;
        state.min = Some(state.min.map_or(lo, |m| m.min(lo)));
        state.max = Some(state.max.map_or(hi, |m| m.max(hi)));
        state
            .first
            .get_or_insert((v_pre + self.rel_first as i128) as i64);
        state.last = Some((v_pre + self.delta_total as i128) as i64);
    }
}

fn charge_page_io(page: &Page, stats: &ExecStats, store: &SeriesStore) {
    let io_start = Instant::now();
    store.io().record_page(page.encoded_len());
    stats
        .pages_loaded
        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    stats.tuples_scanned.fetch_add(
        page.header.count as u64,
        std::sync::atomic::Ordering::Relaxed,
    );
    stats.add(&stats.io_ns, io_start.elapsed());
}

/// Slice phase-1 job: unpack the slice's delta range and summarize it
/// relative to the unknown start value.
fn slice_coeff_job(
    page: &Page,
    part: usize,
    parts: usize,
    cfg: &PipelineConfig,
    stats: &ExecStats,
    store: &SeriesStore,
) -> Result<SliceCoeff> {
    if part == 0 {
        charge_page_io(page, stats, store);
    }
    let parsed = ts2diff::parse(&page.val_bytes)?;
    let count = parsed.count;
    let (lo, hi) = slice_range(count, part, parts);
    if lo >= hi {
        return Ok(SliceCoeff {
            first_value: parsed.first[0],
            ..Default::default()
        });
    }
    // Deltas connecting the slice's values: indices (max(lo,1)−1)..(hi−1).
    let d_lo = lo.saturating_sub(1).max(if lo == 0 { 0 } else { lo - 1 });
    let d_hi = hi.saturating_sub(1);
    let n_deltas = d_hi - d_lo;
    let unpack_start = Instant::now();
    let mut stored = vec![0u64; n_deltas];
    etsqp_simd::unpack::unpack_u64(
        parsed.payload,
        d_lo * parsed.width as usize,
        parsed.width,
        &mut stored,
    );
    stats.add(&stats.unpack_ns, unpack_start.elapsed());
    let delta_start = Instant::now();
    let mut coeff = SliceCoeff {
        first_value: parsed.first[0],
        ..Default::default()
    };
    let mut rel: i64 = 0;
    let push = |r: i64, c: &mut SliceCoeff| {
        c.len += 1;
        c.rel_sum += r as i128;
        c.rel_sq = c.rel_sq.saturating_add((r as i128) * (r as i128));
        if c.len == 1 {
            c.rel_min = r;
            c.rel_max = r;
            c.rel_first = r;
        } else {
            c.rel_min = c.rel_min.min(r);
            c.rel_max = c.rel_max.max(r);
        }
    };
    if lo == 0 {
        // Value 0 itself has rel 0.
        push(0, &mut coeff);
    }
    for &s in &stored {
        rel = rel.wrapping_add(parsed.min_delta.wrapping_add(s as i64));
        push(rel, &mut coeff);
    }
    coeff.delta_total = rel;
    stats.add(&stats.delta_ns, delta_start.elapsed());
    let _ = cfg;
    Ok(coeff)
}

/// The per-page aggregation pipeline — strategy selection per the module
/// docs. Returns partial states keyed by window index (0 when unwindowed).
fn agg_page_job(
    page: &Page,
    pred: &Predicate,
    window: Option<SlidingWindow>,
    func: AggFunc,
    cfg: &PipelineConfig,
    stats: &ExecStats,
    store: &SeriesStore,
) -> Result<WindowStates> {
    charge_page_io(page, stats, store);
    let count = page.header.count as usize;
    let trange = pred.time.unwrap_or_else(TimeRange::all);
    let has_value_filter = pred.value.is_some();

    if !cfg.vectorized {
        return serial_agg_page(page, pred, window, cfg, stats);
    }

    // ---- Resolve the qualifying positions from the timestamp column ----
    // Ordered timestamps make every time filter an index range [a, b].
    let mut ts_decoded: Option<Vec<i64>> = None;
    let (a, b) = if pred.time.is_none() && window.is_none() {
        (0usize, count.saturating_sub(1))
    } else {
        let wide = match window {
            // Windows only constrain below by t_min; combine with filter.
            Some(w) => TimeRange {
                lo: w.t_min,
                hi: i64::MAX,
            }
            .intersect(&trange),
            None => trange,
        };
        match constant_positions(page, wide.lo, wide.hi) {
            Some(Some(range)) => range,
            Some(None) => return Ok(Vec::new()), // constant interval, no overlap
            None => {
                let filter_start = Instant::now();
                let ts = decode_ts_column(page, cfg, stats)?;
                let a = ts.partition_point(|&t| t < wide.lo);
                let b = ts.partition_point(|&t| t <= wide.hi);
                stats.add(&stats.filter_ns, filter_start.elapsed());
                if a >= b {
                    return Ok(Vec::new());
                }
                let range = (a, b - 1);
                ts_decoded = Some(ts);
                range
            }
        }
    };

    // ---- Windowless fast paths --------------------------------------
    if window.is_none() && !has_value_filter {
        if let Some(states) = fused_range_agg(page, a, b, func, cfg, stats)? {
            return Ok(vec![(0, states)]);
        }
        // MIN/MAX over the whole page: header statistics are exact.
        if a == 0 && b + 1 == count && matches!(func, AggFunc::Min | AggFunc::Max) {
            let mut s = AggState::new();
            s.count = count as u64;
            s.min = Some(page.header.min_value);
            s.max = Some(page.header.max_value);
            return Ok(vec![(0, s)]);
        }
    }

    // ---- Windowed fast path: fused range sums per window ------------
    // Resolve each window's index subrange (constant-interval arithmetic
    // or binary search over decoded timestamps), then aggregate every
    // subrange in closed form over the packed deltas — no value decode.
    if let Some(w) = window {
        if !has_value_filter
            && fusion_covers(func, page.header.val_encoding, cfg.fuse)
            && page.header.val_encoding == Encoding::Ts2Diff
            && spread_fits_i64(page)
        {
            let ranges = window_index_ranges(page, &w, &trange, a, b, ts_decoded.as_deref())?;
            let parsed = ts2diff::parse(&page.val_bytes)?;
            let agg_start = Instant::now();
            let mut out: WindowStates = Vec::with_capacity(ranges.len());
            for (k, i, j) in ranges {
                let state = if i == 0 && j + 1 == count {
                    sum_ts2diff(&parsed, &cfg.decode)?
                } else {
                    sum_ts2diff_range(&parsed, i, j, &cfg.decode)?
                };
                if state.count > 0 {
                    out.push((k, state));
                }
            }
            stats.add(&stats.agg_ns, agg_start.elapsed());
            return Ok(out);
        }
    }

    // ---- General path: decode values --------------------------------
    let vals = decode_val_column(page, pred, cfg, stats)?;
    let vals = match vals {
        Some(v) => v,
        None => return Ok(Vec::new()), // fully pruned during scan
    };
    if a >= vals.len() {
        // The qualifying index range lies entirely in the pruned suffix —
        // sound because pruned elements provably fail the value filter.
        return Ok(Vec::new());
    }

    let agg_start = Instant::now();
    let mut out: WindowStates = Vec::new();
    match window {
        None => {
            let mut state = AggState::new();
            match pred.value {
                None => agg_slice(&mut state, &vals[a..=b.min(vals.len() - 1)], func),
                Some((vlo, vhi)) => {
                    let hi = b.min(vals.len() - 1);
                    let slice = &vals[a..=hi];
                    let mut mask = etsqp_simd::filter::new_mask(slice.len());
                    etsqp_simd::filter::range_mask_i64(slice, vlo, vhi, &mut mask);
                    agg_masked(&mut state, slice, &mask, func);
                }
            }
            if state.count > 0 {
                out.push((0, state));
            }
        }
        Some(w) => {
            // Split [a, b] into per-window index subranges via the
            // timestamp column (decoded or constant-interval).
            let ts_owned;
            let ts: &[i64] = match &ts_decoded {
                Some(t) => t,
                None => {
                    ts_owned = decode_ts_column(page, cfg, stats)?;
                    &ts_owned
                }
            };
            let mut i = a;
            let hi = b.min(vals.len() - 1);
            while i <= hi {
                let Some(k) = w.window_of(ts[i]) else {
                    i += 1;
                    continue;
                };
                let wrange = w.range(k).intersect(&trange);
                // End of this window's run of indices.
                let mut j = i;
                while j <= hi && wrange.contains(ts[j]) {
                    j += 1;
                }
                if j > i {
                    let slice = &vals[i..j];
                    let mut state = AggState::new();
                    match pred.value {
                        None => agg_slice(&mut state, slice, func),
                        Some((vlo, vhi)) => {
                            let mut mask = etsqp_simd::filter::new_mask(slice.len());
                            etsqp_simd::filter::range_mask_i64(slice, vlo, vhi, &mut mask);
                            agg_masked(&mut state, slice, &mask, func);
                        }
                    }
                    if state.count > 0 {
                        out.push((k, state));
                    }
                    i = j;
                } else {
                    i += 1;
                }
            }
        }
    }
    stats.add(&stats.agg_ns, agg_start.elapsed());
    Ok(out)
}

/// Splits the qualifying index range `[a, b]` of a page into per-window
/// inclusive subranges `(window, i, j)`. Uses constant-interval position
/// arithmetic when the timestamp page allows (§V-A), decoded timestamps
/// otherwise.
fn window_index_ranges(
    page: &Page,
    w: &SlidingWindow,
    trange: &TimeRange,
    a: usize,
    b: usize,
    ts_decoded: Option<&[i64]>,
) -> Result<Vec<(usize, usize, usize)>> {
    let mut out = Vec::new();
    // Constant-interval shortcut: no timestamp decode at all.
    if ts_decoded.is_none() {
        if let Ok(parsed) = ts2diff::parse(&page.ts_bytes) {
            if parsed.order == 1 && parsed.width == 0 && parsed.min_delta > 0 && parsed.count > 0 {
                let first = parsed.first[0];
                let interval = parsed.min_delta;
                let last = first + (parsed.count as i64 - 1) * interval;
                let mut k = w.window_of(first.max(w.t_min)).unwrap_or(0);
                loop {
                    let wr = w.range(k).intersect(trange);
                    if wr.lo > last {
                        break;
                    }
                    if !wr.is_empty() {
                        if let Some((i, j)) =
                            constant_interval_positions(first, interval, parsed.count, wr.lo, wr.hi)
                        {
                            let i = i.max(a);
                            let j = j.min(b);
                            if i <= j {
                                out.push((k, i, j));
                            }
                        }
                    }
                    k += 1;
                }
                return Ok(out);
            }
        }
    }
    // General: binary-search window boundaries over decoded timestamps.
    let ts_owned;
    let ts: &[i64] = match ts_decoded {
        Some(t) => t,
        None => {
            let mut buf = Vec::new();
            decode_column(
                page.header.ts_encoding,
                &page.ts_bytes,
                &DecodeOptions::default(),
                &mut buf,
            )?;
            ts_owned = buf;
            &ts_owned
        }
    };
    let mut i = a;
    let hi = b.min(ts.len().saturating_sub(1));
    while i <= hi {
        let Some(k) = w.window_of(ts[i]) else {
            i += 1;
            continue;
        };
        let wr = w.range(k).intersect(trange);
        let j = i + ts[i..=hi].partition_point(|&t| t <= wr.hi);
        if j > i {
            out.push((k, i, j - 1));
            i = j;
        } else {
            i += 1;
        }
    }
    Ok(out)
}

/// Fused aggregation over an index range, when the codec and function
/// allow it. `Ok(None)` means fusion does not apply.
fn fused_range_agg(
    page: &Page,
    a: usize,
    b: usize,
    func: AggFunc,
    cfg: &PipelineConfig,
    stats: &ExecStats,
) -> Result<Option<AggState>> {
    if !fusion_covers(func, page.header.val_encoding, cfg.fuse) || !spread_fits_i64(page) {
        return Ok(None);
    }
    let agg_start = Instant::now();
    let count = page.header.count as usize;
    let state = match page.header.val_encoding {
        Encoding::Ts2Diff => {
            let parsed = ts2diff::parse(&page.val_bytes)?;
            if a == 0 && b + 1 == count {
                sum_ts2diff(&parsed, &cfg.decode)?
            } else {
                sum_ts2diff_range(&parsed, a, b, &cfg.decode)?
            }
        }
        Encoding::DeltaRle if a == 0 && b + 1 == count => {
            let parsed = delta_rle::parse(&page.val_bytes)?;
            aggregate_delta_rle(&parsed)?
        }
        _ => return Ok(None),
    };
    stats.add(&stats.agg_ns, agg_start.elapsed());
    Ok(Some(state))
}

/// Constant-interval shortcut (§V-A): for width-0 order-1 TS2DIFF
/// timestamps the qualifying index range is solved arithmetically.
/// Returns `None` when the shortcut does not apply, `Some(None)` when it
/// applies and proves emptiness.
#[allow(clippy::option_option)]
fn constant_positions(page: &Page, t_lo: i64, t_hi: i64) -> Option<Option<(usize, usize)>> {
    if page.header.ts_encoding != Encoding::Ts2Diff {
        return None;
    }
    let parsed = ts2diff::parse(&page.ts_bytes).ok()?;
    if parsed.order != 1 || parsed.width != 0 {
        return None;
    }
    Some(constant_interval_positions(
        parsed.first[0],
        parsed.min_delta,
        parsed.count,
        t_lo,
        t_hi,
    ))
}

fn decode_ts_column(page: &Page, cfg: &PipelineConfig, stats: &ExecStats) -> Result<Vec<i64>> {
    let t = Instant::now();
    let mut out = Vec::new();
    let opts = DecodeOptions {
        value_range: Some((page.header.first_ts, page.header.last_ts)),
        ..cfg.decode
    };
    decode_column(page.header.ts_encoding, &page.ts_bytes, &opts, &mut out)?;
    stats.add(&stats.unpack_ns, t.elapsed());
    stats
        .materialized_bytes
        .fetch_add(out.len() as u64 * 8, std::sync::atomic::Ordering::Relaxed);
    Ok(out)
}

/// Decodes the value column, applying suffix pruning (Propositions 4–5)
/// when a value filter is present: the scan decodes in chunks and stops
/// once the remaining suffix provably cannot match. Returns `None` when
/// pruning eliminated everything before any chunk qualified.
fn decode_val_column(
    page: &Page,
    pred: &Predicate,
    cfg: &PipelineConfig,
    stats: &ExecStats,
) -> Result<Option<Vec<i64>>> {
    let t = Instant::now();
    let mut out = Vec::new();
    // Suffix pruning applies to TS2DIFF value columns under value filters.
    if let (true, Some((c1, c2)), Encoding::Ts2Diff) =
        (cfg.prune, pred.value, page.header.val_encoding)
    {
        let parsed = ts2diff::parse(&page.val_bytes)?;
        if parsed.order == 1 && parsed.count > 0 {
            let bounds = DeltaBounds::from_ts2diff(&parsed);
            // Genuinely incremental scan: unpack and accumulate one chunk
            // of deltas at a time; the Proposition 5 rule check after each
            // chunk stops the scan — and the remaining unpack/accumulate
            // work — as soon as the suffix provably cannot match.
            const CHUNK: usize = 256;
            let n = parsed.count;
            out.reserve(n.min(4 * CHUNK));
            out.push(parsed.first[0]);
            let mut cur = parsed.first[0];
            let mut chunk = vec![0u64; CHUNK];
            let mut pos = 0usize; // delta index
            let total = parsed.num_deltas();
            let mut pruned = false;
            while pos < total {
                let len = CHUNK.min(total - pos);
                let t = Instant::now();
                etsqp_simd::unpack::unpack_u64(
                    parsed.payload,
                    pos * parsed.width as usize,
                    parsed.width,
                    &mut chunk[..len],
                );
                stats.add(&stats.unpack_ns, t.elapsed());
                for &s in &chunk[..len] {
                    cur = cur.wrapping_add(parsed.min_delta.wrapping_add(s as i64));
                    out.push(cur);
                }
                pos += len;
                if prune_rest(&bounds, cur, pos, n, c1, c2) == PruneDecision::StopRest {
                    pruned = true;
                    break;
                }
            }
            if pruned {
                stats
                    .tuples_pruned
                    .fetch_add((n - out.len()) as u64, std::sync::atomic::Ordering::Relaxed);
            }
        } else {
            decode_column(
                page.header.val_encoding,
                &page.val_bytes,
                &cfg.decode,
                &mut out,
            )?;
        }
    } else {
        let opts = DecodeOptions {
            value_range: Some((page.header.min_value, page.header.max_value)),
            ..cfg.decode
        };
        decode_column(page.header.val_encoding, &page.val_bytes, &opts, &mut out)?;
    }
    stats.add(&stats.delta_ns, t.elapsed());
    stats
        .materialized_bytes
        .fetch_add(out.len() as u64 * 8, std::sync::atomic::Ordering::Relaxed);
    Ok(Some(out))
}

/// Byte-serial per-value pipeline — the "Serial"/"IoTDB" baseline: decode
/// value-at-a-time with the reference decoders, branch per tuple.
fn serial_agg_page(
    page: &Page,
    pred: &Predicate,
    window: Option<SlidingWindow>,
    _cfg: &PipelineConfig,
    stats: &ExecStats,
) -> Result<WindowStates> {
    let t = Instant::now();
    let (ts, vals) = page.decode().map_err(Error::Storage)?;
    stats.add(&stats.delta_ns, t.elapsed());
    stats.materialized_bytes.fetch_add(
        (ts.len() + vals.len()) as u64 * 8,
        std::sync::atomic::Ordering::Relaxed,
    );
    let agg_start = Instant::now();
    let mut windows: std::collections::BTreeMap<usize, AggState> =
        std::collections::BTreeMap::new();
    for (&t, &v) in ts.iter().zip(&vals) {
        if let Some(tr) = pred.time {
            if !tr.contains(t) {
                continue;
            }
        }
        if let Some((lo, hi)) = pred.value {
            if v < lo || v > hi {
                continue;
            }
        }
        let k = match window {
            Some(w) => match w.window_of(t) {
                Some(k) => k,
                None => continue,
            },
            None => 0,
        };
        windows.entry(k).or_default().push(v);
    }
    stats.add(&stats.agg_ns, agg_start.elapsed());
    Ok(windows.into_iter().collect())
}

/// Decodes the qualifying rows of one series (row-producing plans).
fn scan_rows(
    store: &SeriesStore,
    series: &str,
    pred: &Predicate,
    cfg: &PipelineConfig,
    stats: &ExecStats,
) -> Result<(Vec<i64>, Vec<i64>)> {
    let pages = store.peek_pages(series)?;
    let mut kept = Vec::with_capacity(pages.len());
    for page in pages {
        let keep = !cfg.prune
            || (pred
                .time
                .is_none_or(|t| page.header.overlaps_time(t.lo, t.hi))
                && pred
                    .value
                    .is_none_or(|(lo, hi)| page.header.overlaps_value(lo, hi)));
        if keep {
            kept.push(page);
        } else {
            stats
                .pages_pruned
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            stats.tuples_pruned.fetch_add(
                page.header.count as u64,
                std::sync::atomic::Ordering::Relaxed,
            );
        }
    }
    let budget = budget_of(cfg);
    let outputs = run_jobs_with(
        cfg.scheduler,
        kept,
        cfg.threads,
        stats,
        |page| -> Result<(Vec<i64>, Vec<i64>)> {
            charge_page_io(&page, stats, store);
            // Gradual loading (§VI-C): reserve decode-buffer memory before
            // materializing this page's vectors; released when the job's
            // (filtered, smaller) output replaces them.
            let _guard = budget.acquire(page.header.count as u64 * 16);
            let (ts, vals) = if cfg.vectorized {
                let ts = decode_ts_column(&page, cfg, stats)?;
                let mut vals = Vec::new();
                let t = Instant::now();
                let opts = DecodeOptions {
                    value_range: Some((page.header.min_value, page.header.max_value)),
                    ..cfg.decode
                };
                decode_column(page.header.val_encoding, &page.val_bytes, &opts, &mut vals)?;
                stats.add(&stats.delta_ns, t.elapsed());
                (ts, vals)
            } else {
                page.decode().map_err(Error::Storage)?
            };
            if ts.len() != vals.len() || ts.len() != page.header.count as usize {
                // A corrupt payload can decode to a different length than the
                // header declares — fail cleanly instead of misaligning rows.
                return Err(Error::Decode("column length mismatch (corrupt page)"));
            }
            let filter_start = Instant::now();
            let mut out_ts = Vec::with_capacity(ts.len());
            let mut out_vals = Vec::with_capacity(ts.len());
            let (a, b) = match pred.time {
                Some(tr) => {
                    let a = ts.partition_point(|&t| t < tr.lo);
                    let b = ts.partition_point(|&t| t <= tr.hi);
                    (a, b.max(a)) // empty ranges (lo > hi) select nothing
                }
                None => (0, ts.len()),
            };
            match pred.value {
                None => {
                    out_ts.extend_from_slice(&ts[a..b]);
                    out_vals.extend_from_slice(&vals[a..b]);
                }
                Some((lo, hi)) => {
                    for i in a..b {
                        if vals[i] >= lo && vals[i] <= hi {
                            out_ts.push(ts[i]);
                            out_vals.push(vals[i]);
                        }
                    }
                }
            }
            stats.add(&stats.filter_ns, filter_start.elapsed());
            Ok((out_ts, out_vals))
        },
    )?;
    let merge_start = Instant::now();
    let mut all_ts = Vec::new();
    let mut all_vals = Vec::new();
    for out in outputs {
        let (t, v) = out?;
        all_ts.extend(t);
        all_vals.extend(v);
    }
    stats.add(&stats.merge_ns, merge_start.elapsed());
    Ok((all_ts, all_vals))
}

/// Time-ordered merge of two sorted series (Q5). Ties emit left first.
fn merge_union(lt: &[i64], lv: &[i64], rt: &[i64], rv: &[i64]) -> Vec<Vec<Value>> {
    let mut rows = Vec::with_capacity(lt.len() + rt.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < lt.len() || j < rt.len() {
        let take_left = match (lt.get(i), rt.get(j)) {
            (Some(&a), Some(&b)) => a <= b,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        if take_left {
            rows.push(vec![Value::Int(lt[i]), Value::Int(lv[i])]);
            i += 1;
        } else {
            rows.push(vec![Value::Int(rt[j]), Value::Int(rv[j])]);
            j += 1;
        }
    }
    rows
}

/// One binary operator evaluated per time-range partition — the merge
/// nodes of Figure 9: the time domain is split at page boundaries, each
/// range's decode+merge runs as an independent job, and the ordered
/// concatenation of the partials is the result.
#[derive(Debug, Clone, Copy)]
enum BinaryKind {
    Union,
    Join {
        op: Option<BinOp>,
        on: Option<CmpOp>,
    },
}

/// Builds at most `2 * threads` disjoint time ranges covering both series,
/// cut at page first-timestamps so most pages fall wholly in one range.
fn merge_partitions(
    store: &SeriesStore,
    left: &str,
    right: &str,
    threads: usize,
) -> Result<Vec<TimeRange>> {
    let mut cuts: Vec<i64> = Vec::new();
    for series in [left, right] {
        for page in store.peek_pages(series)? {
            cuts.push(page.header.first_ts);
        }
    }
    cuts.sort_unstable();
    cuts.dedup();
    if cuts.is_empty() {
        return Ok(vec![TimeRange::all()]);
    }
    let want = (threads * 2).max(1);
    let step = cuts.len().div_ceil(want).max(1);
    let mut bounds: Vec<i64> = cuts.iter().copied().step_by(step).collect();
    bounds[0] = i64::MIN;
    let mut ranges = Vec::with_capacity(bounds.len());
    for (i, &lo) in bounds.iter().enumerate() {
        let hi = bounds.get(i + 1).map(|&b| b - 1).unwrap_or(i64::MAX);
        ranges.push(TimeRange { lo, hi });
    }
    Ok(ranges)
}

/// Executes `Union` / `Join` / `JoinExpr` with Figure 9's per-time-range
/// merge nodes: every partition decodes both sides restricted to its
/// range (page pruning keeps out-of-range pages untouched) and merges
/// independently; partials concatenate in time order.
// Two (series, predicate) pairs plus execution context; bundling them
// into a struct would add a type used exactly once.
#[allow(clippy::too_many_arguments)]
fn binary_merge_partitioned(
    store: &SeriesStore,
    left: &str,
    lpred: &Predicate,
    right: &str,
    rpred: &Predicate,
    kind: BinaryKind,
    cfg: &PipelineConfig,
    stats: &ExecStats,
) -> Result<Vec<Vec<Value>>> {
    let ranges = merge_partitions(store, left, right, cfg.threads)?;
    // One worker per partition; within a partition both sides scan with
    // a single thread (the partition level is the parallel axis).
    let inner_cfg = PipelineConfig { threads: 1, ..*cfg };
    let outputs = run_jobs_with(
        cfg.scheduler,
        ranges,
        cfg.threads,
        stats,
        |range| -> Result<Vec<Vec<Value>>> {
            let lp = lpred.and(&Predicate {
                time: Some(range),
                value: None,
            });
            let rp = rpred.and(&Predicate {
                time: Some(range),
                value: None,
            });
            let (lt, lv) = scan_rows(store, left, &lp, &inner_cfg, stats)?;
            let (rt, rv) = scan_rows(store, right, &rp, &inner_cfg, stats)?;
            let merge_start = Instant::now();
            let rows = match kind {
                BinaryKind::Union => merge_union(&lt, &lv, &rt, &rv),
                BinaryKind::Join { op, on } => merge_join(&lt, &lv, &rt, &rv, op, on),
            };
            stats.add(&stats.merge_ns, merge_start.elapsed());
            Ok(rows)
        },
    )?;
    let mut rows = Vec::new();
    for out in outputs {
        rows.extend(out?);
    }
    Ok(rows)
}

/// Merge join on equal timestamps (Q4/Q6). With `op`, emits
/// `(t, op(a, b))`; without, emits `(t, a, b)`.
fn merge_join(
    lt: &[i64],
    lv: &[i64],
    rt: &[i64],
    rv: &[i64],
    op: Option<BinOp>,
    on: Option<CmpOp>,
) -> Vec<Vec<Value>> {
    let mut rows = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < lt.len() && j < rt.len() {
        match lt[i].cmp(&rt[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // Inter-column predicate on the decoded pair (Eq. 3).
                if on.is_none_or(|c| c.eval(lv[i], rv[j])) {
                    match op {
                        Some(op) => {
                            rows.push(vec![Value::Int(lt[i]), Value::Int(op.apply(lv[i], rv[j]))])
                        }
                        None => rows.push(vec![
                            Value::Int(lt[i]),
                            Value::Int(lv[i]),
                            Value::Int(rv[j]),
                        ]),
                    }
                }
                i += 1;
                j += 1;
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsqp_encoding::Encoding;

    fn store_with(series: &str, ts: &[i64], vals: &[i64], page_points: usize) -> SeriesStore {
        let store = SeriesStore::new(page_points);
        store.create_series(series, Encoding::Ts2Diff, Encoding::Ts2Diff);
        store.append_all(series, ts, vals).unwrap();
        store.flush(series).unwrap();
        store
    }

    fn cfg() -> PipelineConfig {
        PipelineConfig {
            threads: 2,
            ..Default::default()
        }
    }

    #[test]
    fn whole_series_sum_matches_naive() {
        let ts: Vec<i64> = (0..5000).map(|i| i * 10).collect();
        let vals: Vec<i64> = (0..5000).map(|i| 100 + (i % 37)).collect();
        let store = store_with("s", &ts, &vals, 512);
        let plan = Plan::scan("s").aggregate(AggFunc::Sum);
        let r = execute(&plan, &store, &cfg()).unwrap();
        let want: i64 = vals.iter().sum();
        assert_eq!(r.rows, vec![vec![Value::Int(want)]]);
    }

    #[test]
    fn all_agg_functions_match_naive() {
        let ts: Vec<i64> = (0..3000).map(|i| i * 5).collect();
        let vals: Vec<i64> = (0..3000).map(|i| (i * 7) % 113 - 50).collect();
        let store = store_with("s", &ts, &vals, 700);
        for func in [
            AggFunc::Sum,
            AggFunc::Avg,
            AggFunc::Count,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Variance,
        ] {
            let plan = Plan::scan("s").aggregate(func);
            let r = execute(&plan, &store, &cfg()).unwrap();
            let got = r.rows[0][0];
            let mut naive = AggState::new();
            vals.iter().for_each(|&v| naive.push(v));
            let want = finalize(func, &naive);
            match (got, want) {
                (Value::Float(a), Value::Float(b)) => assert!((a - b).abs() < 1e-9, "{func:?}"),
                (a, b) => assert_eq!(a, b, "{func:?}"),
            }
        }
    }

    #[test]
    fn time_filter_matches_naive() {
        let ts: Vec<i64> = (0..4000).map(|i| 1_000_000 + i * 100).collect();
        let vals: Vec<i64> = (0..4000).map(|i| i % 500).collect();
        let store = store_with("s", &ts, &vals, 512);
        let pred = Predicate::time(1_050_000, 1_250_000);
        let plan = Plan::scan("s").filter(pred).aggregate(AggFunc::Sum);
        let r = execute(&plan, &store, &cfg()).unwrap();
        let want: i64 = ts
            .iter()
            .zip(&vals)
            .filter(|(&t, _)| (1_050_000..=1_250_000).contains(&t))
            .map(|(_, &v)| v)
            .sum();
        assert_eq!(r.rows[0][0], Value::Int(want));
        // Pruning must have skipped out-of-range pages.
        assert!(r.stats.pages_pruned > 0);
    }

    #[test]
    fn value_filter_matches_naive() {
        let ts: Vec<i64> = (0..3000).collect();
        let vals: Vec<i64> = (0..3000).map(|i| (i * 31) % 1000).collect();
        let store = store_with("s", &ts, &vals, 512);
        let plan = Plan::scan("s")
            .filter(Predicate::value(500, i64::MAX))
            .aggregate(AggFunc::Count);
        let r = execute(&plan, &store, &cfg()).unwrap();
        let want = vals.iter().filter(|&&v| v >= 500).count() as i64;
        assert_eq!(r.rows[0][0], Value::Int(want));
    }

    #[test]
    fn window_aggregate_matches_naive() {
        let ts: Vec<i64> = (0..2000).map(|i| i * 10).collect();
        let vals: Vec<i64> = (0..2000).map(|i| i % 91).collect();
        let store = store_with("s", &ts, &vals, 333);
        let plan = Plan::scan("s").window(0, 2500, AggFunc::Sum);
        let r = execute(&plan, &store, &cfg()).unwrap();
        // Naive windows.
        let mut naive: std::collections::BTreeMap<i64, i64> = std::collections::BTreeMap::new();
        for (&t, &v) in ts.iter().zip(&vals) {
            *naive.entry((t / 2500) * 2500).or_default() += v;
        }
        assert_eq!(r.rows.len(), naive.len());
        for row in &r.rows {
            let (Value::Int(start), Value::Int(sum)) = (row[0], row[1]) else {
                panic!("bad row {row:?}")
            };
            assert_eq!(naive[&start], sum, "window {start}");
        }
    }

    #[test]
    fn serial_and_vectorized_agree() {
        let ts: Vec<i64> = (0..2500).map(|i| i * 7).collect();
        let vals: Vec<i64> = (0..2500).map(|i| (i % 301) - 150).collect();
        let store = store_with("s", &ts, &vals, 400);
        let plan = Plan::scan("s")
            .filter(Predicate::time(1000, 12_000).and(&Predicate::value(-100, 100)))
            .aggregate(AggFunc::Sum);
        let fast = execute(&plan, &store, &cfg()).unwrap();
        let serial_cfg = PipelineConfig {
            vectorized: false,
            threads: 1,
            prune: false,
            ..Default::default()
        };
        let slow = execute(&plan, &store, &serial_cfg).unwrap();
        assert_eq!(fast.rows, slow.rows);
    }

    #[test]
    fn fusion_levels_agree() {
        let ts: Vec<i64> = (0..3000).map(|i| i * 3).collect();
        let vals: Vec<i64> = (0..3000).map(|i| 10 + (i % 7)).collect();
        let store = store_with("s", &ts, &vals, 500);
        let plan = Plan::scan("s").aggregate(AggFunc::Sum);
        let mut results = Vec::new();
        for fuse in [FuseLevel::None, FuseLevel::Delta, FuseLevel::DeltaRepeat] {
            let c = PipelineConfig {
                fuse,
                allow_slicing: false,
                ..cfg()
            };
            results.push(execute(&plan, &store, &c).unwrap().rows);
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
    }

    #[test]
    fn sliced_execution_agrees_with_paged() {
        // 2 pages, 8 threads → slices; result must match unsliced.
        let ts: Vec<i64> = (0..2000).collect();
        let vals: Vec<i64> = (0..2000).map(|i| (i % 97) - 48).collect();
        let store = store_with("s", &ts, &vals, 1000);
        let plan = Plan::scan("s").aggregate(AggFunc::Sum);
        let sliced = PipelineConfig {
            threads: 8,
            allow_slicing: true,
            ..cfg()
        };
        let paged = PipelineConfig {
            threads: 8,
            allow_slicing: false,
            ..cfg()
        };
        let a = execute(&plan, &store, &sliced).unwrap();
        let b = execute(&plan, &store, &paged).unwrap();
        assert_eq!(a.rows, b.rows);
        // Min/max/variance also survive the symbolic slice merge.
        for func in [AggFunc::Min, AggFunc::Max, AggFunc::Variance, AggFunc::Avg] {
            let plan = Plan::scan("s").aggregate(func);
            let a = execute(&plan, &store, &sliced).unwrap();
            let b = execute(&plan, &store, &paged).unwrap();
            match (a.rows[0][0], b.rows[0][0]) {
                (Value::Float(x), Value::Float(y)) => assert!((x - y).abs() < 1e-6, "{func:?}"),
                (x, y) => assert_eq!(x, y, "{func:?}"),
            }
        }
    }

    #[test]
    fn union_and_join_match_naive() {
        let t1: Vec<i64> = (0..100).map(|i| i * 2).collect(); // evens
        let v1: Vec<i64> = (0..100).collect();
        let t2: Vec<i64> = (0..100).map(|i| i * 3).collect(); // multiples of 3
        let v2: Vec<i64> = (0..100).map(|i| 1000 + i).collect();
        let store = SeriesStore::new(64);
        store.create_series("a", Encoding::Ts2Diff, Encoding::Ts2Diff);
        store.create_series("b", Encoding::Ts2Diff, Encoding::Ts2Diff);
        store.append_all("a", &t1, &v1).unwrap();
        store.append_all("b", &t2, &v2).unwrap();
        store.flush("a").unwrap();
        store.flush("b").unwrap();

        let union = Plan::Union {
            left: Box::new(Plan::scan("a")),
            right: Box::new(Plan::scan("b")),
        };
        let r = execute(&union, &store, &cfg()).unwrap();
        assert_eq!(r.rows.len(), 200);
        // Sorted by time.
        let times: Vec<i64> = r
            .rows
            .iter()
            .map(|row| match row[0] {
                Value::Int(t) => t,
                _ => panic!(),
            })
            .collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));

        let join = Plan::Join {
            left: Box::new(Plan::scan("a")),
            right: Box::new(Plan::scan("b")),
            on: None,
        };
        let r = execute(&join, &store, &cfg()).unwrap();
        // Equal timestamps: multiples of 6 below 198 and below 297 → 0,6,...,198.
        let want = t1.iter().filter(|t| t2.contains(t)).count();
        assert_eq!(r.rows.len(), want);

        let jexpr = Plan::JoinExpr {
            left: Box::new(Plan::scan("a")),
            right: Box::new(Plan::scan("b")),
            op: BinOp::Add,
        };
        let r = execute(&jexpr, &store, &cfg()).unwrap();
        assert_eq!(r.rows.len(), want);
        // Row 0: t=0, a=0, b=1000 → 1000.
        assert_eq!(r.rows[0], vec![Value::Int(0), Value::Int(1000)]);
    }

    #[test]
    fn empty_result_yields_null() {
        let ts: Vec<i64> = (0..100).collect();
        let vals = ts.clone();
        let store = store_with("s", &ts, &vals, 50);
        let plan = Plan::scan("s")
            .filter(Predicate::time(10_000, 20_000))
            .aggregate(AggFunc::Sum);
        let r = execute(&plan, &store, &cfg()).unwrap();
        assert_eq!(r.rows[0][0], Value::Null);
    }

    #[test]
    fn first_last_aggregates_match_naive() {
        let ts: Vec<i64> = (0..3000).map(|i| i * 5).collect();
        let vals: Vec<i64> = (0..3000).map(|i| (i * 37) % 1009 - 200).collect();
        let store = store_with("s", &ts, &vals, 256);
        // Whole series, sliced and unsliced.
        for threads in [1usize, 8] {
            let c = PipelineConfig { threads, ..cfg() };
            let first = execute(&Plan::scan("s").aggregate(AggFunc::First), &store, &c).unwrap();
            let last = execute(&Plan::scan("s").aggregate(AggFunc::Last), &store, &c).unwrap();
            assert_eq!(first.rows[0][0], Value::Int(vals[0]), "threads {threads}");
            assert_eq!(
                last.rows[0][0],
                Value::Int(*vals.last().unwrap()),
                "threads {threads}"
            );
        }
        // With a time filter.
        let pred = Predicate::time(ts[100], ts[2000]);
        let r = execute(
            &Plan::scan("s").filter(pred).aggregate(AggFunc::First),
            &store,
            &cfg(),
        )
        .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(vals[100]));
        // With a value filter (first qualifying value).
        let pred = Predicate::value(500, i64::MAX);
        let want = *vals.iter().find(|&&v| v >= 500).unwrap();
        let r = execute(
            &Plan::scan("s").filter(pred).aggregate(AggFunc::First),
            &store,
            &cfg(),
        )
        .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(want));
        // Windowed LAST: one row per window, each the window's last value.
        let r = execute(
            &Plan::scan("s").window(0, 2500, AggFunc::Last),
            &store,
            &cfg(),
        )
        .unwrap();
        for row in &r.rows {
            let (Value::Int(start), Value::Int(got)) = (row[0], row[1]) else {
                panic!()
            };
            let want = ts
                .iter()
                .zip(&vals)
                .filter(|(&t, _)| t >= start && t < start + 2500)
                .map(|(_, &v)| v)
                .next_back()
                .unwrap();
            assert_eq!(got, want, "window {start}");
        }
        // Serial engine agrees.
        let serial = PipelineConfig {
            vectorized: false,
            threads: 1,
            prune: false,
            ..cfg()
        };
        let a = execute(&Plan::scan("s").aggregate(AggFunc::Last), &store, &serial).unwrap();
        let b = execute(&Plan::scan("s").aggregate(AggFunc::Last), &store, &cfg()).unwrap();
        assert_eq!(a.rows, b.rows);
    }

    #[test]
    fn inter_column_join_predicate_filters_rows() {
        let t: Vec<i64> = (0..500).collect();
        let a: Vec<i64> = (0..500).map(|i| i % 100).collect();
        let b: Vec<i64> = (0..500).map(|_| 50).collect();
        let store = SeriesStore::new(128);
        store.create_series("a", Encoding::Ts2Diff, Encoding::Ts2Diff);
        store.create_series("b", Encoding::Ts2Diff, Encoding::Ts2Diff);
        store.append_all("a", &t, &a).unwrap();
        store.append_all("b", &t, &b).unwrap();
        store.flush("a").unwrap();
        store.flush("b").unwrap();
        for (op, want) in [
            (CmpOp::Gt, a.iter().filter(|&&v| v > 50).count()),
            (CmpOp::Le, a.iter().filter(|&&v| v <= 50).count()),
            (CmpOp::Eq, a.iter().filter(|&&v| v == 50).count()),
        ] {
            let plan = Plan::Join {
                left: Box::new(Plan::scan("a")),
                right: Box::new(Plan::scan("b")),
                on: Some(op),
            };
            let r = execute(&plan, &store, &cfg()).unwrap();
            assert_eq!(r.rows.len(), want, "{op:?}");
        }
    }

    #[test]
    fn partitioned_merge_agrees_with_single_thread() {
        // Figure 9 merge nodes: many partitions must produce exactly the
        // sequential result for every binary operator, including on
        // misaligned clocks with filters.
        let t1: Vec<i64> = (0..3000).map(|i| i * 2).collect();
        let v1: Vec<i64> = (0..3000).map(|i| i % 251).collect();
        let t2: Vec<i64> = (0..3000).map(|i| i * 3 + 1).collect();
        let v2: Vec<i64> = (0..3000).map(|i| 500 - i % 100).collect();
        let store = SeriesStore::new(200);
        store.create_series("a", Encoding::Ts2Diff, Encoding::Ts2Diff);
        store.create_series("b", Encoding::Ts2Diff, Encoding::Ts2Diff);
        store.append_all("a", &t1, &v1).unwrap();
        store.append_all("b", &t2, &v2).unwrap();
        store.flush("a").unwrap();
        store.flush("b").unwrap();
        let pred = Predicate::time(1000, 8000);
        for plan in [
            Plan::Union {
                left: Box::new(Plan::scan("a").filter(pred)),
                right: Box::new(Plan::scan("b")),
            },
            Plan::Join {
                left: Box::new(Plan::scan("a")),
                right: Box::new(Plan::scan("b")),
                on: None,
            },
            Plan::JoinExpr {
                left: Box::new(Plan::scan("a")),
                right: Box::new(Plan::scan("b").filter(pred)),
                op: BinOp::Mul,
            },
        ] {
            let sequential = execute(
                &plan,
                &store,
                &PipelineConfig {
                    threads: 1,
                    ..cfg()
                },
            )
            .unwrap();
            for threads in [2usize, 5, 16] {
                let parallel =
                    execute(&plan, &store, &PipelineConfig { threads, ..cfg() }).unwrap();
                assert_eq!(
                    parallel.rows, sequential.rows,
                    "threads {threads} plan {plan:?}"
                );
            }
        }
    }

    #[test]
    fn tight_decode_budget_still_answers_correctly() {
        // §VI-C gradual loading: a budget smaller than one page's decode
        // buffers must not deadlock (oversized grants) and a budget that
        // serializes page decodes must still produce the right rows.
        let ts: Vec<i64> = (0..5000).collect();
        let vals: Vec<i64> = (0..5000).map(|i| i % 77).collect();
        let store = store_with("s", &ts, &vals, 512);
        let plan = Plan::scan("s").filter(Predicate::value(10, 50));
        let unlimited = execute(&plan, &store, &cfg()).unwrap();
        for budget in [1u64, 512 * 16, 10_000_000] {
            let c = PipelineConfig {
                threads: 4,
                decode_budget_bytes: Some(budget),
                ..cfg()
            };
            let r = execute(&plan, &store, &c).unwrap();
            assert_eq!(r.rows, unlimited.rows, "budget {budget}");
        }
    }

    #[test]
    fn delta_rle_values_use_full_fusion() {
        let ts: Vec<i64> = (0..2048).collect();
        let vals: Vec<i64> = (0..2048).map(|i| 5 + (i / 100)).collect(); // long runs
        let store = SeriesStore::new(1024);
        store.create_series("s", Encoding::Ts2Diff, Encoding::DeltaRle);
        store.append_all("s", &ts, &vals).unwrap();
        store.flush("s").unwrap();
        for func in [AggFunc::Sum, AggFunc::Min, AggFunc::Max, AggFunc::Variance] {
            let plan = Plan::scan("s").aggregate(func);
            let r = execute(
                &plan,
                &store,
                &PipelineConfig {
                    allow_slicing: false,
                    ..cfg()
                },
            )
            .unwrap();
            let mut naive = AggState::new();
            vals.iter().for_each(|&v| naive.push(v));
            let want = finalize(func, &naive);
            match (r.rows[0][0], want) {
                (Value::Float(a), Value::Float(b)) => assert!((a - b).abs() < 1e-9, "{func:?}"),
                (a, b) => assert_eq!(a, b, "{func:?}"),
            }
        }
    }
}
