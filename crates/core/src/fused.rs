//! Operator fusion: aggregation **without decoding** (paper §IV).
//!
//! Two fusion families:
//!
//! * **Delta fusion** (TS2DIFF): `Σ v_k = n·v₀ + Σ_j (n−j)·δ_j` — the sum
//!   needs only the *unpacked* deltas with position weights; the Delta
//!   accumulation (and any materialization) is skipped entirely. This is
//!   the `3X₀+3D₁+3D₂+2D₃+D₄+12·base` identity of Example 2.
//! * **Delta–Repeat fusion** (Delta-RLE): per `(Δ, r)` pair the run is an
//!   arithmetic progression, so `Σ = r·a_n + Δ·r(r+1)/2`, `Σ A² ` and
//!   `Σ A·B` are degree-2/3 polynomials (the §IV expansion), and COUNT
//!   within a time range needs no decoding at all. Proposition 3's
//!   incremental `f·g` shape: `a_n` is carried across pairs.
//!
//! [`FuseLevel`] grades how many decoders are fused — the ablation axis of
//! Figure 14(a).

use etsqp_encoding::delta_rle::DeltaRlePage;
use etsqp_encoding::stream_vbyte::SvbPage;
use etsqp_encoding::ts2diff::Ts2DiffPage;
use etsqp_simd::agg::AggState;
use etsqp_simd::{svb, unpack};

use crate::decode::{decode_svb, decode_ts2diff, DecodeOptions};
use crate::{Error, Result};

/// How many decoders the aggregation is fused across (Figure 14(a)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FuseLevel {
    /// Decode everything (unpack + flatten + accumulate), then aggregate.
    None,
    /// Fuse the aggregation with the Delta decoder: aggregate from
    /// unpacked deltas, skipping accumulation.
    Delta,
    /// Fuse across Delta *and* Repeat: aggregate from `(Δ, run)` pairs,
    /// skipping both flattening and accumulation.
    DeltaRepeat,
}

/// SUM over all values of a TS2DIFF (order-1) page without Delta decoding:
/// `Σ v = n·v₀ + Σ_j (n−j)·(base + s_j)`.
///
/// ```
/// use etsqp_core::{decode::DecodeOptions, fused::sum_ts2diff};
/// let bytes = etsqp_encoding::ts2diff::encode(&[10, 20, 30, 40], 1);
/// let page = etsqp_encoding::ts2diff::parse(&bytes).unwrap();
/// let state = sum_ts2diff(&page, &DecodeOptions::default()).unwrap();
/// assert_eq!(state.sum, 100);
/// ```
///
/// Order-2 pages fall back to decode-then-sum (double accumulation makes
/// the closed form cubic; the paper fuses single-Delta formats).
pub fn sum_ts2diff(page: &Ts2DiffPage<'_>, opts: &DecodeOptions) -> Result<AggState> {
    let mut state = AggState::new();
    if page.count == 0 {
        return Ok(state);
    }
    if page.order != 1 {
        let mut out = Vec::new();
        decode_ts2diff(page, opts, &mut out)?;
        state.push_slice(&out);
        return Ok(state);
    }
    let n = page.count as i128;
    let m = page.num_deltas();
    // Unpack the stored deltas (SIMD) — the only decoder we keep. Widths
    // up to 64 bits occur whenever the delta spread exceeds 2³², so the
    // 64-bit unpacker is required (unpack_u32 asserts width ≤ 32).
    let mut stored = vec![0u64; m];
    unpack::unpack_u64(page.payload, 0, page.width, &mut stored);
    // Weighted sum Σ (m−j)·s_j with j zero-based over deltas: the delta at
    // index j contributes to values j+1..count, i.e. (m − j) values.
    let mut weighted: i128 = 0;
    let mut plain_sum: i128 = 0;
    for (j, &s) in stored.iter().enumerate() {
        weighted += (m - j) as i128 * s as i128;
        plain_sum += s as i128;
    }
    let base = page.min_delta as i128;
    // Σ_j (m−j)·base = base · m(m+1)/2.
    let tri = m as i128 * (m as i128 + 1) / 2;
    state.sum = n * page.first[0] as i128 + base * tri + weighted;
    state.count = page.count as u64;
    // MIN/MAX/Σx² still require values; fused SUM/AVG/COUNT leave them
    // unset. (Callers needing them decode — see FuseLevel::None.)
    let _ = plain_sum;
    state.min = None;
    state.max = None;
    state.sum_sq = 0;
    Ok(state)
}

/// SUM over all values of a Stream VByte page without prefix summing:
/// the quad-shuffle decode yields the zigzag'd deltas `δ_j` directly, and
/// `Σ v = n·v₀ + Σ_j (n−1−j)·δ_j` (delta `j` connects value `j` to `j+1`,
/// so it is counted once per value above it).
///
/// ```
/// use etsqp_core::{decode::DecodeOptions, fused::sum_svb};
/// let bytes = etsqp_encoding::stream_vbyte::encode(&[10, 20, 30, 40]);
/// let page = etsqp_encoding::stream_vbyte::parse(&bytes).unwrap();
/// let state = sum_svb(&page, &DecodeOptions::default()).unwrap();
/// assert_eq!(state.sum, 100);
/// ```
///
/// Wide-mode pages (mode 1: some delta's zigzag exceeded 32 bits) fall
/// back to decode-then-sum — the closed form needs every stored delta to
/// be the exact difference, which only mode 0 pages written under the
/// planner's `spread_fits_i64` gate guarantee.
pub fn sum_svb(page: &SvbPage<'_>, opts: &DecodeOptions) -> Result<AggState> {
    let mut state = AggState::new();
    if page.count == 0 {
        return Ok(state);
    }
    if page.mode != 0 {
        let mut out = Vec::new();
        decode_svb(page, opts, &mut out)?;
        state.push_slice(&out);
        return Ok(state);
    }
    let n = page.count as i128;
    let m = page.num_deltas();
    let mut zz = vec![0u32; m];
    let used = svb::decode_quads(page.controls, page.data, m, &mut zz);
    debug_assert_eq!(used, page.data_len);
    // Weighted sum Σ (m−j)·δ_j with j zero-based: delta j contributes to
    // values j+1..count, i.e. (m − j) of them. δ_j un-zigzags in the
    // 64-bit domain exactly (mode 0 means every zigzag fit 32 bits).
    let mut weighted: i128 = 0;
    for (j, &z) in zz.iter().enumerate() {
        let d = etsqp_encoding::zigzag::decode_zigzag(z as u64) as i128;
        weighted += (m - j) as i128 * d;
    }
    state.sum = n * page.first as i128 + weighted;
    state.count = page.count as u64;
    // MIN/MAX/Σx² still require values; fused SUM/AVG/COUNT leave them
    // unset, exactly like [`sum_ts2diff`].
    Ok(state)
}

/// SUM over the value-index range `[a, b]` (inclusive) of a TS2DIFF
/// (order-1) page without Delta decoding.
///
/// With `v_k = v₀ + Σ_{j<k} δ_j` (delta index `j` connects value `j` to
/// `j+1`), the range sum expands to
/// `(b−a+1)·v₀ + Σ_j w_j·δ_j` where delta `j` is counted once per covered
/// value above it: `w_j = b − max(j+1, a) + 1` for `j < b`, else 0.
pub fn sum_ts2diff_range(
    page: &Ts2DiffPage<'_>,
    a: usize,
    b: usize,
    opts: &DecodeOptions,
) -> Result<AggState> {
    let mut state = AggState::new();
    if page.count == 0 || a > b || a >= page.count {
        return Ok(state);
    }
    let b = b.min(page.count - 1);
    if page.order != 1 {
        let mut out = Vec::new();
        decode_ts2diff(page, opts, &mut out)?;
        state.push_slice(&out[a..=b]);
        return Ok(state);
    }
    let len = (b - a + 1) as i128;
    let m = b; // deltas 0..b participate
    let mut stored = vec![0u64; m];
    unpack::unpack_u64(page.payload, 0, page.width, &mut stored);
    let base = page.min_delta as i128;
    let mut weighted: i128 = 0;
    let mut weight_total: i128 = 0;
    for (j, &s) in stored.iter().enumerate() {
        // Delta j contributes to values max(j+1, a)..=b.
        let w = (b - (j + 1).max(a) + 1) as i128;
        weighted += w * s as i128;
        weight_total = weight_total.saturating_add(w);
    }
    state.sum = len * page.first[0] as i128 + base * weight_total + weighted;
    state.count = len as u64;
    Ok(state)
}

/// Full aggregate state over a Delta-RLE page without flattening or
/// accumulation: SUM/COUNT/MIN/MAX/Σx² from `(Δ, run)` pairs.
pub fn aggregate_delta_rle(page: &DeltaRlePage<'_>) -> Result<AggState> {
    let mut state = AggState::new();
    if page.count == 0 {
        return Ok(state);
    }
    state.push(page.first);
    let mut a = page.first as i128; // running value a_n (Proposition 3 carry)
    for (delta, run) in page.pairs() {
        let r = run as i128;
        let d = delta as i128;
        // Σ_{i=1..r} (a + iΔ) = r·a + Δ·r(r+1)/2. Hostile headers can
        // push the carry far outside i64; saturate like sum_sq below
        // instead of tripping debug overflow checks.
        let tri = r * (r + 1) / 2;
        state.sum = state
            .sum
            .saturating_add(r.saturating_mul(a).saturating_add(d.saturating_mul(tri)));
        // Σ (a + iΔ)² = r·a² + 2aΔ·tri + Δ²·Σi² ; Σi² = r(r+1)(2r+1)/6.
        // Second-order terms saturate like AggState::sum_sq does.
        let sq = r * (r + 1) * (2 * r + 1) / 6;
        state.sum_sq = state.sum_sq.saturating_add(
            r.saturating_mul(a.saturating_mul(a))
                .saturating_add((2 * a).saturating_mul(d.saturating_mul(tri)))
                .saturating_add(d.saturating_mul(d).saturating_mul(sq)),
        );
        state.count = state.count.saturating_add(run);
        // The run is monotonic: extremes are its endpoints.
        let end = a + d * r;
        let first_of_run = a + d;
        let (lo, hi) = if d >= 0 {
            (first_of_run, end)
        } else {
            (end, first_of_run)
        };
        let lo = i128_to_i64(lo)?;
        let hi = i128_to_i64(hi)?;
        state.min = Some(state.min.map_or(lo, |m| m.min(lo)));
        state.max = Some(state.max.map_or(hi, |m| m.max(hi)));
        a = end;
    }
    // `state.push(page.first)` above left `last` at the page's *first*
    // value; LAST must track the running carry through every run.
    // Regression: differential oracle case
    // `spec=Atm codec=DeltaRle fuse=DeltaRepeat query=LAST(all)`.
    state.last = Some(i128_to_i64(a)?);
    Ok(state)
}

/// `Σ A_i·B_i` over two aligned Delta-RLE pages (same timestamps) — the
/// §IV polynomial `valid·AₙBₙ + Aₙ·Σ(iΔB) + Bₙ·Σ(iΔA) + ΣI²·ΔA·ΔB`,
/// applied per overlapping run fragment; feeds covariance/correlation.
pub fn dot_product_delta_rle(a: &DeltaRlePage<'_>, b: &DeltaRlePage<'_>) -> Result<i128> {
    if a.count != b.count {
        return Err(Error::Plan("dot product needs aligned pages".into()));
    }
    if a.count == 0 {
        return Ok(0);
    }
    let mut total: i128 = a.first as i128 * b.first as i128;
    let mut pa = a.pairs();
    let mut pb = b.pairs();
    let (mut da, mut ra) = pa.next().unwrap_or((0, 0));
    let (mut db, mut rb) = pb.next().unwrap_or((0, 0));
    let mut va = a.first as i128;
    let mut vb = b.first as i128;
    loop {
        if ra == 0 {
            match pa.next() {
                Some((d, r)) => {
                    da = d;
                    ra = r;
                }
                None => break,
            }
            continue;
        }
        if rb == 0 {
            match pb.next() {
                Some((d, r)) => {
                    db = d;
                    rb = r;
                }
                None => break,
            }
            continue;
        }
        // Aggregate min(ra, rb) tuples in closed form (the paper's
        // `valid ≤ min(RLE₁, RLE₂)` fragmenting).
        let valid = ra.min(rb) as i128;
        let (dai, dbi) = (da as i128, db as i128);
        let tri = valid * (valid + 1) / 2;
        let sq = valid * (valid + 1) * (2 * valid + 1) / 6;
        total = total.saturating_add(
            valid
                .saturating_mul(va)
                .saturating_mul(vb)
                .saturating_add(va.saturating_mul(dbi).saturating_mul(tri))
                .saturating_add(vb.saturating_mul(dai).saturating_mul(tri))
                .saturating_add(dai.saturating_mul(dbi).saturating_mul(sq)),
        );
        va = va.saturating_add(dai.saturating_mul(valid));
        vb = vb.saturating_add(dbi.saturating_mul(valid));
        ra -= valid as u64;
        rb -= valid as u64;
    }
    Ok(total)
}

/// COUNT of tuples whose *timestamp* falls in `[t_lo, t_hi]`, computed
/// from a Delta-RLE-encoded timestamp page without decoding: within a run
/// the timestamps form an arithmetic progression, so the count per run is
/// solved directly (Figure 12(c-d)'s "directly counting the satisfied
/// tuples").
pub fn count_in_range_delta_rle(page: &DeltaRlePage<'_>, t_lo: i64, t_hi: i64) -> u64 {
    if page.count == 0 || t_lo > t_hi {
        return 0;
    }
    let mut count = 0u64;
    let mut t = page.first as i128;
    if t >= t_lo as i128 && t <= t_hi as i128 {
        count = count.saturating_add(1);
    }
    for (delta, run) in page.pairs() {
        let d = delta as i128;
        let r = run as i128;
        // Values t + i·d for i in 1..=r.
        let (lo, hi) = (t_lo as i128, t_hi as i128);
        count = count.saturating_add(count_progression_in_range(t, d, r, lo, hi));
        t = t.saturating_add(d.saturating_mul(r));
    }
    count
}

/// Number of i in `1..=r` with `lo <= t0 + i·d <= hi`.
fn count_progression_in_range(t0: i128, d: i128, r: i128, lo: i128, hi: i128) -> u64 {
    if r <= 0 {
        return 0;
    }
    if d == 0 {
        return if t0 >= lo && t0 <= hi { r as u64 } else { 0 };
    }
    // Solve lo ≤ t0 + i·d ≤ hi for i.
    let (i_min, i_max) = if d > 0 {
        (div_ceil(lo - t0, d), div_floor(hi - t0, d))
    } else {
        (div_ceil(hi - t0, d), div_floor(lo - t0, d))
    };
    let i_min = i_min.max(1);
    let i_max = i_max.min(r);
    if i_max >= i_min {
        (i_max - i_min + 1) as u64
    } else {
        0
    }
}

fn div_floor(a: i128, b: i128) -> i128 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

fn div_ceil(a: i128, b: i128) -> i128 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) == (b < 0)) {
        q + 1
    } else {
        q
    }
}

fn i128_to_i64(v: i128) -> Result<i64> {
    i64::try_from(v).map_err(|_| Error::Overflow)
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsqp_encoding::{delta_rle, stream_vbyte, ts2diff};

    fn naive_state(values: &[i64]) -> AggState {
        let mut s = AggState::new();
        values.iter().for_each(|&v| s.push(v));
        s
    }

    #[test]
    fn fused_sum_matches_decode_sum() {
        let values: Vec<i64> = (0..1000).map(|i| 500 + i * 3 + (i % 17)).collect();
        let bytes = ts2diff::encode(&values, 1);
        let page = ts2diff::parse(&bytes).unwrap();
        let fused = sum_ts2diff(&page, &DecodeOptions::default()).unwrap();
        let naive = naive_state(&values);
        assert_eq!(fused.sum, naive.sum);
        assert_eq!(fused.count, naive.count);
        assert_eq!(fused.avg(), naive.avg());
    }

    #[test]
    fn fused_sum_example2_identity() {
        // Example 2: sum over the TS2DIFF page equals
        // n·X₀ + Σ weighted deltas + triangular·base.
        let values = vec![12i64, 76, 142, 205];
        let bytes = ts2diff::encode(&values, 1);
        let page = ts2diff::parse(&bytes).unwrap();
        let fused = sum_ts2diff(&page, &DecodeOptions::default()).unwrap();
        assert_eq!(fused.sum, (12 + 76 + 142 + 205) as i128);
    }

    #[test]
    fn fused_sum_negative_slopes_and_short() {
        for values in [
            vec![],
            vec![9],
            vec![9, 3],
            (0..100).map(|i| 1000 - i * 7).collect::<Vec<_>>(),
        ] {
            let bytes = ts2diff::encode(&values, 1);
            let page = ts2diff::parse(&bytes).unwrap();
            let fused = sum_ts2diff(&page, &DecodeOptions::default()).unwrap();
            assert_eq!(fused.sum, values.iter().map(|&v| v as i128).sum::<i128>());
        }
    }

    #[test]
    fn fused_svb_sum_matches_decode_sum() {
        let values: Vec<i64> = (0..1000)
            .map(|i| 500 + i * 3 + (i % 17) - (i % 5) * 1000)
            .collect();
        let bytes = stream_vbyte::encode(&values);
        let page = stream_vbyte::parse(&bytes).unwrap();
        assert_eq!(page.mode, 0);
        let fused = sum_svb(&page, &DecodeOptions::default()).unwrap();
        let naive = naive_state(&values);
        assert_eq!(fused.sum, naive.sum);
        assert_eq!(fused.count, naive.count);
        assert_eq!(fused.avg(), naive.avg());
    }

    #[test]
    fn fused_svb_sum_short_and_empty() {
        for values in [
            vec![],
            vec![9],
            vec![9, 3],
            vec![-1, -2, -3],
            (0..100).map(|i| 1000 - i * 7).collect::<Vec<_>>(),
        ] {
            let bytes = stream_vbyte::encode(&values);
            let page = stream_vbyte::parse(&bytes).unwrap();
            let fused = sum_svb(&page, &DecodeOptions::default()).unwrap();
            assert_eq!(fused.sum, values.iter().map(|&v| v as i128).sum::<i128>());
            assert_eq!(fused.count, values.len() as u64);
        }
    }

    #[test]
    fn fused_svb_wide_mode_falls_back() {
        // A delta beyond ±2³¹ forces wide mode; the fallback decodes.
        let values = vec![0i64, 1 << 40, 3, -(1 << 50), 7];
        let bytes = stream_vbyte::encode(&values);
        let page = stream_vbyte::parse(&bytes).unwrap();
        assert_eq!(page.mode, 1);
        let fused = sum_svb(&page, &DecodeOptions::default()).unwrap();
        assert_eq!(fused.sum, values.iter().map(|&v| v as i128).sum::<i128>());
        assert_eq!(fused.count, values.len() as u64);
    }

    #[test]
    fn fused_range_sum_matches_slice_sum() {
        let values: Vec<i64> = (0..300).map(|i| 40 + i * 2 - (i % 5)).collect();
        let bytes = ts2diff::encode(&values, 1);
        let page = ts2diff::parse(&bytes).unwrap();
        for (a, b) in [
            (0usize, 299usize),
            (0, 0),
            (10, 10),
            (5, 250),
            (250, 299),
            (299, 299),
            (100, 9999),
        ] {
            let got = sum_ts2diff_range(&page, a, b, &DecodeOptions::default()).unwrap();
            let hi = b.min(values.len() - 1);
            let want: i128 = values[a..=hi].iter().map(|&v| v as i128).sum();
            assert_eq!(got.sum, want, "range [{a}, {b}]");
            assert_eq!(got.count, (hi - a + 1) as u64);
        }
        // Degenerate: a beyond the page.
        let empty = sum_ts2diff_range(&page, 500, 600, &DecodeOptions::default()).unwrap();
        assert_eq!(empty.count, 0);
    }

    #[test]
    fn delta_rle_aggregate_matches_naive() {
        let mut values = Vec::new();
        let mut v = 100i64;
        for (slope, len) in [(5i64, 40usize), (-3, 25), (0, 60), (11, 7)] {
            for _ in 0..len {
                v += slope;
                values.push(v);
            }
        }
        values.insert(0, 100);
        let bytes = delta_rle::encode(&values);
        let page = delta_rle::parse(&bytes).unwrap();
        let fused = aggregate_delta_rle(&page).unwrap();
        let naive = naive_state(&values);
        assert_eq!(fused.sum, naive.sum);
        assert_eq!(fused.sum_sq, naive.sum_sq);
        assert_eq!(fused.count, naive.count);
        assert_eq!(fused.min, naive.min);
        assert_eq!(fused.max, naive.max);
        assert_eq!(fused.variance(), naive.variance());
    }

    #[test]
    fn dot_product_matches_naive() {
        let n = 200usize;
        let a_vals: Vec<i64> = (0..n as i64).map(|i| 10 + i / 7).collect();
        let b_vals: Vec<i64> = (0..n as i64).map(|i| 500 - i / 3).collect();
        let pa_bytes = delta_rle::encode(&a_vals);
        let pb_bytes = delta_rle::encode(&b_vals);
        let pa = delta_rle::parse(&pa_bytes).unwrap();
        let pb = delta_rle::parse(&pb_bytes).unwrap();
        let got = dot_product_delta_rle(&pa, &pb).unwrap();
        let want: i128 = a_vals
            .iter()
            .zip(&b_vals)
            .map(|(&a, &b)| a as i128 * b as i128)
            .sum();
        assert_eq!(got, want);
    }

    #[test]
    fn count_in_range_matches_filtered_count() {
        let ts: Vec<i64> = (0..500).map(|i| 1000 + i * 10 + (i / 100)).collect();
        let bytes = delta_rle::encode(&ts);
        let page = delta_rle::parse(&bytes).unwrap();
        for (lo, hi) in [
            (0, 100),
            (1500, 3000),
            (1000, 1000),
            (5990, 6010),
            (9000, 1),
        ] {
            let got = count_in_range_delta_rle(&page, lo, hi);
            let want = ts.iter().filter(|&&t| t >= lo && t <= hi).count() as u64;
            assert_eq!(got, want, "range [{lo}, {hi}]");
        }
    }

    #[test]
    fn count_in_range_descending_timeline_values() {
        // Negative deltas (a descending value series used as filter input).
        let vals: Vec<i64> = (0..300).map(|i| 10_000 - i * 7).collect();
        let bytes = delta_rle::encode(&vals);
        let page = delta_rle::parse(&bytes).unwrap();
        let got = count_in_range_delta_rle(&page, 8000, 9000);
        let want = vals.iter().filter(|&&v| (8000..=9000).contains(&v)).count() as u64;
        assert_eq!(got, want);
    }

    #[test]
    fn progression_count_edge_cases() {
        // d = 0 inside/outside.
        assert_eq!(count_progression_in_range(5, 0, 10, 0, 10), 10);
        assert_eq!(count_progression_in_range(50, 0, 10, 0, 10), 0);
        // Exact boundary hits.
        assert_eq!(count_progression_in_range(0, 10, 5, 10, 50), 5);
        assert_eq!(count_progression_in_range(0, 10, 5, 11, 49), 3);
    }
}
