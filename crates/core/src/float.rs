//! Float-series queries: aggregation and scans over `f64` value columns
//! stored with the XOR codec family (GorillaFloat / Chimp / Elf).
//!
//! XOR codecs expose no Delta statistics, so the §IV fusion and §V suffix
//! rules do not apply (consistent with the paper, whose fused operators
//! are defined on Delta/Delta-Repeat formats). What *does* carry over:
//!
//! * **page-level pruning** — float min/max live in page headers through
//!   the order-preserving `f64 → i64` mapping, so time ranges *and* float
//!   value ranges skip pages without decoding;
//! * **core-level parallelism** — pages decode as independent jobs on the
//!   scheduler; partials combine in a merge fold.

use etsqp_encoding::f64_to_ordered_i64;
#[cfg(test)]
use etsqp_encoding::Encoding;
use etsqp_storage::ingest::{HotFloatSnapshot, HotSnapshot};
use etsqp_storage::store::SeriesStore;

use crate::cancel::CancellationToken;
use crate::exec::{run_jobs_ctl, ExecStats, StatsSnapshot};
use crate::expr::{AggFunc, TimeRange};
use crate::physical::node::Stage;
use crate::plan::PipelineConfig;
use crate::{Error, Result};

/// Aggregate state over float values (merged across page jobs).
#[derive(Debug, Clone, Copy, Default)]
pub struct FloatAgg {
    /// Σ of qualifying values.
    pub sum: f64,
    /// Number of qualifying values.
    pub count: u64,
    /// Minimum, if any value qualified.
    pub min: Option<f64>,
    /// Maximum, if any value qualified.
    pub max: Option<f64>,
    /// Σ v² (for variance).
    pub sum_sq: f64,
}

impl FloatAgg {
    /// Folds one value.
    pub fn push(&mut self, v: f64) {
        self.sum += v;
        self.sum_sq += v * v;
        self.count += 1;
        self.min = Some(self.min.map_or(v, |m| m.min(v)));
        self.max = Some(self.max.map_or(v, |m| m.max(v)));
    }

    /// Merges another partial.
    pub fn merge(&mut self, o: &FloatAgg) {
        self.sum += o.sum;
        self.sum_sq += o.sum_sq;
        self.count += o.count;
        self.min = match (self.min, o.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, o.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }

    /// Mean; `None` when empty.
    pub fn avg(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Population variance; `None` when empty.
    pub fn variance(&self) -> Option<f64> {
        (self.count > 0).then(|| {
            let n = self.count as f64;
            // Clamp: population variance is non-negative, but the
            // E[x²]−mean² form can round below zero in f64.
            (self.sum_sq / n - (self.sum / n).powi(2)).max(0.0)
        })
    }

    /// Finalizes to the requested function's value; `None` when empty.
    pub fn finish(&self, func: AggFunc) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        match func {
            AggFunc::Sum => Some(self.sum),
            AggFunc::Count => Some(self.count as f64),
            AggFunc::Avg => self.avg(),
            AggFunc::Min => self.min,
            AggFunc::Max => self.max,
            AggFunc::Variance => self.variance(),
            // First/last qualifying float values are not tracked by this
            // state (the float path targets algebraic aggregates), and
            // the partial-only functions (quantile sketches, rate/delta)
            // need a PartialState the float path does not build.
            AggFunc::First
            | AggFunc::Last
            | AggFunc::P50
            | AggFunc::P95
            | AggFunc::P99
            | AggFunc::Rate
            | AggFunc::Delta => None,
        }
    }
}

/// A float range filter `[lo, hi]` (inclusive, NaN never matches).
#[derive(Debug, Clone, Copy)]
pub struct FloatRange {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Inclusive upper bound.
    pub hi: f64,
}

/// Aggregates a float series over optional time and value ranges.
///
/// Pages outside either range are pruned from their headers alone (the
/// value bounds compare in the order-preserving mapped domain).
pub fn aggregate_f64(
    store: &SeriesStore,
    series: &str,
    trange: Option<TimeRange>,
    vrange: Option<FloatRange>,
    cfg: &PipelineConfig,
) -> Result<(FloatAgg, StatsSnapshot)> {
    aggregate_f64_ctl(
        store,
        series,
        trange,
        vrange,
        cfg,
        &CancellationToken::none(),
    )
}

/// [`aggregate_f64`] under a cancellation token (checked per page job).
pub fn aggregate_f64_ctl(
    store: &SeriesStore,
    series: &str,
    trange: Option<TimeRange>,
    vrange: Option<FloatRange>,
    cfg: &PipelineConfig,
    ctl: &CancellationToken,
) -> Result<(FloatAgg, StatsSnapshot)> {
    let stats = ExecStats::default();
    let snap = store.snapshot(series)?;
    let pages = snap.pages;
    if let Some(p) = pages.first() {
        if !p.header.val_encoding.is_float() {
            return Err(Error::Plan(format!("{series} is not a float series")));
        }
    }
    let hot = match snap.hot {
        Some(HotSnapshot::Float(h)) => Some(h),
        Some(HotSnapshot::Int(_)) => {
            return Err(Error::Plan(format!("{series} is not a float series")))
        }
        None => None,
    };
    let mapped = vrange.map(|r| (f64_to_ordered_i64(r.lo), f64_to_ordered_i64(r.hi)));
    let mut kept = Vec::with_capacity(pages.len());
    for page in pages {
        let keep = !cfg.prune
            || (trange.is_none_or(|t| page.header.overlaps_time(t.lo, t.hi))
                && mapped.is_none_or(|(lo, hi)| page.header.overlaps_value(lo, hi)));
        if keep {
            kept.push(page);
        } else {
            stats
                .pages_pruned
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            stats.tuples_pruned.fetch_add(
                page.header.count as u64,
                std::sync::atomic::Ordering::Relaxed,
            );
        }
    }
    let outputs = run_jobs_ctl(
        cfg.scheduler,
        kept,
        cfg.threads,
        &stats,
        ctl,
        |page| -> Result<FloatAgg> {
            {
                let _io = Stage::Io.timer(&stats);
                store.io().record_page(page.encoded_len());
                stats
                    .pages_loaded
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                stats.tuples_scanned.fetch_add(
                    page.header.count as u64,
                    std::sync::atomic::Ordering::Relaxed,
                );
            }
            let decoded = {
                let _delta = Stage::Delta.timer(&stats);
                page.decode_f64().map_err(Error::Storage)?
            };
            let (ts, vals) = decoded;
            let _agg = Stage::Agg.timer(&stats);
            // Ordered timestamps: the time filter is an index range.
            let (a, b) = match trange {
                Some(tr) => {
                    let a = ts.partition_point(|&t| t < tr.lo);
                    let b = ts.partition_point(|&t| t <= tr.hi);
                    (a, b.max(a))
                }
                None => (0, ts.len()),
            };
            let mut agg = FloatAgg::default();
            for &v in &vals[a..b] {
                if let Some(r) = vrange {
                    if !(v >= r.lo && v <= r.hi) {
                        continue; // also drops NaN
                    }
                }
                agg.push(v);
            }
            Ok(agg)
        },
    )?;
    let mut total = FloatAgg::default();
    for out in outputs {
        total.merge(&out?);
    }
    // Fold the hot chunk's buffered points (same filters, no page I/O):
    // queries see a float point the moment `append_f64` returns.
    if let Some(h) = &hot {
        stats
            .tuples_scanned
            .fetch_add(h.ts.len() as u64, std::sync::atomic::Ordering::Relaxed);
        let _agg = Stage::Agg.timer(&stats);
        for (_, v) in hot_range(h, trange) {
            if let Some(r) = vrange {
                if !(v >= r.lo && v <= r.hi) {
                    continue; // also drops NaN
                }
            }
            total.push(v);
        }
    }
    Ok((total, stats.snapshot()))
}

/// The hot snapshot's `(ts, value)` pairs inside the optional time range
/// (an index range — buffered timestamps are strictly increasing).
fn hot_range(
    h: &HotFloatSnapshot,
    trange: Option<TimeRange>,
) -> impl Iterator<Item = (i64, f64)> + '_ {
    let (a, b) = match trange {
        Some(tr) => {
            let a = h.ts.partition_point(|&t| t < tr.lo);
            let b = h.ts.partition_point(|&t| t <= tr.hi);
            (a, b.max(a))
        }
        None => (0, h.ts.len()),
    };
    h.ts[a..b].iter().copied().zip(h.vals[a..b].iter().copied())
}

/// Scans a float series' qualifying rows.
pub fn scan_f64(
    store: &SeriesStore,
    series: &str,
    trange: Option<TimeRange>,
    cfg: &PipelineConfig,
) -> Result<(Vec<i64>, Vec<f64>)> {
    scan_f64_ctl(store, series, trange, cfg, &CancellationToken::none())
}

/// [`scan_f64`] under a cancellation token (checked per page job).
pub fn scan_f64_ctl(
    store: &SeriesStore,
    series: &str,
    trange: Option<TimeRange>,
    cfg: &PipelineConfig,
    ctl: &CancellationToken,
) -> Result<(Vec<i64>, Vec<f64>)> {
    let stats = ExecStats::default();
    let snap = store.snapshot(series)?;
    let hot = match snap.hot {
        Some(HotSnapshot::Float(h)) => Some(h),
        _ => None,
    };
    let kept: Vec<_> = snap
        .pages
        .into_iter()
        .filter(|p| !cfg.prune || trange.is_none_or(|t| p.header.overlaps_time(t.lo, t.hi)))
        .collect();
    let outputs = run_jobs_ctl(
        cfg.scheduler,
        kept,
        cfg.threads,
        &stats,
        ctl,
        |page| -> Result<(Vec<i64>, Vec<f64>)> {
            store.io().record_page(page.encoded_len());
            let (ts, vals) = page.decode_f64().map_err(Error::Storage)?;
            let (a, b) = match trange {
                Some(tr) => {
                    let a = ts.partition_point(|&t| t < tr.lo);
                    let b = ts.partition_point(|&t| t <= tr.hi);
                    (a, b.max(a))
                }
                None => (0, ts.len()),
            };
            Ok((ts[a..b].to_vec(), vals[a..b].to_vec()))
        },
    )?;
    let mut all_ts = Vec::new();
    let mut all_vals = Vec::new();
    for out in outputs {
        let (t, v) = out?;
        all_ts.extend(t);
        all_vals.extend(v);
    }
    // Hot rows follow every sealed row (their timestamps are strictly
    // greater), so the scan stays time-ordered.
    if let Some(h) = &hot {
        for (t, v) in hot_range(h, trange) {
            all_ts.push(t);
            all_vals.push(v);
        }
    }
    Ok((all_ts, all_vals))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn float_store(enc: Encoding) -> (SeriesStore, Vec<i64>, Vec<f64>) {
        let store = SeriesStore::new(256);
        store.create_series_f64("t", Encoding::Ts2Diff, enc);
        let ts: Vec<i64> = (0..3000).map(|i| i * 10).collect();
        let vals: Vec<f64> = (0..3000)
            .map(|i| 20.0 + (i as f64 * 0.01).sin() * 5.0)
            .collect();
        for (&t, &v) in ts.iter().zip(&vals) {
            store.append_f64("t", t, v).unwrap();
        }
        store.flush("t").unwrap();
        (store, ts, vals)
    }

    fn cfg() -> PipelineConfig {
        PipelineConfig {
            threads: 2,
            ..Default::default()
        }
    }

    #[test]
    fn full_aggregate_matches_naive_for_all_float_codecs() {
        for enc in [Encoding::GorillaFloat, Encoding::Chimp, Encoding::Elf] {
            let (store, _, vals) = float_store(enc);
            let (agg, stats) = aggregate_f64(&store, "t", None, None, &cfg()).unwrap();
            let want: f64 = vals.iter().sum();
            assert!((agg.sum - want).abs() < 1e-6, "{}", enc.name());
            assert_eq!(agg.count, 3000);
            assert_eq!(stats.tuples_scanned, 3000);
            let naive_min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
            assert_eq!(agg.min.unwrap(), naive_min);
        }
    }

    #[test]
    fn time_range_prunes_pages() {
        let (store, ts, vals) = float_store(Encoding::Chimp);
        let tr = TimeRange {
            lo: ts[1000],
            hi: ts[1999],
        };
        let (agg, stats) = aggregate_f64(&store, "t", Some(tr), None, &cfg()).unwrap();
        let want: f64 = vals[1000..2000].iter().sum();
        assert!((agg.sum - want).abs() < 1e-6);
        assert_eq!(agg.count, 1000);
        assert!(stats.pages_pruned > 0, "header pruning must fire");
    }

    #[test]
    fn float_value_range_prunes_and_filters() {
        let (store, _, vals) = float_store(Encoding::GorillaFloat);
        let range = FloatRange { lo: 22.5, hi: 24.0 };
        let (agg, _) = aggregate_f64(&store, "t", None, Some(range), &cfg()).unwrap();
        let want_count = vals.iter().filter(|&&v| (22.5..=24.0).contains(&v)).count() as u64;
        assert_eq!(agg.count, want_count);
        // Out-of-domain range prunes everything at the header level.
        let (agg, stats) = aggregate_f64(
            &store,
            "t",
            None,
            Some(FloatRange {
                lo: 100.0,
                hi: 200.0,
            }),
            &cfg(),
        )
        .unwrap();
        assert_eq!(agg.count, 0);
        assert_eq!(stats.pages_loaded, 0, "all pages header-pruned");
    }

    #[test]
    fn scan_returns_rows_in_order() {
        let (store, ts, vals) = float_store(Encoding::Elf);
        let (t2, v2) = scan_f64(&store, "t", None, &cfg()).unwrap();
        assert_eq!(t2, ts);
        assert_eq!(v2.len(), vals.len());
        for (a, b) in v2.iter().zip(&vals) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn nan_values_never_match_ranges() {
        let store = SeriesStore::new(64);
        store.create_series_f64("n", Encoding::Ts2Diff, Encoding::Chimp);
        for i in 0..100i64 {
            let v = if i % 10 == 0 { f64::NAN } else { i as f64 };
            store.append_f64("n", i, v).unwrap();
        }
        store.flush("n").unwrap();
        let (agg, _) = aggregate_f64(
            &store,
            "n",
            None,
            Some(FloatRange {
                lo: f64::MIN,
                hi: f64::MAX,
            }),
            &cfg(),
        )
        .unwrap();
        assert_eq!(agg.count, 90);
        assert!(agg.sum.is_finite());
    }

    #[test]
    fn integer_series_rejected() {
        let store = SeriesStore::new(64);
        store.create_series("i", Encoding::Ts2Diff, Encoding::Ts2Diff);
        store.append("i", 1, 1).unwrap();
        store.flush("i").unwrap();
        assert!(aggregate_f64(&store, "i", None, None, &cfg()).is_err());
    }

    #[test]
    fn variance_matches_naive() {
        let (store, _, vals) = float_store(Encoding::Chimp);
        let (agg, _) = aggregate_f64(&store, "t", None, None, &cfg()).unwrap();
        let n = vals.len() as f64;
        let mean = vals.iter().sum::<f64>() / n;
        let want = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        assert!((agg.variance().unwrap() - want).abs() < 1e-6);
        assert!((agg.finish(AggFunc::Variance).unwrap() - want).abs() < 1e-6);
    }
}
