//! The decoding cost model: Proposition 1 (optimal number of unpacked
//! vectors `n_v`) and Theorem 2 (serial/parallel acceleration estimate).
//!
//! The constants are instruction-latency ratios in "simple-op units"
//! (one `t_add`/`t_op` ≈ one cycle of a simple ALU/vector op), matching
//! the quantities the paper plugs in: `t_prefix − t_add ≈ 11`,
//! `t_unpack ≈ 2` (Figure 4 discussion: `√(32/10 · 11/2) ≈ 4`).

/// Instruction-cost constants (in `t_add` units) used by the model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostConstants {
    /// Cost of unpacking one vector from one loaded vector (Line 8:
    /// shuffle + or).
    pub t_unpack: f64,
    /// Cost of the prefix-sum construction (Line 13: the permute/add
    /// ladder), minus one `t_add`.
    pub t_prefix_minus_add: f64,
    /// Cost of a vector load.
    pub t_load: f64,
    /// Cost of the endian shuffle per loaded vector.
    pub t_shuffle: f64,
    /// Cost of the shift+mask pair per unpacked vector.
    pub t_shift_mask: f64,
    /// Memory access latency relative to a simple op (`t_visMem / t_op`).
    pub mem_ratio: f64,
    /// Streaming (DRAM-bandwidth) cost of touching one SIMD register's
    /// worth of memory, relative to a simple op — the floor shared by all
    /// cores once decoding saturates bandwidth.
    pub dram_ratio: f64,
}

impl Default for CostConstants {
    fn default() -> Self {
        // Paper's worked example: √(32/10 · 11/2) ≈ 4 ⇒ t_prefix−t_add = 11,
        // t_unpack = 2. Loads/shuffles ≈ 1–4 cycles; L2-ish memory ratio.
        CostConstants {
            t_unpack: 2.0,
            t_prefix_minus_add: 11.0,
            t_load: 4.0,
            t_shuffle: 1.0,
            t_shift_mask: 2.0,
            mem_ratio: 20.0,
            dram_ratio: 60.0,
        }
    }
}

/// SIMD vector width in bits used by the model (AVX2).
pub const SIMD_BITS: f64 = 256.0;

/// Unconstrained optimum of Proposition 1:
/// `n_v* = √( (ω'/ω) · (t_prefix − t_add) / t_unpack )`.
pub fn optimal_nv_real(packed_width: u8, unpacked_width: u8, c: &CostConstants) -> f64 {
    let w = packed_width.max(1) as f64;
    let wp = unpacked_width as f64;
    ((wp / w) * (c.t_prefix_minus_add / c.t_unpack)).sqrt()
}

/// Snaps the Proposition 1 optimum to the layouts the transpose kernels
/// support (`n_v ∈ {1, 2, 4, 8}`), choosing the supported value whose
/// modelled average time is lowest.
pub fn choose_nv(packed_width: u8, unpacked_width: u8, c: &CostConstants) -> usize {
    let mut best = 1usize;
    let mut best_t = f64::INFINITY;
    for &nv in &etsqp_simd::transpose::SUPPORTED_NV {
        let t = avg_time_per_value(packed_width, unpacked_width, nv, c);
        if t < best_t {
            best_t = t;
            best = nv;
        }
    }
    best
}

/// The `T_AVG` expression of Proposition 1: modelled decode time per value
/// for a given `n_v`.
pub fn avg_time_per_value(
    packed_width: u8,
    unpacked_width: u8,
    nv: usize,
    c: &CostConstants,
) -> f64 {
    let w = packed_width.max(1) as f64;
    let wp = unpacked_width as f64;
    let nv = nv as f64;
    // Per-round accounting (one round decodes n_v · ω_SIMD/ω' values):
    // load/endian per loaded vector, unpack per (loaded × unpacked) pair,
    // shift+mask per unpacked vector, (2n_v − 1 + n_v) adds, one prefix.
    let n_ld = nv * w / wp; // vectors loaded so no lane stays empty
    let per_round = (c.t_load + c.t_shuffle) * n_ld
        + c.t_unpack * nv * n_ld
        + c.t_shift_mask * nv
        + (2.0 * nv - 1.0)
        + c.t_prefix_minus_add
        + 1.0;
    per_round / (nv * SIMD_BITS / wp)
}

/// Theorem 2 estimate of `T_serial / T_parallel` for `threads` cores.
///
/// Serial decoding pays `2·t_visMem + shift + mask + save` per value;
/// the parallel pipeline pays the Proposition 1 optimum per value divided
/// across cores.
pub fn theorem2_speedup(
    packed_width: u8,
    unpacked_width: u8,
    threads: usize,
    c: &CostConstants,
) -> f64 {
    let serial_per_value = 2.0 * c.mem_ratio + 3.0;
    let nv = choose_nv(packed_width, unpacked_width, c);
    let compute = avg_time_per_value(packed_width, unpacked_width, nv, c) / threads as f64;
    // Memory-bandwidth floor: every thread still streams ω bits per value
    // through shared DRAM, which does not scale with the core count —
    // exactly the variable t_visMem/t_op dependence Theorem 2 notes.
    let mem_floor = packed_width.max(1) as f64 / SIMD_BITS * c.dram_ratio;
    serial_per_value / compute.max(mem_floor)
}

/// Modelled per-value cost of aggregating one page under a bucketed
/// (`GROUP BY time(..)` / sliding-window) root.
///
/// A page whose time span lands in a **single bucket** keeps the §IV
/// fused path: deltas are unpacked but the prefix-reconstruction ladder
/// is skipped (the closed forms fold packed deltas directly), so the
/// prefix share of Proposition 1's `T_AVG` drops out. A page
/// **straddling** a bucket boundary must fully decode and additionally
/// pays a per-value bucket-index computation and scalar fold (≈ one
/// divide + compare + accumulate, 3 simple ops). This asymmetry is why
/// the planner only relaxes the fused arms to single-bucket pages and
/// why the partial cache keys whole-page partials.
pub fn bucketed_page_cost(
    packed_width: u8,
    unpacked_width: u8,
    straddles: bool,
    c: &CostConstants,
) -> f64 {
    let nv = choose_nv(packed_width, unpacked_width, c);
    let full = avg_time_per_value(packed_width, unpacked_width, nv, c);
    if straddles {
        full + 3.0
    } else {
        // Prefix ladder share per value, amortized over the round.
        let wp = unpacked_width as f64;
        let prefix_share = (c.t_prefix_minus_add + 1.0) / (nv as f64 * SIMD_BITS / wp);
        full - prefix_share
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_ten_bit() {
        // √(32/10 · 11/2) ≈ 4.19 — the paper's Figure 4 computation.
        let c = CostConstants::default();
        let nv = optimal_nv_real(10, 32, &c);
        assert!((nv - 4.19).abs() < 0.2, "got {nv}");
    }

    #[test]
    fn paper_example_twentyfive_bit() {
        // √(32/25 · 11/2) ≈ 2.65 ≈ 3 — the paper's Example 4 computation.
        let c = CostConstants::default();
        let nv = optimal_nv_real(25, 32, &c);
        assert!((nv - 2.65).abs() < 0.2, "got {nv}");
    }

    #[test]
    fn chosen_nv_is_supported() {
        let c = CostConstants::default();
        for w in 1..=32u8 {
            let nv = choose_nv(w, 32, &c);
            assert!(
                etsqp_simd::transpose::SUPPORTED_NV.contains(&nv),
                "w={w} nv={nv}"
            );
        }
    }

    #[test]
    fn avg_time_has_interior_optimum() {
        // Small widths amortize the prefix step with more vectors; wide
        // widths pay quadratic unpack costs — Proposition 1's trade-off.
        let c = CostConstants::default();
        for w in [4u8, 10] {
            let t1 = avg_time_per_value(w, 32, 1, &c);
            let t8 = avg_time_per_value(w, 32, 8, &c);
            assert!(t8 < t1, "w={w}: {t8} !< {t1}");
        }
        // choose_nv always picks the modelled minimum of the lattice.
        for w in 1..=32u8 {
            let best = choose_nv(w, 32, &c);
            let t_best = avg_time_per_value(w, 32, best, &c);
            for &nv in &etsqp_simd::transpose::SUPPORTED_NV {
                assert!(t_best <= avg_time_per_value(w, 32, nv, &c) + 1e-12, "w={w}");
            }
        }
    }

    #[test]
    fn single_bucket_pages_model_cheaper_than_straddling() {
        let c = CostConstants::default();
        for w in 1..=32u8 {
            let aligned = bucketed_page_cost(w, 32, false, &c);
            let straddling = bucketed_page_cost(w, 32, true, &c);
            assert!(aligned > 0.0, "w={w}: non-positive fused cost {aligned}");
            assert!(
                straddling > aligned,
                "w={w}: straddling {straddling} !> aligned {aligned}"
            );
            // The straddle premium is at least the per-value bucketing
            // work — the planner's fused/decode split is never a wash.
            assert!(straddling - aligned >= 3.0, "w={w}");
        }
    }

    #[test]
    fn theorem2_magnitude_matches_paper() {
        // The paper reports ≈15.3× for 10-bit TS2DIFF with 16 threads.
        // Our constants are calibrated to the same regime: the estimate
        // must land in the same order of magnitude (10×–100× band).
        let c = CostConstants::default();
        let s = theorem2_speedup(10, 32, 16, &c);
        assert!(s > 10.0 && s < 40.0, "speedup estimate {s}");
    }

    #[test]
    fn speedup_grows_then_saturates_with_threads() {
        let c = CostConstants::default();
        let s1 = theorem2_speedup(10, 32, 1, &c);
        let s4 = theorem2_speedup(10, 32, 4, &c);
        let s16 = theorem2_speedup(10, 32, 16, &c);
        let s64 = theorem2_speedup(10, 32, 64, &c);
        // Monotone non-decreasing in the thread count…
        assert!(s4 >= s1 && s16 >= s4 && s64 >= s16);
        // …and saturated by the bandwidth floor: beyond the knee more
        // threads stop helping (10-bit data is memory-bound early).
        assert!((s64 - s16).abs() < s16 * 0.05);
        // At the calibrated DRAM cost, decoding is memory-bound from the
        // start — consistent with Fig. 14(b)'s 40–50% I/O share.
    }
}
