//! Partializable aggregate states: the mergeable per-page/per-bucket
//! partials behind `GROUP BY time(..)`, `rate()`/`delta()` and the
//! sketch-based `p50/p95/p99` quantiles, plus the process-global
//! partial cache keyed by page checksums.
//!
//! The paper's §IV closed-form polynomials already compute page-local
//! moments without decoding — exactly a partial aggregate. This module
//! makes that notion explicit: a [`PartialState`] wraps the exact
//! moments ([`AggState`]) with the first/last *timestamps* (for
//! `rate()`/`delta()`) and an optional [`TDigest`] quantile sketch, and
//! merges **in time order** (the same discipline the driver already
//! follows: sealed pages in storage order, hot chunk last).
//!
//! Merge algebra (property-tested in `tests/partial_properties.rs`):
//!
//! * all exact fields are associative; sums/counts/min/max are also
//!   commutative, FIRST/LAST and the timestamp bounds are
//!   order-sensitive (time-ordered merging keeps them exact);
//! * the empty partial is a two-sided identity, bit for bit (an empty
//!   digest merge never re-clusters);
//! * t-digest quantiles are *approximate*: for compression `δ =`
//!   [`TDIGEST_COMPRESSION`], the rank error of `quantile(q)` against
//!   the exact sorted ranks stays within [`TDigest::rank_error_bound`]
//!   (`3·n/δ + 2`), regardless of how the input was split into merged
//!   partials.
//!
//! The serialized form ([`PartialState::to_bytes`]) is the wire format
//! future scatter-gather shard layers ship between sub-pipelines; it is
//! fuzzed (hostile centroid counts, non-finite means, weight lies) by
//! the `partial` target of `cargo run -p xtask -- fuzz`.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::{Mutex, OnceLock};

use etsqp_simd::agg::AggState;
use etsqp_storage::page::Page;

use crate::expr::AggFunc;
use crate::{Error, Result};

/// t-digest compression factor `δ`: the sketch keeps roughly `δ..2δ`
/// centroids after compression, giving a worst-case rank error that
/// shrinks toward the distribution tails (where p95/p99 live).
pub const TDIGEST_COMPRESSION: usize = 100;

/// Uncompressed centroids accumulate up to this many before a merge
/// pass runs (amortizes the sort; bounds transient memory).
const TDIGEST_BUFFER: usize = 4 * TDIGEST_COMPRESSION;

/// Clustering threshold for [`TDigest::merge`], deliberately larger
/// than the push-path buffer: the cross-page merge chain appends one
/// compressed (~2δ-centroid) block per page, and clustering after every
/// block would re-traverse the whole accumulator per merge. 64 KiB of
/// transient centroids buys an amortized-linear chain.
const TDIGEST_MERGE_BUFFER: usize = 4096;

/// Hard ceiling on centroid counts accepted by [`TDigest::from_bytes`]
/// — a hostile length prefix must not drive allocation.
const TDIGEST_MAX_SERIALIZED: usize = 4096;

/// One weighted cluster of the sketch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Centroid {
    /// Weighted mean of the cluster's values.
    pub mean: f64,
    /// Number of values absorbed by the cluster (never zero).
    pub weight: u64,
}

/// A merging t-digest (Dunning): an ordered list of weighted centroids
/// whose per-cluster weight is capped by `4·n·q(1−q)/δ`, so clusters
/// near the tails stay tiny and extreme quantiles stay sharp.
///
/// Determinism: compression sorts with `f64::total_cmp` (stable) and
/// merges in one sequential pass, so the same push/merge sequence always
/// yields the same centroids — required by the differential oracle and
/// the partial cache.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TDigest {
    /// Centroids; the first `len − unsorted` are sorted and compressed,
    /// the tail is a raw append buffer.
    centroids: Vec<Centroid>,
    /// Trailing raw (possibly unsorted) centroids.
    unsorted: usize,
    /// Total weight across all centroids.
    count: u64,
    /// Exact minimum pushed value (valid when `count > 0`).
    min: f64,
    /// Exact maximum pushed value (valid when `count > 0`).
    max: f64,
}

impl TDigest {
    /// An empty sketch.
    pub fn new() -> Self {
        TDigest::default()
    }

    /// Total weight (number of pushed values).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Current centroid count (compressed + buffered).
    pub fn centroid_count(&self) -> usize {
        self.centroids.len()
    }

    /// Exact minimum pushed value, if any.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum pushed value, if any.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// The documented worst-case rank error of [`TDigest::quantile`]
    /// for a sketch over `n` values: `3·n/δ + 2` ranks. (Measured error
    /// is typically `n/δ`; the slack covers repeated partial merges.)
    pub fn rank_error_bound(n: u64) -> f64 {
        3.0 * n as f64 / TDIGEST_COMPRESSION as f64 + 2.0
    }

    /// Pushes one value. Non-finite values are ignored (the engine only
    /// pushes integer-valued samples; the guard keeps hostile merges
    /// from poisoning the means).
    pub fn push(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.centroids.push(Centroid { mean: v, weight: 1 });
        self.unsorted += 1;
        self.count += 1;
        if self.centroids.len() >= TDIGEST_BUFFER {
            self.compress();
        }
    }

    /// Merges `other` into `self`. Merging an empty sketch is a no-op
    /// (bit-for-bit identity — the property tests rely on this).
    pub fn merge(&mut self, other: &TDigest) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        // Append the incoming block and defer clustering: the driver's
        // warm-cache path merges one ~2δ-centroid partial per page, and
        // re-clustering the whole accumulator on every merge made the
        // chain quadratic. The larger merge buffer amortizes clustering
        // to O(total/TDIGEST_MERGE_BUFFER) passes, and the stable sort
        // in [`TDigest::compress`] is near-linear on the concatenation
        // of already-sorted runs cached partials produce.
        self.centroids.extend_from_slice(&other.centroids);
        self.unsorted += other.centroids.len();
        self.count += other.count;
        if self.centroids.len() >= TDIGEST_MERGE_BUFFER {
            self.compress();
        }
    }

    /// Sorts and re-clusters the centroids under the `4·n·q(1−q)/δ`
    /// per-cluster weight cap. Deterministic: stable sort by
    /// `total_cmp`, one sequential merging pass.
    pub fn compress(&mut self) {
        if self.centroids.len() <= 1 {
            self.unsorted = 0;
            return;
        }
        if self.unsorted > 0 {
            self.centroids.sort_by(|a, b| a.mean.total_cmp(&b.mean));
        }
        let total = self.count as f64;
        let delta = TDIGEST_COMPRESSION as f64;
        let mut out: Vec<Centroid> = Vec::with_capacity(self.centroids.len().min(512));
        let mut iter = self.centroids.iter();
        // `len > 1` above guarantees a first centroid.
        let Some(first) = iter.next() else {
            self.unsorted = 0;
            return;
        };
        let mut acc = *first;
        let mut w_before = 0.0f64;
        for c in iter {
            let merged = acc.weight.saturating_add(c.weight);
            let q = (w_before + merged as f64 / 2.0) / total;
            let cap = (4.0 * total * q * (1.0 - q) / delta).max(1.0);
            if (merged as f64) <= cap {
                let wa = acc.weight as f64;
                let wc = c.weight as f64;
                acc.mean = (acc.mean * wa + c.mean * wc) / (wa + wc);
                acc.weight = merged;
            } else {
                w_before += acc.weight as f64;
                out.push(acc);
                acc = *c;
            }
        }
        out.push(acc);
        self.centroids = out;
        self.unsorted = 0;
    }

    /// Estimates the `q`-quantile (`q` clamped to `[0, 1]`). Returns
    /// `NaN` on an empty sketch; otherwise the covering centroid's mean
    /// clamped into the exact `[min, max]` envelope.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        if self.unsorted > 0 {
            let mut c = self.clone();
            c.compress();
            return c.quantile_sorted(q);
        }
        self.quantile_sorted(q)
    }

    fn quantile_sorted(&self, q: f64) -> f64 {
        let target = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cum = 0.0f64;
        let last = self.centroids.len().saturating_sub(1);
        for (i, c) in self.centroids.iter().enumerate() {
            let w = c.weight as f64;
            if cum + w >= target || i == last {
                return c.mean.clamp(self.min, self.max);
            }
            cum += w;
        }
        self.max
    }

    /// Canonical serialized form: compressed centroids as
    /// `[m: u32][m × (mean: f64, weight: u64)][count: u64][min: f64]
    /// [max: f64]`, all little-endian. Round-trips bit-exactly through
    /// [`TDigest::from_bytes`].
    pub fn to_bytes(&self) -> Vec<u8> {
        let canon;
        let src = if self.unsorted > 0 {
            let mut c = self.clone();
            c.compress();
            canon = c;
            &canon
        } else {
            self
        };
        let mut out = Vec::with_capacity(4 + src.centroids.len() * 16 + 24);
        out.extend_from_slice(&(src.centroids.len() as u32).to_le_bytes());
        for c in &src.centroids {
            out.extend_from_slice(&c.mean.to_le_bytes());
            out.extend_from_slice(&c.weight.to_le_bytes());
        }
        out.extend_from_slice(&src.count.to_le_bytes());
        out.extend_from_slice(&src.min.to_le_bytes());
        out.extend_from_slice(&src.max.to_le_bytes());
        out
    }

    /// Parses and validates a serialized sketch. Every structural lie a
    /// hostile stream can tell — oversized centroid counts, non-finite
    /// or unsorted means, zero weights, weight sums that disagree with
    /// the count, means outside the `[min, max]` envelope, truncation
    /// or trailing bytes — is a typed [`Error::Decode`], never a panic.
    pub fn from_bytes(data: &[u8]) -> Result<TDigest> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8]> {
            let end = pos
                .checked_add(n)
                .ok_or(Error::Decode("tdigest: length overflow"))?;
            let s = data
                .get(*pos..end)
                .ok_or(Error::Decode("tdigest: truncated"))?;
            *pos = end;
            Ok(s)
        };
        let m_bytes: [u8; 4] = take(&mut pos, 4)?
            .try_into()
            .map_err(|_| Error::Decode("tdigest: truncated count"))?;
        let m = u32::from_le_bytes(m_bytes) as usize;
        if m > TDIGEST_MAX_SERIALIZED {
            return Err(Error::Decode("tdigest: hostile centroid count"));
        }
        let mut centroids = Vec::with_capacity(m);
        let mut weight_sum: u64 = 0;
        let mut prev = f64::NEG_INFINITY;
        for _ in 0..m {
            let mean_b: [u8; 8] = take(&mut pos, 8)?
                .try_into()
                .map_err(|_| Error::Decode("tdigest: truncated mean"))?;
            let w_b: [u8; 8] = take(&mut pos, 8)?
                .try_into()
                .map_err(|_| Error::Decode("tdigest: truncated weight"))?;
            let mean = f64::from_le_bytes(mean_b);
            let weight = u64::from_le_bytes(w_b);
            if !mean.is_finite() {
                return Err(Error::Decode("tdigest: non-finite mean"));
            }
            if weight == 0 {
                return Err(Error::Decode("tdigest: zero-weight centroid"));
            }
            if mean < prev {
                return Err(Error::Decode("tdigest: unsorted means"));
            }
            prev = mean;
            weight_sum = weight_sum
                .checked_add(weight)
                .ok_or(Error::Decode("tdigest: weight sum overflow"))?;
            centroids.push(Centroid { mean, weight });
        }
        let count_b: [u8; 8] = take(&mut pos, 8)?
            .try_into()
            .map_err(|_| Error::Decode("tdigest: truncated total"))?;
        let count = u64::from_le_bytes(count_b);
        let min_b: [u8; 8] = take(&mut pos, 8)?
            .try_into()
            .map_err(|_| Error::Decode("tdigest: truncated min"))?;
        let max_b: [u8; 8] = take(&mut pos, 8)?
            .try_into()
            .map_err(|_| Error::Decode("tdigest: truncated max"))?;
        let (min, max) = (f64::from_le_bytes(min_b), f64::from_le_bytes(max_b));
        if pos != data.len() {
            return Err(Error::Decode("tdigest: trailing bytes"));
        }
        if count != weight_sum {
            return Err(Error::Decode("tdigest: count disagrees with weights"));
        }
        if count > 0 {
            if !min.is_finite() || !max.is_finite() || min > max {
                return Err(Error::Decode("tdigest: bad min/max envelope"));
            }
            if centroids.is_empty() {
                return Err(Error::Decode("tdigest: count without centroids"));
            }
            if centroids.iter().any(|c| c.mean < min || c.mean > max) {
                return Err(Error::Decode("tdigest: mean outside envelope"));
            }
        } else if !centroids.is_empty() {
            return Err(Error::Decode("tdigest: centroids without count"));
        }
        Ok(TDigest {
            centroids,
            unsorted: 0,
            count,
            min,
            max,
        })
    }

    /// Approximate heap footprint, for the cache's byte accounting.
    fn approx_bytes(&self) -> usize {
        48 + self.centroids.capacity() * std::mem::size_of::<Centroid>()
    }
}

/// A mergeable partial aggregate state: the exact moments plus the
/// timestamp bounds (`rate`/`delta`) and the optional quantile sketch.
/// [`PartialState::merge`] must be called **in time order** — the same
/// contract [`AggState::merge`] already documents for FIRST/LAST.
#[derive(Debug, Clone, Default)]
pub struct PartialState {
    /// Exact first-order/second-order moments, min/max, first/last.
    pub agg: AggState,
    /// Timestamp of the first qualifying tuple (set on tuple-level
    /// paths; fused whole-page paths leave it `None` — only
    /// `rate()`/`delta()` read it, and those never fuse).
    pub first_ts: Option<i64>,
    /// Timestamp of the last qualifying tuple.
    pub last_ts: Option<i64>,
    /// Quantile sketch; allocated only when the aggregate needs it.
    pub digest: Option<TDigest>,
}

impl PartialState {
    /// An empty partial shaped for `func`: the digest is allocated only
    /// for quantile aggregates.
    pub fn new(func: AggFunc) -> Self {
        PartialState {
            digest: func.needs_digest().then(TDigest::new),
            ..PartialState::default()
        }
    }

    /// Folds one qualifying tuple, tracking timestamps and the sketch.
    pub fn push_tv(&mut self, t: i64, v: i64) {
        self.agg.push(v);
        self.first_ts.get_or_insert(t);
        self.last_ts = Some(t);
        if let Some(d) = &mut self.digest {
            d.push(v as f64);
        }
    }

    /// Merges `other` after `self` in time order. Exact fields combine
    /// exactly; an empty `other` is a bit-for-bit no-op.
    pub fn merge(&mut self, other: &PartialState) {
        if other.agg.count == 0 {
            return;
        }
        self.agg.merge(&other.agg);
        if self.first_ts.is_none() {
            self.first_ts = other.first_ts;
        }
        if other.last_ts.is_some() {
            self.last_ts = other.last_ts;
        }
        match (&mut self.digest, &other.digest) {
            (Some(a), Some(b)) => a.merge(b),
            (d @ None, Some(b)) => *d = Some(b.clone()),
            _ => {}
        }
    }

    /// Serialized wire form:
    /// `[sum: i128][sum_sq: i128][count: u64][6 × option(i64)]`
    /// `[option(digest bytes)]`, options as a `0/1` tag byte. This is
    /// the format sub-pipelines will ship partials in (ROADMAP item 4);
    /// it round-trips through [`PartialState::from_bytes`].
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(96);
        out.extend_from_slice(&self.agg.sum.to_le_bytes());
        out.extend_from_slice(&self.agg.sum_sq.to_le_bytes());
        out.extend_from_slice(&self.agg.count.to_le_bytes());
        let opt = |out: &mut Vec<u8>, v: Option<i64>| match v {
            Some(v) => {
                out.push(1);
                out.extend_from_slice(&v.to_le_bytes());
            }
            None => out.push(0),
        };
        opt(&mut out, self.agg.min);
        opt(&mut out, self.agg.max);
        opt(&mut out, self.agg.first);
        opt(&mut out, self.agg.last);
        opt(&mut out, self.first_ts);
        opt(&mut out, self.last_ts);
        match &self.digest {
            Some(d) => {
                out.push(1);
                out.extend_from_slice(&d.to_bytes());
            }
            None => out.push(0),
        }
        out
    }

    /// Parses and validates a serialized partial. Structural lies —
    /// bad option tags, inverted min/max, counts that disagree with
    /// presence, a corrupt embedded digest — are typed
    /// [`Error::Decode`]s, never panics.
    pub fn from_bytes(data: &[u8]) -> Result<PartialState> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8]> {
            let end = pos
                .checked_add(n)
                .ok_or(Error::Decode("partial: length overflow"))?;
            let s = data
                .get(*pos..end)
                .ok_or(Error::Decode("partial: truncated"))?;
            *pos = end;
            Ok(s)
        };
        let i128_of = |b: &[u8]| -> Result<i128> {
            b.try_into()
                .map(i128::from_le_bytes)
                .map_err(|_| Error::Decode("partial: truncated i128"))
        };
        let sum = i128_of(take(&mut pos, 16)?)?;
        let sum_sq = i128_of(take(&mut pos, 16)?)?;
        let count_b: [u8; 8] = take(&mut pos, 8)?
            .try_into()
            .map_err(|_| Error::Decode("partial: truncated count"))?;
        let count = u64::from_le_bytes(count_b);
        let opt = |pos: &mut usize| -> Result<Option<i64>> {
            let tag = take(pos, 1)?[0];
            match tag {
                0 => Ok(None),
                1 => {
                    let b: [u8; 8] = take(pos, 8)?
                        .try_into()
                        .map_err(|_| Error::Decode("partial: truncated option"))?;
                    Ok(Some(i64::from_le_bytes(b)))
                }
                _ => Err(Error::Decode("partial: bad option tag")),
            }
        };
        let min = opt(&mut pos)?;
        let max = opt(&mut pos)?;
        let first = opt(&mut pos)?;
        let last = opt(&mut pos)?;
        let first_ts = opt(&mut pos)?;
        let last_ts = opt(&mut pos)?;
        let digest = match take(&mut pos, 1)?[0] {
            0 => None,
            1 => Some(TDigest::from_bytes(
                data.get(pos..).ok_or(Error::Decode("partial: truncated"))?,
            )?),
            _ => return Err(Error::Decode("partial: bad digest tag")),
        };
        if digest.is_none() && pos != data.len() {
            return Err(Error::Decode("partial: trailing bytes"));
        }
        if let (Some(lo), Some(hi)) = (min, max) {
            if lo > hi {
                return Err(Error::Decode("partial: inverted min/max"));
            }
        }
        if let (Some(ft), Some(lt)) = (first_ts, last_ts) {
            if ft > lt {
                return Err(Error::Decode("partial: inverted timestamps"));
            }
        }
        if count == 0 && (min.is_some() || first.is_some() || first_ts.is_some()) {
            return Err(Error::Decode("partial: fields present on empty state"));
        }
        let mut agg = AggState::new();
        agg.sum = sum;
        agg.sum_sq = sum_sq;
        agg.count = count;
        agg.min = min;
        agg.max = max;
        agg.first = first;
        agg.last = last;
        Ok(PartialState {
            agg,
            first_ts,
            last_ts,
            digest,
        })
    }

    /// Approximate heap footprint, for the cache's byte accounting.
    fn approx_bytes(&self) -> usize {
        128 + self.digest.as_ref().map_or(0, TDigest::approx_bytes)
    }
}

impl From<AggState> for PartialState {
    fn from(agg: AggState) -> Self {
        PartialState {
            agg,
            ..PartialState::default()
        }
    }
}

/// Content-addressed key of one cached whole-page partial: the page's
/// FNV checksum plus every exact header statistic and the aggregate
/// function. Two pages colliding on the full key while differing in
/// content would need an FNV-32 collision *and* identical header
/// statistics; the hit path still re-verifies the page checksum before
/// trusting the entry (the cache-obligation invariant), so a stale or
/// colliding entry can never silently stand in for corrupted bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Page FNV checksum ([`Page::checksum`]).
    pub checksum: u32,
    /// Header tuple count.
    pub count: u32,
    /// Header first timestamp.
    pub first_ts: i64,
    /// Header last timestamp.
    pub last_ts: i64,
    /// Header minimum value.
    pub min_value: i64,
    /// Header maximum value.
    pub max_value: i64,
    /// The aggregate the partial was computed for.
    pub func: AggFunc,
}

impl CacheKey {
    /// The key for `page`'s whole-page partial under `func`.
    pub fn for_page(page: &Page, func: AggFunc) -> CacheKey {
        CacheKey {
            checksum: page.checksum,
            count: page.header.count,
            first_ts: page.header.first_ts,
            last_ts: page.header.last_ts,
            min_value: page.header.min_value,
            max_value: page.header.max_value,
            func,
        }
    }
}

/// Bounded FIFO cache state behind the [`PartialCache`] mutex.
#[derive(Debug, Default)]
struct CacheInner {
    map: HashMap<CacheKey, PartialState>,
    order: VecDeque<CacheKey>,
    bytes: usize,
}

/// Maximum cached entries (FIFO-evicted beyond this).
const CACHE_MAX_ENTRIES: usize = 8192;

/// Approximate byte budget for cached states (digests dominate).
const CACHE_MAX_BYTES: usize = 8 << 20;

/// The process-global cache of whole-page partial aggregate states,
/// keyed by [`CacheKey`] (content-addressed — safe to share across
/// stores and queries). Bounded by entry count and approximate bytes
/// with FIFO eviction; `EXPLAIN` renders the static `[cacheable]`
/// eligibility and [`crate::exec::ExecStats`] counts the live
/// hits/misses (EXPLAIN text must stay a pure function of the plan).
#[derive(Debug, Default)]
pub struct PartialCache {
    inner: Mutex<CacheInner>,
}

impl PartialCache {
    /// The process-global instance.
    pub fn global() -> &'static PartialCache {
        static CACHE: OnceLock<PartialCache> = OnceLock::new();
        CACHE.get_or_init(PartialCache::default)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheInner> {
        // A panic while holding the lock cannot corrupt the FIFO
        // invariants (no partial mutations escape), so poisoning is
        // recovered instead of propagated.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Looks up a cached whole-page partial.
    pub fn get(&self, key: &CacheKey) -> Option<PartialState> {
        self.lock().map.get(key).cloned()
    }

    /// Inserts a whole-page partial, evicting FIFO past the bounds.
    /// The digest (if any) is compressed first so cached entries hold
    /// their minimal form.
    pub fn insert(&self, key: CacheKey, mut state: PartialState) {
        if let Some(d) = &mut state.digest {
            d.compress();
        }
        let bytes = state.approx_bytes();
        let mut inner = self.lock();
        if inner.map.insert(key, state).is_none() {
            inner.order.push_back(key);
            inner.bytes += bytes;
        }
        while inner.order.len() > CACHE_MAX_ENTRIES || inner.bytes > CACHE_MAX_BYTES {
            let Some(old) = inner.order.pop_front() else {
                break;
            };
            if let Some(evicted) = inner.map.remove(&old) {
                inner.bytes = inner.bytes.saturating_sub(evicted.approx_bytes());
            }
        }
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (benchmark cold-start; tests).
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.map.clear();
        inner.order.clear();
        inner.bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest_of(vals: &[i64]) -> TDigest {
        let mut d = TDigest::new();
        for &v in vals {
            d.push(v as f64);
        }
        d
    }

    #[test]
    fn tdigest_quantile_within_rank_bound() {
        let vals: Vec<i64> = (0..5000).map(|i| (i * 37) % 4999).collect();
        let d = digest_of(&vals);
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        for q in [0.01, 0.25, 0.5, 0.75, 0.95, 0.99] {
            let est = d.quantile(q);
            let rank = sorted.partition_point(|&v| (v as f64) <= est) as f64;
            let target = q * sorted.len() as f64;
            let bound = TDigest::rank_error_bound(sorted.len() as u64);
            assert!(
                (rank - target).abs() <= bound,
                "q={q}: est={est} rank={rank} target={target} bound={bound}"
            );
        }
    }

    #[test]
    fn tdigest_roundtrip_and_rejects_lies() {
        let d = digest_of(&[5, 1, 9, 3, 3, 7]);
        let bytes = d.to_bytes();
        let back = TDigest::from_bytes(&bytes).unwrap();
        assert_eq!(back.to_bytes(), bytes, "canonical form round-trips");
        assert_eq!(back.count(), 6);
        // Truncation, hostile counts, non-finite means: typed errors.
        assert!(TDigest::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut hostile = bytes.clone();
        hostile[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(TDigest::from_bytes(&hostile).is_err());
        let mut nan = bytes.clone();
        nan[4..12].copy_from_slice(&f64::NAN.to_le_bytes());
        assert!(TDigest::from_bytes(&nan).is_err());
    }

    #[test]
    fn empty_merge_is_identity() {
        let mut d = digest_of(&[1, 2, 3]);
        let before = d.clone();
        d.merge(&TDigest::new());
        assert_eq!(d, before);
        let mut empty = TDigest::new();
        empty.merge(&before);
        assert_eq!(empty.to_bytes(), before.to_bytes());
    }

    #[test]
    fn partial_state_roundtrip() {
        let mut p = PartialState::new(AggFunc::P95);
        for (t, v) in [(10, 4), (20, -1), (30, 9)] {
            p.push_tv(t, v);
        }
        let bytes = p.to_bytes();
        let back = PartialState::from_bytes(&bytes).unwrap();
        assert_eq!(back.agg.count, 3);
        assert_eq!(back.first_ts, Some(10));
        assert_eq!(back.last_ts, Some(30));
        assert_eq!(back.to_bytes(), bytes);
        assert!(PartialState::from_bytes(&bytes[..5]).is_err());
    }

    #[test]
    fn cache_bounds_and_clear() {
        let cache = PartialCache::default();
        let mut key = CacheKey {
            checksum: 0,
            count: 1,
            first_ts: 0,
            last_ts: 0,
            min_value: 0,
            max_value: 0,
            func: AggFunc::Sum,
        };
        for i in 0..(CACHE_MAX_ENTRIES + 10) as u32 {
            key.checksum = i;
            cache.insert(key, PartialState::default());
        }
        assert!(cache.len() <= CACHE_MAX_ENTRIES);
        cache.clear();
        assert!(cache.is_empty());
    }
}
