//! # etsqp-fastlanes — the FastLanes FLMM1024 baseline
//!
//! Reimplements the comparison system of paper §VII-A (baseline 4): the
//! FastLanes compression layout (Afroozeh & Boncz, VLDB'23) adapted to
//! the paper's Figure 1(c) description:
//!
//! * data is taken in fixed **1024-value blocks** (short tails are padded
//!   — the buffer-pressure weakness the paper calls out);
//! * each block is a virtual 1024-bit-register transposition: **32 lanes**
//!   of 32 values each, lane `l` holding positions `l, 32+l, 64+l, …`;
//! * lane heads (32 *original* values) are stored raw — more stored
//!   originals than TS2DIFF's single first value, hence the lower
//!   compression ratio the paper observes;
//! * within-lane deltas are frame-of-reference packed with one width per
//!   block, laid out **row-major** (all 32 lanes' step-k deltas
//!   contiguous), so decoding is a branch-free vertical add per row:
//!   `running[l] += delta_row[k][l]` — SIMD-friendly with *scalar code*,
//!   which is FastLanes' core idea.
//!
//! The crate also provides a paged store and an aggregation executor so
//! the benchmark harness can run the same queries against FastLanes.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use etsqp_encoding::bitio::{bits_needed_u64, BitReader, BitWriter};
use etsqp_encoding::{Error as EncError, Result as EncResult};

/// Values per FLMM block (the virtual 1024-bit register abstraction).
pub const BLOCK: usize = 1024;
/// Lanes per block.
pub const LANES: usize = 32;
/// Values per lane.
pub const LANE_LEN: usize = BLOCK / LANES;

/// One encoded FLMM1024 block.
///
/// Layout: `u32 count` (real values, ≤ 1024), `i64 heads[32]`,
/// `i64 min_delta`, `u8 width`, then `(LANE_LEN − 1)` rows of 32 packed
/// deltas each (row-major).
#[derive(Debug, Clone)]
pub struct Block {
    /// Encoded bytes.
    pub bytes: Arc<[u8]>,
}

/// Parsed block header.
#[derive(Debug, Clone, Copy)]
pub struct BlockMeta {
    /// Real (un-padded) value count.
    pub count: usize,
    /// Frame-of-reference base for deltas.
    pub min_delta: i64,
    /// Packing width.
    pub width: u8,
    /// Byte offset of the packed delta rows.
    pub payload_off: usize,
}

/// Encodes up to [`BLOCK`] values into one block (padding the tail by
/// repeating the last value, which adds zero-deltas).
pub fn encode_block(values: &[i64]) -> Block {
    assert!(!values.is_empty() && values.len() <= BLOCK);
    let count = values.len();
    let mut padded: Vec<i64> = Vec::with_capacity(BLOCK);
    padded.extend_from_slice(values);
    padded.resize(BLOCK, values.last().copied().unwrap_or(0));
    // Transpose: lane l = positions l, 32+l, ...
    // Lane deltas: d[l][k] = v[32k+l] − v[32(k−1)+l].
    let mut deltas = [[0i64; LANE_LEN - 1]; LANES];
    let mut min_delta = i64::MAX;
    #[allow(clippy::needless_range_loop)] // (l, k) mirror the layout math
    for l in 0..LANES {
        for k in 1..LANE_LEN {
            let d = padded[k * LANES + l].wrapping_sub(padded[(k - 1) * LANES + l]);
            deltas[l][k - 1] = d;
            min_delta = min_delta.min(d);
        }
    }
    if min_delta == i64::MAX {
        min_delta = 0;
    }
    let width = deltas
        .iter()
        .flatten()
        .map(|&d| bits_needed_u64(d.wrapping_sub(min_delta) as u64))
        .max()
        .unwrap_or(0);
    let mut w = BitWriter::with_capacity_bits(32 + LANES * 64 + 64 + 8 + BLOCK * width as usize);
    w.write_bits(count as u64, 32);
    for head in padded.iter().take(LANES) {
        w.write_bits(*head as u64, 64); // lane heads = positions 0..32
    }
    w.write_bits(min_delta as u64, 64);
    w.write_bits(width as u64, 8);
    // Row-major delta rows: step k, lanes 0..32.
    for k in 0..LANE_LEN - 1 {
        for lane in deltas.iter() {
            w.write_bits(lane[k].wrapping_sub(min_delta) as u64, width);
        }
    }
    Block {
        bytes: w.finish().into(),
    }
}

/// Parses a block header.
pub fn parse_block(bytes: &[u8]) -> EncResult<BlockMeta> {
    let mut r = BitReader::new(bytes);
    let count = r
        .read_bits(32)
        .ok_or_else(|| EncError::corrupt_at_bit("fastlanes", r.bit_pos(), "count"))?
        as usize;
    if count == 0 || count > BLOCK {
        return Err(EncError::corrupt_at_bit(
            "fastlanes",
            r.bit_pos(),
            "count out of range",
        ));
    }
    r.skip_bits(LANES * 64);
    let min_delta = r
        .read_bits(64)
        .ok_or_else(|| EncError::corrupt_at_bit("fastlanes", r.bit_pos(), "base"))?
        as i64;
    let width = r
        .read_bits(8)
        .ok_or_else(|| EncError::corrupt_at_bit("fastlanes", r.bit_pos(), "width"))?
        as u8;
    if width > 64 {
        return Err(EncError::BadWidth(width));
    }
    let payload_off = r.bit_pos() / 8;
    let need = (LANE_LEN - 1) * LANES * width as usize;
    if (bytes.len() - payload_off) * 8 < need {
        return Err(EncError::corrupt_at_bit(
            "fastlanes",
            r.bit_pos(),
            "payload truncated",
        ));
    }
    Ok(BlockMeta {
        count,
        min_delta,
        width,
        payload_off,
    })
}

/// Decodes a block into `out` (appends `meta.count` values).
///
/// The inner loop is the FastLanes pattern: one running vector of 32
/// lanes, advanced by a full delta row per step — no shuffles, no
/// prefix permutations; the compiler auto-vectorizes the lane loop.
pub fn decode_block(bytes: &[u8], out: &mut Vec<i64>) -> EncResult<()> {
    let meta = parse_block(bytes)?;
    let mut r = BitReader::at(bytes, 32);
    let mut running = [0i64; LANES];
    for lane in running.iter_mut() {
        *lane = r
            .read_bits(64)
            .ok_or_else(|| EncError::corrupt_at_bit("fastlanes", r.bit_pos(), "head"))?
            as i64;
    }
    let start = out.len();
    out.resize(start + BLOCK, 0);
    let dst = &mut out[start..];
    dst[..LANES].copy_from_slice(&running);
    let mut row = [0u64; LANES];
    let mut bit = meta.payload_off * 8;
    let w = meta.width as usize;
    for k in 1..LANE_LEN {
        if w == 0 {
            row.fill(0);
        } else {
            etsqp_simd::unpack::unpack_u64(bytes, bit, meta.width, &mut row);
            bit += LANES * w;
        }
        let base = k * LANES;
        for l in 0..LANES {
            running[l] = running[l]
                .wrapping_add(meta.min_delta)
                .wrapping_add(row[l] as i64);
            dst[base + l] = running[l];
        }
    }
    out.truncate(start + meta.count);
    Ok(())
}

/// Counters shared by every FastLanes series (I/O accounting mirrors
/// `etsqp_storage::store::IoStats`).
#[derive(Debug, Default)]
pub struct FlIoStats {
    bytes: AtomicU64,
    blocks: AtomicU64,
}

impl FlIoStats {
    /// Encoded bytes read so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Blocks read so far.
    pub fn blocks_read(&self) -> u64 {
        self.blocks.load(Ordering::Relaxed)
    }

    /// Resets the counters.
    pub fn reset(&self) {
        self.bytes.store(0, Ordering::Relaxed);
        self.blocks.store(0, Ordering::Relaxed);
    }
}

/// A (timestamp, value) series stored as paired FLMM1024 blocks.
pub struct FlSeries {
    /// Timestamp blocks.
    pub ts_blocks: Vec<Block>,
    /// Value blocks (aligned with `ts_blocks`).
    pub val_blocks: Vec<Block>,
    /// Per-block first/last timestamps for block skipping.
    pub ranges: Vec<(i64, i64)>,
    io: Arc<FlIoStats>,
}

impl FlSeries {
    /// Encodes a series into FLMM1024 block pairs.
    pub fn encode(ts: &[i64], vals: &[i64]) -> FlSeries {
        assert_eq!(ts.len(), vals.len());
        let mut ts_blocks = Vec::new();
        let mut val_blocks = Vec::new();
        let mut ranges = Vec::new();
        for (tc, vc) in ts.chunks(BLOCK).zip(vals.chunks(BLOCK)) {
            ts_blocks.push(encode_block(tc));
            val_blocks.push(encode_block(vc));
            ranges.push((tc[0], tc.last().copied().unwrap_or(tc[0])));
        }
        FlSeries {
            ts_blocks,
            val_blocks,
            ranges,
            io: Arc::new(FlIoStats::default()),
        }
    }

    /// Shared I/O counters.
    pub fn io(&self) -> &FlIoStats {
        &self.io
    }

    /// Total encoded bytes.
    pub fn encoded_len(&self) -> usize {
        self.ts_blocks
            .iter()
            .chain(&self.val_blocks)
            .map(|b| b.bytes.len())
            .sum()
    }

    /// Total stored points.
    pub fn len(&self) -> usize {
        self.ts_blocks
            .iter()
            .map(|b| parse_block(&b.bytes).map(|m| m.count).unwrap_or(0))
            .sum()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.ts_blocks.is_empty()
    }

    /// Decodes everything (reference path).
    pub fn decode_all(&self) -> EncResult<(Vec<i64>, Vec<i64>)> {
        let mut ts = Vec::new();
        let mut vals = Vec::new();
        for (tb, vb) in self.ts_blocks.iter().zip(&self.val_blocks) {
            self.charge(tb);
            self.charge(vb);
            decode_block(&tb.bytes, &mut ts)?;
            decode_block(&vb.bytes, &mut vals)?;
        }
        Ok((ts, vals))
    }

    fn charge(&self, b: &Block) {
        self.io
            .bytes
            .fetch_add(b.bytes.len() as u64, Ordering::Relaxed);
        self.io.blocks.fetch_add(1, Ordering::Relaxed);
    }

    /// SUM and COUNT of values whose timestamp lies in `[t_lo, t_hi]`,
    /// decode-then-filter (FastLanes has no fusion/pruning), parallel
    /// over blocks.
    pub fn sum_in_range(&self, t_lo: i64, t_hi: i64, threads: usize) -> EncResult<(i128, u64)> {
        let idx: Vec<usize> = (0..self.ts_blocks.len())
            .filter(|&i| {
                let (first, last) = self.ranges[i];
                first <= t_hi && last >= t_lo
            })
            .collect();
        let results = parallel_map(&idx, threads.max(1), |&i| -> EncResult<(i128, u64)> {
            let tb = &self.ts_blocks[i];
            let vb = &self.val_blocks[i];
            self.charge(tb);
            self.charge(vb);
            let mut ts = Vec::with_capacity(BLOCK);
            let mut vals = Vec::with_capacity(BLOCK);
            decode_block(&tb.bytes, &mut ts)?;
            decode_block(&vb.bytes, &mut vals)?;
            let a = ts.partition_point(|&t| t < t_lo);
            let b = ts.partition_point(|&t| t <= t_hi);
            let mut sum = 0i128;
            for &v in &vals[a..b] {
                sum += v as i128;
            }
            Ok((sum, (b - a) as u64))
        });
        let mut total = 0i128;
        let mut count = 0u64;
        for r in results {
            let (s, c) = r?;
            total += s;
            count += c;
        }
        Ok((total, count))
    }
}

/// Minimal block-parallel map (FastLanes block granularity).
fn parallel_map<T: Sync, R: Send>(
    items: &[T],
    threads: usize,
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let next = AtomicU64::new(0);
    let slots: Vec<_> = out
        .iter_mut()
        .map(|s| s as *mut Option<R> as usize)
        .collect();
    crossbeam::scope(|scope| {
        for _ in 0..threads.min(items.len()) {
            let next = &next;
            let f = &f;
            let slots = &slots;
            scope.spawn(move |_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed) as usize;
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                // SAFETY: each index is claimed by exactly one worker via
                // the atomic counter, so the slot writes never alias.
                unsafe { *(slots[i] as *mut Option<R>) = Some(r) };
            });
        }
    })
    // lint:allow(no-panic-paths) -- a worker panic is a bug in `f`, not an input error; resuming the unwind is the only sound option in this infallible API
    .expect("fastlanes worker panicked");
    out.into_iter()
        // lint:allow(no-panic-paths) -- every slot is written exactly once by the worker that claimed its index through the atomic counter
        .map(|s| s.expect("slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_roundtrip_full() {
        let values: Vec<i64> = (0..1024).map(|i| 10_000 + i * 3 + (i % 7)).collect();
        let block = encode_block(&values);
        let mut out = Vec::new();
        decode_block(&block.bytes, &mut out).unwrap();
        assert_eq!(out, values);
    }

    #[test]
    fn block_roundtrip_partial_tail() {
        // The buffer-pressure case: a short series still occupies a full
        // 1024-value block.
        for len in [1usize, 31, 32, 33, 1000, 1023] {
            let values: Vec<i64> = (0..len as i64).map(|i| 500 - i * 11).collect();
            let block = encode_block(&values);
            let mut out = Vec::new();
            decode_block(&block.bytes, &mut out).unwrap();
            assert_eq!(out, values, "len {len}");
        }
    }

    #[test]
    fn block_roundtrip_extremes() {
        let mut values = vec![i64::MAX, i64::MIN, 0, -1, 1];
        values.extend((0..500).map(|i| i * 1_000_003));
        let block = encode_block(&values);
        let mut out = Vec::new();
        decode_block(&block.bytes, &mut out).unwrap();
        assert_eq!(out, values);
    }

    #[test]
    fn compression_worse_than_ts2diff_on_short_series() {
        // The paper's Figure 1 argument: for short/regular IoT series the
        // FLMM1024 layout stores 32 originals and pads to 1024 values.
        let values: Vec<i64> = (0..100).map(|i| 1_700_000_000_000 + i * 1000).collect();
        let fl = encode_block(&values);
        let ts2 = etsqp_encoding::ts2diff::encode(&values, 1);
        assert!(
            fl.bytes.len() > ts2.len() * 2,
            "flmm {} vs ts2diff {}",
            fl.bytes.len(),
            ts2.len()
        );
    }

    #[test]
    fn series_sum_in_range_matches_naive() {
        let ts: Vec<i64> = (0..5000).map(|i| i * 10).collect();
        let vals: Vec<i64> = (0..5000).map(|i| (i % 99) - 40).collect();
        let series = FlSeries::encode(&ts, &vals);
        for threads in [1usize, 4] {
            let (sum, count) = series.sum_in_range(10_000, 30_000, threads).unwrap();
            let want: i128 = ts
                .iter()
                .zip(&vals)
                .filter(|(&t, _)| (10_000..=30_000).contains(&t))
                .map(|(_, &v)| v as i128)
                .sum();
            assert_eq!(sum, want, "threads {threads}");
            assert_eq!(count, 2001);
        }
    }

    #[test]
    fn series_block_skipping_reduces_io() {
        let ts: Vec<i64> = (0..10_240).collect();
        let vals = ts.clone();
        let series = FlSeries::encode(&ts, &vals);
        series.io().reset();
        series.sum_in_range(0, 500, 1).unwrap();
        // Only 1 of 10 block pairs overlaps.
        assert_eq!(series.io().blocks_read(), 2);
    }

    #[test]
    fn decode_all_roundtrip() {
        let ts: Vec<i64> = (0..3000).map(|i| i * 7).collect();
        let vals: Vec<i64> = (0..3000).map(|i| i * i % 1000).collect();
        let series = FlSeries::encode(&ts, &vals);
        let (t2, v2) = series.decode_all().unwrap();
        assert_eq!(t2, ts);
        assert_eq!(v2, vals);
        assert_eq!(series.len(), 3000);
    }

    #[test]
    fn corrupt_blocks_rejected() {
        let values: Vec<i64> = (0..100).collect();
        let block = encode_block(&values);
        assert!(parse_block(&block.bytes[..10]).is_err());
        let mut out = Vec::new();
        assert!(decode_block(&block.bytes[..block.bytes.len() / 2], &mut out).is_err());
    }
}
