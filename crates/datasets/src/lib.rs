//! # etsqp-datasets — synthetic equivalents of the paper's Table II
//!
//! | Name          | Label | #Size | #Attr | Category   |
//! |---------------|-------|-------|-------|------------|
//! | Atmosphere    | Atm   | 132K  | 3     | IoT        |
//! | Climate       | Clim  | 8.4M  | 4     | IoT        |
//! | Gas (UCI)     | Gas   | 925K  | 19    | IoT, Open  |
//! | Timestamp     | Time  | 1B    | 2     | IoT        |
//! | Sine-function | Sine  | 1B    | 6     | Generated  |
//! | TPC-H         | TPCH  | 24K   | 4     | Generated  |
//!
//! The originals are proprietary or impractically large for a laptop-scale
//! reproduction; these generators are deterministic (seeded) synthetics
//! matched on the statistics that drive the experiments: timestamp
//! regularity (TS2DIFF width of the time column), value smoothness (delta
//! magnitude → packing width), repeat-run distribution (→ RLE/fusion
//! behaviour), and column/row counts. Billion-row datasets are *scaled*
//! by [`Spec::rows`]; the scale factor is recorded in every report.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One generated multi-attribute time series.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Full name (Table II "Name").
    pub name: &'static str,
    /// Short label (Table II "Label").
    pub label: &'static str,
    /// Declared size in the paper (rows, before scaling).
    pub paper_rows: u64,
    /// Shared timestamp column (strictly increasing).
    pub timestamps: Vec<i64>,
    /// Named value columns, each aligned with `timestamps`.
    pub columns: Vec<(String, Vec<i64>)>,
}

impl Dataset {
    /// Generated row count.
    pub fn rows(&self) -> usize {
        self.timestamps.len()
    }

    /// Number of attributes (value columns).
    pub fn attrs(&self) -> usize {
        self.columns.len()
    }

    /// Series name for column `i` as registered in a store: `label.col`.
    pub fn series_name(&self, i: usize) -> String {
        format!("{}.{}", self.label, self.columns[i].0)
    }
}

/// Which dataset to generate, with its scaled row count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Spec {
    /// Atmosphere: 10-second cadence, smooth weather signals, 3 columns.
    Atmosphere,
    /// Climate: 1-minute cadence, seasonal + diurnal signals, 4 columns.
    Climate,
    /// Gas sensors: 1-second cadence, step responses + drift, 19 columns.
    Gas,
    /// Timestamp: pure arrival stream (counter values), 2 columns.
    Timestamp,
    /// Sine: six quantized sine waves of different periods.
    Sine,
    /// TPC-H lineitem-like numeric columns over a synthetic order clock.
    Tpch,
}

impl Spec {
    /// All six Table II datasets.
    pub const ALL: [Spec; 6] = [
        Spec::Atmosphere,
        Spec::Climate,
        Spec::Gas,
        Spec::Timestamp,
        Spec::Sine,
        Spec::Tpch,
    ];

    /// Paper-declared row count.
    pub fn paper_rows(self) -> u64 {
        match self {
            Spec::Atmosphere => 132_000,
            Spec::Climate => 8_400_000,
            Spec::Gas => 925_000,
            Spec::Timestamp => 1_000_000_000,
            Spec::Sine => 1_000_000_000,
            Spec::Tpch => 24_000,
        }
    }

    /// Scaled row count actually generated: `paper_rows × scale`, clamped
    /// to `[64, cap]`.
    pub fn rows(self, scale: f64, cap: usize) -> usize {
        ((self.paper_rows() as f64 * scale) as usize).clamp(64, cap)
    }

    /// Short label.
    pub fn label(self) -> &'static str {
        match self {
            Spec::Atmosphere => "Atm",
            Spec::Climate => "Clim",
            Spec::Gas => "Gas",
            Spec::Timestamp => "Time",
            Spec::Sine => "Sine",
            Spec::Tpch => "TPCH",
        }
    }

    /// Generates the dataset with `rows` rows (deterministic per spec).
    pub fn generate(self, rows: usize) -> Dataset {
        match self {
            Spec::Atmosphere => atmosphere(rows),
            Spec::Climate => climate(rows),
            Spec::Gas => gas(rows),
            Spec::Timestamp => timestamp(rows),
            Spec::Sine => sine(rows),
            Spec::Tpch => tpch(rows),
        }
    }
}

/// Regular timestamps with occasional network jitter (the dominant IoT
/// arrival pattern: TS2DIFF packs their deltas into a handful of bits).
fn jittered_timestamps(
    rng: &mut StdRng,
    rows: usize,
    start: i64,
    interval: i64,
    jitter: i64,
) -> Vec<i64> {
    let mut out = Vec::with_capacity(rows);
    let mut t = start;
    for _ in 0..rows {
        out.push(t);
        let j = if jitter > 0 && rng.gen_ratio(1, 50) {
            rng.gen_range(-jitter..=jitter)
        } else {
            0
        };
        t += (interval + j).max(1);
    }
    out
}

/// Smooth sensor signal: bounded random walk around a slow drift, scaled
/// to 2 decimal places (values are `reading × 100` integers).
fn smooth_signal(rng: &mut StdRng, rows: usize, base: f64, amp: f64, step: f64) -> Vec<i64> {
    let mut out = Vec::with_capacity(rows);
    let mut v = base;
    for i in 0..rows {
        let drift = amp * (i as f64 / rows.max(1) as f64 * std::f64::consts::TAU).sin();
        v += rng.gen_range(-step..=step);
        v = v.clamp(base - 2.0 * amp, base + 2.0 * amp);
        out.push(((base + drift + (v - base) * 0.5) * 100.0).round() as i64);
    }
    out
}

/// Atmosphere (132K × 3): temperature, humidity, pressure at 10 s cadence.
pub fn atmosphere(rows: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(0xA7A0);
    let timestamps = jittered_timestamps(&mut rng, rows, 1_600_000_000_000, 10_000, 40);
    let columns = vec![
        (
            "temperature".into(),
            smooth_signal(&mut rng, rows, 21.5, 6.0, 0.05),
        ),
        (
            "humidity".into(),
            smooth_signal(&mut rng, rows, 55.0, 20.0, 0.2),
        ),
        (
            "pressure".into(),
            smooth_signal(&mut rng, rows, 1013.2, 15.0, 0.1),
        ),
    ];
    Dataset {
        name: "Atmosphere",
        label: "Atm",
        paper_rows: Spec::Atmosphere.paper_rows(),
        timestamps,
        columns,
    }
}

/// Climate (8.4M × 4): minute-cadence seasonal signals.
pub fn climate(rows: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(0xC11A);
    let timestamps = jittered_timestamps(&mut rng, rows, 1_500_000_000_000, 60_000, 0);
    let mut wind = Vec::with_capacity(rows);
    let mut w = 30.0f64;
    for _ in 0..rows {
        w = (w + rng.gen_range(-1.5..=1.5)).clamp(0.0, 250.0);
        wind.push((w * 10.0).round() as i64);
    }
    let columns = vec![
        (
            "temp".into(),
            smooth_signal(&mut rng, rows, 12.0, 14.0, 0.03),
        ),
        (
            "dewpoint".into(),
            smooth_signal(&mut rng, rows, 6.0, 10.0, 0.03),
        ),
        ("wind".into(), wind),
        ("rain".into(), rain_column(&mut rng, rows)),
    ];
    Dataset {
        name: "Climate",
        label: "Clim",
        paper_rows: Spec::Climate.paper_rows(),
        timestamps,
        columns,
    }
}

/// Mostly-zero precipitation with bursts: long repeat runs (RLE-friendly).
fn rain_column(rng: &mut StdRng, rows: usize) -> Vec<i64> {
    let mut out = Vec::with_capacity(rows);
    let mut remaining = 0usize;
    let mut level = 0i64;
    for _ in 0..rows {
        if remaining == 0 {
            if rng.gen_ratio(1, 20) {
                remaining = rng.gen_range(10..200);
                level = rng.gen_range(1..50);
            } else {
                remaining = rng.gen_range(50..500);
                level = 0;
            }
        }
        out.push(level);
        remaining -= 1;
    }
    out
}

/// Gas (925K × 19): step responses with exponential decay + drift —
/// the UCI home-activity gas-sensor shape.
pub fn gas(rows: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(0x6A5);
    let timestamps = jittered_timestamps(&mut rng, rows, 1_450_000_000_000, 1_000, 10);
    let mut columns = Vec::with_capacity(19);
    for s in 0..19u64 {
        let mut col_rng = StdRng::seed_from_u64(0x6A5_0000 + s);
        let mut v = 5000.0 + s as f64 * 173.0;
        let mut target = v;
        let mut col = Vec::with_capacity(rows);
        for _ in 0..rows {
            if col_rng.gen_ratio(1, 400) {
                target = 4000.0 + col_rng.gen_range(0.0..4000.0);
            }
            v += (target - v) * 0.01 + col_rng.gen_range(-2.0..=2.0);
            col.push(v.round() as i64);
        }
        columns.push((format!("r{s}"), col));
    }
    Dataset {
        name: "Gas",
        label: "Gas",
        paper_rows: Spec::Gas.paper_rows(),
        timestamps,
        columns,
    }
}

/// Timestamp (1B × 2, scaled): a pure arrival stream — the value columns
/// are an event counter and a source id with long repeat runs.
pub fn timestamp(rows: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(0x7153);
    let timestamps = jittered_timestamps(&mut rng, rows, 1_700_000_000_000, 100, 3);
    let counter: Vec<i64> = (0..rows as i64).collect();
    let mut source = Vec::with_capacity(rows);
    let mut cur = 0i64;
    let mut left = 0usize;
    for _ in 0..rows {
        if left == 0 {
            cur = rng.gen_range(0..32);
            left = rng.gen_range(100..2000);
        }
        source.push(cur);
        left -= 1;
    }
    Dataset {
        name: "Timestamp",
        label: "Time",
        paper_rows: Spec::Timestamp.paper_rows(),
        timestamps,
        columns: vec![("counter".into(), counter), ("source".into(), source)],
    }
}

/// Sine (1B × 6, scaled): quantized sine waves of six periods.
pub fn sine(rows: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(0x51E);
    let timestamps = jittered_timestamps(&mut rng, rows, 0, 1_000, 0);
    let periods = [64.0f64, 256.0, 1024.0, 4096.0, 16384.0, 65536.0];
    let columns = periods
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            let col: Vec<i64> = (0..rows)
                .map(|k| ((k as f64 / p * std::f64::consts::TAU).sin() * 1000.0).round() as i64)
                .collect();
            (format!("sine{i}"), col)
        })
        .collect();
    Dataset {
        name: "Sine-function",
        label: "Sine",
        paper_rows: Spec::Sine.paper_rows(),
        timestamps,
        columns,
    }
}

/// TPC-H (24K × 4): lineitem-like numeric columns (quantity, extended
/// price, discount, tax) over a synthetic order-date clock.
pub fn tpch(rows: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(0x79C8);
    let timestamps = jittered_timestamps(&mut rng, rows, 694_224_000_000, 864_000, 86_400);
    let mut quantity = Vec::with_capacity(rows);
    let mut price = Vec::with_capacity(rows);
    let mut discount = Vec::with_capacity(rows);
    let mut tax = Vec::with_capacity(rows);
    for _ in 0..rows {
        let q = rng.gen_range(1..=50i64);
        quantity.push(q);
        price.push(q * rng.gen_range(90_000..=105_000)); // cents ×100
        discount.push(rng.gen_range(0..=10i64)); // percent
        tax.push(rng.gen_range(0..=8i64));
    }
    Dataset {
        name: "TPC-H",
        label: "TPCH",
        paper_rows: Spec::Tpch.paper_rows(),
        timestamps,
        columns: vec![
            ("quantity".into(), quantity),
            ("extendedprice".into(), price),
            ("discount".into(), discount),
            ("tax".into(), tax),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_generate_requested_rows() {
        for spec in Spec::ALL {
            let d = spec.generate(1000);
            assert_eq!(d.rows(), 1000, "{}", d.name);
            assert!(d.attrs() >= 2 || spec != Spec::Gas);
            for (name, col) in &d.columns {
                assert_eq!(col.len(), 1000, "{} column {name}", d.name);
            }
        }
    }

    #[test]
    fn timestamps_strictly_increasing() {
        for spec in Spec::ALL {
            let d = spec.generate(5000);
            assert!(
                d.timestamps.windows(2).all(|w| w[0] < w[1]),
                "{} timestamps not strictly increasing",
                d.name
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for spec in Spec::ALL {
            let a = spec.generate(500);
            let b = spec.generate(500);
            assert_eq!(a.timestamps, b.timestamps, "{}", a.name);
            for ((_, ca), (_, cb)) in a.columns.iter().zip(&b.columns) {
                assert_eq!(ca, cb, "{}", a.name);
            }
        }
    }

    #[test]
    fn attribute_counts_match_table2() {
        assert_eq!(Spec::Atmosphere.generate(64).attrs(), 3);
        assert_eq!(Spec::Climate.generate(64).attrs(), 4);
        assert_eq!(Spec::Gas.generate(64).attrs(), 19);
        assert_eq!(Spec::Timestamp.generate(64).attrs(), 2);
        assert_eq!(Spec::Sine.generate(64).attrs(), 6);
        assert_eq!(Spec::Tpch.generate(64).attrs(), 4);
    }

    #[test]
    fn scaling_clamps() {
        assert_eq!(Spec::Timestamp.rows(1.0, 4_000_000), 4_000_000);
        assert_eq!(Spec::Tpch.rows(1.0, 4_000_000), 24_000);
        assert_eq!(Spec::Tpch.rows(1e-9, 4_000_000), 64);
    }

    #[test]
    fn iot_data_compresses_well_with_ts2diff() {
        // The generators must produce TS2DIFF-friendly data or the whole
        // evaluation premise breaks: expect ≥ 4× on the time column.
        use etsqp_encoding::Encoding;
        for spec in [
            Spec::Atmosphere,
            Spec::Climate,
            Spec::Gas,
            Spec::Timestamp,
            Spec::Sine,
        ] {
            let d = spec.generate(4096);
            let plain = d.timestamps.len() * 8;
            let enc = Encoding::Ts2Diff.encode_i64(&d.timestamps);
            assert!(
                enc.len() * 4 <= plain,
                "{}: time column only {} → {} bytes",
                d.name,
                plain,
                enc.len()
            );
        }
    }

    #[test]
    fn rain_has_long_runs() {
        let d = climate(20_000);
        let rain = &d.columns[3].1;
        let runs = rain.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(
            runs * 10 < rain.len(),
            "rain should be run-heavy: {runs} changes"
        );
    }
}
