//! Criterion bench mirroring Figure 12's operator micro-benchmarks, plus
//! the Proposition 1 `n_v` sweep (the cost-model validation DESIGN.md
//! calls out) and the chain-layout vs straight-scan Delta ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use etsqp_core::decode::{decode_ts2diff, DecodeOptions, DeltaStrategy};
use etsqp_core::fused;
use etsqp_encoding::{delta_rle, ts2diff};

const N: usize = 65_536;

fn decode_benches(c: &mut Criterion) {
    let values: Vec<i64> = (0..N as i64)
        .map(|i| 1_000_000 + i * 3 + (i % 29))
        .collect();
    let bytes = ts2diff::encode(&values, 1);
    let page = ts2diff::parse(&bytes).unwrap();
    let mut group = c.benchmark_group("fig12_decode");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(500));
    group.warm_up_time(std::time::Duration::from_millis(100));
    group.throughput(Throughput::Elements(N as u64));

    // Proposition 1 n_v sweep.
    let mut out = Vec::new();
    for nv in [1usize, 2, 4, 8] {
        let opts = DecodeOptions {
            n_v: Some(nv),
            strategy: DeltaStrategy::ChainLayout,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new("chain_nv", nv), &opts, |b, opts| {
            b.iter(|| decode_ts2diff(&page, opts, &mut out).unwrap())
        });
    }
    // Straight-scan ablation (SBoost-style accumulation).
    let opts = DecodeOptions {
        n_v: None,
        strategy: DeltaStrategy::StraightScan,
        ..Default::default()
    };
    group.bench_function("straight_scan", |b| {
        b.iter(|| decode_ts2diff(&page, &opts, &mut out).unwrap())
    });
    // Serial reference decoder.
    group.bench_function("serial_reference", |b| {
        b.iter(|| ts2diff::decode(&bytes).unwrap())
    });
    group.finish();
}

fn fusion_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_fusion");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(500));
    group.warm_up_time(std::time::Duration::from_millis(100));
    group.throughput(Throughput::Elements(N as u64));
    for run in [1usize, 16, 256] {
        let mut vals = Vec::with_capacity(N);
        let mut v = 0i64;
        for i in 0..N {
            if i % run == 0 {
                v += (i / run) as i64 % 5 - 2;
            }
            v += 1;
            vals.push(v);
        }
        let bytes = delta_rle::encode(&vals);
        let page = delta_rle::parse(&bytes).unwrap();
        group.bench_with_input(
            BenchmarkId::new("fused_aggregate", run),
            &page,
            |b, page| b.iter(|| fused::aggregate_delta_rle(page).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("flatten_then_sum", run),
            &bytes,
            |b, bytes| {
                b.iter(|| {
                    let decoded = delta_rle::decode(bytes).unwrap();
                    etsqp_simd::agg::sum_i64(&decoded)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, decode_benches, fusion_benches);
criterion_main!(benches);
