//! Criterion bench behind Table I: encode/decode throughput of every
//! codec on a realistic sensor column, plus the Figure 7 variable-width
//! decoder (word-level separator scan vs bit-serial walk).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use etsqp_datasets::Spec;
use etsqp_encoding::{fibonacci, Encoding};

const N: usize = 32_768;

fn int_codecs(c: &mut Criterion) {
    let d = Spec::Climate.generate(N);
    let col = &d.columns[0].1;
    let mut group = c.benchmark_group("table1_int");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(400));
    group.warm_up_time(std::time::Duration::from_millis(100));
    group.throughput(Throughput::Elements(N as u64));
    for enc in [
        Encoding::Plain,
        Encoding::Ts2Diff,
        Encoding::Ts2DiffOrder2,
        Encoding::DeltaRle,
        Encoding::Sprintz,
        Encoding::Rlbe,
        Encoding::Gorilla,
        Encoding::Rle,
    ] {
        group.bench_with_input(BenchmarkId::new("encode", enc.name()), col, |b, col| {
            b.iter(|| enc.encode_i64(col))
        });
        let bytes = enc.encode_i64(col);
        group.bench_with_input(
            BenchmarkId::new("decode", enc.name()),
            &bytes,
            |b, bytes| b.iter(|| enc.decode_i64(bytes).unwrap()),
        );
    }
    group.finish();
}

fn float_codecs(c: &mut Criterion) {
    let vals: Vec<f64> = (0..N)
        .map(|i| ((20.0 + (i as f64 * 0.01).sin() * 5.0) * 100.0).round() / 100.0)
        .collect();
    let mut group = c.benchmark_group("table1_float");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(400));
    group.warm_up_time(std::time::Duration::from_millis(100));
    group.throughput(Throughput::Elements(N as u64));
    for enc in [Encoding::GorillaFloat, Encoding::Chimp, Encoding::Elf] {
        group.bench_with_input(BenchmarkId::new("encode", enc.name()), &vals, |b, vals| {
            b.iter(|| enc.encode_f64(vals))
        });
        let bytes = enc.encode_f64(&vals);
        group.bench_with_input(
            BenchmarkId::new("decode", enc.name()),
            &bytes,
            |b, bytes| b.iter(|| enc.decode_f64(bytes).unwrap()),
        );
    }
    group.finish();
}

fn fig7_varwidth(c: &mut Criterion) {
    // The Figure 7 comparison: separator-scan decoding vs bit-serial.
    let vals: Vec<u64> = (1..=N as u64).map(|i| (i % 5000) + 1).collect();
    let bytes = fibonacci::encode_all(&vals);
    let mut group = c.benchmark_group("fig7_varwidth");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(400));
    group.warm_up_time(std::time::Duration::from_millis(100));
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function("separator_scan", |b| {
        b.iter(|| fibonacci::decode_all_fast(&bytes).unwrap())
    });
    group.bench_function("bit_serial", |b| {
        b.iter(|| fibonacci::decode_all(&bytes).unwrap())
    });
    group.finish();
}

criterion_group!(benches, int_codecs, float_codecs, fig7_varwidth);
criterion_main!(benches);
