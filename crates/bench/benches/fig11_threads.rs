//! Criterion bench mirroring Figure 11: Q1 throughput across thread
//! counts for ETSQP, SBoost and FastLanes (Timestamp dataset).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use etsqp_bench::{build_workload, run_query, Query, System};
use etsqp_datasets::Spec;

fn bench(c: &mut Criterion) {
    let w = build_workload(Spec::Timestamp, 32_768);
    let mut group = c.benchmark_group("fig11");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(600));
    group.warm_up_time(std::time::Duration::from_millis(150));
    group.throughput(Throughput::Elements(w.tuples(Query::Q1)));
    for threads in [1usize, 2, 4, 8] {
        for system in [System::EtsqpPrune, System::SBoost, System::FastLanes] {
            group.bench_with_input(
                BenchmarkId::new(system.name(), threads),
                &threads,
                |b, &threads| b.iter(|| run_query(system, Query::Q1, &w, threads)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
