//! Criterion bench mirroring Figure 13: the four deployment engines on a
//! time-range aggregation over the Climate dataset.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use etsqp_comparators::{monet::MonetLike, spark::SparkLike};
use etsqp_core::engine::{EngineOptions, IotDb};
use etsqp_core::expr::{AggFunc, Plan, Predicate};
use etsqp_datasets::Spec;

const N: usize = 32_768;

fn bench(c: &mut Criterion) {
    let d = Spec::Climate.generate(N);
    let ts = &d.timestamps;
    let vals = &d.columns[0].1;
    let (lo, hi) = (ts[N / 4], ts[3 * N / 4]);
    let plan = Plan::scan("s")
        .filter(Predicate::time(lo, hi))
        .aggregate(AggFunc::Sum);

    let serial = IotDb::new(EngineOptions::serial());
    serial.create_series("s").unwrap();
    serial.append_all("s", ts, vals).unwrap();
    serial.flush().unwrap();
    let simd = IotDb::new(EngineOptions::etsqp());
    simd.create_series("s").unwrap();
    simd.append_all("s", ts, vals).unwrap();
    simd.flush().unwrap();
    let monet = MonetLike::load(ts, vals);
    let mut spark = SparkLike::load(ts, vals);
    spark.simulate_codegen = false; // measure the scan itself

    let mut group = c.benchmark_group("fig13");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(600));
    group.warm_up_time(std::time::Duration::from_millis(150));
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function("iotdb_serial", |b| {
        b.iter(|| serial.execute(&plan).unwrap().rows.len())
    });
    group.bench_function("iotdb_simd", |b| {
        b.iter(|| simd.execute(&plan).unwrap().rows.len())
    });
    group.bench_function("monet_like", |b| {
        b.iter(|| monet.sum_in_time_range(lo, hi).count)
    });
    group.bench_function("spark_like", |b| {
        b.iter(|| spark.sum_in_time_range(lo, hi).count)
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
