//! Criterion bench mirroring Figure 10: the five systems on Q1–Q6 over a
//! representative dataset (Sine) at small scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use etsqp_bench::{build_workload, run_query, Query, System};
use etsqp_datasets::Spec;

fn bench(c: &mut Criterion) {
    let w = build_workload(Spec::Sine, 32_768);
    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(600));
    group.warm_up_time(std::time::Duration::from_millis(150));
    for q in Query::ALL {
        group.throughput(Throughput::Elements(w.tuples(q)));
        for system in System::ALL {
            group.bench_with_input(
                BenchmarkId::new(q.name(), system.name()),
                &(system, q),
                |b, &(system, q)| b.iter(|| run_query(system, q, &w, 2)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
