//! Criterion bench mirroring Figure 14's ablations: fusion levels,
//! pruning on/off, and sliced vs paged execution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use etsqp_bench::custom_store;
use etsqp_core::expr::{AggFunc, Plan, Predicate};
use etsqp_core::fused::FuseLevel;
use etsqp_core::plan::PipelineConfig;
use etsqp_encoding::Encoding;

const N: usize = 65_536;

fn bench(c: &mut Criterion) {
    let ts: Vec<i64> = (0..N as i64).map(|i| i * 10).collect();
    let mut vals = Vec::with_capacity(N);
    let mut v = 0i64;
    for i in 0..N {
        if i % 40 == 0 {
            v += (i / 40) as i64 % 5 - 2;
        }
        v += 2;
        vals.push(v);
    }

    let mut group = c.benchmark_group("fig14");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(500));
    group.warm_up_time(std::time::Duration::from_millis(100));
    group.throughput(Throughput::Elements(N as u64));

    // (a) Fusion levels on Delta-RLE values.
    let db = custom_store(&ts, &vals, Encoding::DeltaRle, 4096);
    let plan = Plan::scan("a").aggregate(AggFunc::Sum);
    for (name, fuse) in [
        ("none", FuseLevel::None),
        ("delta", FuseLevel::Delta),
        ("delta_repeat", FuseLevel::DeltaRepeat),
    ] {
        let cfg = PipelineConfig {
            threads: 1,
            fuse,
            prune: false,
            allow_slicing: false,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new("fuse", name), &cfg, |b, cfg| {
            b.iter(|| db.execute_with(&plan, cfg).unwrap().rows.len())
        });
    }

    // Pruning on/off under a selective time filter.
    let db2 = custom_store(&ts, &vals, Encoding::Ts2Diff, 1024);
    let selective = Plan::scan("a")
        .filter(Predicate::time(ts[N / 2], ts[N / 2 + N / 50]))
        .aggregate(AggFunc::Sum);
    for (name, prune) in [("prune_on", true), ("prune_off", false)] {
        let cfg = PipelineConfig {
            threads: 1,
            prune,
            allow_slicing: false,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new("pruning", name), &cfg, |b, cfg| {
            b.iter(|| db2.execute_with(&selective, cfg).unwrap().rows.len())
        });
    }

    // (c-d) Sliced vs paged full-scan aggregation (one big page).
    let db3 = custom_store(&ts, &vals, Encoding::Ts2Diff, N);
    let full = Plan::scan("a").aggregate(AggFunc::Sum);
    for (name, slicing, threads) in [
        ("paged_1t", false, 1usize),
        ("sliced_4t", true, 4),
        ("sliced_16t", true, 16),
    ] {
        let cfg = PipelineConfig {
            threads,
            prune: false,
            allow_slicing: slicing,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new("slicing", name), &cfg, |b, cfg| {
            b.iter(|| db3.execute_with(&full, cfg).unwrap().rows.len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
