//! Shared benchmark support: workload construction, the five compared
//! systems of paper §VII-A, and the six benchmark queries of Table III.
//!
//! Every `fig*`/`table*` binary in `src/bin/` and every Criterion bench in
//! `benches/` builds its workloads and runs its measurements through this
//! module, so the harness and the statistical benches measure the same
//! code paths.
//!
//! Scale control: the environment variable `ETSQP_BENCH_ROWS` caps the
//! generated rows per dataset (default 200_000 for binaries; the
//! Criterion benches use smaller fixed sizes).

#![forbid(unsafe_code)]

use std::sync::Arc;
use std::time::{Duration, Instant};

use etsqp_core::engine::{EngineOptions, IotDb};
use etsqp_core::expr::{AggFunc, Plan, Predicate};
use etsqp_core::plan::PipelineConfig;
use etsqp_datasets::{Dataset, Spec};
use etsqp_encoding::Encoding;
use etsqp_fastlanes::FlSeries;
use etsqp_sboost::SboostEngine;

/// The five compared systems of §VII-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// The parallel pipeline without pruning rules.
    Etsqp,
    /// ETSQP plus the §V pruning rules.
    EtsqpPrune,
    /// Serial decode-and-aggregate pipeline.
    Serial,
    /// FastLanes FLMM1024 layout baseline.
    FastLanes,
    /// SBoost SIMD decode baseline.
    SBoost,
}

impl System {
    /// All five systems in the paper's legend order.
    pub const ALL: [System; 5] = [
        System::EtsqpPrune,
        System::Etsqp,
        System::Serial,
        System::FastLanes,
        System::SBoost,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            System::Etsqp => "ETSQP",
            System::EtsqpPrune => "ETSQP-prune",
            System::Serial => "Serial",
            System::FastLanes => "FastLanes",
            System::SBoost => "SBoost",
        }
    }
}

/// The six benchmark queries of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Query {
    /// `SELECT SUM(A) FROM ts SW(T_min, ΔT)`.
    Q1,
    /// `SELECT AVG(A) FROM ts SW(T_min, ΔT)`.
    Q2,
    /// `SELECT SUM(A) FROM (SELECT * FROM ts WHERE A > a)`.
    Q3,
    /// `SELECT ts1.A + ts2.A FROM ts1, ts2`.
    Q4,
    /// `SELECT * FROM ts1 UNION ts2 ORDER BY TIME`.
    Q5,
    /// `SELECT * FROM ts1, ts2`.
    Q6,
}

impl Query {
    /// All six queries.
    pub const ALL: [Query; 6] = [
        Query::Q1,
        Query::Q2,
        Query::Q3,
        Query::Q4,
        Query::Q5,
        Query::Q6,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Query::Q1 => "Q1",
            Query::Q2 => "Q2",
            Query::Q3 => "Q3",
            Query::Q4 => "Q4",
            Query::Q5 => "Q5",
            Query::Q6 => "Q6",
        }
    }
}

/// A prepared benchmark workload: one dataset column in every system's
/// native representation.
pub struct Workload {
    /// Dataset label.
    pub label: &'static str,
    /// Timestamps (first column's clock).
    pub ts: Vec<i64>,
    /// Primary value column.
    pub vals: Vec<i64>,
    /// Secondary series for two-series queries (Q4–Q6): same clock family
    /// but offset, so joins and unions have realistic overlap.
    pub ts2: Vec<i64>,
    /// Secondary value column.
    pub vals2: Vec<i64>,
    /// ETSQP page store holding both series (`"a"` and `"b"`).
    pub db: IotDb,
    /// FastLanes representation of series a / b.
    pub fl_a: FlSeries,
    /// FastLanes representation of series b.
    pub fl_b: FlSeries,
    /// Default value-filter threshold (median → selectivity 0.5).
    pub value_threshold: i64,
    /// Window width giving ~10³ points per window instance.
    pub window_dt: i64,
    /// Window origin.
    pub t_min: i64,
}

/// Rows per dataset for harness binaries (`ETSQP_BENCH_ROWS` overrides).
pub fn default_rows() -> usize {
    std::env::var("ETSQP_BENCH_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200_000)
}

/// Builds the workload for one Table II dataset.
pub fn build_workload(spec: Spec, rows: usize) -> Workload {
    let d: Dataset = spec.generate(rows);
    let ts = d.timestamps.clone();
    let vals = d.columns[0].1.clone();
    // Secondary series: second column when present, else a shifted copy.
    let (ts2, vals2) = if d.columns.len() > 1 {
        (d.timestamps.clone(), d.columns[1].1.clone())
    } else {
        (d.timestamps.iter().map(|t| t + 1).collect(), vals.clone())
    };

    let db = IotDb::new(EngineOptions::default());
    db.create_series("a").unwrap();
    db.create_series("b").unwrap();
    db.append_all("a", &ts, &vals).unwrap();
    db.append_all("b", &ts2, &vals2).unwrap();
    db.flush().unwrap();

    let fl_a = FlSeries::encode(&ts, &vals);
    let fl_b = FlSeries::encode(&ts2, &vals2);

    let mut sorted = vals.clone();
    sorted.sort_unstable();
    let value_threshold = sorted[sorted.len() / 2];

    let span = ts.last().unwrap() - ts[0];
    let window_dt = (span / (ts.len() as i64 / 1000).max(1)).max(1);

    Workload {
        label: spec.label(),
        ts,
        vals,
        ts2,
        vals2,
        db,
        fl_a,
        fl_b,
        value_threshold,
        window_dt,
        t_min: 0,
    }
    .with_origin()
}

impl Workload {
    fn with_origin(mut self) -> Self {
        self.t_min = self.ts[0];
        self
    }

    /// Number of tuples the workload covers per query run (both series
    /// for the two-series queries).
    pub fn tuples(&self, q: Query) -> u64 {
        match q {
            Query::Q1 | Query::Q2 | Query::Q3 => self.ts.len() as u64,
            _ => (self.ts.len() + self.ts2.len()) as u64,
        }
    }
}

/// Runs one (system, query) pair once, returning a result checksum
/// (guards against dead-code elimination and cross-checks systems).
pub fn run_query(system: System, q: Query, w: &Workload, threads: usize) -> f64 {
    match system {
        System::Etsqp => run_core(w, q, core_cfg(threads, false)),
        System::EtsqpPrune => run_core(w, q, core_cfg(threads, true)),
        System::Serial => {
            let mut cfg = EngineOptions::serial().pipeline;
            cfg.threads = 1;
            run_core(w, q, cfg)
        }
        System::FastLanes => run_fastlanes(w, q, threads),
        System::SBoost => run_sboost(w, q, threads),
    }
}

fn core_cfg(threads: usize, prune: bool) -> PipelineConfig {
    PipelineConfig {
        threads,
        prune,
        ..Default::default()
    }
}

fn run_core(w: &Workload, q: Query, cfg: PipelineConfig) -> f64 {
    let plan = match q {
        Query::Q1 => Plan::scan("a").window(w.t_min, w.window_dt, AggFunc::Sum),
        Query::Q2 => Plan::scan("a").window(w.t_min, w.window_dt, AggFunc::Avg),
        Query::Q3 => Plan::scan("a")
            .filter(Predicate::value(w.value_threshold, i64::MAX))
            .aggregate(AggFunc::Sum),
        Query::Q4 => Plan::JoinExpr {
            left: Box::new(Plan::scan("a")),
            right: Box::new(Plan::scan("b")),
            op: etsqp_core::expr::BinOp::Add,
        },
        Query::Q5 => Plan::Union {
            left: Box::new(Plan::scan("a")),
            right: Box::new(Plan::scan("b")),
        },
        Query::Q6 => Plan::Join {
            left: Box::new(Plan::scan("a")),
            right: Box::new(Plan::scan("b")),
            on: None,
        },
    };
    let r = w.db.execute_with(&plan, &cfg).expect("query");
    match q {
        Query::Q1 | Query::Q2 | Query::Q3 => {
            r.rows.iter().map(|row| row.last().unwrap().as_f64()).sum()
        }
        _ => r.rows.len() as f64,
    }
}

fn run_fastlanes(w: &Workload, q: Query, threads: usize) -> f64 {
    match q {
        Query::Q1 | Query::Q2 => {
            // Window aggregation = one range sum per window instance.
            let mut acc = 0f64;
            let last = *w.ts.last().unwrap();
            let mut lo = w.t_min;
            while lo <= last {
                let hi = lo + w.window_dt - 1;
                let (sum, count) = w.fl_a.sum_in_range(lo, hi, threads).expect("fl");
                if count > 0 {
                    acc += match q {
                        Query::Q1 => sum as f64,
                        _ => sum as f64 / count as f64,
                    };
                }
                lo += w.window_dt;
            }
            acc
        }
        Query::Q3 => {
            // No pruning/fusion: decode everything, filter, sum.
            let (_, vals) = w.fl_a.decode_all().expect("fl");
            let thr = w.value_threshold;
            vals.iter().filter(|&&v| v >= thr).map(|&v| v as f64).sum()
        }
        Query::Q4 | Query::Q6 => {
            let (ta, va) = w.fl_a.decode_all().expect("fl");
            let (tb, vb) = w.fl_b.decode_all().expect("fl");
            merge_join_count(&ta, &va, &tb, &vb) as f64
        }
        Query::Q5 => {
            let (ta, _) = w.fl_a.decode_all().expect("fl");
            let (tb, _) = w.fl_b.decode_all().expect("fl");
            merge_union_count(&ta, &tb) as f64
        }
    }
}

fn run_sboost(w: &Workload, q: Query, threads: usize) -> f64 {
    let engine = SboostEngine::from_store(w.db.store(), "a").expect("sboost");
    match q {
        Query::Q1 | Query::Q2 => {
            let mut acc = 0f64;
            let last = *w.ts.last().unwrap();
            let mut lo = w.t_min;
            while lo <= last {
                let hi = lo + w.window_dt - 1;
                let (sum, count) = engine.sum_in_time_range(lo, hi, threads).expect("sboost");
                if count > 0 {
                    acc += match q {
                        Query::Q1 => sum as f64,
                        _ => sum as f64 / count as f64,
                    };
                }
                lo += w.window_dt;
            }
            acc
        }
        Query::Q3 => {
            // Decode + SIMD filter on values (their headline op), no prune.
            let pages = w.db.store().peek_pages("a").expect("pages");
            let mut total = 0i128;
            for page in pages {
                let mut vals = Vec::new();
                etsqp_sboost::decode_page_values(&page.val_bytes, &mut vals).expect("decode");
                let mut mask = etsqp_simd::filter::new_mask(vals.len().max(1));
                etsqp_simd::filter::range_mask_i64(&vals, w.value_threshold, i64::MAX, &mut mask);
                let (s, _) = etsqp_simd::agg::masked_sum_i64(&vals, &mask);
                total += s;
            }
            total as f64
        }
        Query::Q4 | Query::Q6 => {
            let (ta, va) = sboost_decode_series(w, "a");
            let (tb, vb) = sboost_decode_series(w, "b");
            merge_join_count(&ta, &va, &tb, &vb) as f64
        }
        Query::Q5 => {
            let (ta, _) = sboost_decode_series(w, "a");
            let (tb, _) = sboost_decode_series(w, "b");
            merge_union_count(&ta, &tb) as f64
        }
    }
}

fn sboost_decode_series(w: &Workload, series: &str) -> (Vec<i64>, Vec<i64>) {
    let pages = w.db.store().peek_pages(series).expect("pages");
    let mut ts = Vec::new();
    let mut vals = Vec::new();
    for page in pages {
        let mut t = Vec::new();
        let mut v = Vec::new();
        etsqp_sboost::decode_page_values(&page.ts_bytes, &mut t).expect("decode ts");
        etsqp_sboost::decode_page_values(&page.val_bytes, &mut v).expect("decode vals");
        ts.extend(t);
        vals.extend(v);
    }
    (ts, vals)
}

/// Baselines materialize the same result representation the engine
/// returns (`Vec<Vec<Value>>` rows), so Q4–Q6 compare the full pipeline
/// including result construction — not a count shortcut.
fn merge_join_count(ta: &[i64], va: &[i64], tb: &[i64], vb: &[i64]) -> u64 {
    use etsqp_core::plan::Value;
    let (mut i, mut j) = (0usize, 0usize);
    let mut rows: Vec<Vec<Value>> = Vec::new();
    while i < ta.len() && j < tb.len() {
        match ta[i].cmp(&tb[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                rows.push(vec![
                    Value::Int(ta[i]),
                    Value::Int(va[i].wrapping_add(vb[j])),
                ]);
                i += 1;
                j += 1;
            }
        }
    }
    std::hint::black_box(&rows);
    rows.len() as u64
}

fn merge_union_count(ta: &[i64], tb: &[i64]) -> u64 {
    use etsqp_core::plan::Value;
    let (mut i, mut j) = (0usize, 0usize);
    let mut rows: Vec<Vec<Value>> = Vec::with_capacity(ta.len() + tb.len());
    while i < ta.len() || j < tb.len() {
        let left = match (ta.get(i), tb.get(j)) {
            (Some(&a), Some(&b)) => a <= b,
            (Some(_), None) => true,
            _ => false,
        };
        if left {
            rows.push(vec![Value::Int(ta[i]), Value::Int(0)]);
            i += 1;
        } else {
            rows.push(vec![Value::Int(tb[j]), Value::Int(0)]);
            j += 1;
        }
    }
    std::hint::black_box(&rows);
    rows.len() as u64
}

/// Times `f` over `iters` runs after one warm-up, returning the median.
pub fn time_median<R>(iters: usize, mut f: impl FnMut() -> R) -> Duration {
    std::hint::black_box(f());
    let mut samples: Vec<Duration> = (0..iters.max(1))
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Tuples-per-second throughput from a duration.
pub fn throughput(tuples: u64, d: Duration) -> f64 {
    tuples as f64 / d.as_secs_f64()
}

/// Formats a throughput in M tuples/s.
pub fn fmt_mtps(t: f64) -> String {
    format!("{:8.1}", t / 1e6)
}

/// Builds a store whose value column uses a specific codec (micro-bench
/// substrate for Fig. 12).
pub fn custom_store(ts: &[i64], vals: &[i64], val_enc: Encoding, page_points: usize) -> IotDb {
    let db = IotDb::new(
        EngineOptions::default()
            .with_encodings(Encoding::Ts2Diff, val_enc)
            .with_page_points(page_points),
    );
    db.create_series("a").unwrap();
    db.append_all("a", ts, vals).unwrap();
    db.flush().unwrap();
    db
}

/// Convenience: all six dataset workloads at the harness scale.
pub fn all_workloads(rows: usize) -> Vec<Arc<Workload>> {
    Spec::ALL
        .iter()
        .map(|&s| Arc::new(build_workload(s, rows)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_systems_agree_on_every_query() {
        let w = build_workload(Spec::Atmosphere, 12_000);
        for q in Query::ALL {
            let reference = run_query(System::Serial, q, &w, 1);
            for system in System::ALL {
                let got = run_query(system, q, &w, 2);
                let tol = reference.abs().max(1.0) * 1e-9;
                assert!(
                    (got - reference).abs() <= tol,
                    "{} on {}: {got} vs serial {reference}",
                    system.name(),
                    q.name()
                );
            }
        }
    }

    #[test]
    fn throughput_math() {
        let t = throughput(1_000_000, Duration::from_millis(100));
        assert!((t - 1e7).abs() < 1.0);
    }
}
