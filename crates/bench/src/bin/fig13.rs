//! Figure 13 — system deployment comparison: answering time of time- and
//! value-range aggregation queries on IoTDB (serial engine), IoTDB-SIMD
//! (integrated ETSQP), MonetDB-like, and Spark/HDFS-like engines across
//! the Table II datasets.
//!
//! ```sh
//! cargo run --release -p etsqp-bench --bin fig13
//! ```

use etsqp_bench::{default_rows, time_median};
use etsqp_comparators::{monet::MonetLike, spark::SparkLike};
use etsqp_core::engine::{EngineOptions, IotDb};
use etsqp_core::expr::{AggFunc, Plan, Predicate};
use etsqp_datasets::Spec;

fn main() {
    let rows = default_rows();
    println!("Figure 13: answering time [ms] of range aggregations, {rows} rows/dataset\n");
    for (title, value_query) in [
        ("time-range queries (selectivity 0.5)", false),
        ("value-range queries (selectivity 0.5)", true),
    ] {
        println!("--- {title} ---");
        print!("{:<12}", "dataset");
        for name in ["IoTDB", "IoTDB-SIMD", "MonetDB", "Spark/HDFS"] {
            print!("{name:>12}");
        }
        println!();
        for spec in Spec::ALL {
            let d = spec.generate(rows);
            let ts = &d.timestamps;
            let vals = &d.columns[0].1;
            let (t_lo, t_hi) = (ts[ts.len() / 4], ts[3 * ts.len() / 4]);
            let (v_lo, v_hi) = {
                let mut s = vals.clone();
                s.sort_unstable();
                (s[s.len() / 4], s[3 * s.len() / 4])
            };
            let pred = if value_query {
                Predicate::value(v_lo, v_hi)
            } else {
                Predicate::time(t_lo, t_hi)
            };
            let plan = Plan::scan("s").filter(pred).aggregate(AggFunc::Sum);

            // IoTDB: byte-serial engine.
            let serial_db = IotDb::new(EngineOptions::serial());
            serial_db.create_series("s").unwrap();
            serial_db.append_all("s", ts, vals).unwrap();
            serial_db.flush().unwrap();
            let d_serial = time_median(3, || serial_db.execute(&plan).unwrap().rows.len());

            // IoTDB-SIMD: the integrated ETSQP engine.
            let simd_db = IotDb::new(EngineOptions::etsqp());
            simd_db.create_series("s").unwrap();
            simd_db.append_all("s", ts, vals).unwrap();
            simd_db.flush().unwrap();
            let d_simd = time_median(3, || simd_db.execute(&plan).unwrap().rows.len());

            // MonetDB-like: decompress-then-process columns. Value-range
            // queries scan all blocks (no time zone-map help).
            let monet = MonetLike::load(ts, vals);
            let d_monet = time_median(3, || {
                if value_query {
                    monet.sum_in_time_range(i64::MIN, i64::MAX).count
                } else {
                    monet.sum_in_time_range(t_lo, t_hi).count
                }
            });

            // Spark-like: coarse row groups + per-query codegen latency.
            let spark = SparkLike::load(ts, vals);
            let d_spark = time_median(3, || {
                if value_query {
                    spark.sum_in_time_range(i64::MIN, i64::MAX).count
                } else {
                    spark.sum_in_time_range(t_lo, t_hi).count
                }
            });

            println!(
                "{:<12}{:>12.2}{:>12.2}{:>12.2}{:>12.2}",
                spec.label(),
                d_serial.as_secs_f64() * 1e3,
                d_simd.as_secs_f64() * 1e3,
                d_monet.as_secs_f64() * 1e3,
                d_spark.as_secs_f64() * 1e3,
            );
        }
        println!();
    }
    println!("(MonetDB/Spark are behavioural stand-ins — see DESIGN.md §3; the shape to");
    println!(" check is IoTDB-SIMD < IoTDB < MonetDB < Spark on IoT range aggregations.)");
}
