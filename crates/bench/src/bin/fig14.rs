//! Figure 14 — ablation study of the parallel pipeline designs:
//!
//! * (a) throughput vs number of fused decoders (none / Delta /
//!   Delta+Repeat);
//! * (b) staged time breakdown (I/O, unpack, delta, filter, aggregate,
//!   merge, idle);
//! * (c–d) page slices: execution time, worker idle time and
//!   materialized bytes as the slice count grows — ETSQP's two-phase
//!   symbolic slices vs SBoost's synchronized slice chain.
//!
//! ```sh
//! cargo run --release -p etsqp-bench --bin fig14
//! ```

use etsqp_bench::{custom_store, default_rows, fmt_mtps, throughput, time_median};
use etsqp_core::engine::{EngineOptions, IotDb};
use etsqp_core::expr::{AggFunc, Plan};
use etsqp_core::fused::FuseLevel;
use etsqp_core::plan::PipelineConfig;
use etsqp_datasets::Spec;
use etsqp_encoding::Encoding;

fn main() {
    let rows = default_rows();
    part_a(rows);
    part_b(rows);
    part_cd(rows);
}

/// (a) Fused decoder count.
fn part_a(rows: usize) {
    println!("Figure 14(a): throughput vs fused decoders, {rows} rows (Delta-Repeat data)\n");
    // Run-heavy values so the Repeat fusion has something to skip.
    let mut vals = Vec::with_capacity(rows);
    let mut v = 0i64;
    for i in 0..rows {
        if i % 50 == 0 {
            v += (i as i64 / 50) % 5 - 2;
        }
        v += 2;
        vals.push(v);
    }
    let ts: Vec<i64> = (0..rows as i64).map(|i| i * 10).collect();
    let plan = Plan::scan("a").aggregate(AggFunc::Sum);
    // Each fusion level on the substrate whose decoder it skips: Delta
    // fusion applies to TS2DIFF (skips accumulation); Delta+Repeat fusion
    // applies to Delta-RLE (skips flattening and accumulation).
    for (substrate, enc) in [
        ("TS2DIFF", Encoding::Ts2Diff),
        ("Delta-RLE", Encoding::DeltaRle),
    ] {
        let db = custom_store(&ts, &vals, enc, 4096);
        println!("value column encoded as {substrate}:");
        for (name, fuse) in [
            ("  fuse none (unpack+flatten+accumulate)", FuseLevel::None),
            ("  fuse Delta (skip accumulate)", FuseLevel::Delta),
            (
                "  fuse Delta+Repeat (skip flatten too)",
                FuseLevel::DeltaRepeat,
            ),
        ] {
            let cfg = PipelineConfig {
                threads: 1,
                fuse,
                prune: false,
                allow_slicing: false,
                ..Default::default()
            };
            let d = time_median(5, || db.execute_with(&plan, &cfg).unwrap().rows.len());
            println!(
                "{name:<42} {} M tuples/s",
                fmt_mtps(throughput(rows as u64, d))
            );
        }
    }
    println!();
}

/// (b) Staged time consumption.
fn part_b(rows: usize) {
    println!("Figure 14(b): staged time breakdown, Q1 on Clim, {rows} rows\n");
    let d = Spec::Climate.generate(rows);
    let db = IotDb::new(EngineOptions::default());
    db.create_series("temp").unwrap();
    db.append_all("temp", &d.timestamps, &d.columns[0].1)
        .unwrap();
    db.flush().unwrap();
    let span = d.timestamps.last().unwrap() - d.timestamps[0];
    let dt = (span / (rows as i64 / 1000).max(1)).max(1);
    // Disable fusion so every stage actually runs.
    let cfg = PipelineConfig {
        fuse: FuseLevel::None,
        threads: 2,
        ..Default::default()
    };
    let plan = Plan::scan("temp").window(d.timestamps[0], dt, AggFunc::Sum);
    let r = db.execute_with(&plan, &cfg).unwrap();
    let s = r.stats;
    let stages = [
        ("I/O + distribute", s.io_ns),
        ("unpack", s.unpack_ns),
        ("delta/flatten", s.delta_ns),
        ("filter", s.filter_ns),
        ("aggregate", s.agg_ns),
        ("merge", s.merge_ns),
        ("idle", s.idle_ns),
    ];
    let total: u64 = stages.iter().map(|(_, ns)| *ns).sum();
    for (name, ns) in stages {
        println!(
            "{name:<18} {:>8.2} ms  {:>5.1}%",
            ns as f64 / 1e6,
            ns as f64 / total.max(1) as f64 * 100.0
        );
    }
    println!("(windows: {}, wall time {:?})\n", r.rows.len(), r.elapsed);
}

/// (c–d) Slice-count sweep: idle vs materialization.
fn part_cd(rows: usize) {
    println!("Figure 14(c-d): slices vs idle/materialization, one page of {rows} rows\n");
    let ts: Vec<i64> = (0..rows as i64).collect();
    let vals: Vec<i64> = (0..rows as i64).map(|i| 1000 + (i % 313) - 150).collect();
    // One giant page so slicing is forced.
    let db = custom_store(&ts, &vals, Encoding::Ts2Diff, rows);
    let plan = Plan::scan("a").aggregate(AggFunc::Sum);
    let sboost = etsqp_sboost::SboostEngine::from_store(db.store(), "a").unwrap();

    println!(
        "{:<8} {:>14} {:>12} {:>14} {:>14} {:>14}",
        "slices", "etsqp[ms]", "idle[ms]", "mat[KB]", "sboost[ms]", "sync[ms]"
    );
    for threads in [1usize, 2, 4, 8, 16, 32] {
        let cfg = PipelineConfig {
            threads,
            allow_slicing: true,
            prune: false,
            ..Default::default()
        };
        let mut idle_ns = 0u64;
        let mut mat = 0u64;
        let d_etsqp = time_median(3, || {
            let r = db.execute_with(&plan, &cfg).unwrap();
            idle_ns = r.stats.idle_ns;
            mat = r.stats.materialized_bytes;
            r.rows.len()
        });
        let stats_before = sboost
            .stats()
            .sync_wait_ns
            .load(std::sync::atomic::Ordering::Relaxed);
        let d_sboost = time_median(3, || {
            sboost
                .sum_in_time_range(i64::MIN, i64::MAX, threads)
                .unwrap()
                .1
        });
        let sync_ns = sboost
            .stats()
            .sync_wait_ns
            .load(std::sync::atomic::Ordering::Relaxed)
            - stats_before;
        println!(
            "{threads:<8} {:>14.2} {:>12.3} {:>14.1} {:>14.2} {:>14.3}",
            d_etsqp.as_secs_f64() * 1e3,
            idle_ns as f64 / 1e6,
            mat as f64 / 1e3,
            d_sboost.as_secs_f64() * 1e3,
            sync_ns as f64 / 1e6 / 4.0, // 3 timed runs + warmup
        );
    }
    println!("\n(ETSQP slice jobs are symbolic — no waiting, no materialized vectors;");
    println!(" SBoost threads block on the predecessor slice's prefix value.)");
}
