//! Figure 12 — operator micro-benchmarks isolating each algorithmic
//! decision:
//!
//! * (a–b) **Delta-only** encoding vs thread count — ETSQP's scheduler vs
//!   SBoost's slice synchronization on the same data representation.
//! * (c–d) **Delta–Repeat** vs run length — fusion counts/aggregates
//!   `(Δ, run)` pairs directly; SBoost must flatten, so the gap grows
//!   with the run length.
//! * (e–f) **Delta–Repeat–Packing** vs packing width — ETSQP-prune's
//!   Proposition 5 bounds tighten as the width shrinks, cutting decode
//!   work; ETSQP and SBoost decode everything.
//!
//! ```sh
//! cargo run --release -p etsqp-bench --bin fig12
//! ```

use std::time::Instant;

use etsqp_bench::{custom_store, default_rows, fmt_mtps, throughput, time_median};
use etsqp_core::decode::DecodeOptions;
use etsqp_core::expr::{AggFunc, Plan, Predicate};
use etsqp_core::fused;
use etsqp_core::plan::PipelineConfig;
use etsqp_encoding::{delta_rle, ts2diff, Encoding};

fn main() {
    let rows = default_rows();
    part_ab(rows);
    part_cd(rows);
    part_ef(rows);
}

/// (a–b) Delta-only: time-range query (selectivity 0.5) vs threads.
fn part_ab(rows: usize) {
    println!("Figure 12(a-b): Delta-only encoding, time-range query, {rows} rows\n");
    let ts: Vec<i64> = (0..rows as i64).map(|i| i * 1000).collect();
    let vals: Vec<i64> = (0..rows as i64).map(|i| 500 + (i % 97) - 48).collect();
    let db = custom_store(&ts, &vals, Encoding::Ts2Diff, 1024);
    let (lo, hi) = (ts[rows / 4], ts[3 * rows / 4]);
    let plan = Plan::scan("a")
        .filter(Predicate::time(lo, hi))
        .aggregate(AggFunc::Sum);
    let sboost = etsqp_sboost::SboostEngine::from_store(db.store(), "a").unwrap();
    let fl = etsqp_fastlanes::FlSeries::encode(&ts, &vals);

    print!("{:<14}", "system\\threads");
    let threads = [1usize, 2, 4, 8, 16];
    for t in threads {
        print!("{t:>9}");
    }
    println!();
    for name in ["ETSQP", "SBoost", "FastLanes"] {
        print!("{name:<14}");
        for t in threads {
            let d = match name {
                "ETSQP" => time_median(3, || {
                    let cfg = PipelineConfig {
                        threads: t,
                        prune: false,
                        ..Default::default()
                    };
                    db.execute_with(&plan, &cfg).unwrap().rows.len()
                }),
                "SBoost" => time_median(3, || {
                    sboost.sum_in_time_range(lo, hi, t).unwrap().1 as usize
                }),
                _ => time_median(3, || fl.sum_in_range(lo, hi, t).unwrap().1 as usize),
            };
            print!("{}", fmt_mtps(throughput(rows as u64, d)));
        }
        println!();
    }
    println!();
}

/// (c–d) Delta-Repeat: aggregation throughput vs run length.
fn part_cd(rows: usize) {
    println!("Figure 12(c-d): Delta-Repeat, aggregation vs run length, {rows} rows\n");
    print!("{:<22}", "system\\run-length");
    let run_lengths = [1usize, 4, 16, 64, 256];
    for r in run_lengths {
        print!("{r:>9}");
    }
    println!();
    let mut fused_row = String::new();
    let mut decode_row = String::new();
    for r in run_lengths {
        // Values whose deltas repeat `r` times.
        let mut vals = Vec::with_capacity(rows);
        let mut v = 0i64;
        let mut delta = 1i64;
        for i in 0..rows {
            if i % r == 0 {
                delta = ((i / r) % 7) as i64 - 3;
            }
            v += delta;
            vals.push(v);
        }
        let bytes = delta_rle::encode(&vals);
        let page = delta_rle::parse(&bytes).unwrap();
        // ETSQP: closed-form aggregation over (Δ, run) pairs.
        let d_fused = time_median(5, || fused::aggregate_delta_rle(&page).unwrap().count);
        // SBoost-style: flatten everything, then aggregate.
        let d_decode = time_median(5, || {
            let decoded = delta_rle::decode(&bytes).unwrap();
            etsqp_simd::agg::sum_i64(&decoded)
        });
        fused_row += &fmt_mtps(throughput(rows as u64, d_fused));
        decode_row += &fmt_mtps(throughput(rows as u64, d_decode));
    }
    println!("{:<22}{fused_row}", "ETSQP (fused)");
    println!("{:<22}{decode_row}", "SBoost (flatten)");
    println!("\n(larger runs → more decoding saved by fusion; SBoost flattens every tuple)\n");
}

/// (e–f) Delta-Repeat-Packing: pruning effectiveness vs packing width —
/// the data stays unvaried while the *stored* width grows (the paper's
/// "packing widths grow, meanwhile data points stay unvaried").
fn part_ef(rows: usize) {
    println!("Figure 12(e-f): pruning vs Bitpacking width (data unvaried), {rows} rows\n");
    // A descending walk (deltas in [−8, 0], needed width 4 bits). The
    // filter matches the starting band; once the walk leaves it, rule (1)
    // of Proposition 5 can stop the scan as soon as
    // D_M·remaining < (c1 − v_k) — earlier for tighter (narrower) D_M.
    let mut vals = Vec::with_capacity(rows);
    let mut v = 0i64;
    let mut state = 0x12345678u64;
    for _ in 0..rows {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        v -= (state >> 33) as i64 % 9; // delta ∈ [−8, 0]
        vals.push(v);
    }
    let ts: Vec<i64> = (0..rows as i64).collect();
    let c1 = vals[rows / 100]; // leave the band after ~1% of the scan
    let plan = Plan::scan("a")
        .filter(Predicate::value(c1, i64::MAX))
        .aggregate(AggFunc::Count);

    print!("{:<22}", "system\\width");
    let widths = [4u8, 6, 8, 10, 12];
    for w in widths {
        print!("{w:>9}");
    }
    println!();
    let mut rows_out = [String::new(), String::new()];
    for w in widths {
        // One page; deltas re-packed at the forced width.
        let val_bytes = ts2diff::encode_with_width(&vals, 1, w);
        let parsed = ts2diff::parse(&val_bytes).unwrap();
        assert_eq!(parsed.width, w, "forced width");
        let ts_bytes = Encoding::Ts2Diff.encode_i64(&ts);
        let page = etsqp_storage::page::Page::new(
            etsqp_storage::page::PageHeader {
                count: rows as u32,
                first_ts: ts[0],
                last_ts: *ts.last().unwrap(),
                min_value: *vals.iter().min().unwrap(),
                max_value: *vals.iter().max().unwrap(),
                ts_encoding: Encoding::Ts2Diff,
                val_encoding: Encoding::Ts2Diff,
            },
            ts_bytes.into(),
            val_bytes.into(),
        );
        let store = etsqp_storage::store::SeriesStore::new(rows);
        store.insert_pages("a", vec![page]);
        let db = etsqp_core::engine::IotDb::with_store(
            store,
            etsqp_core::engine::EngineOptions::default(),
        );
        for (row, prune) in rows_out.iter_mut().zip([true, false]) {
            let cfg = PipelineConfig {
                threads: 1,
                prune,
                allow_slicing: false,
                ..Default::default()
            };
            let d = time_median(5, || {
                let r = db.execute_with(&plan, &cfg).unwrap();
                r.stats.tuples_total()
            });
            *row += &fmt_mtps(throughput(rows as u64, d));
        }
    }
    println!("{:<22}{}", "ETSQP-prune", rows_out[0]);
    println!("{:<22}{}", "ETSQP", rows_out[1]);
    println!("\n(narrower stored widths → tighter D_M = base + 2^ω − 1 → earlier");
    println!(" Proposition-5 cutoffs; wider packing also inflates unpack I/O)");
    let _ = Instant::now();
    let _ = DecodeOptions::default();
}
