//! Live-ingestion throughput: sharded hot-chunk store under concurrent
//! writers AND queriers (ISSUE 6 tentpole measurement).
//!
//! Eight writer threads append into eight series while eight query
//! threads run aggregates over the same series the whole time, so every
//! query spans sealed pages plus the hot chunk. Reported as appended
//! points/second (and queries/second on the side) per shard count, plus
//! the sharded-vs-single-lock speedup — the contended regime the old
//! global `BTreeMap` lock serialized.
//!
//! JSON on stdout (redirected to `BENCH_ingest.json` by
//! `scripts/bench.sh`); human-readable lines on stderr. Scale control:
//! `ETSQP_BENCH_INGEST_POINTS` (default 200000) sets points per writer.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use etsqp_core::expr::{AggFunc, Plan};
use etsqp_core::plan::{execute, PipelineConfig};
use etsqp_encoding::Encoding;
use etsqp_storage::store::{SeriesStore, StoreOptions};

const WRITERS: usize = 8;
const QUERY_THREADS: usize = 8;
const PAGE_POINTS: usize = 256;
const SHARD_COUNTS: [usize; 3] = [1, 8, 64];
/// Writers and queriers oversubscribe the cores, so single runs are
/// noisy; each cell reports its best-of-N repetitions.
const REPS: usize = 3;

/// One contended cell: writers race queriers on the same series set.
/// Returns (points/sec over the write phase, queries completed).
fn run_cell(shards: usize, points: i64) -> (f64, u64) {
    let store = SeriesStore::with_options(StoreOptions {
        page_points: PAGE_POINTS,
        shards,
        seal_interval: None,
    });
    for w in 0..WRITERS {
        store.create_series(&format!("s{w}"), Encoding::Ts2Diff, Encoding::Ts2Diff);
    }
    let done = Arc::new(AtomicBool::new(false));
    let queries = Arc::new(AtomicU64::new(0));
    let queriers: Vec<_> = (0..QUERY_THREADS)
        .map(|q| {
            let store = store.clone();
            let done = Arc::clone(&done);
            let queries = Arc::clone(&queries);
            std::thread::spawn(move || {
                let cfg = PipelineConfig {
                    threads: 1,
                    ..Default::default()
                };
                let mut k = q;
                while !done.load(Ordering::Relaxed) {
                    let series = format!("s{}", k % WRITERS);
                    let func = match k % 3 {
                        0 => AggFunc::Sum,
                        1 => AggFunc::Count,
                        _ => AggFunc::Max,
                    };
                    execute(&Plan::scan(&series).aggregate(func), &store, &cfg).unwrap();
                    queries.fetch_add(1, Ordering::Relaxed);
                    k += 1;
                }
            })
        })
        .collect();

    let start = Instant::now();
    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let store = store.clone();
            std::thread::spawn(move || {
                let name = format!("s{w}");
                for i in 0..points {
                    store.append(&name, i, (i * 7 + w as i64) % 1000).unwrap();
                }
            })
        })
        .collect();
    for t in writers {
        t.join().unwrap();
    }
    let secs = start.elapsed().as_secs_f64();
    done.store(true, Ordering::Relaxed);
    for t in queriers {
        t.join().unwrap();
    }
    let total_points = (WRITERS as i64 * points) as f64;
    (total_points / secs, queries.load(Ordering::Relaxed))
}

fn main() {
    let points: i64 = std::env::var("ETSQP_BENCH_INGEST_POINTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200_000);

    // Warm-up outside the timed cells (thread spawn paths, allocator).
    run_cell(8, (points / 20).max(1_000));

    let mut cells = Vec::new();
    let mut qps_at = [0.0f64; SHARD_COUNTS.len()];
    for (i, &shards) in SHARD_COUNTS.iter().enumerate() {
        let (mut pps, mut queries) = (0.0f64, 0u64);
        for _ in 0..REPS {
            let (p, q) = run_cell(shards, points);
            if p > pps {
                (pps, queries) = (p, q);
            }
        }
        qps_at[i] = pps;
        eprintln!(
            "shards={shards}: {:.0} points/s ingested, {queries} live queries served (best of {REPS})",
            pps
        );
        cells.push(format!(
            concat!(
                "    {{\"shards\": {}, \"points_per_sec\": {:.0}, ",
                "\"live_queries\": {}}}"
            ),
            shards, pps, queries
        ));
    }
    let speedup = qps_at[SHARD_COUNTS.len() - 1] / qps_at[0];

    println!("{{");
    println!("  \"bench\": \"live_ingest_sharded_store\",");
    println!("  \"writers\": {WRITERS},");
    println!("  \"query_threads\": {QUERY_THREADS},");
    println!("  \"points_per_writer\": {points},");
    println!("  \"page_points\": {PAGE_POINTS},");
    println!("  \"cells\": [");
    println!("{}", cells.join(",\n"));
    println!("  ],");
    println!("  \"sharded_vs_single_lock_speedup\": {speedup:.3}");
    println!("}}");
}
