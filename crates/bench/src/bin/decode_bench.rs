//! Decode throughput per codec × SIMD backend (ISSUE 7 measurement).
//!
//! Reports decoded ints/sec for every integer codec through the
//! vectorized column path (`etsqp_core::decode::decode_column`), the
//! float codecs through their serial reference decoders, the raw Stream
//! VByte quad-decode kernel on u32 data, and the FastLanes / SBoost
//! comparator baselines. Output is JSON on stdout (redirected to
//! `BENCH_decode.json` by `scripts/bench.sh`).
//!
//! Columns are encoded as [`PAGE_VALUES`]-value pages, the unit the
//! storage layer hands to the decoders. This matters for correctness of
//! the measurement, not just realism: the delta fast paths gate on
//! per-page prefix-sum magnitude bounds (`rel_bound`, width × count), so
//! one monolithic multi-megabyte "page" would push every codec onto its
//! serial fallback and flatten the backend comparison.
//!
//! The kernel backend is a process-wide `OnceLock`, so one process
//! cannot measure two backends: the parent re-execs itself once per
//! backend with `ETSQP_FORCE_BACKEND` pinned and
//! `ETSQP_DECODE_BENCH_CHILD=1`, then merges the children's rows. The
//! child echoes the backend it actually resolved, and the parent asserts
//! it matches the one requested — and that decoded checksums agree
//! bit-for-bit across backends.
//!
//! Scale control: `ETSQP_BENCH_DECODE_INTS` (default 262144) sets the
//! column length.

use std::process::Command;
use std::time::Instant;

use etsqp_core::decode::{decode_column, DecodeOptions};
use etsqp_encoding::Encoding;

const CHILD_ENV: &str = "ETSQP_DECODE_BENCH_CHILD";

/// Values per encoded page (a generous but realistic page size).
const PAGE_VALUES: usize = 4096;

const INT_CODECS: [Encoding; 9] = [
    Encoding::Plain,
    Encoding::Ts2Diff,
    Encoding::Ts2DiffOrder2,
    Encoding::Rle,
    Encoding::DeltaRle,
    Encoding::Sprintz,
    Encoding::Rlbe,
    Encoding::Gorilla,
    Encoding::StreamVByte,
];

const FLOAT_CODECS: [Encoding; 3] = [Encoding::Chimp, Encoding::Elf, Encoding::GorillaFloat];

fn n_values() -> usize {
    std::env::var("ETSQP_BENCH_DECODE_INTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256 * 1024)
}

/// Delta-friendly IoT-style integer series with periodic spikes so
/// Stream VByte sees a mix of 1/2/3-byte codes.
fn int_values(n: usize) -> Vec<i64> {
    (0..n)
        .map(|i| {
            let spike = if i % 97 == 0 { 75_000 } else { 0 };
            900 + ((i as i64 * 13) % 512) - ((i as i64 % 7) * 40) + spike
        })
        .collect()
}

fn float_values(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| 20.0 + ((i % 100) as f64) * 0.25 + ((i % 13) as f64) * 0.01)
        .collect()
}

/// Calibrates then times `f`, returning (iters, seconds-per-iter).
fn time_loop<F: FnMut()>(mut f: F) -> (u32, f64) {
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().as_secs_f64();
    let iters = ((0.2 / once.max(1e-9)).ceil() as u32).clamp(3, 20_000);
    let t = Instant::now();
    for _ in 0..iters {
        f();
    }
    (iters, t.elapsed().as_secs_f64() / f64::from(iters))
}

struct Row {
    backend: String,
    codec: String,
    encoded_bytes: usize,
    iters: u32,
    ints_per_sec: f64,
    checksum: i64,
}

impl Row {
    fn tsv(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}\t{:.0}\t{}",
            self.backend,
            self.codec,
            self.encoded_bytes,
            self.iters,
            self.ints_per_sec,
            self.checksum
        )
    }

    fn from_tsv(line: &str) -> Row {
        let f: Vec<&str> = line.split('\t').collect();
        assert_eq!(f.len(), 6, "malformed child row: {line:?}");
        Row {
            backend: f[0].to_string(),
            codec: f[1].to_string(),
            encoded_bytes: f[2].parse().unwrap(),
            iters: f[3].parse().unwrap(),
            ints_per_sec: f[4].parse().unwrap(),
            checksum: f[5].parse().unwrap(),
        }
    }
}

fn checksum_i64(values: &[i64]) -> i64 {
    values.iter().fold(0i64, |acc, &v| acc.wrapping_add(v))
}

/// Child mode: measure every codec on the process's pinned backend and
/// print one TSV row per codec to stdout.
fn run_child() {
    let backend = etsqp_simd::backend().to_string();
    let n = n_values();
    let ints = int_values(n);
    let floats = float_values(n);
    let opts = DecodeOptions::default();
    let mut rows = Vec::new();

    for enc in INT_CODECS {
        eprintln!("decode_bench[{backend}]: {}", enc.name());
        let pages: Vec<Vec<u8>> = ints
            .chunks(PAGE_VALUES)
            .map(|c| enc.encode_i64(c))
            .collect();
        let encoded: usize = pages.iter().map(Vec::len).sum();
        let mut out = Vec::new();
        let mut full = Vec::with_capacity(n);
        let (iters, secs) = time_loop(|| {
            full.clear();
            for page in &pages {
                decode_column(enc, page, &opts, &mut out).unwrap();
                full.extend_from_slice(&out);
            }
            std::hint::black_box(&full);
        });
        assert_eq!(full, ints, "{} decode mismatch", enc.name());
        rows.push(Row {
            backend: backend.clone(),
            codec: enc.name().to_string(),
            encoded_bytes: encoded,
            iters,
            ints_per_sec: n as f64 / secs,
            checksum: checksum_i64(&full),
        });
    }

    for enc in FLOAT_CODECS {
        eprintln!("decode_bench[{backend}]: {}", enc.name());
        let pages: Vec<Vec<u8>> = floats
            .chunks(PAGE_VALUES)
            .map(|c| enc.encode_f64(c))
            .collect();
        let encoded: usize = pages.iter().map(Vec::len).sum();
        let mut checksum = 0i64;
        let (iters, secs) = time_loop(|| {
            checksum = 0;
            for page in &pages {
                let out = enc.decode_f64(page).unwrap();
                for v in &out {
                    checksum = checksum.wrapping_add(v.to_bits() as i64);
                }
                std::hint::black_box(&out);
            }
        });
        rows.push(Row {
            backend: backend.clone(),
            codec: enc.name().to_string(),
            encoded_bytes: encoded,
            iters,
            ints_per_sec: n as f64 / secs,
            checksum,
        });
    }

    // Raw Stream VByte quad-decode kernel on u32 data — the acceptance
    // measurement for the shuffle-table path vs its scalar twin.
    {
        eprintln!("decode_bench[{backend}]: svb_kernel_u32");
        let vals: Vec<u32> = (0..n as u32)
            .map(|i| i.wrapping_mul(0x9E37_79B9) >> (i % 29))
            .collect();
        let mut controls = vec![0u8; n.div_ceil(4)];
        let mut data = Vec::with_capacity(n * 2);
        for (k, &v) in vals.iter().enumerate() {
            let len = (4 - v.leading_zeros() as usize / 8).max(1);
            data.extend_from_slice(&v.to_le_bytes()[..len]);
            controls[k / 4] |= ((len - 1) as u8) << (2 * (k % 4));
        }
        let mut out = vec![0u32; n];
        let (iters, secs) = time_loop(|| {
            etsqp_simd::svb::decode_quads(&controls, &data, n, &mut out);
            std::hint::black_box(&out);
        });
        assert_eq!(out, vals, "svb kernel decode mismatch");
        let checksum = out
            .iter()
            .fold(0i64, |acc, &v| acc.wrapping_add(i64::from(v)));
        rows.push(Row {
            backend: backend.clone(),
            codec: "svb_kernel_u32".to_string(),
            encoded_bytes: controls.len() + data.len(),
            iters,
            ints_per_sec: n as f64 / secs,
            checksum,
        });
    }

    // FastLanes baseline: 1024-value transposed blocks.
    {
        eprintln!("decode_bench[{backend}]: fastlanes_flmm1024");
        let blocks: Vec<Vec<u8>> = ints
            .chunks(etsqp_fastlanes::BLOCK)
            .map(|c| etsqp_fastlanes::encode_block(c).bytes.to_vec())
            .collect();
        let encoded: usize = blocks.iter().map(Vec::len).sum();
        let mut out = Vec::new();
        // decode_block appends, so the whole column lands in one vec.
        let (iters, secs) = time_loop(|| {
            out.clear();
            for b in &blocks {
                etsqp_fastlanes::decode_block(b, &mut out).unwrap();
            }
            std::hint::black_box(&out);
        });
        assert_eq!(out, ints, "fastlanes decode mismatch");
        let checksum = checksum_i64(&out);
        rows.push(Row {
            backend: backend.clone(),
            codec: "fastlanes_flmm1024".to_string(),
            encoded_bytes: encoded,
            iters,
            ints_per_sec: n as f64 / secs,
            checksum,
        });
    }

    // SBoost baseline: straight-scan decode of a TS2DIFF page.
    {
        eprintln!("decode_bench[{backend}]: sboost_ts2diff");
        let pages: Vec<Vec<u8>> = ints
            .chunks(PAGE_VALUES)
            .map(|c| Encoding::Ts2Diff.encode_i64(c))
            .collect();
        let encoded: usize = pages.iter().map(Vec::len).sum();
        let mut out = Vec::new();
        let mut full = Vec::with_capacity(n);
        let (iters, secs) = time_loop(|| {
            full.clear();
            for page in &pages {
                etsqp_sboost::decode_page_values(page, &mut out).unwrap();
                full.extend_from_slice(&out);
            }
            std::hint::black_box(&full);
        });
        assert_eq!(full, ints, "sboost decode mismatch");
        rows.push(Row {
            backend: backend.clone(),
            codec: "sboost_ts2diff".to_string(),
            encoded_bytes: encoded,
            iters,
            ints_per_sec: n as f64 / secs,
            checksum: checksum_i64(&full),
        });
    }

    for row in &rows {
        println!("{}", row.tsv());
    }
}

/// Backends this machine can run, with the env pinning each one.
fn backend_plan() -> Vec<(&'static str, Option<&'static str>)> {
    let mut plan = vec![("scalar", Some("scalar"))];
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            plan.push(("avx2", None)); // the default pick on AVX2 hardware
        }
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512bw")
        {
            plan.push(("avx512", Some("avx512")));
        }
    }
    plan
}

fn spawn_child(force: Option<&str>) -> Vec<Row> {
    let exe = std::env::current_exe().unwrap();
    let mut cmd = Command::new(exe);
    cmd.env(CHILD_ENV, "1").env_remove("ETSQP_FORCE_SCALAR");
    match force {
        Some(v) => cmd.env("ETSQP_FORCE_BACKEND", v),
        None => cmd.env_remove("ETSQP_FORCE_BACKEND"),
    };
    let output = cmd.output().expect("spawn decode_bench child");
    assert!(
        output.status.success(),
        "decode_bench child failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout)
        .unwrap()
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(Row::from_tsv)
        .collect()
}

fn rate(rows: &[Row], backend: &str, codec: &str) -> Option<f64> {
    rows.iter()
        .find(|r| r.backend == backend && r.codec == codec)
        .map(|r| r.ints_per_sec)
}

fn main() {
    if std::env::var_os(CHILD_ENV).is_some() {
        run_child();
        return;
    }

    let n = n_values();
    let plan = backend_plan();
    let mut all_rows: Vec<Row> = Vec::new();
    let mut backends = Vec::new();
    for (label, force) in &plan {
        eprintln!("decode_bench: measuring backend {label}");
        let rows = spawn_child(*force);
        for row in &rows {
            assert_eq!(
                row.backend, *label,
                "child resolved backend {} but {label} was requested",
                row.backend
            );
        }
        backends.push((*label).to_string());
        all_rows.extend(rows);
    }

    // Backends must agree bit-for-bit on every decoded column.
    let codecs: Vec<String> = all_rows
        .iter()
        .filter(|r| r.backend == backends[0])
        .map(|r| r.codec.clone())
        .collect();
    for codec in &codecs {
        let sums: Vec<i64> = all_rows
            .iter()
            .filter(|r| r.codec == *codec)
            .map(|r| r.checksum)
            .collect();
        assert!(
            sums.windows(2).all(|w| w[0] == w[1]),
            "{codec}: checksum differs across backends: {sums:?}"
        );
    }

    let kernel_speedup = match (
        rate(&all_rows, "avx2", "svb_kernel_u32"),
        rate(&all_rows, "scalar", "svb_kernel_u32"),
    ) {
        (Some(simd), Some(scalar)) if scalar > 0.0 => Some(simd / scalar),
        _ => None,
    };
    let column_speedup = match (
        rate(&all_rows, "avx2", "stream_vbyte"),
        rate(&all_rows, "scalar", "stream_vbyte"),
    ) {
        (Some(simd), Some(scalar)) if scalar > 0.0 => Some(simd / scalar),
        _ => None,
    };

    println!("{{");
    println!("  \"bench\": \"decode\",");
    println!("  \"values\": {n},");
    println!(
        "  \"backends\": [{}],",
        backends
            .iter()
            .map(|b| format!("\"{b}\""))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("  \"rows\": [");
    for (i, row) in all_rows.iter().enumerate() {
        let comma = if i + 1 == all_rows.len() { "" } else { "," };
        println!(
            "    {{\"backend\": \"{}\", \"codec\": \"{}\", \"encoded_bytes\": {}, \"iters\": {}, \"ints_per_sec\": {:.0}}}{comma}",
            row.backend, row.codec, row.encoded_bytes, row.iters, row.ints_per_sec
        );
    }
    println!("  ],");
    match kernel_speedup {
        Some(s) => println!("  \"svb_kernel_speedup_avx2_vs_scalar\": {s:.2},"),
        None => println!("  \"svb_kernel_speedup_avx2_vs_scalar\": null,"),
    }
    match column_speedup {
        Some(s) => println!("  \"svb_column_speedup_avx2_vs_scalar\": {s:.2}"),
        None => println!("  \"svb_column_speedup_avx2_vs_scalar\": null"),
    }
    println!("}}");

    for (label, _) in &plan {
        if let Some(r) = rate(&all_rows, label, "stream_vbyte") {
            eprintln!(
                "decode_bench: stream_vbyte {label}: {:.1} M ints/s",
                r / 1e6
            );
        }
    }
    if let Some(s) = kernel_speedup {
        eprintln!("decode_bench: svb kernel avx2 speedup over scalar: {s:.2}x");
    }
}
