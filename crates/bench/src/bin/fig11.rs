//! Figure 11 — query performance over varied thread counts: ETSQP's
//! page-preferring scheduler vs SBoost's slice synchronization vs
//! FastLanes' block-parallel decode, on the Time and Sine datasets (Q1).
//!
//! ```sh
//! cargo run --release -p etsqp-bench --bin fig11
//! ```

use etsqp_bench::{
    build_workload, default_rows, fmt_mtps, run_query, throughput, time_median, Query, System,
};
use etsqp_datasets::Spec;

fn main() {
    let rows = default_rows();
    let thread_counts = [1usize, 2, 4, 8, 16];
    println!("Figure 11: Q1 throughput [M tuples/s] vs thread count, {rows} rows\n");
    for spec in [Spec::Timestamp, Spec::Sine] {
        let w = build_workload(spec, rows);
        println!("--- dataset {} ---", w.label);
        print!("{:<14}", "system\\threads");
        for t in thread_counts {
            print!("{t:>9}");
        }
        println!();
        for system in [
            System::EtsqpPrune,
            System::Etsqp,
            System::SBoost,
            System::FastLanes,
        ] {
            print!("{:<14}", system.name());
            for t in thread_counts {
                let d = time_median(3, || run_query(system, Query::Q1, &w, t));
                print!("{}", fmt_mtps(throughput(w.tuples(Query::Q1), d)));
            }
            println!();
        }
        println!();
    }
    println!("(single-vCPU hosts show flat wall-clock scaling; the scheduler-level");
    println!(" contrast — ETSQP idle-free page jobs vs SBoost slice waits — is");
    println!(" reported by fig14's idle/sync counters.)");
}
