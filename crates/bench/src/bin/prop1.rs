//! Proposition 1 / Theorem 2 — cost-model validation: the modelled
//! per-value decode time for each `n_v` next to the measured decode
//! throughput, plus the Theorem 2 speedup estimate next to the measured
//! serial/vectorized ratio.
//!
//! ```sh
//! cargo run --release -p etsqp-bench --bin prop1
//! ```

use etsqp_bench::{default_rows, time_median};
use etsqp_core::cost::{
    avg_time_per_value, choose_nv, optimal_nv_real, theorem2_speedup, CostConstants,
};
use etsqp_core::decode::{decode_ts2diff, DecodeOptions, DeltaStrategy};
use etsqp_encoding::ts2diff;

fn main() {
    let rows = default_rows();
    let c = CostConstants::default();
    println!(
        "Proposition 1: n_v cost model vs measurement ({rows} values, backend {})\n",
        etsqp_simd::backend()
    );

    for width in [4u8, 10, 25] {
        // Small real deltas (so the 32-bit relative-offset fast path stays
        // sound for the whole page) packed at the forced stored width.
        let values: Vec<i64> = (0..rows as i64)
            .scan(0i64, |acc, i| {
                *acc += (i * 2654435761) & 0x7;
                Some(*acc)
            })
            .collect();
        let bytes = ts2diff::encode_with_width(&values, 1, width);
        let page = ts2diff::parse(&bytes).unwrap();
        println!(
            "packing width {width} (stored {}): real optimum n_v* = {:.2}, chosen = {}",
            page.width,
            optimal_nv_real(width, 32, &c),
            choose_nv(width, 32, &c)
        );
        println!(
            "{:>8} {:>16} {:>18}",
            "n_v", "model[t_op/val]", "measured[Mval/s]"
        );
        let mut out = Vec::new();
        let vrange = Some((*values.iter().min().unwrap(), *values.iter().max().unwrap()));
        for nv in [1usize, 2, 4, 8] {
            let opts = DecodeOptions {
                n_v: Some(nv),
                strategy: DeltaStrategy::ChainLayout,
                value_range: vrange,
            };
            let d = time_median(5, || decode_ts2diff(&page, &opts, &mut out).unwrap());
            println!(
                "{nv:>8} {:>16.3} {:>18.1}",
                avg_time_per_value(width, 32, nv, &c),
                rows as f64 / d.as_secs_f64() / 1e6
            );
        }
        // Straight-scan ablation and the serial reference.
        let opts = DecodeOptions {
            n_v: None,
            strategy: DeltaStrategy::StraightScan,
            value_range: vrange,
        };
        let d = time_median(5, || decode_ts2diff(&page, &opts, &mut out).unwrap());
        println!(
            "{:>8} {:>16} {:>18.1}",
            "scan",
            "-",
            rows as f64 / d.as_secs_f64() / 1e6
        );
        let d = time_median(5, || ts2diff::decode(&bytes).unwrap());
        println!(
            "{:>8} {:>16} {:>18.1}\n",
            "serial",
            "-",
            rows as f64 / d.as_secs_f64() / 1e6
        );
    }

    println!("Theorem 2: estimated serial→parallel speedup (10-bit TS2DIFF):");
    for threads in [1usize, 4, 16] {
        println!(
            "  {threads:>2} threads: {:.1}x",
            theorem2_speedup(10, 32, threads, &c)
        );
    }
    println!("(paper reports ≈15.3x at 16 threads/AVX2)");
}
