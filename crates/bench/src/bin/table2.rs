//! Table II — dataset statistics: the paper's declared sizes next to the
//! generated (scaled) sizes used throughout this reproduction.
//!
//! ```sh
//! cargo run --release -p etsqp-bench --bin table2
//! ```

use etsqp_datasets::Spec;

fn main() {
    let cap: usize = std::env::var("ETSQP_BENCH_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200_000);
    println!("Table II: Dataset statistics (scaled reproduction; cap = {cap} rows)\n");
    println!(
        "{:<15} {:<6} {:>12} {:>12} {:>6}  {:<12}",
        "Name", "Label", "#Size(paper)", "#Size(here)", "#Attr", "Category"
    );
    for spec in Spec::ALL {
        let rows = spec.paper_rows().min(cap as u64) as usize;
        let d = spec.generate(rows);
        let category = match spec {
            Spec::Atmosphere | Spec::Climate | Spec::Timestamp => "IoT",
            Spec::Gas => "IoT, Open",
            Spec::Sine | Spec::Tpch => "Generated",
        };
        println!(
            "{:<15} {:<6} {:>12} {:>12} {:>6}  {:<12}",
            d.name,
            d.label,
            human(spec.paper_rows()),
            human(d.rows() as u64),
            d.attrs(),
            category
        );
    }
    println!("\n(1B-row datasets are scaled to the cap; every experiment records its scale.)");
}

fn human(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!("{}B", n / 1_000_000_000)
    } else if n >= 1_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{}K", n / 1_000)
    } else {
        n.to_string()
    }
}
