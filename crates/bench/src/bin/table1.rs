//! Table I — combined encoders for IoT data, categorized into Delta,
//! Repeat and Packing, with measured compression ratios as evidence that
//! every reimplemented codec actually exercises its semantics.
//!
//! ```sh
//! cargo run --release -p etsqp-bench --bin table1
//! ```

use etsqp_datasets::Spec;
use etsqp_encoding::{chimp, elf, gorilla, Encoding};

fn main() {
    println!("Table I: Combined encoders for IoT data (Delta / Repeat / Packing)\n");
    println!(
        "{:<12} {:<10} {:<12} {:<18} {:>12} {:>12}",
        "Method", "Delta", "Repeat", "Packing", "ratio(time)", "ratio(value)"
    );

    // Measurement substrate: the Climate dataset's clock and temperature.
    let d = Spec::Climate.generate(100_000);
    let time_col = &d.timestamps;
    let value_col = &d.columns[0].1;
    let raw = time_col.len() * 8;

    let rows: [(&str, &str, &str, &str, Option<Encoding>); 6] = [
        ("RLBE", "±", "Run-length", "Fibonacci", Some(Encoding::Rlbe)),
        (
            "TS_2DIFF",
            "±²",
            "None",
            "Bitpack",
            Some(Encoding::Ts2DiffOrder2),
        ),
        (
            "Sprintz",
            "±",
            "None",
            "ZigZag,Bitpack",
            Some(Encoding::Sprintz),
        ),
        ("Chimp", "XOR", "None", "Pattern", None),
        (
            "Gorilla",
            "±, XOR",
            "Flag",
            "Pattern",
            Some(Encoding::Gorilla),
        ),
        ("Elf", "XOR", "None", "Pattern", None),
    ];

    // Float view of the value column for the XOR codecs (2 decimals).
    let float_vals: Vec<f64> = value_col.iter().map(|&v| v as f64 / 100.0).collect();
    let float_raw = float_vals.len() * 8;

    for (method, delta, repeat, packing, enc) in rows {
        let (rt, rv) = match (method, enc) {
            (_, Some(enc)) => {
                let t = enc.encode_i64(time_col);
                assert_eq!(enc.decode_i64(&t).unwrap(), *time_col, "{method} time");
                let v = enc.encode_i64(value_col);
                assert_eq!(enc.decode_i64(&v).unwrap(), *value_col, "{method} value");
                (raw as f64 / t.len() as f64, raw as f64 / v.len() as f64)
            }
            ("Chimp", None) => {
                let v = chimp::encode(&float_vals);
                assert_eq!(chimp::decode(&v).unwrap().len(), float_vals.len());
                (f64::NAN, float_raw as f64 / v.len() as f64)
            }
            ("Elf", None) => {
                let v = elf::encode(&float_vals);
                assert_eq!(elf::decode(&v).unwrap().len(), float_vals.len());
                (f64::NAN, float_raw as f64 / v.len() as f64)
            }
            _ => unreachable!(),
        };
        let fmt = |x: f64| {
            if x.is_nan() {
                "    (float)".to_string()
            } else {
                format!("{x:>10.1}x")
            }
        };
        println!(
            "{method:<12} {delta:<10} {repeat:<12} {packing:<18} {} {}",
            fmt(rt),
            fmt(rv)
        );
    }

    // Gorilla float side for completeness.
    let g = gorilla::encode_f64(&float_vals);
    println!(
        "\n(gorilla float value path: {:.1}x on the same column)",
        float_raw as f64 / g.len() as f64
    );
    println!("\nAll codecs verified lossless on this input.");
}
