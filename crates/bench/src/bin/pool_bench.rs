//! Short-query throughput: persistent work-stealing pool vs the
//! spawn-per-query baseline (ISSUE 2 tentpole measurement).
//!
//! Runs a batch of short selective aggregations (the high-QPS regime of
//! the ROADMAP north star) at 1/2/4/8 configured threads under both
//! schedulers and reports queries/second as JSON on stdout (redirected
//! to `BENCH_pool.json` by `scripts/bench.sh`).
//!
//! Scale control: `ETSQP_BENCH_QUERIES` (default 1000) sets the batch
//! size per (threads, scheduler) cell.

use std::time::Instant;

use etsqp_core::engine::{EngineOptions, IotDb};
use etsqp_core::exec::Scheduler;
use etsqp_core::expr::{AggFunc, Plan, Predicate};
use etsqp_core::plan::{execute, PipelineConfig, Value};

const PAGE_POINTS: usize = 256;
const PAGES: usize = 64;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn build_db() -> IotDb {
    let opts = EngineOptions::default().with_page_points(PAGE_POINTS);
    let db = IotDb::new(opts);
    db.create_series("sensor").unwrap();
    let rows = (PAGE_POINTS * PAGES) as i64;
    for i in 0..rows {
        db.append("sensor", i * 1000, 60 + (i % 25) - (i % 7))
            .unwrap();
    }
    db.flush().unwrap();
    db
}

/// One short selective query, rotated over `k` so page pruning and the
/// aggregated window vary across the batch like independent clients.
fn query_plan(k: usize, rows: i64) -> Plan {
    let span = rows * 1000;
    let lo = (k as i64 * 37_000) % (span / 2);
    let hi = lo + span / 4;
    let func = match k % 4 {
        0 => AggFunc::Sum,
        1 => AggFunc::Count,
        2 => AggFunc::Min,
        _ => AggFunc::Max,
    };
    Plan::scan("sensor")
        .filter(Predicate::time(lo, hi))
        .aggregate(func)
}

/// Folds a result table into a checksum so the two schedulers can be
/// asserted to compute identical answers.
fn checksum(rows: &[Vec<Value>]) -> i64 {
    let mut acc = 0i64;
    for row in rows {
        for v in row {
            let x = match v {
                Value::Int(i) => *i,
                Value::Float(f) => f.to_bits() as i64,
                Value::Null => -1,
            };
            acc = acc.wrapping_mul(31).wrapping_add(x);
        }
    }
    acc
}

/// Runs the batch under one (threads, scheduler) cell; returns
/// (queries/sec, checksum over all results).
fn run_cell(db: &IotDb, threads: usize, scheduler: Scheduler, queries: usize) -> (f64, i64) {
    let cfg = PipelineConfig {
        threads,
        scheduler,
        ..db.options().pipeline
    };
    let rows = (PAGE_POINTS * PAGES) as i64;
    let mut acc = 0i64;
    let start = Instant::now();
    for k in 0..queries {
        let result = execute(&query_plan(k, rows), db.store(), &cfg).unwrap();
        acc = acc.wrapping_mul(7).wrapping_add(checksum(&result.rows));
    }
    let secs = start.elapsed().as_secs_f64();
    (queries as f64 / secs, acc)
}

fn main() {
    let queries: usize = std::env::var("ETSQP_BENCH_QUERIES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000);
    let db = build_db();

    // Warm both paths (pool spawn, page cache) outside the timed region.
    run_cell(&db, 8, Scheduler::Pool, 16.min(queries));
    run_cell(&db, 8, Scheduler::SpawnPerQuery, 16.min(queries));

    let mut cells = Vec::new();
    let mut speedup_at_8 = 0.0;
    for &threads in &THREAD_COUNTS {
        let (spawn_qps, spawn_sum) = run_cell(&db, threads, Scheduler::SpawnPerQuery, queries);
        let (pool_qps, pool_sum) = run_cell(&db, threads, Scheduler::Pool, queries);
        assert_eq!(
            spawn_sum, pool_sum,
            "schedulers disagree at threads={threads}"
        );
        let speedup = pool_qps / spawn_qps;
        if threads == 8 {
            speedup_at_8 = speedup;
        }
        eprintln!(
            "threads={threads}: spawn {spawn_qps:.0} q/s, pool {pool_qps:.0} q/s, speedup {speedup:.2}x"
        );
        cells.push(format!(
            concat!(
                "    {{\"threads\": {}, \"spawn_qps\": {:.1}, ",
                "\"pool_qps\": {:.1}, \"speedup\": {:.3}}}"
            ),
            threads, spawn_qps, pool_qps, speedup
        ));
    }

    println!("{{");
    println!("  \"bench\": \"pool_vs_spawn_short_queries\",");
    println!("  \"queries_per_cell\": {queries},");
    println!("  \"pages\": {PAGES},");
    println!("  \"page_points\": {PAGE_POINTS},");
    println!("  \"pool_threads\": {},", etsqp_core::pool::pool_threads());
    println!("  \"cells\": [");
    println!("{}", cells.join(",\n"));
    println!("  ],");
    println!("  \"speedup_at_8_threads\": {speedup_at_8:.3}");
    println!("}}");
}
