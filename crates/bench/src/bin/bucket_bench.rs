//! Bucketed-aggregation benchmark (ISSUE 9 tentpole measurement):
//! fused single-bucket pages vs the straddling decode path, and the
//! per-page partial cache cold vs warm.
//!
//! Three comparisons over one sealed store:
//!
//! 1. **fused vs decode** — page-aligned sliding-window SUM (every page
//!    lands in one bucket, so the §IV closed forms run) against the
//!    same width with a misaligned origin (every page straddles and
//!    must decode);
//! 2. **P95 cold vs warm** — whole-range quantile aggregation with the
//!    partial cache cleared before every run vs primed; the warm runs
//!    skip decode + sketch construction per page;
//! 3. **bucketed SUM cold vs warm** — the aligned windowed query under
//!    the same cache regimes.
//!
//! Emits JSON on stdout (redirected to `BENCH_bucket.json` by
//! `scripts/bench.sh`). The headline `p95_warm_speedup` is the
//! acceptance number (warm ≥ 5× cold). Scale with
//! `ETSQP_BENCH_BUCKET_REPS` (repetitions per cell, default 30).

use std::time::Instant;

use etsqp_core::engine::{EngineOptions, IotDb};
use etsqp_core::expr::{AggFunc, Plan};
use etsqp_core::partial::PartialCache;
use etsqp_core::plan::{execute, Value};

const PAGE_POINTS: usize = 1024;
const PAGES: usize = 64;
const T0: i64 = 1_000;
const DT: i64 = 10;

fn build_db() -> IotDb {
    let db = IotDb::new(EngineOptions::default().with_page_points(PAGE_POINTS));
    db.create_series("sensor").unwrap();
    let rows = (PAGE_POINTS * PAGES) as i64;
    let ts: Vec<i64> = (0..rows).map(|i| T0 + i * DT).collect();
    let vals: Vec<i64> = (0..rows).map(|i| 60 + (i % 25) - (i % 7)).collect();
    db.append_all("sensor", &ts, &vals).unwrap();
    db.flush().unwrap();
    db
}

fn checksum(rows: &[Vec<Value>]) -> i64 {
    let mut acc = 0i64;
    for row in rows {
        for v in row {
            let x = match v {
                Value::Int(i) => *i,
                Value::Float(f) => f.to_bits() as i64,
                Value::Null => -1,
            };
            acc = acc.wrapping_mul(31).wrapping_add(x);
        }
    }
    acc
}

/// Times `reps` executions of `plan`; `cold` clears the partial cache
/// before every rep. Returns (seconds per query, result checksum,
/// cache hits + misses of the final rep).
fn run_cell(db: &IotDb, plan: &Plan, reps: usize, cold: bool) -> (f64, i64, u64, u64) {
    let cfg = db.options().pipeline;
    if !cold {
        // Prime outside the timed region.
        PartialCache::global().clear();
        let _ = execute(plan, db.store(), &cfg).unwrap();
    }
    let mut acc = 0i64;
    let (mut hits, mut misses) = (0u64, 0u64);
    let start = Instant::now();
    for _ in 0..reps {
        if cold {
            PartialCache::global().clear();
        }
        let r = execute(plan, db.store(), &cfg).unwrap();
        acc = acc.wrapping_mul(7).wrapping_add(checksum(&r.rows));
        hits = r.stats.cache_hits;
        misses = r.stats.cache_misses;
    }
    let secs = start.elapsed().as_secs_f64();
    (secs / reps as f64, acc, hits, misses)
}

fn main() {
    let reps: usize = std::env::var("ETSQP_BENCH_BUCKET_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30);
    let db = build_db();
    let page_span = PAGE_POINTS as i64 * DT;

    // Aligned: bucket origin on the first page boundary, width = one
    // page span — every page is a single-bucket page (fused path).
    let aligned = Plan::scan("sensor").window(T0, page_span, AggFunc::Sum);
    // Misaligned: same width, origin shifted half a page — every page
    // straddles a bucket boundary (decode path).
    let straddling = Plan::scan("sensor").window(T0 - page_span / 2, page_span, AggFunc::Sum);
    let p95 = Plan::scan("sensor").aggregate(AggFunc::P95);

    // Warm both builds outside any timed region.
    run_cell(&db, &aligned, 2, true);

    let (fused_s, _, _, _) = run_cell(&db, &aligned, reps, true);
    let (decode_s, _, _, _) = run_cell(&db, &straddling, reps, true);

    let (p95_cold_s, p95_cold_sum, _, p95_cold_miss) = run_cell(&db, &p95, reps, true);
    let (p95_warm_s, p95_warm_sum, p95_warm_hit, _) = run_cell(&db, &p95, reps, false);
    assert_eq!(p95_cold_sum, p95_warm_sum, "cache changed the P95 answer");
    assert_eq!(
        p95_cold_miss as usize, PAGES,
        "cold P95 run must miss once per page"
    );
    assert_eq!(
        p95_warm_hit as usize, PAGES,
        "warm P95 run must hit once per page"
    );

    let (sum_cold_s, sum_cold_sum, _, _) = run_cell(&db, &aligned, reps, true);
    let (sum_warm_s, sum_warm_sum, _, _) = run_cell(&db, &aligned, reps, false);
    assert_eq!(sum_cold_sum, sum_warm_sum, "cache changed the SUM answer");

    let decode_ratio = decode_s / fused_s;
    let p95_speedup = p95_cold_s / p95_warm_s;
    let sum_speedup = sum_cold_s / sum_warm_s;
    eprintln!(
        "fused {:.1}us vs decode {:.1}us ({decode_ratio:.2}x); \
         P95 cold {:.1}us vs warm {:.1}us ({p95_speedup:.2}x); \
         bucketed SUM cold {:.1}us vs warm {:.1}us ({sum_speedup:.2}x)",
        fused_s * 1e6,
        decode_s * 1e6,
        p95_cold_s * 1e6,
        p95_warm_s * 1e6,
        sum_cold_s * 1e6,
        sum_warm_s * 1e6,
    );

    println!("{{");
    println!("  \"bench\": \"bucketed_aggregation_partial_cache\",");
    println!("  \"reps_per_cell\": {reps},");
    println!("  \"pages\": {PAGES},");
    println!("  \"page_points\": {PAGE_POINTS},");
    println!("  \"fused_aligned_us\": {:.3},", fused_s * 1e6);
    println!("  \"decode_straddling_us\": {:.3},", decode_s * 1e6);
    println!("  \"decode_over_fused\": {decode_ratio:.3},");
    println!("  \"p95_cold_us\": {:.3},", p95_cold_s * 1e6);
    println!("  \"p95_warm_us\": {:.3},", p95_warm_s * 1e6);
    println!("  \"p95_warm_speedup\": {p95_speedup:.3},");
    println!("  \"bucketed_sum_cold_us\": {:.3},", sum_cold_s * 1e6);
    println!("  \"bucketed_sum_warm_us\": {:.3},", sum_warm_s * 1e6);
    println!("  \"bucketed_sum_warm_speedup\": {sum_speedup:.3}");
    println!("}}");
}
