//! Table III — the six benchmark queries, parsed by the SQL front end and
//! executed against a small workload to prove each is runnable.
//!
//! ```sh
//! cargo run --release -p etsqp-bench --bin table3
//! ```

use etsqp_bench::{build_workload, run_query, Query, System};
use etsqp_core::sql;
use etsqp_datasets::Spec;

fn main() {
    println!("Table III: Benchmark queries\n");
    let examples = [
        (Query::Q1, "SELECT SUM(A) FROM ts(T, A) SW(0, 1000);"),
        (Query::Q2, "SELECT AVG(A) FROM ts(T, A) SW(0, 1000);"),
        (
            Query::Q3,
            "SELECT SUM(A) FROM (SELECT * FROM ts WHERE A > 50);",
        ),
        (Query::Q4, "SELECT ts1.A+ts2.A FROM ts1, ts2;"),
        (Query::Q5, "SELECT * FROM ts1 UNION ts2 ORDER BY TIME;"),
        (Query::Q6, "SELECT * FROM ts1, ts2;"),
    ];
    let w = build_workload(Spec::Atmosphere, 20_000);
    for (q, sql_text) in examples {
        let plan = sql::parse(sql_text).expect("Table III query must parse");
        let checksum = run_query(System::EtsqpPrune, q, &w, 2);
        println!(
            "{}  {:<55} -> parsed {:?}",
            q.name(),
            sql_text,
            plan_kind(&plan)
        );
        println!("      checksum on Atm workload: {checksum:.1}");
    }
    println!("\nDefault filter selectivity 0.5; each sliding window instance has ~10^3 points.");
}

fn plan_kind(plan: &etsqp_core::expr::Plan) -> &'static str {
    use etsqp_core::expr::Plan::*;
    match plan {
        Scan { .. } => "Scan",
        Filter { .. } => "Filter",
        Aggregate { .. } => "Aggregate",
        WindowAggregate { .. } => "WindowAggregate",
        JoinExpr { .. } => "JoinExpr",
        Union { .. } => "Union",
        Join { .. } => "Join",
        JoinAggregate { .. } => "JoinAggregate",
    }
}
