//! Figure 10 — performance of SIMD approaches over IoT queries:
//! throughput (tuples of loaded pages per second, counting pruned tuples,
//! §VII-B) of ETSQP-prune / ETSQP / Serial / FastLanes / SBoost on
//! Q1–Q6 across the six Table II datasets, TS2DIFF-encoded.
//!
//! ```sh
//! ETSQP_BENCH_ROWS=200000 cargo run --release -p etsqp-bench --bin fig10
//! ```

use etsqp_bench::{
    all_workloads, default_rows, fmt_mtps, run_query, throughput, time_median, Query, System,
};

fn main() {
    let rows = default_rows();
    let threads = std::env::var("ETSQP_BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    println!("Figure 10: query throughput [M tuples/s], {rows} rows/dataset, {threads} threads\n");
    let workloads = all_workloads(rows);
    for q in Query::ALL {
        println!("--- {} ---", q.name());
        print!("{:<14}", "system");
        for w in &workloads {
            print!("{:>9}", w.label);
        }
        println!();
        for system in System::ALL {
            print!("{:<14}", system.name());
            for w in &workloads {
                let d = time_median(3, || run_query(system, q, w, threads));
                print!("{}", fmt_mtps(throughput(w.tuples(q), d)));
            }
            println!();
        }
        println!();
    }
    println!("(throughput counts pruned tuples per the paper's §VII-B definition)");
}
