//! Network-service load generator (ISSUE 10 tentpole measurement).
//!
//! Starts an in-process `etsqp-serve` server over a synthetic series,
//! then drives closed-loop client fleets at 1 / 64 / 1024 connections
//! (queries/second and p99 latency per fleet size), plus one overload
//! cell at 2x the admission capacity that measures the shed rate and —
//! the acceptance number — the p99 of *accepted* queries, which must
//! stay within 3x the uncontended p99: shedding, not queueing, absorbs
//! the overload.
//!
//! JSON on stdout (redirected to `BENCH_serve.json` by
//! `scripts/bench.sh`). Scale controls:
//! `ETSQP_BENCH_SERVE_QUERIES` (total queries per fleet cell, default
//! 2000) and `ETSQP_BENCH_SERVE_MAX_CLIENTS` (cap on the fleet sizes
//! tried, default 1024).

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use etsqp_core::engine::{EngineOptions, IotDb};
use etsqp_serve::client::{Client, Response};
use etsqp_serve::proto::ErrorCode;
use etsqp_serve::server::{self, ServerHandle};
use etsqp_serve::{AdmissionConfig, ServeConfig};

const PAGE_POINTS: usize = 256;
const PAGES: usize = 64;
const FLEETS: [usize; 3] = [1, 64, 1024];

fn build_db() -> Arc<IotDb> {
    let opts = EngineOptions::default().with_page_points(PAGE_POINTS);
    let db = IotDb::new(opts);
    db.create_series("sensor").unwrap();
    let rows = (PAGE_POINTS * PAGES) as i64;
    for i in 0..rows {
        db.append("sensor", i * 1000, 60 + (i % 25) - (i % 7))
            .unwrap();
    }
    db.flush().unwrap();
    Arc::new(db)
}

/// One short selective query, rotated over `k` so pruning and window
/// vary across the batch like independent clients.
fn sql(k: usize) -> String {
    let rows = (PAGE_POINTS * PAGES) as i64;
    let span = rows * 1000;
    let lo = (k as i64 * 37_000) % (span / 2);
    let hi = lo + span / 4;
    let func = match k % 4 {
        0 => "SUM",
        1 => "COUNT",
        2 => "MIN",
        _ => "MAX",
    };
    format!("SELECT {func}(sensor) FROM sensor WHERE time >= {lo} AND time <= {hi}")
}

fn connect_retry(addr: SocketAddr) -> Client {
    // Under a 1024-way connect burst the accept backlog can overflow;
    // retry briefly instead of failing the whole cell.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match Client::connect(addr) {
            Ok(c) => return c,
            Err(e) => {
                if Instant::now() >= deadline {
                    panic!("connect failed past deadline: {e}");
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

fn p99_us(lat: &mut [u64]) -> u64 {
    if lat.is_empty() {
        return 0;
    }
    lat.sort_unstable();
    lat[(lat.len() - 1) * 99 / 100]
}

/// Closed-loop fleet: `clients` connections, `per_client` queries each,
/// retrying honestly on `Overloaded` (sleeping the server's retry hint
/// like a polite client — a big fleet legitimately exceeds the
/// admission queue). Returns (attempts, sheds, accepted qps, accepted
/// p99 us). Any error other than a typed shed fails the bench.
fn run_fleet(addr: SocketAddr, clients: usize, per_client: usize) -> (u64, u64, f64, u64) {
    let start = Instant::now();
    let joins: Vec<_> = (0..clients)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = connect_retry(addr);
                let mut attempts = 0u64;
                let mut sheds = 0u64;
                let mut lat = Vec::with_capacity(per_client);
                for k in 0..per_client {
                    let q = sql(c * per_client + k);
                    // Retry until accepted; every shed is typed and
                    // carries a back-off hint we honor like a polite
                    // client would.
                    loop {
                        attempts += 1;
                        let t0 = Instant::now();
                        match client.query(&q).expect("wire query") {
                            Response::Rows(_) => {
                                lat.push(t0.elapsed().as_micros() as u64);
                                break;
                            }
                            Response::ServerError(e) if e.code == ErrorCode::Overloaded => {
                                sheds += 1;
                                assert!(e.retry_after_ms >= 1, "shed without a retry hint");
                                std::thread::sleep(Duration::from_millis(
                                    e.retry_after_ms.min(50) as u64
                                ));
                            }
                            Response::ServerError(e) => panic!("unexpected server error: {e}"),
                        }
                    }
                }
                (attempts, sheds, lat)
            })
        })
        .collect();
    let (mut attempts, mut sheds) = (0u64, 0u64);
    let mut lat: Vec<u64> = Vec::new();
    for j in joins {
        let (a, s, l) = j.join().expect("client thread");
        attempts += a;
        sheds += s;
        lat.extend(l);
    }
    let secs = start.elapsed().as_secs_f64();
    (attempts, sheds, lat.len() as f64 / secs, p99_us(&mut lat))
}

fn start_server(db: Arc<IotDb>, admission: AdmissionConfig) -> ServerHandle {
    server::start(
        db,
        "127.0.0.1:0",
        ServeConfig {
            admission,
            max_connections: 4096,
            ..ServeConfig::default()
        },
    )
    .expect("bind")
}

fn main() {
    let total: usize = std::env::var("ETSQP_BENCH_SERVE_QUERIES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2000);
    let max_clients: usize = std::env::var("ETSQP_BENCH_SERVE_MAX_CLIENTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1024);
    let db = build_db();

    // Fleet cells: default admission (in-flight = cores, deep-enough
    // queue) — the well-provisioned regime.
    let handle = start_server(Arc::clone(&db), AdmissionConfig::default());
    let addr = handle.addr();
    run_fleet(addr, 4, 8.min(total)); // warm connections, pool, cache

    let mut cells = Vec::new();
    let mut uncontended_p99 = 0u64;
    for &clients in FLEETS.iter().filter(|&&c| c <= max_clients) {
        let per_client = (total / clients).max(1);
        let (attempts, sheds, qps, p99) = run_fleet(addr, clients, per_client);
        if clients == 1 {
            uncontended_p99 = p99;
        }
        eprintln!("clients={clients}: {qps:.0} q/s, p99 {p99} us, shed {sheds}/{attempts}");
        cells.push(format!(
            concat!(
                "    {{\"clients\": {}, \"queries\": {}, \"qps\": {:.1}, ",
                "\"p99_us\": {}, \"shed\": {}, \"attempts\": {}}}"
            ),
            clients,
            clients * per_client,
            qps,
            p99,
            sheds,
            attempts
        ));
    }
    let fleet_stats = handle.shutdown();
    assert_eq!(fleet_stats.proto_errors, 0, "clean load spoke bad protocol");

    // Overload cell: capacity small and known, offered load 2x that.
    let admission = AdmissionConfig {
        max_inflight: 2,
        max_queue: 6,
        default_deadline: None,
    };
    let capacity = admission.max_inflight + admission.max_queue;
    let overload_clients = (2 * capacity).min(max_clients.max(2));
    let handle = start_server(Arc::clone(&db), admission);
    let per_client = (total / overload_clients).max(1);
    let (attempts, sheds, _qps, accepted_p99) =
        run_fleet(handle.addr(), overload_clients, per_client);
    let stats = handle.shutdown();
    assert_eq!(stats.shed, sheds, "server and clients disagree on sheds");
    let shed_rate = sheds as f64 / attempts.max(1) as f64;
    let p99_ratio = accepted_p99 as f64 / uncontended_p99.max(1) as f64;
    eprintln!(
        "overload x2: {overload_clients} clients into capacity {capacity}, \
         shed {sheds}/{attempts} ({:.1}%), accepted p99 {accepted_p99} us \
         ({p99_ratio:.2}x uncontended)",
        shed_rate * 100.0
    );

    println!("{{");
    println!("  \"bench\": \"serve_qps_p99\",");
    println!("  \"queries_per_cell\": {total},");
    println!("  \"pages\": {PAGES},");
    println!("  \"page_points\": {PAGE_POINTS},");
    println!("  \"cells\": [");
    println!("{}", cells.join(",\n"));
    println!("  ],");
    println!("  \"overload\": {{");
    println!("    \"clients\": {overload_clients},");
    println!("    \"capacity\": {capacity},");
    println!("    \"attempts\": {attempts},");
    println!("    \"shed\": {sheds},");
    println!("    \"shed_rate\": {shed_rate:.4},");
    println!("    \"accepted_p99_us\": {accepted_p99},");
    println!("    \"uncontended_p99_us\": {uncontended_p99},");
    println!("    \"accepted_p99_vs_uncontended\": {p99_ratio:.3}");
    println!("  }}");
    println!("}}");
}
