//! `cargo run -p xtask -- verify-plans`: exhaustive `etsqp-verify` sweep.
//!
//! Two passes, both gating in `scripts/ci.sh`:
//!
//! 1. **Enumeration** — compiles the 20-query differential battery over
//!    every Table II dataset × value codec cell (plus the timestamp-codec
//!    and hot+sealed cells) under the full pipeline-config cross, and runs
//!    each compiled [`PhysicalPlan`] through
//!    [`verify_deep`](etsqp_core::physical::verify::verify_deep) (which
//!    also discharges every checksum obligation) and
//!    [`verify_explain`](etsqp_core::physical::verify::verify_explain).
//!    The planner must produce zero violations across the whole space.
//!
//! 2. **Mutation** — hand-corrupts compiled plans, one corruption per
//!    invariant class of the catalog (DESIGN.md §13), and asserts the
//!    verifier rejects each with a typed error naming *that* invariant.
//!    A verifier that accepts a corrupted plan — or rejects it for the
//!    wrong reason — fails the build.

use etsqp_core::decode::DecodeOptions;
use etsqp_core::exec::Scheduler;
use etsqp_core::expr::{AggFunc, BinOp, CmpOp, PairAggFunc, Plan, Predicate, TimeRange};
use etsqp_core::fused::FuseLevel;
use etsqp_core::physical::node::{Parallelism, PruneVerdict, RootNode, Strategy};
use etsqp_core::physical::pipe;
use etsqp_core::physical::verify::{verify, verify_deep, verify_explain, Invariant, VerifyResult};
use etsqp_core::plan::PipelineConfig;
use etsqp_datasets::Spec;
use etsqp_encoding::Encoding;
use etsqp_storage::store::SeriesStore;
use std::sync::Arc;

const ROWS: usize = 256;
const PAGE_POINTS: usize = 64;

/// Integer codecs usable for the value column (mirrors the differential
/// suite's cell grid so the verifier sees every plan the tests see).
const VAL_CODECS: [Encoding; 9] = [
    Encoding::Plain,
    Encoding::Ts2Diff,
    Encoding::Ts2DiffOrder2,
    Encoding::Rle,
    Encoding::DeltaRle,
    Encoding::Sprintz,
    Encoding::Rlbe,
    Encoding::Gorilla,
    Encoding::StreamVByte,
];

/// Timestamp codecs for the dedicated ts-codec cells.
const TS_CODECS: [Encoding; 6] = [
    Encoding::Plain,
    Encoding::Ts2Diff,
    Encoding::Ts2DiffOrder2,
    Encoding::DeltaRle,
    Encoding::Gorilla,
    Encoding::StreamVByte,
];

/// The full ablation cross: vectorized/serial × fuse × prune × threads ×
/// slicing (72 configs).
fn all_configs() -> Vec<PipelineConfig> {
    let mut out = Vec::new();
    for vectorized in [true, false] {
        for fuse in [FuseLevel::None, FuseLevel::Delta, FuseLevel::DeltaRepeat] {
            for prune in [true, false] {
                for threads in [1usize, 4, 8] {
                    for allow_slicing in [true, false] {
                        out.push(PipelineConfig {
                            threads,
                            prune,
                            fuse,
                            vectorized,
                            decode: DecodeOptions::default(),
                            allow_slicing,
                            decode_budget_bytes: None,
                            scheduler: Scheduler::Pool,
                            partial_cache: true,
                        });
                    }
                }
            }
        }
    }
    out
}

/// Corner configs under which the *complete* battery runs in every cell.
fn canonical_configs() -> Vec<PipelineConfig> {
    let base = PipelineConfig {
        threads: 1,
        prune: false,
        fuse: FuseLevel::None,
        vectorized: false,
        decode: DecodeOptions::default(),
        allow_slicing: false,
        decode_budget_bytes: None,
        scheduler: Scheduler::Pool,
        partial_cache: true,
    };
    vec![
        base,
        PipelineConfig {
            vectorized: true,
            fuse: FuseLevel::DeltaRepeat,
            prune: true,
            threads: 4,
            allow_slicing: true,
            ..base
        },
        PipelineConfig {
            vectorized: true,
            fuse: FuseLevel::Delta,
            prune: true,
            threads: 8,
            allow_slicing: true,
            ..base
        },
        PipelineConfig {
            vectorized: false,
            threads: 4,
            prune: true,
            ..base
        },
    ]
}

fn cfg_label(cfg: &PipelineConfig) -> String {
    format!(
        "vec={} fuse={:?} prune={} threads={} slice={}",
        cfg.vectorized, cfg.fuse, cfg.prune, cfg.threads, cfg.allow_slicing
    )
}

/// Builds the store for one (spec × value codec × ts codec) cell and the
/// 20-query battery derived from the generated data's actual ranges —
/// the same battery the differential oracle suite executes.
fn cell(
    spec: Spec,
    val_codec: Encoding,
    ts_codec: Encoding,
    hot_tail: bool,
) -> (SeriesStore, Vec<(String, Plan)>) {
    let data = spec.generate(ROWS);
    let store = SeriesStore::new(PAGE_POINTS);
    let a = format!("{}_a", spec.label());
    let b = format!("{}_b", spec.label());
    for (name, col_idx) in [(&a, 0usize), (&b, 1usize)] {
        store.create_series(name, ts_codec, val_codec);
        store
            .append_all(name, &data.timestamps, &data.columns[col_idx].1)
            .unwrap();
        store.flush(name).unwrap();
    }
    if hot_tail {
        // Unsealed live rows past the sealed range: plans gain a
        // `SourceHot` pipeline source in every query below.
        let tn = *data.timestamps.last().unwrap();
        for name in [&a, &b] {
            for i in 0..40i64 {
                let v = (i * 1003) % 757 - 378 + ((i % 3) << 16);
                store.append(name, tn + (i + 1) * 7, v).unwrap();
            }
        }
    }

    let t0 = *data.timestamps.first().unwrap();
    let tn = *data.timestamps.last().unwrap();
    let span = (tn - t0).max(1);
    let col = &data.columns[0].1;
    let (vmin, vmax) = col
        .iter()
        .fold((i64::MAX, i64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    let vspan = (vmax - vmin).max(1);
    let t_mid = Predicate {
        time: Some(TimeRange {
            lo: t0 + span / 4,
            hi: tn - span / 4,
        }),
        value: None,
    };
    let v_band = Predicate {
        time: None,
        value: Some((vmin + vspan / 5, vmax - vspan / 5)),
    };
    let both = t_mid.and(&v_band);
    let w_min = t0 + span / 5;
    let w_dt = (span / 9).max(1);

    let scan_a = || Plan::scan(&a);
    let scan_b = || Plan::scan(&b);
    let queries: Vec<(String, Plan)> = vec![
        ("SUM(all)".into(), scan_a().aggregate(AggFunc::Sum)),
        (
            "AVG(time)".into(),
            scan_a().filter(t_mid).aggregate(AggFunc::Avg),
        ),
        (
            "COUNT(value)".into(),
            scan_a().filter(v_band).aggregate(AggFunc::Count),
        ),
        (
            "MIN(both)".into(),
            scan_a().filter(both).aggregate(AggFunc::Min),
        ),
        (
            "MAX(time)".into(),
            scan_a().filter(t_mid).aggregate(AggFunc::Max),
        ),
        (
            "VARIANCE(all)".into(),
            scan_a().aggregate(AggFunc::Variance),
        ),
        (
            "FIRST(value)".into(),
            scan_a().filter(v_band).aggregate(AggFunc::First),
        ),
        ("LAST(all)".into(), scan_a().aggregate(AggFunc::Last)),
        ("WSUM".into(), scan_a().window(w_min, w_dt, AggFunc::Sum)),
        (
            "WCOUNT(value)".into(),
            scan_a().filter(v_band).window(w_min, w_dt, AggFunc::Count),
        ),
        ("P95(all)".into(), scan_a().aggregate(AggFunc::P95)),
        ("WP50".into(), scan_a().window(w_min, w_dt, AggFunc::P50)),
        (
            "WRATE(time)".into(),
            scan_a().filter(t_mid).window(w_min, w_dt, AggFunc::Rate),
        ),
        (
            "DELTA(time)".into(),
            scan_a().filter(t_mid).aggregate(AggFunc::Delta),
        ),
        ("SCAN(both)".into(), scan_a().filter(both)),
        (
            "UNION".into(),
            Plan::Union {
                left: Box::new(scan_a().filter(t_mid)),
                right: Box::new(scan_b()),
            },
        ),
        (
            "JOIN(on>)".into(),
            Plan::Join {
                left: Box::new(scan_a()),
                right: Box::new(scan_b()),
                on: Some(CmpOp::Gt),
            },
        ),
        (
            "JOINEXPR(+)".into(),
            Plan::JoinExpr {
                left: Box::new(scan_a()),
                right: Box::new(scan_b()),
                op: BinOp::Add,
            },
        ),
        (
            "JOINAGG(dot)".into(),
            Plan::JoinAggregate {
                left: Box::new(scan_a()),
                right: Box::new(scan_b()),
                func: PairAggFunc::Dot,
            },
        ),
        (
            "JOINAGG(corr)".into(),
            Plan::JoinAggregate {
                left: Box::new(scan_a().filter(t_mid)),
                right: Box::new(scan_b()),
                func: PairAggFunc::Correlation,
            },
        ),
    ];
    (store, queries)
}

/// Compile + deep-verify + EXPLAIN-round-trip one plan under one config.
fn check_one(store: &SeriesStore, plan: &Plan, cfg: &PipelineConfig) -> Result<(), String> {
    let phys = pipe::compile(plan, store, cfg).map_err(|e| format!("compile: {e}"))?;
    verify_deep(&phys, cfg).map_err(|e| e.to_string())?;
    let rendered = phys.render(cfg);
    verify_explain(&phys, cfg, &rendered).map_err(|e| e.to_string())?;
    Ok(())
}

/// Sweep outcome, surfaced by `main.rs` as the process exit code.
pub struct Report {
    /// Plans compiled and verified in the enumeration pass.
    pub plans: usize,
    /// (spec × codec) cells enumerated.
    pub cells: usize,
    /// Enumeration-pass violations (must be zero).
    pub violations: usize,
    /// Corrupted plans correctly rejected with the expected invariant.
    pub mutations_rejected: usize,
    /// Corrupted plans accepted, or rejected under the wrong invariant.
    pub mutation_escapes: usize,
}

impl Report {
    /// Whether the sweep gates CI green.
    pub fn ok(&self) -> bool {
        self.violations == 0 && self.mutation_escapes == 0
    }
}

/// Runs both passes; see the module docs.
pub fn run() -> Report {
    let mut report = Report {
        plans: 0,
        cells: 0,
        violations: 0,
        mutations_rejected: 0,
        mutation_escapes: 0,
    };
    let canon = canonical_configs();
    let cross = all_configs();

    let sweep = |spec: Spec,
                 val_codec: Encoding,
                 ts_codec: Encoding,
                 hot: bool,
                 full_cross: bool,
                 report: &mut Report| {
        let (store, queries) = cell(spec, val_codec, ts_codec, hot);
        report.cells += 1;
        let mut run_case = |qname: &str, plan: &Plan, cfg: &PipelineConfig| {
            report.plans += 1;
            if let Err(e) = check_one(&store, plan, cfg) {
                report.violations += 1;
                eprintln!(
                    "verify-plans: VIOLATION spec={} val={:?} ts={:?} hot={hot} cfg=[{}] \
                     query={qname}: {e}",
                    spec.label(),
                    val_codec,
                    ts_codec,
                    cfg_label(cfg),
                );
            }
        };
        // The complete battery under the canonical corner configs.
        for (qname, plan) in &queries {
            for cfg in &canon {
                run_case(qname, plan, cfg);
            }
        }
        // The full 72-config ablation cross, rotating deterministically
        // through the battery (every config sees several query shapes;
        // across cells every (query × config) pair is covered).
        if full_cross {
            for (ci, cfg) in cross.iter().enumerate() {
                let (qname, plan) = &queries[(ci + report.cells) % queries.len()];
                run_case(qname, plan, cfg);
            }
        }
    };

    // Every Table II dataset × every value codec.
    for spec in Spec::ALL {
        for val_codec in VAL_CODECS {
            sweep(spec, val_codec, Encoding::Ts2Diff, false, true, &mut report);
        }
    }
    // Timestamp-codec cells (the time column drives filters and windows).
    for spec in [Spec::Atmosphere, Spec::Timestamp, Spec::Tpch] {
        for ts_codec in TS_CODECS {
            sweep(spec, Encoding::Ts2Diff, ts_codec, false, false, &mut report);
        }
    }
    // Hot+sealed cells: every plan gains a `SourceHot` source, exercising
    // the hot-folds-last invariant on real compiled plans.
    for spec in [Spec::Atmosphere, Spec::Timestamp] {
        for codec in [Encoding::Ts2Diff, Encoding::StreamVByte] {
            sweep(spec, codec, codec, true, false, &mut report);
        }
    }

    mutation_pass(&mut report);
    report
}

// ---------------------------------------------------------------------
// Mutation pass: one corruption per invariant class must be rejected.
// ---------------------------------------------------------------------

fn expect(name: &str, want: Invariant, res: VerifyResult, report: &mut Report) {
    match res {
        Err(e) if e.invariant == want => report.mutations_rejected += 1,
        Err(e) => {
            report.mutation_escapes += 1;
            eprintln!(
                "verify-plans: MUTATION {name}: rejected under the wrong invariant \
                 (expected {}, got: {e})",
                want.name()
            );
        }
        Ok(()) => {
            report.mutation_escapes += 1;
            eprintln!(
                "verify-plans: MUTATION {name}: corrupted plan accepted \
                 (expected rejection under {})",
                want.name()
            );
        }
    }
}

/// A deterministic fixture store: sealed series `m`/`n`, a series `h`
/// with a live hot tail, and a series `d` whose page 2 is corrupted
/// after sealing (its checksum no longer matches).
fn mutation_store() -> SeriesStore {
    let store = SeriesStore::new(PAGE_POINTS);
    let ts: Vec<i64> = (0..ROWS as i64).map(|i| i * 10).collect();
    let vals: Vec<i64> = (0..ROWS as i64).map(|i| 100 + (i % 37)).collect();
    for s in ["m", "n", "h", "d"] {
        store.create_series(s, Encoding::Ts2Diff, Encoding::Ts2Diff);
        store.append_all(s, &ts, &vals).unwrap();
        store.flush(s).unwrap();
    }
    for i in 0..10i64 {
        store
            .append("h", ROWS as i64 * 10 + i * 10, 500 + i)
            .unwrap();
    }
    store
        .corrupt_page("d", 2, |p| {
            let mut v = p.val_bytes.to_vec();
            v[0] ^= 0x40;
            p.val_bytes = etsqp_storage::Bytes::from(v);
        })
        .unwrap();
    store
}

fn mutation_pass(report: &mut Report) {
    let store = mutation_store();
    let cfg = PipelineConfig {
        threads: 2,
        ..Default::default()
    };
    let sum_m = Plan::scan("m").aggregate(AggFunc::Sum);

    // plan-shape: a decision list shorter than the page list.
    let mut phys = pipe::compile(&sum_m, &store, &cfg).unwrap();
    phys.pipelines[0].decisions.pop();
    expect(
        "plan-shape/decision-dropped",
        Invariant::PlanShape,
        verify(&phys, &cfg),
        report,
    );

    // prune-soundness: a verdict that does not re-derive from the header.
    let mut phys = pipe::compile(&sum_m, &store, &cfg).unwrap();
    phys.pipelines[0].decisions[0].verdict = PruneVerdict::PrunedTime;
    phys.pipelines[0].decisions[0].strategy = None;
    phys.pipelines[0].decisions[0].checksum_obligation = true;
    expect(
        "prune-soundness/verdict-flipped",
        Invariant::PruneSoundness,
        verify(&phys, &cfg),
        report,
    );

    // prune-soundness: a pruned page stripped of its checksum obligation.
    let pruning = Plan::scan("m")
        .filter(Predicate::time(0, 100))
        .aggregate(AggFunc::Sum);
    let mut phys = pipe::compile(&pruning, &store, &cfg).unwrap();
    if let Some(d) = phys.pipelines[0]
        .decisions
        .iter_mut()
        .find(|d| !d.verdict.kept())
    {
        d.checksum_obligation = false;
    }
    expect(
        "prune-soundness/obligation-stripped",
        Invariant::PruneSoundness,
        verify(&phys, &cfg),
        report,
    );

    // prune-soundness (deep): a pruned page whose stored bytes were
    // corrupted after sealing — only the obligation discharge catches it.
    let pruning_d = Plan::scan("d")
        .filter(Predicate::time(0, 100))
        .aggregate(AggFunc::Sum);
    let phys = pipe::compile(&pruning_d, &store, &cfg).unwrap();
    expect(
        "prune-soundness/pruned-page-corrupted",
        Invariant::PruneSoundness,
        verify_deep(&phys, &cfg),
        report,
    );

    // slice-bounds: a sliced morsel count that disagrees with distribute.
    let cfg8 = PipelineConfig {
        threads: 8,
        ..Default::default()
    };
    let mut phys = pipe::compile(&sum_m, &store, &cfg8).unwrap();
    let Parallelism::Sliced { pages, jobs } = phys.pipelines[0].parallelism else {
        panic!("mutation fixture must compile to sliced parallelism");
    };
    phys.pipelines[0].parallelism = Parallelism::Sliced {
        pages,
        jobs: jobs + 1,
    };
    expect(
        "slice-bounds/phantom-job",
        Invariant::SliceBounds,
        verify(&phys, &cfg8),
        report,
    );

    // partition-tiling: a gap between merge partitions.
    let union = Plan::Union {
        left: Box::new(Plan::scan("m")),
        right: Box::new(Plan::scan("n")),
    };
    let mut phys = pipe::compile(&union, &store, &cfg).unwrap();
    match &mut phys.root {
        RootNode::Union { partitions } if partitions.len() > 1 => partitions[1].lo += 1,
        _ => panic!("union fixture must compile to multiple partitions"),
    }
    expect(
        "partition-tiling/gap",
        Invariant::PartitionTiling,
        verify(&phys, &cfg),
        report,
    );

    // fusion-admissibility: a fused strategy whose codec mismatches.
    let mut phys = pipe::compile(&sum_m, &store, &cfg).unwrap();
    phys.pipelines[0].decisions[0].strategy = Some(Strategy::FusedDeltaRle);
    expect(
        "fusion-admissibility/codec-mismatch",
        Invariant::FusionAdmissibility,
        verify(&phys, &cfg),
        report,
    );

    // hot-folds-last: hot timestamps rewound behind the sealed pages.
    let sum_h = Plan::scan("h").aggregate(AggFunc::Sum);
    let mut phys = pipe::compile(&sum_h, &store, &cfg).unwrap();
    let hot = phys.pipelines[0]
        .hot
        .as_mut()
        .expect("fixture has a hot tail");
    let rewound: Vec<i64> = hot.ts.iter().map(|t| t - ROWS as i64 * 10).collect();
    hot.ts = Arc::new(rewound);
    expect(
        "hot-folds-last/rewound-tail",
        Invariant::HotFoldsLast,
        verify(&phys, &cfg),
        report,
    );

    // explain-round-trip: EXPLAIN text drifted from the plan.
    let phys = pipe::compile(&sum_m, &store, &cfg).unwrap();
    let tampered = phys.render(&cfg).replace("SUM", "MAX");
    expect(
        "explain-round-trip/tampered-text",
        Invariant::ExplainRoundTrip,
        verify_explain(&phys, &cfg, &tampered),
        report,
    );

    // bucket-tiling: a windowed root whose bucket width was zeroed.
    let wsum = Plan::scan("m").window(0, 640, AggFunc::Sum);
    let mut phys = pipe::compile(&wsum, &store, &cfg).unwrap();
    match &mut phys.root {
        RootNode::Aggregate {
            window: Some(w), ..
        } => w.dt = 0,
        other => panic!("windowed fixture compiled to {other:?}"),
    }
    expect(
        "bucket-tiling/zero-width",
        Invariant::BucketTiling,
        verify(&phys, &cfg),
        report,
    );

    // cache-obligation: a page under a value filter marked cacheable
    // (a cache keyed only on (checksum, func) statistics would serve a
    // filtered partial as if it were the whole page).
    let filtered = Plan::scan("m")
        .filter(Predicate::value(100, 130))
        .aggregate(AggFunc::Sum);
    let mut phys = pipe::compile(&filtered, &store, &cfg).unwrap();
    let d = phys.pipelines[0]
        .decisions
        .iter_mut()
        .find(|d| d.verdict.kept())
        .expect("fixture keeps at least one page");
    d.cacheable = true;
    expect(
        "cache-obligation/value-filtered",
        Invariant::CacheObligation,
        verify(&phys, &cfg),
        report,
    );

    // partial-merge-order: adjacent pages swapped (index/tuples patched
    // so PlanShape holds) — the merge chain is no longer time-ordered.
    let mut phys = pipe::compile(&sum_m, &store, &cfg).unwrap();
    {
        let p = &mut phys.pipelines[0];
        assert!(p.pages.len() >= 2, "fixture seals multiple pages");
        p.pages.swap(0, 1);
        p.decisions.swap(0, 1);
        for (i, d) in p.decisions.iter_mut().enumerate() {
            d.index = i;
            d.tuples = p.pages[i].header.count as u64;
        }
    }
    expect(
        "partial-merge-order/pages-swapped",
        Invariant::PartialMergeOrder,
        verify(&phys, &cfg),
        report,
    );
}
