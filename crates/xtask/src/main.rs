//! Repo automation tasks. Three subcommands:
//!
//! ```text
//! cargo run -p xtask -- lint [--root <dir>]
//! cargo run -p xtask -- fuzz [--iters N] [--seed S] [--corpus <dir>] [--emit-corpus]
//! cargo run -p xtask -- verify-plans
//! ```
//!
//! `lint` runs the repo-specific static-analysis pass over every
//! workspace `.rs` file (see [`lint`] module docs for the rules) and
//! exits non-zero on violations, printing a `rule -> count` summary
//! line that `scripts/ci.sh` surfaces on failure.
//!
//! `fuzz` runs the deterministic mutational fuzzer over every codec
//! decoder, the page image parser, and the tsfile reader (see [`fuzz`]
//! module docs for the invariant), exiting non-zero if any input
//! panics a decoder or breaks round-trip consistency. Minimized
//! crashers land in `tests/corpus/` for `tests/corruption.rs` replay.
//!
//! `verify-plans` enumerates the full physical-plan space (the 16-query
//! battery × codec × config × hot/sealed grid) through the `etsqp-verify`
//! IR verifier (see [`verify_plans`] module docs), then mutation-tests
//! the verifier itself: one plan corruption per invariant class must be
//! rejected with a typed error naming that invariant.
#![forbid(unsafe_code)]

mod fuzz;
mod lint;
mod verify_plans;

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // Under `cargo run` the manifest dir is crates/xtask; the workspace
    // root is two levels up. Fall back to the current directory when
    // invoked standalone.
    std::env::var_os("CARGO_MANIFEST_DIR")
        .map(|d| PathBuf::from(d).join("..").join(".."))
        .unwrap_or_else(|| PathBuf::from("."))
}

fn usage() -> ExitCode {
    eprintln!("usage: cargo run -p xtask -- lint [--root <dir>]");
    eprintln!(
        "       cargo run -p xtask -- fuzz [--iters N] [--seed S] [--corpus <dir>] [--emit-corpus]"
    );
    eprintln!("       cargo run -p xtask -- verify-plans");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(&args[1..]),
        Some("fuzz") => run_fuzz(&args[1..]),
        Some("verify-plans") => run_verify_plans(&args[1..]),
        _ => usage(),
    }
}

fn run_verify_plans(args: &[String]) -> ExitCode {
    if !args.is_empty() {
        return usage();
    }
    let report = verify_plans::run();
    if report.ok() {
        println!(
            "verify-plans OK: {} plans verified across {} cells, 0 violations; \
             {} corrupted plans rejected with typed invariants",
            report.plans, report.cells, report.mutations_rejected
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "verify-plans FAILED: {} violations across {} plans; {} mutation escapes \
             ({} rejected correctly)",
            report.violations, report.plans, report.mutation_escapes, report.mutations_rejected
        );
        ExitCode::FAILURE
    }
}

fn run_fuzz(args: &[String]) -> ExitCode {
    let mut cfg = fuzz::FuzzConfig {
        iters: 20_000,
        seed: 5,
        corpus_dir: workspace_root().join("tests").join("corpus"),
    };
    let mut emit_corpus = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--emit-corpus" => emit_corpus = true,
            "--iters" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => cfg.iters = n,
                None => return usage(),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(s) => cfg.seed = s,
                None => return usage(),
            },
            "--corpus" => match it.next() {
                Some(dir) => cfg.corpus_dir = PathBuf::from(dir),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    if emit_corpus {
        return match fuzz::emit_corpus(&cfg.corpus_dir) {
            Ok(n) => {
                println!("corpus: wrote {n} files to {}", cfg.corpus_dir.display());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("corpus: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if fuzz::run(&cfg) == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_lint(args: &[String]) -> ExitCode {
    let mut root = workspace_root();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let root = root.canonicalize().unwrap_or(root);

    let report = lint::lint_workspace(&root);
    for v in &report.violations {
        eprintln!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.msg);
    }
    // Every escape-hatch use is reported with its location, so a
    // creeping allow-count is visible in CI logs, not just the total.
    for a in &report.allows {
        println!(
            "note: {}:{}: escape hatch in effect for `{}`",
            a.file, a.line, a.rule
        );
    }
    let allows = report.allows_by_rule();
    let allow_note = if allows.is_empty() {
        String::from("no escape hatches in use")
    } else {
        let parts: Vec<String> = allows.iter().map(|(r, n)| format!("{r}: {n}")).collect();
        format!("escape hatches in use: {}", parts.join(", "))
    };
    if report.violations.is_empty() {
        println!(
            "lint OK: {} files, {} crates clean; {}",
            report.files_scanned, report.crates_checked, allow_note
        );
        ExitCode::SUCCESS
    } else {
        // One-line rule -> violation-count summary (grep-able from CI).
        let parts: Vec<String> = report
            .counts_by_rule()
            .iter()
            .map(|(r, n)| format!("{r}: {n}"))
            .collect();
        eprintln!(
            "lint FAILED: {} violations ({}); {}",
            report.violations.len(),
            parts.join(", "),
            allow_note
        );
        ExitCode::FAILURE
    }
}
