//! Repo automation tasks. Currently one subcommand:
//!
//! ```text
//! cargo run -p xtask -- lint [--root <dir>]
//! ```
//!
//! Runs the repo-specific static-analysis pass over every workspace
//! `.rs` file (see [`lint`] module docs for the rules) and exits
//! non-zero on violations, printing a `rule -> count` summary line that
//! `scripts/ci.sh` surfaces on failure.
#![forbid(unsafe_code)]

mod lint;

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // Under `cargo run` the manifest dir is crates/xtask; the workspace
    // root is two levels up. Fall back to the current directory when
    // invoked standalone.
    std::env::var_os("CARGO_MANIFEST_DIR")
        .map(|d| PathBuf::from(d).join("..").join(".."))
        .unwrap_or_else(|| PathBuf::from("."))
}

fn usage() -> ExitCode {
    eprintln!("usage: cargo run -p xtask -- lint [--root <dir>]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) != Some("lint") {
        return usage();
    }
    let mut root = workspace_root();
    let mut it = args.iter().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let root = root.canonicalize().unwrap_or(root);

    let report = lint::lint_workspace(&root);
    for v in &report.violations {
        eprintln!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.msg);
    }
    // Every escape-hatch use is reported with its location, so a
    // creeping allow-count is visible in CI logs, not just the total.
    for a in &report.allows {
        println!(
            "note: {}:{}: escape hatch in effect for `{}`",
            a.file, a.line, a.rule
        );
    }
    let allows = report.allows_by_rule();
    let allow_note = if allows.is_empty() {
        String::from("no escape hatches in use")
    } else {
        let parts: Vec<String> = allows.iter().map(|(r, n)| format!("{r}: {n}")).collect();
        format!("escape hatches in use: {}", parts.join(", "))
    };
    if report.violations.is_empty() {
        println!(
            "lint OK: {} files, {} crates clean; {}",
            report.files_scanned, report.crates_checked, allow_note
        );
        ExitCode::SUCCESS
    } else {
        // One-line rule -> violation-count summary (grep-able from CI).
        let parts: Vec<String> = report
            .counts_by_rule()
            .iter()
            .map(|(r, n)| format!("{r}: {n}"))
            .collect();
        eprintln!(
            "lint FAILED: {} violations ({}); {}",
            report.violations.len(),
            parts.join(", "),
            allow_note
        );
        ExitCode::FAILURE
    }
}
