//! Deterministic mutational fuzzer for the untrusted-input surfaces:
//! every codec decoder, `Page::from_bytes`, `tsfile::read`, the
//! partial-state wire format (`PartialState::from_bytes`, including the
//! embedded t-digest parser), and the network wire-frame parser
//! (`etsqp_serve::proto` — hostile length prefixes, truncated and
//! oversized frames, bad version bytes, lying result/error payloads).
//!
//! ```text
//! cargo run -p xtask -- fuzz [--iters N] [--seed S] [--corpus <dir>]
//! ```
//!
//! The harness seeds a corpus from *valid* encodings of varied value
//! shapes, then mutates them (bit flips, byte overwrites, truncation,
//! extension, header splices, fully random buffers) and asserts the
//! tri-state invariant on every decode:
//!
//! 1. **panic-free** — a decoder must never panic on any byte string;
//! 2. `Ok(v)` ⇒ **round-trip**: `decode(encode(v)) == v` (the decoder
//!    accepted the stream, so the values it produced must be
//!    re-encodable losslessly — anything else is silent corruption);
//! 3. otherwise a typed `Err` — fine, that is the contract.
//!
//! Violations are greedily minimized and written to the corpus
//! directory (default `tests/corpus/`) so `tests/corruption.rs` replays
//! them forever after. The run is fully deterministic in `--seed`.
//!
//! Exit status: 0 when every iteration upheld the invariant, 1
//! otherwise. The final line is machine-readable
//! (`fuzz OK: <iters> iters, <targets> targets, <secs>s, <execs/sec>
//! execs/sec`) for `scripts/bench.sh`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::time::Instant;

use etsqp_core::expr::AggFunc;
use etsqp_core::partial::PartialState;
use etsqp_core::plan::Value;
use etsqp_encoding::Encoding;
use etsqp_serve::proto::{
    self, ErrorCode, FrameDecoder, FrameType, WireResult, DEFAULT_MAX_FRAME_LEN,
};
use etsqp_storage::page::Page;
use etsqp_storage::store::SeriesStore;
use etsqp_storage::tsfile;

/// splitmix64 — tiny, deterministic, no external dependency.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_add(0x9e37_79b9_7f4a_7c15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// The integer codecs under test.
const INT_CODECS: [Encoding; 9] = [
    Encoding::Plain,
    Encoding::Ts2Diff,
    Encoding::Ts2DiffOrder2,
    Encoding::Rle,
    Encoding::DeltaRle,
    Encoding::Sprintz,
    Encoding::Rlbe,
    Encoding::Gorilla,
    Encoding::StreamVByte,
];

/// The float codecs under test.
const FLOAT_CODECS: [Encoding; 3] = [Encoding::Chimp, Encoding::Elf, Encoding::GorillaFloat];

/// One fuzz target: a name, a seed corpus, and the decode invariant.
enum Target {
    Int(Encoding),
    Float(Encoding),
    PageImage,
    TsFileImage,
    /// `PartialState::from_bytes` — the partial-aggregate wire format,
    /// including the embedded t-digest (hostile centroid counts,
    /// non-finite means/weights, envelope lies).
    Partial,
    /// The network wire-frame grammar (`etsqp_serve::proto`): the
    /// incremental `FrameDecoder` plus the typed error/result payload
    /// parsers behind it.
    Proto,
}

impl Target {
    fn name(&self) -> String {
        match self {
            Target::Int(e) | Target::Float(e) => e.name().to_string(),
            Target::PageImage => "page".to_string(),
            Target::TsFileImage => "tsfile".to_string(),
            Target::Partial => "partial".to_string(),
            Target::Proto => "proto".to_string(),
        }
    }
}

/// Integer value shapes that exercise different codec branches.
fn int_seed_values(rng: &mut Rng) -> Vec<Vec<i64>> {
    let jitter: Vec<i64> = (0..700)
        .scan(0i64, |acc, _| {
            *acc += 100 + (rng.next() % 41) as i64 - 20;
            Some(*acc)
        })
        .collect();
    let random: Vec<i64> = (0..300).map(|_| rng.next() as i64).collect();
    vec![
        (0..1000i64).map(|i| i * 50).collect(), // regular cadence
        vec![42i64; 500],                       // constant (RLE-friendly)
        jitter,
        random,
        vec![i64::MIN, -1, 0, 1, i64::MAX],
        vec![7],
        vec![],
    ]
}

/// Float value shapes.
fn float_seed_values(rng: &mut Rng) -> Vec<Vec<f64>> {
    let noisy: Vec<f64> = (0..400)
        .map(|i| 20.0 + (i as f64 * 0.01).sin() + (rng.next() % 100) as f64 * 1e-4)
        .collect();
    vec![
        noisy,
        vec![1.5; 300],
        vec![0.0, -0.0, f64::MAX, f64::MIN_POSITIVE, std::f64::consts::PI],
        vec![2.25],
        vec![],
    ]
}

/// A representative result payload (mixed cell tags, two rows) for the
/// proto seeds and corpus.
fn sample_wire_result() -> WireResult {
    WireResult {
        columns: vec!["COUNT(s)".to_string(), "AVG(s)".to_string()],
        rows: vec![
            vec![Value::Int(20_000), Value::Float(499.5)],
            vec![Value::Null, Value::Int(-1)],
        ],
        elapsed_us: 3_808,
    }
}

/// Builds the per-target seed corpora (all *valid* encodings).
fn build_seeds(target: &Target, rng: &mut Rng, scratch: &Path) -> Vec<Vec<u8>> {
    match target {
        Target::Int(enc) => int_seed_values(rng)
            .iter()
            .map(|v| enc.encode_i64(v))
            .collect(),
        Target::Float(enc) => float_seed_values(rng)
            .iter()
            .map(|v| enc.encode_f64(v))
            .collect(),
        Target::PageImage => {
            let mut seeds = Vec::new();
            for (ts_enc, val_enc) in [
                (Encoding::Ts2Diff, Encoding::Ts2Diff),
                (Encoding::Ts2Diff, Encoding::DeltaRle),
                (Encoding::Gorilla, Encoding::Rle),
            ] {
                let ts: Vec<i64> = (0..256i64).map(|i| 1000 + i * 20).collect();
                let vals: Vec<i64> = (0..256i64).map(|i| 60 + (i % 13)).collect();
                if let Ok(p) = Page::encode(&ts, &vals, ts_enc, val_enc) {
                    seeds.push(p.to_bytes());
                }
            }
            let ts: Vec<i64> = (0..128i64).map(|i| i * 5).collect();
            let vals: Vec<f64> = (0..128).map(|i| 20.0 + i as f64 * 0.25).collect();
            if let Ok(p) = Page::encode_f64(&ts, &vals, Encoding::Ts2Diff, Encoding::Chimp) {
                seeds.push(p.to_bytes());
            }
            seeds
        }
        Target::Partial => {
            // Valid serialized partials across the state shapes: plain
            // moments, timestamp bounds, quantile sketch, and empty.
            let mut seeds = Vec::new();
            for func in [AggFunc::Sum, AggFunc::P95, AggFunc::First, AggFunc::Rate] {
                let mut s = PartialState::new(func);
                for i in 0..300i64 {
                    s.push_tv(1_000 + i * 10, (i * 37) % 211 - 100);
                }
                seeds.push(s.to_bytes());
            }
            seeds.push(PartialState::new(AggFunc::Count).to_bytes());
            seeds
        }
        Target::Proto => {
            // Valid frames of every type, alone and pipelined, so the
            // mutator attacks version bytes, length prefixes, error
            // codes, column counts, and cell tags from real layouts.
            let mut seeds = vec![
                proto::encode_frame(FrameType::Query, b"SELECT COUNT(s) FROM s"),
                proto::encode_frame(FrameType::Ping, &[]),
                proto::encode_frame(
                    FrameType::Error,
                    &proto::encode_error(ErrorCode::Overloaded, 250, "queue full"),
                ),
                proto::encode_frame(FrameType::Result, &sample_wire_result().encode()),
            ];
            let mut pipelined = proto::encode_frame(FrameType::Ping, &[]);
            pipelined.extend(proto::encode_frame(FrameType::Query, b"SELECT 1"));
            seeds.push(pipelined);
            seeds
        }
        Target::TsFileImage => {
            let store = SeriesStore::new(128);
            store.create_series("a", Encoding::Ts2Diff, Encoding::Ts2Diff);
            store.create_series("b", Encoding::Gorilla, Encoding::DeltaRle);
            store.create_series_f64("f", Encoding::Ts2Diff, Encoding::Elf);
            for i in 0..500i64 {
                let _ = store.append("a", i * 10, 50 + (i % 7));
                let _ = store.append("b", i * 10, i);
                let _ = store.append_f64("f", i * 10, 20.0 + i as f64 * 0.01);
            }
            for name in ["a", "b", "f"] {
                let _ = store.flush(name);
            }
            let path = scratch.join("seed.etsqp");
            match tsfile::write(&store, &path).and_then(|_| Ok(std::fs::read(&path)?)) {
                Ok(bytes) => vec![bytes],
                Err(_) => Vec::new(),
            }
        }
    }
}

/// Applies one random mutation to `data` in place (may change length).
fn mutate(data: &mut Vec<u8>, rng: &mut Rng) {
    match rng.below(7) {
        // Flip 1..=8 random bits.
        0 => {
            if !data.is_empty() {
                for _ in 0..=rng.below(8) {
                    let i = rng.below(data.len());
                    data[i] ^= 1 << rng.below(8);
                }
            }
        }
        // Overwrite a random byte with a random value.
        1 => {
            if !data.is_empty() {
                let i = rng.below(data.len());
                data[i] = rng.next() as u8;
            }
        }
        // Truncate to a random prefix.
        2 => data.truncate(rng.below(data.len() + 1)),
        // Extend with random garbage.
        3 => {
            for _ in 0..rng.below(32) + 1 {
                data.push(rng.next() as u8);
            }
        }
        // Header splice: blast a hostile 32-bit field into the first
        // 16 bytes (targets count/length fields of every layout).
        4 => {
            if data.len() >= 4 {
                let off = rng.below(data.len().min(16).saturating_sub(3));
                let hostile: u32 = match rng.below(4) {
                    0 => u32::MAX,
                    1 => (1 << 26) + 1, // just past MAX_PAGE_COUNT
                    2 => 1 << 31,
                    _ => rng.next() as u32,
                };
                data[off..off + 4].copy_from_slice(&hostile.to_be_bytes());
            }
        }
        // Copy one region over another (self-splice).
        5 => {
            if data.len() >= 8 {
                let src = rng.below(data.len() - 4);
                let dst = rng.below(data.len() - 4);
                let len = rng.below(4) + 1;
                let tmp: Vec<u8> = data[src..src + len].to_vec();
                data[dst..dst + len].copy_from_slice(&tmp);
            }
        }
        // Replace everything with a fully random short buffer.
        _ => {
            let len = rng.below(64);
            data.clear();
            for _ in 0..len {
                data.push(rng.next() as u8);
            }
        }
    }
}

/// Outcome of driving one input through a target's decode invariant.
enum Verdict {
    /// Invariant upheld (clean decode or typed error).
    Ok,
    /// The invariant broke; the message explains how.
    Violation(String),
}

/// Runs one input through the target, asserting the tri-state invariant.
fn check(target: &Target, input: &[u8], scratch: &Path) -> Verdict {
    let outcome = catch_unwind(AssertUnwindSafe(|| -> Result<(), String> {
        match target {
            Target::Int(enc) => {
                if let Ok(values) = enc.decode_i64(input) {
                    let back = enc
                        .decode_i64(&enc.encode_i64(&values))
                        .map_err(|e| format!("accepted stream fails re-decode: {e}"))?;
                    if back != values {
                        return Err("accepted stream breaks round-trip".into());
                    }
                }
                Ok(())
            }
            Target::Float(enc) => {
                if let Ok(values) = enc.decode_f64(input) {
                    let back = enc
                        .decode_f64(&enc.encode_f64(&values))
                        .map_err(|e| format!("accepted stream fails re-decode: {e}"))?;
                    let same = back.len() == values.len()
                        && back
                            .iter()
                            .zip(&values)
                            .all(|(a, b)| a.to_bits() == b.to_bits());
                    if !same {
                        return Err("accepted stream breaks round-trip".into());
                    }
                }
                Ok(())
            }
            Target::PageImage => {
                if let Ok((page, _consumed)) = Page::from_bytes(input) {
                    // The checksum trailer accepted the image, so both
                    // column decodes must finish without panicking
                    // (either cleanly or as typed errors).
                    if page.header.val_encoding.is_float() {
                        let _ = page.decode_f64();
                    } else {
                        let _ = page.decode();
                    }
                }
                Ok(())
            }
            Target::Partial => {
                if let Ok(state) = PartialState::from_bytes(input) {
                    // Accepted partials must re-serialize canonically…
                    let canon = state.to_bytes();
                    let back = PartialState::from_bytes(&canon)
                        .map_err(|e| format!("accepted partial fails re-parse: {e}"))?;
                    if back.to_bytes() != canon {
                        return Err("accepted partial breaks canonical round-trip".into());
                    }
                    // …merge panic-free (the hot cross-page path)…
                    let mut doubled = state.clone();
                    doubled.merge(&state);
                    // …and keep quantile estimates inside the envelope.
                    if let Some(d) = &state.digest {
                        for q in [0.0, 0.5, 1.0] {
                            let est = d.quantile(q);
                            if d.count() > 0 {
                                let lo = d.min().unwrap_or(f64::NEG_INFINITY);
                                let hi = d.max().unwrap_or(f64::INFINITY);
                                if !(est >= lo && est <= hi) {
                                    return Err(format!(
                                        "quantile({q}) = {est} escaped [{lo}, {hi}]"
                                    ));
                                }
                            }
                        }
                    }
                }
                Ok(())
            }
            Target::Proto => {
                // Drive the whole input through the incremental decoder.
                // Every complete frame must re-encode to a stream that
                // parses back identically; typed payloads (error,
                // result) must additionally round-trip canonically.
                // A typed `ProtoError` ends the stream — that is the
                // decoder's contract with hostile peers.
                let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME_LEN);
                dec.extend(input);
                while let Ok(Some(frame)) = dec.next_frame() {
                    let bytes = proto::encode_frame(frame.kind, &frame.payload);
                    let mut again = FrameDecoder::new(DEFAULT_MAX_FRAME_LEN);
                    again.extend(&bytes);
                    match again.next_frame() {
                        Ok(Some(back)) if back == frame => {}
                        other => {
                            return Err(format!("accepted frame breaks round-trip: {other:?}"))
                        }
                    }
                    match frame.kind {
                        FrameType::Error => {
                            if let Ok(e) = proto::decode_error(&frame.payload) {
                                let canon =
                                    proto::encode_error(e.code, e.retry_after_ms, &e.message);
                                let back = proto::decode_error(&canon).map_err(|x| {
                                    format!("accepted error payload fails re-decode: {x}")
                                })?;
                                if back != e {
                                    return Err("accepted error payload breaks round-trip".into());
                                }
                            }
                        }
                        FrameType::Result => {
                            if let Ok(r) = proto::decode_result(&frame.payload) {
                                // Compare canonical bytes, not values:
                                // NaN cells are legal and NaN != NaN.
                                let canon = r.encode();
                                let back = proto::decode_result(&canon).map_err(|x| {
                                    format!("accepted result payload fails re-decode: {x}")
                                })?;
                                if back.encode() != canon {
                                    return Err("accepted result payload breaks round-trip".into());
                                }
                            }
                        }
                        _ => {}
                    }
                }
                Ok(())
            }
            Target::TsFileImage => {
                let path = scratch.join("fuzz.etsqp");
                if std::fs::write(&path, input).is_err() {
                    return Ok(()); // scratch unavailable — skip, not a decoder bug
                }
                if let Ok(store) = tsfile::read(&path) {
                    for name in store.series_names() {
                        if let Ok(pages) = store.peek_pages(&name) {
                            for page in pages {
                                if page.header.val_encoding.is_float() {
                                    let _ = page.decode_f64();
                                } else {
                                    let _ = page.decode();
                                }
                            }
                        }
                    }
                }
                Ok(())
            }
        }
    }));
    match outcome {
        Ok(Ok(())) => Verdict::Ok,
        Ok(Err(msg)) => Verdict::Violation(msg),
        Err(_) => Verdict::Violation("decoder panicked".into()),
    }
}

/// Greedily minimizes a violating input: repeatedly try shorter
/// prefixes/suffixes that still violate. Bounded, deterministic.
fn minimize(target: &Target, input: &[u8], scratch: &Path) -> Vec<u8> {
    let mut best = input.to_vec();
    let mut attempts = 0;
    loop {
        let mut improved = false;
        let mut candidates: Vec<Vec<u8>> = Vec::new();
        if best.len() > 1 {
            candidates.push(best[..best.len() / 2].to_vec());
            candidates.push(best[..best.len() - 1].to_vec());
            candidates.push(best[best.len() / 2..].to_vec());
        }
        for cand in candidates {
            attempts += 1;
            if attempts > 256 {
                return best;
            }
            if matches!(check(target, &cand, scratch), Verdict::Violation(_)) {
                best = cand;
                improved = true;
                break;
            }
        }
        if !improved {
            return best;
        }
    }
}

/// FNV-1a over the crasher bytes — a stable corpus file name.
fn content_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Writes one deterministic hostile input per target into `dir`, so the
/// committed corpus regression-tests every decoder even on a machine
/// that never runs the fuzzer. Returns the number of files written.
///
/// Patterns, per target:
/// - `__truncated`: a valid encoding cut in half — exercises every
///   "stream ends mid-value" path;
/// - `__hostile_count`: the leading 32-bit count spliced to `u32::MAX`
///   — exercises the header-preflight OOM guards;
/// - `chimp__zero_sig`: the minimized crasher the fuzzer found in the
///   chimp decoder (flag `01` with a zero significant-bit count made
///   `trail` 64 and overflowed the shift) — kept as a regression;
/// - `page__payload_bitflip`: a valid page image with one payload bit
///   flipped — must be rejected by the checksum trailer;
/// - `tsfile__bad_magic` / `tsfile__truncated`: file-level corruption;
/// - `partial__*`: partial-state wire-format hostility — truncation, a
///   count field spliced to `u64::MAX`, a hostile embedded-digest
///   centroid count, and a NaN centroid mean;
/// - `proto__*`: network wire-frame hostility — a bad version byte, an
///   unknown frame type, a length prefix of `u32::MAX` (must be
///   rejected from the header, never buffered), a truncated header, a
///   result payload whose column count lies, and an error payload with
///   a non-UTF-8 message.
pub fn emit_corpus(dir: &Path) -> std::io::Result<usize> {
    std::fs::create_dir_all(dir)?;
    let mut written = 0usize;
    let mut emit = |name: String, bytes: &[u8]| -> std::io::Result<()> {
        std::fs::write(dir.join(format!("{name}.bin")), bytes)?;
        written += 1;
        Ok(())
    };

    let ints: Vec<i64> = (0..200i64).map(|i| 1000 + i * 7).collect();
    for enc in INT_CODECS {
        let valid = enc.encode_i64(&ints);
        emit(
            format!("{}__truncated", enc.name()),
            &valid[..valid.len() / 2],
        )?;
        let mut hostile = valid.clone();
        hostile[..4].copy_from_slice(&u32::MAX.to_be_bytes());
        emit(format!("{}__hostile_count", enc.name()), &hostile)?;
    }

    let floats: Vec<f64> = (0..200).map(|i| 20.0 + i as f64 * 0.125).collect();
    for enc in FLOAT_CODECS {
        let valid = enc.encode_f64(&floats);
        emit(
            format!("{}__truncated", enc.name()),
            &valid[..valid.len() / 2],
        )?;
        let mut hostile = valid.clone();
        hostile[..4].copy_from_slice(&u32::MAX.to_be_bytes());
        emit(format!("{}__hostile_count", enc.name()), &hostile)?;
    }

    // Stream VByte hostile control stream: a valid page whose control
    // bytes are all spliced to 0xFF (every delta claims 4 data bytes),
    // so the controls declare far more data than the stream holds — the
    // parser's exact-data-length preflight must reject it, never read
    // past the buffer.
    {
        let valid = Encoding::StreamVByte.encode_i64(&ints);
        let mut hostile = valid.clone();
        let head = etsqp_encoding::stream_vbyte::HEADER_BYTES;
        let n_controls = (ints.len() - 1).div_ceil(4);
        for b in hostile[head..head + n_controls].iter_mut() {
            *b = 0xFF;
        }
        emit("stream_vbyte__hostile_controls".to_string(), &hostile)?;
    }

    // Fuzzer-found chimp crasher, reconstructed bit-exactly: count=2,
    // first value 0.0, then flag 0b01 + lead code 000 + sig 000000.
    // MSB-first: [count:4][first:8][0b01000000, 0b00000000].
    let mut chimp_zero_sig = vec![0u8, 0, 0, 2];
    chimp_zero_sig.extend_from_slice(&[0u8; 8]);
    chimp_zero_sig.extend_from_slice(&[0b0100_0000, 0]);
    emit("chimp__zero_sig".to_string(), &chimp_zero_sig)?;

    let ts: Vec<i64> = (0..256i64).map(|i| 1000 + i * 20).collect();
    let vals: Vec<i64> = (0..256i64).map(|i| 60 + (i % 13)).collect();
    if let Ok(page) = Page::encode(&ts, &vals, Encoding::Ts2Diff, Encoding::DeltaRle) {
        let image = page.to_bytes();
        let mut flipped = image.clone();
        let mid = flipped.len() / 2; // inside a payload chunk
        flipped[mid] ^= 0x10;
        emit("page__payload_bitflip".to_string(), &flipped)?;
        emit("page__truncated".to_string(), &image[..image.len() / 2])?;
    }

    // Partial-state wire format: one valid quantile partial, then the
    // hostile variants the parser must reject as typed errors.
    {
        let mut state = PartialState::new(AggFunc::P95);
        for i in 0..300i64 {
            state.push_tv(1_000 + i * 10, (i * 37) % 211 - 100);
        }
        let valid = state.to_bytes();
        emit("partial__truncated".to_string(), &valid[..valid.len() / 2])?;
        // The count field (offset 32, u64 LE) lies: presence checks must
        // catch a count that disagrees with the digest's weights.
        let mut hostile = valid.clone();
        hostile[32..40].copy_from_slice(&u64::MAX.to_le_bytes());
        emit("partial__hostile_count".to_string(), &hostile)?;
        // The embedded digest trails the fixed fields; locate it by
        // length so the splice targets its leading centroid count and
        // first centroid mean regardless of option-tag layout.
        let dbytes = state
            .digest
            .as_ref()
            .map(|d| d.to_bytes())
            .unwrap_or_default();
        let doff = valid.len() - dbytes.len();
        let mut hostile_m = valid.clone();
        hostile_m[doff..doff + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        emit("partial__hostile_centroids".to_string(), &hostile_m)?;
        let mut nan_mean = valid.clone();
        nan_mean[doff + 4..doff + 12].copy_from_slice(&f64::NAN.to_le_bytes());
        emit("partial__nan_mean".to_string(), &nan_mean)?;
    }

    // Network wire-frame hostility. Each is a deterministic byte-level
    // attack on a different validation step of the frame grammar.
    {
        let valid = proto::encode_frame(FrameType::Query, b"SELECT COUNT(s) FROM s");
        emit("proto__truncated_header".to_string(), &valid[..3])?;
        let mut bad_version = valid.clone();
        bad_version[0] = 0xFF;
        emit("proto__bad_version".to_string(), &bad_version)?;
        let mut bad_type = valid.clone();
        bad_type[1] = 0x7F;
        emit("proto__bad_type".to_string(), &bad_type)?;
        let mut oversized = valid.clone();
        oversized[2..6].copy_from_slice(&u32::MAX.to_le_bytes());
        emit("proto__oversized_len".to_string(), &oversized)?;

        // A result payload whose column count exceeds what the bytes
        // can hold — the preflight must reject before allocating.
        let mut lying = sample_wire_result().encode();
        lying[8..10].copy_from_slice(&u16::MAX.to_le_bytes());
        emit(
            "proto__result_hostile_ncols".to_string(),
            &proto::encode_frame(FrameType::Result, &lying),
        )?;

        // The fuzzer-found result-payload DoS, reconstructed: zero
        // columns with nrows = u32::MAX. Zero-column rows consume no
        // payload bytes, so the per-row byte preflight bounded nothing
        // and the decode loop span 4 billion iterations faulting in
        // gigabytes. Must stay a typed rejection.
        let mut zero_cols = Vec::new();
        zero_cols.extend_from_slice(&0u64.to_le_bytes()); // elapsed_us
        zero_cols.extend_from_slice(&0u16.to_le_bytes()); // ncols = 0
        zero_cols.extend_from_slice(&u32::MAX.to_le_bytes()); // nrows lie
        emit(
            "proto__result_zero_cols".to_string(),
            &proto::encode_frame(FrameType::Result, &zero_cols),
        )?;

        // An error payload whose message bytes are not UTF-8.
        let mut bad_msg = proto::encode_error(ErrorCode::Timeout, 0, "xx");
        let n = bad_msg.len();
        bad_msg[n - 2..].copy_from_slice(&[0xFF, 0xFE]);
        emit(
            "proto__error_bad_utf8".to_string(),
            &proto::encode_frame(FrameType::Error, &bad_msg),
        )?;
    }

    let scratch = std::env::temp_dir().join(format!("etsqp-corpus-{}", std::process::id()));
    std::fs::create_dir_all(&scratch)?;
    let mut rng = Rng::new(1);
    let tsfile_seeds = build_seeds(&Target::TsFileImage, &mut rng, &scratch);
    if let Some(image) = tsfile_seeds.first() {
        emit("tsfile__truncated".to_string(), &image[..image.len() / 2])?;
        let mut bad_magic = image.clone();
        for b in bad_magic.iter_mut().take(4) {
            *b = !*b;
        }
        emit("tsfile__bad_magic".to_string(), &bad_magic)?;
    }
    let _ = std::fs::remove_dir_all(&scratch);
    Ok(written)
}

/// Fuzzer configuration parsed by `main.rs`.
pub struct FuzzConfig {
    /// Total mutation iterations across all targets.
    pub iters: u64,
    /// RNG seed; identical seeds reproduce identical runs.
    pub seed: u64,
    /// Where minimized crashers are written.
    pub corpus_dir: PathBuf,
}

/// Runs the fuzzer; returns the number of invariant violations.
pub fn run(cfg: &FuzzConfig) -> u64 {
    let start = Instant::now();
    let scratch = std::env::temp_dir().join(format!("etsqp-fuzz-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&scratch);

    let mut rng = Rng::new(cfg.seed);
    let targets: Vec<Target> = INT_CODECS
        .iter()
        .map(|&e| Target::Int(e))
        .chain(FLOAT_CODECS.iter().map(|&e| Target::Float(e)))
        .chain([
            Target::PageImage,
            Target::TsFileImage,
            Target::Partial,
            Target::Proto,
        ])
        .collect();
    let seeds: Vec<Vec<Vec<u8>>> = targets
        .iter()
        .map(|t| build_seeds(t, &mut rng, &scratch))
        .collect();

    // Panics are expected to be *absent*; keep the default hook silent
    // during the run so an actual violation prints once, not 20k times.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let mut violations = 0u64;
    let mut executed = 0u64;
    for i in 0..cfg.iters {
        // Round-robin over targets so every decoder gets equal coverage
        // regardless of --iters.
        let t = (i % targets.len() as u64) as usize;
        let target = &targets[t];
        let mut input = if seeds[t].is_empty() || rng.below(16) == 0 {
            Vec::new() // occasionally start from scratch
        } else {
            seeds[t][rng.below(seeds[t].len())].clone()
        };
        // Stack 1..=4 mutations.
        for _ in 0..rng.below(4) + 1 {
            mutate(&mut input, &mut rng);
        }
        executed += 1;
        if std::env::var("ETSQP_FUZZ_TRACE").is_ok() {
            eprintln!("iter {i} target {} len {}", target.name(), input.len());
        }
        if let Verdict::Violation(msg) = check(target, &input, &scratch) {
            violations += 1;
            let min = minimize(target, &input, &scratch);
            let name = format!("{}__{:016x}.bin", target.name(), content_hash(&min));
            let dest = cfg.corpus_dir.join(&name);
            let _ = std::fs::create_dir_all(&cfg.corpus_dir);
            let _ = std::fs::write(&dest, &min);
            eprintln!(
                "fuzz VIOLATION [{}] iter {i}: {msg} ({} bytes, minimized to {}; saved {})",
                target.name(),
                input.len(),
                min.len(),
                dest.display()
            );
        }
    }
    std::panic::set_hook(prev_hook);
    let _ = std::fs::remove_dir_all(&scratch);

    let secs = start.elapsed().as_secs_f64();
    let rate = executed as f64 / secs.max(1e-9);
    if violations == 0 {
        println!(
            "fuzz OK: {executed} iters, {} targets, {secs:.2}s, {rate:.0} execs/sec",
            targets.len()
        );
    } else {
        println!(
            "fuzz FAILED: {violations} violations in {executed} iters ({} targets, {secs:.2}s)",
            targets.len()
        );
    }
    violations
}
