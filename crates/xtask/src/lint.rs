//! The `etsqp-lint` engine: token/line-level static analysis over the
//! workspace's `.rs` files. No external dependencies — a small lexer
//! classifies each line into code/comment/string regions, tracks
//! `#[cfg(test)]` modules by brace depth, and rule passes run over the
//! classified lines.
//!
//! Rules (see DESIGN.md §"Static analysis & model checking"):
//!
//! * `safety-comment` — every `unsafe` keyword needs a `// SAFETY:`
//!   justification (or a `# Safety` doc section) in the contiguous
//!   comment/attribute block above it or on the same line.
//! * `no-panic-paths` — no `unwrap()` / `expect(` / `panic!` /
//!   `unreachable!` / `todo!` / `unimplemented!` in engine hot paths
//!   ([`HOT_FILES`]) or the untrusted-input decode crates
//!   ([`HOT_DIRS`]); error paths must surface `Error` variants.
//! * `no-lossy-cast` — no narrowing `as` casts in accumulator/fused
//!   kernels ([`CAST_FILES`]); use the checked/widening helpers.
//! * `forbid-unsafe` — crates with zero `unsafe` must declare
//!   `#![forbid(unsafe_code)]` at their lib root.
//! * `unsafe-op-in-unsafe-fn` — crates containing `unsafe` must declare
//!   `#![deny(unsafe_op_in_unsafe_fn)]` at their lib root.
//! * `file-size` — no file under `crates/core/src/` may exceed
//!   [`MAX_CORE_FILE_LINES`] lines; oversized modules must be split
//!   (the decomposition that produced `crates/core/src/physical/`).
//! * `no-wrapping-arithmetic` — accumulator updates (`+=` / `*=`) in
//!   the kernel files ([`CAST_FILES`]) must visibly widen (i128/u128)
//!   or use `checked_`/`saturating_` forms; a silently wrapping
//!   accumulator corrupts aggregates instead of erroring (§VI-C).
//! * `lock-order` — lock acquisitions in the ingest path
//!   ([`LOCK_ORDER_SCOPE`]) must follow the declared
//!   shard → series → nothing order: nothing may be acquired while a
//!   series guard is held. This is the static half of the `lockdep`
//!   runtime tracker in `shims/parking_lot`.
//!
//! Escape hatch: `// lint:allow(<rule>) -- <reason>` on the offending
//! line or in the comment block directly above suppresses that rule
//! there. A directive without a reason (or naming an unknown rule) is
//! itself a violation (`lint-allow`), and every use is counted and
//! reported in the summary.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// Engine hot-path files: panics are forbidden, errors must be `Error`s.
pub const HOT_FILES: [&str; 5] = [
    "crates/core/src/exec.rs",
    "crates/core/src/pool.rs",
    "crates/core/src/fused.rs",
    "crates/core/src/decode.rs",
    "crates/core/src/slice.rs",
];

/// Untrusted-input directories: every decode path in these crates faces
/// hostile bytes, so the `no-panic-paths` rule covers them wholesale
/// (the fuzzer enforces the same contract dynamically). The physical IR
/// (including the hot-scan source and plan compiler) rides along: it
/// sits between untrusted pages and the executor, so the same
/// no-panic contract applies. The SIMD kernel layer is included too:
/// every backend consumes byte streams handed up from untrusted pages,
/// so its safe wrappers must reject bad shapes as errors upstream, not
/// panic mid-kernel — and the same goes for the FastLanes and SIMD-boost
/// comparator crates, whose decode entry points take page payloads.
/// The network service crate faces the most hostile input of all —
/// arbitrary bytes from remote peers — so it is covered wholesale: a
/// panic in a frame parser or connection handler is a remote DoS.
pub const HOT_DIRS: [&str; 7] = [
    "crates/encoding/src/",
    "crates/storage/src/",
    "crates/core/src/physical/",
    "crates/simd/src/",
    "crates/fastlanes/src/",
    "crates/sboost/src/",
    "crates/serve/src/",
];

/// Accumulator/fused-kernel files: narrowing `as` casts are forbidden.
pub const CAST_FILES: [&str; 2] = ["crates/core/src/fused.rs", "crates/simd/src/agg.rs"];

/// Narrowing cast targets flagged by `no-lossy-cast`.
const NARROW_TYPES: [&str; 7] = ["u8", "i8", "u16", "i16", "u32", "i32", "f32"];

/// Markers that make an accumulator update visibly non-wrapping: the
/// line widens into 128-bit space or uses an explicit checked form.
const WIDE_MARKERS: [&str; 4] = ["i128", "u128", "checked_", "saturating_"];

/// Files subject to the `lock-order` rule: the sharded ingest path (the
/// locks classified for the runtime lockdep tracker) plus the scheduler
/// pool, which must never reach into storage locks at all.
pub const LOCK_ORDER_SCOPE: [&str; 3] = [
    "crates/storage/src/ingest/",
    "crates/storage/src/store.rs",
    "crates/core/src/pool.rs",
];

/// Files under this path are subject to the `file-size` ceiling.
pub const SIZE_SCOPE: &str = "crates/core/src/";

/// Line ceiling for engine source files (`file-size` rule).
pub const MAX_CORE_FILE_LINES: usize = 800;

/// Rule names accepted by the escape hatch.
pub const RULE_NAMES: [&str; 8] = [
    "safety-comment",
    "no-panic-paths",
    "no-lossy-cast",
    "forbid-unsafe",
    "unsafe-op-in-unsafe-fn",
    "file-size",
    "no-wrapping-arithmetic",
    "lock-order",
];

/// One rule violation at a specific location.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (one of [`RULE_NAMES`] or `lint-allow`).
    pub rule: String,
    /// Human-readable description.
    pub msg: String,
}

/// One use of the `lint:allow` escape hatch.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule being suppressed.
    pub rule: String,
}

/// Result of analysing one file or a whole workspace.
#[derive(Debug, Default)]
pub struct Report {
    /// All violations found, in file/line order.
    pub violations: Vec<Violation>,
    /// All escape-hatch uses (valid directives), in file/line order.
    pub allows: Vec<Allow>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of crates checked for the crate-level rules.
    pub crates_checked: usize,
}

impl Report {
    /// violations grouped by rule, for the one-line CI summary.
    pub fn counts_by_rule(&self) -> BTreeMap<String, usize> {
        let mut m = BTreeMap::new();
        for v in &self.violations {
            *m.entry(v.rule.clone()).or_insert(0) += 1;
        }
        m
    }

    /// allows grouped by rule.
    pub fn allows_by_rule(&self) -> BTreeMap<String, usize> {
        let mut m = BTreeMap::new();
        for a in &self.allows {
            *m.entry(a.rule.clone()).or_insert(0) += 1;
        }
        m
    }
}

// ---------------------------------------------------------------------
// Line classification
// ---------------------------------------------------------------------

/// One source line, split into masked code and comment text.
#[derive(Debug, Default)]
struct Line {
    /// Code with string contents blanked and comments removed.
    code: String,
    /// Comment text on this line (including the `//` / `/*` markers).
    comment: String,
    /// Inside a `#[cfg(test)]` module.
    in_test: bool,
}

#[derive(PartialEq, Eq, Clone, Copy)]
enum LexState {
    Code,
    LineComment,
    /// `doc` marks `/**` / `/*!` doc comments: their text is prose, so
    /// directives inside must stay inert (see [`parse_directive`]).
    BlockComment {
        depth: u32,
        doc: bool,
    },
    Str,
    RawStr(usize),
}

/// Splits source into lines of (masked code, comment text), tolerant of
/// nested block comments, raw strings, and char-vs-lifetime quotes.
fn classify(source: &str) -> Vec<Line> {
    let chars: Vec<char> = source.chars().collect();
    let mut lines = Vec::new();
    let mut cur = Line::default();
    let mut st = LexState::Code;
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            lines.push(std::mem::take(&mut cur));
            if st == LexState::LineComment {
                st = LexState::Code;
            }
            i += 1;
            continue;
        }
        let next = chars.get(i + 1).copied();
        match st {
            LexState::Code => {
                if c == '/' && next == Some('/') {
                    st = LexState::LineComment;
                    cur.comment.push_str("//");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    let doc = matches!(chars.get(i + 2), Some('*') | Some('!'));
                    st = LexState::BlockComment { depth: 1, doc };
                    cur.code.push(' ');
                    i += 2;
                } else if c == '"' {
                    st = LexState::Str;
                    cur.code.push('"');
                    i += 1;
                } else if c == 'b' && next == Some('"') && !prev_is_ident(&chars, i) {
                    // Plain byte string: same escape rules as `"…"`.
                    st = LexState::Str;
                    cur.code.push('"');
                    i += 2;
                } else if is_raw_str_start(&chars, i) {
                    let skip = usize::from(chars[i] == 'b');
                    let hashes = count_hashes(&chars, i + skip + 1);
                    st = LexState::RawStr(hashes);
                    cur.code.push('"');
                    i += skip + 1 + hashes + 1; // [b] r ### "
                } else if c == '\'' {
                    // Char literal vs lifetime heuristic.
                    if next == Some('\\') {
                        // Escaped char literal: scan to the closing quote,
                        // bounded at the newline so malformed input cannot
                        // swallow later lines.
                        let mut j = i + 2;
                        while j < chars.len() && chars[j] != '\'' && chars[j] != '\n' {
                            j += 1;
                        }
                        cur.code.push(' ');
                        i = if chars.get(j) == Some(&'\'') {
                            j + 1
                        } else {
                            j
                        };
                    } else if chars.get(i + 2) == Some(&'\'') {
                        cur.code.push(' ');
                        i += 3;
                    } else {
                        cur.code.push('\'');
                        i += 1;
                    }
                } else {
                    cur.code.push(c);
                    i += 1;
                }
            }
            LexState::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            LexState::BlockComment { depth, doc } => {
                if c == '*' && next == Some('/') {
                    st = if depth == 1 {
                        LexState::Code
                    } else {
                        LexState::BlockComment {
                            depth: depth - 1,
                            doc,
                        }
                    };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    st = LexState::BlockComment {
                        depth: depth + 1,
                        doc,
                    };
                    i += 2;
                } else {
                    // Doc block comments are prose: prefix each line's
                    // comment text with the `///` marker so directive
                    // parsing ignores it (safety-section matching still
                    // sees the text).
                    if doc && cur.comment.is_empty() {
                        cur.comment.push_str("///");
                    }
                    cur.comment.push(c);
                    i += 1;
                }
            }
            LexState::Str => {
                if c == '\\' {
                    // `\<newline>` is a line continuation: consume only
                    // the backslash so the line tracker still sees the
                    // newline (otherwise line numbers drift).
                    i += if next == Some('\n') { 1 } else { 2 };
                } else if c == '"' {
                    cur.code.push('"');
                    st = LexState::Code;
                    i += 1;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
            LexState::RawStr(h) => {
                if c == '"' && (0..h).all(|k| chars.get(i + 1 + k) == Some(&'#')) {
                    cur.code.push('"');
                    st = LexState::Code;
                    i += 1 + h;
                } else {
                    i += 1;
                }
            }
        }
    }
    if !cur.code.is_empty() || !cur.comment.is_empty() {
        lines.push(cur);
    }
    mark_test_regions(&mut lines);
    lines
}

fn is_raw_str_start(chars: &[char], i: usize) -> bool {
    let start = if chars[i] == 'b' {
        if chars.get(i + 1) != Some(&'r') {
            // Plain byte strings (`b"…"`) have escapes; the Code branch
            // routes them through the Str state instead.
            return false;
        }
        i + 1
    } else if chars[i] == 'r' {
        i
    } else {
        return false;
    };
    if prev_is_ident(chars, i) {
        return false;
    }
    let hashes = count_hashes(chars, start + 1);
    chars.get(start + 1 + hashes) == Some(&'"')
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

fn count_hashes(chars: &[char], from: usize) -> usize {
    chars[from..].iter().take_while(|&&c| c == '#').count()
}

/// Marks lines inside `#[cfg(test)]` items by tracking brace depth.
fn mark_test_regions(lines: &mut [Line]) {
    let mut depth = 0usize;
    let mut pending: Option<usize> = None; // saw #[cfg(test)] at this depth
    let mut region: Option<usize> = None; // inside test item opened at depth
    for line in lines.iter_mut() {
        if region.is_some() {
            line.in_test = true;
        }
        if line.code.contains("#[cfg(test)]") && region.is_none() {
            pending = Some(depth);
            line.in_test = true;
        }
        for c in line.code.chars() {
            match c {
                '{' => {
                    if region.is_none() && pending == Some(depth) {
                        region = Some(depth);
                        pending = None;
                        line.in_test = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if region == Some(depth) {
                        region = None;
                        line.in_test = true; // closing brace still test code
                    }
                }
                // `#[cfg(test)] use foo;` — attribute on a braceless item.
                ';' if pending == Some(depth) => pending = None,
                _ => {}
            }
        }
    }
}

// ---------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// `true` if `code` contains `token` delimited by non-identifier chars.
fn has_token(code: &str, token: &str) -> bool {
    let bytes = code.as_bytes();
    let mut start = 0;
    while let Some(p) = code[start..].find(token) {
        let abs = start + p;
        let end = abs + token.len();
        let before_ok = abs == 0 || !is_ident_byte(bytes[abs - 1]);
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        start = end;
    }
    false
}

/// First narrowing `as <ty>` cast on the line, if any.
fn narrowing_cast(code: &str) -> Option<&'static str> {
    let bytes = code.as_bytes();
    let mut start = 0;
    while let Some(p) = code[start..].find("as") {
        let abs = start + p;
        let end = abs + 2;
        let boundary = (abs == 0 || !is_ident_byte(bytes[abs - 1]))
            && (end >= bytes.len() || !is_ident_byte(bytes[end]));
        start = end;
        if !boundary {
            continue;
        }
        let rest = code[end..].trim_start();
        let ty: String = rest
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if let Some(t) = NARROW_TYPES.iter().find(|t| **t == ty) {
            return Some(t);
        }
    }
    None
}

/// Position of the first shard-map lock acquisition on the line, if
/// any: a direct shard `RwLock` access or a [`ShardMap`] wrapper method
/// that takes one internally.
fn shard_acquisition(code: &str) -> Option<usize> {
    [
        "map.read()",
        "map.write()",
        "map.get(",
        "map.get_or_insert(",
        "map.names()",
    ]
    .iter()
    .filter_map(|p| code.find(p))
    .min()
}

/// Position of the first per-series mutex acquisition on the line.
fn series_acquisition(code: &str) -> Option<usize> {
    code.find("state.lock()")
}

/// Comment-only or attribute-only lines continue the lookback block
/// above an `unsafe` site / allow target.
fn continues_block(line: &Line) -> bool {
    let code = line.code.trim();
    if code.is_empty() {
        return !line.comment.is_empty();
    }
    code.starts_with("#[") || code.starts_with("#![")
}

const LOOKBACK: usize = 40;

/// Does line `i` (or its contiguous comment/attribute block above)
/// satisfy predicate `p` over comment text?
fn block_above_matches(lines: &[Line], i: usize, p: impl Fn(&str) -> bool) -> bool {
    if p(&lines[i].comment) {
        return true;
    }
    let mut j = i;
    let floor = i.saturating_sub(LOOKBACK);
    while j > floor {
        j -= 1;
        if !continues_block(&lines[j]) {
            return false;
        }
        if p(&lines[j].comment) {
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------------
// Escape hatch
// ---------------------------------------------------------------------

enum Directive {
    /// Well-formed: rules + reason present.
    Allow(Vec<String>),
    /// Malformed: error message.
    Bad(String),
}

/// Parses `lint:allow(rule-a, rule-b) -- reason` out of comment text.
///
/// Directives are only recognised in plain `//` comments: doc comments
/// (`///`, `//!`) are prose — text *describing* the directive syntax
/// must not activate (or half-activate) it.
fn parse_directive(comment: &str) -> Option<Directive> {
    let t = comment.trim_start();
    if t.starts_with("///") || t.starts_with("//!") {
        return None;
    }
    let at = comment.find("lint:allow")?;
    let rest = &comment[at + "lint:allow".len()..];
    let Some(open) = rest.find('(') else {
        return Some(Directive::Bad("missing '(' after lint:allow".into()));
    };
    let Some(close) = rest.find(')') else {
        return Some(Directive::Bad("missing ')' in lint:allow".into()));
    };
    if open > close {
        return Some(Directive::Bad("malformed lint:allow parentheses".into()));
    }
    let rules: Vec<String> = rest[open + 1..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return Some(Directive::Bad("lint:allow names no rule".into()));
    }
    for r in &rules {
        if !RULE_NAMES.contains(&r.as_str()) {
            return Some(Directive::Bad(format!("unknown rule '{r}' in lint:allow")));
        }
    }
    let tail = &rest[close + 1..];
    let Some(dash) = tail.find("--") else {
        return Some(Directive::Bad(
            "lint:allow requires a reason: `-- <why this is sound>`".into(),
        ));
    };
    if tail[dash + 2..].trim().is_empty() {
        return Some(Directive::Bad("lint:allow reason is empty".into()));
    }
    Some(Directive::Allow(rules))
}

// ---------------------------------------------------------------------
// Per-file analysis
// ---------------------------------------------------------------------

/// Panic-y constructs forbidden in hot paths.
const PANIC_TOKENS: [(&str, &str); 6] = [
    (".unwrap()", "unwrap() panics"),
    (".expect(", "expect() panics"),
    ("panic!", "explicit panic!"),
    ("unreachable!", "unreachable! panics"),
    ("todo!", "todo! panics"),
    ("unimplemented!", "unimplemented! panics"),
];

/// Runs the line-level rules over one file's source. `rel_path` selects
/// which path-scoped rules apply (hot paths, cast files).
pub fn analyze_source(rel_path: &str, source: &str) -> Report {
    let lines = classify(source);
    let mut report = Report {
        files_scanned: 1,
        ..Report::default()
    };

    // Collect escape-hatch directives (and flag malformed ones).
    let mut allows_at: Vec<Vec<String>> = vec![Vec::new(); lines.len()];
    for (i, line) in lines.iter().enumerate() {
        match parse_directive(&line.comment) {
            Some(Directive::Allow(rules)) => {
                for r in &rules {
                    report.allows.push(Allow {
                        file: rel_path.to_string(),
                        line: i + 1,
                        rule: r.clone(),
                    });
                }
                allows_at[i] = rules;
            }
            Some(Directive::Bad(msg)) => report.violations.push(Violation {
                file: rel_path.to_string(),
                line: i + 1,
                rule: "lint-allow".into(),
                msg,
            }),
            None => {}
        }
    }
    // A directive suppresses a rule on its own line or anywhere in the
    // contiguous comment/attribute block directly above the violation.
    let allowed = |i: usize, rule: &str| -> bool {
        if allows_at[i].iter().any(|r| r == rule) {
            return true;
        }
        let mut j = i;
        let floor = i.saturating_sub(LOOKBACK);
        while j > floor {
            j -= 1;
            if !continues_block(&lines[j]) {
                return false;
            }
            if allows_at[j].iter().any(|r| r == rule) {
                return true;
            }
        }
        false
    };

    // Rule: file-size (engine modules must stay decomposed). The count
    // is physical source lines, tests included — test bulk is still
    // bulk the next reader scrolls past. The escape hatch is accepted
    // anywhere in the file (it is a file-level property).
    if rel_path.contains(SIZE_SCOPE) {
        let n = source.lines().count();
        let allowed_anywhere = allows_at
            .iter()
            .any(|rs| rs.iter().any(|r| r == "file-size"));
        if n > MAX_CORE_FILE_LINES && !allowed_anywhere {
            report.violations.push(Violation {
                file: rel_path.to_string(),
                line: n,
                rule: "file-size".into(),
                msg: format!(
                    "{n} lines exceeds the {MAX_CORE_FILE_LINES}-line ceiling for {SIZE_SCOPE} \
                     files; split the module"
                ),
            });
        }
    }

    // Rule: safety-comment (all files, tests included).
    for (i, line) in lines.iter().enumerate() {
        if !has_token(&line.code, "unsafe") {
            continue;
        }
        let justified = block_above_matches(&lines, i, |c| {
            c.contains("SAFETY:") || c.contains("# Safety")
        });
        if !justified && !allowed(i, "safety-comment") {
            report.violations.push(Violation {
                file: rel_path.to_string(),
                line: i + 1,
                rule: "safety-comment".into(),
                msg: "`unsafe` without a `// SAFETY:` justification (or `# Safety` doc section)"
                    .into(),
            });
        }
    }

    // Rule: no-panic-paths (hot files + untrusted-input decode crates,
    // non-test code only).
    if HOT_FILES.iter().any(|f| rel_path.ends_with(f))
        || HOT_DIRS.iter().any(|d| rel_path.contains(d))
    {
        for (i, line) in lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            for (tok, why) in PANIC_TOKENS {
                if line.code.contains(tok) && !allowed(i, "no-panic-paths") {
                    report.violations.push(Violation {
                        file: rel_path.to_string(),
                        line: i + 1,
                        rule: "no-panic-paths".into(),
                        msg: format!("{why} in an engine hot path; return an Error variant"),
                    });
                }
            }
        }
    }

    // Rule: no-lossy-cast (accumulator/fused kernels, non-test code).
    if CAST_FILES.iter().any(|f| rel_path.ends_with(f)) {
        for (i, line) in lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            if let Some(ty) = narrowing_cast(&line.code) {
                if !allowed(i, "no-lossy-cast") {
                    report.violations.push(Violation {
                        file: rel_path.to_string(),
                        line: i + 1,
                        rule: "no-lossy-cast".into(),
                        msg: format!(
                            "narrowing `as {ty}` cast in a kernel; use a checked/widening helper"
                        ),
                    });
                }
            }
        }
    }

    // Rule: no-wrapping-arithmetic (accumulator kernels, non-test code).
    // Compound updates must visibly widen or use a checked form; the
    // rule is line-local by design, so an i128 accumulator whose type
    // is declared elsewhere needs the widening spelled at the update.
    if CAST_FILES.iter().any(|f| rel_path.ends_with(f)) {
        for (i, line) in lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            let code = &line.code;
            if !(code.contains("+=") || code.contains("*=")) {
                continue;
            }
            if WIDE_MARKERS.iter().any(|m| code.contains(m)) {
                continue;
            }
            if !allowed(i, "no-wrapping-arithmetic") {
                report.violations.push(Violation {
                    file: rel_path.to_string(),
                    line: i + 1,
                    rule: "no-wrapping-arithmetic".into(),
                    msg: "unchecked accumulator update in a kernel; widen to i128/u128 or use a \
                          checked_/saturating_ form"
                        .into(),
                });
            }
        }
    }

    // Rule: lock-order (static half of the lockdep runtime tracker).
    // Extracts lock-acquisition sites and enforces the declared
    // shard → series → nothing order: while a bound series guard is
    // live, no classified lock may be acquired, and a single expression
    // must not chain series-then-shard. Guard liveness is approximated
    // by brace depth: a `let`-bound guard dies when its block closes.
    if LOCK_ORDER_SCOPE.iter().any(|s| rel_path.contains(s)) {
        let mut depth = 0usize;
        let mut series_held: Option<usize> = None; // depth where guard was bound
        for (i, line) in lines.iter().enumerate() {
            let code = line.code.as_str();
            if !line.in_test {
                if let (Some(sp), Some(shp)) = (series_acquisition(code), shard_acquisition(code)) {
                    if sp < shp && !allowed(i, "lock-order") {
                        report.violations.push(Violation {
                            file: rel_path.to_string(),
                            line: i + 1,
                            rule: "lock-order".into(),
                            msg: "series mutex acquired before a shard lock in one expression; \
                                  the declared order is shard \u{2192} series"
                                .into(),
                        });
                    }
                }
                if series_held.is_some()
                    && (shard_acquisition(code).is_some() || series_acquisition(code).is_some())
                    && !allowed(i, "lock-order")
                {
                    report.violations.push(Violation {
                        file: rel_path.to_string(),
                        line: i + 1,
                        rule: "lock-order".into(),
                        msg: "lock acquired while a series guard is held; the declared order is \
                              shard \u{2192} series \u{2192} nothing"
                            .into(),
                    });
                }
                if series_held.is_none()
                    && series_acquisition(code).is_some()
                    && code.trim_start().starts_with("let ")
                {
                    series_held = Some(depth);
                }
            }
            for c in code.chars() {
                match c {
                    '{' => depth += 1,
                    '}' => {
                        depth = depth.saturating_sub(1);
                        if series_held.is_some_and(|d| depth < d) {
                            series_held = None;
                        }
                    }
                    _ => {}
                }
            }
            // An explicit drop() releases the guard early; coarse but
            // matches the ingest idiom (guards are dropped, not leaked).
            if series_held.is_some() && code.contains("drop(") {
                series_held = None;
            }
        }
    }

    report.violations.sort_by_key(|v| v.line);
    report
}

// ---------------------------------------------------------------------
// Crate-level rules + workspace walk
// ---------------------------------------------------------------------

fn walk_rs_files(dir: &Path, out: &mut Vec<PathBuf>, manifests: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" || name == "fixtures" {
                continue;
            }
            walk_rs_files(&path, out, manifests);
        } else if name == "Cargo.toml" {
            manifests.push(path);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// `true` when any line of `source` uses the `unsafe` keyword.
fn source_has_unsafe(source: &str) -> bool {
    classify(source)
        .iter()
        .any(|l| has_token(&l.code, "unsafe"))
}

fn crate_rule_violation(
    lib_root_rel: &str,
    lib_src: &str,
    has_unsafe: bool,
) -> Option<(String, String)> {
    let lines = classify(lib_src);
    let attr_present = |attr: &str| lines.iter().any(|l| l.code.contains(attr));
    let allow_present = |rule: &str| {
        lines.iter().any(|l| {
            matches!(parse_directive(&l.comment),
                     Some(Directive::Allow(rules)) if rules.iter().any(|r| r == rule))
        })
    };
    if !has_unsafe {
        if !attr_present("#![forbid(unsafe_code)]") && !allow_present("forbid-unsafe") {
            return Some((
                "forbid-unsafe".into(),
                format!(
                    "crate has no unsafe code but {lib_root_rel} lacks #![forbid(unsafe_code)]"
                ),
            ));
        }
    } else if !attr_present("#![deny(unsafe_op_in_unsafe_fn)]")
        && !allow_present("unsafe-op-in-unsafe-fn")
    {
        return Some((
            "unsafe-op-in-unsafe-fn".into(),
            format!("crate uses unsafe but {lib_root_rel} lacks #![deny(unsafe_op_in_unsafe_fn)]"),
        ));
    }
    None
}

fn rel(root: &Path, p: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Lints every `.rs` file under `root` plus the crate-level rules for
/// every `Cargo.toml` package found.
pub fn lint_workspace(root: &Path) -> Report {
    let mut files = Vec::new();
    let mut manifests = Vec::new();
    walk_rs_files(root, &mut files, &mut manifests);
    files.sort();
    manifests.sort();

    let mut report = Report::default();
    for path in &files {
        let Ok(src) = fs::read_to_string(path) else {
            continue;
        };
        let r = analyze_source(&rel(root, path), &src);
        report.files_scanned += 1;
        report.violations.extend(r.violations);
        report.allows.extend(r.allows);
    }

    for manifest in &manifests {
        let dir = manifest.parent().unwrap_or(root);
        let lib_root = ["src/lib.rs", "src/main.rs"]
            .iter()
            .map(|p| dir.join(p))
            .find(|p| p.is_file());
        let Some(lib_root) = lib_root else {
            continue; // virtual manifest (workspace root without lib/main)
        };
        let src_dir = dir.join("src");
        let has_unsafe = files
            .iter()
            .filter(|f| f.starts_with(&src_dir))
            .filter_map(|f| fs::read_to_string(f).ok())
            .any(|s| source_has_unsafe(&s));
        report.crates_checked += 1;
        let lib_rel = rel(root, &lib_root);
        if let Ok(lib_src) = fs::read_to_string(&lib_root) {
            if let Some((rule, msg)) = crate_rule_violation(&lib_rel, &lib_src, has_unsafe) {
                report.violations.push(Violation {
                    file: lib_rel,
                    line: 1,
                    rule,
                    msg,
                });
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOT: &str = "crates/core/src/exec.rs";
    const KERNEL: &str = "crates/core/src/fused.rs";

    fn rules_fired(report: &Report) -> Vec<String> {
        report.violations.iter().map(|v| v.rule.clone()).collect()
    }

    // -- fixtures: each rule must fire on the bad snippet and stay
    //    silent on the good one. Fixture sources live outside `.rs`
    //    files so the linter does not flag its own test data.

    #[test]
    fn safety_comment_fires_on_bad_and_passes_good() {
        let bad = include_str!("../fixtures/safety_bad.rs.txt");
        let good = include_str!("../fixtures/safety_good.rs.txt");
        let r = analyze_source("crates/demo/src/lib.rs", bad);
        assert!(
            rules_fired(&r).contains(&"safety-comment".to_string()),
            "expected safety-comment violation: {r:?}"
        );
        let r = analyze_source("crates/demo/src/lib.rs", good);
        assert!(r.violations.is_empty(), "good fixture flagged: {r:?}");
    }

    #[test]
    fn no_panic_paths_fires_on_bad_and_passes_good() {
        let bad = include_str!("../fixtures/panic_bad.rs.txt");
        let good = include_str!("../fixtures/panic_good.rs.txt");
        let r = analyze_source(HOT, bad);
        let fired = rules_fired(&r);
        // One violation per panic-y construct in the fixture.
        assert!(
            fired.iter().filter(|r| *r == "no-panic-paths").count() >= 4,
            "expected several no-panic-paths violations: {r:?}"
        );
        let r = analyze_source(HOT, good);
        assert!(r.violations.is_empty(), "good fixture flagged: {r:?}");
        // The same bad source in a non-hot file is fine.
        let r = analyze_source("crates/bench/src/lib.rs", bad);
        assert!(!rules_fired(&r).contains(&"no-panic-paths".to_string()));
    }

    #[test]
    fn no_panic_paths_covers_untrusted_decode_dirs() {
        let bad = include_str!("../fixtures/panic_bad.rs.txt");
        for path in [
            "crates/encoding/src/gorilla.rs",
            "crates/storage/src/page.rs",
            "crates/simd/src/backend.rs",
            "crates/fastlanes/src/lib.rs",
            "crates/sboost/src/lib.rs",
        ] {
            let r = analyze_source(path, bad);
            assert!(
                rules_fired(&r).contains(&"no-panic-paths".to_string()),
                "decode dir {path} must be covered: {r:?}"
            );
        }
    }

    #[test]
    fn no_lossy_cast_fires_on_bad_and_passes_good() {
        let bad = include_str!("../fixtures/cast_bad.rs.txt");
        let good = include_str!("../fixtures/cast_good.rs.txt");
        let r = analyze_source(KERNEL, bad);
        assert!(
            rules_fired(&r).contains(&"no-lossy-cast".to_string()),
            "expected no-lossy-cast violation: {r:?}"
        );
        let r = analyze_source(KERNEL, good);
        assert!(r.violations.is_empty(), "good fixture flagged: {r:?}");
        let r = analyze_source("crates/core/src/sql.rs", bad);
        assert!(!rules_fired(&r).contains(&"no-lossy-cast".to_string()));
    }

    #[test]
    fn escape_hatch_suppresses_counts_and_requires_reason() {
        let ok = include_str!("../fixtures/allow_ok.rs.txt");
        let bad = include_str!("../fixtures/allow_missing_reason.rs.txt");
        let r = analyze_source(HOT, ok);
        assert!(r.violations.is_empty(), "allowed line still flagged: {r:?}");
        assert_eq!(r.allows.len(), 2, "both uses counted: {r:?}");
        let r = analyze_source(HOT, bad);
        let fired = rules_fired(&r);
        assert!(
            fired.contains(&"lint-allow".to_string()),
            "reason-less allow must be flagged: {r:?}"
        );
        assert!(
            fired.contains(&"no-panic-paths".to_string()),
            "malformed allow must not suppress: {r:?}"
        );
    }

    #[test]
    fn doc_comments_describing_the_directive_are_inert() {
        // Prose documentation of the escape-hatch syntax (as in this
        // module's own docs) is neither a directive nor a malformed one.
        let src = "\
//! Escape hatch: `// lint:allow(<rule>) -- <reason>` suppresses a rule.

/// One use of the `lint:allow` escape hatch.
pub fn f(v: &[i64]) -> i64 {
    v[0].wrapping_add(1)
}
";
        let r = analyze_source(HOT, src);
        assert!(r.violations.is_empty(), "{r:?}");
        assert!(r.allows.is_empty(), "{r:?}");
    }

    #[test]
    fn cfg_test_modules_are_exempt_from_hot_path_rules() {
        let src = include_str!("../fixtures/cfg_test_ok.rs.txt");
        let r = analyze_source(HOT, src);
        assert!(r.violations.is_empty(), "test-module unwrap flagged: {r:?}");
    }

    #[test]
    fn forbid_unsafe_rule_fires_and_passes() {
        let clean_missing = "pub fn f() {}\n";
        let v = crate_rule_violation("crates/demo/src/lib.rs", clean_missing, false);
        assert_eq!(v.expect("must fire").0, "forbid-unsafe");
        let clean_present = "#![forbid(unsafe_code)]\npub fn f() {}\n";
        assert!(crate_rule_violation("x/src/lib.rs", clean_present, false).is_none());
        // Escape hatch at crate level.
        let allowed = "// lint:allow(forbid-unsafe) -- proc-macro target pending\npub fn f() {}\n";
        assert!(crate_rule_violation("x/src/lib.rs", allowed, false).is_none());
    }

    #[test]
    fn unsafe_op_in_unsafe_fn_rule_fires_and_passes() {
        let missing = "pub fn f() {}\n";
        let v = crate_rule_violation("crates/demo/src/lib.rs", missing, true);
        assert_eq!(v.expect("must fire").0, "unsafe-op-in-unsafe-fn");
        let present = "#![deny(unsafe_op_in_unsafe_fn)]\npub fn f() {}\n";
        assert!(crate_rule_violation("x/src/lib.rs", present, true).is_none());
    }

    #[test]
    fn file_size_fires_over_ceiling_in_core_only() {
        let over: String = "fn f() {}\n".repeat(MAX_CORE_FILE_LINES + 1);
        let r = analyze_source("crates/core/src/big.rs", &over);
        let fired = rules_fired(&r);
        assert!(
            fired.contains(&"file-size".to_string()),
            "oversized core file must be flagged: {r:?}"
        );
        // Exactly at the ceiling is fine.
        let at: String = "fn f() {}\n".repeat(MAX_CORE_FILE_LINES);
        let r = analyze_source("crates/core/src/big.rs", &at);
        assert!(r.violations.is_empty(), "{r:?}");
        // The same bulk outside the scope is fine.
        let r = analyze_source("crates/simd/src/big.rs", &over);
        assert!(!rules_fired(&r).contains(&"file-size".to_string()));
    }

    #[test]
    fn file_size_escape_hatch_suppresses_and_is_counted() {
        let mut src =
            String::from("// lint:allow(file-size) -- generated lookup tables, split is churn\n");
        src.push_str(&"fn f() {}\n".repeat(MAX_CORE_FILE_LINES + 10));
        let r = analyze_source("crates/core/src/big.rs", &src);
        assert!(r.violations.is_empty(), "allowed file still flagged: {r:?}");
        assert_eq!(r.allows.len(), 1, "escape hatch must be counted: {r:?}");
        assert_eq!(r.allows[0].rule, "file-size");
    }

    #[test]
    fn no_wrapping_arithmetic_fires_on_bad_and_passes_good() {
        let bad = include_str!("../fixtures/wrapping_bad.rs.txt");
        let good = include_str!("../fixtures/wrapping_good.rs.txt");
        let r = analyze_source(KERNEL, bad);
        let fired = rules_fired(&r);
        assert_eq!(
            fired
                .iter()
                .filter(|r| *r == "no-wrapping-arithmetic")
                .count(),
            3,
            "one violation per unchecked update: {r:?}"
        );
        let r = analyze_source(KERNEL, good);
        assert!(r.violations.is_empty(), "good fixture flagged: {r:?}");
        // The same source outside the kernel files is fine.
        let r = analyze_source("crates/core/src/sql.rs", bad);
        assert!(!rules_fired(&r).contains(&"no-wrapping-arithmetic".to_string()));
    }

    #[test]
    fn lock_order_fires_on_inversion_and_passes_ordered() {
        let bad = include_str!("../fixtures/lock_order_bad.rs.txt");
        let good = include_str!("../fixtures/lock_order_good.rs.txt");
        let scoped = "crates/storage/src/ingest/shard.rs";
        let r = analyze_source(scoped, bad);
        let fired = rules_fired(&r);
        assert_eq!(
            fired.iter().filter(|r| *r == "lock-order").count(),
            2,
            "held-guard and same-expression inversions must both fire: {r:?}"
        );
        let r = analyze_source(scoped, good);
        assert!(r.violations.is_empty(), "good fixture flagged: {r:?}");
        // The same source outside the lock-order scope is fine.
        let r = analyze_source("crates/core/src/exec.rs", bad);
        assert!(!rules_fired(&r).contains(&"lock-order".to_string()));
    }

    #[test]
    fn lock_order_covers_store_and_pool() {
        let bad = include_str!("../fixtures/lock_order_bad.rs.txt");
        for path in ["crates/storage/src/store.rs", "crates/core/src/pool.rs"] {
            let r = analyze_source(path, bad);
            assert!(
                rules_fired(&r).contains(&"lock-order".to_string()),
                "{path} must be in the lock-order scope: {r:?}"
            );
        }
    }

    // -- classifier unit coverage --

    #[test]
    fn byte_strings_are_masked_without_swallowing_code() {
        // The empty byte string used to overshoot its closing quote and
        // mask real code; the escaped quote used to end the literal
        // early and leave the rest of the line inside a string.
        let src = "let b = b\"\"; x.unwrap();\nlet c = b\"q\\\"uote\"; y.unwrap();\n";
        let r = analyze_source(HOT, src);
        let fired = rules_fired(&r);
        assert_eq!(
            fired.iter().filter(|r| *r == "no-panic-paths").count(),
            2,
            "unwraps after byte strings must be seen: {r:?}"
        );
        // Byte raw strings still mask their contents.
        let src = "let r = br#\"panic! .unwrap()\"#; z.unwrap();\n";
        let r = analyze_source(HOT, src);
        assert_eq!(
            rules_fired(&r)
                .iter()
                .filter(|r| *r == "no-panic-paths")
                .count(),
            1,
            "{r:?}"
        );
    }

    #[test]
    fn string_line_continuations_do_not_shift_line_numbers() {
        let src = "let s = \"line\\\n continued\";\nbad.unwrap();\n";
        let r = analyze_source(HOT, src);
        assert_eq!(r.violations.len(), 1, "{r:?}");
        assert_eq!(
            r.violations[0].line, 3,
            "the `\\<newline>` continuation must still count a line: {r:?}"
        );
    }

    #[test]
    fn unterminated_char_escape_stops_at_newline() {
        // Malformed input: `'\` with no closing quote on the line. The
        // scan used to run to the next quote anywhere in the file,
        // swallowing the following lines.
        let src = "let bad = '\\\nstill.unwrap();\n";
        let r = analyze_source(HOT, src);
        assert_eq!(
            rules_fired(&r)
                .iter()
                .filter(|r| *r == "no-panic-paths")
                .count(),
            1,
            "the line after the malformed literal must be classified: {r:?}"
        );
    }

    #[test]
    fn doc_block_comments_are_inert_for_directives() {
        let src = "\
/** Escape hatch: `lint:allow(no-panic-paths) -- reason` suppresses. */
pub fn f(o: Option<i64>) -> i64 {
    o.unwrap()
}
";
        let r = analyze_source(HOT, src);
        assert!(r.allows.is_empty(), "doc prose must not activate: {r:?}");
        assert!(
            rules_fired(&r).contains(&"no-panic-paths".to_string()),
            "doc prose must not suppress: {r:?}"
        );
    }

    #[test]
    fn doc_block_safety_section_still_satisfies_safety_comment() {
        let src = "\
/*! module prose */
/** Does spooky things.
# Safety
Caller must uphold X. */
pub unsafe fn spooky() {}
";
        let r = analyze_source("crates/demo/src/lib.rs", src);
        assert!(r.violations.is_empty(), "{r:?}");
    }

    #[test]
    fn nested_block_comments_mask_panic_tokens() {
        let src = "/* outer /* inner panic! */ still comment .unwrap() */\nlet x = 1;\n";
        let r = analyze_source(HOT, src);
        assert!(r.violations.is_empty(), "{r:?}");
    }

    #[test]
    fn strings_and_comments_are_masked() {
        let src = "let s = \"unsafe .unwrap() panic!\"; // unsafe in comment\n";
        let lines = classify(src);
        assert!(!has_token(&lines[0].code, "unsafe"));
        assert!(!lines[0].code.contains(".unwrap()"));
        assert!(lines[0].comment.contains("unsafe"));
    }

    #[test]
    fn raw_strings_and_lifetimes_are_handled() {
        let src =
            "fn f<'a>(x: &'a str) { let q = r#\"unsafe \"quoted\" panic!\"#; let c = 'u'; }\n";
        let lines = classify(src);
        assert!(!has_token(&lines[0].code, "unsafe"));
        assert!(!lines[0].code.contains("panic!"));
        assert!(lines[0].code.contains("<'a>"));
    }

    #[test]
    fn unwrap_or_variants_are_not_flagged() {
        let src = "let x = a.unwrap_or(0);\nlet y = b.unwrap_or_else(|| 1);\nlet z = c.unwrap_or_default();\n";
        let r = analyze_source(HOT, src);
        assert!(r.violations.is_empty(), "{r:?}");
    }

    #[test]
    fn unsafe_code_attr_is_not_an_unsafe_keyword() {
        let src = "#![forbid(unsafe_code)]\n#![deny(unsafe_op_in_unsafe_fn)]\n";
        let r = analyze_source("shims/bytes/src/lib.rs", src);
        assert!(r.violations.is_empty(), "{r:?}");
        assert!(!source_has_unsafe(src));
    }

    #[test]
    fn doc_safety_section_satisfies_safety_comment() {
        let src = "\
/// Does spooky things.
///
/// # Safety
///
/// Caller must uphold X.
#[inline]
pub unsafe fn spooky() {}
";
        let r = analyze_source("crates/demo/src/lib.rs", src);
        assert!(r.violations.is_empty(), "{r:?}");
    }
}
