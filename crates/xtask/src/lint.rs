//! The `etsqp-lint` engine: token/line-level static analysis over the
//! workspace's `.rs` files. No external dependencies — a small lexer
//! classifies each line into code/comment/string regions, tracks
//! `#[cfg(test)]` modules by brace depth, and rule passes run over the
//! classified lines.
//!
//! Rules (see DESIGN.md §"Static analysis & model checking"):
//!
//! * `safety-comment` — every `unsafe` keyword needs a `// SAFETY:`
//!   justification (or a `# Safety` doc section) in the contiguous
//!   comment/attribute block above it or on the same line.
//! * `no-panic-paths` — no `unwrap()` / `expect(` / `panic!` /
//!   `unreachable!` / `todo!` / `unimplemented!` in engine hot paths
//!   ([`HOT_FILES`]) or the untrusted-input decode crates
//!   ([`HOT_DIRS`]); error paths must surface `Error` variants.
//! * `no-lossy-cast` — no narrowing `as` casts in accumulator/fused
//!   kernels ([`CAST_FILES`]); use the checked/widening helpers.
//! * `forbid-unsafe` — crates with zero `unsafe` must declare
//!   `#![forbid(unsafe_code)]` at their lib root.
//! * `unsafe-op-in-unsafe-fn` — crates containing `unsafe` must declare
//!   `#![deny(unsafe_op_in_unsafe_fn)]` at their lib root.
//! * `file-size` — no file under `crates/core/src/` may exceed
//!   [`MAX_CORE_FILE_LINES`] lines; oversized modules must be split
//!   (the decomposition that produced `crates/core/src/physical/`).
//!
//! Escape hatch: `// lint:allow(<rule>) -- <reason>` on the offending
//! line or in the comment block directly above suppresses that rule
//! there. A directive without a reason (or naming an unknown rule) is
//! itself a violation (`lint-allow`), and every use is counted and
//! reported in the summary.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// Engine hot-path files: panics are forbidden, errors must be `Error`s.
pub const HOT_FILES: [&str; 5] = [
    "crates/core/src/exec.rs",
    "crates/core/src/pool.rs",
    "crates/core/src/fused.rs",
    "crates/core/src/decode.rs",
    "crates/core/src/slice.rs",
];

/// Untrusted-input directories: every decode path in these crates faces
/// hostile bytes, so the `no-panic-paths` rule covers them wholesale
/// (the fuzzer enforces the same contract dynamically). The physical IR
/// (including the hot-scan source and plan compiler) rides along: it
/// sits between untrusted pages and the executor, so the same
/// no-panic contract applies. The SIMD kernel layer is included too:
/// every backend consumes byte streams handed up from untrusted pages,
/// so its safe wrappers must reject bad shapes as errors upstream, not
/// panic mid-kernel.
pub const HOT_DIRS: [&str; 4] = [
    "crates/encoding/src/",
    "crates/storage/src/",
    "crates/core/src/physical/",
    "crates/simd/src/",
];

/// Accumulator/fused-kernel files: narrowing `as` casts are forbidden.
pub const CAST_FILES: [&str; 2] = ["crates/core/src/fused.rs", "crates/simd/src/agg.rs"];

/// Narrowing cast targets flagged by `no-lossy-cast`.
const NARROW_TYPES: [&str; 7] = ["u8", "i8", "u16", "i16", "u32", "i32", "f32"];

/// Files under this path are subject to the `file-size` ceiling.
pub const SIZE_SCOPE: &str = "crates/core/src/";

/// Line ceiling for engine source files (`file-size` rule).
pub const MAX_CORE_FILE_LINES: usize = 800;

/// Rule names accepted by the escape hatch.
pub const RULE_NAMES: [&str; 6] = [
    "safety-comment",
    "no-panic-paths",
    "no-lossy-cast",
    "forbid-unsafe",
    "unsafe-op-in-unsafe-fn",
    "file-size",
];

/// One rule violation at a specific location.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (one of [`RULE_NAMES`] or `lint-allow`).
    pub rule: String,
    /// Human-readable description.
    pub msg: String,
}

/// One use of the `lint:allow` escape hatch.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule being suppressed.
    pub rule: String,
}

/// Result of analysing one file or a whole workspace.
#[derive(Debug, Default)]
pub struct Report {
    /// All violations found, in file/line order.
    pub violations: Vec<Violation>,
    /// All escape-hatch uses (valid directives), in file/line order.
    pub allows: Vec<Allow>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of crates checked for the crate-level rules.
    pub crates_checked: usize,
}

impl Report {
    /// violations grouped by rule, for the one-line CI summary.
    pub fn counts_by_rule(&self) -> BTreeMap<String, usize> {
        let mut m = BTreeMap::new();
        for v in &self.violations {
            *m.entry(v.rule.clone()).or_insert(0) += 1;
        }
        m
    }

    /// allows grouped by rule.
    pub fn allows_by_rule(&self) -> BTreeMap<String, usize> {
        let mut m = BTreeMap::new();
        for a in &self.allows {
            *m.entry(a.rule.clone()).or_insert(0) += 1;
        }
        m
    }
}

// ---------------------------------------------------------------------
// Line classification
// ---------------------------------------------------------------------

/// One source line, split into masked code and comment text.
#[derive(Debug, Default)]
struct Line {
    /// Code with string contents blanked and comments removed.
    code: String,
    /// Comment text on this line (including the `//` / `/*` markers).
    comment: String,
    /// Inside a `#[cfg(test)]` module.
    in_test: bool,
}

#[derive(PartialEq, Eq, Clone, Copy)]
enum LexState {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(usize),
}

/// Splits source into lines of (masked code, comment text), tolerant of
/// nested block comments, raw strings, and char-vs-lifetime quotes.
fn classify(source: &str) -> Vec<Line> {
    let chars: Vec<char> = source.chars().collect();
    let mut lines = Vec::new();
    let mut cur = Line::default();
    let mut st = LexState::Code;
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            lines.push(std::mem::take(&mut cur));
            if st == LexState::LineComment {
                st = LexState::Code;
            }
            i += 1;
            continue;
        }
        let next = chars.get(i + 1).copied();
        match st {
            LexState::Code => {
                if c == '/' && next == Some('/') {
                    st = LexState::LineComment;
                    cur.comment.push_str("//");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    st = LexState::BlockComment(1);
                    cur.code.push(' ');
                    i += 2;
                } else if c == '"' {
                    st = LexState::Str;
                    cur.code.push('"');
                    i += 1;
                } else if is_raw_str_start(&chars, i) {
                    let skip = usize::from(chars[i] == 'b');
                    let hashes = count_hashes(&chars, i + skip + 1);
                    st = LexState::RawStr(hashes);
                    cur.code.push('"');
                    i += skip + 1 + hashes + 1; // [b] r ### "
                } else if c == '\'' {
                    // Char literal vs lifetime heuristic.
                    if next == Some('\\') {
                        // Escaped char literal: scan to the closing quote.
                        let mut j = i + 2;
                        while j < chars.len() && chars[j] != '\'' {
                            j += 1;
                        }
                        cur.code.push(' ');
                        i = j + 1;
                    } else if chars.get(i + 2) == Some(&'\'') {
                        cur.code.push(' ');
                        i += 3;
                    } else {
                        cur.code.push('\'');
                        i += 1;
                    }
                } else {
                    cur.code.push(c);
                    i += 1;
                }
            }
            LexState::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            LexState::BlockComment(d) => {
                if c == '*' && next == Some('/') {
                    st = if d == 1 {
                        LexState::Code
                    } else {
                        LexState::BlockComment(d - 1)
                    };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    st = LexState::BlockComment(d + 1);
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            LexState::Str => {
                if c == '\\' {
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    st = LexState::Code;
                    i += 1;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
            LexState::RawStr(h) => {
                if c == '"' && (0..h).all(|k| chars.get(i + 1 + k) == Some(&'#')) {
                    cur.code.push('"');
                    st = LexState::Code;
                    i += 1 + h;
                } else {
                    i += 1;
                }
            }
        }
    }
    if !cur.code.is_empty() || !cur.comment.is_empty() {
        lines.push(cur);
    }
    mark_test_regions(&mut lines);
    lines
}

fn is_raw_str_start(chars: &[char], i: usize) -> bool {
    let start = if chars[i] == 'b' {
        if chars.get(i + 1) != Some(&'r') {
            return chars.get(i + 1) == Some(&'"') && !prev_is_ident(chars, i);
        }
        i + 1
    } else if chars[i] == 'r' {
        i
    } else {
        return false;
    };
    if prev_is_ident(chars, i) {
        return false;
    }
    let hashes = count_hashes(chars, start + 1);
    chars.get(start + 1 + hashes) == Some(&'"')
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

fn count_hashes(chars: &[char], from: usize) -> usize {
    chars[from..].iter().take_while(|&&c| c == '#').count()
}

/// Marks lines inside `#[cfg(test)]` items by tracking brace depth.
fn mark_test_regions(lines: &mut [Line]) {
    let mut depth = 0usize;
    let mut pending: Option<usize> = None; // saw #[cfg(test)] at this depth
    let mut region: Option<usize> = None; // inside test item opened at depth
    for line in lines.iter_mut() {
        if region.is_some() {
            line.in_test = true;
        }
        if line.code.contains("#[cfg(test)]") && region.is_none() {
            pending = Some(depth);
            line.in_test = true;
        }
        for c in line.code.chars() {
            match c {
                '{' => {
                    if region.is_none() && pending == Some(depth) {
                        region = Some(depth);
                        pending = None;
                        line.in_test = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if region == Some(depth) {
                        region = None;
                        line.in_test = true; // closing brace still test code
                    }
                }
                // `#[cfg(test)] use foo;` — attribute on a braceless item.
                ';' if pending == Some(depth) => pending = None,
                _ => {}
            }
        }
    }
}

// ---------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// `true` if `code` contains `token` delimited by non-identifier chars.
fn has_token(code: &str, token: &str) -> bool {
    let bytes = code.as_bytes();
    let mut start = 0;
    while let Some(p) = code[start..].find(token) {
        let abs = start + p;
        let end = abs + token.len();
        let before_ok = abs == 0 || !is_ident_byte(bytes[abs - 1]);
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        start = end;
    }
    false
}

/// First narrowing `as <ty>` cast on the line, if any.
fn narrowing_cast(code: &str) -> Option<&'static str> {
    let bytes = code.as_bytes();
    let mut start = 0;
    while let Some(p) = code[start..].find("as") {
        let abs = start + p;
        let end = abs + 2;
        let boundary = (abs == 0 || !is_ident_byte(bytes[abs - 1]))
            && (end >= bytes.len() || !is_ident_byte(bytes[end]));
        start = end;
        if !boundary {
            continue;
        }
        let rest = code[end..].trim_start();
        let ty: String = rest
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if let Some(t) = NARROW_TYPES.iter().find(|t| **t == ty) {
            return Some(t);
        }
    }
    None
}

/// Comment-only or attribute-only lines continue the lookback block
/// above an `unsafe` site / allow target.
fn continues_block(line: &Line) -> bool {
    let code = line.code.trim();
    if code.is_empty() {
        return !line.comment.is_empty();
    }
    code.starts_with("#[") || code.starts_with("#![")
}

const LOOKBACK: usize = 40;

/// Does line `i` (or its contiguous comment/attribute block above)
/// satisfy predicate `p` over comment text?
fn block_above_matches(lines: &[Line], i: usize, p: impl Fn(&str) -> bool) -> bool {
    if p(&lines[i].comment) {
        return true;
    }
    let mut j = i;
    let floor = i.saturating_sub(LOOKBACK);
    while j > floor {
        j -= 1;
        if !continues_block(&lines[j]) {
            return false;
        }
        if p(&lines[j].comment) {
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------------
// Escape hatch
// ---------------------------------------------------------------------

enum Directive {
    /// Well-formed: rules + reason present.
    Allow(Vec<String>),
    /// Malformed: error message.
    Bad(String),
}

/// Parses `lint:allow(rule-a, rule-b) -- reason` out of comment text.
///
/// Directives are only recognised in plain `//` comments: doc comments
/// (`///`, `//!`) are prose — text *describing* the directive syntax
/// must not activate (or half-activate) it.
fn parse_directive(comment: &str) -> Option<Directive> {
    let t = comment.trim_start();
    if t.starts_with("///") || t.starts_with("//!") {
        return None;
    }
    let at = comment.find("lint:allow")?;
    let rest = &comment[at + "lint:allow".len()..];
    let Some(open) = rest.find('(') else {
        return Some(Directive::Bad("missing '(' after lint:allow".into()));
    };
    let Some(close) = rest.find(')') else {
        return Some(Directive::Bad("missing ')' in lint:allow".into()));
    };
    if open > close {
        return Some(Directive::Bad("malformed lint:allow parentheses".into()));
    }
    let rules: Vec<String> = rest[open + 1..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return Some(Directive::Bad("lint:allow names no rule".into()));
    }
    for r in &rules {
        if !RULE_NAMES.contains(&r.as_str()) {
            return Some(Directive::Bad(format!("unknown rule '{r}' in lint:allow")));
        }
    }
    let tail = &rest[close + 1..];
    let Some(dash) = tail.find("--") else {
        return Some(Directive::Bad(
            "lint:allow requires a reason: `-- <why this is sound>`".into(),
        ));
    };
    if tail[dash + 2..].trim().is_empty() {
        return Some(Directive::Bad("lint:allow reason is empty".into()));
    }
    Some(Directive::Allow(rules))
}

// ---------------------------------------------------------------------
// Per-file analysis
// ---------------------------------------------------------------------

/// Panic-y constructs forbidden in hot paths.
const PANIC_TOKENS: [(&str, &str); 6] = [
    (".unwrap()", "unwrap() panics"),
    (".expect(", "expect() panics"),
    ("panic!", "explicit panic!"),
    ("unreachable!", "unreachable! panics"),
    ("todo!", "todo! panics"),
    ("unimplemented!", "unimplemented! panics"),
];

/// Runs the line-level rules over one file's source. `rel_path` selects
/// which path-scoped rules apply (hot paths, cast files).
pub fn analyze_source(rel_path: &str, source: &str) -> Report {
    let lines = classify(source);
    let mut report = Report {
        files_scanned: 1,
        ..Report::default()
    };

    // Collect escape-hatch directives (and flag malformed ones).
    let mut allows_at: Vec<Vec<String>> = vec![Vec::new(); lines.len()];
    for (i, line) in lines.iter().enumerate() {
        match parse_directive(&line.comment) {
            Some(Directive::Allow(rules)) => {
                for r in &rules {
                    report.allows.push(Allow {
                        file: rel_path.to_string(),
                        line: i + 1,
                        rule: r.clone(),
                    });
                }
                allows_at[i] = rules;
            }
            Some(Directive::Bad(msg)) => report.violations.push(Violation {
                file: rel_path.to_string(),
                line: i + 1,
                rule: "lint-allow".into(),
                msg,
            }),
            None => {}
        }
    }
    // A directive suppresses a rule on its own line or anywhere in the
    // contiguous comment/attribute block directly above the violation.
    let allowed = |i: usize, rule: &str| -> bool {
        if allows_at[i].iter().any(|r| r == rule) {
            return true;
        }
        let mut j = i;
        let floor = i.saturating_sub(LOOKBACK);
        while j > floor {
            j -= 1;
            if !continues_block(&lines[j]) {
                return false;
            }
            if allows_at[j].iter().any(|r| r == rule) {
                return true;
            }
        }
        false
    };

    // Rule: file-size (engine modules must stay decomposed). The count
    // is physical source lines, tests included — test bulk is still
    // bulk the next reader scrolls past. The escape hatch is accepted
    // anywhere in the file (it is a file-level property).
    if rel_path.contains(SIZE_SCOPE) {
        let n = source.lines().count();
        let allowed_anywhere = allows_at
            .iter()
            .any(|rs| rs.iter().any(|r| r == "file-size"));
        if n > MAX_CORE_FILE_LINES && !allowed_anywhere {
            report.violations.push(Violation {
                file: rel_path.to_string(),
                line: n,
                rule: "file-size".into(),
                msg: format!(
                    "{n} lines exceeds the {MAX_CORE_FILE_LINES}-line ceiling for {SIZE_SCOPE} \
                     files; split the module"
                ),
            });
        }
    }

    // Rule: safety-comment (all files, tests included).
    for (i, line) in lines.iter().enumerate() {
        if !has_token(&line.code, "unsafe") {
            continue;
        }
        let justified = block_above_matches(&lines, i, |c| {
            c.contains("SAFETY:") || c.contains("# Safety")
        });
        if !justified && !allowed(i, "safety-comment") {
            report.violations.push(Violation {
                file: rel_path.to_string(),
                line: i + 1,
                rule: "safety-comment".into(),
                msg: "`unsafe` without a `// SAFETY:` justification (or `# Safety` doc section)"
                    .into(),
            });
        }
    }

    // Rule: no-panic-paths (hot files + untrusted-input decode crates,
    // non-test code only).
    if HOT_FILES.iter().any(|f| rel_path.ends_with(f))
        || HOT_DIRS.iter().any(|d| rel_path.contains(d))
    {
        for (i, line) in lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            for (tok, why) in PANIC_TOKENS {
                if line.code.contains(tok) && !allowed(i, "no-panic-paths") {
                    report.violations.push(Violation {
                        file: rel_path.to_string(),
                        line: i + 1,
                        rule: "no-panic-paths".into(),
                        msg: format!("{why} in an engine hot path; return an Error variant"),
                    });
                }
            }
        }
    }

    // Rule: no-lossy-cast (accumulator/fused kernels, non-test code).
    if CAST_FILES.iter().any(|f| rel_path.ends_with(f)) {
        for (i, line) in lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            if let Some(ty) = narrowing_cast(&line.code) {
                if !allowed(i, "no-lossy-cast") {
                    report.violations.push(Violation {
                        file: rel_path.to_string(),
                        line: i + 1,
                        rule: "no-lossy-cast".into(),
                        msg: format!(
                            "narrowing `as {ty}` cast in a kernel; use a checked/widening helper"
                        ),
                    });
                }
            }
        }
    }

    report.violations.sort_by_key(|v| v.line);
    report
}

// ---------------------------------------------------------------------
// Crate-level rules + workspace walk
// ---------------------------------------------------------------------

fn walk_rs_files(dir: &Path, out: &mut Vec<PathBuf>, manifests: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" || name == "fixtures" {
                continue;
            }
            walk_rs_files(&path, out, manifests);
        } else if name == "Cargo.toml" {
            manifests.push(path);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// `true` when any line of `source` uses the `unsafe` keyword.
fn source_has_unsafe(source: &str) -> bool {
    classify(source)
        .iter()
        .any(|l| has_token(&l.code, "unsafe"))
}

fn crate_rule_violation(
    lib_root_rel: &str,
    lib_src: &str,
    has_unsafe: bool,
) -> Option<(String, String)> {
    let lines = classify(lib_src);
    let attr_present = |attr: &str| lines.iter().any(|l| l.code.contains(attr));
    let allow_present = |rule: &str| {
        lines.iter().any(|l| {
            matches!(parse_directive(&l.comment),
                     Some(Directive::Allow(rules)) if rules.iter().any(|r| r == rule))
        })
    };
    if !has_unsafe {
        if !attr_present("#![forbid(unsafe_code)]") && !allow_present("forbid-unsafe") {
            return Some((
                "forbid-unsafe".into(),
                format!(
                    "crate has no unsafe code but {lib_root_rel} lacks #![forbid(unsafe_code)]"
                ),
            ));
        }
    } else if !attr_present("#![deny(unsafe_op_in_unsafe_fn)]")
        && !allow_present("unsafe-op-in-unsafe-fn")
    {
        return Some((
            "unsafe-op-in-unsafe-fn".into(),
            format!("crate uses unsafe but {lib_root_rel} lacks #![deny(unsafe_op_in_unsafe_fn)]"),
        ));
    }
    None
}

fn rel(root: &Path, p: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Lints every `.rs` file under `root` plus the crate-level rules for
/// every `Cargo.toml` package found.
pub fn lint_workspace(root: &Path) -> Report {
    let mut files = Vec::new();
    let mut manifests = Vec::new();
    walk_rs_files(root, &mut files, &mut manifests);
    files.sort();
    manifests.sort();

    let mut report = Report::default();
    for path in &files {
        let Ok(src) = fs::read_to_string(path) else {
            continue;
        };
        let r = analyze_source(&rel(root, path), &src);
        report.files_scanned += 1;
        report.violations.extend(r.violations);
        report.allows.extend(r.allows);
    }

    for manifest in &manifests {
        let dir = manifest.parent().unwrap_or(root);
        let lib_root = ["src/lib.rs", "src/main.rs"]
            .iter()
            .map(|p| dir.join(p))
            .find(|p| p.is_file());
        let Some(lib_root) = lib_root else {
            continue; // virtual manifest (workspace root without lib/main)
        };
        let src_dir = dir.join("src");
        let has_unsafe = files
            .iter()
            .filter(|f| f.starts_with(&src_dir))
            .filter_map(|f| fs::read_to_string(f).ok())
            .any(|s| source_has_unsafe(&s));
        report.crates_checked += 1;
        let lib_rel = rel(root, &lib_root);
        if let Ok(lib_src) = fs::read_to_string(&lib_root) {
            if let Some((rule, msg)) = crate_rule_violation(&lib_rel, &lib_src, has_unsafe) {
                report.violations.push(Violation {
                    file: lib_rel,
                    line: 1,
                    rule,
                    msg,
                });
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOT: &str = "crates/core/src/exec.rs";
    const KERNEL: &str = "crates/core/src/fused.rs";

    fn rules_fired(report: &Report) -> Vec<String> {
        report.violations.iter().map(|v| v.rule.clone()).collect()
    }

    // -- fixtures: each rule must fire on the bad snippet and stay
    //    silent on the good one. Fixture sources live outside `.rs`
    //    files so the linter does not flag its own test data.

    #[test]
    fn safety_comment_fires_on_bad_and_passes_good() {
        let bad = include_str!("../fixtures/safety_bad.rs.txt");
        let good = include_str!("../fixtures/safety_good.rs.txt");
        let r = analyze_source("crates/demo/src/lib.rs", bad);
        assert!(
            rules_fired(&r).contains(&"safety-comment".to_string()),
            "expected safety-comment violation: {r:?}"
        );
        let r = analyze_source("crates/demo/src/lib.rs", good);
        assert!(r.violations.is_empty(), "good fixture flagged: {r:?}");
    }

    #[test]
    fn no_panic_paths_fires_on_bad_and_passes_good() {
        let bad = include_str!("../fixtures/panic_bad.rs.txt");
        let good = include_str!("../fixtures/panic_good.rs.txt");
        let r = analyze_source(HOT, bad);
        let fired = rules_fired(&r);
        // One violation per panic-y construct in the fixture.
        assert!(
            fired.iter().filter(|r| *r == "no-panic-paths").count() >= 4,
            "expected several no-panic-paths violations: {r:?}"
        );
        let r = analyze_source(HOT, good);
        assert!(r.violations.is_empty(), "good fixture flagged: {r:?}");
        // The same bad source in a non-hot file is fine.
        let r = analyze_source("crates/bench/src/lib.rs", bad);
        assert!(!rules_fired(&r).contains(&"no-panic-paths".to_string()));
    }

    #[test]
    fn no_panic_paths_covers_untrusted_decode_dirs() {
        let bad = include_str!("../fixtures/panic_bad.rs.txt");
        for path in [
            "crates/encoding/src/gorilla.rs",
            "crates/storage/src/page.rs",
            "crates/simd/src/backend.rs",
        ] {
            let r = analyze_source(path, bad);
            assert!(
                rules_fired(&r).contains(&"no-panic-paths".to_string()),
                "decode dir {path} must be covered: {r:?}"
            );
        }
    }

    #[test]
    fn no_lossy_cast_fires_on_bad_and_passes_good() {
        let bad = include_str!("../fixtures/cast_bad.rs.txt");
        let good = include_str!("../fixtures/cast_good.rs.txt");
        let r = analyze_source(KERNEL, bad);
        assert!(
            rules_fired(&r).contains(&"no-lossy-cast".to_string()),
            "expected no-lossy-cast violation: {r:?}"
        );
        let r = analyze_source(KERNEL, good);
        assert!(r.violations.is_empty(), "good fixture flagged: {r:?}");
        let r = analyze_source("crates/core/src/sql.rs", bad);
        assert!(!rules_fired(&r).contains(&"no-lossy-cast".to_string()));
    }

    #[test]
    fn escape_hatch_suppresses_counts_and_requires_reason() {
        let ok = include_str!("../fixtures/allow_ok.rs.txt");
        let bad = include_str!("../fixtures/allow_missing_reason.rs.txt");
        let r = analyze_source(HOT, ok);
        assert!(r.violations.is_empty(), "allowed line still flagged: {r:?}");
        assert_eq!(r.allows.len(), 2, "both uses counted: {r:?}");
        let r = analyze_source(HOT, bad);
        let fired = rules_fired(&r);
        assert!(
            fired.contains(&"lint-allow".to_string()),
            "reason-less allow must be flagged: {r:?}"
        );
        assert!(
            fired.contains(&"no-panic-paths".to_string()),
            "malformed allow must not suppress: {r:?}"
        );
    }

    #[test]
    fn doc_comments_describing_the_directive_are_inert() {
        // Prose documentation of the escape-hatch syntax (as in this
        // module's own docs) is neither a directive nor a malformed one.
        let src = "\
//! Escape hatch: `// lint:allow(<rule>) -- <reason>` suppresses a rule.

/// One use of the `lint:allow` escape hatch.
pub fn f(v: &[i64]) -> i64 {
    v[0].wrapping_add(1)
}
";
        let r = analyze_source(HOT, src);
        assert!(r.violations.is_empty(), "{r:?}");
        assert!(r.allows.is_empty(), "{r:?}");
    }

    #[test]
    fn cfg_test_modules_are_exempt_from_hot_path_rules() {
        let src = include_str!("../fixtures/cfg_test_ok.rs.txt");
        let r = analyze_source(HOT, src);
        assert!(r.violations.is_empty(), "test-module unwrap flagged: {r:?}");
    }

    #[test]
    fn forbid_unsafe_rule_fires_and_passes() {
        let clean_missing = "pub fn f() {}\n";
        let v = crate_rule_violation("crates/demo/src/lib.rs", clean_missing, false);
        assert_eq!(v.expect("must fire").0, "forbid-unsafe");
        let clean_present = "#![forbid(unsafe_code)]\npub fn f() {}\n";
        assert!(crate_rule_violation("x/src/lib.rs", clean_present, false).is_none());
        // Escape hatch at crate level.
        let allowed = "// lint:allow(forbid-unsafe) -- proc-macro target pending\npub fn f() {}\n";
        assert!(crate_rule_violation("x/src/lib.rs", allowed, false).is_none());
    }

    #[test]
    fn unsafe_op_in_unsafe_fn_rule_fires_and_passes() {
        let missing = "pub fn f() {}\n";
        let v = crate_rule_violation("crates/demo/src/lib.rs", missing, true);
        assert_eq!(v.expect("must fire").0, "unsafe-op-in-unsafe-fn");
        let present = "#![deny(unsafe_op_in_unsafe_fn)]\npub fn f() {}\n";
        assert!(crate_rule_violation("x/src/lib.rs", present, true).is_none());
    }

    #[test]
    fn file_size_fires_over_ceiling_in_core_only() {
        let over: String = "fn f() {}\n".repeat(MAX_CORE_FILE_LINES + 1);
        let r = analyze_source("crates/core/src/big.rs", &over);
        let fired = rules_fired(&r);
        assert!(
            fired.contains(&"file-size".to_string()),
            "oversized core file must be flagged: {r:?}"
        );
        // Exactly at the ceiling is fine.
        let at: String = "fn f() {}\n".repeat(MAX_CORE_FILE_LINES);
        let r = analyze_source("crates/core/src/big.rs", &at);
        assert!(r.violations.is_empty(), "{r:?}");
        // The same bulk outside the scope is fine.
        let r = analyze_source("crates/simd/src/big.rs", &over);
        assert!(!rules_fired(&r).contains(&"file-size".to_string()));
    }

    #[test]
    fn file_size_escape_hatch_suppresses_and_is_counted() {
        let mut src =
            String::from("// lint:allow(file-size) -- generated lookup tables, split is churn\n");
        src.push_str(&"fn f() {}\n".repeat(MAX_CORE_FILE_LINES + 10));
        let r = analyze_source("crates/core/src/big.rs", &src);
        assert!(r.violations.is_empty(), "allowed file still flagged: {r:?}");
        assert_eq!(r.allows.len(), 1, "escape hatch must be counted: {r:?}");
        assert_eq!(r.allows[0].rule, "file-size");
    }

    // -- classifier unit coverage --

    #[test]
    fn strings_and_comments_are_masked() {
        let src = "let s = \"unsafe .unwrap() panic!\"; // unsafe in comment\n";
        let lines = classify(src);
        assert!(!has_token(&lines[0].code, "unsafe"));
        assert!(!lines[0].code.contains(".unwrap()"));
        assert!(lines[0].comment.contains("unsafe"));
    }

    #[test]
    fn raw_strings_and_lifetimes_are_handled() {
        let src =
            "fn f<'a>(x: &'a str) { let q = r#\"unsafe \"quoted\" panic!\"#; let c = 'u'; }\n";
        let lines = classify(src);
        assert!(!has_token(&lines[0].code, "unsafe"));
        assert!(!lines[0].code.contains("panic!"));
        assert!(lines[0].code.contains("<'a>"));
    }

    #[test]
    fn unwrap_or_variants_are_not_flagged() {
        let src = "let x = a.unwrap_or(0);\nlet y = b.unwrap_or_else(|| 1);\nlet z = c.unwrap_or_default();\n";
        let r = analyze_source(HOT, src);
        assert!(r.violations.is_empty(), "{r:?}");
    }

    #[test]
    fn unsafe_code_attr_is_not_an_unsafe_keyword() {
        let src = "#![forbid(unsafe_code)]\n#![deny(unsafe_op_in_unsafe_fn)]\n";
        let r = analyze_source("shims/bytes/src/lib.rs", src);
        assert!(r.violations.is_empty(), "{r:?}");
        assert!(!source_has_unsafe(src));
    }

    #[test]
    fn doc_safety_section_satisfies_safety_comment() {
        let src = "\
/// Does spooky things.
///
/// # Safety
///
/// Caller must uphold X.
#[inline]
pub unsafe fn spooky() {}
";
        let r = analyze_source("crates/demo/src/lib.rs", src);
        assert!(r.violations.is_empty(), "{r:?}");
    }
}
