//! Bulk bit-unpacking of big-endian packed arrays (paper Figure 3).
//!
//! The public functions validate bounds once and dispatch to the
//! runtime-selected [`crate::backend::SimdBackend`] impl; the vectorized
//! drivers (in `backend.rs`) process rounds of eight or sixteen values
//! using the cached layout plans of [`crate::tables`], with partial
//! rounds and out-of-window tails finishing on the scalar twin, so no
//! kernel ever reads past the end of the source slice.

use crate::backend::dispatch;
use crate::LANES32;

/// Number of values per vectorized unpack round.
pub const ROUND: usize = LANES32;

/// Unpacks `out.len()` unsigned values of `width` bits (0..=32), starting
/// at `start_bit` of the big-endian stream `src`, into 32-bit outputs.
///
/// ```
/// // Two 12-bit values 0xABC, 0xDEF packed big-endian: AB CD EF.
/// let src = [0xAB, 0xCD, 0xEF];
/// let mut out = [0u32; 2];
/// etsqp_simd::unpack::unpack_u32(&src, 0, 12, &mut out);
/// assert_eq!(out, [0xABC, 0xDEF]);
/// ```
///
/// # Panics
/// If `width > 32` or the stream does not contain
/// `start_bit + width * out.len()` bits.
pub fn unpack_u32(src: &[u8], start_bit: usize, width: u8, out: &mut [u32]) {
    assert!(width <= 32, "unpack_u32 width {width}");
    if width == 0 {
        out.fill(0);
        return;
    }
    let need_bits = start_bit + width as usize * out.len();
    assert!(need_bits <= src.len() * 8, "unpack_u32 out of bounds");
    dispatch!(unpack_u32(src, start_bit, width, out))
}

/// Unpacks `out.len()` unsigned values of `width` bits (0..=64) into
/// 64-bit outputs. Widths up to 57 are vectorized; wider fall back to the
/// scalar reader.
///
/// # Panics
/// If `width > 64` or the stream is too short.
pub fn unpack_u64(src: &[u8], start_bit: usize, width: u8, out: &mut [u64]) {
    assert!(width <= 64, "unpack_u64 width {width}");
    if width == 0 {
        out.fill(0);
        return;
    }
    let need_bits = start_bit + width as usize * out.len();
    assert!(need_bits <= src.len() * 8, "unpack_u64 out of bounds");
    dispatch!(unpack_u64(src, start_bit, width, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::read_bits_be;

    /// Packs `vals` of `width` bits into a big-endian stream starting at
    /// `start_bit` (test helper — the real writer lives in etsqp-encoding).
    fn pack_be(vals: &[u64], width: usize, start_bit: usize) -> Vec<u8> {
        let total_bits = start_bit + vals.len() * width;
        let mut bytes = vec![0u8; total_bits.div_ceil(8)];
        let mut p = start_bit;
        for &v in vals {
            for b in 0..width {
                let bit = (v >> (width - 1 - b)) & 1;
                if bit != 0 {
                    bytes[(p + b) / 8] |= 1 << (7 - (p + b) % 8);
                }
            }
            p += width;
        }
        bytes
    }

    #[test]
    fn unpack_u32_all_widths_roundtrip() {
        for width in 1usize..=32 {
            let mask = if width == 64 {
                u64::MAX
            } else {
                (1u64 << width) - 1
            };
            let vals: Vec<u64> = (0..67).map(|i| (i as u64 * 0x9E3779B9) & mask).collect();
            for start_bit in [0usize, 3, 8, 13] {
                let bytes = pack_be(&vals, width, start_bit);
                let mut out = vec![0u32; vals.len()];
                unpack_u32(&bytes, start_bit, width as u8, &mut out);
                for (i, (&got, &want)) in out.iter().zip(&vals).enumerate() {
                    assert_eq!(got as u64, want, "w={width} start={start_bit} i={i}");
                }
            }
        }
    }

    #[test]
    fn unpack_u64_wide_widths_roundtrip() {
        for width in [33usize, 40, 48, 57, 58, 64] {
            let mask = if width == 64 {
                u64::MAX
            } else {
                (1u64 << width) - 1
            };
            let vals: Vec<u64> = (0..41)
                .map(|i| (i as u64).wrapping_mul(0x9E3779B97F4A7C15) & mask)
                .collect();
            let bytes = pack_be(&vals, width, 0);
            let mut out = vec![0u64; vals.len()];
            unpack_u64(&bytes, 0, width as u8, &mut out);
            assert_eq!(out, vals, "w={width}");
        }
    }

    #[test]
    fn unpack_zero_width_yields_zeros() {
        let mut out = vec![7u32; 10];
        unpack_u32(&[], 0, 0, &mut out);
        assert!(out.iter().all(|&v| v == 0));
    }

    #[test]
    fn unpack_exact_buffer_no_padding() {
        // The stream is exactly as long as the packed data — the vector
        // path must stop early and the scalar tail must finish the job.
        let width = 10usize;
        let vals: Vec<u64> = (0..96).map(|i| i as u64 % 1024).collect();
        let bytes = pack_be(&vals, width, 0);
        assert_eq!(bytes.len(), 120); // no slack at all
        let mut out = vec![0u32; vals.len()];
        unpack_u32(&bytes, 0, width as u8, &mut out);
        for (i, (&got, &want)) in out.iter().zip(&vals).enumerate() {
            assert_eq!(got as u64, want, "i={i}");
        }
    }

    #[test]
    fn read_bits_sanity_against_pack() {
        let vals = [5u64, 1023, 0, 512];
        let bytes = pack_be(&vals, 10, 0);
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(read_bits_be(&bytes, i * 10, 10), v);
        }
    }
}
