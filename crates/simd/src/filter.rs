//! Vectorized range filters producing bitmasks (paper Definition 2,
//! "Filter"; masks feed the valid-value aggregations of `agg`).

use crate::backend::dispatch;

/// Builds an inclusive range bitmask: bit `i` of `out[i / 64]` is set when
/// `lo <= vals[i] <= hi`. Callers express strict bounds by pre-adjusting
/// `lo`/`hi` (integer domains make `T > x` ≡ `T >= x + 1`).
///
/// # Panics
/// If `out` has fewer than `vals.len().div_ceil(64)` words.
pub fn range_mask_i64(vals: &[i64], lo: i64, hi: i64, out: &mut [u64]) {
    assert!(out.len() * 64 >= vals.len(), "mask buffer too small");
    dispatch!(range_mask_i64(vals, lo, hi, out))
}

/// Intersects two bitmasks in place (`a &= b`), used when conjoining time
/// and value predicates or joining timestamp columns.
pub fn and_masks(a: &mut [u64], b: &[u64]) {
    assert_eq!(a.len(), b.len());
    for (x, &y) in a.iter_mut().zip(b) {
        *x &= y;
    }
}

/// Unions two bitmasks in place (`a |= b`).
pub fn or_masks(a: &mut [u64], b: &[u64]) {
    assert_eq!(a.len(), b.len());
    for (x, &y) in a.iter_mut().zip(b) {
        *x |= y;
    }
}

/// Number of set bits in the first `n` positions of the mask.
pub fn count_mask(mask: &[u64], n: usize) -> u64 {
    let full = n / 64;
    let mut c: u64 = mask[..full].iter().map(|w| w.count_ones() as u64).sum();
    let rem = n % 64;
    if rem > 0 {
        c += (mask[full] & ((1u64 << rem) - 1)).count_ones() as u64;
    }
    c
}

/// Allocates a zeroed mask able to cover `n` elements.
pub fn new_mask(n: usize) -> Vec<u64> {
    vec![0u64; n.div_ceil(64)]
}

/// Sets all of the first `n` bits.
pub fn fill_mask(mask: &mut [u64], n: usize) {
    let full = n / 64;
    mask[..full].fill(u64::MAX);
    let rem = n % 64;
    if rem > 0 {
        mask[full] = (1u64 << rem) - 1;
    }
    for w in mask[full + usize::from(rem > 0)..].iter_mut() {
        *w = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_mask_inclusive_bounds() {
        let vals: Vec<i64> = (0..10).collect();
        let mut mask = new_mask(vals.len());
        range_mask_i64(&vals, 3, 6, &mut mask);
        assert_eq!(mask[0], 0b0111_1000);
        assert_eq!(count_mask(&mask, vals.len()), 4);
    }

    #[test]
    fn range_mask_handles_negatives_and_extremes() {
        let vals = [i64::MIN, -1, 0, 1, i64::MAX];
        let mut mask = new_mask(vals.len());
        range_mask_i64(&vals, i64::MIN, i64::MAX, &mut mask);
        assert_eq!(count_mask(&mask, vals.len()), 5);
        range_mask_i64(&vals, 0, 0, &mut mask);
        assert_eq!(mask[0], 0b00100);
    }

    #[test]
    fn range_mask_long_input_crosses_words() {
        let vals: Vec<i64> = (0..200).collect();
        let mut mask = new_mask(vals.len());
        range_mask_i64(&vals, 60, 70, &mut mask);
        assert_eq!(count_mask(&mask, vals.len()), 11);
        assert_ne!(mask[0], 0);
        assert_ne!(mask[1], 0);
    }

    #[test]
    fn and_or_count() {
        let mut a = vec![0b1100u64];
        let b = vec![0b1010u64];
        and_masks(&mut a, &b);
        assert_eq!(a[0], 0b1000);
        or_masks(&mut a, &b);
        assert_eq!(a[0], 0b1010);
    }

    #[test]
    fn fill_mask_partial_word() {
        let mut m = vec![u64::MAX; 2];
        fill_mask(&mut m, 70);
        assert_eq!(m[0], u64::MAX);
        assert_eq!(m[1], (1u64 << 6) - 1);
        assert_eq!(count_mask(&m, 70), 70);
    }
}
