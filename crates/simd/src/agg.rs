//! Valid-value aggregation kernels (paper Definition 2, `f(e, mask)`),
//! with the overflow behaviour of §VI-C: SIMD lanes accumulate in 64 bits
//! with sign-rule overflow detection, and overflowing blocks are
//! recomputed with a wider (`i128`) quantity, so every result is exact.

use crate::backend::dispatch;

/// Exact sum over all values. Never overflows (accumulates into `i128`).
///
/// ```
/// assert_eq!(etsqp_simd::agg::sum_i64(&[i64::MAX, i64::MAX]),
///            2 * i64::MAX as i128);
/// ```
pub fn sum_i64(vals: &[i64]) -> i128 {
    dispatch!(sum_i64(vals))
}

/// Exact sum and count over mask-selected values.
pub fn masked_sum_i64(vals: &[i64], mask: &[u64]) -> (i128, u64) {
    assert!(mask.len() * 64 >= vals.len(), "mask too small");
    dispatch!(masked_sum_i64(vals, mask))
}

/// Minimum and maximum over all values; `None` when empty.
pub fn min_max_i64(vals: &[i64]) -> Option<(i64, i64)> {
    dispatch!(min_max_i64(vals))
}

/// Minimum and maximum over mask-selected values; `None` when the mask
/// selects nothing.
pub fn masked_min_max_i64(vals: &[i64], mask: &[u64]) -> Option<(i64, i64)> {
    assert!(mask.len() * 64 >= vals.len(), "mask too small");
    dispatch!(masked_min_max_i64(vals, mask))
}

/// Running aggregate state combining partial results from pipeline jobs
/// (the `Merge` node of Algorithm 2 uses this).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AggState {
    /// Exact running sum.
    pub sum: i128,
    /// Number of aggregated values.
    pub count: u64,
    /// Minimum seen, if any value was aggregated.
    pub min: Option<i64>,
    /// Maximum seen, if any value was aggregated.
    pub max: Option<i64>,
    /// Running sum of squares (for VAR / STDDEV). Saturates at the
    /// `i128` limits: Σx² of a few dozen values near `i64::MAX` exceeds
    /// 2¹²⁷, and VARIANCE is finalized in `f64` where magnitudes that
    /// extreme have long lost integer precision anyway.
    pub sum_sq: i128,
    /// First aggregated value in time order (FIRST_VALUE).
    pub first: Option<i64>,
    /// Last aggregated value in time order (LAST_VALUE).
    pub last: Option<i64>,
}

impl AggState {
    /// Empty state (identity of [`AggState::merge`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one value into the state.
    pub fn push(&mut self, v: i64) {
        self.sum += v as i128;
        self.sum_sq = self.sum_sq.saturating_add((v as i128) * (v as i128));
        self.count = self.count.saturating_add(1);
        self.min = Some(self.min.map_or(v, |m| m.min(v)));
        self.max = Some(self.max.map_or(v, |m| m.max(v)));
        self.first.get_or_insert(v);
        self.last = Some(v);
    }

    /// Merges another partial state (associative, commutative).
    pub fn merge(&mut self, other: &AggState) {
        // Σx over 2⁶⁴ i64 values stays inside i128; saturating keeps the
        // theoretical limit panic-free without costing exactness.
        self.sum = self.sum.saturating_add(other.sum);
        self.sum_sq = self.sum_sq.saturating_add(other.sum_sq);
        self.count = self.count.saturating_add(other.count);
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        // Partials merge in time order: keep the earliest first and the
        // latest last.
        self.first = self.first.or(other.first);
        self.last = other.last.or(self.last);
    }

    /// Average as a float; `None` when no values were aggregated.
    pub fn avg(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Population variance; `None` when no values were aggregated.
    pub fn variance(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let n = self.count as f64;
        let mean = self.sum as f64 / n;
        // Population variance is non-negative by definition; the clamp
        // absorbs f64 rounding and, at extreme magnitudes, the Σx²
        // saturation which can otherwise push the estimate below zero.
        Some((self.sum_sq as f64 / n - mean * mean).max(0.0))
    }

    /// Aggregates a dense slice of decoded values with SIMD kernels.
    pub fn push_slice(&mut self, vals: &[i64]) {
        if vals.is_empty() {
            return;
        }
        self.sum = self.sum.saturating_add(sum_i64(vals));
        self.sum_sq = vals.iter().fold(self.sum_sq, |acc, &v| {
            acc.saturating_add((v as i128) * (v as i128))
        });
        self.count = self.count.saturating_add(vals.len() as u64);
        if let Some((mn, mx)) = min_max_i64(vals) {
            self.min = Some(self.min.map_or(mn, |m| m.min(mn)));
            self.max = Some(self.max.map_or(mx, |m| m.max(mx)));
        }
        self.first.get_or_insert(vals[0]);
        self.last = vals.last().copied().or(self.last);
    }

    /// Aggregates mask-selected values with SIMD kernels.
    pub fn push_masked(&mut self, vals: &[i64], mask: &[u64]) {
        let (s, c) = masked_sum_i64(vals, mask);
        self.sum = self.sum.saturating_add(s);
        self.count = self.count.saturating_add(c);
        for (i, &v) in vals.iter().enumerate() {
            if mask[i / 64] & (1u64 << (i % 64)) != 0 {
                self.sum_sq = self.sum_sq.saturating_add((v as i128) * (v as i128));
            }
        }
        if let Some((mn, mx)) = masked_min_max_i64(vals, mask) {
            self.min = Some(self.min.map_or(mn, |m| m.min(mn)));
            self.max = Some(self.max.map_or(mx, |m| m.max(mx)));
        }
        for (i, &v) in vals.iter().enumerate() {
            if mask[i / 64] & (1u64 << (i % 64)) != 0 {
                self.first.get_or_insert(v);
                self.last = Some(v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{fill_mask, new_mask};

    #[test]
    fn sum_matches_naive() {
        let vals: Vec<i64> = (-500..500).map(|i| i * 7919).collect();
        assert_eq!(sum_i64(&vals), vals.iter().map(|&v| v as i128).sum());
    }

    #[test]
    fn sum_survives_extreme_values() {
        // Values that overflow i64 lane accumulation immediately.
        let vals = vec![
            i64::MAX,
            i64::MAX,
            i64::MIN,
            i64::MAX,
            1,
            i64::MAX,
            i64::MAX,
            i64::MAX,
        ];
        let expect: i128 = vals.iter().map(|&v| v as i128).sum();
        assert_eq!(sum_i64(&vals), expect);
    }

    #[test]
    fn masked_sum_respects_mask() {
        let vals: Vec<i64> = (0..130).collect();
        let mut mask = new_mask(vals.len());
        fill_mask(&mut mask, vals.len());
        let (s, c) = masked_sum_i64(&vals, &mask);
        assert_eq!(c, 130);
        assert_eq!(s, (0..130).sum::<i128>());
        // Sparse mask: every 13th element.
        mask.iter_mut().for_each(|w| *w = 0);
        for i in (0..130).step_by(13) {
            mask[i / 64] |= 1 << (i % 64);
        }
        let (s, c) = masked_sum_i64(&vals, &mask);
        assert_eq!(c, 10);
        assert_eq!(s, (0..130).step_by(13).sum::<usize>() as i128);
    }

    #[test]
    fn masked_sum_extreme_values() {
        let vals = vec![i64::MAX; 64];
        let mut mask = new_mask(64);
        fill_mask(&mut mask, 64);
        let (s, c) = masked_sum_i64(&vals, &mask);
        assert_eq!(c, 64);
        assert_eq!(s, i64::MAX as i128 * 64);
    }

    #[test]
    fn min_max_basics() {
        assert_eq!(min_max_i64(&[]), None);
        assert_eq!(min_max_i64(&[3]), Some((3, 3)));
        let vals: Vec<i64> = vec![5, -2, 9, 0, 7, -8, 3, 3, 1];
        assert_eq!(min_max_i64(&vals), Some((-8, 9)));
    }

    #[test]
    fn agg_state_merge_is_associative() {
        let vals: Vec<i64> = (0..97).map(|i| i * i - 50).collect();
        let mut whole = AggState::new();
        whole.push_slice(&vals);
        let mut left = AggState::new();
        left.push_slice(&vals[..31]);
        let mut right = AggState::new();
        right.push_slice(&vals[31..]);
        left.merge(&right);
        assert_eq!(left, whole);
    }

    #[test]
    fn agg_state_avg_variance() {
        let mut s = AggState::new();
        s.push_slice(&[2, 4, 6, 8]);
        assert_eq!(s.avg(), Some(5.0));
        assert_eq!(s.variance(), Some(5.0)); // population variance of 2,4,6,8
        assert_eq!(s.min, Some(2));
        assert_eq!(s.max, Some(8));
    }

    #[test]
    fn push_and_push_slice_agree() {
        let vals: Vec<i64> = (-20..20).collect();
        let mut a = AggState::new();
        let mut b = AggState::new();
        vals.iter().for_each(|&v| a.push(v));
        b.push_slice(&vals);
        assert_eq!(a, b);
    }
}
