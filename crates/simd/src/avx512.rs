//! AVX-512 unpack kernel — the paper's `ω_SIMD = 512` configuration
//! (§III-A: "n_v ≤ 32 under AVX-512 devices").
//!
//! One 512-bit round unpacks **sixteen** values: four 16-byte source
//! windows are inserted into the four 128-bit lanes of a zmm register,
//! `_mm512_shuffle_epi8` gathers each value's bytes within its lane
//! (AVX512BW), `_mm512_srlv_epi32` aligns and a single AND masks — the
//! same shuffle→srlv→and pattern as the AVX2 path at twice the width.

#![cfg(target_arch = "x86_64")]

use std::arch::x86_64::*;

/// Unpacking plan for a 512-bit round of sixteen values (widths 1..=25).
#[derive(Debug, Clone)]
pub struct Plan512 {
    /// Packing width in bits (recorded for diagnostics).
    #[allow(dead_code)]
    pub width: u8,
    /// `start_bit % 8` of the first value of every round.
    #[allow(dead_code)]
    pub align: u8,
    /// Byte-gather indices for all four 128-bit lanes (lane-local).
    pub shuffle: [u8; 64],
    /// Per-lane right shifts.
    pub shifts: [u32; 16],
    /// Value mask.
    pub mask: u32,
    /// Byte offsets of the four 16-byte windows from the round base.
    pub win_off: [usize; 4],
    /// Bytes consumed per round of sixteen values (= `2 * width`).
    pub bytes_per_round: usize,
}

/// Builds the plan for `(width, align)`; widths 1..=25, align < 8.
pub fn build_plan512(width: u8, align: u8) -> Plan512 {
    assert!((1..=25).contains(&width));
    assert!(align < 8);
    let w = width as usize;
    let a = align as usize;
    let p = |i: usize| a + i * w;
    // Window k serves values 4k..4k+4.
    let win_off = [p(0) / 8, p(4) / 8, p(8) / 8, p(12) / 8];
    let mut shuffle = [0u8; 64];
    let mut shifts = [0u32; 16];
    // Indexing three arrays by lane position; an iterator chain here
    // would bury the p(i)/window math.
    #[allow(clippy::needless_range_loop)]
    for i in 0..16 {
        let lane128 = i / 4;
        let r = p(i) / 8 - win_off[lane128];
        debug_assert!(r + 3 < 16, "window overflow w={width} align={align} i={i}");
        let slot = i * 4;
        // Reverse bytes: little-endian 32-bit lane from big-endian stream.
        shuffle[slot] = (r + 3) as u8;
        shuffle[slot + 1] = (r + 2) as u8;
        shuffle[slot + 2] = (r + 1) as u8;
        shuffle[slot + 3] = r as u8;
        shifts[i] = (32 - (p(i) % 8) - w) as u32;
    }
    Plan512 {
        width,
        align,
        shuffle,
        shifts,
        mask: if w == 32 { u32::MAX } else { (1u32 << w) - 1 },
        win_off,
        bytes_per_round: 2 * w,
    }
}

/// Cached plan lookup (the §III-B JIT table at 512-bit width).
pub fn plan512(width: u8, align: u8) -> &'static Plan512 {
    use std::sync::OnceLock;
    static PLANS: OnceLock<Vec<Plan512>> = OnceLock::new();
    let plans = PLANS.get_or_init(|| {
        let mut v = Vec::with_capacity(25 * 8);
        for w in 1..=25u8 {
            for a in 0..8 {
                v.push(build_plan512(w, a));
            }
        }
        v
    });
    assert!((1..=25).contains(&width), "plan512 width {width}");
    assert!(align < 8);
    &plans[(width as usize - 1) * 8 + align as usize]
}

/// Unpacks `rounds * 16` values.
///
/// # Safety
/// AVX-512F + AVX-512BW must be available; for every round `r`, the bytes
/// `src[start_byte + r*2w + win_off[k] .. + 16]` must be in bounds for
/// all four windows.
#[target_feature(enable = "avx512f,avx512bw")]
pub unsafe fn unpack_u32_plan512(
    src: &[u8],
    start_byte: usize,
    rounds: usize,
    plan: &Plan512,
    out: &mut [u32],
) {
    debug_assert!(out.len() >= rounds * 16);
    // SAFETY: the fn-level contract keeps all four 16-byte window loads
    // of every round inside `src` and sizes `out` for `rounds * 16`
    // values; the plan tables are fixed-size arrays read in full.
    unsafe {
        let shuffle = _mm512_loadu_si512(plan.shuffle.as_ptr() as *const _);
        let shifts = _mm512_loadu_si512(plan.shifts.as_ptr() as *const _);
        let mask = _mm512_set1_epi32(plan.mask as i32);
        let mut base = start_byte;
        let mut optr = out.as_mut_ptr();
        for _ in 0..rounds {
            let w0 = _mm_loadu_si128(src.as_ptr().add(base + plan.win_off[0]) as *const __m128i);
            let w1 = _mm_loadu_si128(src.as_ptr().add(base + plan.win_off[1]) as *const __m128i);
            let w2 = _mm_loadu_si128(src.as_ptr().add(base + plan.win_off[2]) as *const __m128i);
            let w3 = _mm_loadu_si128(src.as_ptr().add(base + plan.win_off[3]) as *const __m128i);
            let v = _mm512_inserti32x4::<1>(_mm512_castsi128_si512(w0), w1);
            let v = _mm512_inserti32x4::<2>(v, w2);
            let v = _mm512_inserti32x4::<3>(v, w3);
            let gathered = _mm512_shuffle_epi8(v, shuffle);
            let shifted = _mm512_srlv_epi32(gathered, shifts);
            let vals = _mm512_and_si512(shifted, mask);
            _mm512_storeu_si512(optr as *mut _, vals);
            base += plan.bytes_per_round;
            optr = optr.add(16);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan512_structure() {
        let p = plan512(10, 0);
        assert_eq!(p.bytes_per_round, 20);
        assert_eq!(p.mask, 0x3FF);
        assert_eq!(p.win_off, [0, 5, 10, 15]);
        // Lane 0 gathers bytes 3..=0 reversed.
        assert_eq!(&p.shuffle[0..4], &[3, 2, 1, 0]);
        for i in 0..16 {
            assert!(p.shifts[i] < 32);
        }
    }

    #[test]
    fn unpack_matches_scalar_for_all_widths() {
        if !(std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512bw"))
        {
            eprintln!("skipping: no AVX-512 on this host");
            return;
        }
        for width in 1u8..=25 {
            let mask = (1u64 << width) - 1;
            let vals: Vec<u64> = (0..160).map(|i| (i * 0x9E3779B9u64) & mask).collect();
            for align in [0usize, 3, 5] {
                // Pack big-endian at the given alignment.
                let total_bits = align + vals.len() * width as usize;
                let mut bytes = vec![0u8; total_bits.div_ceil(8) + 32];
                let mut p = align;
                for &v in &vals {
                    for b in 0..width as usize {
                        if (v >> (width as usize - 1 - b)) & 1 != 0 {
                            bytes[(p + b) / 8] |= 1 << (7 - (p + b) % 8);
                        }
                    }
                    p += width as usize;
                }
                let plan = plan512(width, align as u8);
                let rounds = vals.len() / 16;
                let mut out = vec![0u32; rounds * 16];
                // SAFETY: AVX-512F/BW presence checked above; `bytes`
                // has 32 bytes of slack past the packed payload, so all
                // window loads of every round stay in bounds, and `out`
                // holds exactly `rounds * 16` values.
                unsafe { unpack_u32_plan512(&bytes, align / 8, rounds, plan, &mut out) };
                for (i, (&got, &want)) in out.iter().zip(&vals).enumerate() {
                    assert_eq!(got as u64, want, "w={width} align={align} i={i}");
                }
            }
        }
    }

    #[test]
    fn all_plans_within_windows() {
        for w in 1..=25u8 {
            for a in 0..8 {
                let p = plan512(w, a);
                assert!(p.shuffle.iter().all(|&b| b < 16), "w={w} a={a}");
            }
        }
    }
}
