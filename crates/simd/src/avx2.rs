//! AVX2 implementations of the unpack / delta / filter / aggregate kernels.
//!
//! Instruction mapping to the paper (§II-B, Figure 3):
//! * byte gathering across lanes — `_mm256_shuffle_epi8`
//! * per-lane variable right shift — `_mm256_srlv_epi32` / `_mm256_srlv_epi64`
//! * value masking — `_mm256_and_si256`
//! * prefix-sum permutations — `_mm256_permutevar8x32_epi32`
//!
//! Every public function here is `unsafe` and requires the caller to have
//! verified AVX2 support (done once by [`crate::backend`]) and, for the
//! unpack kernels, that all window loads are in bounds (done by
//! [`crate::unpack`]). Register-only helpers are safe `#[target_feature]`
//! functions; the remaining `unsafe` blocks are scoped to the pointer
//! loads and stores they justify.

#![cfg(target_arch = "x86_64")]

use crate::tables::{Plan32, Plan64};
use crate::{LANES32, V32};
use std::arch::x86_64::*;

/// Unpacks `rounds * 8` values via a [`Plan32`] (widths 1..=25).
///
/// # Safety
/// AVX2 must be available. For every round `r < rounds`, the bytes
/// `src[start_byte + r*w + plan.win1_off .. + 16]` must be in bounds, and
/// `out` must hold at least `rounds * 8` values.
#[target_feature(enable = "avx2")]
pub unsafe fn unpack_u32_plan32(
    src: &[u8],
    start_byte: usize,
    rounds: usize,
    plan: &Plan32,
    out: &mut [u32],
) {
    debug_assert!(out.len() >= rounds * LANES32);
    // SAFETY: the fn-level contract keeps every 16-byte window load of
    // every round inside `src` and sizes `out` for `rounds * 8` values;
    // the plan tables are fixed-size arrays read in full.
    unsafe {
        let shuf_lo = _mm_loadu_si128(plan.shuffle_lo.as_ptr() as *const __m128i);
        let shuf_hi = _mm_loadu_si128(plan.shuffle_hi.as_ptr() as *const __m128i);
        let shuffle = _mm256_set_m128i(shuf_hi, shuf_lo);
        let shifts = _mm256_loadu_si256(plan.shifts.as_ptr() as *const __m256i);
        let mask = _mm256_set1_epi32(plan.mask as i32);
        let w = plan.bytes_per_round;
        let mut base = start_byte;
        let mut optr = out.as_mut_ptr();
        for _ in 0..rounds {
            let lo = _mm_loadu_si128(src.as_ptr().add(base) as *const __m128i);
            let hi = _mm_loadu_si128(src.as_ptr().add(base + plan.win1_off) as *const __m128i);
            let v = _mm256_set_m128i(hi, lo);
            let gathered = _mm256_shuffle_epi8(v, shuffle);
            let shifted = _mm256_srlv_epi32(gathered, shifts);
            let vals = _mm256_and_si256(shifted, mask);
            _mm256_storeu_si256(optr as *mut __m256i, vals);
            base += w;
            optr = optr.add(LANES32);
        }
    }
}

/// Unpacks `rounds * 8` values via a [`Plan64`] into 32-bit outputs
/// (widths 26..=32, where values can span five bytes).
///
/// # Safety
/// AVX2 must be available; all four 16-byte windows of every round must be
/// in bounds (`src[start_byte + r*w + win_off[k] .. + 16]`), and `out`
/// must hold at least `rounds * 8` values.
#[target_feature(enable = "avx2")]
pub unsafe fn unpack_u32_plan64(
    src: &[u8],
    start_byte: usize,
    rounds: usize,
    plan: &Plan64,
    out: &mut [u32],
) {
    debug_assert!(out.len() >= rounds * LANES32);
    let mut buf = [0u64; 8];
    let mut base = start_byte;
    for r in 0..rounds {
        // SAFETY: the fn-level window contract covers this round's
        // loads, and `r * LANES32 + i < rounds * LANES32 <= out.len()`
        // keeps the unchecked store in bounds.
        unsafe {
            unpack_round_plan64(src, base, plan, &mut buf);
            for (i, &v) in buf.iter().enumerate() {
                *out.get_unchecked_mut(r * LANES32 + i) = v as u32;
            }
        }
        base += plan.bytes_per_round;
    }
}

/// Unpacks `rounds * 8` values via a [`Plan64`] into 64-bit outputs
/// (widths up to 57 — wide timestamp deltas).
///
/// # Safety
/// Same window-bounds contract as [`unpack_u32_plan64`].
#[target_feature(enable = "avx2")]
pub unsafe fn unpack_u64_plan64(
    src: &[u8],
    start_byte: usize,
    rounds: usize,
    plan: &Plan64,
    out: &mut [u64],
) {
    debug_assert!(out.len() >= rounds * LANES32);
    let mut base = start_byte;
    for chunk in out.chunks_exact_mut(8).take(rounds) {
        // SAFETY: the fn-level window contract covers this round's loads,
        // and `chunks_exact_mut(8)` yields exactly eight-element slices.
        unsafe { unpack_round_plan64(src, base, plan, chunk) };
        base += plan.bytes_per_round;
    }
}

/// One eight-value round of the Plan64 unpack: two 256-bit
/// shuffle/shift/mask pipelines over four 16-byte source windows.
///
/// # Safety
/// AVX2 must be available; all four windows
/// `src[base + plan.win_off[k] .. + 16]` must be in bounds, and `out`
/// must hold exactly eight elements.
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn unpack_round_plan64(src: &[u8], base: usize, plan: &Plan64, out: &mut [u64]) {
    debug_assert_eq!(out.len(), 8);
    // SAFETY: the four window loads are in bounds per the fn contract;
    // shuffle/shift tables are fixed-size arrays read in full; the two
    // stores exactly cover the 8-element `out` array (lanes 0..4, 4..8).
    unsafe {
        let mask = _mm256_set1_epi64x(plan.mask as i64);
        // Vector A: values 0..4 from windows 0 and 1.
        let a_lo = _mm_loadu_si128(src.as_ptr().add(base + plan.win_off[0]) as *const __m128i);
        let a_hi = _mm_loadu_si128(src.as_ptr().add(base + plan.win_off[1]) as *const __m128i);
        let sa_lo = _mm_loadu_si128(plan.shuffle_a[0].as_ptr() as *const __m128i);
        let sa_hi = _mm_loadu_si128(plan.shuffle_a[1].as_ptr() as *const __m128i);
        let va = _mm256_set_m128i(a_hi, a_lo);
        let sa = _mm256_set_m128i(sa_hi, sa_lo);
        let ga = _mm256_shuffle_epi8(va, sa);
        let sha = _mm256_loadu_si256(plan.shifts_a.as_ptr() as *const __m256i);
        let ra = _mm256_and_si256(_mm256_srlv_epi64(ga, sha), mask);
        _mm256_storeu_si256(out.as_mut_ptr() as *mut __m256i, ra);
        // Vector B: values 4..8 from windows 2 and 3.
        let b_lo = _mm_loadu_si128(src.as_ptr().add(base + plan.win_off[2]) as *const __m128i);
        let b_hi = _mm_loadu_si128(src.as_ptr().add(base + plan.win_off[3]) as *const __m128i);
        let sb_lo = _mm_loadu_si128(plan.shuffle_b[0].as_ptr() as *const __m128i);
        let sb_hi = _mm_loadu_si128(plan.shuffle_b[1].as_ptr() as *const __m128i);
        let vb = _mm256_set_m128i(b_hi, b_lo);
        let sb = _mm256_set_m128i(sb_hi, sb_lo);
        let gb = _mm256_shuffle_epi8(vb, sb);
        let shb = _mm256_loadu_si256(plan.shifts_b.as_ptr() as *const __m256i);
        let rb = _mm256_and_si256(_mm256_srlv_epi64(gb, shb), mask);
        _mm256_storeu_si256(out.as_mut_ptr().add(4) as *mut __m256i, rb);
    }
}

/// Shifts the eight 32-bit lanes of `v` left by `N` lane positions,
/// filling with zeros — built from `permutevar8x32` plus a zeroing blend,
/// the building block of the prefix-sum step (Algorithm 1 line 13).
/// Register-only, hence a safe `#[target_feature]` function.
#[target_feature(enable = "avx2")]
#[inline]
fn lane_shift_left<const N: i32>(v: __m256i) -> __m256i {
    let idx = _mm256_setr_epi32(0 - N, 1 - N, 2 - N, 3 - N, 4 - N, 5 - N, 6 - N, 7 - N);
    let permuted = _mm256_permutevar8x32_epi32(v, _mm256_and_si256(idx, _mm256_set1_epi32(7)));
    // Zero the first N lanes: lane i is kept when i >= N.
    let keep = _mm256_cmpgt_epi32(
        _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7),
        _mm256_set1_epi32(N - 1),
    );
    _mm256_and_si256(permuted, keep)
}

/// Inclusive prefix scan across the eight lanes of one vector (wrapping),
/// seeded by `carry`; returns the scanned vector and the new carry.
#[target_feature(enable = "avx2")]
#[inline]
fn scan_vector(v: __m256i, carry: u32) -> (__m256i, u32) {
    let mut x = v;
    x = _mm256_add_epi32(x, lane_shift_left::<1>(x));
    x = _mm256_add_epi32(x, lane_shift_left::<2>(x));
    x = _mm256_add_epi32(x, lane_shift_left::<4>(x));
    let x = _mm256_add_epi32(x, _mm256_set1_epi32(carry as i32));
    let mut lanes = [0u32; 8];
    // SAFETY: `lanes` is a local array of exactly eight u32 lanes — a
    // valid 256-bit store target.
    unsafe { _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, x) };
    (x, lanes[7])
}

/// AVX2 version of [`crate::scalar::inclusive_scan_v32`].
///
/// # Safety
/// AVX2 must be available.
#[target_feature(enable = "avx2")]
pub unsafe fn inclusive_scan_v32(v: &mut V32, carry: &mut u32) {
    // SAFETY: `v` is exactly eight u32 lanes — a valid 256-bit load and
    // store target.
    let x = unsafe { _mm256_loadu_si256(v.as_ptr() as *const __m256i) };
    let (scanned, c) = scan_vector(x, *carry);
    // SAFETY: same eight-lane target as the load above.
    unsafe { _mm256_storeu_si256(v.as_mut_ptr() as *mut __m256i, scanned) };
    *carry = c;
}

/// AVX2 version of [`crate::scalar::chain_delta_decode`]: Algorithm 1
/// lines 10–15 (partial sums, prefix-sum permute, broadcast add).
///
/// # Safety
/// AVX2 must be available.
#[target_feature(enable = "avx2")]
pub unsafe fn chain_delta_decode(vs: &mut [V32], carry: &mut u32) {
    let n_v = vs.len();
    if n_v == 0 {
        return;
    }
    // Lines 11-12: partial sums.
    let mut regs = [_mm256_setzero_si256(); 8];
    debug_assert!(n_v <= 8, "layout uses at most 8 vectors");
    for (j, v) in vs.iter().enumerate() {
        // SAFETY: each `v` is exactly eight u32 lanes.
        regs[j] = unsafe { _mm256_loadu_si256(v.as_ptr() as *const __m256i) };
        if j > 0 {
            regs[j] = _mm256_add_epi32(regs[j], regs[j - 1]);
        }
    }
    // Line 13: exclusive scan of the chain totals across lanes.
    let totals = regs[n_v - 1];
    let (incl, new_carry) = scan_vector(totals, *carry);
    // exclusive = inclusive shifted right by one lane, seeded with carry.
    let shifted = lane_shift_left::<1>(incl);
    let seed = _mm256_insert_epi32(shifted, *carry as i32, 0);
    *carry = new_carry;
    // Lines 14-15: broadcast-add the prefix vector.
    for (j, v) in vs.iter_mut().enumerate() {
        let r = _mm256_add_epi32(regs[j], seed);
        // SAFETY: each `v` is exactly eight u32 lanes.
        unsafe { _mm256_storeu_si256(v.as_mut_ptr() as *mut __m256i, r) };
    }
}

/// AVX2 8×8 transpose used to build the Algorithm 1 layout for `n_v = 8`:
/// output vector `j`, lane `l` := `scratch[l*8 + j]`.
///
/// # Safety
/// AVX2 must be available; `scratch.len() == 64`, `vs.len() == 8`.
#[target_feature(enable = "avx2")]
pub unsafe fn layout_transpose8(scratch: &[u32], vs: &mut [V32]) {
    debug_assert_eq!(scratch.len(), 64);
    debug_assert_eq!(vs.len(), 8);
    let mut r = [_mm256_setzero_si256(); 8];
    for (i, reg) in r.iter_mut().enumerate() {
        // SAFETY: the fn contract fixes `scratch.len() == 64`, so each
        // of the eight 8-lane loads is in bounds.
        *reg = unsafe { _mm256_loadu_si256(scratch.as_ptr().add(i * 8) as *const __m256i) };
    }
    // Stage 1: 32-bit interleave.
    let t0 = _mm256_unpacklo_epi32(r[0], r[1]);
    let t1 = _mm256_unpackhi_epi32(r[0], r[1]);
    let t2 = _mm256_unpacklo_epi32(r[2], r[3]);
    let t3 = _mm256_unpackhi_epi32(r[2], r[3]);
    let t4 = _mm256_unpacklo_epi32(r[4], r[5]);
    let t5 = _mm256_unpackhi_epi32(r[4], r[5]);
    let t6 = _mm256_unpacklo_epi32(r[6], r[7]);
    let t7 = _mm256_unpackhi_epi32(r[6], r[7]);
    // Stage 2: 64-bit interleave.
    let u0 = _mm256_unpacklo_epi64(t0, t2);
    let u1 = _mm256_unpackhi_epi64(t0, t2);
    let u2 = _mm256_unpacklo_epi64(t1, t3);
    let u3 = _mm256_unpackhi_epi64(t1, t3);
    let u4 = _mm256_unpacklo_epi64(t4, t6);
    let u5 = _mm256_unpackhi_epi64(t4, t6);
    let u6 = _mm256_unpacklo_epi64(t5, t7);
    let u7 = _mm256_unpackhi_epi64(t5, t7);
    // Stage 3: 128-bit lane exchange.
    let o = [
        _mm256_permute2x128_si256(u0, u4, 0x20),
        _mm256_permute2x128_si256(u1, u5, 0x20),
        _mm256_permute2x128_si256(u2, u6, 0x20),
        _mm256_permute2x128_si256(u3, u7, 0x20),
        _mm256_permute2x128_si256(u0, u4, 0x31),
        _mm256_permute2x128_si256(u1, u5, 0x31),
        _mm256_permute2x128_si256(u2, u6, 0x31),
        _mm256_permute2x128_si256(u3, u7, 0x31),
    ];
    // o[k] now holds column k of the 8x8 matrix, i.e. elements
    // [k, 8+k, 16+k, ... 56+k] — exactly layout vector k's lanes.
    for (j, v) in vs.iter_mut().enumerate() {
        // SAFETY: each `v` is exactly eight u32 lanes.
        unsafe { _mm256_storeu_si256(v.as_mut_ptr() as *mut __m256i, o[j]) };
    }
}

/// AVX2 version of [`crate::scalar::widen_rel_i64`].
///
/// # Safety
/// AVX2 must be available; `rel.len() == out.len()`.
#[target_feature(enable = "avx2")]
#[allow(clippy::needless_range_loop)]
pub unsafe fn widen_rel_i64(base: i64, rel: &[u32], out: &mut [i64]) {
    debug_assert_eq!(rel.len(), out.len());
    let b = _mm256_set1_epi64x(base);
    let chunks = rel.len() / 4;
    for c in 0..chunks {
        // SAFETY: `c * 4 + 4 <= rel.len()` bounds the 128-bit load, and
        // `out.len() == rel.len()` (fn contract) bounds the store.
        unsafe {
            let r = _mm_loadu_si128(rel.as_ptr().add(c * 4) as *const __m128i);
            let wide = _mm256_cvtepi32_epi64(r); // sign-extends i32 -> i64
            let v = _mm256_add_epi64(b, wide);
            _mm256_storeu_si256(out.as_mut_ptr().add(c * 4) as *mut __m256i, v);
        }
    }
    for i in chunks * 4..rel.len() {
        out[i] = base.wrapping_add(rel[i] as i32 as i64);
    }
}

/// AVX2 version of [`crate::scalar::range_mask_i64`].
///
/// # Safety
/// AVX2 must be available; `out.len() * 64 >= vals.len()`.
#[target_feature(enable = "avx2")]
pub unsafe fn range_mask_i64(vals: &[i64], lo: i64, hi: i64, out: &mut [u64]) {
    out.fill(0);
    let lo_v = _mm256_set1_epi64x(lo);
    let hi_v = _mm256_set1_epi64x(hi);
    let chunks = vals.len() / 4;
    for c in 0..chunks {
        // SAFETY: `c * 4 + 4 <= vals.len()` keeps the load in bounds.
        let v = unsafe { _mm256_loadu_si256(vals.as_ptr().add(c * 4) as *const __m256i) };
        // in-range = !(lo > v) && !(v > hi)
        let below = _mm256_cmpgt_epi64(lo_v, v);
        let above = _mm256_cmpgt_epi64(v, hi_v);
        let bad = _mm256_or_si256(below, above);
        let good = _mm256_andnot_si256(bad, _mm256_set1_epi64x(-1));
        let bits = _mm256_movemask_pd(_mm256_castsi256_pd(good)) as u64 & 0xF;
        let base_bit = c * 4;
        out[base_bit / 64] |= bits << (base_bit % 64);
    }
    for i in chunks * 4..vals.len() {
        if vals[i] >= lo && vals[i] <= hi {
            out[i / 64] |= 1u64 << (i % 64);
        }
    }
}

/// AVX2 masked sum: returns `(exact_sum, count)` of values whose mask bit
/// is set. Lane accumulation runs in wrapping 64-bit with sign-rule
/// overflow detection (paper §VI-C); any overflowing block is recomputed
/// exactly in scalar `i128` arithmetic.
///
/// # Safety
/// AVX2 must be available; `mask.len() * 64 >= vals.len()`.
#[target_feature(enable = "avx2")]
pub unsafe fn masked_sum_i64(vals: &[i64], mask: &[u64]) -> (i128, u64) {
    const BLOCK: usize = 4096;
    let mut sum = 0i128;
    let mut count = 0u64;
    let mut start = 0usize;
    while start < vals.len() {
        let end = (start + BLOCK).min(vals.len());
        // Blocks are 64-element aligned except possibly the last, so mask
        // words line up with the block.
        let (s, c, overflow) = masked_sum_block(&vals[start..end], mask, start);
        if overflow {
            let (es, ec) = scalar_masked_sum_range(vals, mask, start, end);
            sum += es;
            count += ec;
        } else {
            sum += s as i128;
            count += c;
        }
        start = end;
    }
    (sum, count)
}

#[target_feature(enable = "avx2")]
#[inline]
fn masked_sum_block(vals: &[i64], mask: &[u64], offset: usize) -> (i64, u64, bool) {
    let mut acc = _mm256_setzero_si256();
    let mut ovf = _mm256_setzero_si256();
    let mut count = 0u64;
    let chunks = vals.len() / 4;
    for c in 0..chunks {
        let gi = offset + c * 4;
        let bits = (mask[gi / 64] >> (gi % 64)) & 0xF;
        if bits == 0 {
            continue;
        }
        // SAFETY: `c * 4 + 4 <= vals.len()` keeps the load in bounds.
        let v = unsafe { _mm256_loadu_si256(vals.as_ptr().add(c * 4) as *const __m256i) };
        // Expand 4 mask bits to 4 lane masks.
        let lane_mask = _mm256_setr_epi64x(
            -((bits & 1) as i64),
            -(((bits >> 1) & 1) as i64),
            -(((bits >> 2) & 1) as i64),
            -(((bits >> 3) & 1) as i64),
        );
        let masked = _mm256_and_si256(v, lane_mask);
        let r = _mm256_add_epi64(acc, masked);
        // Signed-overflow rule: (a ^ r) & (b ^ r) has the sign bit set.
        let o = _mm256_and_si256(_mm256_xor_si256(acc, r), _mm256_xor_si256(masked, r));
        ovf = _mm256_or_si256(ovf, o);
        acc = r;
        count += bits.count_ones() as u64;
    }
    let overflow = _mm256_movemask_pd(_mm256_castsi256_pd(ovf)) != 0;
    let mut lanes = [0i64; 4];
    // SAFETY: `lanes` is a local array of exactly four i64 lanes — a
    // valid 256-bit store target.
    unsafe { _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc) };
    let mut total = 0i64;
    let mut scalar_ovf = false;
    for l in lanes {
        let (t, o) = total.overflowing_add(l);
        total = t;
        scalar_ovf |= o;
    }
    // Scalar tail of the block.
    #[allow(clippy::needless_range_loop)] // global index gi drives the mask
    for i in chunks * 4..vals.len() {
        let gi = offset + i;
        if mask[gi / 64] & (1u64 << (gi % 64)) != 0 {
            let (t, o) = total.overflowing_add(vals[i]);
            total = t;
            scalar_ovf |= o;
            count += 1;
        }
    }
    (total, count, overflow || scalar_ovf)
}

#[allow(clippy::needless_range_loop)]
fn scalar_masked_sum_range(vals: &[i64], mask: &[u64], start: usize, end: usize) -> (i128, u64) {
    let mut sum = 0i128;
    let mut count = 0u64;
    for i in start..end {
        if mask[i / 64] & (1u64 << (i % 64)) != 0 {
            sum += vals[i] as i128;
            count += 1;
        }
    }
    (sum, count)
}

/// AVX2 exact sum of all values (same overflow strategy as
/// [`masked_sum_i64`]).
///
/// # Safety
/// AVX2 must be available.
#[target_feature(enable = "avx2")]
pub unsafe fn sum_i64(vals: &[i64]) -> i128 {
    const BLOCK: usize = 4096;
    let mut sum = 0i128;
    let mut start = 0usize;
    while start < vals.len() {
        let end = (start + BLOCK).min(vals.len());
        let block = &vals[start..end];
        let mut acc = _mm256_setzero_si256();
        let mut ovf = _mm256_setzero_si256();
        let chunks = block.len() / 4;
        for c in 0..chunks {
            // SAFETY: `c * 4 + 4 <= block.len()` keeps the load in bounds.
            let v = unsafe { _mm256_loadu_si256(block.as_ptr().add(c * 4) as *const __m256i) };
            let r = _mm256_add_epi64(acc, v);
            let o = _mm256_and_si256(_mm256_xor_si256(acc, r), _mm256_xor_si256(v, r));
            ovf = _mm256_or_si256(ovf, o);
            acc = r;
        }
        if _mm256_movemask_pd(_mm256_castsi256_pd(ovf)) != 0 {
            sum += block.iter().map(|&v| v as i128).sum::<i128>();
        } else {
            let mut lanes = [0i64; 4];
            // SAFETY: `lanes` is a local array of exactly four i64
            // lanes — a valid 256-bit store target.
            unsafe { _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc) };
            let mut s: i128 = lanes.iter().map(|&l| l as i128).sum();
            for &v in &block[chunks * 4..] {
                s += v as i128;
            }
            sum += s;
        }
        start = end;
    }
    sum
}

/// Stream VByte quad decode via the 256-entry `pshufb` table
/// ([`crate::tables::SVB_SHUFFLE`]): each control byte turns one 16-byte
/// data load into four little-endian 32-bit lanes with a single byte
/// shuffle. Quads whose 16-byte window would overhang the data stream —
/// and the sub-quad tail — finish on the scalar twin.
///
/// Returns the data bytes consumed.
///
/// # Safety
/// AVX2 must be available (the shuffle itself only needs SSSE3);
/// `out.len() >= n`, `controls.len() * 4 >= n`, and `data` must hold
/// every byte the control stream declares.
#[target_feature(enable = "avx2")]
pub unsafe fn svb_decode_quads(controls: &[u8], data: &[u8], n: usize, out: &mut [u32]) -> usize {
    use crate::tables::{SVB_LEN, SVB_SHUFFLE};
    debug_assert!(out.len() >= n);
    debug_assert!(controls.len() * 4 >= n);
    let mut pos = 0usize;
    let mut k = 0usize;
    while k + 4 <= n && pos + 16 <= data.len() {
        let c = controls[k / 4] as usize;
        // SAFETY: `pos + 16 <= data.len()` bounds the source load; the
        // shuffle-table row is a fixed 16-byte array read in full; and
        // `k + 4 <= n <= out.len()` bounds the 128-bit store.
        unsafe {
            let src = _mm_loadu_si128(data.as_ptr().add(pos) as *const __m128i);
            let shuf = _mm_loadu_si128(SVB_SHUFFLE[c].as_ptr() as *const __m128i);
            let quad = _mm_shuffle_epi8(src, shuf);
            _mm_storeu_si128(out.as_mut_ptr().add(k) as *mut __m128i, quad);
        }
        pos += SVB_LEN[c] as usize;
        k += 4;
    }
    // `k` is a multiple of 4, so the tail starts on a control-byte
    // boundary with code index 0.
    pos + crate::scalar::svb_decode_quads(&controls[k / 4..], &data[pos..], n - k, &mut out[k..])
}

/// AVX2 min/max over all values (64-bit lanes via compare + blend, since
/// AVX2 has no `min/max_epi64`).
///
/// # Safety
/// AVX2 must be available.
#[target_feature(enable = "avx2")]
pub unsafe fn min_max_i64(vals: &[i64]) -> Option<(i64, i64)> {
    if vals.is_empty() {
        return None;
    }
    let chunks = vals.len() / 4;
    if chunks == 0 {
        return crate::scalar::min_max_i64(vals);
    }
    // SAFETY: `chunks >= 1` means `vals` has at least four elements.
    let mut mn = unsafe { _mm256_loadu_si256(vals.as_ptr() as *const __m256i) };
    let mut mx = mn;
    for c in 1..chunks {
        // SAFETY: `c * 4 + 4 <= vals.len()` keeps the load in bounds.
        let v = unsafe { _mm256_loadu_si256(vals.as_ptr().add(c * 4) as *const __m256i) };
        let gt_mn = _mm256_cmpgt_epi64(mn, v);
        mn = _mm256_blendv_epi8(mn, v, gt_mn);
        let gt_v = _mm256_cmpgt_epi64(v, mx);
        mx = _mm256_blendv_epi8(mx, v, gt_v);
    }
    let mut mn_l = [0i64; 4];
    let mut mx_l = [0i64; 4];
    // SAFETY: `mn_l` / `mx_l` are local arrays of exactly four i64
    // lanes — valid 256-bit store targets.
    unsafe {
        _mm256_storeu_si256(mn_l.as_mut_ptr() as *mut __m256i, mn);
        _mm256_storeu_si256(mx_l.as_mut_ptr() as *mut __m256i, mx);
    }
    let mut lo = *mn_l.iter().min().unwrap_or(&i64::MAX);
    let mut hi = *mx_l.iter().max().unwrap_or(&i64::MIN);
    for &v in &vals[chunks * 4..] {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    Some((lo, hi))
}
